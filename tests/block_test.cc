#include "storage/block.h"

#include <gtest/gtest.h>

namespace claims {
namespace {

TEST(BlockTest, CapacityFromRowSize) {
  Block b(64);  // 64-byte rows in a 64 KB block
  EXPECT_EQ(b.capacity_rows(), 1024);
  EXPECT_EQ(b.capacity_bytes(), 64 * 1024);
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.full());
}

TEST(BlockTest, AppendUntilFull) {
  Block b(1000, 4000);
  EXPECT_EQ(b.capacity_rows(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_NE(b.AppendRow(), nullptr);
  EXPECT_TRUE(b.full());
  EXPECT_EQ(b.AppendRow(), nullptr);
  EXPECT_EQ(b.num_rows(), 4);
  EXPECT_EQ(b.payload_bytes(), 4000);
}

TEST(BlockTest, RowDataRoundTrip) {
  Schema s({ColumnDef::Int64("x")});
  Block b(s.row_size(), 1024);
  for (int64_t i = 0; i < 10; ++i) {
    char* row = b.AppendRow();
    ASSERT_NE(row, nullptr);
    s.SetInt64(row, 0, i * 3);
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(s.GetInt64(b.RowAt(i), 0), i * 3);
}

TEST(BlockTest, AppendRowCopy) {
  Block b(8, 64);
  char row[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(b.AppendRowCopy(row));
  EXPECT_EQ(memcmp(b.RowAt(0), row, 8), 0);
}

TEST(BlockTest, MetadataTail) {
  Block b(8);
  EXPECT_EQ(b.sequence_number(), 0u);
  EXPECT_EQ(b.visit_rate(), 1.0);
  b.set_sequence_number(77);
  b.set_visit_rate(0.25);
  EXPECT_EQ(b.sequence_number(), 77u);
  EXPECT_EQ(b.visit_rate(), 0.25);
}

TEST(BlockTest, ClearResetsRows) {
  Block b(8, 64);
  b.AppendRow();
  b.Clear();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.num_rows(), 0);
}

}  // namespace
}  // namespace claims
