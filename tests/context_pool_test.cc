#include "core/context_pool.h"

#include <gtest/gtest.h>

namespace claims {
namespace {

struct TestContext : IteratorContext {
  explicit TestContext(int tag) : tag(tag) {}
  int tag;
};

TEST(ContextPoolTest, VoidModeReusesAnything) {
  ContextPool pool(ContextMode::kVoid);
  pool.Release(std::make_unique<TestContext>(1), /*core=*/3, /*socket=*/0);
  auto ctx = pool.Acquire(/*core=*/9, /*socket=*/1);
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(static_cast<TestContext*>(ctx.get())->tag, 1);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.reuse_count(), 1);
}

TEST(ContextPoolTest, ProcessorModeMatchesSocket) {
  ContextPool pool(ContextMode::kProcessor);
  pool.Release(std::make_unique<TestContext>(1), 3, /*socket=*/0);
  EXPECT_EQ(pool.Acquire(5, /*socket=*/1), nullptr);
  EXPECT_EQ(pool.size(), 1u);
  auto ctx = pool.Acquire(7, /*socket=*/0);  // same socket, different core
  ASSERT_NE(ctx, nullptr);
}

TEST(ContextPoolTest, CoreModeMatchesCoreOnly) {
  ContextPool pool(ContextMode::kCore);
  pool.Release(std::make_unique<TestContext>(1), /*core=*/3, 0);
  EXPECT_EQ(pool.Acquire(/*core=*/4, 0), nullptr);
  auto ctx = pool.Acquire(/*core=*/3, 0);
  ASSERT_NE(ctx, nullptr);
}

TEST(ContextPoolTest, AcquireFromEmptyReturnsNull) {
  ContextPool pool(ContextMode::kVoid);
  EXPECT_EQ(pool.Acquire(0, 0), nullptr);
  EXPECT_EQ(pool.reuse_count(), 0);
}

TEST(ContextPoolTest, TakeAllDrains) {
  ContextPool pool(ContextMode::kCore);
  pool.Release(std::make_unique<TestContext>(1), 0, 0);
  pool.Release(std::make_unique<TestContext>(2), 1, 0);
  auto all = pool.TakeAll();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(ContextPoolTest, MultipleEntriesPickMatching) {
  ContextPool pool(ContextMode::kCore);
  pool.Release(std::make_unique<TestContext>(10), /*core=*/0, 0);
  pool.Release(std::make_unique<TestContext>(20), /*core=*/1, 0);
  auto ctx = pool.Acquire(/*core=*/1, 0);
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(static_cast<TestContext*>(ctx.get())->tag, 20);
  EXPECT_EQ(pool.size(), 1u);
}

}  // namespace
}  // namespace claims
