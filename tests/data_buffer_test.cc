#include "core/data_buffer.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace claims {
namespace {

BlockPtr SeqBlock(uint64_t seq) {
  auto b = MakeBlock(8, 64);
  b->AppendRow();
  b->set_sequence_number(seq);
  return b;
}

TEST(DataBufferTest, FifoBasics) {
  DataBuffer buf({.capacity_blocks = 8, .order_preserving = false});
  buf.AddProducer(0);
  ASSERT_TRUE(buf.Insert(0, SeqBlock(1)));
  ASSERT_TRUE(buf.Insert(0, SeqBlock(2)));
  EXPECT_EQ(buf.size(), 2u);
  BlockPtr out;
  EXPECT_EQ(buf.Pop(&out), NextResult::kSuccess);
  EXPECT_EQ(out->sequence_number(), 1u);
  buf.RemoveProducer(0);
  EXPECT_EQ(buf.Pop(&out), NextResult::kSuccess);
  EXPECT_EQ(out->sequence_number(), 2u);
  EXPECT_EQ(buf.Pop(&out), NextResult::kEndOfFile);
}

TEST(DataBufferTest, EofOnlyAfterDrain) {
  DataBuffer buf({.capacity_blocks = 8});
  buf.AddProducer(0);
  ASSERT_TRUE(buf.Insert(0, SeqBlock(5)));
  buf.RemoveProducer(0);
  BlockPtr out;
  EXPECT_EQ(buf.Pop(&out), NextResult::kSuccess);
  EXPECT_EQ(buf.Pop(&out), NextResult::kEndOfFile);
}

TEST(DataBufferTest, BackpressureBlocksProducer) {
  DataBuffer buf({.capacity_blocks = 2});
  buf.AddProducer(0);
  ASSERT_TRUE(buf.Insert(0, SeqBlock(1)));
  ASSERT_TRUE(buf.Insert(0, SeqBlock(2)));
  std::atomic<bool> third_inserted{false};
  std::thread producer([&] {
    EXPECT_TRUE(buf.Insert(0, SeqBlock(3)));
    third_inserted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_inserted.load());  // full: producer must wait
  BlockPtr out;
  EXPECT_EQ(buf.Pop(&out), NextResult::kSuccess);
  producer.join();
  EXPECT_TRUE(third_inserted.load());
}

TEST(DataBufferTest, CancelWakesProducerAndConsumer) {
  DataBuffer buf({.capacity_blocks = 1});
  buf.AddProducer(0);
  ASSERT_TRUE(buf.Insert(0, SeqBlock(1)));
  std::thread producer([&] { EXPECT_FALSE(buf.Insert(0, SeqBlock(2))); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  buf.Cancel();
  producer.join();
  BlockPtr out;
  EXPECT_EQ(buf.Pop(&out), NextResult::kEndOfFile);
  EXPECT_TRUE(buf.cancelled());
}

TEST(DataBufferTest, ConsumerBlocksUntilInsert) {
  DataBuffer buf({.capacity_blocks = 4});
  buf.AddProducer(0);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    BlockPtr out;
    EXPECT_EQ(buf.Pop(&out), NextResult::kSuccess);
    popped.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_FALSE(popped.load());
  ASSERT_TRUE(buf.Insert(0, SeqBlock(9)));
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TEST(DataBufferTest, MemoryAccounting) {
  MemoryTracker mem("buf");
  DataBuffer buf({.capacity_blocks = 8, .order_preserving = false,
                  .memory = &mem});
  buf.AddProducer(0);
  BlockPtr b = SeqBlock(1);
  int64_t bytes = b->payload_bytes();
  ASSERT_TRUE(buf.Insert(0, std::move(b)));
  EXPECT_EQ(mem.current_bytes(), bytes);
  BlockPtr out;
  ASSERT_EQ(buf.Pop(&out), NextResult::kSuccess);
  EXPECT_EQ(mem.current_bytes(), 0);
  EXPECT_EQ(mem.peak_bytes(), bytes);
}

TEST(DataBufferTest, TerminatedProducersDontSignalEof) {
  // Regression: all current producers shrinking away (terminated, not
  // finished) left active_producers_ == 0 && total_blocks_ == 0 — the old
  // EOF predicate. A consumer racing into Pop in that window returned a
  // premature end-of-file while the segment was still live. The stream is
  // merely paused: Pop must keep waiting until a replacement producer
  // finishes (or the buffer is cancelled).
  DataBuffer buf({.capacity_blocks = 8});
  buf.AddProducer(0);
  buf.RemoveProducer(0, /*finished=*/false);  // shrunk away mid-stream
  std::atomic<bool> got_eof{false};
  std::atomic<bool> got_block{false};
  std::thread consumer([&] {
    BlockPtr out;
    NextResult r = buf.Pop(&out);
    if (r == NextResult::kSuccess) got_block.store(true);
    while (r == NextResult::kSuccess) r = buf.Pop(&out);
    got_eof.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got_eof.load());  // paused, not exhausted
  // A later Expand revives the stream; its worker finishes for real.
  buf.AddProducer(1);
  ASSERT_TRUE(buf.Insert(1, SeqBlock(1)));
  buf.RemoveProducer(1, /*finished=*/true);
  consumer.join();
  EXPECT_TRUE(got_block.load());
  EXPECT_TRUE(got_eof.load());
}

TEST(DataBufferTest, NoProducerEverRegisteredIsEof) {
  // An empty segment (zero initial parallelism edge) must still terminate.
  DataBuffer buf({.capacity_blocks = 8});
  BlockPtr out;
  EXPECT_EQ(buf.Pop(&out), NextResult::kEndOfFile);
}

TEST(DataBufferTest, CancelEndsPausedStream) {
  DataBuffer buf({.capacity_blocks = 8});
  buf.AddProducer(0);
  buf.RemoveProducer(0, /*finished=*/false);
  std::thread consumer([&] {
    BlockPtr out;
    EXPECT_EQ(buf.Pop(&out), NextResult::kEndOfFile);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  buf.Cancel();  // shutdown while paused must not hang the consumer
  consumer.join();
}

// --- Order-preserving mode ----------------------------------------------------

TEST(OrderedBufferTest, MergesTwoProducersBySequence) {
  DataBuffer buf({.capacity_blocks = 16, .order_preserving = true});
  buf.AddProducer(0);
  buf.AddProducer(1);
  // Producer 0 holds blocks 0,2,4; producer 1 holds 1,3.
  ASSERT_TRUE(buf.Insert(0, SeqBlock(0)));
  ASSERT_TRUE(buf.Insert(1, SeqBlock(1)));
  ASSERT_TRUE(buf.Insert(0, SeqBlock(2)));
  ASSERT_TRUE(buf.Insert(1, SeqBlock(3)));
  ASSERT_TRUE(buf.Insert(0, SeqBlock(4)));
  buf.RemoveProducer(0);
  buf.RemoveProducer(1);
  BlockPtr out;
  for (uint64_t want = 0; want < 5; ++want) {
    ASSERT_EQ(buf.Pop(&out), NextResult::kSuccess);
    EXPECT_EQ(out->sequence_number(), want);
  }
  EXPECT_EQ(buf.Pop(&out), NextResult::kEndOfFile);
}

TEST(OrderedBufferTest, HoldsBackUntilLaggerCatchesUp) {
  DataBuffer buf({.capacity_blocks = 16, .order_preserving = true});
  buf.AddProducer(0);
  buf.AddProducer(1);
  ASSERT_TRUE(buf.Insert(0, SeqBlock(7)));
  // Producer 1 has inserted nothing and its watermark is 0: seq 7 must wait —
  // producer 1 might still insert seq < 7.
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    BlockPtr out;
    EXPECT_EQ(buf.Pop(&out), NextResult::kSuccess);
    EXPECT_EQ(out->sequence_number(), 3u);
    popped.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(popped.load());
  ASSERT_TRUE(buf.Insert(1, SeqBlock(3)));
  consumer.join();
  buf.Cancel();
}

TEST(OrderedBufferTest, WatermarkReleasesWithoutInsert) {
  DataBuffer buf({.capacity_blocks = 16, .order_preserving = true});
  buf.AddProducer(0);
  buf.AddProducer(1);
  ASSERT_TRUE(buf.Insert(0, SeqBlock(7)));
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    BlockPtr out;
    EXPECT_EQ(buf.Pop(&out), NextResult::kSuccess);
    EXPECT_EQ(out->sequence_number(), 7u);
    popped.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(popped.load());
  // Producer 1 passes seq 8 with no output (e.g., filtered away): its
  // watermark promise releases block 7.
  buf.AdvanceWatermark(1, 8);
  consumer.join();
  EXPECT_TRUE(popped.load());
  buf.Cancel();
}

TEST(OrderedBufferTest, FinishedProducerDoesNotGateMerge) {
  DataBuffer buf({.capacity_blocks = 16, .order_preserving = true});
  buf.AddProducer(0);
  buf.AddProducer(1);
  ASSERT_TRUE(buf.Insert(0, SeqBlock(7)));
  buf.RemoveProducer(1);  // finished without inserting anything
  BlockPtr out;
  EXPECT_EQ(buf.Pop(&out), NextResult::kSuccess);
  EXPECT_EQ(out->sequence_number(), 7u);
}

TEST(OrderedBufferTest, GatingProducerMayInsertPastCapacity) {
  // Regression guard for the merge-deadlock case: buffer at capacity with
  // unreleasable blocks; the lagging producer must still be able to insert.
  DataBuffer buf({.capacity_blocks = 2, .order_preserving = true});
  buf.AddProducer(0);
  buf.AddProducer(1);
  ASSERT_TRUE(buf.Insert(0, SeqBlock(5)));
  ASSERT_TRUE(buf.Insert(0, SeqBlock(6)));
  // At capacity, nothing releasable (producer 1 lags). Its insert must not
  // block.
  ASSERT_TRUE(buf.Insert(1, SeqBlock(1)));
  BlockPtr out;
  ASSERT_EQ(buf.Pop(&out), NextResult::kSuccess);
  EXPECT_EQ(out->sequence_number(), 1u);
}

TEST(OrderedBufferTest, ConcurrentProducersGlobalOrder) {
  DataBuffer buf({.capacity_blocks = 8, .order_preserving = true});
  const int kProducers = 4;
  const int kBlocksEach = 50;
  for (int p = 0; p < kProducers; ++p) buf.AddProducer(p);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Producer p owns sequence numbers p, p+4, p+8, ... (monotone per
      // producer, interleaved globally — like a shared stage beginner).
      for (int i = 0; i < kBlocksEach; ++i) {
        ASSERT_TRUE(buf.Insert(p, SeqBlock(static_cast<uint64_t>(
                                      i * kProducers + p))));
      }
      buf.RemoveProducer(p);
    });
  }
  std::vector<uint64_t> seen;
  BlockPtr out;
  while (buf.Pop(&out) == NextResult::kSuccess) {
    seen.push_back(out->sequence_number());
  }
  for (auto& t : producers) t.join();
  ASSERT_EQ(seen.size(), static_cast<size_t>(kProducers * kBlocksEach));
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

}  // namespace
}  // namespace claims
