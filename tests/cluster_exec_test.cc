// End-to-end tests of the distributed executor on hand-built physical plans,
// across all three execution frameworks (EP / SP / ME).

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <thread>

#include "cluster/executor.h"
#include "common/clock.h"

namespace claims {
namespace {

constexpr int kNodes = 3;

ExprPtr Col(const Schema& s, const char* name) {
  int i = s.FindColumn(name);
  EXPECT_GE(i, 0) << name;
  return MakeColumnRef(i, s.column(i).type, name);
}

/// kv1(k,v): round-robin partitioned; kv2(k,w): hash partitioned on k.
class ClusterExecTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog;
    {
      Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
      auto t = std::make_shared<Table>("kv1", s, kNodes, std::vector<int>{});
      for (int i = 0; i < 9000; ++i) {
        t->AppendValues({Value::Int32(i % 300), Value::Int64(i)});
      }
      ASSERT_TRUE(catalog_->RegisterTable(std::move(t)).ok());
    }
    {
      Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("w")});
      auto t = std::make_shared<Table>("kv2", s, kNodes, std::vector<int>{0});
      for (int i = 0; i < 300; ++i) {
        t->AppendValues({Value::Int32(i), Value::Int64(i * 10)});
      }
      ASSERT_TRUE(catalog_->RegisterTable(std::move(t)).ok());
    }
    ClusterOptions copts;
    copts.num_nodes = kNodes;
    copts.cores_per_node = 8;
    cluster_ = new Cluster(copts, catalog_);
  }
  static void TearDownTestSuite() {
    delete cluster_;
    delete catalog_;
  }

  /// Plan: scan kv1 → filter(k < limit) → gather to master.
  static PhysicalPlan GatherPlan(int limit) {
    TablePtr kv1 = *catalog_->GetTable("kv1");
    PhysicalPlan plan;
    auto f = std::make_unique<Fragment>();
    f->id = 0;
    auto scan = MakeScanOp(*kv1);
    f->root = MakeFilterOp(
        std::move(scan),
        MakeCompare(CompareOp::kLt, Col(kv1->schema(), "k"),
                    MakeLiteral(Value::Int32(limit))));
    f->nodes = {0, 1, 2};
    f->out_exchange_id = 0;
    f->partitioning = Partitioning::kToOne;
    f->consumer_nodes = {0};
    plan.result_schema = f->root->output_schema;
    plan.result_exchange_id = 0;
    plan.fragments.push_back(std::move(f));
    return plan;
  }

  /// The paper's Fig. 1 shape: repartition kv1 on k, join with co-located
  /// kv2, aggregate sum(v)+sum(w) group by k, gather.
  static PhysicalPlan JoinAggPlan() {
    TablePtr kv1 = *catalog_->GetTable("kv1");
    TablePtr kv2 = *catalog_->GetTable("kv2");
    PhysicalPlan plan;

    // F0: scan kv1 → repartition on k (exchange 0, to all nodes).
    auto f0 = std::make_unique<Fragment>();
    f0->id = 0;
    f0->root = MakeScanOp(*kv1);
    f0->nodes = {0, 1, 2};
    f0->out_exchange_id = 0;
    f0->partitioning = Partitioning::kHash;
    f0->hash_cols = {0};
    f0->consumer_nodes = {0, 1, 2};

    // F1: HashAgg(group k; sum v, sum w, count) over
    //     HashJoin(build = merger(x0), probe = scan kv2) → gather (x1).
    auto f1 = std::make_unique<Fragment>();
    f1->id = 1;
    auto merger = MakeMergerOp(0, f0->root->output_schema);
    auto join = MakeHashJoinOp(std::move(merger), MakeScanOp(*kv2),
                               /*build_keys=*/{0}, /*probe_keys=*/{0});
    const Schema join_schema = join->output_schema;
    std::vector<HashAggIterator::Aggregate> aggs = {
        {AggFn::kSum, Col(join_schema, "v"), "sum_v"},
        {AggFn::kSum, Col(join_schema, "w"), "sum_w"},
        {AggFn::kCount, nullptr, "cnt"},
    };
    f1->root =
        MakeHashAggOp(std::move(join), {Col(join_schema, "k")}, {"k"},
                      std::move(aggs), HashAggIterator::Mode::kShared);
    f1->nodes = {0, 1, 2};
    f1->out_exchange_id = 1;
    f1->partitioning = Partitioning::kToOne;
    f1->consumer_nodes = {0};

    plan.result_schema = f1->root->output_schema;
    plan.result_exchange_id = 1;
    plan.fragments.push_back(std::move(f0));
    plan.fragments.push_back(std::move(f1));
    return plan;
  }

  static Catalog* catalog_;
  static Cluster* cluster_;
};

Catalog* ClusterExecTest::catalog_ = nullptr;
Cluster* ClusterExecTest::cluster_ = nullptr;

class ClusterExecModeTest : public ClusterExecTest,
                            public ::testing::WithParamInterface<ExecMode> {};

TEST_P(ClusterExecModeTest, GatherFilter) {
  PhysicalPlan plan = GatherPlan(100);
  Executor exec(cluster_);
  ExecOptions opts;
  opts.mode = GetParam();
  opts.parallelism = 2;
  auto result = exec.Execute(plan, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // k in [0,100) of k = i%300 over 9000 rows → 30 rows per k → 3000 rows.
  EXPECT_EQ(result->num_rows(), 3000);
}

TEST_P(ClusterExecModeTest, RepartitionJoinAggregate) {
  PhysicalPlan plan = JoinAggPlan();
  Executor exec(cluster_);
  ExecOptions opts;
  opts.mode = GetParam();
  opts.parallelism = 2;
  auto result = exec.Execute(plan, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 300 groups; each k has 30 kv1 rows × 1 kv2 row.
  ASSERT_EQ(result->num_rows(), 300);
  auto rows = result->Rows(/*sorted=*/true);
  for (int k = 0; k < 300; ++k) {
    EXPECT_EQ(rows[k][0].AsInt64(), k);
    // sum v over {k, k+300, ..., k+8700}: 30k + 300*(0+..+29).
    int64_t expected_v = 30LL * k + 300LL * (29 * 30 / 2);
    EXPECT_EQ(rows[k][1].AsInt64(), expected_v) << "k=" << k;
    EXPECT_EQ(rows[k][2].AsInt64(), 30LL * k * 10);
    EXPECT_EQ(rows[k][3].AsInt64(), 30);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, ClusterExecModeTest,
                         ::testing::Values(ExecMode::kElastic,
                                           ExecMode::kStatic,
                                           ExecMode::kMaterialized),
                         [](const auto& info) {
                           return ExecModeName(info.param);
                         });

TEST_F(ClusterExecTest, MaterializedUsesMoreMemoryThanPipelined) {
  // Dedicated cluster with tight pipeline buffers and a shuffle large enough
  // that full materialization dominates (paper Table 4's effect).
  Catalog catalog;
  {
    Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
    auto t = std::make_shared<Table>("big", s, kNodes, std::vector<int>{});
    for (int i = 0; i < 300000; ++i) {
      t->AppendValues({Value::Int32(i % 500), Value::Int64(i)});
    }
    ASSERT_TRUE(catalog.RegisterTable(std::move(t)).ok());
  }
  ClusterOptions copts;
  copts.num_nodes = kNodes;
  copts.cores_per_node = 4;
  copts.channel_capacity_blocks = 2;
  Cluster cluster(copts, &catalog);

  auto make_plan = [&]() {
    TablePtr big = *catalog.GetTable("big");
    PhysicalPlan plan;
    auto f0 = std::make_unique<Fragment>();
    f0->id = 0;
    f0->root = MakeScanOp(*big);
    f0->nodes = {0, 1, 2};
    f0->out_exchange_id = 0;
    f0->partitioning = Partitioning::kHash;
    f0->hash_cols = {0};
    f0->consumer_nodes = {0, 1, 2};
    auto f1 = std::make_unique<Fragment>();
    f1->id = 1;
    auto merger = MakeMergerOp(0, f0->root->output_schema);
    const Schema in = merger->output_schema;
    f1->root = MakeHashAggOp(
        std::move(merger), {Col(in, "k")}, {"k"},
        {{AggFn::kCount, nullptr, "cnt"}}, HashAggIterator::Mode::kShared);
    f1->nodes = {0, 1, 2};
    f1->out_exchange_id = 1;
    f1->partitioning = Partitioning::kToOne;
    f1->consumer_nodes = {0};
    plan.result_schema = f1->root->output_schema;
    plan.result_exchange_id = 1;
    plan.fragments.push_back(std::move(f0));
    plan.fragments.push_back(std::move(f1));
    return plan;
  };

  Executor exec(&cluster);
  ExecOptions opts;
  opts.parallelism = 2;
  opts.buffer_capacity_blocks = 2;
  opts.mode = ExecMode::kStatic;
  PhysicalPlan sp_plan = make_plan();
  auto sp = exec.Execute(sp_plan, opts);
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(sp->num_rows(), 500);
  int64_t sp_peak = exec.stats().peak_memory_bytes;

  opts.mode = ExecMode::kMaterialized;
  PhysicalPlan me_plan = make_plan();
  auto me = exec.Execute(me_plan, opts);
  ASSERT_TRUE(me.ok());
  EXPECT_EQ(me->num_rows(), 500);
  int64_t me_peak = exec.stats().peak_memory_bytes;
  // ME buffers the whole 3.6 MB shuffle; SP streams it through 2-block
  // channels/buffers.
  EXPECT_GT(me_peak, 2 * sp_peak);
}

TEST_F(ClusterExecTest, RemoteBytesOnlyForCrossNodeTraffic) {
  PhysicalPlan plan = GatherPlan(300);
  Executor exec(cluster_);
  ExecOptions opts;
  opts.mode = ExecMode::kStatic;
  ASSERT_TRUE(exec.Execute(plan, opts).ok());
  // Nodes 1,2 ship to master; node 0's share is loopback.
  EXPECT_GT(exec.stats().remote_bytes, 0);
}

TEST_F(ClusterExecTest, ElasticSchedulerExpandsSegments) {
  // With 8 cores/node and initial parallelism 1, the dynamic scheduler should
  // raise parallelism while the query runs (free-core expansion).
  TablePtr kv1 = *catalog_->GetTable("kv1");
  PhysicalPlan plan = JoinAggPlan();
  Executor exec(cluster_);
  ExecOptions opts;
  opts.mode = ExecMode::kElastic;
  opts.parallelism = 1;
  auto result = exec.Execute(plan, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 300);
}

TEST_F(ClusterExecTest, ExplainRendersPlan) {
  PhysicalPlan plan = JoinAggPlan();
  std::string text = plan.ToString();
  EXPECT_NE(text.find("HashJoin"), std::string::npos);
  EXPECT_NE(text.find("HashAgg"), std::string::npos);
  EXPECT_NE(text.find("Scan(kv1)"), std::string::npos);
  EXPECT_NE(text.find("hash on 0"), std::string::npos);
}

/// A deliberately slow query for cancellation tests: dense self-join of a
/// low-cardinality key (every probe row matches n/300 build rows), so the
/// pipeline streams millions of join rows through the aggregation.
class ClusterCancelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog;
    Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
    auto t = std::make_shared<Table>("fat", s, kNodes, std::vector<int>{});
    for (int i = 0; i < 60000; ++i) {
      t->AppendValues({Value::Int32(i % 300), Value::Int64(i)});
    }
    ASSERT_TRUE(catalog_->RegisterTable(std::move(t)).ok());
    ClusterOptions copts;
    copts.num_nodes = kNodes;
    copts.cores_per_node = 4;
    cluster_ = new Cluster(copts, catalog_);
  }
  static void TearDownTestSuite() {
    delete cluster_;
    delete catalog_;
  }

  /// Repartition fat on k, self-join with a co-located scan, count per key:
  /// 60000 × 200 = 12M join rows — seconds of work if left to finish.
  static PhysicalPlan SlowJoinPlan() {
    TablePtr fat = *catalog_->GetTable("fat");
    PhysicalPlan plan;
    auto f0 = std::make_unique<Fragment>();
    f0->id = 0;
    f0->root = MakeScanOp(*fat);
    f0->nodes = {0, 1, 2};
    f0->out_exchange_id = 0;
    f0->partitioning = Partitioning::kHash;
    f0->hash_cols = {0};
    f0->consumer_nodes = {0, 1, 2};

    auto f1 = std::make_unique<Fragment>();
    f1->id = 1;
    auto merger = MakeMergerOp(0, f0->root->output_schema);
    auto join = MakeHashJoinOp(std::move(merger), MakeScanOp(*fat),
                               /*build_keys=*/{0}, /*probe_keys=*/{0});
    const Schema join_schema = join->output_schema;
    f1->root = MakeHashAggOp(std::move(join), {Col(join_schema, "k")}, {"k"},
                             {{AggFn::kCount, nullptr, "cnt"}},
                             HashAggIterator::Mode::kShared);
    f1->nodes = {0, 1, 2};
    f1->out_exchange_id = 1;
    f1->partitioning = Partitioning::kToOne;
    f1->consumer_nodes = {0};

    plan.result_schema = f1->root->output_schema;
    plan.result_exchange_id = 1;
    plan.fragments.push_back(std::move(f0));
    plan.fragments.push_back(std::move(f1));
    return plan;
  }

  static Catalog* catalog_;
  static Cluster* cluster_;
};

Catalog* ClusterCancelTest::catalog_ = nullptr;
Cluster* ClusterCancelTest::cluster_ = nullptr;

TEST_F(ClusterCancelTest, CancelMidStreamReturnsCancelled) {
  PhysicalPlan plan = SlowJoinPlan();
  Executor exec(cluster_);
  ExecOptions opts;
  opts.mode = ExecMode::kElastic;
  opts.parallelism = 1;
  opts.buffer_capacity_blocks = 2;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    exec.Cancel();
  });
  auto result = exec.Execute(plan, opts);
  canceller.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
}

TEST_F(ClusterCancelTest, CancelBeforeExecuteIsSticky) {
  PhysicalPlan plan = SlowJoinPlan();
  Executor exec(cluster_);
  exec.Cancel();
  auto result = exec.Execute(plan, ExecOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(ClusterCancelTest, DeadlineCancelsMidStream) {
  PhysicalPlan plan = SlowJoinPlan();
  Executor exec(cluster_);
  ExecOptions opts;
  opts.mode = ExecMode::kElastic;
  opts.parallelism = 1;
  opts.buffer_capacity_blocks = 2;
  opts.deadline_ns = SteadyClock::Default()->NowNanos() + 50'000'000;  // 50 ms
  auto result = exec.Execute(plan, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
  // The watchdog fired roughly at the deadline, not after the full join.
  EXPECT_LT(exec.stats().elapsed_ns, 2'000'000'000);
}

TEST_F(ClusterCancelTest, ExpiredDeadlineFailsFast) {
  PhysicalPlan plan = SlowJoinPlan();
  Executor exec(cluster_);
  ExecOptions opts;
  opts.deadline_ns = SteadyClock::Default()->NowNanos() - 1;
  auto result = exec.Execute(plan, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ClusterExecTest, PlanErrorOnBadScanPlacement) {
  TablePtr kv2 = *catalog_->GetTable("kv2");
  PhysicalPlan plan;
  auto f = std::make_unique<Fragment>();
  f->id = 0;
  f->root = MakeScanOp(*kv2);
  f->nodes = {0, 1, 2, 3, 4};  // more nodes than partitions
  f->out_exchange_id = 0;
  f->consumer_nodes = {0};
  plan.result_schema = f->root->output_schema;
  plan.result_exchange_id = 0;
  plan.fragments.push_back(std::move(f));
  Executor exec(cluster_);
  auto result = exec.Execute(plan, ExecOptions{});
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace claims
