#include "core/scalability_vector.h"

#include <gtest/gtest.h>

namespace claims {
namespace {

constexpr int64_t kSec = 1'000'000'000;

TEST(ScalabilityVectorTest, FreshEntryUsedDirectly) {
  ScalabilityVector v(24);
  v.Update(4, 400.0, /*now=*/10 * kSec);
  auto est = v.Estimate(4, 10 * kSec, /*freshness=*/2 * kSec);
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(*est, 400.0);
}

TEST(ScalabilityVectorTest, StaleEntryFallsBackToScaling) {
  ScalabilityVector v(24);
  v.Update(4, 400.0, 0);
  v.Update(2, 250.0, 10 * kSec);  // fresh
  // Entry at 4 is stale (10 s old); nearest valid anchor preference is still
  // by distance: p=4 itself is the nearest anchor (distance 0) and is used
  // for proportional scaling.
  auto est = v.Estimate(4, 10 * kSec, 2 * kSec);
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(*est, 400.0);  // 400 * 4/4
}

TEST(ScalabilityVectorTest, NeighborScaling) {
  ScalabilityVector v(24);
  v.Update(3, 300.0, 10 * kSec);
  // No entry at 4: scale the p=3 record linearly (§4.4).
  auto est = v.Estimate(4, 10 * kSec, 2 * kSec);
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(*est, 400.0);
  est = v.Estimate(2, 10 * kSec, 2 * kSec);
  EXPECT_DOUBLE_EQ(*est, 200.0);
}

TEST(ScalabilityVectorTest, EmptyVectorReturnsNothing) {
  ScalabilityVector v(24);
  EXPECT_FALSE(v.Estimate(4, 0, kSec).has_value());
}

TEST(ScalabilityVectorTest, ZeroParallelismIsZero) {
  ScalabilityVector v(24);
  v.Update(1, 100.0, 0);
  auto est = v.Estimate(0, 0, kSec);
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(*est, 0.0);
}

TEST(ScalabilityVectorTest, InvalidateClearsForNewStage) {
  ScalabilityVector v(24);
  v.Update(4, 400.0, 0);
  v.Invalidate();
  EXPECT_FALSE(v.Estimate(4, 0, kSec).has_value());
  EXPECT_FALSE(v.Raw(4).has_value());
}

TEST(ScalabilityVectorTest, RawExposesOnlyValidEntries) {
  ScalabilityVector v(8);
  EXPECT_FALSE(v.Raw(3).has_value());
  v.Update(3, 42.0, 0);
  ASSERT_TRUE(v.Raw(3).has_value());
  EXPECT_DOUBLE_EQ(*v.Raw(3), 42.0);
}

TEST(ScalabilityVectorTest, ClampsAboveMax) {
  ScalabilityVector v(4);
  v.Update(4, 100.0, 0);
  // Asking for p beyond max uses the clamped entry.
  auto est = v.Estimate(9, 0, kSec);
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(*est, 100.0);
}

TEST(ScalabilityVectorTest, PrefersNearestAnchor) {
  ScalabilityVector v(24);
  v.Update(2, 200.0, 0);
  v.Update(10, 500.0, 0);
  // p=3 is nearest to the p=2 anchor.
  auto est = v.Estimate(3, 10 * kSec, kSec);
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(*est, 300.0);  // 200 * 3/2
}

}  // namespace
}  // namespace claims
