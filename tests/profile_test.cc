// Causal query profiler tests: assembler attribution and critical-path
// stitching on synthetic span logs, the open-span registry lifecycle, and
// end-to-end profiles of real multi-segment executions — including span
// propagation under drop/duplicate/retry faults (no leaked open spans, no
// double-counted receives, no mislinked exchange jumps).

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "cluster/executor.h"
#include "fault/injector.h"
#include "obs/profile/assembler.h"
#include "obs/profile/profiler.h"

namespace claims {
namespace {

constexpr int64_t kMs = 1'000'000;

ProfSpan MakeSpan(uint64_t qid, SpanKind kind, const char* segment,
                  int64_t start_ms, int64_t end_ms) {
  ProfSpan s;
  s.query_id = qid;
  s.kind = kind;
  s.segment = segment;
  s.start_ns = start_ms * kMs;
  s.end_ns = end_ms * kMs;
  return s;
}

// --- assembler: operator attribution ---------------------------------------------

TEST(AssemblerTest, OperatorExclusiveTimesTelescope) {
  // One segment, a three-operator chain: agg(0) ← join(1) ← scan(2).
  AssembleInput in;
  in.query_id = 1;
  in.start_ns = 0;
  in.end_ns = 100 * kMs;
  auto op = [&](int id, int parent, const char* name, int64_t busy_ms) {
    ProfSpan s = MakeSpan(1, SpanKind::kOperator, "S0@n0", 0, 100);
    s.name = name;
    s.op_id = id;
    s.parent_op = parent;
    s.busy_ns = busy_ms * kMs;
    in.spans.push_back(std::move(s));
  };
  op(0, -1, "hash-agg", 100);
  op(1, 0, "hash-join", 60);
  op(2, 1, "scan", 20);
  auto p = AssembleQueryProfile(std::move(in));

  ASSERT_EQ(p->operators.size(), 3u);
  EXPECT_EQ(p->operator_total_ns, 100 * kMs);  // root inclusive
  // Exclusive = inclusive − Σ children: 40 + 40 + 20 telescopes to 100.
  EXPECT_EQ(p->operator_exclusive_sum_ns, 100 * kMs);
  for (const ProfOperatorStat& st : p->operators) {
    if (st.op_id == 0) EXPECT_EQ(st.exclusive_ns, 40 * kMs);
    if (st.op_id == 1) EXPECT_EQ(st.exclusive_ns, 40 * kMs);
    if (st.op_id == 2) EXPECT_EQ(st.exclusive_ns, 20 * kMs);
  }
}

// --- assembler: critical path ----------------------------------------------------

/// Producer S0@n1 runs [0,50) and ships batch (exchange 5, seq 7) at
/// [45,46); consumer S1@n0 runs [0,100) and starves [10,46) until that batch
/// lands. The backward walk must jump producer-ward across the exchange.
AssembleInput TwoSegmentInput(uint64_t resolved_seq) {
  AssembleInput in;
  in.query_id = 2;
  in.start_ns = 0;
  in.end_ns = 100 * kMs;

  ProfSpan prod = MakeSpan(2, SpanKind::kSegment, "S0@n1", 0, 50);
  prod.node = 1;
  in.spans.push_back(prod);
  ProfSpan cons = MakeSpan(2, SpanKind::kSegment, "S1@n0", 0, 100);
  in.spans.push_back(cons);

  ProfSpan send = MakeSpan(2, SpanKind::kNetSend, "S0@n1", 45, 46);
  send.node = 1;
  send.exchange_id = 5;
  send.from_node = 1;
  send.to_node = 0;
  send.wire_seq = 7;
  in.spans.push_back(send);

  ProfSpan recv = MakeSpan(2, SpanKind::kNetRecv, "S1@n0", 46, 46);
  recv.exchange_id = 5;
  recv.from_node = 1;
  recv.to_node = 0;
  recv.wire_seq = 7;
  in.spans.push_back(recv);

  ProfSpan wait = MakeSpan(2, SpanKind::kBlockedInput, "S1@n0", 10, 46);
  wait.exchange_id = 5;
  wait.from_node = 1;
  wait.to_node = 0;
  wait.wire_seq = resolved_seq;
  in.spans.push_back(wait);
  return in;
}

TEST(AssemblerTest, CriticalPathJumpsAcrossLinkedExchange) {
  auto p = AssembleQueryProfile(TwoSegmentInput(/*resolved_seq=*/7));
  EXPECT_GE(p->critical_path_coverage, 0.99);
  EXPECT_EQ(p->linked_recv_spans, 1);
  EXPECT_EQ(p->total_recv_spans, 1);

  bool exchange_step = false;
  bool producer_compute = false;
  for (const ProfPathStep& s : p->critical_path) {
    if (s.what == "exchange") {
      exchange_step = true;
      EXPECT_EQ(s.segment, "S0@n1->S1@n0");
    }
    if (s.what == "compute" && s.segment == "S0@n1") producer_compute = true;
  }
  EXPECT_TRUE(exchange_step) << "no exchange jump in the critical path";
  EXPECT_TRUE(producer_compute) << "walk never reached the producer";
  // Steps partition the wall time: durations sum to coverage × wall.
  int64_t sum = 0;
  for (const ProfPathStep& s : p->critical_path) sum += s.dur_ns();
  EXPECT_NEAR(static_cast<double>(sum),
              p->critical_path_coverage * static_cast<double>(p->wall_ns()),
              static_cast<double>(kMs));
}

TEST(AssemblerTest, UnresolvedWaitStaysOnConsumerAsBlockedInput) {
  // wire_seq 0 = "no link recorded": the walk must not fabricate an edge.
  auto p = AssembleQueryProfile(TwoSegmentInput(/*resolved_seq=*/0));
  bool blocked_step = false;
  for (const ProfPathStep& s : p->critical_path) {
    EXPECT_NE(s.what, "exchange");
    if (s.what == "blocked-input") blocked_step = true;
  }
  EXPECT_TRUE(blocked_step);
}

TEST(AssemblerTest, RendersAllThreeViews) {
  auto p = AssembleQueryProfile(TwoSegmentInput(7));
  EXPECT_NE(p->ToJson().find("\"critical_path\":{\"coverage\":"),
            std::string::npos);
  EXPECT_NE(p->ToText().find("critical path"), std::string::npos);
  EXPECT_NE(p->ToText().find("timeline"), std::string::npos);
  // Perfetto export carries flow arrows for the matched send/recv pair.
  const std::string perfetto = p->ToPerfettoJson();
  EXPECT_NE(perfetto.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(perfetto.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(perfetto.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_FALSE(p->Summary().empty());
}

// --- open-span registry ----------------------------------------------------------

TEST(ProfilerTest, OpenSpanLifecycleAndDoubleCloseSafety) {
  QueryProfiler* prof = QueryProfiler::Global();
  prof->Clear();
  ProfilerArmScope armed;

  ProfSpan s = MakeSpan(91, SpanKind::kBlockedInput, "S1@n0", 1, 0);
  s.exchange_id = 3;
  uint64_t token = prof->BeginOpen(s);
  ASSERT_NE(token, 0u);
  EXPECT_EQ(prof->open_span_count(), 1u);
  EXPECT_NE(prof->OpenSpansText().find("S1@n0"), std::string::npos);

  prof->EndOpen(token, 5 * kMs, /*resolved_wire_seq=*/9,
                /*resolved_from_node=*/2);
  EXPECT_EQ(prof->open_span_count(), 0u);
  prof->EndOpen(token, 9 * kMs);  // double close: ignored, no second span
  prof->AbortOpen(token);         // ditto

  std::vector<ProfSpan> taken = prof->TakeQuery(91);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].end_ns, 5 * kMs);
  EXPECT_EQ(taken[0].wire_seq, 9u);  // link key stamped at resolution
  EXPECT_EQ(taken[0].from_node, 2);

  uint64_t t2 = prof->BeginOpen(s);
  ASSERT_NE(t2, 0u);
  prof->AbortOpen(t2);
  EXPECT_EQ(prof->open_span_count(), 0u);
  EXPECT_TRUE(prof->TakeQuery(91).empty());  // aborted spans leave no trace
  EXPECT_TRUE(prof->OpenSpansText().empty());
}

// --- end-to-end on the real executor ---------------------------------------------

constexpr int kNodes = 3;

ExprPtr Col(const Schema& s, const char* name) {
  int i = s.FindColumn(name);
  EXPECT_GE(i, 0) << name;
  return MakeColumnRef(i, s.column(i).type, name);
}

/// Same dataset shape as the fault tests: kva round-robin (repartitioned on
/// k for the build side), kvb hash-partitioned on k (co-located probe side),
/// so the join result is deterministic: (rows/300)² matches per key.
struct ProfiledCluster {
  explicit ProfiledCluster(int rows = 24000) {
    {
      Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
      auto t = std::make_shared<Table>("kva", s, kNodes, std::vector<int>{});
      for (int i = 0; i < rows; ++i) {
        t->AppendValues({Value::Int32(i % 300), Value::Int64(i)});
      }
      EXPECT_TRUE(catalog.RegisterTable(std::move(t)).ok());
    }
    {
      Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("w")});
      auto t = std::make_shared<Table>("kvb", s, kNodes, std::vector<int>{0});
      for (int i = 0; i < rows; ++i) {
        t->AppendValues({Value::Int32(i % 300), Value::Int64(i)});
      }
      EXPECT_TRUE(catalog.RegisterTable(std::move(t)).ok());
    }
    ClusterOptions copts;
    copts.num_nodes = kNodes;
    copts.cores_per_node = 4;
    copts.scheduler_period_ms = 5;  // many audit ticks within a short query
    cluster = std::make_unique<Cluster>(copts, &catalog);
  }

  /// Repartition kva on k (exchange 0), join against the co-partitioned kvb
  /// scan, count per key, gather (exchange 1): two segment layers, real
  /// cross-node exchanges on every run.
  PhysicalPlan JoinPlan() {
    TablePtr kva = *catalog.GetTable("kva");
    TablePtr kvb = *catalog.GetTable("kvb");
    PhysicalPlan plan;
    auto f0 = std::make_unique<Fragment>();
    f0->id = 0;
    f0->root = MakeScanOp(*kva);
    f0->nodes = {0, 1, 2};
    f0->out_exchange_id = 0;
    f0->partitioning = Partitioning::kHash;
    f0->hash_cols = {0};
    f0->consumer_nodes = {0, 1, 2};

    auto f1 = std::make_unique<Fragment>();
    f1->id = 1;
    auto merger = MakeMergerOp(0, f0->root->output_schema);
    auto join = MakeHashJoinOp(std::move(merger), MakeScanOp(*kvb),
                               /*build_keys=*/{0}, /*probe_keys=*/{0});
    const Schema join_schema = join->output_schema;
    f1->root = MakeHashAggOp(std::move(join), {Col(join_schema, "k")}, {"k"},
                             {{AggFn::kCount, nullptr, "cnt"}},
                             HashAggIterator::Mode::kShared);
    f1->nodes = {0, 1, 2};
    f1->out_exchange_id = 1;
    f1->partitioning = Partitioning::kToOne;
    f1->consumer_nodes = {0};

    plan.result_schema = f1->root->output_schema;
    plan.result_exchange_id = 1;
    plan.fragments.push_back(std::move(f0));
    plan.fragments.push_back(std::move(f1));
    return plan;
  }

  Catalog catalog;
  std::unique_ptr<Cluster> cluster;
};

TEST(ProfileEndToEndTest, MultiSegmentQueryMeetsAttributionBars) {
  QueryProfiler* prof = QueryProfiler::Global();
  prof->Clear();
  ProfiledCluster pc;
  ProfilerArmScope armed;

  Executor exec(pc.cluster.get());
  ExecOptions opts;
  opts.parallelism = 1;
  opts.query_id = 77;
  auto result = exec.Execute(pc.JoinPlan(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 300);

  // Nothing left mid-flight, and the assembler drained the span log.
  EXPECT_EQ(prof->open_span_count(), 0u);
  EXPECT_TRUE(prof->TakeQuery(77).empty());

  auto p = prof->GetProfile(77);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->query_id, 77u);
  EXPECT_GT(p->wall_ns(), 0);

  // Acceptance bars: the critical path explains ≥ 90% of wall time and the
  // per-operator exclusive times sum back to the total operator time within
  // 10% (the telescoping identity, modulo clock-read skew).
  EXPECT_GE(p->critical_path_coverage, 0.9) << p->ToText();
  ASSERT_GT(p->operator_total_ns, 0);
  EXPECT_NEAR(static_cast<double>(p->operator_exclusive_sum_ns),
              static_cast<double>(p->operator_total_ns),
              0.1 * static_cast<double>(p->operator_total_ns));

  // Cross-exchange causality: every receive links to a profiled send (both
  // sides of both exchanges ran under the same armed profiler).
  EXPECT_GT(p->total_recv_spans, 0);
  EXPECT_EQ(p->linked_recv_spans, p->total_recv_spans);

  // The scheduler decision audit is scoped to this query and shows the
  // estimated-vs-realized loop: after the first tick of a segment, later
  // ticks carry the rate the previous tick predicted.
  ASSERT_GE(p->audit.size(), 2u) << "query finished before two ticks";
  bool any_predicted = false;
  for (const SchedTickAudit& tick : p->audit) {
    for (const SchedTickAudit::Segment& seg : tick.segments) {
      EXPECT_EQ(seg.query_id, 77u);
      if (seg.predicted_rate >= 0 && seg.rate >= 0) any_predicted = true;
    }
  }
  EXPECT_TRUE(any_predicted)
      << "no tick recorded a prediction for a realized rate";

  // Surfaced in EXPLAIN ANALYZE.
  EXPECT_EQ(exec.report().profile_query_id, 77u);
  EXPECT_NE(exec.report().ToString().find("profile"), std::string::npos);
}

TEST(ProfileEndToEndTest, DisarmedRunEmitsNothingAndStoresNoProfile) {
  QueryProfiler* prof = QueryProfiler::Global();
  prof->Clear();
  ProfiledCluster pc(6000);
  Executor exec(pc.cluster.get());
  ExecOptions opts;
  opts.parallelism = 1;
  opts.query_id = 78;
  auto result = exec.Execute(pc.JoinPlan(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(prof->size(), 0u);
  EXPECT_EQ(prof->open_span_count(), 0u);
  EXPECT_EQ(prof->GetProfile(78), nullptr);
  EXPECT_EQ(exec.report().profile_query_id, 0u);
}

/// Satellite (c): span propagation under drop (with fabric retry) and
/// duplicate faults. Retried sends must yield exactly one send span keyed by
/// the delivered sequence; suppressed duplicate deliveries must not produce
/// a second receive span; teardown must not leak open spans.
TEST(ProfileEndToEndTest, SpanLinksSurviveDropDupRetryFaults) {
  // Seeded plan: drops force retries for ~10% of sends (exhaustion odds per
  // block ≈ 1e-5 with 5 attempts), duplicates hit half the deliveries.
  auto plan = ParseFaultPlan(
      "seed=23\n"
      "at=0ns kind=drop dur=10s p=0.1\n"
      "at=0ns kind=dup dur=10s p=0.5\n");
  ASSERT_TRUE(plan.ok());

  QueryProfiler* prof = QueryProfiler::Global();
  prof->Clear();
  ProfiledCluster pc;
  FaultInjector injector(*plan);
  pc.cluster->AttachFaultInjector(&injector);
  injector.Arm();
  ProfilerArmScope armed;

  Executor exec(pc.cluster.get());
  ExecOptions opts;
  opts.parallelism = 1;
  opts.query_id = 79;
  auto result = exec.Execute(pc.JoinPlan(), opts);

  injector.Disarm();
  pc.cluster->AttachFaultInjector(nullptr);

  // No leaked open spans and no stranded per-query spans, even if the storm
  // (astronomically unlikely) exhausted the retries and failed the query.
  EXPECT_EQ(prof->open_span_count(), 0u);
  EXPECT_TRUE(prof->TakeQuery(79).empty());

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 300);
  auto p = prof->GetProfile(79);
  ASSERT_NE(p, nullptr);

  // Every receive still links to exactly one send: retries reuse the send
  // span of the delivered attempt, duplicate deliveries are suppressed
  // before span emission.
  EXPECT_GT(p->total_recv_spans, 0);
  EXPECT_EQ(p->linked_recv_spans, p->total_recv_spans);
  std::set<std::tuple<int64_t, int, int, uint64_t>> recv_keys;
  for (const ProfSpan& s : p->spans) {
    if (s.kind != SpanKind::kNetRecv) continue;
    auto key = std::make_tuple(s.exchange_id, s.from_node, s.to_node,
                               s.wire_seq);
    EXPECT_TRUE(recv_keys.insert(key).second)
        << "duplicate receive span for one wire batch";
  }
  EXPECT_GE(p->critical_path_coverage, 0.9) << p->ToText();
}

}  // namespace
}  // namespace claims
