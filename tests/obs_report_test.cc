// ExecutionReport tests: after a 2-node cluster query the report's
// per-segment numbers must reconcile exactly with the SegmentStats the
// scheduler sampled during the run, and the parallelism timelines must come
// from the trace when tracing is on.

#include <gtest/gtest.h>

#include "cluster/executor.h"
#include "obs/trace.h"

namespace claims {
namespace {

constexpr int kNodes = 2;

ExprPtr Col(const Schema& s, const char* name) {
  int i = s.FindColumn(name);
  EXPECT_GE(i, 0) << name;
  return MakeColumnRef(i, s.column(i).type, name);
}

class ObsReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog;
    {
      Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
      auto t = std::make_shared<Table>("kv1", s, kNodes, std::vector<int>{});
      for (int i = 0; i < 20000; ++i) {
        t->AppendValues({Value::Int32(i % 100), Value::Int64(i)});
      }
      ASSERT_TRUE(catalog_->RegisterTable(std::move(t)).ok());
    }
    {
      Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("w")});
      auto t = std::make_shared<Table>("kv2", s, kNodes, std::vector<int>{0});
      for (int i = 0; i < 100; ++i) {
        t->AppendValues({Value::Int32(i), Value::Int64(i * 10)});
      }
      ASSERT_TRUE(catalog_->RegisterTable(std::move(t)).ok());
    }
    ClusterOptions copts;
    copts.num_nodes = kNodes;
    copts.cores_per_node = 4;
    copts.scheduler_period_ms = 2;
    cluster_ = new Cluster(copts, catalog_);
  }
  static void TearDownTestSuite() {
    delete cluster_;
    delete catalog_;
  }

  /// Repartition kv1 on k, join with co-located kv2, aggregate, gather.
  static PhysicalPlan JoinAggPlan() {
    TablePtr kv1 = *catalog_->GetTable("kv1");
    TablePtr kv2 = *catalog_->GetTable("kv2");
    PhysicalPlan plan;

    auto f0 = std::make_unique<Fragment>();
    f0->id = 0;
    f0->root = MakeScanOp(*kv1);
    f0->nodes = {0, 1};
    f0->out_exchange_id = 0;
    f0->partitioning = Partitioning::kHash;
    f0->hash_cols = {0};
    f0->consumer_nodes = {0, 1};

    auto f1 = std::make_unique<Fragment>();
    f1->id = 1;
    auto merger = MakeMergerOp(0, f0->root->output_schema);
    auto join = MakeHashJoinOp(std::move(merger), MakeScanOp(*kv2),
                               /*build_keys=*/{0}, /*probe_keys=*/{0});
    const Schema join_schema = join->output_schema;
    std::vector<HashAggIterator::Aggregate> aggs = {
        {AggFn::kSum, Col(join_schema, "v"), "sum_v"},
        {AggFn::kCount, nullptr, "cnt"},
    };
    f1->root = MakeHashAggOp(std::move(join), {Col(join_schema, "k")}, {"k"},
                             std::move(aggs), HashAggIterator::Mode::kShared);
    f1->nodes = {0, 1};
    f1->out_exchange_id = 1;
    f1->partitioning = Partitioning::kToOne;
    f1->consumer_nodes = {0};

    plan.result_schema = f1->root->output_schema;
    plan.result_exchange_id = 1;
    plan.fragments.push_back(std::move(f0));
    plan.fragments.push_back(std::move(f1));
    return plan;
  }

  static Catalog* catalog_;
  static Cluster* cluster_;
};

Catalog* ObsReportTest::catalog_ = nullptr;
Cluster* ObsReportTest::cluster_ = nullptr;

TEST_F(ObsReportTest, ReportReconcilesWithSegmentStats) {
  PhysicalPlan plan = JoinAggPlan();
  Executor exec(cluster_);
  ExecOptions opts;
  opts.mode = ExecMode::kElastic;
  opts.parallelism = 1;
  auto result = exec.Execute(plan, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 100);

  const ExecutionReport& report = exec.report();
  EXPECT_EQ(report.mode, "EP");
  EXPECT_EQ(report.result_tuples, 100);
  EXPECT_EQ(report.elapsed_ns, exec.stats().elapsed_ns);
  EXPECT_EQ(report.remote_bytes, exec.stats().remote_bytes);
  EXPECT_EQ(report.peak_memory_bytes, exec.stats().peak_memory_bytes);

  // One report row per segment instance: 2 fragments × 2 nodes.
  ASSERT_EQ(report.segments.size(), 4u);
  ASSERT_EQ(exec.segments().size(), 4u);
  int64_t scan_out = 0, agg_in = 0, agg_out = 0;
  for (size_t i = 0; i < report.segments.size(); ++i) {
    const SegmentReport& sr = report.segments[i];
    Segment& seg = *exec.segments()[i];
    EXPECT_EQ(sr.name, seg.name());
    EXPECT_EQ(sr.node_id, seg.node_id());
    // Exact reconciliation against the stats the scheduler sampled.
    SegmentStats* st = seg.stats();
    EXPECT_EQ(sr.input_tuples, st->input_tuples.load());
    EXPECT_EQ(sr.output_tuples, st->output_tuples.load());
    EXPECT_DOUBLE_EQ(sr.selectivity, st->selectivity());
    EXPECT_EQ(sr.blocked_input_ns, st->blocked_input_ns.load());
    EXPECT_EQ(sr.blocked_output_ns, st->blocked_output_ns.load());
    EXPECT_GT(sr.lifetime_ns, 0);
    EXPECT_GE(sr.peak_parallelism, 1);
    if (sr.name.rfind("S0", 0) == 0) {
      scan_out += sr.output_tuples;
    } else {
      agg_in += sr.input_tuples;
      agg_out += sr.output_tuples;
    }
  }
  // Dataflow conservation end to end: everything the scans emitted arrived
  // at the join/agg segments (whose input also counts the probe-side kv2
  // scan — 100 rows across the cluster — since a scan is a stage beginner
  // too), and the aggregation produced the result rows.
  EXPECT_EQ(scan_out, 20000);
  EXPECT_EQ(agg_in, 20000 + 100);
  EXPECT_EQ(agg_out, 100);

  std::string text = report.ToString();
  EXPECT_NE(text.find("Query (EP)"), std::string::npos);
  EXPECT_NE(text.find("S0@n0"), std::string::npos);
  EXPECT_NE(text.find("S1@n1"), std::string::npos);
}

TEST_F(ObsReportTest, TimelinesFilledWhenTracingEnabled) {
  TraceCollector* tc = TraceCollector::Global();
  tc->Clear();
  tc->Enable();
  PhysicalPlan plan = JoinAggPlan();
  Executor exec(cluster_);
  ExecOptions opts;
  opts.mode = ExecMode::kElastic;
  opts.parallelism = 1;
  auto result = exec.Execute(plan, opts);
  tc->Disable();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The long-lived join/agg segments span several scheduler ticks, so their
  // parallelism counter series must appear in the report.
  bool any_timeline = false;
  for (const SegmentReport& sr : exec.report().segments) {
    for (const auto& [ts, p] : sr.parallelism_timeline) {
      any_timeline = true;
      EXPECT_GE(p, 0);
      EXPECT_LE(p, 4);  // cores_per_node
    }
  }
  EXPECT_TRUE(any_timeline);

  // The capture itself holds the query span and scheduler decisions.
  bool saw_query = false, saw_tick = false;
  for (const TraceEvent& ev : tc->Snapshot()) {
    if (ev.phase == TraceEvent::Phase::kComplete &&
        ev.name.rfind("query", 0) == 0) {
      saw_query = true;
    }
    if (ev.name == "tick") saw_tick = true;
  }
  EXPECT_TRUE(saw_query);
  EXPECT_TRUE(saw_tick);
  tc->Clear();
}

TEST_F(ObsReportTest, TimelinesEmptyWhenTracingDisabled) {
  ASSERT_FALSE(TraceCollector::Global()->enabled());
  PhysicalPlan plan = JoinAggPlan();
  Executor exec(cluster_);
  ExecOptions opts;
  opts.mode = ExecMode::kStatic;
  opts.parallelism = 2;
  ASSERT_TRUE(exec.Execute(plan, opts).ok());
  for (const SegmentReport& sr : exec.report().segments) {
    EXPECT_TRUE(sr.parallelism_timeline.empty());
    EXPECT_EQ(sr.peak_parallelism, 2);
  }
  EXPECT_EQ(exec.report().mode, "SP");
}

TEST(ExtractCounterTimelineTest, FiltersAndCollapses) {
  std::vector<TraceEvent> events;
  auto counter = [](int64_t ts, const char* name, double v) {
    TraceEvent ev;
    ev.name = name;
    ev.phase = TraceEvent::Phase::kCounter;
    ev.ts_ns = ts;
    ev.AddArg(TraceArg("value", v));
    return ev;
  };
  events.push_back(counter(5, "parallelism:S1", 1));
  events.push_back(counter(10, "parallelism:S1", 1));  // duplicate: collapsed
  events.push_back(counter(15, "parallelism:S2", 9));  // other series
  events.push_back(counter(20, "parallelism:S1", 3));
  events.push_back(counter(99, "parallelism:S1", 4));  // outside window

  auto timeline = ExtractCounterTimeline(events, "parallelism:S1", 0, 50);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline[0], (std::pair<int64_t, int>{5, 1}));
  EXPECT_EQ(timeline[1], (std::pair<int64_t, int>{20, 3}));
}

}  // namespace
}  // namespace claims
