// Memory-subsystem tests: size-class boundary behavior, pool recycling and
// pressure caps, thread-local magazine exchange under multi-thread churn
// (the TSan target for cross-thread chunk handoff), QueryBudget ledger
// charge/release exactness, and the spill/restore round-trip the hash-agg
// degradation ladder depends on (docs/MEMORY.md).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/hash_table.h"
#include "mem/block_pool.h"
#include "mem/mem_source.h"
#include "mem/query_budget.h"
#include "mem/size_class.h"
#include "mem/spill.h"

namespace claims {
namespace {

// --- Size classes ---------------------------------------------------------------

TEST(SizeClassTest, BoundariesRoundToTheRightClass) {
  EXPECT_EQ(SizeClassFor(0), 0);
  EXPECT_EQ(SizeClassFor(1), 0);
  EXPECT_EQ(SizeClassFor(kMinSizeClassBytes), 0);
  EXPECT_EQ(SizeClassFor(kMinSizeClassBytes + 1), 1);
  EXPECT_EQ(SizeClassFor(2 * kMinSizeClassBytes), 1);
  EXPECT_EQ(SizeClassFor(kMaxSizeClassBytes), kNumSizeClasses - 1);
  EXPECT_EQ(SizeClassFor(kMaxSizeClassBytes + 1), -1);  // oversized
  for (int cls = 0; cls < kNumSizeClasses; ++cls) {
    EXPECT_EQ(SizeClassFor(SizeClassBytes(cls)), cls);
  }
}

TEST(BlockPoolTest, AllocationRoundsUpToItsClass) {
  BlockPool pool;
  PoolAlloc a = pool.Allocate(1);
  ASSERT_TRUE(a);
  EXPECT_EQ(a.bytes, kMinSizeClassBytes);
  EXPECT_EQ(a.size_class, 0);

  PoolAlloc b = pool.Allocate(kMinSizeClassBytes + 1);
  ASSERT_TRUE(b);
  EXPECT_EQ(b.bytes, 2 * kMinSizeClassBytes);
  EXPECT_EQ(b.size_class, 1);

  // Oversized requests are served exactly and never cached.
  PoolAlloc big = pool.Allocate(kMaxSizeClassBytes + 1);
  ASSERT_TRUE(big);
  EXPECT_EQ(big.bytes, kMaxSizeClassBytes + 1);
  EXPECT_EQ(big.size_class, -1);
  EXPECT_GE(pool.GetStats().oversized, 1);

  pool.Release(a);
  pool.Release(b);
  pool.Release(big);
  EXPECT_EQ(pool.GetStats().live_bytes, 0);
}

TEST(BlockPoolTest, ReleasedChunksAreRecycled) {
  BlockPool pool;
  const size_t kBytes = 64 << 10;
  PoolAlloc a = pool.Allocate(kBytes);
  ASSERT_TRUE(a);
  std::memset(a.data, 0xAB, a.bytes);
  pool.Release(a);

  BlockPool::Stats before = pool.GetStats();
  PoolAlloc b = pool.Allocate(kBytes);
  ASSERT_TRUE(b);
  BlockPool::Stats after = pool.GetStats();
  EXPECT_GT(after.hits, before.hits);
  EXPECT_GT(after.recycled_bytes, before.recycled_bytes);
  pool.Release(b);
}

TEST(BlockPoolTest, PressureCapRefusesStrictAdmitsNonStrict) {
  BlockPool pool;
  pool.SetPressureCapBytes(16 << 10);  // room for ~one 16 KiB chunk

  PoolAlloc first = pool.Allocate(16 << 10, /*strict=*/true);
  ASSERT_TRUE(first);

  // Over the cap: strict refuses, non-strict falls through (and is counted).
  PoolAlloc refused = pool.Allocate(16 << 10, /*strict=*/true);
  EXPECT_FALSE(refused);
  PoolAlloc fallback = pool.Allocate(16 << 10, /*strict=*/false);
  ASSERT_TRUE(fallback);

  BlockPool::Stats stats = pool.GetStats();
  EXPECT_GE(stats.pressure_rejects, 1);
  EXPECT_GE(stats.pressure_fallbacks, 1);

  // Uncapping restores strict service.
  pool.SetPressureCapBytes(0);
  PoolAlloc again = pool.Allocate(16 << 10, /*strict=*/true);
  EXPECT_TRUE(again);

  pool.Release(first);
  pool.Release(fallback);
  pool.Release(again);
  EXPECT_EQ(pool.GetStats().live_bytes, 0);
}

// 8 threads hammer the pool through their thread-local magazines, half the
// releases crossing threads through a shared queue so chunks migrate between
// caches via the central tier. Under TSan this is the test that drives the
// release/acquire chain on recycled memory.
TEST(BlockPoolTest, EightThreadChurnExchangesMagazinesCleanly) {
  BlockPool pool;
  const int kThreads = 8;
  const int kIters = 400;

  std::mutex handoff_mu;
  std::deque<PoolAlloc> handoff;
  std::atomic<int64_t> corrupt{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // Cycle through several classes so magazines overflow and refill.
        size_t bytes = kMinSizeClassBytes << ((t + i) % 4);
        PoolAlloc a = pool.Allocate(bytes);
        ASSERT_TRUE(a);
        // Stamp the chunk; whoever frees it verifies the stamp survived.
        std::memset(a.data, t + 1, 64);
        if (a.data[0] != t + 1 || a.data[63] != t + 1) corrupt.fetch_add(1);
        if (i % 2 == 0) {
          pool.Release(a);
        } else {
          std::lock_guard<std::mutex> lock(handoff_mu);
          handoff.push_back(a);
        }
        // Drain someone else's chunk (cross-thread release).
        PoolAlloc other;
        {
          std::lock_guard<std::mutex> lock(handoff_mu);
          if (!handoff.empty()) {
            other = handoff.front();
            handoff.pop_front();
          }
        }
        if (other) {
          if (other.data[0] < 1 || other.data[0] > kThreads) {
            corrupt.fetch_add(1);
          }
          pool.Release(other);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (PoolAlloc& a : handoff) pool.Release(a);

  EXPECT_EQ(corrupt.load(), 0);
  BlockPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.live_bytes, 0);
  // Churn this heavy must be served mostly from recycling, not the OS.
  EXPECT_GT(stats.hits, stats.misses);
}

// --- QueryBudget ledger ---------------------------------------------------------

TEST(QueryBudgetTest, ChargeReleaseIsExact) {
  QueryBudget budget("q-test", 1 << 20);
  EXPECT_TRUE(budget.TryCharge(512 << 10));
  EXPECT_EQ(budget.charged_bytes(), 512 << 10);
  EXPECT_TRUE(budget.TryCharge(512 << 10));
  EXPECT_EQ(budget.charged_bytes(), 1 << 20);
  // The ledger invariant: a charge that would exceed the budget never lands.
  EXPECT_FALSE(budget.TryCharge(1));
  EXPECT_EQ(budget.charged_bytes(), 1 << 20);
  budget.Release(512 << 10);
  EXPECT_EQ(budget.charged_bytes(), 512 << 10);
  budget.Release(512 << 10);
  EXPECT_EQ(budget.charged_bytes(), 0);
  EXPECT_EQ(budget.peak_charged_bytes(), 1 << 20);
  EXPECT_FALSE(budget.rejected());  // refusal alone never latches rejection
}

TEST(QueryBudgetTest, ChargeInvokesShrinkHookAndRetries) {
  QueryBudget budget("q-shrink", 1024);
  ASSERT_TRUE(budget.TryCharge(1024));
  int shrinks = 0;
  budget.SetShrinkHook([&] {
    ++shrinks;
    budget.Release(512);  // the executor freeing a worker's buffers
    return true;
  });
  EXPECT_TRUE(budget.Charge(256));
  EXPECT_EQ(shrinks, 1);
  EXPECT_EQ(budget.charged_bytes(), 768);
  // Hook that frees nothing: the retry fails, nothing is charged.
  budget.SetShrinkHook([&] {
    ++shrinks;
    return false;
  });
  EXPECT_FALSE(budget.Charge(1024));
  EXPECT_EQ(shrinks, 2);
  EXPECT_EQ(budget.charged_bytes(), 768);
}

TEST(QueryBudgetTest, ConcurrentChargesNeverExceedBudget) {
  const int64_t kBudget = 1 << 20;
  QueryBudget budget("q-conc", kBudget);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> violations{0};

  // A sampler thread plays the role of the stress harness's 1 ms probe.
  std::thread sampler([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (budget.charged_bytes() > kBudget) violations.fetch_add(1);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> chargers;
  for (int t = 0; t < 8; ++t) {
    chargers.emplace_back([&, t] {
      const int64_t bytes = (t + 1) * 4096;
      for (int i = 0; i < 2000; ++i) {
        if (budget.TryCharge(bytes)) budget.Release(bytes);
      }
    });
  }
  for (auto& th : chargers) th.join();
  stop.store(true, std::memory_order_release);
  sampler.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(budget.charged_bytes(), 0);
  EXPECT_LE(budget.peak_charged_bytes(), kBudget);
}

// --- MemSource: pool + budget handshake -----------------------------------------

TEST(MemSourceTest, ChunkChargesActualBytesAndRefundsOnRelease) {
  BlockPool pool;
  QueryBudget budget("q-src", 1 << 20);
  MemSource source{&pool, nullptr, &budget};

  PoolAlloc a = source.AllocateChunk(10'000);  // rounds up to 16 KiB
  ASSERT_TRUE(a);
  EXPECT_EQ(a.bytes, size_t{16} << 10);
  EXPECT_EQ(budget.charged_bytes(), 16 << 10);  // actual, not requested

  source.ReleaseChunk(a);
  EXPECT_EQ(budget.charged_bytes(), 0);
  EXPECT_EQ(pool.GetStats().live_bytes, 0);
}

TEST(MemSourceTest, BudgetRefusalReturnsChunkToPool) {
  BlockPool pool;
  QueryBudget budget("q-tiny", 4096);
  MemSource source{&pool, nullptr, &budget};

  PoolAlloc a = source.AllocateChunk(64 << 10);  // over budget
  EXPECT_FALSE(a);
  EXPECT_EQ(budget.charged_bytes(), 0);
  EXPECT_EQ(pool.GetStats().live_bytes, 0);  // refused chunk went back
}

// --- Arena recycling ------------------------------------------------------------

TEST(ArenaPoolTest, ResetReturnsChunksToThePool) {
  BlockPool pool;
  QueryBudget budget("q-arena", 8 << 20);
  Arena arena(64 << 10, MemSource{&pool, nullptr, &budget});
  for (int i = 0; i < 32; ++i) arena.Allocate(16 << 10);
  EXPECT_GT(budget.charged_bytes(), 0);
  int64_t live_before = pool.GetStats().live_bytes;
  EXPECT_GT(live_before, 0);

  arena.Reset();
  EXPECT_EQ(budget.charged_bytes(), 0);  // every chunk refunded
  EXPECT_EQ(pool.GetStats().live_bytes, 0);

  // The next fill is served from the chunks Reset parked in the pool.
  BlockPool::Stats before = pool.GetStats();
  for (int i = 0; i < 32; ++i) arena.Allocate(16 << 10);
  EXPECT_GT(pool.GetStats().recycled_bytes, before.recycled_bytes);
}

// --- Spill round-trip -----------------------------------------------------------

TEST(SpillRunTest, ReadBackIsByteIdentical) {
  auto run = SpillRun::Create();
  ASSERT_NE(run, nullptr);
  std::vector<char> payload(100'000);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>((i * 31 + 7) & 0xFF);
  }
  ASSERT_TRUE(run->Append(payload.data(), 40'000).ok());
  ASSERT_TRUE(run->Append(payload.data() + 40'000, 60'000).ok());
  ASSERT_TRUE(run->Finish().ok());
  EXPECT_EQ(run->bytes(), 100'000);

  std::vector<char> back;
  ASSERT_TRUE(run->ReadAll(&back).ok());
  ASSERT_EQ(back.size(), payload.size());
  EXPECT_EQ(std::memcmp(back.data(), payload.data(), payload.size()), 0);
}

TEST(SpillRunTest, AggTableSpillRestoreRoundTrip) {
  Schema group({ColumnDef::Int32("g")});
  std::vector<AggFn> fns = {AggFn::kSum, AggFn::kCount};
  AggHashTable table(group, 2, 64);
  std::vector<char> grow(group.row_size());
  for (int i = 0; i < 1000; ++i) {
    group.SetInt32(grow.data(), 0, i % 13);
    double values[2] = {static_cast<double>(i), 0};
    int64_t weights[2] = {1, 1};
    ASSERT_TRUE(table.Update(grow.data(), fns, values, weights));
  }

  auto run = SpillRun::Create();
  ASSERT_NE(run, nullptr);
  ASSERT_TRUE(table.SerializeTo(run.get()).ok());
  ASSERT_TRUE(run->Finish().ok());

  // Restore into a fresh table, fold the same live updates on top, and check
  // the merge matches doubling the live table: spill+merge loses nothing.
  std::vector<char> bytes;
  ASSERT_TRUE(run->ReadAll(&bytes).ok());
  AggHashTable restored(group, 2, 64);
  ASSERT_TRUE(AggHashTable::MergeSerialized(bytes.data(), bytes.size(), fns,
                                            &restored)
                  .ok());
  ASSERT_EQ(restored.size(), table.size());

  std::map<int32_t, std::pair<double, int64_t>> want, got;
  table.ForEach([&](const char* row, const AggHashTable::AggState* states) {
    want[group.GetInt32(row, 0)] = {states[0].sum, states[1].count};
  });
  restored.ForEach([&](const char* row, const AggHashTable::AggState* states) {
    got[group.GetInt32(row, 0)] = {states[0].sum, states[1].count};
  });
  EXPECT_EQ(want, got);
}

}  // namespace
}  // namespace claims
