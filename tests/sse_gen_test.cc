#include "storage/datagen/sse_gen.h"

#include <gtest/gtest.h>

#include <map>

namespace claims {
namespace {

SseConfig SmallConfig() {
  SseConfig c;
  c.securities_rows = 5000;
  c.trades_rows = 8000;
  c.num_accounts = 500;
  c.num_securities = 100;
  c.num_partitions = 4;
  return c;
}

TEST(SseGenTest, SchemasMatchPaper) {
  Catalog cat;
  ASSERT_TRUE(GenerateSse(SmallConfig(), &cat).ok());
  TablePtr sec = *cat.GetTable("securities");
  TablePtr trades = *cat.GetTable("trades");
  EXPECT_EQ(sec->schema().ToString(),
            "order_no INT64, acct_id INT32, sec_code INT32, entry_date DATE, "
            "entry_volume INT64");
  EXPECT_EQ(trades->schema().ToString(),
            "acct_id INT32, sec_code INT32, trade_date DATE, trade_time INT32, "
            "order_price FLOAT64, trade_volume INT64");
  EXPECT_EQ(sec->num_rows(), 5000);
  EXPECT_EQ(trades->num_rows(), 8000);
}

TEST(SseGenTest, PartitioningPerPaper) {
  Catalog cat;
  ASSERT_TRUE(GenerateSse(SmallConfig(), &cat).ok());
  // §5.3: Trades on sec_code (col 1), Securities on acct_id (col 1).
  EXPECT_TRUE((*cat.GetTable("trades"))->IsPartitionedOn({1}));
  EXPECT_TRUE((*cat.GetTable("securities"))->IsPartitionedOn({1}));
}

TEST(SseGenTest, DatesWithinQuarter) {
  Catalog cat;
  ASSERT_TRUE(GenerateSse(SmallConfig(), &cat).ok());
  TablePtr trades = *cat.GetTable("trades");
  const Schema& s = trades->schema();
  int col = s.FindColumn("trade_date");
  int32_t lo = DaysFromCivil(2010, 8, 2);
  int32_t hi = DaysFromCivil(2010, 10, 30);
  bool saw_filter_date = false;
  for (int p = 0; p < trades->num_partitions(); ++p) {
    const TablePartition& part = trades->partition(p);
    for (int b = 0; b < part.num_blocks(); ++b) {
      const Block& blk = *part.block(b);
      for (int r = 0; r < blk.num_rows(); ++r) {
        int32_t d = s.GetInt32(blk.RowAt(r), col);
        ASSERT_GE(d, lo);
        ASSERT_LE(d, hi);
        if (d == hi) saw_filter_date = true;
      }
    }
  }
  EXPECT_TRUE(saw_filter_date);  // 2010-10-30 rows exist for SSE queries
}

TEST(SseGenTest, ZipfSkewOnSecurities) {
  Catalog cat;
  ASSERT_TRUE(GenerateSse(SmallConfig(), &cat).ok());
  TablePtr trades = *cat.GetTable("trades");
  const Schema& s = trades->schema();
  int col = s.FindColumn("sec_code");
  std::map<int32_t, int> counts;
  for (int p = 0; p < trades->num_partitions(); ++p) {
    const TablePartition& part = trades->partition(p);
    for (int b = 0; b < part.num_blocks(); ++b) {
      const Block& blk = *part.block(b);
      for (int r = 0; r < blk.num_rows(); ++r) {
        counts[s.GetInt32(blk.RowAt(r), col)]++;
      }
    }
  }
  // Hottest security must be much more traded than the median one.
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 8000 / 100 * 4);
}

TEST(SseGenTest, SortedVariantIsDateOrderedPerPartition) {
  SseConfig config = SmallConfig();
  config.sort_trades_by_date = true;
  Catalog cat;
  ASSERT_TRUE(GenerateSse(config, &cat).ok());
  TablePtr trades = *cat.GetTable("trades");
  const Schema& s = trades->schema();
  int col = s.FindColumn("trade_date");
  for (int p = 0; p < trades->num_partitions(); ++p) {
    const TablePartition& part = trades->partition(p);
    int32_t prev = -1;
    for (int b = 0; b < part.num_blocks(); ++b) {
      const Block& blk = *part.block(b);
      for (int r = 0; r < blk.num_rows(); ++r) {
        int32_t d = s.GetInt32(blk.RowAt(r), col);
        ASSERT_GE(d, prev);
        prev = d;
      }
    }
  }
}

TEST(SseGenTest, DeterministicAcrossRuns) {
  Catalog a;
  Catalog b;
  ASSERT_TRUE(GenerateSse(SmallConfig(), &a).ok());
  ASSERT_TRUE(GenerateSse(SmallConfig(), &b).ok());
  TablePtr ta = *a.GetTable("trades");
  TablePtr tb = *b.GetTable("trades");
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  for (int p = 0; p < ta->num_partitions(); ++p) {
    ASSERT_EQ(ta->partition(p).num_rows(), tb->partition(p).num_rows());
    for (int blk = 0; blk < ta->partition(p).num_blocks(); ++blk) {
      const Block& ba = *ta->partition(p).block(blk);
      const Block& bb = *tb->partition(p).block(blk);
      ASSERT_EQ(ba.num_rows(), bb.num_rows());
      ASSERT_EQ(memcmp(ba.RowAt(0), bb.RowAt(0),
                       ba.num_rows() * ba.row_size()),
                0);
    }
  }
}

}  // namespace
}  // namespace claims
