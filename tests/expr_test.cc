#include "exec/expr/expr.h"

#include <gtest/gtest.h>

#include <vector>

#include "exec/expr/like.h"

namespace claims {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  ExprTest()
      : schema_({ColumnDef::Int32("a"), ColumnDef::Float64("b"),
                 ColumnDef::Char("s", 16), ColumnDef::Date("d")}),
        row_(schema_.row_size()) {
    schema_.SetInt32(row_.data(), 0, 10);
    schema_.SetFloat64(row_.data(), 1, 2.5);
    schema_.SetString(row_.data(), 2, "hello world");
    schema_.SetInt32(row_.data(), 3, DaysFromCivil(2010, 10, 30));
  }

  Value Eval(const ExprPtr& e) { return e->Eval(schema_, row_.data()); }
  bool EvalB(const ExprPtr& e) { return e->EvalBool(schema_, row_.data()); }

  ExprPtr Col(int i) {
    return MakeColumnRef(i, schema_.column(i).type, schema_.column(i).name);
  }

  Schema schema_;
  std::vector<char> row_;
};

TEST_F(ExprTest, ColumnRefAndLiteral) {
  EXPECT_EQ(Eval(Col(0)).AsInt64(), 10);
  EXPECT_EQ(Eval(Col(1)).AsFloat64(), 2.5);
  EXPECT_EQ(Eval(Col(2)).AsString(), "hello world");
  EXPECT_EQ(Eval(MakeLiteral(Value::Int64(7))).AsInt64(), 7);
}

TEST_F(ExprTest, Comparisons) {
  EXPECT_TRUE(EvalB(MakeCompare(CompareOp::kEq, Col(0),
                                MakeLiteral(Value::Int32(10)))));
  EXPECT_TRUE(EvalB(MakeCompare(CompareOp::kLt, Col(0),
                                MakeLiteral(Value::Int64(11)))));
  EXPECT_FALSE(EvalB(MakeCompare(CompareOp::kGt, Col(0),
                                 MakeLiteral(Value::Int64(11)))));
  EXPECT_TRUE(EvalB(MakeCompare(CompareOp::kNe, Col(2),
                                MakeLiteral(Value::String("x")))));
  EXPECT_TRUE(EvalB(MakeCompare(CompareOp::kGe, Col(1),
                                MakeLiteral(Value::Float64(2.5)))));
}

TEST_F(ExprTest, DateComparison) {
  auto date = ParseDate("2010-10-30");
  ASSERT_TRUE(date.ok());
  EXPECT_TRUE(EvalB(MakeCompare(CompareOp::kEq, Col(3),
                                MakeLiteral(Value::Date(*date)))));
  EXPECT_TRUE(EvalB(MakeCompare(
      CompareOp::kGt, Col(3),
      MakeLiteral(Value::Date(*ParseDate("2010-08-02"))))));
}

TEST_F(ExprTest, Arithmetic) {
  // 10 * 2.5 = 25.0 (promoted to double)
  ExprPtr mul = MakeArith(ArithOp::kMul, Col(0), Col(1));
  EXPECT_EQ(mul->type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(Eval(mul).AsFloat64(), 25.0);
  // Integer add stays integer.
  ExprPtr add = MakeArith(ArithOp::kAdd, Col(0), MakeLiteral(Value::Int64(5)));
  EXPECT_EQ(add->type(), DataType::kInt64);
  EXPECT_EQ(Eval(add).AsInt64(), 15);
  // Division always double; division by zero yields 0 (no exceptions).
  ExprPtr div = MakeArith(ArithOp::kDiv, Col(0), MakeLiteral(Value::Int64(0)));
  EXPECT_DOUBLE_EQ(Eval(div).AsFloat64(), 0.0);
  // TPC-H idiom: price * (1 - discount).
  ExprPtr revenue = MakeArith(
      ArithOp::kMul, Col(1),
      MakeArith(ArithOp::kSub, MakeLiteral(Value::Float64(1.0)),
                MakeLiteral(Value::Float64(0.1))));
  EXPECT_NEAR(Eval(revenue).AsFloat64(), 2.25, 1e-9);
}

TEST_F(ExprTest, LogicShortCircuit) {
  ExprPtr t = MakeLiteral(Value::Int32(1));
  ExprPtr f = MakeLiteral(Value::Int32(0));
  EXPECT_TRUE(EvalB(MakeLogic(LogicOp::kAnd, t, t)));
  EXPECT_FALSE(EvalB(MakeLogic(LogicOp::kAnd, t, f)));
  EXPECT_TRUE(EvalB(MakeLogic(LogicOp::kOr, f, t)));
  EXPECT_FALSE(EvalB(MakeLogic(LogicOp::kOr, f, f)));
  EXPECT_TRUE(EvalB(MakeNot(f)));
  EXPECT_FALSE(EvalB(MakeNot(t)));
}

TEST_F(ExprTest, LikeOnColumn) {
  EXPECT_TRUE(EvalB(MakeLike(Col(2), "%world", false)));
  EXPECT_TRUE(EvalB(MakeLike(Col(2), "hello%", false)));
  EXPECT_TRUE(EvalB(MakeLike(Col(2), "%lo wo%", false)));
  EXPECT_FALSE(EvalB(MakeLike(Col(2), "%xyz%", false)));
  // S-Q1 shape: NOT LIKE %w1%w2.
  EXPECT_FALSE(EvalB(MakeLike(Col(2), "%hello%world%", true)));
  EXPECT_TRUE(EvalB(MakeLike(Col(2), "%world%hello%", true)));
}

TEST_F(ExprTest, InList) {
  EXPECT_TRUE(EvalB(MakeInList(
      Col(0), {Value::Int32(3), Value::Int32(10)}, false)));
  EXPECT_FALSE(EvalB(MakeInList(
      Col(0), {Value::Int32(3), Value::Int32(4)}, false)));
  EXPECT_TRUE(EvalB(MakeInList(
      Col(2), {Value::String("hello world")}, false)));
  EXPECT_TRUE(EvalB(MakeInList(Col(0), {Value::Int32(3)}, true)));
}

TEST_F(ExprTest, CaseWhen) {
  // Q12/Q14 idiom: CASE WHEN cond THEN x ELSE 0 END.
  ExprPtr is_ten = MakeCompare(CompareOp::kEq, Col(0),
                               MakeLiteral(Value::Int32(10)));
  ExprPtr case_e = MakeCase({{is_ten, MakeLiteral(Value::Float64(1.5))}},
                            MakeLiteral(Value::Float64(0.0)));
  EXPECT_EQ(case_e->type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(Eval(case_e).AsFloat64(), 1.5);
  ExprPtr is_two = MakeCompare(CompareOp::kEq, Col(0),
                               MakeLiteral(Value::Int32(2)));
  ExprPtr case2 = MakeCase({{is_two, MakeLiteral(Value::Float64(1.5))}},
                           MakeLiteral(Value::Float64(0.25)));
  EXPECT_DOUBLE_EQ(Eval(case2).AsFloat64(), 0.25);
  // No ELSE → typed zero.
  ExprPtr case3 = MakeCase({{is_two, MakeLiteral(Value::Float64(1.5))}},
                           nullptr);
  EXPECT_DOUBLE_EQ(Eval(case3).AsFloat64(), 0.0);
}

TEST_F(ExprTest, Year) {
  ExprPtr y = MakeYear(Col(3));
  EXPECT_EQ(y->type(), DataType::kInt32);
  EXPECT_EQ(Eval(y).AsInt64(), 2010);
}

TEST_F(ExprTest, AsColumnRef) {
  EXPECT_EQ(AsColumnRef(*Col(2)), 2);
  EXPECT_EQ(AsColumnRef(*MakeLiteral(Value::Int32(1))), -1);
}

TEST_F(ExprTest, ToStringReadable) {
  ExprPtr e = MakeCompare(CompareOp::kLe, Col(0), MakeLiteral(Value::Int32(9)));
  EXPECT_EQ(e->ToString(), "(a <= 9)");
  EXPECT_EQ(MakeYear(Col(3))->ToString(), "YEAR(d)");
}

// --- LIKE matcher corner cases --------------------------------------------------

TEST(LikeMatchTest, Basics) {
  EXPECT_TRUE(LikeMatch("abc", "abc"));
  EXPECT_FALSE(LikeMatch("abc", "abd"));
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_FALSE(LikeMatch("abc", "a_d"));
  EXPECT_TRUE(LikeMatch("abc", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
}

TEST(LikeMatchTest, PercentRuns) {
  EXPECT_TRUE(LikeMatch("hello world", "%world"));
  EXPECT_TRUE(LikeMatch("hello world", "hello%"));
  EXPECT_TRUE(LikeMatch("hello world", "%o w%"));
  EXPECT_TRUE(LikeMatch("hello world", "h%d"));
  EXPECT_TRUE(LikeMatch("aaa", "%a%a%"));
  EXPECT_FALSE(LikeMatch("ab", "%a%a%"));
}

TEST(LikeMatchTest, BacktrackingStress) {
  EXPECT_TRUE(LikeMatch("aaaaaaaaab", "%aab"));
  EXPECT_FALSE(LikeMatch("aaaaaaaaab", "%aac"));
  EXPECT_TRUE(LikeMatch("mississippi", "%iss%ppi"));
  EXPECT_TRUE(LikeMatch("special requests sleep", "%requests%sleep%"));
}

TEST(LikeMatchTest, TrailingPercentAndUnderscore) {
  EXPECT_TRUE(LikeMatch("abc", "abc%%%"));
  EXPECT_TRUE(LikeMatch("abcd", "a__d"));
  EXPECT_TRUE(LikeMatch("abc", "%_c"));
  EXPECT_FALSE(LikeMatch("abc", "abc_"));
}

}  // namespace
}  // namespace claims
