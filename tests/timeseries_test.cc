// Time-series telemetry plane tests: windowed delta-percentiles, the
// EWMA+MAD anomaly detector's hysteresis (fires exactly once per episode),
// the MetricSampler's counter-rate / gauge / windowed-quantile semantics on
// a manual clock, ring bounds, the /timeseries + /dash monitor routes, and
// the dip-and-recover acceptance scenario: a scripted node crash annotated
// on the same timeline whose throughput series dips below 0.7x steady state
// and recovers to 0.9x (docs/OBSERVABILITY.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "obs/metrics_registry.h"
#include "obs/monitor_server.h"
#include "obs/timeseries/anomaly.h"
#include "obs/timeseries/timeseries.h"

namespace claims {
namespace {

constexpr int64_t kSecond = 1'000'000'000;

class ManualClock : public Clock {
 public:
  int64_t NowNanos() const override { return now_; }
  void Advance(int64_t ns) { now_ += ns; }

 private:
  int64_t now_ = 0;
};

// --- MetricHistogram windowed quantiles -----------------------------------------

TEST(DeltaPercentileTest, EmptyWindowReportsZero) {
  int64_t delta[MetricHistogram::kBuckets] = {};
  EXPECT_EQ(MetricHistogram::DeltaPercentile(delta, 0.50), 0);
  EXPECT_EQ(MetricHistogram::DeltaPercentile(delta, 0.99), 0);
}

TEST(DeltaPercentileTest, NegativeEntriesTreatedAsEmpty) {
  // A Reset between snapshots makes every delta negative: still "no data",
  // never a garbage quantile.
  int64_t delta[MetricHistogram::kBuckets] = {};
  delta[5] = -10;
  delta[9] = -3;
  EXPECT_EQ(MetricHistogram::DeltaPercentile(delta, 0.95), 0);
}

TEST(DeltaPercentileTest, ReadsQuantileOffTheDeltaOnly) {
  MetricHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(1000);  // history: ~1us
  int64_t base[MetricHistogram::kBuckets];
  h.SnapshotBuckets(base);
  for (int i = 0; i < 100; ++i) h.Record(1'000'000);  // window: ~1ms
  int64_t cur[MetricHistogram::kBuckets];
  h.SnapshotBuckets(cur);
  int64_t delta[MetricHistogram::kBuckets];
  for (int b = 0; b < MetricHistogram::kBuckets; ++b) {
    delta[b] = cur[b] - base[b];
  }
  // The cumulative p50 straddles both populations; the windowed p50 must see
  // only the second one (bucket upper bound for ~1e6 is 2^20).
  EXPECT_GE(MetricHistogram::DeltaPercentile(delta, 0.50), 1'000'000);
  EXPECT_LT(h.Percentile(0.50), 1'000'000);
}

// --- AnomalyDetector -------------------------------------------------------------

TEST(AnomalyDetectorTest, NoFireDuringWarmup) {
  AnomalyDetector det;
  AnomalyIncident inc;
  // Wild swings inside the warm-up window never fire.
  for (int i = 0; i < det.options().warmup_samples; ++i) {
    EXPECT_FALSE(det.Observe("s", i, (i % 2) != 0 ? 1000.0 : 1.0, &inc));
  }
}

TEST(AnomalyDetectorTest, FiresOncePerEpisodeAndRearms) {
  AnomalyOptions opts;  // warmup 8, sustain 3, recover 3
  AnomalyDetector det(opts);
  AnomalyIncident inc;
  int64_t t = 0;
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(det.Observe("qps", t++, 100.0, &inc));
  }
  // Sustained collapse: fires on exactly the sustain_samples-th deviant
  // sample, then stays quiet for the rest of the episode.
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (det.Observe("qps", t++, 10.0, &inc)) {
      ++fired;
      EXPECT_EQ(i, opts.sustain_samples - 1);
    }
  }
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(inc.series, "qps");
  EXPECT_NE(inc.description.find("qps"), std::string::npos);
  // recover_samples normal samples close the episode and re-arm the trigger…
  for (int i = 0; i < opts.recover_samples + 2; ++i) {
    EXPECT_FALSE(det.Observe("qps", t++, 100.0, &inc));
  }
  // …so a second collapse fires a second (single) incident.
  fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (det.Observe("qps", t++, 10.0, &inc)) ++fired;
  }
  EXPECT_EQ(fired, 1);
}

TEST(AnomalyDetectorTest, FlatSeriesToleratesSmallWiggle) {
  AnomalyDetector det;
  AnomalyIncident inc;
  int64_t t = 0;
  for (int i = 0; i < 20; ++i) det.Observe("g", t++, 100.0, &inc);
  // Within the 5% relative floor band: never deviant.
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(det.Observe("g", t++, 103.0, &inc));
  }
}

// --- MetricSampler ---------------------------------------------------------------

TEST(MetricSamplerTest, CountersBecomeRatesGaugesPassThrough) {
  ManualClock clock;
  MetricsRegistry registry;
  MetricCounter* tuples = registry.counter("exec.tuples");
  MetricGauge* depth = registry.gauge("queue.depth");
  MetricSampler sampler(TimeseriesOptions{}, &clock, &registry);

  depth->Set(7);
  // First pass: counter baselines only, gauges appear immediately.
  sampler.SampleOnce();
  EXPECT_TRUE(sampler.SeriesSamples("exec.tuples").empty());
  ASSERT_EQ(sampler.SeriesSamples("queue.depth").size(), 1u);
  EXPECT_DOUBLE_EQ(sampler.SeriesSamples("queue.depth")[0].value, 7.0);

  clock.Advance(2 * kSecond);
  tuples->Add(500);
  depth->Set(3);
  sampler.SampleOnce();
  auto rates = sampler.SeriesSamples("exec.tuples");
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0].value, 250.0);  // 500 over 2 s
  EXPECT_EQ(rates[0].t_ns, 2 * kSecond);
  EXPECT_DOUBLE_EQ(sampler.SeriesSamples("queue.depth").back().value, 3.0);
}

TEST(MetricSamplerTest, CounterResetRebasesInsteadOfGoingNegative) {
  ManualClock clock;
  MetricsRegistry registry;
  MetricCounter* c = registry.counter("c");
  MetricSampler sampler(TimeseriesOptions{}, &clock, &registry);
  c->Add(1000);
  sampler.SampleOnce();
  clock.Advance(kSecond);
  c->Reset();
  c->Add(40);  // post-reset window's worth
  sampler.SampleOnce();
  auto s = sampler.SeriesSamples("c");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0].value, 40.0);
}

TEST(MetricSamplerTest, WindowedHistogramQuantilesForgetHistory) {
  ManualClock clock;
  MetricsRegistry registry;
  MetricHistogram* lat = registry.histogram("lat");
  MetricSampler sampler(TimeseriesOptions{}, &clock, &registry);

  for (int i = 0; i < 64; ++i) lat->Record(1'000'000);  // slow era
  sampler.SampleOnce();  // baseline
  clock.Advance(kSecond);
  for (int i = 0; i < 64; ++i) lat->Record(1000);  // fast era
  sampler.SampleOnce();
  auto p99 = sampler.SeriesSamples("lat.p99");
  ASSERT_EQ(p99.size(), 1u);
  // Windowed p99 sees only the fast era; the cumulative histogram would
  // report the slow one.
  EXPECT_LE(p99[0].value, 2048);
  EXPECT_GE(lat->Percentile(0.99), 1'000'000);
  auto rate = sampler.SeriesSamples("lat.rate");
  ASSERT_EQ(rate.size(), 1u);
  EXPECT_DOUBLE_EQ(rate[0].value, 64.0);

  // Regression: an idle window reports 0, never the stale cumulative value.
  clock.Advance(kSecond);
  sampler.SampleOnce();
  EXPECT_DOUBLE_EQ(sampler.SeriesSamples("lat.p99").back().value, 0.0);
  EXPECT_DOUBLE_EQ(sampler.SeriesSamples("lat.p50").back().value, 0.0);
  EXPECT_DOUBLE_EQ(sampler.SeriesSamples("lat.rate").back().value, 0.0);
}

TEST(MetricSamplerTest, RingsAreBoundedAndChronological) {
  ManualClock clock;
  MetricsRegistry registry;
  MetricGauge* g = registry.gauge("g");
  TimeseriesOptions opts;
  opts.ring_capacity = 8;
  MetricSampler sampler(opts, &clock, &registry);
  for (int i = 0; i < 20; ++i) {
    g->Set(i);
    sampler.SampleOnce();
    clock.Advance(kSecond);
  }
  auto s = sampler.SeriesSamples("g");
  ASSERT_EQ(s.size(), 8u);  // bounded
  for (size_t i = 1; i < s.size(); ++i) {
    EXPECT_GT(s[i].t_ns, s[i - 1].t_ns);  // chronological after wrap
  }
  EXPECT_DOUBLE_EQ(s.back().value, 19.0);  // newest kept, oldest evicted
  EXPECT_DOUBLE_EQ(s.front().value, 12.0);
}

TEST(MetricSamplerTest, SeriesCapDropsAndCounts) {
  ManualClock clock;
  MetricsRegistry registry;
  registry.gauge("g");
  TimeseriesOptions opts;
  opts.max_series = 2;
  opts.detect_anomalies = false;
  MetricSampler sampler(opts, &clock, &registry);
  // Pass 2 tries the sampler's own meta counters + the gauge: only 2 series
  // fit, the rest are dropped and counted.
  sampler.SampleOnce();
  clock.Advance(kSecond);
  sampler.SampleOnce();
  EXPECT_EQ(sampler.SeriesNames().size(), 2u);
  EXPECT_GE(registry.counter("timeseries.dropped_series")->value(), 1);
}

TEST(MetricSamplerTest, AnnotationsAreStampedAndBounded) {
  ManualClock clock;
  MetricsRegistry registry;
  TimeseriesOptions opts;
  opts.annotation_capacity = 4;
  MetricSampler sampler(opts, &clock, &registry);
  for (int i = 0; i < 10; ++i) {
    clock.Advance(kSecond);
    sampler.Annotate(i % 2 == 0 ? "fault.drop" : "fault.restore", i % 2 == 0);
  }
  auto anns = sampler.Annotations();
  ASSERT_EQ(anns.size(), 4u);
  for (size_t i = 1; i < anns.size(); ++i) {
    EXPECT_GE(anns[i].t_ns, anns[i - 1].t_ns);
  }
  EXPECT_EQ(anns.back().t_ns, 10 * kSecond);
}

TEST(MetricSamplerTest, FrozenClockNeverHangsStartStop) {
  // The sampler thread paces on REAL time; a frozen injected clock only
  // affects timestamps. If Stop joined on the injected clock this would hang.
  ManualClock clock;  // never advanced
  MetricsRegistry registry;
  registry.gauge("g")->Set(1);
  TimeseriesOptions opts;
  opts.period_ns = 2'000'000;  // 2 ms real cadence
  MetricSampler sampler(opts, &clock, &registry);
  sampler.Start();
  EXPECT_TRUE(sampler.running());
  sampler.Start();  // idempotent
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (sampler.sample_count() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(sampler.sample_count(), 3);
  sampler.Stop();
  sampler.Stop();  // idempotent
  EXPECT_FALSE(sampler.running());
}

TEST(MetricSamplerTest, SteppedClockProducesDeterministicRings) {
  // Two samplers driven through the identical manual-clock schedule render
  // byte-identical JSON — the determinism the CI smoke leans on.
  auto run = [] {
    ManualClock clock;
    MetricsRegistry registry;
    MetricCounter* c = registry.counter("c");
    MetricSampler sampler(TimeseriesOptions{}, &clock, &registry);
    for (int i = 0; i < 10; ++i) {
      c->Add(100 + i);
      sampler.SampleOnce();
      clock.Advance(kSecond);
    }
    return sampler.ToJson("", 0);
  };
  EXPECT_EQ(run(), run());
}

// --- anomaly incidents through the sampler ---------------------------------------

TEST(MetricSamplerTest, SustainedCollapseFiresOneIncidentWithAnnotation) {
  ManualClock clock;
  MetricsRegistry registry;
  MetricCounter* done = registry.counter("wlm.driver.completed");
  TimeseriesOptions opts;
  opts.anomaly_watch = "wlm.driver.completed";  // ignore the meta counters
  MetricSampler sampler(opts, &clock, &registry);
  std::vector<AnomalyIncident> incidents;
  sampler.SetIncidentCallback([&](const AnomalyIncident& inc) {
    incidents.push_back(inc);
    // Callback runs without the sampler lock: reading back must not deadlock.
    EXPECT_NE(sampler.ToText(inc.series, 0).find("wlm.driver.completed"),
              std::string::npos);
  });

  sampler.SampleOnce();  // baseline
  for (int i = 0; i < 20; ++i) {  // steady 100 qps
    clock.Advance(kSecond);
    done->Add(100);
    sampler.SampleOnce();
  }
  for (int i = 0; i < 8; ++i) {  // sustained collapse to 10 qps
    clock.Advance(kSecond);
    done->Add(10);
    sampler.SampleOnce();
  }
  ASSERT_EQ(incidents.size(), 1u);  // hysteresis: once per episode
  EXPECT_EQ(incidents[0].series, "wlm.driver.completed");
  EXPECT_GT(incidents[0].baseline, incidents[0].value);
  EXPECT_EQ(registry.counter("timeseries.anomalies")->value(), 1);
  bool annotated = false;
  for (const TsAnnotation& a : sampler.Annotations()) {
    if (a.label == "anomaly.wlm.driver.completed") annotated = true;
  }
  EXPECT_TRUE(annotated);
}

// --- the acceptance scenario: crash, dip, recover --------------------------------

TEST(MetricSamplerTest, CrashDipAndRecoverOnOneAnnotatedTimeline) {
  ManualClock clock;
  MetricsRegistry registry;
  MetricCounter* done = registry.counter("wlm.driver.completed");
  TimeseriesOptions opts;
  opts.anomaly_watch = "wlm.driver.completed";
  MetricSampler sampler(opts, &clock, &registry);
  MetricSampler::SetDefault(&sampler);  // the injector annotates through this
  std::atomic<int> incidents{0};
  sampler.SetIncidentCallback([&](const AnomalyIncident&) { ++incidents; });

  const double steady = 100.0;
  sampler.SampleOnce();  // baseline
  for (int i = 0; i < 20; ++i) {  // steady state
    clock.Advance(kSecond);
    done->Add(100);
    sampler.SampleOnce();
  }

  // Scripted crash of node 3, one second after arming (t = 21 s).
  auto plan = ParseFaultPlan("at=1s kind=crash node=3\n");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*plan, &clock);
  injector.ArmManual();
  for (int i = 0; i < 5; ++i) {  // the dip while peers re-dispatch
    clock.Advance(kSecond);
    injector.PollOnce();
    done->Add(30);
    sampler.SampleOnce();
  }
  for (int i = 0; i < 10; ++i) {  // survivors absorb the load
    clock.Advance(kSecond);
    done->Add(95);
    sampler.SampleOnce();
  }
  MetricSampler::SetDefault(nullptr);

  auto qps = sampler.SeriesSamples("wlm.driver.completed");
  ASSERT_EQ(qps.size(), 35u);
  double min_during_fault = steady;
  for (size_t i = 20; i < 25; ++i) {
    min_during_fault = std::min(min_during_fault, qps[i].value);
  }
  EXPECT_LT(min_during_fault, 0.7 * steady);  // the dip is visible
  EXPECT_GE(qps.back().value, 0.9 * steady);  // and it recovers
  EXPECT_EQ(incidents.load(), 1);             // the collapse paged once

  // The crash rides the same time axis as the dip it explains.
  bool crash_annotated = false;
  for (const TsAnnotation& a : sampler.Annotations()) {
    if (a.label.find("fault.crash") != std::string::npos && a.begin) {
      crash_annotated = true;
      EXPECT_EQ(a.t_ns, 21 * kSecond);
    }
  }
  EXPECT_TRUE(crash_annotated);
}

// --- renders and routes ----------------------------------------------------------

TEST(MetricSamplerTest, JsonAndTextRespectFilters) {
  ManualClock clock;
  MetricsRegistry registry;
  MetricGauge* a = registry.gauge("alpha.depth");
  MetricGauge* b = registry.gauge("beta.depth");
  MetricSampler sampler(TimeseriesOptions{}, &clock, &registry);
  for (int i = 1; i <= 5; ++i) {
    clock.Advance(kSecond);
    a->Set(i);
    b->Set(10 * i);
    sampler.SampleOnce();
  }
  std::string json = sampler.ToJson("alpha", 0);
  EXPECT_NE(json.find("\"alpha.depth\""), std::string::npos);
  EXPECT_EQ(json.find("\"beta.depth\""), std::string::npos);
  // Window filter: now = 5 s, a 2 s window keeps t in [3 s, 5 s].
  std::string windowed = sampler.ToJson("alpha", 2 * kSecond);
  EXPECT_EQ(windowed.find(StrFormat("[%lld,", 1LL * kSecond)),
            std::string::npos);
  EXPECT_NE(windowed.find(StrFormat("[%lld,", 5LL * kSecond)),
            std::string::npos);
  std::string text = sampler.ToText("beta", 0);
  EXPECT_NE(text.find("beta.depth"), std::string::npos);
  EXPECT_EQ(text.find("alpha.depth"), std::string::npos);
  EXPECT_NE(text.find('['), std::string::npos);  // sparkline brackets
}

TEST(MonitorRoutesTest, TimeseriesRouteServesDefaultSamplerOrDisabledStub) {
  MonitorServer server;  // disabled: Dispatch works without a socket
  HttpRequest req{"GET", "/timeseries", "", ""};
  EXPECT_NE(server.Dispatch(req).body.find("\"enabled\":false"),
            std::string::npos);

  ManualClock clock;
  MetricsRegistry registry;
  registry.gauge("queue.depth")->Set(5);
  MetricSampler sampler(TimeseriesOptions{}, &clock, &registry);
  MetricSampler::SetDefault(&sampler);
  sampler.SampleOnce();
  HttpResponse res = server.Dispatch(req);
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.content_type, "application/json");
  EXPECT_NE(res.body.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(res.body.find("queue.depth"), std::string::npos);

  HttpRequest filtered{"GET", "/timeseries", "metric=queue&format=text", ""};
  HttpResponse text = server.Dispatch(filtered);
  EXPECT_NE(text.content_type.find("text/plain"), std::string::npos);
  EXPECT_NE(text.body.find("queue.depth"), std::string::npos);
  MetricSampler::SetDefault(nullptr);
}

TEST(MonitorRoutesTest, DashServesSelfContainedHtml) {
  MonitorServer server;
  HttpResponse res = server.Dispatch({"GET", "/dash", "", ""});
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.content_type.find("text/html"), std::string::npos);
  EXPECT_NE(res.body.find("/timeseries"), std::string::npos);  // polls it
  EXPECT_NE(res.body.find("wlm.driver.completed"), std::string::npos);
}

TEST(MonitorRoutesTest, MetricsScrapeReusesScratchAndRecordsDuration) {
  MonitorServer server;
  MetricHistogram* scrape =
      MetricsRegistry::Global()->histogram("obs.scrape_ns");
  const int64_t before = scrape->count();
  std::string first = server.Dispatch({"GET", "/metrics", "", ""}).body;
  std::string second = server.Dispatch({"GET", "/metrics", "", ""}).body;
  EXPECT_FALSE(first.empty());
  EXPECT_NE(first.find("# TYPE"), std::string::npos);
  EXPECT_FALSE(second.empty());
  EXPECT_GE(scrape->count(), before + 2);
}

TEST(AsciiSparklineTest, ScalesZeroToMax) {
  EXPECT_EQ(AsciiSparkline({}), "");
  EXPECT_EQ(AsciiSparkline({0.0, 5.0, 10.0}), " +@");
  EXPECT_EQ(AsciiSparkline({0.0, 0.0}), "  ");  // all-zero: no divide-by-zero
}

}  // namespace
}  // namespace claims
