// Workload-manager tests: admission budgets, priority/backpressure/deadline
// semantics of the QueryService, the closed/open-loop driver, and the
// headline acceptance scenario — a concurrent TPC-H stream whose per-query
// results must be identical to serial execution.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/string_util.h"

#include "engine/database.h"
#include "engine/workloads.h"
#include "net/socket_util.h"
#include "wlm/driver/workload_driver.h"
#include "wlm/introspection.h"
#include "wlm/query_service.h"

namespace claims {
namespace {

/// Row-set equality up to floating-point summation order: parallel (and
/// elastic) aggregation adds doubles in nondeterministic order, so sums match
/// serial execution only to within ulps. Everything else must be exact.
void ExpectRowsEquivalent(const std::vector<std::vector<Value>>& got,
                          const std::vector<std::vector<Value>>& want,
                          const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t r = 0; r < got.size(); ++r) {
    ASSERT_EQ(got[r].size(), want[r].size()) << label << " row " << r;
    for (size_t c = 0; c < got[r].size(); ++c) {
      const Value& a = got[r][c];
      const Value& b = want[r][c];
      if (a.type() == DataType::kFloat64 && b.type() == DataType::kFloat64) {
        EXPECT_NEAR(a.AsFloat64(), b.AsFloat64(),
                    1e-9 * std::max(1.0, std::abs(b.AsFloat64())))
            << label << " row " << r << " col " << c;
      } else {
        EXPECT_TRUE(a == b)
            << label << " row " << r << " col " << c << ": " << a.ToString()
            << " vs " << b.ToString();
      }
    }
  }
}

// --- admission controller ------------------------------------------------------

TEST(AdmissionTest, MplGate) {
  AdmissionOptions opts;
  opts.max_concurrent = 2;
  AdmissionController ac(opts);
  QueryDemand d;
  EXPECT_TRUE(ac.TryAdmit(d));
  EXPECT_TRUE(ac.TryAdmit(d));
  EXPECT_FALSE(ac.TryAdmit(d));
  ac.Release(d);
  EXPECT_TRUE(ac.TryAdmit(d));
  EXPECT_EQ(ac.running(), 2);
}

TEST(AdmissionTest, CoreAndMemoryBudgets) {
  AdmissionOptions opts;
  opts.max_concurrent = 100;
  opts.core_budget = 10;
  opts.memory_budget_bytes = 1000;
  AdmissionController ac(opts);
  QueryDemand small{4, 400};
  QueryDemand big{8, 100};
  QueryDemand hungry{1, 700};
  ASSERT_TRUE(ac.TryAdmit(small));
  EXPECT_FALSE(ac.TryAdmit(big));     // 4+8 > 10 cores
  EXPECT_FALSE(ac.TryAdmit(hungry));  // 400+700 > 1000 bytes
  ASSERT_TRUE(ac.TryAdmit(small));    // 8 cores, 800 bytes: fits
  EXPECT_EQ(ac.cores_in_flight(), 8);
  EXPECT_EQ(ac.memory_in_flight(), 800);
  ac.Release(small);
  ac.Release(small);
  EXPECT_EQ(ac.running(), 0);
}

TEST(AdmissionTest, IdleSystemAdmitsOversizedQuery) {
  AdmissionOptions opts;
  opts.max_concurrent = 4;
  opts.core_budget = 2;
  AdmissionController ac(opts);
  QueryDemand whale{64, 0};
  EXPECT_TRUE(ac.TryAdmit(whale));  // would starve otherwise
  EXPECT_FALSE(ac.TryAdmit(whale));
  ac.Release(whale);
  EXPECT_TRUE(ac.TryAdmit(whale));
}

// --- query service on a live cluster -------------------------------------------

/// 4-node in-process cluster with TPC-H loaded. `slow` knobs: queries over
/// lineitem at parallelism 1 with tight buffers run for hundreds of ms —
/// long enough to observe QUEUED/RUNNING states and cancel mid-stream.
class WlmTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatabaseOptions options;
    options.cluster.num_nodes = 4;
    options.cluster.cores_per_node = 8;
    db_ = new Database(options);
    ASSERT_TRUE(db_->LoadTpch({.scale_factor = 0.02}).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static PhysicalPlan PlanSql(std::string_view sql) {
    auto plan = db_->Plan(sql);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return std::move(*plan);
  }

  /// A query that keeps the cluster busy for a while at low parallelism
  /// (lineitem self-join: ~0.5 s at parallelism 1 on this fixture).
  static PhysicalPlan SlowPlan() {
    return PlanSql(
        "SELECT a.l_partkey, count(*) FROM lineitem a, lineitem b "
        "WHERE a.l_partkey = b.l_partkey GROUP BY a.l_partkey");
  }
  static SubmitOptions SlowOptions() {
    SubmitOptions s;
    s.exec.parallelism = 1;
    s.exec.buffer_capacity_blocks = 2;
    return s;
  }

  static Database* db_;
};

Database* WlmTest::db_ = nullptr;

TEST_F(WlmTest, SingleQueryMatchesDirectExecution) {
  const std::string_view sql = "SELECT count(*) FROM lineitem";
  auto direct = db_->Query(sql);
  ASSERT_TRUE(direct.ok());

  QueryService service(db_->cluster(), {});
  QueryHandlePtr h = service.Submit(PlanSql(sql));
  h->Wait();
  ASSERT_TRUE(h->status().ok()) << h->status().ToString();
  EXPECT_EQ(h->state(), QueryState::kDone);
  EXPECT_EQ(h->result().Rows(true), direct->Rows(true));
  EXPECT_GT(h->latency_ns(), 0);
  EXPECT_GE(h->queue_wait_ns(), 0);
  // The report carries the queue/run split (EXPLAIN ANALYZE satellite).
  EXPECT_EQ(h->report().queue_wait_ns, h->queue_wait_ns());
  service.Shutdown();
}

TEST_F(WlmTest, PriorityOrdersQueuedDispatch) {
  QueryServiceOptions opts;
  opts.admission.max_concurrent = 1;
  opts.workers = 1;
  QueryService service(db_->cluster(), opts);

  // Occupy the single slot, then line up a low- and a high-priority query.
  QueryHandlePtr blocker = service.Submit(SlowPlan(), SlowOptions());
  SubmitOptions low;
  low.priority = 0;
  SubmitOptions high;
  high.priority = 5;
  const std::string_view sql = "SELECT count(*) FROM orders";
  QueryHandlePtr q_low = service.Submit(PlanSql(sql), low);
  QueryHandlePtr q_high = service.Submit(PlanSql(sql), high);
  EXPECT_EQ(q_low->state(), QueryState::kQueued);

  q_high->Wait();
  // The high-priority query ran while the low one was still waiting behind
  // it (MPL 1 serializes, priority picks the order).
  EXPECT_NE(q_low->state(), QueryState::kDone);
  q_low->Wait();
  blocker->Wait();
  EXPECT_TRUE(blocker->status().ok()) << blocker->status().ToString();
  EXPECT_TRUE(q_high->status().ok());
  EXPECT_TRUE(q_low->status().ok());
  EXPECT_GT(q_low->queue_wait_ns(), 0);
  service.Shutdown();
}

TEST_F(WlmTest, CancelQueuedQueryNeverRuns) {
  QueryServiceOptions opts;
  opts.admission.max_concurrent = 1;
  opts.workers = 1;
  QueryService service(db_->cluster(), opts);
  QueryHandlePtr blocker = service.Submit(SlowPlan(), SlowOptions());
  QueryHandlePtr queued = service.Submit(PlanSql("SELECT count(*) FROM part"));
  queued->Cancel();
  queued->Wait();
  EXPECT_EQ(queued->status().code(), StatusCode::kCancelled);
  EXPECT_EQ(queued->report().elapsed_ns, 0);  // never dispatched
  blocker->Cancel();
  blocker->Wait();
  service.Shutdown();
}

TEST_F(WlmTest, CancelRunningQueryAbortsMidStream) {
  QueryService service(db_->cluster(), {});
  QueryHandlePtr h = service.Submit(SlowPlan(), SlowOptions());
  // Let it reach RUNNING, then cancel.
  while (h->state() == QueryState::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  h->Cancel();
  h->Wait();
  EXPECT_EQ(h->status().code(), StatusCode::kCancelled);
  service.Shutdown();
}

TEST_F(WlmTest, DeadlineExpiresWhileQueued) {
  QueryServiceOptions opts;
  opts.admission.max_concurrent = 1;
  opts.workers = 1;
  QueryService service(db_->cluster(), opts);
  QueryHandlePtr blocker = service.Submit(SlowPlan(), SlowOptions());
  SubmitOptions impatient;
  impatient.timeout_ns = 30'000'000;  // 30 ms — far under the blocker
  QueryHandlePtr queued =
      service.Submit(PlanSql("SELECT count(*) FROM part"), impatient);
  queued->Wait();
  EXPECT_EQ(queued->status().code(), StatusCode::kDeadlineExceeded);
  blocker->Cancel();
  blocker->Wait();
  service.Shutdown();
}

TEST_F(WlmTest, DeadlineExpiresWhileRunning) {
  QueryService service(db_->cluster(), {});
  SubmitOptions impatient = SlowOptions();
  impatient.timeout_ns = 100'000'000;  // the slow plan needs ~5x longer
  QueryHandlePtr h = service.Submit(SlowPlan(), impatient);
  h->Wait();
  EXPECT_EQ(h->status().code(), StatusCode::kDeadlineExceeded);
  service.Shutdown();
}

TEST_F(WlmTest, BackpressureBlocksSubmitter) {
  QueryServiceOptions opts;
  opts.admission.max_concurrent = 1;
  opts.workers = 1;
  opts.max_queue_depth = 1;
  QueryService service(db_->cluster(), opts);
  QueryHandlePtr blocker = service.Submit(SlowPlan(), SlowOptions());
  QueryHandlePtr queued = service.Submit(PlanSql("SELECT count(*) FROM part"));

  std::atomic<bool> third_submitted{false};
  std::thread submitter([&] {
    QueryHandlePtr h = service.Submit(PlanSql("SELECT count(*) FROM part"));
    third_submitted.store(true);
    h->Wait();
  });
  // The queue is full: the third submission must still be blocked.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_submitted.load());
  // Draining the queue head unblocks it.
  queued->Cancel();
  blocker->Cancel();
  submitter.join();
  EXPECT_TRUE(third_submitted.load());
  service.Shutdown();
}

TEST_F(WlmTest, ShutdownCancelsEverything) {
  QueryServiceOptions opts;
  opts.admission.max_concurrent = 1;
  opts.workers = 1;
  QueryService service(db_->cluster(), opts);
  QueryHandlePtr running = service.Submit(SlowPlan(), SlowOptions());
  QueryHandlePtr queued = service.Submit(SlowPlan(), SlowOptions());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.Shutdown(/*cancel_pending=*/true);
  EXPECT_EQ(running->state(), QueryState::kDone);
  EXPECT_EQ(queued->status().code(), StatusCode::kCancelled);
  // Post-shutdown submissions complete immediately as cancelled.
  QueryHandlePtr late = service.Submit(PlanSql("SELECT count(*) FROM part"));
  EXPECT_EQ(late->status().code(), StatusCode::kCancelled);
}

// --- the acceptance scenario ---------------------------------------------------

TEST_F(WlmTest, ConcurrentTpchStreamMatchesSerialExecution) {
  // Serial baselines first (one at a time, the pre-wlm path).
  std::vector<int> numbers;
  std::vector<std::string_view> sqls;
  std::vector<std::vector<std::vector<Value>>> serial;
  for (int n : SupportedTpchQueries()) {
    auto sql = TpchQuery(n);
    ASSERT_TRUE(sql.ok());
    auto r = db_->Query(*sql);
    ASSERT_TRUE(r.ok()) << "Q" << n << ": " << r.status().ToString();
    numbers.push_back(n);
    sqls.push_back(*sql);
    serial.push_back(r->Rows(true));
  }

  // 32 queries at MPL 8 over the 4-node cluster, all executors concurrent.
  QueryServiceOptions opts;
  opts.admission.max_concurrent = 8;
  opts.admission.core_budget =
      db_->cluster()->num_nodes() * db_->cluster()->options().cores_per_node;
  QueryService service(db_->cluster(), opts);

  // Budget invariant sampler: at every point while the stream runs, the
  // admission ledger never over-commits its core budget, and MPL holds.
  // (Per-node worker counts may transiently exceed cores_per_node at query
  // launch — segments start at plan parallelism; the DynamicScheduler caps
  // its own expansions at the node's cores and shrinks the rest.)
  std::atomic<bool> stop_sampler{false};
  std::atomic<bool> budget_violated{false};
  std::thread sampler([&] {
    while (!stop_sampler.load()) {
      if (service.admission()->cores_in_flight() >
              opts.admission.core_budget ||
          service.admission()->running() > opts.admission.max_concurrent) {
        budget_violated.store(true);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const int kTotal = 32;
  std::vector<QueryHandlePtr> handles;
  for (int i = 0; i < kTotal; ++i) {
    size_t which = static_cast<size_t>(i) % numbers.size();
    SubmitOptions submit;
    submit.label = "tpch-q" + std::to_string(numbers[which]);
    submit.priority = i % 3;
    handles.push_back(service.Submit(PlanSql(sqls[which]), submit));
  }
  for (int i = 0; i < kTotal; ++i) {
    handles[static_cast<size_t>(i)]->Wait();
    const QueryHandle& h = *handles[static_cast<size_t>(i)];
    ASSERT_TRUE(h.status().ok())
        << h.label() << ": " << h.status().ToString();
    ExpectRowsEquivalent(h.result().Rows(true),
                         serial[static_cast<size_t>(i) % serial.size()],
                         h.label());
  }
  stop_sampler.store(true);
  sampler.join();
  EXPECT_FALSE(budget_violated.load());
  EXPECT_EQ(service.admission()->running(), 0);
  service.Shutdown();
}

// --- the workload driver -------------------------------------------------------

TEST_F(WlmTest, ClosedLoopDriverReportsPercentiles) {
  QueryServiceOptions opts;
  opts.admission.max_concurrent = 4;
  QueryService service(db_->cluster(), opts);
  WorkloadOptions wl;
  wl.mode = ArrivalMode::kClosed;
  wl.total_queries = 12;
  wl.mpl = 4;
  wl.submit.label = "closed";
  wl.make_plan = [](int) { return PlanSql("SELECT count(*) FROM orders"); };
  WorkloadReport report = WorkloadDriver(&service, wl).Run();
  EXPECT_EQ(report.total, 12);
  EXPECT_EQ(report.succeeded, 12);
  EXPECT_GT(report.throughput_qps, 0);
  EXPECT_LE(report.p50_latency_ns, report.p95_latency_ns);
  EXPECT_LE(report.p95_latency_ns, report.p99_latency_ns);
  EXPECT_LE(report.p99_latency_ns, report.max_latency_ns);
  EXPECT_NE(report.ToString().find("latency"), std::string::npos);
  EXPECT_NE(report.ToJson().find("\"p99_latency_ms\""), std::string::npos);
  service.Shutdown();
}

TEST(BucketTimelineTest, KeepsInteriorStallBucketsAndComputesP99) {
  // Completions at 0.1 s, 0.2 s, then a 2-second stall, then 2.5 s: the
  // interior empty buckets must survive (a stall shows as a dip, not get
  // elided) and each bucket's p99 covers only its own successes.
  std::vector<CompletionSample> done = {
      {100'000'000, 10'000'000, true},
      {200'000'000, 20'000'000, true},
      {2'500'000'000, 30'000'000, true},
      {2'600'000'000, 40'000'000, false},  // failure: counted, no latency
  };
  std::vector<TimelinePoint> tl = BucketTimeline(done, 1'000'000'000);
  ASSERT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl[0].completed, 2);
  EXPECT_DOUBLE_EQ(tl[0].qps, 2.0);
  EXPECT_DOUBLE_EQ(tl[0].p99_ms, 20.0);
  EXPECT_EQ(tl[1].completed, 0);  // the stall bucket
  EXPECT_DOUBLE_EQ(tl[1].p99_ms, 0.0);
  EXPECT_EQ(tl[2].completed, 2);
  EXPECT_DOUBLE_EQ(tl[2].p99_ms, 30.0);  // failure excluded from latency
  EXPECT_TRUE(BucketTimeline({}, 1'000'000'000).empty());
}

TEST_F(WlmTest, ClosedLoopDriverCollectsTimeline) {
  QueryServiceOptions opts;
  opts.admission.max_concurrent = 4;
  QueryService service(db_->cluster(), opts);
  WorkloadOptions wl;
  wl.mode = ArrivalMode::kClosed;
  wl.total_queries = 8;
  wl.mpl = 4;
  wl.timeline = true;
  wl.timeline_period_ns = 1'000'000;  // 1 ms buckets for a fast run
  wl.make_plan = [](int) { return PlanSql("SELECT count(*) FROM orders"); };
  WorkloadReport report = WorkloadDriver(&service, wl).Run();
  EXPECT_EQ(report.succeeded, 8);
  ASSERT_FALSE(report.timeline.empty());
  int completed = 0;
  for (const TimelinePoint& p : report.timeline) completed += p.completed;
  EXPECT_EQ(completed, 8);
  EXPECT_NE(report.ToJson().find("\"timeline\":["), std::string::npos);
  EXPECT_NE(report.TimelineToString().find("qps"), std::string::npos);
  service.Shutdown();
}

TEST_F(WlmTest, OpenLoopDriverRunsPoissonArrivals) {
  QueryServiceOptions opts;
  opts.admission.max_concurrent = 4;
  opts.max_queue_depth = 8;  // backpressure throttles the arrival thread
  QueryService service(db_->cluster(), opts);
  WorkloadOptions wl;
  wl.mode = ArrivalMode::kOpen;
  wl.total_queries = 10;
  wl.arrival_rate_qps = 200;
  wl.seed = 7;
  wl.make_plan = [](int) { return PlanSql("SELECT count(*) FROM part"); };
  wl.priority_of = [](int seq) { return seq % 2; };
  WorkloadReport report = WorkloadDriver(&service, wl).Run();
  EXPECT_EQ(report.succeeded, 10);
  EXPECT_GE(report.p99_queue_wait_ns, report.p50_queue_wait_ns);
  service.Shutdown();
}

// --- live introspection plane -------------------------------------------------

TEST_F(WlmTest, ListQueriesTracksLifecycle) {
  QueryServiceOptions opts;
  opts.admission.max_concurrent = 1;
  QueryService service(db_->cluster(), opts);
  QueryHandlePtr running = service.Submit(SlowPlan(), SlowOptions());
  QueryHandlePtr queued = service.Submit(PlanSql("SELECT count(*) FROM part"));
  while (running->state() == QueryState::kQueued) {
    std::this_thread::yield();
  }

  bool saw_running = false, saw_queued = false;
  for (const QueryInfo& q : service.ListQueries()) {
    if (q.id == running->id()) {
      saw_running = true;
      EXPECT_EQ(q.state, QueryState::kRunning);
      EXPECT_GT(q.run_ns, 0);
      EXPECT_TRUE(q.status.empty());
    }
    if (q.id == queued->id()) {
      saw_queued = true;
      EXPECT_EQ(q.state, QueryState::kQueued);
      EXPECT_EQ(q.run_ns, 0);
      EXPECT_GT(q.queue_wait_ns, 0);  // so-far wait, ticking
    }
  }
  EXPECT_TRUE(saw_running);
  EXPECT_TRUE(saw_queued);

  running->Wait();
  queued->Wait();
  // Both land in the recent-completions ring with terminal status.
  int done_seen = 0;
  for (const QueryInfo& q : service.ListQueries()) {
    if (q.id != running->id() && q.id != queued->id()) continue;
    EXPECT_EQ(q.state, QueryState::kDone);
    EXPECT_FALSE(q.status.empty());
    ++done_seen;
  }
  EXPECT_EQ(done_seen, 2);
  // The slow query emitted tuples and its totals stayed latched post-run.
  EXPECT_GT(running->progress().tuples_emitted, 0);
  EXPECT_FALSE(running->progress().executing);
  service.Shutdown();
}

TEST_F(WlmTest, IntrospectionEndpointsServeLiveJson) {
  QueryService service(db_->cluster(), {});
  IntrospectionOptions options;
  options.monitor.enabled = true;
  options.monitor.port = 0;
  IntrospectionPlane plane(&service, options);
  ASSERT_TRUE(plane.Start().ok());
  ASSERT_GT(plane.monitor()->port(), 0);

  QueryHandlePtr h = service.Submit(SlowPlan(), SlowOptions());
  Result<std::string> raw = HttpRoundTrip(
      "127.0.0.1", plane.monitor()->port(), "GET", "/queries");
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  std::string body;
  ASSERT_EQ(ParseHttpResponse(raw.value(), &body), 200);
  EXPECT_EQ(body.front(), '{');
  EXPECT_EQ(body.back(), '}');
  EXPECT_NE(body.find("\"queries\":["), std::string::npos);
  EXPECT_NE(body.find("\"admission\":"), std::string::npos);
  EXPECT_NE(body.find(StrFormat("\"id\":%llu",
                                static_cast<unsigned long long>(h->id()))),
            std::string::npos);

  raw = HttpRoundTrip("127.0.0.1", plane.monitor()->port(), "GET",
                      "/scheduler");
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  ASSERT_EQ(ParseHttpResponse(raw.value(), &body), 200);
  EXPECT_NE(body.find("\"nodes\":["), std::string::npos);
  EXPECT_NE(body.find("\"cores_in_use\":"), std::string::npos);
  EXPECT_NE(body.find("\"global_lambda\":"), std::string::npos);

  h->Wait();
  plane.Stop();
  service.Shutdown();
}

TEST_F(WlmTest, SchedulerSnapshotSeesRunningSegments) {
  QueryService service(db_->cluster(), {});
  QueryHandlePtr h = service.Submit(SlowPlan(), SlowOptions());
  while (h->state() == QueryState::kQueued) std::this_thread::yield();

  // Within a few scheduler periods a snapshot shows live segments and ticks.
  bool saw_segments = false;
  for (int attempt = 0; attempt < 200 && !saw_segments; ++attempt) {
    for (int node = 0; node < db_->cluster()->num_nodes(); ++node) {
      SchedulerSnapshot snap = db_->cluster()->scheduler(node)->Snapshot();
      if (!snap.segments.empty() && snap.ticks > 0) {
        saw_segments = true;
        EXPECT_GE(snap.cores_in_use, 0);
        EXPECT_LE(snap.cores_in_use, snap.num_cores);
      }
    }
    if (h->state() == QueryState::kDone) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(saw_segments);
  h->Wait();
  service.Shutdown();
}

TEST_F(WlmTest, IntrospectionWatchdogProbesStayQuietOnHealthyRuns) {
  QueryService service(db_->cluster(), {});
  IntrospectionOptions options;
  options.enable_watchdog = true;
  options.watchdog.incident_dir = ::testing::TempDir();
  // Generous window: a healthy run must never trip it.
  options.watchdog.stall_window_ns = 60'000'000'000;
  IntrospectionPlane plane(&service, options);  // monitor stays disabled
  ASSERT_TRUE(plane.Start().ok());
  EXPECT_FALSE(plane.monitor()->running());
  EXPECT_TRUE(plane.watchdog()->running());

  QueryHandlePtr h = service.Submit(SlowPlan(), SlowOptions());
  EXPECT_EQ(plane.watchdog()->PollOnce(), 0);
  h->Wait();
  EXPECT_EQ(plane.watchdog()->PollOnce(), 0);
  EXPECT_EQ(plane.watchdog()->incident_count(), 0);
  plane.Stop();
  EXPECT_FALSE(plane.watchdog()->running());
  service.Shutdown();
}

}  // namespace
}  // namespace claims
