// Lexer, parser, binder, and planner unit tests.

#include <gtest/gtest.h>

#include "engine/workloads.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "storage/datagen/sse_gen.h"
#include "storage/datagen/tpch_gen.h"

namespace claims {
namespace {

// --- Lexer -----------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto r = Tokenize("SELECT a1, 'str''x' FROM t WHERE x <= 3.5 -- comment\n");
  ASSERT_TRUE(r.ok());
  const auto& t = *r;
  ASSERT_GE(t.size(), 10u);
  EXPECT_EQ(t[0].text, "SELECT");
  EXPECT_EQ(t[1].text, "a1");
  EXPECT_EQ(t[2].text, ",");
  EXPECT_EQ(t[3].type, TokenType::kString);
  EXPECT_EQ(t[3].text, "str'x");
  EXPECT_EQ(t[8].text, "<=");
  EXPECT_EQ(t[9].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(t[9].float_value, 3.5);
  EXPECT_EQ(t.back().type, TokenType::kEnd);
}

TEST(LexerTest, Numbers) {
  auto r = Tokenize("42 0.05 1e3 600036");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].int_value, 42);
  EXPECT_DOUBLE_EQ((*r)[1].float_value, 0.05);
  EXPECT_DOUBLE_EQ((*r)[2].float_value, 1000.0);
  EXPECT_EQ((*r)[3].int_value, 600036);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT a # b").ok());
}

// --- Parser -----------------------------------------------------------------------

TEST(ParserTest, SimpleSelect) {
  auto r = ParseSelect("SELECT a, b AS bee FROM t WHERE a > 5 LIMIT 3;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = **r;
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[1].alias, "bee");
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].table, "t");
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.limit, 3);
}

TEST(ParserTest, StarAndGroupOrder) {
  auto r = ParseSelect(
      "SELECT * FROM t GROUP BY a, b HAVING count(*) > 1 "
      "ORDER BY a DESC, b ASC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = **r;
  EXPECT_TRUE(s.items[0].star);
  EXPECT_EQ(s.group_by.size(), 2u);
  ASSERT_NE(s.having, nullptr);
  ASSERT_EQ(s.order_by.size(), 2u);
  EXPECT_FALSE(s.order_by[0].ascending);
  EXPECT_TRUE(s.order_by[1].ascending);
}

TEST(ParserTest, JoinSyntaxFoldsIntoWhere) {
  auto r = ParseSelect(
      "SELECT * FROM a JOIN b ON a.x = b.y INNER JOIN c ON b.z = c.w "
      "WHERE a.k = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = **r;
  EXPECT_EQ(s.from.size(), 3u);
  ASSERT_NE(s.where, nullptr);  // three conjuncts folded
}

TEST(ParserTest, DerivedTable) {
  auto r = ParseSelect(
      "SELECT m.k FROM (SELECT k, min(v) AS mv FROM t GROUP BY k) m");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE((*r)->from[0].subquery, nullptr);
  EXPECT_EQ((*r)->from[0].alias, "m");
}

TEST(ParserTest, PredicatesAndCase) {
  auto r = ParseSelect(
      "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'other' END "
      "FROM t WHERE a IN (1,2,3) AND b BETWEEN 0.05 AND 0.07 "
      "AND c NOT LIKE '%x%' AND NOT (d = 4 OR e <> 5)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(ParserTest, OperatorPrecedence) {
  auto r = ParseSelect("SELECT a + b * c - d / e FROM t");
  ASSERT_TRUE(r.ok());
  // ((a + (b*c)) - (d/e))
  const SqlExpr& top = *(*r)->items[0].expr;
  EXPECT_EQ(top.op, "-");
  EXPECT_EQ(top.args[0]->op, "+");
  EXPECT_EQ(top.args[0]->args[1]->op, "*");
  EXPECT_EQ(top.args[1]->op, "/");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t GROUP a").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM (SELECT b FROM t)").ok());  // alias
  EXPECT_FALSE(ParseSelect("SELECT a FROM t; SELECT b FROM t").ok());
}

TEST(ParserTest, AllWorkloadQueriesParse) {
  for (int q = 1; q <= 5; ++q) {
    auto sql = SyntheticQuery(q);
    ASSERT_TRUE(sql.ok());
    EXPECT_TRUE(ParseSelect(*sql).ok()) << "S-Q" << q;
  }
  for (int q = 6; q <= 9; ++q) {
    auto sql = SseQuery(q);
    ASSERT_TRUE(sql.ok());
    EXPECT_TRUE(ParseSelect(*sql).ok()) << "SSE-Q" << q;
  }
  for (int q : SupportedTpchQueries()) {
    auto sql = TpchQuery(q);
    ASSERT_TRUE(sql.ok());
    auto parsed = ParseSelect(*sql);
    EXPECT_TRUE(parsed.ok()) << "Q" << q << ": " << parsed.status().ToString();
  }
}

// --- Binder -----------------------------------------------------------------------

class BinderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog;
    TpchConfig tpch;
    tpch.scale_factor = 0.001;
    tpch.num_partitions = 2;
    ASSERT_TRUE(GenerateTpch(tpch, catalog_).ok());
    SseConfig sse;
    sse.securities_rows = 100;
    sse.trades_rows = 100;
    sse.num_partitions = 2;
    ASSERT_TRUE(GenerateSse(sse, catalog_).ok());
  }
  static void TearDownTestSuite() { delete catalog_; }

  static Result<std::unique_ptr<BoundQuery>> Bind(std::string_view sql) {
    auto stmt = ParseSelect(sql);
    if (!stmt.ok()) return stmt.status();
    return BindSelect(**stmt, *catalog_);
  }

  static Catalog* catalog_;
};

Catalog* BinderTest::catalog_ = nullptr;

TEST_F(BinderTest, ResolvesColumnsAndTypes) {
  auto q = Bind("SELECT o_orderkey, o_totalprice FROM orders WHERE "
                "o_orderdate < '1995-01-01'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->select_exprs[0]->type, DataType::kInt32);
  EXPECT_EQ((*q)->select_exprs[1]->type, DataType::kFloat64);
  ASSERT_EQ((*q)->conjuncts.size(), 1u);
  // The date literal must have been coerced.
  EXPECT_EQ((*q)->conjuncts[0]->children[1]->literal.type(), DataType::kDate);
}

TEST_F(BinderTest, QualifiedAndAliasResolution) {
  auto q = Bind("SELECT T.acct_id, S.acct_id FROM trades T, securities S "
                "WHERE T.acct_id = S.acct_id");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_NE((*q)->select_exprs[0]->column, (*q)->select_exprs[1]->column);
}

TEST_F(BinderTest, AmbiguousColumnRejected) {
  auto q = Bind("SELECT acct_id FROM trades, securities");
  EXPECT_FALSE(q.ok());
}

TEST_F(BinderTest, UnknownColumnAndTable) {
  EXPECT_FALSE(Bind("SELECT nope FROM orders").ok());
  EXPECT_FALSE(Bind("SELECT 1 FROM nonexistent").ok());
}

TEST_F(BinderTest, AggregatesCollected) {
  auto q = Bind("SELECT l_returnflag, sum(l_quantity), count(*), "
                "avg(l_discount) FROM lineitem GROUP BY l_returnflag");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->aggregates.size(), 3u);
  EXPECT_EQ((*q)->aggregates[0].fn, AggFn::kSum);
  EXPECT_EQ((*q)->aggregates[1].fn, AggFn::kCount);
  EXPECT_EQ((*q)->aggregates[2].fn, AggFn::kAvg);
  EXPECT_TRUE((*q)->has_aggregation());
}

TEST_F(BinderTest, NonGroupColumnRejected) {
  EXPECT_FALSE(
      Bind("SELECT l_orderkey, sum(l_quantity) FROM lineitem "
           "GROUP BY l_returnflag")
          .ok());
}

TEST_F(BinderTest, AggregateInWhereRejected) {
  EXPECT_FALSE(Bind("SELECT 1 FROM orders WHERE sum(o_totalprice) > 5").ok());
}

TEST_F(BinderTest, OrderByBinding) {
  auto q = Bind("SELECT l_returnflag, sum(l_quantity) AS qty FROM lineitem "
                "GROUP BY l_returnflag ORDER BY qty DESC, 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ((*q)->order_by.size(), 2u);
  EXPECT_EQ((*q)->order_by[0].output_index, 1);
  EXPECT_FALSE((*q)->order_by[0].ascending);
  EXPECT_EQ((*q)->order_by[1].output_index, 0);
}

TEST_F(BinderTest, DuplicateAliasRejected) {
  EXPECT_FALSE(Bind("SELECT 1 FROM orders o, lineitem o").ok());
}

TEST_F(BinderTest, AllWorkloadQueriesBind) {
  for (int q = 1; q <= 5; ++q) {
    auto b = Bind(*SyntheticQuery(q));
    EXPECT_TRUE(b.ok()) << "S-Q" << q << ": " << b.status().ToString();
  }
  for (int q = 6; q <= 9; ++q) {
    auto b = Bind(*SseQuery(q));
    EXPECT_TRUE(b.ok()) << "SSE-Q" << q << ": " << b.status().ToString();
  }
  for (int q : SupportedTpchQueries()) {
    auto b = Bind(*TpchQuery(q));
    EXPECT_TRUE(b.ok()) << "Q" << q << ": " << b.status().ToString();
  }
}

// --- Planner ----------------------------------------------------------------------

class PlannerTest : public BinderTest {
 protected:
  static Result<PhysicalPlan> Plan(std::string_view sql) {
    PlannerOptions opts;
    opts.num_nodes = 2;
    Planner planner(catalog_, opts);
    return planner.PlanSql(sql);
  }
};

TEST_F(PlannerTest, SingleTableGather) {
  auto p = Plan("SELECT o_orderkey FROM orders WHERE o_totalprice > 1000");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->fragments.size(), 1u);
  EXPECT_EQ(p->result_schema.num_columns(), 1);
  std::string text = p->ToString();
  EXPECT_NE(text.find("Scan(orders)"), std::string::npos);
  EXPECT_NE(text.find("Filter"), std::string::npos);
}

TEST_F(PlannerTest, CoLocatedJoinHasNoShuffle) {
  // orders and lineitem are both partitioned on the order key.
  auto p = Plan("SELECT count(*) FROM orders, lineitem "
                "WHERE l_orderkey = o_orderkey");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  // One compute fragment + master final-aggregation fragment; no shuffle.
  std::string text = p->ToString();
  EXPECT_EQ(text.find("hash on"), std::string::npos) << text;
}

TEST_F(PlannerTest, RepartitionJoinWhenNotColocated) {
  // securities partitioned on acct_id; trades on sec_code ⇒ a repartition is
  // required (the paper's Fig. 1 plan). Disable broadcasting (the test
  // catalog is tiny) to force the shuffle path.
  PlannerOptions opts;
  opts.num_nodes = 2;
  opts.broadcast_threshold_rows = 0;
  Planner planner(catalog_, opts);
  auto p = planner.PlanSql(*SseQuery(9));
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  std::string text = p->ToString();
  EXPECT_NE(text.find("hash on"), std::string::npos) << text;
  EXPECT_NE(text.find("HashJoin"), std::string::npos);
  EXPECT_NE(text.find("HashAgg"), std::string::npos);
}

TEST_F(PlannerTest, BroadcastSmallBuildSide) {
  auto p = Plan("SELECT count(*) FROM lineitem, nation "
                "WHERE l_suppkey = n_nationkey");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  std::string text = p->ToString();
  EXPECT_NE(text.find("broadcast"), std::string::npos) << text;
}

TEST_F(PlannerTest, ScalarAggTwoPhase) {
  auto p = Plan("SELECT count(*), avg(o_totalprice) FROM orders");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  // Local partial fragment + master final fragment.
  EXPECT_EQ(p->fragments.size(), 2u);
  std::string text = p->ToString();
  // Two HashAgg stages.
  size_t first = text.find("HashAgg");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(text.find("HashAgg", first + 1), std::string::npos);
}

TEST_F(PlannerTest, OrderByAddsMasterSortFragment) {
  auto p = Plan("SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 5");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->limit, 5);
  std::string text = p->ToString();
  EXPECT_NE(text.find("Sort"), std::string::npos);
}

TEST_F(PlannerTest, CrossJoinRejected) {
  EXPECT_FALSE(Plan("SELECT 1 FROM orders, customer").ok());
}

TEST_F(PlannerTest, AllWorkloadQueriesPlan) {
  for (int q = 1; q <= 5; ++q) {
    auto p = Plan(*SyntheticQuery(q));
    EXPECT_TRUE(p.ok()) << "S-Q" << q << ": " << p.status().ToString();
  }
  for (int q = 6; q <= 9; ++q) {
    auto p = Plan(*SseQuery(q));
    EXPECT_TRUE(p.ok()) << "SSE-Q" << q << ": " << p.status().ToString();
  }
  for (int q : SupportedTpchQueries()) {
    auto p = Plan(*TpchQuery(q));
    EXPECT_TRUE(p.ok()) << "Q" << q << ": " << p.status().ToString();
  }
}

}  // namespace
}  // namespace claims
