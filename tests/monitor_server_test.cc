#include "obs/monitor_server.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "net/socket_util.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace claims {
namespace {

/// Scrapes `target` off a running server; fails the test on transport error.
std::string Fetch(const MonitorServer& server, const std::string& method,
                  const std::string& target, int* status_out,
                  const std::string& body = "") {
  Result<std::string> raw =
      HttpRoundTrip("127.0.0.1", server.port(), method, target, body);
  EXPECT_TRUE(raw.ok()) << raw.status().ToString();
  if (!raw.ok()) {
    *status_out = -1;
    return "";
  }
  std::string response_body;
  *status_out = ParseHttpResponse(raw.value(), &response_body);
  return response_body;
}

TEST(MonitorOptionsTest, DisabledByDefault) {
  MonitorOptions options;
  EXPECT_FALSE(options.enabled);
  MonitorServer server(options);
  EXPECT_TRUE(server.Start().ok());  // no-op
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), -1);
}

TEST(MonitorOptionsTest, FromEnvEnables) {
  ::setenv("CLAIMS_MONITOR_PORT", "0", 1);
  MonitorOptions options = MonitorOptions::FromEnv();
  ::unsetenv("CLAIMS_MONITOR_PORT");
  EXPECT_TRUE(options.enabled);
  EXPECT_EQ(options.port, 0);
  EXPECT_EQ(options.bind_address, "127.0.0.1");

  EXPECT_FALSE(MonitorOptions::FromEnv().enabled);
}

class MonitorServerTest : public ::testing::Test {
 protected:
  MonitorServerTest() : server_(EnabledOptions()) {
    Status s = server_.Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  static MonitorOptions EnabledOptions() {
    MonitorOptions options;
    options.enabled = true;
    options.port = 0;  // ephemeral
    return options;
  }

  MonitorServer server_;
};

TEST_F(MonitorServerTest, HealthzAnswersOk) {
  ASSERT_TRUE(server_.running());
  ASSERT_GT(server_.port(), 0);
  int status = 0;
  std::string body = Fetch(server_, "GET", "/healthz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");
}

TEST_F(MonitorServerTest, MetricsServesPrometheusExposition) {
  MetricsRegistry::Global()->counter("monitor_test.scraped")->Add(7);
  int status = 0;
  std::string body = Fetch(server_, "GET", "/metrics", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("# TYPE monitor_test_scraped counter"),
            std::string::npos);
  EXPECT_NE(body.find("monitor_test_scraped 7"), std::string::npos);
  // The server's own request counter is registered and exposed too.
  EXPECT_NE(body.find("monitor_requests"), std::string::npos);
}

TEST_F(MonitorServerTest, UnknownPathIs404KnownPathWrongMethodIs405) {
  int status = 0;
  Fetch(server_, "GET", "/no/such/route", &status);
  EXPECT_EQ(status, 404);
  Fetch(server_, "DELETE", "/healthz", &status);
  EXPECT_EQ(status, 405);
}

TEST_F(MonitorServerTest, FlightRecorderDumpIsChromeJson) {
  TraceCollector* tc = TraceCollector::Global();
  tc->Clear();
  tc->Enable();
  tc->Instant(123, 0, "test", "hello-from-monitor-test");
  int status = 0;
  std::string body = Fetch(server_, "POST", "/flight-recorder/dump", &status);
  tc->Disable();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(body.find("hello-from-monitor-test"), std::string::npos);
}

TEST_F(MonitorServerTest, CustomHandlersRegisterAndRemove) {
  server_.AddHandler("GET", "/custom", [](const HttpRequest& request) {
    return HttpResponse{200, "text/plain; charset=utf-8",
                        "query=" + request.query + "\n"};
  });
  int status = 0;
  std::string body = Fetch(server_, "GET", "/custom?limit=3", &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "query=limit=3\n");

  server_.RemoveHandler("GET", "/custom");
  Fetch(server_, "GET", "/custom", &status);
  EXPECT_EQ(status, 404);
}

TEST_F(MonitorServerTest, RouteIndexListsRoutes) {
  int status = 0;
  std::string body = Fetch(server_, "GET", "/", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("/metrics"), std::string::npos);
  EXPECT_NE(body.find("/healthz"), std::string::npos);
  EXPECT_NE(body.find("/flight-recorder/dump"), std::string::npos);
}

TEST_F(MonitorServerTest, MalformedRequestGets400) {
  // Raw garbage instead of an HTTP request line.
  Result<std::string> raw =
      HttpRoundTrip("127.0.0.1", server_.port(), "NOT A REQUEST", "/");
  // The server answers 400 (round trip itself succeeds at transport level)
  // or the peer closes early; either way the server must survive ...
  if (raw.ok()) {
    std::string body;
    EXPECT_EQ(ParseHttpResponse(raw.value(), &body), 400);
  }
  // ... and keep serving.
  int status = 0;
  Fetch(server_, "GET", "/healthz", &status);
  EXPECT_EQ(status, 200);
}

TEST_F(MonitorServerTest, StopIsIdempotentAndJoins) {
  ASSERT_TRUE(server_.running());
  server_.Stop();
  EXPECT_FALSE(server_.running());
  server_.Stop();  // second stop is a no-op
}

TEST(MonitorServerDispatchTest, WorksWithoutSockets) {
  MonitorServer server;  // disabled: no thread, no socket
  HttpRequest request;
  request.method = "GET";
  request.path = "/healthz";
  HttpResponse response = server.Dispatch(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "ok\n");
}

}  // namespace
}  // namespace claims
