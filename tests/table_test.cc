#include "storage/table.h"

#include <gtest/gtest.h>

namespace claims {
namespace {

Schema KeyedSchema() {
  return Schema({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
}

TEST(TableTest, AppendRoundRobinSpreadsRows) {
  Table t("t", KeyedSchema(), 4, {});
  for (int i = 0; i < 40; ++i) {
    char* slot = t.AppendRowSlotRoundRobin();
    ASSERT_NE(slot, nullptr);
    t.schema().SetInt32(slot, 0, i);
    t.schema().SetInt64(slot, 1, i);
  }
  EXPECT_EQ(t.num_rows(), 40);
  for (int p = 0; p < 4; ++p) EXPECT_EQ(t.partition(p).num_rows(), 10);
}

TEST(TableTest, HashPartitionIsDeterministicAndConsistent) {
  Table t("t", KeyedSchema(), 4, {0});
  for (int i = 0; i < 1000; ++i) {
    t.AppendValues({Value::Int32(i % 50), Value::Int64(i)});
  }
  EXPECT_EQ(t.num_rows(), 1000);
  // Every copy of the same key must land in the same partition.
  const Schema& s = t.schema();
  for (int p = 0; p < 4; ++p) {
    const TablePartition& part = t.partition(p);
    for (int b = 0; b < part.num_blocks(); ++b) {
      const Block& blk = *part.block(b);
      for (int r = 0; r < blk.num_rows(); ++r) {
        int32_t key = s.GetInt32(blk.RowAt(r), 0);
        EXPECT_EQ(PartitionOf(HashRowKeys(s, blk.RowAt(r), {0}), 4), p)
            << "key " << key;
      }
    }
  }
}

TEST(TableTest, PartitionsReasonablyBalanced) {
  Table t("t", KeyedSchema(), 4, {0});
  for (int i = 0; i < 4000; ++i) {
    t.AppendValues({Value::Int32(i), Value::Int64(i)});
  }
  for (int p = 0; p < 4; ++p) {
    EXPECT_NEAR(t.partition(p).num_rows(), 1000, 250);
  }
}

TEST(TableTest, IsPartitionedOn) {
  Table t("t", KeyedSchema(), 4, {0});
  EXPECT_TRUE(t.IsPartitionedOn({0}));
  EXPECT_FALSE(t.IsPartitionedOn({1}));
  EXPECT_FALSE(t.IsPartitionedOn({0, 1}));
  Table rr("rr", KeyedSchema(), 4, {});
  EXPECT_FALSE(rr.IsPartitionedOn({0}));
}

TEST(TableTest, BytesAccounting) {
  Table t("t", KeyedSchema(), 1, {0});
  t.AppendValues({Value::Int32(1), Value::Int64(2)});
  EXPECT_EQ(t.bytes(), t.schema().row_size());
}

TEST(PartitionTest, HashIsStable) {
  Schema s = KeyedSchema();
  std::vector<char> row(s.row_size());
  s.SetInt32(row.data(), 0, 600036);
  s.SetInt64(row.data(), 1, 9);
  uint64_t h1 = HashRowKeys(s, row.data(), {0});
  uint64_t h2 = HashRowKeys(s, row.data(), {0});
  EXPECT_EQ(h1, h2);
  s.SetInt32(row.data(), 0, 600037);
  EXPECT_NE(HashRowKeys(s, row.data(), {0}), h1);
}

}  // namespace
}  // namespace claims
