#include "core/elastic_iterator.h"

#include <gtest/gtest.h>

#include <set>

#include "test_iterators.h"

namespace claims {
namespace {

using testing_support::BlockingCounter;
using testing_support::CountingSource;
using testing_support::FailingSource;
using testing_support::OneInt64Schema;
using testing_support::SlowPassThrough;

// Drains an elastic iterator, returning the multiset of int64 values seen.
std::multiset<int64_t> DrainValues(ElasticIterator* it) {
  Schema schema = OneInt64Schema();
  WorkerContext ctx;
  std::multiset<int64_t> values;
  BlockPtr block;
  while (it->Next(&ctx, &block) == NextResult::kSuccess) {
    for (int r = 0; r < block->num_rows(); ++r) {
      values.insert(schema.GetInt64(block->RowAt(r), 0));
    }
  }
  return values;
}

std::multiset<int64_t> ExpectedValues(int n) {
  std::multiset<int64_t> v;
  for (int i = 0; i < n; ++i) v.insert(i);
  return v;
}

TEST(ElasticIteratorTest, SingleWorkerProducesAll) {
  ElasticIterator it(std::make_unique<CountingSource>(20, 10), {});
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  EXPECT_EQ(DrainValues(&it), ExpectedValues(200));
  EXPECT_TRUE(it.finished());
  it.Close();
}

TEST(ElasticIteratorTest, MultipleWorkersNoLossNoDuplication) {
  ElasticIterator::Options opts;
  opts.initial_parallelism = 4;
  ElasticIterator it(std::make_unique<CountingSource>(50, 7), opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  EXPECT_EQ(DrainValues(&it), ExpectedValues(350));
  it.Close();
}

TEST(ElasticIteratorTest, ExpandDuringExecution) {
  ElasticIterator::Options opts;
  opts.initial_parallelism = 1;
  ElasticIterator it(
      std::make_unique<SlowPassThrough>(
          std::make_unique<CountingSource>(60, 5), /*cost_us=*/500),
      opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  EXPECT_EQ(it.parallelism(), 1);
  EXPECT_TRUE(it.Expand(1));
  EXPECT_TRUE(it.Expand(2));
  EXPECT_EQ(it.parallelism(), 3);
  EXPECT_EQ(DrainValues(&it), ExpectedValues(300));
  it.Close();
}

TEST(ElasticIteratorTest, ShrinkDuringExecutionLosesNothing) {
  ElasticIterator::Options opts;
  opts.initial_parallelism = 4;
  ElasticIterator it(
      std::make_unique<SlowPassThrough>(
          std::make_unique<CountingSource>(80, 5), /*cost_us=*/300),
      opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  std::thread shrinker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(it.Shrink());
    EXPECT_TRUE(it.Shrink());
  });
  auto values = DrainValues(&it);
  shrinker.join();
  EXPECT_EQ(values, ExpectedValues(400));
  it.Close();
}

TEST(ElasticIteratorTest, ShrinkRespectsMinParallelism) {
  ElasticIterator::Options opts;
  opts.initial_parallelism = 2;
  opts.min_parallelism = 2;
  ElasticIterator it(std::make_unique<CountingSource>(1000, 2, /*delay_us=*/50),
                     opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  EXPECT_FALSE(it.Shrink());
  it.Close();
}

TEST(ElasticIteratorTest, ExpandRespectsMaxParallelism) {
  ElasticIterator::Options opts;
  opts.initial_parallelism = 2;
  opts.max_parallelism = 2;
  ElasticIterator it(std::make_unique<CountingSource>(1000, 2, /*delay_us=*/50),
                     opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  EXPECT_FALSE(it.Expand(5));
  it.Close();
}

TEST(ElasticIteratorTest, ShrinkBlockingReturnsLatency) {
  ElasticIterator::Options opts;
  opts.initial_parallelism = 3;
  ElasticIterator it(
      std::make_unique<SlowPassThrough>(
          std::make_unique<CountingSource>(5000, 2), /*cost_us=*/200),
      opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  // Keep the pipeline draining so workers are never stuck on a full buffer.
  std::thread consumer([&] { DrainValues(&it); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  int64_t delay = it.ShrinkBlocking();
  EXPECT_GE(delay, 0);
  EXPECT_LT(delay, 2'000'000'000LL);  // sanity: well under 2 s
  EXPECT_EQ(it.parallelism(), 2);
  it.Close();
  consumer.join();
}

TEST(ElasticIteratorTest, ExpandMeasuredReportsSubSecondDelay) {
  ElasticIterator::Options opts;
  opts.initial_parallelism = 1;
  ElasticIterator it(
      std::make_unique<SlowPassThrough>(
          std::make_unique<CountingSource>(5000, 2), /*cost_us=*/200),
      opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  std::thread consumer([&] { DrainValues(&it); });
  int64_t delay = it.ExpandMeasured(7);
  EXPECT_GE(delay, 0);
  EXPECT_LT(delay, 1'000'000'000LL);
  it.Close();
  consumer.join();
}

TEST(ElasticIteratorTest, BlockingChildStateBuiltOnce) {
  // All workers collaboratively build the blocking iterator's state; the
  // summary must count every input tuple exactly once.
  ElasticIterator::Options opts;
  opts.initial_parallelism = 4;
  auto blocking = std::make_unique<BlockingCounter>(
      std::make_unique<CountingSource>(40, 25));
  BlockingCounter* counter = blocking.get();
  ElasticIterator it(std::move(blocking), opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  BlockPtr block;
  ASSERT_EQ(it.Next(&ctx, &block), NextResult::kSuccess);
  Schema schema = OneInt64Schema();
  EXPECT_EQ(schema.GetInt64(block->RowAt(0), 0), 40 * 25);
  EXPECT_EQ(it.Next(&ctx, &block), NextResult::kEndOfFile);
  EXPECT_EQ(counter->state_tuples(), 40 * 25);
  it.Close();
}

TEST(ElasticIteratorTest, ExpandDuringStateConstructionJoinsBuild) {
  ElasticIterator::Options opts;
  opts.initial_parallelism = 1;
  auto blocking = std::make_unique<BlockingCounter>(std::make_unique<SlowPassThrough>(
      std::make_unique<CountingSource>(200, 10), /*cost_us=*/200));
  ElasticIterator it(std::move(blocking), opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  // Expand while the build is still running (S2 state).
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(it.Expand(1));
  EXPECT_TRUE(it.Expand(2));
  BlockPtr block;
  ASSERT_EQ(it.Next(&ctx, &block), NextResult::kSuccess);
  Schema schema = OneInt64Schema();
  EXPECT_EQ(schema.GetInt64(block->RowAt(0), 0), 2000);
  it.Close();
}

TEST(ElasticIteratorTest, ShrinkDuringStateConstruction) {
  ElasticIterator::Options opts;
  opts.initial_parallelism = 3;
  auto blocking = std::make_unique<BlockingCounter>(std::make_unique<SlowPassThrough>(
      std::make_unique<CountingSource>(150, 10), /*cost_us=*/300));
  ElasticIterator it(std::move(blocking), opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(it.Shrink());  // worker terminates mid-build (S2)
  BlockPtr block;
  ASSERT_EQ(it.Next(&ctx, &block), NextResult::kSuccess);
  Schema schema = OneInt64Schema();
  // No tuple may be lost despite the mid-build termination.
  EXPECT_EQ(schema.GetInt64(block->RowAt(0), 0), 1500);
  it.Close();
}

TEST(ElasticIteratorTest, OrderPreservingMode) {
  ElasticIterator::Options opts;
  opts.initial_parallelism = 4;
  opts.order_preserving = true;
  ElasticIterator it(std::make_unique<CountingSource>(100, 3), opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  BlockPtr block;
  uint64_t expect = 0;
  while (it.Next(&ctx, &block) == NextResult::kSuccess) {
    EXPECT_EQ(block->sequence_number(), expect);
    ++expect;
  }
  EXPECT_EQ(expect, 100u);
  it.Close();
}

TEST(ElasticIteratorTest, StatsCountOutputTuples) {
  SegmentStats stats;
  ElasticIterator::Options opts;
  opts.initial_parallelism = 2;
  opts.stats = &stats;
  ElasticIterator it(std::make_unique<CountingSource>(30, 10), opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  DrainValues(&it);
  it.Close();
  EXPECT_EQ(stats.output_tuples.load(), 300);
  EXPECT_EQ(stats.input_tuples.load(), 300);  // CountingSource counts inputs
}

TEST(ElasticIteratorTest, CloseWithoutDrainTerminatesCleanly) {
  ElasticIterator::Options opts;
  opts.initial_parallelism = 3;
  opts.buffer_capacity_blocks = 2;  // workers will block on full buffer
  auto it = std::make_unique<ElasticIterator>(
      std::make_unique<CountingSource>(10000, 5), opts);
  WorkerContext ctx;
  ASSERT_EQ(it->Open(&ctx), NextResult::kSuccess);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  it->Close();  // must not hang
}

TEST(ElasticIteratorTest, ChildErrorSurfacesInsteadOfCleanEof) {
  // Regression: a child stream breaking mid-flight used to drain as a clean
  // kEndOfFile — an empty (or truncated) result indistinguishable from
  // success. The first error must latch and re-raise from Next().
  ElasticIterator::Options opts;
  opts.initial_parallelism = 2;
  ElasticIterator it(std::make_unique<FailingSource>(/*good_blocks=*/3), opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  NextResult last = NextResult::kSuccess;
  BlockPtr block;
  while ((last = it.Next(&ctx, &block)) == NextResult::kSuccess) {
  }
  EXPECT_EQ(last, NextResult::kError);
  EXPECT_TRUE(it.failed());
  EXPECT_TRUE(it.finished());  // terminal: the scheduler must stop feeding it
  it.Close();
}

TEST(ElasticIteratorTest, ChildOpenErrorSurfaces) {
  ElasticIterator::Options opts;
  opts.initial_parallelism = 2;
  ElasticIterator it(
      std::make_unique<FailingSource>(/*good_blocks=*/0, /*fail_open=*/true),
      opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);  // workers launch async
  BlockPtr block;
  EXPECT_EQ(it.Next(&ctx, &block), NextResult::kError);
  EXPECT_TRUE(it.failed());
  it.Close();
}

TEST(ElasticIteratorTest, ExpandRefusedAfterError) {
  ElasticIterator::Options opts;
  opts.initial_parallelism = 1;
  opts.max_parallelism = 8;
  ElasticIterator it(std::make_unique<FailingSource>(/*good_blocks=*/0), opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  BlockPtr block;
  while (it.Next(&ctx, &block) == NextResult::kSuccess) {
  }
  EXPECT_FALSE(it.Expand(3));
  EXPECT_EQ(it.ExpandMeasured(4), -1);
  it.Close();
}

TEST(ElasticIteratorTest, DoubleCloseAndDestructorAreSafe) {
  ElasticIterator it(std::make_unique<CountingSource>(5, 5), {});
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  DrainValues(&it);
  it.Close();
  it.Close();  // idempotent
}

}  // namespace
}  // namespace claims
