#include "storage/datagen/tpch_gen.h"

#include <gtest/gtest.h>

#include <set>

namespace claims {
namespace {

class TpchGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog;
    TpchConfig config;
    config.scale_factor = 0.002;  // tiny but fully populated
    config.num_partitions = 3;
    ASSERT_TRUE(GenerateTpch(config, catalog_).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static Catalog* catalog_;
};

Catalog* TpchGenTest::catalog_ = nullptr;

TEST_F(TpchGenTest, AllTablesPresent) {
  for (const char* name : {"region", "nation", "supplier", "customer", "part",
                           "partsupp", "orders", "lineitem"}) {
    EXPECT_TRUE(catalog_->HasTable(name)) << name;
  }
}

TEST_F(TpchGenTest, RowCountsMatchScale) {
  EXPECT_EQ((*catalog_->GetTable("region"))->num_rows(), 5);
  EXPECT_EQ((*catalog_->GetTable("nation"))->num_rows(), 25);
  EXPECT_EQ((*catalog_->GetTable("supplier"))->num_rows(),
            TpchRows("supplier", 0.002));
  EXPECT_EQ((*catalog_->GetTable("orders"))->num_rows(),
            TpchRows("orders", 0.002));
  // lineitem count is stochastic (1-7 lines/order) but near 4/order.
  int64_t orders = (*catalog_->GetTable("orders"))->num_rows();
  int64_t lines = (*catalog_->GetTable("lineitem"))->num_rows();
  EXPECT_GT(lines, 3 * orders);
  EXPECT_LT(lines, 5 * orders);
}

TEST_F(TpchGenTest, ForeignKeysResolve) {
  TablePtr lineitem = *catalog_->GetTable("lineitem");
  int64_t n_part = (*catalog_->GetTable("part"))->num_rows();
  int64_t n_supp = (*catalog_->GetTable("supplier"))->num_rows();
  const Schema& s = lineitem->schema();
  int pk = s.FindColumn("l_partkey");
  int sk = s.FindColumn("l_suppkey");
  ASSERT_GE(pk, 0);
  ASSERT_GE(sk, 0);
  for (int p = 0; p < lineitem->num_partitions(); ++p) {
    const TablePartition& part = lineitem->partition(p);
    for (int b = 0; b < part.num_blocks(); ++b) {
      const Block& blk = *part.block(b);
      for (int r = 0; r < blk.num_rows(); ++r) {
        int32_t pkey = s.GetInt32(blk.RowAt(r), pk);
        int32_t skey = s.GetInt32(blk.RowAt(r), sk);
        ASSERT_GE(pkey, 1);
        ASSERT_LE(pkey, n_part);
        ASSERT_GE(skey, 1);
        ASSERT_LE(skey, n_supp);
      }
    }
  }
}

TEST_F(TpchGenTest, OrderAndLineitemCoPartitionedOnOrderKey) {
  TablePtr orders = *catalog_->GetTable("orders");
  TablePtr lineitem = *catalog_->GetTable("lineitem");
  EXPECT_TRUE(orders->IsPartitionedOn({0}));
  EXPECT_TRUE(lineitem->IsPartitionedOn({0}));
  EXPECT_EQ(orders->num_partitions(), lineitem->num_partitions());
}

TEST_F(TpchGenTest, DatesInRange) {
  TablePtr orders = *catalog_->GetTable("orders");
  const Schema& s = orders->schema();
  int col = s.FindColumn("o_orderdate");
  int32_t lo = DaysFromCivil(1992, 1, 1);
  int32_t hi = DaysFromCivil(1998, 8, 2);
  for (int p = 0; p < orders->num_partitions(); ++p) {
    const TablePartition& part = orders->partition(p);
    for (int b = 0; b < part.num_blocks(); ++b) {
      const Block& blk = *part.block(b);
      for (int r = 0; r < blk.num_rows(); ++r) {
        int32_t d = s.GetInt32(blk.RowAt(r), col);
        ASSERT_GE(d, lo);
        ASSERT_LE(d, hi);
      }
    }
  }
}

TEST_F(TpchGenTest, ReturnFlagsAndStatusConsistent) {
  TablePtr lineitem = *catalog_->GetTable("lineitem");
  const Schema& s = lineitem->schema();
  int rf = s.FindColumn("l_returnflag");
  int ls = s.FindColumn("l_linestatus");
  std::set<std::string> flags;
  std::set<std::string> statuses;
  for (int p = 0; p < lineitem->num_partitions(); ++p) {
    const TablePartition& part = lineitem->partition(p);
    for (int b = 0; b < part.num_blocks(); ++b) {
      const Block& blk = *part.block(b);
      for (int r = 0; r < blk.num_rows(); ++r) {
        flags.emplace(s.GetString(blk.RowAt(r), rf));
        statuses.emplace(s.GetString(blk.RowAt(r), ls));
      }
    }
  }
  EXPECT_EQ(flags, (std::set<std::string>{"A", "N", "R"}));
  EXPECT_EQ(statuses, (std::set<std::string>{"F", "O"}));
}

TEST_F(TpchGenTest, PartNamesContainColors) {
  // Q9 filters p_name LIKE '%green%'; greens must exist but not dominate.
  TablePtr part = *catalog_->GetTable("part");
  const Schema& s = part->schema();
  int col = s.FindColumn("p_name");
  int64_t green = 0;
  int64_t total = 0;
  for (int p = 0; p < part->num_partitions(); ++p) {
    const TablePartition& tp = part->partition(p);
    for (int b = 0; b < tp.num_blocks(); ++b) {
      const Block& blk = *tp.block(b);
      for (int r = 0; r < blk.num_rows(); ++r) {
        ++total;
        std::string_view name = s.GetString(blk.RowAt(r), col);
        if (name.find("green") != std::string_view::npos) ++green;
      }
    }
  }
  EXPECT_GT(green, 0);
  EXPECT_LT(green, total / 2);
}

TEST(TpchRowsTest, ScalesLinearly) {
  EXPECT_EQ(TpchRows("orders", 1.0), 1500000);
  EXPECT_EQ(TpchRows("orders", 0.01), 15000);
  EXPECT_EQ(TpchRows("region", 100.0), 5);
  EXPECT_EQ(TpchRows("lineitem", 1.0), 6000000);
}

}  // namespace
}  // namespace claims
