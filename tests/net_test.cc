#include <gtest/gtest.h>

#include <thread>

#include "net/network.h"

namespace claims {
namespace {

BlockPtr RowBlock(int rows = 1) {
  auto b = MakeBlock(8, 8 * rows);
  for (int i = 0; i < rows; ++i) b->AppendRow();
  return b;
}

TEST(TokenBucketTest, UnthrottledIsFree) {
  TokenBucket bucket(0);
  EXPECT_FALSE(bucket.throttled());
  EXPECT_EQ(bucket.Acquire(1 << 30), 0);
  EXPECT_EQ(bucket.total_bytes(), 1 << 30);
}

TEST(TokenBucketTest, ThrottleDelaysLargeTransfers) {
  // 10 MB/s: 2 MB beyond the burst allowance needs ~200 ms.
  TokenBucket bucket(10 * 1000 * 1000);
  bucket.Acquire(1 << 20);  // eat the initial burst
  int64_t t0 = SteadyClock::Default()->NowNanos();
  bucket.Acquire(2 * 1000 * 1000);
  int64_t elapsed = SteadyClock::Default()->NowNanos() - t0;
  EXPECT_GT(elapsed, 80'000'000);   // at least ~80 ms
  EXPECT_LT(elapsed, 2'000'000'000);
}

TEST(TokenBucketTest, CancelAborts) {
  TokenBucket bucket(1000);  // 1 KB/s: a 1 MB acquire would take ~17 min
  std::atomic<bool> cancel{false};
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cancel.store(true);
  });
  EXPECT_EQ(bucket.Acquire(1 << 20, &cancel), -1);
  canceller.join();
}

/// Manual clock whose SleepNanos advances its own time — what a correct
/// virtual-time injection looks like.
class SleepingManualClock : public Clock {
 public:
  int64_t NowNanos() const override { return now_; }
  void SleepNanos(int64_t ns) override { now_ += ns; }

 private:
  int64_t now_ = 0;
};

/// Manual clock that only moves when the test says so: SleepNanos inherits
/// the real-time default, so from Acquire's point of view time is frozen.
class FrozenManualClock : public Clock {
 public:
  int64_t NowNanos() const override { return now_; }
  void Advance(int64_t ns) { now_ += ns; }

 private:
  int64_t now_ = 0;
};

TEST(TokenBucketTest, VirtualClockWaitsAreDeterministic) {
  // Regression: Acquire computed owed tokens from the injected clock but
  // slept real wall time, so under a virtual clock a throttled transfer spun
  // for its real-time duration (effectively hanging for large acquires).
  // With waits routed through SleepNanos, the same transfer completes
  // instantly in real time and the waited virtual nanoseconds match the
  // bandwidth arithmetic.
  SleepingManualClock clock;
  TokenBucket bucket(1000, &clock);  // 1 KB/s, 64 KB initial burst
  bucket.Acquire(64 * 1024);         // eat the burst at t=0
  int64_t waited = bucket.Acquire(1 << 20);  // 1 MB at 1 KB/s ≈ 1049 s
  EXPECT_GE(waited, 1'000'000'000'000LL);    // ≥ 1000 virtual seconds
  EXPECT_LT(waited, 1'200'000'000'000LL);
  EXPECT_EQ(bucket.total_bytes(), 64 * 1024 + (1 << 20));
}

TEST(TokenBucketTest, FrozenClockRejectsInsteadOfHanging) {
  // A frozen manual clock can never accrue the owed tokens; Acquire must
  // fail fast like a cancellation rather than sleep-spin forever.
  FrozenManualClock clock;
  TokenBucket bucket(1000, &clock);
  bucket.Acquire(64 * 1024);  // eat the burst
  EXPECT_EQ(bucket.Acquire(1 << 20), -1);
}

TEST(TokenBucketTest, FrozenClockStillGrantsWithinBudget) {
  // Acquisitions that fit the current token balance need no wait and must
  // keep working even when the clock never moves.
  FrozenManualClock clock;
  TokenBucket bucket(1'000'000, &clock);
  EXPECT_GE(bucket.Acquire(1024), 0);
  clock.Advance(1'000'000'000);  // +1 s → +1 MB of tokens
  EXPECT_GE(bucket.Acquire(500'000), 0);
}

TEST(BlockChannelTest, SendReceive) {
  BlockChannel channel(1, 8);
  ASSERT_TRUE(channel.Send({RowBlock(), 2}));
  NetBlock nb;
  ASSERT_EQ(channel.Receive(&nb, 1'000'000), ChannelStatus::kOk);
  EXPECT_EQ(nb.from_node, 2);
  channel.CloseProducer();
  EXPECT_EQ(channel.Receive(&nb, 1'000'000), ChannelStatus::kClosed);
}

TEST(BlockChannelTest, TimeoutWhenQuiet) {
  BlockChannel channel(1, 8);
  NetBlock nb;
  EXPECT_EQ(channel.Receive(&nb, 2'000'000), ChannelStatus::kTimeout);
}

TEST(BlockChannelTest, DrainsBeforeClose) {
  BlockChannel channel(2, 8);
  ASSERT_TRUE(channel.Send({RowBlock(), 0}));
  ASSERT_TRUE(channel.Send({RowBlock(), 1}));
  channel.CloseProducer();
  channel.CloseProducer();
  NetBlock nb;
  EXPECT_EQ(channel.Receive(&nb, 1'000'000), ChannelStatus::kOk);
  EXPECT_EQ(channel.Receive(&nb, 1'000'000), ChannelStatus::kOk);
  EXPECT_EQ(channel.Receive(&nb, 1'000'000), ChannelStatus::kClosed);
}

TEST(BlockChannelTest, BoundedBlocksSender) {
  BlockChannel channel(1, 1);
  ASSERT_TRUE(channel.Send({RowBlock(), 0}));
  std::atomic<bool> second_sent{false};
  std::thread sender([&] {
    EXPECT_TRUE(channel.Send({RowBlock(), 0}));
    second_sent.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_sent.load());
  NetBlock nb;
  ASSERT_EQ(channel.Receive(&nb, 1'000'000), ChannelStatus::kOk);
  sender.join();
  EXPECT_TRUE(second_sent.load());
}

TEST(BlockChannelTest, UnboundedNeverBlocks) {
  BlockChannel channel(1, 0);  // ME materialization mode
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(channel.Send({RowBlock(), 0}));
  }
  EXPECT_EQ(channel.size(), 1000u);
}

TEST(BlockChannelTest, CancelUnblocksEverybody) {
  BlockChannel channel(1, 1);
  ASSERT_TRUE(channel.Send({RowBlock(), 0}));
  std::thread sender([&] { channel.Send({RowBlock(), 0}); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  channel.Cancel();
  sender.join();
  NetBlock nb;
  EXPECT_EQ(channel.Receive(&nb, 1'000'000), ChannelStatus::kClosed);
}

TEST(NetworkTest, ExchangeRouting) {
  Network net(3, NetworkOptions{0, 8});
  net.CreateExchange(7, /*producers=*/2, {0, 1, 2});
  ASSERT_TRUE(net.Send(7, 0, 1, RowBlock()));
  ASSERT_TRUE(net.Send(7, 2, 1, RowBlock()));
  BlockChannel* c1 = net.GetChannel(7, 1);
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1->size(), 2u);
  EXPECT_EQ(net.GetChannel(7, 0)->size(), 0u);
  // Each producer closes once; the exchange closes all three channels.
  net.CloseProducer(7);
  net.CloseProducer(7);
  NetBlock nb;
  EXPECT_EQ(net.GetChannel(7, 0)->Receive(&nb, 1'000'000),
            ChannelStatus::kClosed);
}

TEST(NetworkTest, LocalSendIsFreeRemoteIsCounted) {
  Network net(2, NetworkOptions{0, 8});
  net.CreateExchange(1, 1, {0, 1});
  ASSERT_TRUE(net.Send(1, 0, 0, RowBlock(4)));  // loopback
  EXPECT_EQ(net.total_remote_bytes(), 0);
  ASSERT_TRUE(net.Send(1, 0, 1, RowBlock(4)));
  EXPECT_EQ(net.total_remote_bytes(), 32);  // 4 rows × 8 bytes
}

TEST(NetworkTest, MissingChannelFails) {
  Network net(2, NetworkOptions{0, 8});
  EXPECT_EQ(net.GetChannel(99, 0), nullptr);
  EXPECT_FALSE(net.Send(99, 0, 1, RowBlock()));
}

TEST(NetworkTest, RecreatingExchangeReplacesChannels) {
  Network net(2, NetworkOptions{0, 8});
  net.CreateExchange(1, 1, {0});
  net.CloseProducer(1);
  // A new query reuses exchange id 1; the stale closed channel must not leak
  // into it.
  net.CreateExchange(1, 1, {0});
  ASSERT_TRUE(net.Send(1, 0, 0, RowBlock()));
  NetBlock nb;
  EXPECT_EQ(net.GetChannel(1, 0)->Receive(&nb, 1'000'000), ChannelStatus::kOk);
}

}  // namespace
}  // namespace claims
