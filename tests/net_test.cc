#include <gtest/gtest.h>

#include <thread>

#include "net/network.h"

namespace claims {
namespace {

BlockPtr RowBlock(int rows = 1) {
  auto b = MakeBlock(8, 8 * rows);
  for (int i = 0; i < rows; ++i) b->AppendRow();
  return b;
}

TEST(TokenBucketTest, UnthrottledIsFree) {
  TokenBucket bucket(0);
  EXPECT_FALSE(bucket.throttled());
  EXPECT_EQ(bucket.Acquire(1 << 30), 0);
  EXPECT_EQ(bucket.total_bytes(), 1 << 30);
}

TEST(TokenBucketTest, ThrottleDelaysLargeTransfers) {
  // 10 MB/s: 2 MB beyond the burst allowance needs ~200 ms.
  TokenBucket bucket(10 * 1000 * 1000);
  bucket.Acquire(1 << 20);  // eat the initial burst
  int64_t t0 = SteadyClock::Default()->NowNanos();
  bucket.Acquire(2 * 1000 * 1000);
  int64_t elapsed = SteadyClock::Default()->NowNanos() - t0;
  EXPECT_GT(elapsed, 80'000'000);   // at least ~80 ms
  EXPECT_LT(elapsed, 2'000'000'000);
}

TEST(TokenBucketTest, CancelAborts) {
  TokenBucket bucket(1000);  // 1 KB/s: a 1 MB acquire would take ~17 min
  std::atomic<bool> cancel{false};
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cancel.store(true);
  });
  EXPECT_EQ(bucket.Acquire(1 << 20, &cancel), -1);
  canceller.join();
}

TEST(BlockChannelTest, SendReceive) {
  BlockChannel channel(1, 8);
  ASSERT_TRUE(channel.Send({RowBlock(), 2}));
  NetBlock nb;
  ASSERT_EQ(channel.Receive(&nb, 1'000'000), ChannelStatus::kOk);
  EXPECT_EQ(nb.from_node, 2);
  channel.CloseProducer();
  EXPECT_EQ(channel.Receive(&nb, 1'000'000), ChannelStatus::kClosed);
}

TEST(BlockChannelTest, TimeoutWhenQuiet) {
  BlockChannel channel(1, 8);
  NetBlock nb;
  EXPECT_EQ(channel.Receive(&nb, 2'000'000), ChannelStatus::kTimeout);
}

TEST(BlockChannelTest, DrainsBeforeClose) {
  BlockChannel channel(2, 8);
  ASSERT_TRUE(channel.Send({RowBlock(), 0}));
  ASSERT_TRUE(channel.Send({RowBlock(), 1}));
  channel.CloseProducer();
  channel.CloseProducer();
  NetBlock nb;
  EXPECT_EQ(channel.Receive(&nb, 1'000'000), ChannelStatus::kOk);
  EXPECT_EQ(channel.Receive(&nb, 1'000'000), ChannelStatus::kOk);
  EXPECT_EQ(channel.Receive(&nb, 1'000'000), ChannelStatus::kClosed);
}

TEST(BlockChannelTest, BoundedBlocksSender) {
  BlockChannel channel(1, 1);
  ASSERT_TRUE(channel.Send({RowBlock(), 0}));
  std::atomic<bool> second_sent{false};
  std::thread sender([&] {
    EXPECT_TRUE(channel.Send({RowBlock(), 0}));
    second_sent.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_sent.load());
  NetBlock nb;
  ASSERT_EQ(channel.Receive(&nb, 1'000'000), ChannelStatus::kOk);
  sender.join();
  EXPECT_TRUE(second_sent.load());
}

TEST(BlockChannelTest, UnboundedNeverBlocks) {
  BlockChannel channel(1, 0);  // ME materialization mode
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(channel.Send({RowBlock(), 0}));
  }
  EXPECT_EQ(channel.size(), 1000u);
}

TEST(BlockChannelTest, CancelUnblocksEverybody) {
  BlockChannel channel(1, 1);
  ASSERT_TRUE(channel.Send({RowBlock(), 0}));
  std::thread sender([&] { channel.Send({RowBlock(), 0}); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  channel.Cancel();
  sender.join();
  NetBlock nb;
  EXPECT_EQ(channel.Receive(&nb, 1'000'000), ChannelStatus::kClosed);
}

TEST(NetworkTest, ExchangeRouting) {
  Network net(3, NetworkOptions{0, 8});
  net.CreateExchange(7, /*producers=*/2, {0, 1, 2});
  ASSERT_TRUE(net.Send(7, 0, 1, RowBlock()));
  ASSERT_TRUE(net.Send(7, 2, 1, RowBlock()));
  BlockChannel* c1 = net.GetChannel(7, 1);
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1->size(), 2u);
  EXPECT_EQ(net.GetChannel(7, 0)->size(), 0u);
  // Each producer closes once; the exchange closes all three channels.
  net.CloseProducer(7);
  net.CloseProducer(7);
  NetBlock nb;
  EXPECT_EQ(net.GetChannel(7, 0)->Receive(&nb, 1'000'000),
            ChannelStatus::kClosed);
}

TEST(NetworkTest, LocalSendIsFreeRemoteIsCounted) {
  Network net(2, NetworkOptions{0, 8});
  net.CreateExchange(1, 1, {0, 1});
  ASSERT_TRUE(net.Send(1, 0, 0, RowBlock(4)));  // loopback
  EXPECT_EQ(net.total_remote_bytes(), 0);
  ASSERT_TRUE(net.Send(1, 0, 1, RowBlock(4)));
  EXPECT_EQ(net.total_remote_bytes(), 32);  // 4 rows × 8 bytes
}

TEST(NetworkTest, MissingChannelFails) {
  Network net(2, NetworkOptions{0, 8});
  EXPECT_EQ(net.GetChannel(99, 0), nullptr);
  EXPECT_FALSE(net.Send(99, 0, 1, RowBlock()));
}

TEST(NetworkTest, RecreatingExchangeReplacesChannels) {
  Network net(2, NetworkOptions{0, 8});
  net.CreateExchange(1, 1, {0});
  net.CloseProducer(1);
  // A new query reuses exchange id 1; the stale closed channel must not leak
  // into it.
  net.CreateExchange(1, 1, {0});
  ASSERT_TRUE(net.Send(1, 0, 0, RowBlock()));
  NetBlock nb;
  EXPECT_EQ(net.GetChannel(1, 0)->Receive(&nb, 1'000'000), ChannelStatus::kOk);
}

}  // namespace
}  // namespace claims
