#include "core/barrier.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace claims {
namespace {

TEST(DynamicBarrierTest, SingleThreadPassesImmediately) {
  DynamicBarrier b;
  EXPECT_FALSE(b.Register());
  b.Arrive();
  EXPECT_TRUE(b.IsOpen());
}

TEST(DynamicBarrierTest, WaitsForAllRegistered) {
  DynamicBarrier b;
  const int kThreads = 4;
  std::atomic<int> passed{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) b.Register();
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&b, &passed, i] {
      // Stagger arrivals; no thread may pass until the last arrives.
      std::this_thread::sleep_for(std::chrono::milliseconds(5 * i));
      b.Arrive();
      passed.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(passed.load(), kThreads);
  EXPECT_TRUE(b.IsOpen());
}

TEST(DynamicBarrierTest, LateRegisterAfterOpenIsNoop) {
  DynamicBarrier b;
  b.Register();
  b.Arrive();  // opens
  EXPECT_TRUE(b.Register());  // reports already-open
  b.Arrive();                 // returns immediately (would hang otherwise)
  EXPECT_TRUE(b.IsOpen());
}

TEST(DynamicBarrierTest, DeregisterReleasesWaiters) {
  DynamicBarrier b;
  b.Register();
  b.Register();
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    b.Arrive();
    released.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(released.load());
  // Second worker terminates instead of arriving (broadcastExit).
  b.Deregister();
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(DynamicBarrierTest, AllWorkersTerminateOpensBarrier) {
  DynamicBarrier b;
  b.Register();
  b.Register();
  b.Deregister();
  b.Deregister();
  EXPECT_TRUE(b.IsOpen());
}

TEST(DynamicBarrierTest, ExpansionWhileWaiting) {
  DynamicBarrier b;
  b.Register();
  b.Register();
  std::atomic<int> passed{0};
  std::thread w1([&] {
    b.Arrive();
    passed.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // A third worker expands in before the others finished: everyone must wait
  // for it too.
  EXPECT_FALSE(b.Register());
  std::thread w2([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    b.Arrive();
    passed.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(passed.load(), 0);
  b.Arrive();  // the expanded worker arrives last
  w1.join();
  w2.join();
  EXPECT_EQ(passed.load(), 2);
}

TEST(DynamicBarrierTest, RegisteredCount) {
  DynamicBarrier b;
  EXPECT_EQ(b.registered(), 0);
  b.Register();
  b.Register();
  EXPECT_EQ(b.registered(), 2);
  b.Deregister();
  EXPECT_EQ(b.registered(), 1);
}

TEST(FirstCallerGateTest, ExactlyOneClaims) {
  FirstCallerGate gate;
  std::atomic<int> claims{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      if (gate.TryClaim()) claims.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(claims.load(), 1);
}

}  // namespace
}  // namespace claims
