#ifndef CLAIMS_TESTS_TEST_ITERATORS_H_
#define CLAIMS_TESTS_TEST_ITERATORS_H_

// Synthetic iterators shared by the core-layer unit tests: a numbered block
// source, a work-simulating pass-through, and a barrier-guarded "blocking"
// iterator that mimics hash-build state construction.

#include <atomic>
#include <chrono>
#include <thread>

#include "core/barrier.h"
#include "core/iterator.h"
#include "storage/block.h"
#include "storage/schema.h"

namespace claims {
namespace testing_support {

inline Schema OneInt64Schema() { return Schema({ColumnDef::Int64("v")}); }

/// Emits `num_blocks` blocks of `rows_per_block` sequential int64 values,
/// tagged with dense sequence numbers — a stand-in for a scan stage beginner.
/// Thread-safe; respects terminate requests at block boundaries.
class CountingSource : public Iterator {
 public:
  CountingSource(int num_blocks, int rows_per_block, int delay_us = 0)
      : schema_(OneInt64Schema()),
        num_blocks_(num_blocks),
        rows_per_block_(rows_per_block),
        delay_us_(delay_us) {}

  NextResult Open(WorkerContext* ctx) override {
    if (ctx->DetectedTerminateRequest()) return NextResult::kTerminated;
    return NextResult::kSuccess;
  }

  NextResult Next(WorkerContext* ctx, BlockPtr* out) override {
    if (ctx->DetectedTerminateRequest()) return NextResult::kTerminated;
    int b = next_block_.fetch_add(1, std::memory_order_relaxed);
    if (b >= num_blocks_) return NextResult::kEndOfFile;
    if (delay_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us_));
    }
    auto block = MakeBlock(schema_.row_size(), rows_per_block_ * 8);
    for (int r = 0; r < rows_per_block_; ++r) {
      char* row = block->AppendRow();
      schema_.SetInt64(row, 0, static_cast<int64_t>(b) * rows_per_block_ + r);
    }
    block->set_sequence_number(static_cast<uint64_t>(b));
    if (ctx->stats != nullptr) {
      ctx->stats->input_tuples.fetch_add(rows_per_block_,
                                         std::memory_order_relaxed);
    }
    *out = std::move(block);
    return NextResult::kSuccess;
  }

  void Close() override {}

  Schema schema_;

 private:
  int num_blocks_;
  int rows_per_block_;
  int delay_us_;
  std::atomic<int> next_block_{0};
};

/// Pass-through that burns `cost_us` per block — simulates operator work so
/// shrink latency and pipelining are observable.
class SlowPassThrough : public Iterator {
 public:
  SlowPassThrough(std::unique_ptr<Iterator> child, int cost_us)
      : child_(std::move(child)), cost_us_(cost_us) {}

  NextResult Open(WorkerContext* ctx) override { return child_->Open(ctx); }

  NextResult Next(WorkerContext* ctx, BlockPtr* out) override {
    NextResult r = child_->Next(ctx, out);
    if (r == NextResult::kSuccess && cost_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(cost_us_));
    }
    return r;
  }

  void Close() override { child_->Close(); }
  int SubtreeSize() const override { return 1 + child_->SubtreeSize(); }

 private:
  std::unique_ptr<Iterator> child_;
  int cost_us_;
};

/// Mimics a pipeline breaker: Open() drains the whole child into a shared
/// "state" (a tuple counter) behind a dynamic barrier, then Next() emits one
/// summary block. Exercises Register/Deregister/Arrive under expansion and
/// shrinkage exactly like the hash-join build of appendix A.2.3.
class BlockingCounter : public Iterator {
 public:
  explicit BlockingCounter(std::unique_ptr<Iterator> child)
      : child_(std::move(child)), schema_(OneInt64Schema()) {}

  NextResult Open(WorkerContext* ctx) override {
    barrier_.Register();
    if (child_->Open(ctx) == NextResult::kTerminated) {
      barrier_.Deregister();
      return NextResult::kTerminated;
    }
    BlockPtr block;
    while (true) {
      NextResult r = child_->Next(ctx, &block);
      if (r == NextResult::kEndOfFile) break;
      if (r == NextResult::kTerminated) {
        barrier_.Deregister();
        return NextResult::kTerminated;
      }
      state_tuples_.fetch_add(block->num_rows(), std::memory_order_relaxed);
      builders_.fetch_add(1, std::memory_order_relaxed);
      if (ctx->DetectedTerminateRequest()) {
        barrier_.Deregister();
        return NextResult::kTerminated;
      }
    }
    barrier_.Arrive();
    return NextResult::kSuccess;
  }

  NextResult Next(WorkerContext* ctx, BlockPtr* out) override {
    if (ctx->DetectedTerminateRequest()) return NextResult::kTerminated;
    bool expected = false;
    if (!emitted_.compare_exchange_strong(expected, true)) {
      return NextResult::kEndOfFile;
    }
    auto block = MakeBlock(schema_.row_size(), 64);
    schema_.SetInt64(block->AppendRow(), 0,
                     state_tuples_.load(std::memory_order_relaxed));
    *out = std::move(block);
    return NextResult::kSuccess;
  }

  void Close() override { child_->Close(); }
  int SubtreeSize() const override { return 1 + child_->SubtreeSize(); }

  int64_t state_tuples() const {
    return state_tuples_.load(std::memory_order_relaxed);
  }
  /// Number of blocks contributed to state construction (≥1 per worker that
  /// participated).
  int64_t builder_blocks() const {
    return builders_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<Iterator> child_;
  Schema schema_;
  DynamicBarrier barrier_;
  std::atomic<int64_t> state_tuples_{0};
  std::atomic<int64_t> builders_{0};
  std::atomic<bool> emitted_{false};
};

/// Emits `good_blocks` blocks and then reports kError — or fails straight
/// from Open() when `fail_open` is set. Exercises the error-latch path of
/// the elastic runtime (a broken stream must never read as a clean EOF).
class FailingSource : public Iterator {
 public:
  FailingSource(int good_blocks, bool fail_open = false)
      : schema_(OneInt64Schema()),
        good_blocks_(good_blocks),
        fail_open_(fail_open) {}

  NextResult Open(WorkerContext* ctx) override {
    if (ctx->DetectedTerminateRequest()) return NextResult::kTerminated;
    if (fail_open_) return NextResult::kError;
    return NextResult::kSuccess;
  }

  NextResult Next(WorkerContext* ctx, BlockPtr* out) override {
    if (ctx->DetectedTerminateRequest()) return NextResult::kTerminated;
    int b = next_block_.fetch_add(1, std::memory_order_relaxed);
    if (b >= good_blocks_) return NextResult::kError;
    auto block = MakeBlock(schema_.row_size(), 8 * 8);
    schema_.SetInt64(block->AppendRow(), 0, static_cast<int64_t>(b));
    block->set_sequence_number(static_cast<uint64_t>(b));
    *out = std::move(block);
    return NextResult::kSuccess;
  }

  void Close() override {}

 private:
  Schema schema_;
  int good_blocks_;
  bool fail_open_;
  std::atomic<int> next_block_{0};
};

}  // namespace testing_support
}  // namespace claims

#endif  // CLAIMS_TESTS_TEST_ITERATORS_H_
