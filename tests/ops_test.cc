// Operator tests: each physical operator is exercised both stand-alone (one
// synthetic worker context) and under a multi-worker ElasticIterator.

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "core/elastic_iterator.h"
#include "exec/ops/filter.h"
#include "exec/ops/hash_agg.h"
#include "exec/ops/hash_join.h"
#include "exec/ops/scan.h"
#include "exec/ops/sort.h"
#include "storage/table.h"

namespace claims {
namespace {

// A small keyed table: k = i % mod, v = i.
std::unique_ptr<Table> MakeKV(int rows, int mod, int partitions = 1) {
  Schema schema({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
  auto t = std::make_unique<Table>("kv", schema, partitions,
                                   std::vector<int>{});
  for (int i = 0; i < rows; ++i) {
    t->AppendValues({Value::Int32(i % mod), Value::Int64(i)});
  }
  return t;
}

// Replays fixed blocks — for tests that need exact control over input block
// boundaries, sequence numbers, and visit rates.
class BlocksIterator : public Iterator {
 public:
  explicit BlocksIterator(std::vector<BlockPtr> blocks)
      : blocks_(std::move(blocks)) {}
  NextResult Open(WorkerContext*) override { return NextResult::kSuccess; }
  NextResult Next(WorkerContext*, BlockPtr* out) override {
    size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= blocks_.size()) return NextResult::kEndOfFile;
    *out = std::make_shared<Block>(*blocks_[i]);
    return NextResult::kSuccess;
  }
  void Close() override {}

 private:
  std::vector<BlockPtr> blocks_;
  std::atomic<size_t> cursor_{0};
};

// One kv block holding `rows` rows (k = i % mod, v = i), sized to fit even
// when `rows` exceeds the default block capacity.
BlockPtr MakeKVBlock(const Schema& s, int rows, int mod) {
  auto b = MakeBlock(s.row_size(),
                     std::max<int32_t>(kDefaultBlockBytes,
                                       (rows + 1) * s.row_size()));
  for (int i = 0; i < rows; ++i) {
    char* row = b->AppendRow();
    s.SetInt32(row, 0, i % mod);
    s.SetInt64(row, 1, i);
  }
  return b;
}

ExprPtr Col(const Schema& s, const char* name) {
  int i = s.FindColumn(name);
  EXPECT_GE(i, 0) << name;
  return MakeColumnRef(i, s.column(i).type, name);
}

// Runs `make_root` under an elastic iterator with `parallelism` workers and
// collects all output rows as Values.
std::vector<std::vector<Value>> RunElastic(std::unique_ptr<Iterator> root,
                                           const Schema& out_schema,
                                           int parallelism) {
  ElasticIterator::Options opts;
  opts.initial_parallelism = parallelism;
  ElasticIterator it(std::move(root), opts);
  WorkerContext ctx;
  EXPECT_EQ(it.Open(&ctx), NextResult::kSuccess);
  std::vector<std::vector<Value>> rows;
  BlockPtr block;
  while (it.Next(&ctx, &block) == NextResult::kSuccess) {
    for (int r = 0; r < block->num_rows(); ++r) {
      std::vector<Value> row;
      for (int c = 0; c < out_schema.num_columns(); ++c) {
        row.push_back(out_schema.GetValue(block->RowAt(r), c));
      }
      rows.push_back(std::move(row));
    }
  }
  it.Close();
  return rows;
}

// --- Scan -----------------------------------------------------------------------

TEST(ScanTest, ReadsAllRowsSingleWorker) {
  auto table = MakeKV(1000, 10);
  auto rows = RunElastic(
      std::make_unique<ScanIterator>(&table->partition(0), &table->schema()),
      table->schema(), 1);
  ASSERT_EQ(rows.size(), 1000u);
  std::set<int64_t> vs;
  for (const auto& r : rows) vs.insert(r[1].AsInt64());
  EXPECT_EQ(vs.size(), 1000u);
}

TEST(ScanTest, ParallelWorkersPartitionBlocks) {
  auto table = MakeKV(100000, 7);  // several blocks
  ASSERT_GT(table->partition(0).num_blocks(), 3);
  auto rows = RunElastic(
      std::make_unique<ScanIterator>(&table->partition(0), &table->schema()),
      table->schema(), 4);
  EXPECT_EQ(rows.size(), 100000u);
  int64_t sum = 0;
  for (const auto& r : rows) sum += r[1].AsInt64();
  EXPECT_EQ(sum, 100000LL * 99999 / 2);
}

TEST(ScanTest, NumaStripingCoversEverything) {
  auto table = MakeKV(50000, 7);
  ScanIterator::Options o;
  o.num_sockets = 2;
  auto rows = RunElastic(std::make_unique<ScanIterator>(&table->partition(0),
                                                        &table->schema(), o),
                         table->schema(), 3);
  EXPECT_EQ(rows.size(), 50000u);
}

TEST(ScanTest, StatsCountInputTuples) {
  auto table = MakeKV(5000, 3);
  SegmentStats stats;
  ElasticIterator::Options opts;
  opts.initial_parallelism = 2;
  opts.stats = &stats;
  ElasticIterator it(
      std::make_unique<ScanIterator>(&table->partition(0), &table->schema()),
      opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  BlockPtr b;
  while (it.Next(&ctx, &b) == NextResult::kSuccess) {
  }
  it.Close();
  EXPECT_EQ(stats.input_tuples.load(), 5000);
}

TEST(ScanTest, FusedPredicateFiltersDuringCopyOut) {
  // Predicate pushdown: a filter fused into the scan (ScanIterator::Options
  // ::predicate) must behave exactly like a FilterIterator above it — rows
  // filtered during copy-out, fully filtered blocks emitted as empty
  // watermarks, input-tuple stats still counting *storage* rows.
  auto table = MakeKV(10000, 10);
  const Schema& s = table->schema();
  ScanIterator::Options o;
  o.predicate = MakeCompare(CompareOp::kLt, Col(s, "k"),
                            MakeLiteral(Value::Int32(3)));
  SegmentStats stats;
  ElasticIterator::Options opts;
  opts.initial_parallelism = 2;
  opts.stats = &stats;
  ElasticIterator it(
      std::make_unique<ScanIterator>(&table->partition(0), &s, o), opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  size_t rows = 0;
  BlockPtr block;
  while (it.Next(&ctx, &block) == NextResult::kSuccess) {
    for (int r = 0; r < block->num_rows(); ++r) {
      EXPECT_LT(s.GetInt32(block->RowAt(r), 0), 3);
      ++rows;
    }
  }
  it.Close();
  EXPECT_EQ(rows, 3000u);
  EXPECT_EQ(stats.input_tuples.load(), 10000);
}

// --- Filter / Project -----------------------------------------------------------

TEST(FilterTest, KeepsOnlyMatching) {
  auto table = MakeKV(10000, 10);
  const Schema& s = table->schema();
  ExprPtr pred = MakeCompare(CompareOp::kLt, Col(s, "k"),
                             MakeLiteral(Value::Int32(3)));
  auto scan = std::make_unique<ScanIterator>(&table->partition(0), &s);
  auto rows = RunElastic(
      std::make_unique<FilterIterator>(std::move(scan), &s, pred), s, 3);
  EXPECT_EQ(rows.size(), 3000u);
  for (const auto& r : rows) EXPECT_LT(r[0].AsInt64(), 3);
}

TEST(FilterTest, ZeroSelectivity) {
  auto table = MakeKV(5000, 10);
  const Schema& s = table->schema();
  ExprPtr pred = MakeCompare(CompareOp::kEq, Col(s, "k"),
                             MakeLiteral(Value::Int32(99)));
  auto scan = std::make_unique<ScanIterator>(&table->partition(0), &s);
  auto rows = RunElastic(
      std::make_unique<FilterIterator>(std::move(scan), &s, pred), s, 2);
  EXPECT_TRUE(rows.empty());
}

TEST(FilterTest, FullyFilteredBlockEmitsEmptyWatermark) {
  // A block whose rows are all filtered must still come out — empty, with
  // the input's sequence number and visit rate intact — so the
  // order-preserving DataBuffer learns the sequence was consumed. The old
  // behavior (pull until a non-empty output) silently dropped the sequence.
  Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
  auto in = MakeKVBlock(s, 100, 10);
  in->set_sequence_number(7);
  in->set_visit_rate(0.5);
  ExprPtr pred = MakeCompare(CompareOp::kEq, Col(s, "k"),
                             MakeLiteral(Value::Int32(99)));
  FilterIterator f(std::make_unique<BlocksIterator>(
                       std::vector<BlockPtr>{std::move(in)}),
                   &s, pred);
  WorkerContext ctx;
  ASSERT_EQ(f.Open(&ctx), NextResult::kSuccess);
  BlockPtr out;
  ASSERT_EQ(f.Next(&ctx, &out), NextResult::kSuccess);
  EXPECT_EQ(out->num_rows(), 0);
  EXPECT_EQ(out->sequence_number(), 7u);
  EXPECT_DOUBLE_EQ(out->visit_rate(), 0.5);
  EXPECT_EQ(f.Next(&ctx, &out), NextResult::kEndOfFile);
  f.Close();
}

TEST(FilterTest, NearZeroSelectivityOrderPreserving) {
  // ~0.1% selectivity through an order-preserving elastic pipeline: the
  // watermark advances from empty filter outputs must keep the merge moving
  // and the surviving rows in sequence order.
  auto table = MakeKV(100000, 1000);
  const Schema& s = table->schema();
  ExprPtr pred = MakeCompare(CompareOp::kEq, Col(s, "k"),
                             MakeLiteral(Value::Int32(3)));
  auto scan = std::make_unique<ScanIterator>(&table->partition(0), &s);
  auto filter =
      std::make_unique<FilterIterator>(std::move(scan), &s, pred);
  ElasticIterator::Options opts;
  opts.initial_parallelism = 3;
  opts.order_preserving = true;
  ElasticIterator it(std::move(filter), opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  int64_t prev_v = -1;
  size_t count = 0;
  BlockPtr block;
  while (it.Next(&ctx, &block) == NextResult::kSuccess) {
    for (int r = 0; r < block->num_rows(); ++r) {
      int64_t v = s.GetInt64(block->RowAt(r), 1);
      ASSERT_GT(v, prev_v);  // sequence order ⇒ v strictly ascending
      prev_v = v;
      ++count;
    }
  }
  it.Close();
  EXPECT_EQ(count, 100u);
}

TEST(FilterTest, OversizedInputBlockNotTruncated) {
  // Input blocks can exceed the default 64 KB (a widening upstream operator
  // sizes by its payload). The filter must size its output to the input's
  // row count — the old default-capacity output silently truncated.
  Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
  const int kRows = 9000;  // > 64 KB / 12 B = 5461 default-capacity rows
  auto big = MakeKVBlock(s, kRows, 10);
  ASSERT_GT(kRows, MakeBlock(s.row_size())->capacity_rows());
  ExprPtr all = MakeCompare(CompareOp::kGe, Col(s, "k"),
                            MakeLiteral(Value::Int32(0)));
  FilterIterator f(std::make_unique<BlocksIterator>(
                       std::vector<BlockPtr>{std::move(big)}),
                   &s, all);
  WorkerContext ctx;
  ASSERT_EQ(f.Open(&ctx), NextResult::kSuccess);
  BlockPtr out;
  ASSERT_EQ(f.Next(&ctx, &out), NextResult::kSuccess);
  EXPECT_EQ(out->num_rows(), kRows);
  f.Close();
}

TEST(ProjectTest, ComputesExpressions) {
  auto table = MakeKV(1000, 10);
  const Schema& s = table->schema();
  Schema out({ColumnDef::Int64("v2"), ColumnDef::Int32("k")});
  std::vector<ExprPtr> exprs = {
      MakeArith(ArithOp::kMul, Col(s, "v"), MakeLiteral(Value::Int64(2))),
      Col(s, "k")};
  auto scan = std::make_unique<ScanIterator>(&table->partition(0), &s);
  auto rows = RunElastic(std::make_unique<ProjectIterator>(std::move(scan), &s,
                                                           out, exprs),
                         out, 2);
  ASSERT_EQ(rows.size(), 1000u);
  int64_t sum = 0;
  for (const auto& r : rows) sum += r[0].AsInt64();
  EXPECT_EQ(sum, 2LL * 999 * 1000 / 2);
}

TEST(ProjectTest, WiderOutputRows) {
  // Output row wider than input row must not overflow blocks.
  Schema narrow({ColumnDef::Int32("x")});
  auto t = std::make_unique<Table>("n", narrow, 1, std::vector<int>{});
  for (int i = 0; i < 50000; ++i) t->AppendValues({Value::Int32(i)});
  Schema wide({ColumnDef::Int32("x"), ColumnDef::Char("pad", 60)});
  std::vector<ExprPtr> exprs = {Col(narrow, "x"),
                                MakeLiteral(Value::String("abc"))};
  auto scan = std::make_unique<ScanIterator>(&t->partition(0), &narrow);
  auto rows = RunElastic(std::make_unique<ProjectIterator>(std::move(scan),
                                                           &narrow, wide,
                                                           exprs),
                         wide, 2);
  EXPECT_EQ(rows.size(), 50000u);
}

// --- Hash join ------------------------------------------------------------------

TEST(HashJoinTest, InnerEquiJoin) {
  // Build: 20 rows keys 0..19; Probe: 100 rows keys i%25 (keys 20-24 miss).
  auto build_table = MakeKV(20, 20);
  auto probe_table = MakeKV(100, 25);
  const Schema& bs = build_table->schema();
  const Schema& ps = probe_table->schema();
  HashJoinIterator::Spec spec;
  spec.build_schema = &bs;
  spec.probe_schema = &ps;
  spec.build_keys = {0};
  spec.probe_keys = {0};
  auto join = std::make_unique<HashJoinIterator>(
      std::make_unique<ScanIterator>(&build_table->partition(0), &bs),
      std::make_unique<ScanIterator>(&probe_table->partition(0), &ps), spec);
  Schema out = join->output_schema();
  auto rows = RunElastic(std::move(join), out, 3);
  // Probe keys 0..19 hit once each: i%25 < 20 → 80 of 100 probe rows match.
  EXPECT_EQ(rows.size(), 80u);
  for (const auto& r : rows) {
    EXPECT_EQ(r[0].AsInt64(), r[2].AsInt64());  // k == r_k
  }
}

TEST(HashJoinTest, DuplicateBuildKeysFanOut) {
  auto build_table = MakeKV(40, 4);   // 10 build rows per key
  auto probe_table = MakeKV(8, 4);    // 2 probe rows per key
  const Schema& bs = build_table->schema();
  const Schema& ps = probe_table->schema();
  HashJoinIterator::Spec spec;
  spec.build_schema = &bs;
  spec.probe_schema = &ps;
  spec.build_keys = {0};
  spec.probe_keys = {0};
  auto join = std::make_unique<HashJoinIterator>(
      std::make_unique<ScanIterator>(&build_table->partition(0), &bs),
      std::make_unique<ScanIterator>(&probe_table->partition(0), &ps), spec);
  Schema out = join->output_schema();
  auto rows = RunElastic(std::move(join), out, 2);
  EXPECT_EQ(rows.size(), 80u);  // 8 probe rows × 10 matches
}

TEST(HashJoinTest, ParallelBuildCorrect) {
  auto build_table = MakeKV(50000, 1000);
  auto probe_table = MakeKV(1000, 1000);
  const Schema& bs = build_table->schema();
  const Schema& ps = probe_table->schema();
  HashJoinIterator::Spec spec;
  spec.build_schema = &bs;
  spec.probe_schema = &ps;
  spec.build_keys = {0};
  spec.probe_keys = {0};
  auto join = std::make_unique<HashJoinIterator>(
      std::make_unique<ScanIterator>(&build_table->partition(0), &bs),
      std::make_unique<ScanIterator>(&probe_table->partition(0), &ps), spec);
  auto* join_raw = join.get();
  Schema out = join->output_schema();
  // Drain inline (not via RunElastic) so `it` — which owns the join — is
  // still alive when build_rows() is inspected below.
  ElasticIterator::Options opts;
  opts.initial_parallelism = 4;
  ElasticIterator it(std::move(join), opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  size_t rows = 0;
  BlockPtr block;
  while (it.Next(&ctx, &block) == NextResult::kSuccess) {
    rows += static_cast<size_t>(block->num_rows());
  }
  EXPECT_EQ(join_raw->build_rows(), 50000);
  EXPECT_EQ(rows, 50000u);  // every build row matched exactly once
  it.Close();
}

TEST(HashJoinTest, NoMatchProbeBlockEmitsEmptyWatermark) {
  // A probe block with zero matches still comes out (empty, sequence number
  // preserved) so order-preserving consumers see the sequence was consumed.
  Schema bs({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
  Schema ps({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
  auto build = MakeKVBlock(bs, 10, 10);       // keys 0..9
  auto probe = MakeKVBlock(ps, 20, 20);       // keys 0..19
  for (int i = 0; i < probe->num_rows(); ++i) {
    ps.SetInt32(probe->MutableRowAt(i), 0, 100 + i);  // keys 100.. — no hits
  }
  probe->set_sequence_number(5);
  HashJoinIterator::Spec spec;
  spec.build_schema = &bs;
  spec.probe_schema = &ps;
  spec.build_keys = {0};
  spec.probe_keys = {0};
  HashJoinIterator join(
      std::make_unique<BlocksIterator>(std::vector<BlockPtr>{std::move(build)}),
      std::make_unique<BlocksIterator>(std::vector<BlockPtr>{std::move(probe)}),
      spec);
  WorkerContext ctx;
  ASSERT_EQ(join.Open(&ctx), NextResult::kSuccess);
  BlockPtr out;
  ASSERT_EQ(join.Next(&ctx, &out), NextResult::kSuccess);
  EXPECT_EQ(out->num_rows(), 0);
  EXPECT_EQ(out->sequence_number(), 5u);
  EXPECT_EQ(join.Next(&ctx, &out), NextResult::kEndOfFile);
  join.Close();
}

// --- Hash aggregation -----------------------------------------------------------

HashAggIterator::Spec AggSpec(const Schema& s, HashAggIterator::Mode mode) {
  HashAggIterator::Spec spec;
  spec.input_schema = &s;
  spec.group_exprs = {Col(s, "k")};
  spec.group_names = {"k"};
  spec.aggregates = {
      {AggFn::kSum, Col(s, "v"), "sum_v"},
      {AggFn::kCount, nullptr, "cnt"},
      {AggFn::kAvg, Col(s, "v"), "avg_v"},
      {AggFn::kMin, Col(s, "v"), "min_v"},
      {AggFn::kMax, Col(s, "v"), "max_v"},
  };
  spec.mode = mode;
  return spec;
}

void CheckAggResult(const std::vector<std::vector<Value>>& rows, int mod,
                    int n) {
  ASSERT_EQ(rows.size(), static_cast<size_t>(mod));
  for (const auto& r : rows) {
    int64_t k = r[0].AsInt64();
    int64_t count = r[2].AsInt64();
    EXPECT_EQ(count, n / mod);
    // v values for group k: k, k+mod, k+2*mod, ...
    int64_t expect_sum = 0;
    for (int64_t v = k; v < n; v += mod) expect_sum += v;
    EXPECT_EQ(r[1].AsInt64(), expect_sum) << "group " << k;
    EXPECT_NEAR(r[3].AsFloat64(),
                static_cast<double>(expect_sum) / count, 1e-6);
    EXPECT_EQ(r[4].AsInt64(), k);                // min
    EXPECT_EQ(r[5].AsInt64(), n - mod + k);      // max
  }
}

class HashAggModeTest
    : public ::testing::TestWithParam<HashAggIterator::Mode> {};

TEST_P(HashAggModeTest, GroupsCorrectlyUnderParallelism) {
  const int kN = 20000;
  const int kMod = 8;
  auto table = MakeKV(kN, kMod);
  const Schema& s = table->schema();
  auto spec = AggSpec(s, GetParam());
  auto agg = std::make_unique<HashAggIterator>(
      std::make_unique<ScanIterator>(&table->partition(0), &s), spec);
  Schema out = agg->output_schema();
  auto rows = RunElastic(std::move(agg), out, 4);
  CheckAggResult(rows, kMod, kN);
}

INSTANTIATE_TEST_SUITE_P(AllModes, HashAggModeTest,
                         ::testing::Values(HashAggIterator::Mode::kShared,
                                           HashAggIterator::Mode::kIndependent,
                                           HashAggIterator::Mode::kHybrid));

TEST(HashAggTest, LargeCardinality) {
  const int kN = 30000;
  auto table = MakeKV(kN, kN);  // every row its own group
  const Schema& s = table->schema();
  auto spec = AggSpec(s, HashAggIterator::Mode::kHybrid);
  spec.hybrid_max_groups = 512;  // force flush cycles
  auto agg = std::make_unique<HashAggIterator>(
      std::make_unique<ScanIterator>(&table->partition(0), &s), spec);
  Schema out = agg->output_schema();
  auto rows = RunElastic(std::move(agg), out, 3);
  EXPECT_EQ(rows.size(), static_cast<size_t>(kN));
}

TEST(HashAggTest, ShrinkMidAggregationLosesNothing) {
  const int kN = 50000;
  const int kMod = 5;
  auto table = MakeKV(kN, kMod);
  const Schema& s = table->schema();
  auto spec = AggSpec(s, HashAggIterator::Mode::kIndependent);
  auto agg = std::make_unique<HashAggIterator>(
      std::make_unique<ScanIterator>(&table->partition(0), &s), spec);
  Schema out = agg->output_schema();
  ElasticIterator::Options opts;
  opts.initial_parallelism = 4;
  ElasticIterator it(std::move(agg), opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  it.Shrink();  // terminate a worker during the build
  std::vector<std::vector<Value>> rows;
  BlockPtr block;
  while (it.Next(&ctx, &block) == NextResult::kSuccess) {
    for (int r = 0; r < block->num_rows(); ++r) {
      std::vector<Value> row;
      for (int c = 0; c < out.num_columns(); ++c) {
        row.push_back(out.GetValue(block->RowAt(r), c));
      }
      rows.push_back(std::move(row));
    }
  }
  it.Close();
  CheckAggResult(rows, kMod, kN);
}

TEST(HashAggTest, NoGroupByGlobalAggregate) {
  auto table = MakeKV(1000, 10);
  const Schema& s = table->schema();
  HashAggIterator::Spec spec;
  spec.input_schema = &s;
  spec.aggregates = {{AggFn::kCount, nullptr, "cnt"},
                     {AggFn::kSum, Col(s, "v"), "sum_v"}};
  auto agg = std::make_unique<HashAggIterator>(
      std::make_unique<ScanIterator>(&table->partition(0), &s), spec);
  Schema out = agg->output_schema();
  auto rows = RunElastic(std::move(agg), out, 2);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt64(), 1000);
  EXPECT_EQ(rows[0][1].AsInt64(), 999 * 1000 / 2);
}

TEST(HashAggTest, PropagatesInputVisitRate) {
  // Emitted blocks must carry the consumed input's (row-weighted) average
  // visit rate, not the default 1.0 — the downstream scalability-vector
  // estimation reads it (§4.3).
  Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
  std::vector<BlockPtr> blocks;
  for (int i = 0; i < 4; ++i) {
    auto b = MakeKVBlock(s, 500, 8);
    b->set_sequence_number(i);
    b->set_visit_rate(0.25);
    blocks.push_back(std::move(b));
  }
  HashAggIterator::Spec spec = AggSpec(s, HashAggIterator::Mode::kShared);
  HashAggIterator agg(std::make_unique<BlocksIterator>(std::move(blocks)),
                      spec);
  WorkerContext ctx;
  ASSERT_EQ(agg.Open(&ctx), NextResult::kSuccess);
  BlockPtr out;
  ASSERT_EQ(agg.Next(&ctx, &out), NextResult::kSuccess);
  EXPECT_GT(out->num_rows(), 0);
  EXPECT_DOUBLE_EQ(out->visit_rate(), 0.25);
  agg.Close();
}

// --- Sort -----------------------------------------------------------------------

TEST(SortTest, SingleKeyAscending) {
  auto table = MakeKV(20000, 997);
  const Schema& s = table->schema();
  auto sort = std::make_unique<SortIterator>(
      std::make_unique<ScanIterator>(&table->partition(0), &s), &s,
      std::vector<SortKey>{{s.FindColumn("k"), true}});
  ElasticIterator::Options opts;
  opts.initial_parallelism = 3;
  opts.order_preserving = true;  // sort requires ordered emission
  ElasticIterator it(std::move(sort), opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  int64_t prev = -1;
  size_t count = 0;
  BlockPtr block;
  while (it.Next(&ctx, &block) == NextResult::kSuccess) {
    for (int r = 0; r < block->num_rows(); ++r) {
      int64_t k = s.GetInt32(block->RowAt(r), 0);
      ASSERT_GE(k, prev);
      prev = k;
      ++count;
    }
  }
  it.Close();
  EXPECT_EQ(count, 20000u);
}

TEST(SortTest, MultiKeyMixedDirections) {
  auto table = MakeKV(5000, 13);
  const Schema& s = table->schema();
  auto sort = std::make_unique<SortIterator>(
      std::make_unique<ScanIterator>(&table->partition(0), &s), &s,
      std::vector<SortKey>{{0, true}, {1, false}});
  ElasticIterator::Options opts;
  opts.initial_parallelism = 2;
  opts.order_preserving = true;
  ElasticIterator it(std::move(sort), opts);
  WorkerContext ctx;
  ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
  int64_t prev_k = -1;
  int64_t prev_v = INT64_MAX;
  size_t count = 0;
  BlockPtr block;
  while (it.Next(&ctx, &block) == NextResult::kSuccess) {
    for (int r = 0; r < block->num_rows(); ++r) {
      int64_t k = s.GetInt32(block->RowAt(r), 0);
      int64_t v = s.GetInt64(block->RowAt(r), 1);
      ASSERT_GE(k, prev_k);
      if (k == prev_k) ASSERT_LE(v, prev_v);  // v descending within k
      if (k != prev_k) prev_v = INT64_MAX;
      prev_k = k;
      prev_v = v;
      ++count;
    }
  }
  it.Close();
  EXPECT_EQ(count, 5000u);
}

TEST(SortTest, EmptyInput) {
  auto table = MakeKV(0, 1);
  const Schema& s = table->schema();
  auto sort = std::make_unique<SortIterator>(
      std::make_unique<ScanIterator>(&table->partition(0), &s), &s,
      std::vector<SortKey>{{0, true}});
  auto rows = RunElastic(std::move(sort), s, 2);
  EXPECT_TRUE(rows.empty());
}

TEST(RowComparatorTest, AllTypes) {
  Schema s({ColumnDef::Int32("i"), ColumnDef::Int64("l"),
            ColumnDef::Float64("f"), ColumnDef::Char("c", 8)});
  std::vector<char> a(s.row_size());
  std::vector<char> b(s.row_size());
  s.SetInt32(a.data(), 0, 1);
  s.SetInt32(b.data(), 0, 1);
  s.SetInt64(a.data(), 1, 5);
  s.SetInt64(b.data(), 1, 5);
  s.SetFloat64(a.data(), 2, 1.5);
  s.SetFloat64(b.data(), 2, 2.5);
  s.SetString(a.data(), 3, "x");
  s.SetString(b.data(), 3, "x");
  RowComparator cmp(&s, {{0, true}, {1, true}, {2, true}});
  EXPECT_LT(cmp.Compare(a.data(), b.data()), 0);
  RowComparator cmp_desc(&s, {{2, false}});
  EXPECT_GT(cmp_desc.Compare(a.data(), b.data()), 0);
  RowComparator cmp_str(&s, {{3, true}});
  EXPECT_EQ(cmp_str.Compare(a.data(), b.data()), 0);
}

}  // namespace
}  // namespace claims
