// Virtual-time cluster simulator tests: event core, single-segment physics
// (speedup curves, bandwidth and contention models), multi-segment pipelines
// with every scheduling policy, and the elastic scheduler's adaptive
// behaviour — the substrate behind the paper's figures (DESIGN.md §1).

#include <gtest/gtest.h>

#include <set>

#include "sim/event_queue.h"
#include "sim/sim_engine.h"
#include "sim/specs.h"

namespace claims {
namespace {

TEST(EventQueueTest, OrdersByTimeThenFifo) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(100, [&] { order.push_back(2); });
  q.Schedule(50, [&] { order.push_back(1); });
  q.Schedule(100, [&] { order.push_back(3); });  // same time: FIFO
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 100);
  EXPECT_EQ(q.events_executed(), 3);
}

TEST(EventQueueTest, ScheduleAfterAndClamping) {
  EventQueue q;
  q.Schedule(100, [&] {
    // An event scheduled in the past fires "now".
    q.Schedule(10, [&] { EXPECT_EQ(q.now(), 100); });
  });
  while (q.RunNext()) {
  }
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.Schedule(10, [&] { ++fired; });
  q.Schedule(1000, [&] { ++fired; });
  EXPECT_FALSE(q.RunUntil(500));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.RunUntil(2000));
  EXPECT_EQ(fired, 2);
}

TEST(SimHardwareTest, EffectiveCapacity) {
  SimHardware hw;
  EXPECT_DOUBLE_EQ(hw.EffectiveCapacity(1), 1.0);
  EXPECT_DOUBLE_EQ(hw.EffectiveCapacity(12), 12.0);
  EXPECT_DOUBLE_EQ(hw.EffectiveCapacity(24), 12 + 0.35 * 12);
  EXPECT_DOUBLE_EQ(hw.EffectiveCapacity(48), 12 + 0.35 * 12);  // plateau
}

TEST(CostModelTest, SharedUpdatePenalty) {
  SimCostParams c;
  EXPECT_DOUBLE_EQ(SharedUpdatePenaltyNs(c, 1, 4), 0.0);
  EXPECT_GT(SharedUpdatePenaltyNs(c, 8, 4), SharedUpdatePenaltyNs(c, 2, 4));
  // Large cardinality ⇒ negligible contention (Fig. 8b, S-Q4).
  EXPECT_LT(SharedUpdatePenaltyNs(c, 24, 250'000'000), 0.001);
  EXPECT_DOUBLE_EQ(SharedUpdatePenaltyNs(c, 8, 0), 0.0);
}

// --- micro physics: Fig. 8 shapes -----------------------------------------------

int64_t MicroResponse(SimQuerySpec spec, int parallelism) {
  SimOptions opt;
  opt.num_nodes = 1;
  opt.policy = SimPolicy::kStatic;
  opt.partition_skew_cv = 0;  // pure scalability measurement
  opt.parallelism = parallelism;
  SimRun run(std::move(spec), opt);
  auto m = run.Run();
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  return m.ok() ? m->response_ns : -1;
}

TEST(SimMicroTest, ComputeBoundFilterScalesToHyperThreadKnee) {
  SimCostParams c;
  const int64_t kRows = 3'000'000;
  int64_t t1 = MicroResponse(MicroFilterSpec(true, kRows, c), 1);
  int64_t t12 = MicroResponse(MicroFilterSpec(true, kRows, c), 12);
  int64_t t24 = MicroResponse(MicroFilterSpec(true, kRows, c), 24);
  double s12 = static_cast<double>(t1) / t12;
  double s24 = static_cast<double>(t1) / t24;
  EXPECT_GT(s12, 10.0);   // near-linear to the physical cores
  EXPECT_LT(s12, 12.5);
  EXPECT_GT(s24, s12);    // hyper-threads still help
  EXPECT_LT(s24, 18.0);   // but with the HT knee
}

TEST(SimMicroTest, DataBoundFilterPlateausOnBandwidth) {
  SimCostParams c;
  const int64_t kRows = 3'000'000;
  int64_t t1 = MicroResponse(MicroFilterSpec(false, kRows, c), 1);
  int64_t t8 = MicroResponse(MicroFilterSpec(false, kRows, c), 8);
  int64_t t16 = MicroResponse(MicroFilterSpec(false, kRows, c), 16);
  double s8 = static_cast<double>(t1) / t8;
  double s16 = static_cast<double>(t1) / t16;
  EXPECT_GT(s8, 5.0);
  // Fig. 8a: no improvement past ~8 workers (memory bandwidth).
  EXPECT_LT(s16 / s8, 1.25);
}

TEST(SimMicroTest, SharedAggContentionVsIndependent) {
  SimCostParams c;
  const int64_t kRows = 3'000'000;
  // S-Q3 (4 groups): shared aggregation scales poorly...
  int64_t shared1 = MicroResponse(MicroAggSpec(true, 4, kRows, c), 1);
  int64_t shared12 = MicroResponse(MicroAggSpec(true, 4, kRows, c), 12);
  double shared_speedup = static_cast<double>(shared1) / shared12;
  EXPECT_LT(shared_speedup, 4.0);
  // ... independent aggregation scales well ...
  int64_t ind1 = MicroResponse(MicroAggSpec(false, 4, kRows, c), 1);
  int64_t ind12 = MicroResponse(MicroAggSpec(false, 4, kRows, c), 12);
  EXPECT_GT(static_cast<double>(ind1) / ind12, 9.0);
  // ... and large-cardinality shared (S-Q4) is nearly contention-free.
  int64_t big1 = MicroResponse(MicroAggSpec(true, 250'000'000, kRows, c), 1);
  int64_t big12 = MicroResponse(MicroAggSpec(true, 250'000'000, kRows, c), 12);
  EXPECT_GT(static_cast<double>(big1) / big12, 9.0);
}

TEST(SimMicroTest, JoinPhasesScale) {
  SimCostParams c;
  const int64_t kRows = 3'000'000;
  for (bool build : {true, false}) {
    int64_t t1 = MicroResponse(MicroJoinSpec(build, kRows, c), 1);
    int64_t t12 = MicroResponse(MicroJoinSpec(build, kRows, c), 12);
    EXPECT_GT(static_cast<double>(t1) / t12, 8.5) << "build=" << build;
  }
}

// --- end-to-end pipelines ---------------------------------------------------------

SseSimParams SmallSse() {
  // Big enough that the 50 ms scheduler ticks get tens of adaptation rounds
  // (the paper's queries run for minutes).
  SseSimParams p;
  p.num_nodes = 4;
  p.trades_rows = 240'000'000;
  p.securities_rows = 240'000'000;
  p.result_groups = 2'000'000;
  return p;
}

SimMetrics RunPolicy(SimPolicy policy, int parallelism,
                     double concurrency = 1.0) {
  SseSimParams p = SmallSse();
  SimCostParams c;
  SimOptions opt;
  opt.num_nodes = p.num_nodes;
  opt.policy = policy;
  opt.parallelism = parallelism;
  opt.concurrency_level = concurrency;
  opt.utilization_window_ns = 100'000'000;
  SimRun run(SseQ9Spec(p, c), opt);
  auto m = run.Run();
  EXPECT_TRUE(m.ok()) << SimPolicyName(policy) << ": "
                      << m.status().ToString();
  return m.ok() ? std::move(*m) : SimMetrics{};
}

class SimPolicyTest : public ::testing::TestWithParam<SimPolicy> {};

TEST_P(SimPolicyTest, CompletesAndProducesMetrics) {
  SimMetrics m = RunPolicy(GetParam(), 4, 1.0);
  EXPECT_GT(m.response_ns, 0);
  EXPECT_GT(m.avg_cpu_utilization, 0.0);
  EXPECT_LE(m.avg_cpu_utilization, 1.0);
  EXPECT_GT(m.network_bytes, 0);
  EXPECT_GT(m.peak_memory_bytes, 0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SimPolicyTest,
                         ::testing::Values(SimPolicy::kElastic,
                                           SimPolicy::kStatic,
                                           SimPolicy::kMaterialized,
                                           SimPolicy::kImplicit,
                                           SimPolicy::kMorsel,
                                           SimPolicy::kMorselPlus),
                         [](const auto& info) {
                           std::string n = SimPolicyName(info.param);
                           return n == "MDP+" ? "MDPplus" : n;
                         });

TEST(SimPipelineTest, Deterministic) {
  SimMetrics a = RunPolicy(SimPolicy::kElastic, 1);
  SimMetrics b = RunPolicy(SimPolicy::kElastic, 1);
  EXPECT_EQ(a.response_ns, b.response_ns);
  EXPECT_EQ(a.network_bytes, b.network_bytes);
  ASSERT_EQ(a.trace.size(), b.trace.size());
}

TEST(SimPipelineTest, ElasticBeatsBestStatic) {
  SimMetrics ep = RunPolicy(SimPolicy::kElastic, 1);
  int64_t best_sp = INT64_MAX;
  for (int p : {2, 4, 8}) {
    best_sp = std::min(best_sp, RunPolicy(SimPolicy::kStatic, p).response_ns);
  }
  EXPECT_LT(ep.response_ns, best_sp);
}

TEST(SimPipelineTest, MaterializedUsesMostMemory) {
  SimMetrics sp = RunPolicy(SimPolicy::kStatic, 4);
  SimMetrics me = RunPolicy(SimPolicy::kMaterialized, 4);
  // ME holds the full shuffle alongside the join state; pipelined execution
  // streams it (paper Table 4).
  EXPECT_GT(me.peak_memory_bytes, 1.5 * sp.peak_memory_bytes);
  EXPECT_GT(me.response_ns, sp.response_ns);
}

TEST(SimPipelineTest, ElasticExpandsParallelism) {
  SimMetrics m = RunPolicy(SimPolicy::kElastic, 1);
  // The trace must show some segment expanded well beyond 1.
  int max_p = 0;
  for (const SimTracePoint& t : m.trace) {
    for (int p : t.parallelism) max_p = std::max(max_p, p);
  }
  EXPECT_GE(max_p, 4);
}

TEST(SimPipelineTest, ElasticHigherUtilizationThanImplicit) {
  SimMetrics ep = RunPolicy(SimPolicy::kElastic, 1);
  SimMetrics is = RunPolicy(SimPolicy::kImplicit, 1, 1.0);
  // EP shifts cores to whichever phase needs them; IS pins threads to
  // segments. EP must beat IS on both utilization and response time.
  EXPECT_GT(ep.avg_cpu_utilization, is.avg_cpu_utilization);
  EXPECT_LT(ep.response_ns, is.response_ns);
  EXPECT_GE(ep.high_utilization_rate, is.high_utilization_rate);
}

TEST(SimPipelineTest, TimeSharingCausesContextSwitches) {
  SimMetrics c1 = RunPolicy(SimPolicy::kImplicit, 1, 1.0);
  SimMetrics c5 = RunPolicy(SimPolicy::kImplicit, 1, 5.0);
  EXPECT_GT(c5.context_switches_per_sec, c1.context_switches_per_sec);
  EXPECT_GT(c5.cache_miss_ratio, c1.cache_miss_ratio);
}

TEST(SimPipelineTest, SchedulingOverheadOrdering) {
  // Table 5: MDP+ pays more per pickup than MDP; EP schedules far less often.
  SimMetrics mdp = RunPolicy(SimPolicy::kMorsel, 1, 1.0);
  SimMetrics mdpp = RunPolicy(SimPolicy::kMorselPlus, 1, 1.0);
  SimMetrics ep = RunPolicy(SimPolicy::kElastic, 1);
  EXPECT_GT(mdpp.scheduling_overhead, mdp.scheduling_overhead);
  EXPECT_LT(ep.scheduling_overhead, mdpp.scheduling_overhead);
}

TEST(SimPipelineTest, StageSwitchRecorded) {
  SimMetrics m = RunPolicy(SimPolicy::kElastic, 1);
  ASSERT_EQ(m.stage_switch_ns.size(), 3u);  // S1, S2, S3
  EXPECT_EQ(m.stage_switch_ns[0], -1);      // S1 single-stage
  EXPECT_GT(m.stage_switch_ns[1], 0);       // S2 build→probe
  EXPECT_GT(m.stage_switch_ns[2], 0);       // S3 agg→emit
  // S2's probe can only start after S1 finished feeding the build.
  EXPECT_GE(m.stage_switch_ns[1], m.trace.front().t_ns);
}

TEST(SimPipelineTest, InterferenceSlowsQuery) {
  SseSimParams p = SmallSse();
  SimCostParams c;
  SimOptions opt;
  opt.num_nodes = p.num_nodes;
  opt.policy = SimPolicy::kElastic;
  opt.parallelism = 1;
  SimRun base(SseQ9Spec(p, c), opt);
  auto m0 = base.Run();
  ASSERT_TRUE(m0.ok());
  // Fig. 12's interferer: 40 s active / 20 s idle, halving capacity.
  opt.node_capacity_at = [](int64_t t) {
    return (t / 1'000'000'000) % 60 < 40 ? 0.5 : 1.0;
  };
  SimRun interfered(SseQ9Spec(p, c), opt);
  auto m1 = interfered.Run();
  ASSERT_TRUE(m1.ok());
  EXPECT_GT(m1->response_ns, m0->response_ns);
}

TEST(SimPipelineTest, SelectivityProfileShiftsWork) {
  // Fig. 11 setup: zero selectivity for 90% of the scan, then a burst.
  SseSimParams p = SmallSse();
  SimCostParams c;
  SimQuerySpec spec = SseQ9Spec(p, c);
  double flat_sel = spec.segments[0].stages[0].profile.selectivity;
  spec.segments[0].stages[0].profile.selectivity_at =
      [flat_sel](double progress) {
        return progress < 0.9 ? 0.0 : flat_sel / 0.1;
      };
  SimOptions opt;
  opt.num_nodes = p.num_nodes;
  opt.policy = SimPolicy::kElastic;
  opt.parallelism = 1;
  SimRun run(std::move(spec), opt);
  auto m = run.Run();
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  // The join build (S2 stage 0) is starved early: its parallelism must stay
  // low in the first quarter of the trace and rise later.
  ASSERT_GT(m->trace.size(), 8u);
  int early = 0;
  int late = 0;
  for (size_t i = 0; i < m->trace.size() / 4; ++i) {
    early = std::max(early, m->trace[i].parallelism[1]);
  }
  for (size_t i = m->trace.size() / 2; i < m->trace.size(); ++i) {
    late = std::max(late, m->trace[i].parallelism[1]);
  }
  // Early on the join build is starved (selectivity 0 upstream): the
  // scheduler must keep it thin, then grow it when the burst arrives.
  EXPECT_LE(early, 6);
  EXPECT_GT(late, early);
}

TEST(SimPipelineTest, CapacityFaultsSlowTheRunDeterministically) {
  // The simulator's chaos subset: a compute straggler plus a degraded NIC,
  // both covering the whole run. The faulted run must be slower than the
  // baseline and its virtual-time fault log byte-identical across runs.
  SseSimParams p = SmallSse();
  SimCostParams c;
  SimOptions opt;
  opt.num_nodes = p.num_nodes;
  opt.policy = SimPolicy::kElastic;
  opt.parallelism = 1;

  SimRun base(SseQ9Spec(p, c), opt);
  auto m0 = base.Run();
  ASSERT_TRUE(m0.ok());
  EXPECT_TRUE(m0->fault_log.empty());

  auto plan = ParseFaultPlan(
      "at=0ns kind=straggle node=1 dur=10000s factor=6\n"
      "at=0ns kind=nic node=2 dur=10000s bps=1000000\n");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  opt.fault_plan = *plan;

  auto faulted = [&] {
    SimRun run(SseQ9Spec(p, c), opt);
    auto m = run.Run();
    EXPECT_TRUE(m.ok()) << m.status().ToString();
    return m.ok() ? std::move(*m) : SimMetrics{};
  };
  SimMetrics m1 = faulted();
  SimMetrics m2 = faulted();
  EXPECT_GT(m1.response_ns, m0->response_ns);
  EXPECT_FALSE(m1.fault_log.empty());
  EXPECT_EQ(m1.fault_log, m2.fault_log);
  EXPECT_EQ(m1.response_ns, m2.response_ns);
  EXPECT_NE(m1.fault_log.find("kind=straggle"), std::string::npos);
  EXPECT_NE(m1.fault_log.find("kind=nic"), std::string::npos);
}

TEST(SimSpecsTest, TpchProfilesExist) {
  for (int q : {1, 2, 3, 5, 6, 7, 8, 9, 10, 12, 14}) {
    auto p = TpchProfileFor(q);
    ASSERT_TRUE(p.ok()) << q;
    SimCostParams c;
    SimQuerySpec spec = TpchSpec(*p, 10, c);
    EXPECT_GE(spec.segments.size(), 1u);
  }
  EXPECT_FALSE(TpchProfileFor(4).ok());
}

TEST(SimSpecsTest, TpchSpecRunsUnderElastic) {
  auto p = TpchProfileFor(14);
  ASSERT_TRUE(p.ok());
  // Scale down for the unit test.
  p->probe_rows_per_node /= 100;
  for (auto& b : p->builds) b.rows_per_node /= 100;
  p->groups = std::max<int64_t>(1, p->groups / 100);
  SimCostParams c;
  SimOptions opt;
  opt.num_nodes = 4;
  opt.policy = SimPolicy::kElastic;
  SimRun run(TpchSpec(*p, 4, c), opt);
  auto m = run.Run();
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_GT(m->response_ns, 0);
}

// --- multi-query interference (the workload manager's scenario) ---------------

TEST(SimWorkloadTest, CombineSpecsNamespacesExchanges) {
  SimCostParams c;
  SimQuerySpec a = MicroJoinSpec(false, 1'000'000, c);
  SimQuerySpec b = MicroJoinSpec(false, 1'000'000, c);
  SimQuerySpec combined = CombineSpecs({a, b});
  ASSERT_EQ(combined.segments.size(), a.segments.size() + b.segments.size());
  // Final segments of both queries drain into the shared collector; every
  // other exchange id is unique across the merged workload.
  std::multiset<int> outs;
  for (const SimSegmentSpec& seg : combined.segments) {
    outs.insert(seg.out_exchange);
  }
  EXPECT_EQ(outs.count(combined.result_exchange), 2u);
  for (int id : outs) {
    if (id != combined.result_exchange) {
      EXPECT_EQ(outs.count(id), 1u);
    }
  }
}

TEST(SimWorkloadTest, ConcurrentQueriesShareTheNode) {
  SimCostParams c;
  const int64_t kRows = 3'000'000;
  auto respond = [](SimQuerySpec spec) {
    SimOptions opt;
    opt.num_nodes = 1;
    opt.policy = SimPolicy::kElastic;
    opt.parallelism = 1;
    opt.partition_skew_cv = 0;
    SimRun run(std::move(spec), opt);
    auto m = run.Run();
    EXPECT_TRUE(m.ok()) << m.status().ToString();
    return m.ok() ? m->response_ns : -1;
  };
  int64_t cpu_solo = respond(MicroFilterSpec(true, kRows, c));
  int64_t mem_solo = respond(MicroFilterSpec(false, kRows, c));
  // Different bottlenecks overlap: a bandwidth-bound filter hides inside a
  // compute-bound one's runtime, so the pair beats back-to-back execution.
  int64_t mixed = respond(CombineSpecs(
      {MicroFilterSpec(true, kRows, c), MicroFilterSpec(false, kRows, c)}));
  EXPECT_GE(mixed, std::max(cpu_solo, mem_solo));
  EXPECT_LT(mixed, cpu_solo + mem_solo);
  // The same bottleneck contends: two compute-bound filters split the cores
  // and take visibly longer than one (unlike the hidden bandwidth query),
  // yet stay under serial time because their elastic ramp-ups overlap.
  int64_t twin = respond(CombineSpecs(
      {MicroFilterSpec(true, kRows, c), MicroFilterSpec(true, kRows, c)}));
  EXPECT_GT(twin, 1.2 * cpu_solo);
  EXPECT_LT(twin, 2.5 * cpu_solo);
}

TEST(SimWorkloadTest, CombinedWorkloadDeterministic) {
  SimCostParams c;
  auto run_once = [&] {
    SimOptions opt;
    opt.num_nodes = 1;
    opt.policy = SimPolicy::kElastic;
    opt.parallelism = 1;
    SimRun run(CombineSpecs({MicroFilterSpec(true, 1'000'000, c),
                             MicroAggSpec(false, 4, 1'000'000, c)}),
               opt);
    auto m = run.Run();
    EXPECT_TRUE(m.ok()) << m.status().ToString();
    return m.ok() ? m->response_ns : -1;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace claims
