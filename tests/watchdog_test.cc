#include "obs/watchdog.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>

#include "common/clock.h"
#include "obs/trace.h"

namespace claims {
namespace {

class ManualClock : public Clock {
 public:
  int64_t NowNanos() const override { return now_; }
  void Advance(int64_t ns) { now_ += ns; }

 private:
  int64_t now_ = 1'000'000'000;
};

WatchdogOptions TestOptions() {
  WatchdogOptions options;
  options.stall_window_ns = 1'000'000'000;      // 1 s
  options.incident_cooldown_ns = 5'000'000'000;  // 5 s
  options.incident_dir = ::testing::TempDir();
  options.dump_flight_recorder = false;
  return options;
}

TEST(StallWatchdogTest, AdvancingCounterNeverAlarms) {
  ManualClock clock;
  StallWatchdog watchdog(TestOptions(), &clock);
  int64_t counter = 0;
  watchdog.AddProgressProbe("ticks", [&] { return ++counter; });
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(watchdog.PollOnce(), 0);
    clock.Advance(600'000'000);
  }
  EXPECT_EQ(watchdog.incident_count(), 0);
}

TEST(StallWatchdogTest, PinnedCounterRaisesAfterWindow) {
  ManualClock clock;
  StallWatchdog watchdog(TestOptions(), &clock);
  watchdog.AddProgressProbe("ticks", [] { return int64_t{42}; });
  EXPECT_EQ(watchdog.PollOnce(), 0);  // establishes the value
  clock.Advance(500'000'000);
  EXPECT_EQ(watchdog.PollOnce(), 0);  // within the window
  clock.Advance(600'000'000);         // 1.1 s pinned
  EXPECT_EQ(watchdog.PollOnce(), 1);
  EXPECT_EQ(watchdog.incident_count(), 1);
  ASSERT_EQ(watchdog.incident_files().size(), 1u);
  // Report names the probe and the pinned value.
  std::FILE* f = std::fopen(watchdog.incident_files()[0].c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::string report(buf, n);
  EXPECT_NE(report.find("probe: ticks"), std::string::npos);
  EXPECT_NE(report.find("42"), std::string::npos);
  EXPECT_NE(report.find("metrics snapshot"), std::string::npos);
}

TEST(StallWatchdogTest, CooldownSuppressesRepeatIncidents) {
  ManualClock clock;
  StallWatchdog watchdog(TestOptions(), &clock);
  watchdog.AddProgressProbe("ticks", [] { return int64_t{7}; });
  watchdog.PollOnce();
  clock.Advance(1'100'000'000);
  EXPECT_EQ(watchdog.PollOnce(), 1);
  // Still stalled, still inside the cooldown: no new incident.
  clock.Advance(1'000'000'000);
  EXPECT_EQ(watchdog.PollOnce(), 0);
  // Past the cooldown the episode is reported again.
  clock.Advance(5'000'000'000);
  EXPECT_EQ(watchdog.PollOnce(), 1);
  EXPECT_EQ(watchdog.incident_count(), 2);
}

TEST(StallWatchdogTest, InactiveProbeIsNotAStall) {
  ManualClock clock;
  StallWatchdog watchdog(TestOptions(), &clock);
  watchdog.AddProgressProbe("idle", [] { return StallWatchdog::kInactive; });
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(watchdog.PollOnce(), 0);
    clock.Advance(2'000'000'000);
  }
  EXPECT_EQ(watchdog.incident_count(), 0);
}

TEST(StallWatchdogTest, ReactivationRestartsTheWindow) {
  ManualClock clock;
  StallWatchdog watchdog(TestOptions(), &clock);
  std::atomic<int64_t> value{StallWatchdog::kInactive};
  watchdog.AddProgressProbe("bursty", [&] { return value.load(); });
  watchdog.PollOnce();
  clock.Advance(3'000'000'000);  // long idle stretch
  watchdog.PollOnce();
  value.store(5);  // subsystem wakes, then pins immediately
  EXPECT_EQ(watchdog.PollOnce(), 0);  // fresh window — not an instant alarm
  clock.Advance(1'100'000'000);
  EXPECT_EQ(watchdog.PollOnce(), 1);
}

TEST(StallWatchdogTest, ConditionProbeRaisesWithDetail) {
  ManualClock clock;
  StallWatchdog watchdog(TestOptions(), &clock);
  std::atomic<bool> broken{false};
  watchdog.AddConditionProbe("invariant", [&]() -> std::string {
    return broken.load() ? "deadline breached by q7" : "";
  });
  EXPECT_EQ(watchdog.PollOnce(), 0);
  broken.store(true);
  EXPECT_EQ(watchdog.PollOnce(), 1);
  ASSERT_FALSE(watchdog.incident_files().empty());
  std::FILE* f = std::fopen(watchdog.incident_files()[0].c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::string report(buf, n);
  EXPECT_NE(report.find("deadline breached by q7"), std::string::npos);
}

TEST(StallWatchdogTest, ContextProvidersAppendToIncidentReports) {
  ManualClock clock;
  StallWatchdog watchdog(TestOptions(), &clock);
  // The chaos-plane wiring: a provider that names the faults in force when
  // the incident fires, and one that is quiet (omitted from the report).
  watchdog.AddContextProvider("fault.active", [] {
    return std::string("at=10ms kind=nic node=1 dur=100ms bps=2000000");
  });
  watchdog.AddContextProvider("fault.idle", [] { return std::string(); });
  watchdog.AddProgressProbe("ticks", [] { return int64_t{9}; });
  watchdog.PollOnce();
  clock.Advance(1'100'000'000);
  EXPECT_EQ(watchdog.PollOnce(), 1);
  ASSERT_EQ(watchdog.incident_files().size(), 1u);
  std::FILE* f = std::fopen(watchdog.incident_files()[0].c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[8192];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::string report(buf, n);
  EXPECT_NE(report.find("--- context: fault.active ---"), std::string::npos);
  EXPECT_NE(report.find("kind=nic node=1"), std::string::npos);
  EXPECT_EQ(report.find("fault.idle"), std::string::npos);
}

TEST(StallWatchdogTest, DumpsFlightRecorderWhenEnabled) {
  ManualClock clock;
  WatchdogOptions options = TestOptions();
  options.dump_flight_recorder = true;
  StallWatchdog watchdog(options, &clock);
  TraceCollector* tc = TraceCollector::Global();
  tc->Clear();
  tc->Enable();
  tc->Instant(1, 0, "test", "pre-incident-event");
  watchdog.AddProgressProbe("ticks", [] { return int64_t{1}; });
  watchdog.PollOnce();
  clock.Advance(2'000'000'000);
  EXPECT_EQ(watchdog.PollOnce(), 1);
  tc->Disable();
  // Two artifacts: the text report and the trace dump.
  ASSERT_EQ(watchdog.incident_files().size(), 2u);
  std::string trace_path;
  for (const std::string& path : watchdog.incident_files()) {
    if (path.find(".trace.json") != std::string::npos) trace_path = path;
  }
  ASSERT_FALSE(trace_path.empty());
  std::FILE* f = std::fopen(trace_path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[65536];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::string dump(buf, n);
  EXPECT_NE(dump.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(dump.find("pre-incident-event"), std::string::npos);
}

TEST(StallWatchdogTest, StartStopLifecycle) {
  StallWatchdog watchdog(TestOptions());  // real SteadyClock
  EXPECT_FALSE(watchdog.running());
  watchdog.Start();
  EXPECT_TRUE(watchdog.running());
  watchdog.Start();  // idempotent
  watchdog.Stop();
  EXPECT_FALSE(watchdog.running());
  watchdog.Stop();  // idempotent
}

}  // namespace
}  // namespace claims
