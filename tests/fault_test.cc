// Chaos-plane tests: fault plan parsing and determinism, injector window
// transitions on a manual clock, wire sequencing (duplicate suppression, gap
// detection), fabric retry/fast-fail under injected faults, and the
// end-to-end resilience scenario — a node crash mid-query that the workload
// manager survives by re-dispatching onto the remaining nodes with a
// byte-identical fault event log across runs (docs/FAULTS.md).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/executor.h"
#include "fault/injector.h"
#include "mem/block_pool.h"
#include "net/network.h"
#include "wlm/query_service.h"

namespace claims {
namespace {

class ManualClock : public Clock {
 public:
  int64_t NowNanos() const override { return now_; }
  void Advance(int64_t ns) { now_ += ns; }

 private:
  int64_t now_ = 0;
};

int64_t CounterValue(const char* name) {
  return MetricsRegistry::Global()->counter(name)->value();
}

// --- FaultPlan ------------------------------------------------------------------

TEST(FaultPlanTest, SpecToStringRoundTrips) {
  FaultSpec spec;
  spec.kind = FaultKind::kDelayBlock;
  spec.at_ns = 50'000'000;
  spec.duration_ns = 250'000;
  spec.node = 3;
  spec.exchange_id = 7;
  spec.probability = 0.25;
  spec.delay_ns = 1'500'000;
  auto parsed = ParseFaultSpec(spec.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->kind, FaultKind::kDelayBlock);
  EXPECT_EQ(parsed->at_ns, 50'000'000);
  EXPECT_EQ(parsed->duration_ns, 250'000);
  EXPECT_EQ(parsed->node, 3);
  EXPECT_EQ(parsed->exchange_id, 7);
  EXPECT_DOUBLE_EQ(parsed->probability, 0.25);
  EXPECT_EQ(parsed->delay_ns, 1'500'000);
  // And the rendering is stable: re-rendering the parse reproduces it.
  EXPECT_EQ(parsed->ToString(), spec.ToString());
}

TEST(FaultPlanTest, ParsesPlanWithCommentsAndSeed) {
  auto plan = ParseFaultPlan(
      "# storm for the smoke run\n"
      "seed=99\n"
      "\n"
      "  at=10ms kind=nic node=1 dur=100ms bps=2000000\n"
      "at=30ms kind=crash node=2\n");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed, 99u);
  ASSERT_EQ(plan->faults.size(), 2u);
  EXPECT_EQ(plan->faults[0].kind, FaultKind::kDegradeNic);
  EXPECT_EQ(plan->faults[0].bandwidth_bytes_per_sec, 2'000'000);
  EXPECT_EQ(plan->faults[1].kind, FaultKind::kCrashNode);
  EXPECT_EQ(plan->faults[1].node, 2);
  // Plan rendering round-trips too.
  auto again = ParseFaultPlan(plan->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToString(), plan->ToString());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseFaultSpec("at=10ms").ok());            // no kind
  EXPECT_FALSE(ParseFaultSpec("kind=warp at=1ms").ok());   // unknown kind
  EXPECT_FALSE(ParseFaultSpec("kind=drop p=1.5").ok());    // p out of range
  EXPECT_FALSE(ParseFaultSpec("kind=drop at=abc").ok());   // bad duration
  EXPECT_FALSE(ParseFaultSpec("kind=straggle factor=0.5").ok());
  EXPECT_FALSE(ParseFaultPlan("kind=drop at=1ms\nbogus line\n").ok());
}

TEST(FaultPlanTest, RandomFaultStormIsSeededAndCrashFree) {
  FaultPlan a = RandomFaultStorm(17, 4, 1'000'000'000);
  FaultPlan b = RandomFaultStorm(17, 4, 1'000'000'000);
  EXPECT_EQ(a.ToString(), b.ToString());
  FaultPlan c = RandomFaultStorm(18, 4, 1'000'000'000);
  EXPECT_NE(a.ToString(), c.ToString());
  ASSERT_GE(a.faults.size(), 4u);
  for (const FaultSpec& spec : a.faults) {
    EXPECT_NE(spec.kind, FaultKind::kCrashNode);
    EXPECT_NE(spec.kind, FaultKind::kDisconnect);
    EXPECT_GE(spec.at_ns, 0);
    EXPECT_LE(spec.at_ns, 750'000'000);
    EXPECT_GT(spec.duration_ns, 0);
  }
}

// --- FaultInjector --------------------------------------------------------------

TEST(FaultInjectorTest, WindowOpensAndClosesOnManualClock) {
  auto plan = ParseFaultPlan("at=10ms kind=drop dur=20ms p=1\n");
  ASSERT_TRUE(plan.ok());
  ManualClock clock;
  FaultInjector injector(*plan, &clock);
  injector.ArmManual();

  EXPECT_EQ(injector.PollOnce(), 0);
  EXPECT_EQ(injector.OnSend(0, 0, 1).fate, SendDecision::Fate::kDeliver);
  EXPECT_TRUE(injector.DescribeActiveFaults().empty());

  clock.Advance(15'000'000);  // t = 15 ms: inside the window
  EXPECT_EQ(injector.PollOnce(), 1);
  EXPECT_EQ(injector.OnSend(0, 0, 1).fate, SendDecision::Fate::kDrop);
  EXPECT_NE(injector.DescribeActiveFaults().find("kind=drop"),
            std::string::npos);

  clock.Advance(20'000'000);  // t = 35 ms: window closed
  EXPECT_EQ(injector.PollOnce(), 1);
  EXPECT_EQ(injector.OnSend(0, 0, 1).fate, SendDecision::Fate::kDeliver);
  EXPECT_TRUE(injector.DescribeActiveFaults().empty());
}

TEST(FaultInjectorTest, EventLogIsByteIdenticalAcrossPollCadences) {
  // Two overlapping windows; one injector polls every millisecond, the other
  // exactly once after everything already happened. The canonical log must
  // not depend on that.
  const char* kPlan =
      "at=10ms kind=drop dur=100ms p=0.5\n"
      "at=30ms kind=delay dur=20ms delay=1ms\n";
  auto plan = ParseFaultPlan(kPlan);
  ASSERT_TRUE(plan.ok());

  ManualClock fast_clock;
  FaultInjector fast(*plan, &fast_clock);
  fast.ArmManual();
  for (int i = 0; i < 150; ++i) {
    fast_clock.Advance(1'000'000);
    fast.PollOnce();
  }

  ManualClock slow_clock;
  FaultInjector slow(*plan, &slow_clock);
  slow.ArmManual();
  slow_clock.Advance(150'000'000);
  slow.PollOnce();

  EXPECT_FALSE(fast.EventLogText().empty());
  EXPECT_EQ(fast.EventLogText(), slow.EventLogText());
  // 2 activations + 2 restores.
  EXPECT_EQ(fast.Events().size(), 4u);
}

TEST(FaultInjectorTest, CrashFaultFiresHandlerOnce) {
  auto plan = ParseFaultPlan("at=5ms kind=crash node=2\n");
  ASSERT_TRUE(plan.ok());
  ManualClock clock;
  FaultInjector injector(*plan, &clock);
  std::vector<int> killed;
  injector.SetCrashHandler([&](int node) { killed.push_back(node); });
  injector.ArmManual();

  clock.Advance(10'000'000);
  EXPECT_EQ(injector.PollOnce(), 1);
  EXPECT_EQ(injector.PollOnce(), 0);  // one-shot
  ASSERT_EQ(killed, (std::vector<int>{2}));
  EXPECT_TRUE(injector.NodeDead(2));
  EXPECT_FALSE(injector.NodeDead(1));
}

TEST(FaultInjectorTest, NicDegradeActuatesAndRestores) {
  auto plan = ParseFaultPlan("at=5ms kind=nic node=1 dur=10ms bps=2000000\n");
  ASSERT_TRUE(plan.ok());
  ManualClock clock;
  FaultInjector injector(*plan, &clock);
  std::vector<std::pair<int, int64_t>> rewrites;
  injector.SetNicRewriter(
      [&](int node, int64_t bps) { rewrites.emplace_back(node, bps); });
  injector.ArmManual();

  clock.Advance(6'000'000);
  injector.PollOnce();
  clock.Advance(10'000'000);
  injector.PollOnce();
  ASSERT_EQ(rewrites.size(), 2u);
  EXPECT_EQ(rewrites[0], std::make_pair(1, int64_t{2'000'000}));
  EXPECT_EQ(rewrites[1], std::make_pair(1, int64_t{-1}));  // restore
}

TEST(FaultPlanTest, MemPressureSpecRoundTrips) {
  auto parsed = ParseFaultSpec("at=20ms kind=mempressure dur=50ms bytes=1048576");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->kind, FaultKind::kMemPressure);
  EXPECT_EQ(parsed->at_ns, 20'000'000);
  EXPECT_EQ(parsed->duration_ns, 50'000'000);
  EXPECT_EQ(parsed->mem_cap_bytes, 1'048'576);
  EXPECT_EQ(parsed->ToString(),
            ParseFaultSpec(parsed->ToString())->ToString());
  EXPECT_FALSE(ParseFaultSpec("kind=mempressure bytes=0").ok());
  EXPECT_FALSE(ParseFaultSpec("kind=mempressure bytes=-5").ok());
}

TEST(FaultInjectorTest, MemPressureActuatesCapAndRestores) {
  auto plan = ParseFaultPlan("at=5ms kind=mempressure dur=10ms bytes=65536\n");
  ASSERT_TRUE(plan.ok());
  ManualClock clock;
  FaultInjector injector(*plan, &clock);
  std::vector<int64_t> caps;
  injector.SetMemPressureHandler([&](int64_t cap) { caps.push_back(cap); });
  injector.ArmManual();

  EXPECT_EQ(injector.PollOnce(), 0);
  clock.Advance(6'000'000);
  EXPECT_EQ(injector.PollOnce(), 1);
  EXPECT_NE(injector.DescribeActiveFaults().find("kind=mempressure"),
            std::string::npos);
  clock.Advance(10'000'000);
  EXPECT_EQ(injector.PollOnce(), 1);
  ASSERT_EQ(caps, (std::vector<int64_t>{65'536, -1}));  // squeeze, restore
  EXPECT_TRUE(injector.DescribeActiveFaults().empty());
}

TEST(FaultInjectorTest, MemPressureDefaultHandlerSqueezesGlobalPool) {
  auto plan = ParseFaultPlan(
      "at=1ms kind=mempressure dur=5ms bytes=131072\n");
  ASSERT_TRUE(plan.ok());
  ManualClock clock;
  FaultInjector injector(*plan, &clock);  // default handler: global pool
  injector.ArmManual();

  clock.Advance(2'000'000);
  injector.PollOnce();
  EXPECT_EQ(BlockPool::Global()->pressure_cap_bytes(), 131'072);
  clock.Advance(5'000'000);
  injector.PollOnce();
  EXPECT_EQ(BlockPool::Global()->pressure_cap_bytes(), 0);  // uncapped
}

TEST(FaultInjectorTest, ProbabilisticDrawsAreSeedDeterministic) {
  auto plan = ParseFaultPlan("seed=123\nat=0ns kind=drop dur=1s p=0.5\n");
  ASSERT_TRUE(plan.ok());
  auto fates = [&] {
    ManualClock clock;
    FaultInjector injector(*plan, &clock);
    injector.ArmManual();
    clock.Advance(1'000'000);
    injector.PollOnce();
    std::string out;
    for (int i = 0; i < 64; ++i) {
      out += injector.OnSend(0, 0, 1).fate == SendDecision::Fate::kDrop
                 ? 'D'
                 : '.';
    }
    return out;
  };
  std::string a = fates();
  std::string b = fates();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find('D'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);
}

// --- TokenBucket rate rewrite ---------------------------------------------------

TEST(TokenBucketFaultTest, SetBytesPerSecDegradesAndRestores) {
  TokenBucket bucket(0);  // healthy: unthrottled
  EXPECT_FALSE(bucket.throttled());
  EXPECT_EQ(bucket.Acquire(1 << 30), 0);

  // Chaos plane degrades the NIC to 10 MB/s mid-run: past the burst
  // allowance, a 2 MB transfer needs real waiting (same arithmetic as
  // TokenBucketTest.ThrottleDelaysLargeTransfers).
  bucket.SetBytesPerSec(10'000'000);
  EXPECT_TRUE(bucket.throttled());
  bucket.Acquire(1 << 20);  // eat the burst allowance
  int64_t t0 = SteadyClock::Default()->NowNanos();
  EXPECT_GT(bucket.Acquire(2'000'000), 0);
  EXPECT_GT(SteadyClock::Default()->NowNanos() - t0, 80'000'000);

  // Window closes: restored to unthrottled, large transfers free again.
  bucket.SetBytesPerSec(0);
  EXPECT_FALSE(bucket.throttled());
  EXPECT_EQ(bucket.Acquire(1 << 30), 0);
}

// --- wire sequencing ------------------------------------------------------------

BlockPtr RowBlock(int rows = 1) {
  auto b = MakeBlock(8, 8 * rows);
  for (int i = 0; i < rows; ++i) b->AppendRow();
  return b;
}

TEST(ChannelSequencingTest, DuplicateDeliveriesAreSuppressed) {
  BlockChannel channel(1, 8);
  uint64_t seq = 99;
  ASSERT_TRUE(channel.Send({RowBlock(), 0}, nullptr, &seq));
  EXPECT_EQ(seq, 0u);
  ASSERT_TRUE(channel.SendDuplicate({RowBlock(), 0, seq}));

  NetBlock nb;
  ASSERT_EQ(channel.Receive(&nb, 1'000'000), ChannelStatus::kOk);
  EXPECT_EQ(nb.wire_seq, 0u);
  // The second copy is consumed and dropped, never surfaced.
  EXPECT_EQ(channel.Receive(&nb, 0), ChannelStatus::kTimeout);
  EXPECT_EQ(channel.duplicates_suppressed(), 1);
  EXPECT_EQ(channel.sequence_gaps(), 0);

  // The next regular send continues the sequence.
  ASSERT_TRUE(channel.Send({RowBlock(), 0}, nullptr, &seq));
  EXPECT_EQ(seq, 1u);
  ASSERT_EQ(channel.Receive(&nb, 1'000'000), ChannelStatus::kOk);
  EXPECT_EQ(nb.wire_seq, 1u);
}

TEST(ChannelSequencingTest, SequencesArePerProducer) {
  BlockChannel channel(2, 8);
  uint64_t seq = 0;
  ASSERT_TRUE(channel.Send({RowBlock(), 0}, nullptr, &seq));
  EXPECT_EQ(seq, 0u);
  ASSERT_TRUE(channel.Send({RowBlock(), 1}, nullptr, &seq));
  EXPECT_EQ(seq, 0u);  // producer 1's own stream
  ASSERT_TRUE(channel.Send({RowBlock(), 0}, nullptr, &seq));
  EXPECT_EQ(seq, 1u);
}

TEST(ChannelSequencingTest, GapsAreCounted) {
  BlockChannel channel(1, 8);
  // A block arriving with seq 3 when 0 was expected means 3 deliveries were
  // lost for good (send-side retries exhausted).
  ASSERT_TRUE(channel.SendDuplicate({RowBlock(), 0, 3}));
  NetBlock nb;
  ASSERT_EQ(channel.Receive(&nb, 1'000'000), ChannelStatus::kOk);
  EXPECT_EQ(channel.sequence_gaps(), 3);
}

TEST(ChannelSequencingTest, NonBlockingPollReturnsImmediately) {
  // Regression for the documented timeout_ns <= 0 contract: a poll on a
  // quiet channel must return kTimeout without waiting.
  BlockChannel channel(1, 8);
  NetBlock nb;
  int64_t t0 = SteadyClock::Default()->NowNanos();
  EXPECT_EQ(channel.Receive(&nb, 0), ChannelStatus::kTimeout);
  EXPECT_EQ(channel.Receive(&nb, -5), ChannelStatus::kTimeout);
  EXPECT_LT(SteadyClock::Default()->NowNanos() - t0, 50'000'000);

  // Decidable states still surface without a wait.
  ASSERT_TRUE(channel.Send({RowBlock(), 0}));
  EXPECT_EQ(channel.Receive(&nb, 0), ChannelStatus::kOk);
  channel.CloseProducer();
  EXPECT_EQ(channel.Receive(&nb, 0), ChannelStatus::kClosed);
}

// --- fabric retry / fast-fail ---------------------------------------------------

NetworkOptions FastRetryOptions() {
  NetworkOptions opts;
  opts.capacity_blocks = 8;
  opts.max_send_attempts = 3;
  opts.retry_backoff_ns = 50'000;
  return opts;
}

TEST(NetworkFaultTest, SendToDeadNodeFailsFast) {
  Network net(2, FastRetryOptions());
  net.CreateExchange(1, 1, {0, 1});
  net.SetNodeDead(1);
  EXPECT_FALSE(net.NodeAlive(1));
  EXPECT_TRUE(net.NodeAlive(0));
  int64_t failures_before = CounterValue("net.send_failures");
  EXPECT_EQ(net.SendRoute({1, 0, 0, 1, 1}, RowBlock()),
            SendOutcome::kUnavailable);
  EXPECT_EQ(CounterValue("net.send_failures"), failures_before + 1);
  // The other node keeps working.
  EXPECT_EQ(net.SendRoute({1, 0, 0, 0, 0}, RowBlock()), SendOutcome::kOk);
}

TEST(NetworkFaultTest, DisconnectExhaustsRetriesThenFails) {
  auto plan = ParseFaultPlan("at=0ns kind=disconnect exchange=1\n");
  ASSERT_TRUE(plan.ok());
  ManualClock clock;
  FaultInjector injector(*plan, &clock);
  injector.ArmManual();
  clock.Advance(1);
  injector.PollOnce();

  Network net(2, FastRetryOptions());
  net.SetFaultInjector(&injector);
  net.CreateExchange(1, 1, {0, 1});
  int64_t retries_before = CounterValue("net.retries");
  int64_t dropped_before = CounterValue("net.dropped:n0");
  EXPECT_EQ(net.SendRoute({1, 0, 0, 1, 1}, RowBlock()),
            SendOutcome::kUnavailable);
  // 3 attempts: 2 retries after the first drop, then exhaustion.
  EXPECT_EQ(CounterValue("net.retries"), retries_before + 2);
  EXPECT_EQ(CounterValue("net.dropped:n0"), dropped_before + 3);
  EXPECT_EQ(net.GetChannel(1, 1)->size(), 0u);
  net.SetFaultInjector(nullptr);
}

TEST(NetworkFaultTest, RetriesRecoverOnceTheWindowCloses) {
  auto plan = ParseFaultPlan("at=0ns kind=drop dur=1s p=0.6\n");
  ASSERT_TRUE(plan.ok());
  ManualClock clock;
  FaultInjector injector(*plan, &clock);
  injector.ArmManual();
  clock.Advance(1);
  injector.PollOnce();

  NetworkOptions opts = FastRetryOptions();
  // p=0.6: the chance of 64 consecutive drops is ~1e-14, so every send lands
  // eventually; gentle backoff keeps the worst-case streak cheap.
  opts.max_send_attempts = 64;
  opts.retry_backoff_ns = 10'000;
  opts.retry_backoff_multiplier = 1.5;
  Network net(2, opts);
  net.SetFaultInjector(&injector);
  net.CreateExchange(1, 1, {0, 1});
  int64_t sent_before = CounterValue("net.sent:n0");
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(net.SendRoute({1, 0, 0, 1, 1}, RowBlock()), SendOutcome::kOk);
  }
  EXPECT_EQ(net.GetChannel(1, 1)->size(), 8u);
  EXPECT_EQ(CounterValue("net.sent:n0"), sent_before + 8);
  EXPECT_GT(CounterValue("fault.drops"), 0);
  net.SetFaultInjector(nullptr);
}

TEST(NetworkFaultTest, DuplicatedDeliveryIsSuppressedAtReceive) {
  auto plan = ParseFaultPlan("at=0ns kind=dup p=1\n");
  ASSERT_TRUE(plan.ok());
  ManualClock clock;
  FaultInjector injector(*plan, &clock);
  injector.ArmManual();
  clock.Advance(1);
  injector.PollOnce();

  Network net(2, FastRetryOptions());
  net.SetFaultInjector(&injector);
  net.CreateExchange(1, 1, {0, 1});
  EXPECT_EQ(net.SendRoute({1, 0, 0, 1, 1}, RowBlock()), SendOutcome::kOk);
  BlockChannel* ch = net.GetChannel(1, 1);
  EXPECT_EQ(ch->size(), 2u);  // both copies queued, same wire sequence
  NetBlock nb;
  ASSERT_EQ(ch->Receive(&nb, 1'000'000), ChannelStatus::kOk);
  EXPECT_EQ(ch->Receive(&nb, 0), ChannelStatus::kTimeout);
  EXPECT_EQ(ch->duplicates_suppressed(), 1);
  net.SetFaultInjector(nullptr);
}

// --- cluster resilience scenarios -----------------------------------------------

ExprPtr Col(const Schema& s, const char* name) {
  int i = s.FindColumn(name);
  EXPECT_GE(i, 0) << name;
  return MakeColumnRef(i, s.column(i).type, name);
}

constexpr int kNodes = 3;

/// Fresh catalog + cluster per test: node death is permanent for a cluster's
/// lifetime, so kill tests must not share one with anything else.
///
/// Two copies of the same kv data, partitioned differently:
///   kva — round-robin (the repartition/build side);
///   kvb — hash-partitioned on k (the probe side). The table partitioner and
///         the exchange use the same HashRowKeys/PartitionOf mapping, so
///         after repartitioning kva on k, key k's build rows land exactly on
///         the node holding kvb's k rows — every key joins, making the join
///         result deterministic: (rows/300)² matches per key.
struct TestCluster {
  explicit TestCluster(int rows = 24000) : rows_per_key(rows / 300) {
    {
      Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
      auto t = std::make_shared<Table>("kva", s, kNodes, std::vector<int>{});
      for (int i = 0; i < rows; ++i) {
        t->AppendValues({Value::Int32(i % 300), Value::Int64(i)});
      }
      EXPECT_TRUE(catalog.RegisterTable(std::move(t)).ok());
    }
    {
      Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("w")});
      auto t = std::make_shared<Table>("kvb", s, kNodes, std::vector<int>{0});
      for (int i = 0; i < rows; ++i) {
        t->AppendValues({Value::Int32(i % 300), Value::Int64(i)});
      }
      EXPECT_TRUE(catalog.RegisterTable(std::move(t)).ok());
    }
    ClusterOptions copts;
    copts.num_nodes = kNodes;
    copts.cores_per_node = 4;
    cluster = std::make_unique<Cluster>(copts, &catalog);
  }

  /// Milliseconds-fast: scan kva → filter(k < 100) → gather to master.
  PhysicalPlan GatherPlan() {
    TablePtr kva = *catalog.GetTable("kva");
    PhysicalPlan plan;
    auto f = std::make_unique<Fragment>();
    f->id = 0;
    f->root = MakeFilterOp(
        MakeScanOp(*kva), MakeCompare(CompareOp::kLt, Col(kva->schema(), "k"),
                                      MakeLiteral(Value::Int32(100))));
    f->nodes = {0, 1, 2};
    f->out_exchange_id = 0;
    f->partitioning = Partitioning::kToOne;
    f->consumer_nodes = {0};
    plan.result_schema = f->root->output_schema;
    plan.result_exchange_id = 0;
    plan.fragments.push_back(std::move(f));
    return plan;
  }

  /// Hundreds-of-milliseconds slow: repartition kva on k (build), join
  /// against the co-partitioned kvb scan (probe), count per key. With the
  /// default 24000 rows: 80 × 80 = 6400 join rows per key, 1.92M total.
  PhysicalPlan SlowPlan() {
    TablePtr kva = *catalog.GetTable("kva");
    TablePtr kvb = *catalog.GetTable("kvb");
    PhysicalPlan plan;
    auto f0 = std::make_unique<Fragment>();
    f0->id = 0;
    f0->root = MakeScanOp(*kva);
    f0->nodes = {0, 1, 2};
    f0->out_exchange_id = 0;
    f0->partitioning = Partitioning::kHash;
    f0->hash_cols = {0};
    f0->consumer_nodes = {0, 1, 2};

    auto f1 = std::make_unique<Fragment>();
    f1->id = 1;
    auto merger = MakeMergerOp(0, f0->root->output_schema);
    auto join = MakeHashJoinOp(std::move(merger), MakeScanOp(*kvb),
                               /*build_keys=*/{0}, /*probe_keys=*/{0});
    const Schema join_schema = join->output_schema;
    f1->root = MakeHashAggOp(std::move(join), {Col(join_schema, "k")}, {"k"},
                             {{AggFn::kCount, nullptr, "cnt"}},
                             HashAggIterator::Mode::kShared);
    f1->nodes = {0, 1, 2};
    f1->out_exchange_id = 1;
    f1->partitioning = Partitioning::kToOne;
    f1->consumer_nodes = {0};

    plan.result_schema = f1->root->output_schema;
    plan.result_exchange_id = 1;
    plan.fragments.push_back(std::move(f0));
    plan.fragments.push_back(std::move(f1));
    return plan;
  }

  int64_t SlowPlanCountPerKey() const {
    return static_cast<int64_t>(rows_per_key) * rows_per_key;
  }

  int rows_per_key;
  Catalog catalog;
  std::unique_ptr<Cluster> cluster;
};

TEST(ClusterFaultTest, KillingTheMasterIsRejected) {
  TestCluster tc(300);
  tc.cluster->KillNode(0);
  tc.cluster->KillNode(99);  // out of range, also ignored
  EXPECT_TRUE(tc.cluster->NodeAlive(0));
  EXPECT_EQ(tc.cluster->AliveNodes(), (std::vector<int>{0, 1, 2}));
}

TEST(ClusterFaultTest, DeathListenersFireOncePerNode) {
  TestCluster tc(300);
  std::vector<int> deaths;
  int token = tc.cluster->AddNodeDeathListener(
      [&](int node) { deaths.push_back(node); });
  tc.cluster->KillNode(2);
  tc.cluster->KillNode(2);  // idempotent
  EXPECT_EQ(deaths, (std::vector<int>{2}));
  EXPECT_FALSE(tc.cluster->NodeAlive(2));
  EXPECT_EQ(tc.cluster->AliveNodes(), (std::vector<int>{0, 1}));
  EXPECT_FALSE(tc.cluster->network()->NodeAlive(2));
  tc.cluster->RemoveNodeDeathListener(token);
  // Node 1 dies after removal: no further callbacks.
  tc.cluster->KillNode(1);
  EXPECT_EQ(deaths.size(), 1u);
}

TEST(ClusterFaultTest, ExecutorPlacesAroundAnAlreadyDeadNode) {
  TestCluster tc;
  tc.cluster->KillNode(2);
  Executor exec(tc.cluster.get());
  ExecOptions opts;
  opts.parallelism = 1;
  auto result = exec.Execute(tc.GatherPlan(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // k in [0,100) of i%300 over 24000 rows → 8000 rows, wherever node 2's
  // partition was re-hosted.
  EXPECT_EQ(result->num_rows(), 8000);
  for (const SegmentReport& seg : exec.report().segments) {
    EXPECT_NE(seg.node_id, 2) << seg.name;
  }
}

TEST(ClusterFaultTest, OnlyMasterSurvivingStillExecutes) {
  TestCluster tc(300);
  tc.cluster->KillNode(1);
  tc.cluster->KillNode(2);
  // Graceful degradation's floor: every logical node re-hosts onto node 0.
  Executor exec(tc.cluster.get());
  ExecOptions opts;
  opts.parallelism = 1;
  auto result = exec.Execute(tc.GatherPlan(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 100);  // 300 rows, k = i%300 < 100
}

TEST(ClusterFaultTest, StarvationAccountingUnderInjectedSlowSender) {
  // A delay window on the repartition exchange stalls every producer send;
  // the consumer segment's merger starves and its blocked-input time has to
  // say so — the signal the dynamic scheduler reads as "do not expand here".
  TestCluster tc;
  auto plan = ParseFaultPlan("at=0ns kind=delay exchange=0 delay=10ms p=1\n");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*plan);
  tc.cluster->AttachFaultInjector(&injector);
  injector.Arm();

  Executor exec(tc.cluster.get());
  ExecOptions opts;
  opts.parallelism = 1;
  auto result = exec.Execute(tc.SlowPlan(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 300);

  int64_t consumer_blocked = 0;
  for (const SegmentReport& seg : exec.report().segments) {
    if (seg.name.rfind("S1", 0) == 0) consumer_blocked += seg.blocked_input_ns;
  }
  EXPECT_GT(consumer_blocked, 5'000'000) << "merger never starved";
  EXPECT_GT(CounterValue("fault.delays"), 0);

  injector.Disarm();
  tc.cluster->AttachFaultInjector(nullptr);
}

/// One full chaos scenario run: NIC degrade on node 1 plus a scripted crash
/// of node 2 while a retried query is mid-stream. Returns the canonical
/// fault event log; the query must complete correctly via re-dispatch.
std::string RunCrashScenario() {
  const char* kScenario =
      "seed=11\n"
      "at=10ms kind=nic node=1 dur=120ms bps=4000000\n"
      "at=30ms kind=crash node=2\n";
  auto plan = ParseFaultPlan(kScenario);
  EXPECT_TRUE(plan.ok());

  TestCluster tc;
  FaultInjector injector(*plan);
  tc.cluster->AttachFaultInjector(&injector);

  QueryServiceOptions sopts;
  sopts.admission.max_concurrent = 2;
  QueryService service(tc.cluster.get(), sopts);

  SubmitOptions sub;
  sub.label = "chaos";
  sub.exec.parallelism = 1;
  sub.exec.buffer_capacity_blocks = 2;
  sub.retry.max_attempts = 4;
  sub.retry.initial_backoff_ns = 5'000'000;

  injector.Arm();
  QueryHandlePtr handle = service.Submit(tc.SlowPlan(), sub);
  EXPECT_TRUE(handle->WaitFor(60'000'000'000LL)) << "query hung under chaos";
  EXPECT_TRUE(handle->status().ok()) << handle->status().ToString();
  if (handle->status().ok()) {
    EXPECT_EQ(handle->result().num_rows(), 300);
    auto rows = handle->result().Rows(/*sorted=*/true);
    for (int k = 0; k < 300; ++k) {
      EXPECT_EQ(rows[k][0].AsInt64(), k);
      EXPECT_EQ(rows[k][1].AsInt64(), tc.SlowPlanCountPerKey());
    }
    // The re-dispatched attempt must have avoided the dead node.
    for (const SegmentReport& seg : handle->report().segments) {
      EXPECT_NE(seg.node_id, 2) << seg.name;
    }
  }
  EXPECT_FALSE(tc.cluster->NodeAlive(2));

  // Let every window pass its planned horizon so both runs log the full
  // schedule, then freeze the injector.
  while (injector.ElapsedNanos() < 140'000'000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  injector.PollOnce();
  service.Shutdown();
  injector.Disarm();
  tc.cluster->AttachFaultInjector(nullptr);
  return injector.EventLogText();
}

TEST(ClusterFaultTest, CrashMidQueryRedispatchesWithDeterministicLog) {
  int64_t retries_before = CounterValue("wlm.retries");
  std::string first = RunCrashScenario();
  std::string second = RunCrashScenario();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "fault event log not reproducible";
  // 3 lines: nic activate, crash, nic restore — at their *planned* times.
  EXPECT_NE(first.find("ACTIVATE at=10ms kind=nic"), std::string::npos);
  EXPECT_NE(first.find("kind=crash node=2"), std::string::npos);
  EXPECT_NE(first.find("RESTORE at=10ms kind=nic"), std::string::npos);
  // Both runs crashed a node mid-query; each needed at least one re-dispatch.
  EXPECT_GE(CounterValue("wlm.retries"), retries_before + 2);
}

TEST(WlmFaultTest, RetryPolicySurvivesNodeLossAndReportsRetrying) {
  TestCluster tc;
  QueryServiceOptions sopts;
  sopts.admission.max_concurrent = 2;
  QueryService service(tc.cluster.get(), sopts);

  SubmitOptions sub;
  sub.label = "retry";
  sub.exec.parallelism = 1;
  sub.exec.buffer_capacity_blocks = 2;
  sub.retry.max_attempts = 4;
  // Long backoff so the kRetrying state is observable from outside.
  sub.retry.initial_backoff_ns = 300'000'000;

  QueryHandlePtr handle = service.Submit(tc.SlowPlan(), sub);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  tc.cluster->KillNode(1);

  bool saw_retrying = false;
  for (int i = 0; i < 400 && !saw_retrying; ++i) {
    if (handle->state() == QueryState::kRetrying) saw_retrying = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(handle->WaitFor(60'000'000'000LL)) << "retry loop hung";
  EXPECT_TRUE(handle->status().ok()) << handle->status().ToString();
  EXPECT_TRUE(saw_retrying) << "kRetrying state never observed";
  EXPECT_EQ(handle->result().num_rows(), 300);
  service.Shutdown();
}

TEST(WlmFaultTest, NoRetryPolicySurfacesUnavailable) {
  TestCluster tc;
  QueryServiceOptions sopts;
  sopts.admission.max_concurrent = 2;
  QueryService service(tc.cluster.get(), sopts);

  SubmitOptions sub;
  sub.label = "no-retry";
  sub.exec.parallelism = 1;
  sub.exec.buffer_capacity_blocks = 2;  // default retry: 1 attempt

  QueryHandlePtr handle = service.Submit(tc.SlowPlan(), sub);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  tc.cluster->KillNode(2);
  ASSERT_TRUE(handle->WaitFor(60'000'000'000LL));
  // Either it finished before the kill (ok) or it failed typed-retryable;
  // with no retry budget the service must not re-run it.
  if (!handle->status().ok()) {
    EXPECT_EQ(handle->status().code(), StatusCode::kUnavailable)
        << handle->status().ToString();
  }
  service.Shutdown();
}

}  // namespace
}  // namespace claims
