#include "exec/hash_table.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <vector>

namespace claims {
namespace {

TEST(ArenaTest, AllocatesAlignedDistinct) {
  Arena arena(1024);
  char* a = arena.Allocate(10);
  char* b = arena.Allocate(10);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_GE(arena.allocated_bytes(), 32);  // two 16-byte rounded allocations
}

TEST(ArenaTest, OversizedAllocation) {
  Arena arena(64);
  char* big = arena.Allocate(1000);
  ASSERT_NE(big, nullptr);
  big[999] = 'x';  // writable end-to-end
  char* small = arena.Allocate(8);
  ASSERT_NE(small, nullptr);
}

TEST(ArenaTest, ConcurrentAllocationsDoNotOverlap) {
  Arena arena(4096);
  const int kThreads = 8;
  const int kAllocs = 500;
  std::vector<std::vector<char*>> ptrs(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAllocs; ++i) {
        char* p = arena.Allocate(16);
        *reinterpret_cast<int64_t*>(p) = t * kAllocs + i;
        ptrs[t].push_back(p);
      }
    });
  }
  for (auto& th : threads) th.join();
  // All payloads intact → no overlapping allocations.
  std::set<char*> all;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kAllocs; ++i) {
      EXPECT_EQ(*reinterpret_cast<int64_t*>(ptrs[t][i]), t * kAllocs + i);
      all.insert(ptrs[t][i]);
    }
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kAllocs));
}

TEST(ArenaTest, MemoryTrackerSeesChunks) {
  MemoryTracker mem("arena");
  {
    Arena arena(1024, &mem);
    arena.Allocate(100);
    EXPECT_GE(mem.current_bytes(), 1024);
  }
  EXPECT_EQ(mem.current_bytes(), 0);  // released on destruction
}

Schema TwoColSchema() {
  return Schema({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
}

TEST(JoinHashTableTest, InsertAndProbe) {
  Schema schema = TwoColSchema();
  JoinHashTable table(&schema, {0}, 64);
  std::vector<char> row(schema.row_size());
  for (int i = 0; i < 100; ++i) {
    schema.SetInt32(row.data(), 0, i % 10);
    schema.SetInt64(row.data(), 1, i);
    table.Insert(row.data());
  }
  EXPECT_EQ(table.size(), 100);
  // Probe key 3: ten rows with v ≡ 3 (mod 10).
  schema.SetInt32(row.data(), 0, 3);
  int matches = 0;
  int64_t sum = 0;
  table.ForEachMatch(schema, row.data(), {0}, [&](const char* build_row) {
    ++matches;
    sum += schema.GetInt64(build_row, 1);
  });
  EXPECT_EQ(matches, 10);
  EXPECT_EQ(sum, 3 + 13 + 23 + 33 + 43 + 53 + 63 + 73 + 83 + 93);
}

TEST(JoinHashTableTest, NoMatches) {
  Schema schema = TwoColSchema();
  JoinHashTable table(&schema, {0}, 64);
  std::vector<char> row(schema.row_size());
  schema.SetInt32(row.data(), 0, 42);
  int matches = 0;
  table.ForEachMatch(schema, row.data(), {0},
                     [&](const char*) { ++matches; });
  EXPECT_EQ(matches, 0);
}

TEST(JoinHashTableTest, DifferentProbeSchema) {
  Schema build = TwoColSchema();
  Schema probe({ColumnDef::Char("pad", 7), ColumnDef::Int32("key")});
  JoinHashTable table(&build, {0}, 64);
  std::vector<char> brow(build.row_size());
  build.SetInt32(brow.data(), 0, 5);
  build.SetInt64(brow.data(), 1, 99);
  table.Insert(brow.data());
  std::vector<char> prow(probe.row_size());
  probe.SetString(prow.data(), 0, "ignored");
  probe.SetInt32(prow.data(), 1, 5);
  int matches = 0;
  table.ForEachMatch(probe, prow.data(), {1}, [&](const char* r) {
    ++matches;
    EXPECT_EQ(build.GetInt64(r, 1), 99);
  });
  EXPECT_EQ(matches, 1);
}

TEST(JoinHashTableTest, ConcurrentBuildFindsEverything) {
  Schema schema = TwoColSchema();
  JoinHashTable table(&schema, {0}, 256);
  const int kThreads = 6;
  const int kRows = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<char> row(schema.row_size());
      for (int i = 0; i < kRows; ++i) {
        schema.SetInt32(row.data(), 0, i);
        schema.SetInt64(row.data(), 1, t);
        table.Insert(row.data());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(table.size(), kThreads * kRows);
  std::vector<char> probe(schema.row_size());
  for (int i = 0; i < kRows; i += 97) {
    schema.SetInt32(probe.data(), 0, i);
    int matches = 0;
    table.ForEachMatch(schema, probe.data(), {0},
                       [&](const char*) { ++matches; });
    EXPECT_EQ(matches, kThreads) << "key " << i;
  }
}

TEST(JoinHashTableTest, CompositeKeys) {
  Schema schema({ColumnDef::Int32("a"), ColumnDef::Int32("b"),
                 ColumnDef::Int64("v")});
  JoinHashTable table(&schema, {0, 1}, 64);
  std::vector<char> row(schema.row_size());
  schema.SetInt32(row.data(), 0, 1);
  schema.SetInt32(row.data(), 1, 2);
  schema.SetInt64(row.data(), 2, 12);
  table.Insert(row.data());
  schema.SetInt32(row.data(), 0, 2);
  schema.SetInt32(row.data(), 1, 1);
  schema.SetInt64(row.data(), 2, 21);
  table.Insert(row.data());
  // Probe (1,2): must match only the first.
  schema.SetInt32(row.data(), 0, 1);
  schema.SetInt32(row.data(), 1, 2);
  int matches = 0;
  table.ForEachMatch(schema, row.data(), {0, 1}, [&](const char* r) {
    ++matches;
    EXPECT_EQ(schema.GetInt64(r, 2), 12);
  });
  EXPECT_EQ(matches, 1);
}

TEST(AggHashTableTest, GroupAndFold) {
  Schema group({ColumnDef::Int32("g")});
  AggHashTable table(group, /*num_aggs=*/2, 64);
  std::vector<AggFn> fns = {AggFn::kSum, AggFn::kCount};
  std::vector<char> grow(group.row_size());
  for (int i = 0; i < 100; ++i) {
    group.SetInt32(grow.data(), 0, i % 4);
    double values[2] = {static_cast<double>(i), 0};
    int64_t weights[2] = {1, 1};
    table.Update(grow.data(), fns, values, weights);
  }
  EXPECT_EQ(table.size(), 4);
  std::map<int32_t, std::pair<double, int64_t>> result;
  table.ForEach([&](const char* row, const AggHashTable::AggState* states) {
    result[group.GetInt32(row, 0)] = {states[0].sum, states[1].count};
  });
  ASSERT_EQ(result.size(), 4u);
  // Group 0: 0+4+...+96 = 1200; each group has 25 members.
  EXPECT_DOUBLE_EQ(result[0].first, 1200.0);
  EXPECT_EQ(result[0].second, 25);
  EXPECT_DOUBLE_EQ(result[1].first, 1225.0);
}

TEST(AggHashTableTest, MinMax) {
  Schema group({ColumnDef::Int32("g")});
  AggHashTable table(group, 2, 16);
  std::vector<AggFn> fns = {AggFn::kMin, AggFn::kMax};
  std::vector<char> grow(group.row_size());
  group.SetInt32(grow.data(), 0, 7);
  for (double v : {5.0, -2.0, 9.0, 3.0}) {
    double values[2] = {v, v};
    int64_t weights[2] = {1, 1};
    table.Update(grow.data(), fns, values, weights);
  }
  table.ForEach([&](const char*, const AggHashTable::AggState* states) {
    EXPECT_DOUBLE_EQ(states[0].sum, -2.0);
    EXPECT_DOUBLE_EQ(states[1].sum, 9.0);
  });
}

TEST(AggHashTableTest, ConcurrentUpdatesExact) {
  Schema group({ColumnDef::Int32("g")});
  AggHashTable table(group, 2, 8);  // few buckets → heavy contention
  std::vector<AggFn> fns = {AggFn::kSum, AggFn::kCount};
  const int kThreads = 8;
  const int kUpdates = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<char> grow(group.row_size());
      for (int i = 0; i < kUpdates; ++i) {
        group.SetInt32(grow.data(), 0, i % 3);  // 3 hot groups
        double values[2] = {1.0, 0};
        int64_t weights[2] = {1, 1};
        table.Update(grow.data(), fns, values, weights);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(table.size(), 3);
  int64_t total = 0;
  table.ForEach([&](const char*, const AggHashTable::AggState* states) {
    EXPECT_DOUBLE_EQ(states[0].sum, states[1].count * 1.0);
    total += states[1].count;
  });
  EXPECT_EQ(total, kThreads * kUpdates);
}

TEST(AggHashTableTest, CompositeGroupKeysWithStrings) {
  Schema group({ColumnDef::Char("flag", 1), ColumnDef::Char("status", 1)});
  AggHashTable table(group, 1, 16);
  std::vector<AggFn> fns = {AggFn::kCount};
  std::vector<char> grow(group.row_size());
  const char* combos[4][2] = {{"A", "F"}, {"N", "O"}, {"R", "F"}, {"N", "F"}};
  for (int rep = 0; rep < 10; ++rep) {
    for (auto& c : combos) {
      group.SetString(grow.data(), 0, c[0]);
      group.SetString(grow.data(), 1, c[1]);
      double values[1] = {0};
      int64_t weights[1] = {1};
      table.Update(grow.data(), fns, values, weights);
    }
  }
  EXPECT_EQ(table.size(), 4);
  table.ForEach([&](const char*, const AggHashTable::AggState* s) {
    EXPECT_EQ(s[0].count, 10);
  });
}

TEST(FoldAggTest, MergeWeights) {
  // Merging partial states: count_weight carries the partial count.
  AggHashTable::AggState state;
  FoldAgg(AggFn::kSum, 100.0, 7, &state);
  FoldAgg(AggFn::kSum, 50.0, 3, &state);
  EXPECT_DOUBLE_EQ(state.sum, 150.0);
  EXPECT_EQ(state.count, 10);
}

}  // namespace
}  // namespace claims
