#include "storage/partition.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace claims {
namespace {

TEST(HashBytesTest, DistinguishesInputs) {
  EXPECT_NE(HashBytes("abc", 3), HashBytes("abd", 3));
  EXPECT_NE(HashBytes("abc", 3), HashBytes("abc", 2));
  EXPECT_EQ(HashBytes("abc", 3), HashBytes("abc", 3));
}

TEST(HashBytesTest, SeedChangesHash) {
  EXPECT_NE(HashBytes("abc", 3, 1), HashBytes("abc", 3, 2));
}

TEST(HashBytesTest, LongInputs) {
  std::vector<char> buf(1000, 'x');
  uint64_t h1 = HashBytes(buf.data(), buf.size());
  buf[999] = 'y';
  EXPECT_NE(HashBytes(buf.data(), buf.size()), h1);
  buf[999] = 'x';
  EXPECT_EQ(HashBytes(buf.data(), buf.size()), h1);
}

TEST(HashRowKeysTest, MultiColumnKeys) {
  Schema s({ColumnDef::Int32("a"), ColumnDef::Int32("b"),
            ColumnDef::Char("c", 8)});
  std::vector<char> r1(s.row_size());
  std::vector<char> r2(s.row_size());
  s.SetInt32(r1.data(), 0, 1);
  s.SetInt32(r1.data(), 1, 2);
  s.SetString(r1.data(), 2, "hi");
  // Same composite key, different layout source → same hash.
  s.SetInt32(r2.data(), 0, 1);
  s.SetInt32(r2.data(), 1, 2);
  s.SetString(r2.data(), 2, "hi");
  EXPECT_EQ(HashRowKeys(s, r1.data(), {0, 1, 2}),
            HashRowKeys(s, r2.data(), {0, 1, 2}));
  // Swapping the values of a and b must change the composite hash.
  s.SetInt32(r2.data(), 0, 2);
  s.SetInt32(r2.data(), 1, 1);
  EXPECT_NE(HashRowKeys(s, r1.data(), {0, 1}), HashRowKeys(s, r2.data(), {0, 1}));
}

TEST(HashRowKeysTest, FloatAndInt64Keys) {
  Schema s({ColumnDef::Float64("f"), ColumnDef::Int64("i")});
  std::vector<char> row(s.row_size());
  s.SetFloat64(row.data(), 0, 1.5);
  s.SetInt64(row.data(), 1, 99);
  uint64_t h = HashRowKeys(s, row.data(), {0, 1});
  s.SetFloat64(row.data(), 0, 1.6);
  EXPECT_NE(HashRowKeys(s, row.data(), {0, 1}), h);
}

TEST(PartitionOfTest, BalancedOverSequentialKeys) {
  Schema s({ColumnDef::Int32("k")});
  std::vector<char> row(s.row_size());
  std::map<int, int> counts;
  const int kN = 10000;
  const int kParts = 8;
  for (int i = 0; i < kN; ++i) {
    s.SetInt32(row.data(), 0, i);
    counts[PartitionOf(HashRowKeys(s, row.data(), {0}), kParts)]++;
  }
  ASSERT_EQ(counts.size(), static_cast<size_t>(kParts));
  for (const auto& [p, c] : counts) {
    EXPECT_NEAR(c, kN / kParts, kN / kParts / 3) << "partition " << p;
  }
}

}  // namespace
}  // namespace claims
