#include "common/memory_tracker.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace claims {
namespace {

TEST(MemoryTrackerTest, TracksCurrentAndPeak) {
  MemoryTracker t("test");
  t.Allocate(100);
  t.Allocate(50);
  EXPECT_EQ(t.current_bytes(), 150);
  EXPECT_EQ(t.peak_bytes(), 150);
  t.Release(120);
  EXPECT_EQ(t.current_bytes(), 30);
  EXPECT_EQ(t.peak_bytes(), 150);
  t.Allocate(10);
  EXPECT_EQ(t.peak_bytes(), 150);
}

TEST(MemoryTrackerTest, Reset) {
  MemoryTracker t("test");
  t.Allocate(77);
  t.Reset();
  EXPECT_EQ(t.current_bytes(), 0);
  EXPECT_EQ(t.peak_bytes(), 0);
}

TEST(MemoryTrackerTest, ConcurrentPeakIsAtLeastSteadyState) {
  MemoryTracker t("test");
  const int kThreads = 8;
  const int kIters = 2000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t] {
      for (int j = 0; j < kIters; ++j) {
        t.Allocate(10);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.current_bytes(), kThreads * kIters * 10);
  EXPECT_EQ(t.peak_bytes(), kThreads * kIters * 10);
}

}  // namespace
}  // namespace claims
