#include "core/scheduler.h"

#include <gtest/gtest.h>

#include <cmath>

namespace claims {
namespace {

constexpr int64_t kSec = 1'000'000'000;

class FakeClock : public Clock {
 public:
  int64_t NowNanos() const override { return now_; }
  void Advance(int64_t ns) { now_ += ns; }

 private:
  int64_t now_ = 0;
};

/// Scriptable segment: the test advances its counters to fake a workload.
class FakeSegment : public SchedulableSegment {
 public:
  FakeSegment(std::string name, int parallelism)
      : name_(std::move(name)), parallelism_(parallelism), scalability_(24) {}

  const std::string& name() const override { return name_; }
  bool active() const override { return active_; }
  int parallelism() const override { return parallelism_; }
  SegmentStats* stats() override { return &stats_; }
  ScalabilityVector* scalability() override { return &scalability_; }
  bool Expand(int) override {
    if (!expand_ok_) return false;
    ++parallelism_;
    ++expand_calls_;
    return true;
  }
  bool Shrink() override {
    if (parallelism_ <= 1) return false;
    --parallelism_;
    ++shrink_calls_;
    return true;
  }

  /// Advances counters as if the segment processed for `dt_ns` at
  /// `tuples_per_sec`, spending the given blocked fractions (per worker).
  void Work(int64_t dt_ns, double tuples_per_sec, double blocked_in = 0,
            double blocked_out = 0) {
    stats_.input_tuples.fetch_add(
        static_cast<int64_t>(tuples_per_sec * dt_ns / 1e9));
    stats_.blocked_input_ns.fetch_add(
        static_cast<int64_t>(blocked_in * dt_ns * parallelism_));
    stats_.blocked_output_ns.fetch_add(
        static_cast<int64_t>(blocked_out * dt_ns * parallelism_));
  }

  std::string name_;
  int parallelism_;
  bool active_ = true;
  bool expand_ok_ = true;  ///< scripted Expand refusal (finished / at max)
  int expand_calls_ = 0;
  int shrink_calls_ = 0;
  SegmentStats stats_;
  ScalabilityVector scalability_;
};

SchedulerOptions TestOptions(int cores) {
  SchedulerOptions o;
  o.num_cores = cores;
  return o;
}

TEST(GlobalThroughputBoardTest, MinOverNodes) {
  GlobalThroughputBoard board;
  EXPECT_TRUE(std::isinf(board.GlobalLambda()));
  board.PublishLocal(0, 100.0);
  board.PublishLocal(1, 50.0);
  EXPECT_DOUBLE_EQ(board.GlobalLambda(), 50.0);
  board.PublishLocal(1, 200.0);
  EXPECT_DOUBLE_EQ(board.GlobalLambda(), 100.0);
  board.ClearNode(0);
  EXPECT_DOUBLE_EQ(board.GlobalLambda(), 200.0);
  board.Reset();
  EXPECT_TRUE(std::isinf(board.GlobalLambda()));
}

TEST(DynamicSchedulerTest, ExpandsBottleneckWithFreeCores) {
  FakeClock clock;
  GlobalThroughputBoard board;
  DynamicScheduler sched(0, TestOptions(8), &clock, &board);
  FakeSegment seg("s1", 1);
  sched.AddSegment(&seg);
  sched.Tick();  // prime
  clock.Advance(kSec);
  seg.Work(kSec, 1000.0);
  auto actions = sched.Tick();
  // Up to max_free_expansions (default 2) free-pool cores per tick.
  ASSERT_GE(actions.size(), 1u);
  ASSERT_LE(actions.size(),
            static_cast<size_t>(sched.options().max_free_expansions));
  EXPECT_EQ(actions[0].kind, SchedulerAction::Kind::kExpandFree);
  EXPECT_EQ(seg.parallelism(), 1 + static_cast<int>(actions.size()));
}

TEST(DynamicSchedulerTest, MovesCoreFromOverToUnderPerformer) {
  FakeClock clock;
  GlobalThroughputBoard board;
  DynamicScheduler sched(0, TestOptions(8), &clock, &board);
  FakeSegment slow("slow", 4);   // R = 100
  FakeSegment fast("fast", 4);   // R = 1000 — clear over-performer
  sched.AddSegment(&slow);
  sched.AddSegment(&fast);
  sched.Tick();
  // Build trustworthy scalability history at several parallelism levels.
  for (int i = 0; i < 3; ++i) {
    clock.Advance(kSec);
    slow.Work(kSec, 100.0);
    fast.Work(kSec, 1000.0);
    auto actions = sched.Tick();
    if (!actions.empty()) {
      EXPECT_EQ(actions[0].kind, SchedulerAction::Kind::kMovePair);
      EXPECT_EQ(actions[0].expanded, "slow");
      EXPECT_EQ(actions[0].shrunk, "fast");
      break;
    }
  }
  EXPECT_GE(slow.expand_calls_, 1);
  EXPECT_GE(fast.shrink_calls_, 1);
}

TEST(DynamicSchedulerTest, AbortedPairMoveReExpandsDonor) {
  // Regression: receiver Expand failing after the donor's Shrink succeeded
  // used to leak the core (donor down a worker, receiver unchanged, free
  // pool unaware) and still counted a shrink. The donor must get the core
  // back and no kMovePair action may be reported.
  FakeClock clock;
  GlobalThroughputBoard board;
  DynamicScheduler sched(0, TestOptions(8), &clock, &board);
  FakeSegment slow("slow", 4);
  FakeSegment fast("fast", 4);
  slow.expand_ok_ = false;  // receiver refuses (e.g. finished between ticks)
  sched.AddSegment(&slow);
  sched.AddSegment(&fast);
  sched.Tick();
  for (int i = 0; i < 3; ++i) {
    clock.Advance(kSec);
    slow.Work(kSec, 100.0);
    fast.Work(kSec, 1000.0);
    auto actions = sched.Tick();
    for (const auto& a : actions) {
      EXPECT_NE(a.kind, SchedulerAction::Kind::kMovePair);
    }
  }
  // Compensation restored every shrink the aborted moves took from the donor.
  EXPECT_EQ(fast.parallelism(), 4);
  EXPECT_EQ(fast.shrink_calls_, fast.expand_calls_);
  EXPECT_EQ(slow.parallelism(), 4);
}

TEST(DynamicSchedulerTest, ShrinksStarvedSegment) {
  FakeClock clock;
  GlobalThroughputBoard board;
  DynamicScheduler sched(0, TestOptions(8), &clock, &board);
  FakeSegment producer("producer", 4);
  FakeSegment starved("starved", 4);
  sched.AddSegment(&producer);
  sched.AddSegment(&starved);
  sched.Tick();
  clock.Advance(kSec);
  producer.Work(kSec, 500.0);
  starved.Work(kSec, 1.0, /*blocked_in=*/0.9);  // waiting on input 90% of time
  auto actions = sched.Tick();
  bool saw_starved_shrink = false;
  for (const auto& a : actions) {
    if (a.kind == SchedulerAction::Kind::kShrinkStarved && a.shrunk == "starved")
      saw_starved_shrink = true;
  }
  EXPECT_TRUE(saw_starved_shrink);
  EXPECT_EQ(starved.parallelism(), 3);
}

TEST(DynamicSchedulerTest, ShrinksOverproducingSegment) {
  FakeClock clock;
  GlobalThroughputBoard board;
  DynamicScheduler sched(0, TestOptions(8), &clock, &board);
  FakeSegment normal("normal", 4);
  FakeSegment overprod("overprod", 4);
  sched.AddSegment(&normal);
  sched.AddSegment(&overprod);
  sched.Tick();
  clock.Advance(kSec);
  normal.Work(kSec, 500.0);
  overprod.Work(kSec, 400.0, /*blocked_in=*/0, /*blocked_out=*/0.8);
  auto actions = sched.Tick();
  bool saw = false;
  for (const auto& a : actions) {
    if (a.kind == SchedulerAction::Kind::kShrinkOverproducing &&
        a.shrunk == "overprod") {
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
}

TEST(DynamicSchedulerTest, BlockedRateNotRecordedInScalabilityVector) {
  FakeClock clock;
  GlobalThroughputBoard board;
  DynamicScheduler sched(0, TestOptions(8), &clock, &board);
  FakeSegment seg("s", 2);
  sched.AddSegment(&seg);
  sched.Tick();
  clock.Advance(kSec);
  seg.Work(kSec, 100.0, /*blocked_in=*/0.9);
  sched.Tick();
  // Under-estimated measurement (starved) must not pollute the vector (§4.4).
  EXPECT_FALSE(seg.scalability()->Raw(2).has_value());
  clock.Advance(kSec);
  seg.Work(kSec, 100.0);
  sched.Tick();
  EXPECT_TRUE(seg.scalability()->Raw(seg.parallelism() == 2 ? 2 : 3).has_value() ||
              seg.scalability()->Raw(2).has_value());
}

TEST(DynamicSchedulerTest, InactiveSegmentIgnored) {
  FakeClock clock;
  GlobalThroughputBoard board;
  DynamicScheduler sched(0, TestOptions(8), &clock, &board);
  FakeSegment seg("s", 2);
  seg.active_ = false;
  sched.AddSegment(&seg);
  sched.Tick();
  clock.Advance(kSec);
  auto actions = sched.Tick();
  EXPECT_TRUE(actions.empty());
  EXPECT_EQ(sched.cores_in_use(), 0);
}

TEST(DynamicSchedulerTest, RespectsCoreBudget) {
  FakeClock clock;
  GlobalThroughputBoard board;
  DynamicScheduler sched(0, TestOptions(4), &clock, &board);
  FakeSegment seg("s", 4);  // already uses every core
  sched.AddSegment(&seg);
  sched.Tick();
  clock.Advance(kSec);
  seg.Work(kSec, 1000.0);
  auto actions = sched.Tick();
  // Only one segment: no pair partner, no free cores → no expansion.
  EXPECT_EQ(seg.parallelism(), 4);
  for (const auto& a : actions) {
    EXPECT_NE(a.kind, SchedulerAction::Kind::kExpandFree);
  }
}

TEST(DynamicSchedulerTest, NormalizedRateUsesVisitRate) {
  FakeClock clock;
  GlobalThroughputBoard board;
  DynamicScheduler sched(0, TestOptions(8), &clock, &board);
  FakeSegment seg("s", 2);
  seg.stats_.visit_rate.store(0.5);  // half the source tuples reach it
  sched.AddSegment(&seg);
  sched.Tick();
  clock.Advance(kSec);
  seg.Work(kSec, 100.0);
  sched.Tick();
  // R = T / V = 100 / 0.5.
  EXPECT_NEAR(sched.NormalizedRate(&seg), 200.0, 1.0);
}

TEST(DynamicSchedulerTest, PublishesLocalLambda) {
  FakeClock clock;
  GlobalThroughputBoard board;
  DynamicScheduler sched0(0, TestOptions(8), &clock, &board);
  DynamicScheduler sched1(1, TestOptions(8), &clock, &board);
  FakeSegment a("a", 2);
  FakeSegment b("b", 2);
  sched0.AddSegment(&a);
  sched1.AddSegment(&b);
  sched0.Tick();
  sched1.Tick();
  clock.Advance(kSec);
  a.Work(kSec, 300.0);
  b.Work(kSec, 120.0);
  sched0.Tick();
  sched1.Tick();
  // Global λ is node 1's 120 t/s.
  EXPECT_NEAR(board.GlobalLambda(), 120.0, 1.0);
}

TEST(DynamicSchedulerTest, SnapshotReflectsTicksLambdaAndSegments) {
  FakeClock clock;
  GlobalThroughputBoard board;
  DynamicScheduler sched(3, TestOptions(8), &clock, &board);

  // Before any tick: empty but well-formed.
  SchedulerSnapshot snap = sched.Snapshot();
  EXPECT_EQ(snap.node_id, 3);
  EXPECT_EQ(snap.num_cores, 8);
  EXPECT_EQ(snap.ticks, 0);
  EXPECT_EQ(snap.last_tick_ns, 0);
  EXPECT_EQ(snap.last_global_lambda, -1.0);  // no λ published yet
  EXPECT_TRUE(snap.segments.empty());

  FakeSegment seg("probe", 2);
  sched.AddSegment(&seg);
  sched.Tick();  // prime
  clock.Advance(kSec);
  seg.Work(kSec, 500.0);
  sched.Tick();

  snap = sched.Snapshot();
  EXPECT_EQ(snap.ticks, 2);
  EXPECT_EQ(sched.tick_count(), 2);
  EXPECT_EQ(snap.last_tick_ns, clock.NowNanos());
  EXPECT_NEAR(snap.last_global_lambda, 500.0, 1.0);
  EXPECT_NEAR(snap.last_lambda_local, 500.0, 1.0);
  ASSERT_EQ(snap.segments.size(), 1u);
  EXPECT_EQ(snap.segments[0].name, "probe");
  EXPECT_TRUE(snap.segments[0].active);
  EXPECT_TRUE(snap.segments[0].has_sample);
  EXPECT_NEAR(snap.segments[0].rate, 500.0, 1.0);
  EXPECT_GE(snap.segments[0].parallelism, 2);
  EXPECT_EQ(snap.cores_in_use, snap.segments[0].parallelism);
}

}  // namespace
}  // namespace claims
