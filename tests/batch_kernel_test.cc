// Batch-kernel equivalence suite: the selection-vector kernels compiled by
// exec/expr/batch_expr.* must be *exactly* equivalent to the scalar
// Expr::Eval path — same survivors in the same order, bit-identical doubles,
// byte-identical materialized rows, byte-identical operator output. Random
// schemas / blocks / predicate trees are generated from fixed seeds so every
// failure is reproducible; uncompilable shapes (CASE) are mixed in to verify
// the per-node scalar fallback keeps the equivalence.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "exec/expr/batch_expr.h"
#include "exec/expr/expr.h"
#include "exec/ops/filter.h"
#include "exec/ops/hash_agg.h"
#include "exec/ops/hash_join.h"
#include "storage/block.h"
#include "storage/types.h"

namespace claims {
namespace {

/// Forces a kernel mode for one scope (iterators cache the mode at
/// construction, so the guard must cover operator construction too).
class KernelModeGuard {
 public:
  explicit KernelModeGuard(KernelMode m) : saved_(CurrentKernelMode()) {
    SetKernelMode(m);
  }
  ~KernelModeGuard() { SetKernelMode(saved_); }

 private:
  KernelMode saved_;
};

struct Gen {
  std::mt19937 rng;
  explicit Gen(uint32_t seed) : rng(seed) {}
  int I(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  }
  bool B(double p = 0.5) {
    return std::uniform_real_distribution<double>(0, 1)(rng) < p;
  }
};

// Small value domains so equality predicates and IN lists actually hit.
const char* kStrings[] = {"", "a", "ab", "abc", "ba", "b", "zz"};
const char* kPatterns[] = {"a%", "%b", "%a%", "a_", "%", "z%"};

Value RandomValueFor(Gen& g, const ColumnDef& col) {
  switch (col.type) {
    case DataType::kInt32:
      return Value::Int32(g.I(-4, 4));
    case DataType::kInt64:
      return Value::Int64(g.I(-4, 4));
    case DataType::kFloat64:
      return Value::Float64(g.I(-8, 8) / 2.0);
    case DataType::kDate:
      // 1995-01-01 .. ~1999: spans year boundaries for YEAR() predicates.
      return Value::Date(DaysFromCivil(1995, 1, 1) + g.I(0, 1500));
    case DataType::kChar:
      return Value::String(kStrings[g.I(0, 6)]);
  }
  return Value::Int64(0);
}

Schema RandomSchema(Gen& g) {
  int n = g.I(2, 6);
  std::vector<ColumnDef> cols;
  for (int i = 0; i < n; ++i) {
    std::string name = "c" + std::to_string(i);
    switch (g.I(0, 4)) {
      case 0: cols.push_back(ColumnDef::Int32(name)); break;
      case 1: cols.push_back(ColumnDef::Int64(name)); break;
      case 2: cols.push_back(ColumnDef::Float64(name)); break;
      case 3: cols.push_back(ColumnDef::Date(name)); break;
      default: cols.push_back(ColumnDef::Char(name, 8)); break;
    }
  }
  return Schema(std::move(cols));
}

BlockPtr RandomBlock(Gen& g, const Schema& s, int rows) {
  auto b = MakeBlock(s.row_size(),
                     std::max<int32_t>(kDefaultBlockBytes,
                                       (rows + 1) * s.row_size()));
  for (int i = 0; i < rows; ++i) {
    char* row = b->AppendRow();
    for (int c = 0; c < s.num_columns(); ++c) {
      s.SetValue(row, c, RandomValueFor(g, s.column(c)));
    }
  }
  return b;
}

std::vector<int> ColumnsWhere(const Schema& s, bool (*pred)(DataType)) {
  std::vector<int> out;
  for (int c = 0; c < s.num_columns(); ++c) {
    if (pred(s.column(c).type)) out.push_back(c);
  }
  return out;
}

bool IsNumericType(DataType t) { return t != DataType::kChar; }
bool IsCharType(DataType t) { return t == DataType::kChar; }
bool IsDateType(DataType t) { return t == DataType::kDate; }

ExprPtr ColRef(const Schema& s, int c) {
  return MakeColumnRef(c, s.column(c).type, s.column(c).name);
}

CompareOp RandomCmp(Gen& g) { return static_cast<CompareOp>(g.I(0, 5)); }

/// An opaque boolean leaf: CASE WHEN col >= lit THEN 1 ELSE 0 END. Its Shape
/// is kOpaque, so the batch compiler must emit a scalar-fallback node.
ExprPtr OpaqueLeaf(Gen& g, const Schema& s) {
  auto numeric = ColumnsWhere(s, IsNumericType);
  int c = numeric.empty() ? 0 : numeric[g.I(0, numeric.size() - 1)];
  ExprPtr cond = MakeCompare(CompareOp::kGe, ColRef(s, c),
                             MakeLiteral(RandomValueFor(g, s.column(c))));
  std::vector<std::pair<ExprPtr, ExprPtr>> branches;
  branches.emplace_back(std::move(cond), MakeLiteral(Value::Int64(1)));
  return MakeCase(std::move(branches), MakeLiteral(Value::Int64(0)));
}

ExprPtr RandomLeaf(Gen& g, const Schema& s, bool allow_opaque) {
  if (allow_opaque && g.B(0.15)) return OpaqueLeaf(g, s);
  int c = g.I(0, s.num_columns() - 1);
  const ColumnDef& col = s.column(c);

  if (col.type == DataType::kChar) {
    switch (g.I(0, 3)) {
      case 0:
        return MakeLike(ColRef(s, c), kPatterns[g.I(0, 5)], g.B(0.3));
      case 1: {
        std::vector<Value> vals;
        for (int i = g.I(1, 3); i >= 0; --i) {
          vals.push_back(Value::String(kStrings[g.I(0, 6)]));
        }
        return MakeInList(ColRef(s, c), std::move(vals), g.B(0.3));
      }
      case 2: {
        auto chars = ColumnsWhere(s, IsCharType);
        int other = chars[g.I(0, chars.size() - 1)];
        return MakeCompare(RandomCmp(g), ColRef(s, c), ColRef(s, other));
      }
      default:
        return MakeCompare(RandomCmp(g), ColRef(s, c),
                           MakeLiteral(Value::String(kStrings[g.I(0, 6)])));
    }
  }

  if (col.type == DataType::kDate && g.B(0.5)) {
    // YEAR(date) CMP year-literal — compiled to a day-range test.
    return MakeCompare(RandomCmp(g), MakeYear(ColRef(s, c)),
                       MakeLiteral(Value::Int32(g.I(1994, 2000))));
  }

  switch (g.I(0, 3)) {
    case 0: {
      auto numeric = ColumnsWhere(s, IsNumericType);
      int other = numeric[g.I(0, numeric.size() - 1)];
      return MakeCompare(RandomCmp(g), ColRef(s, c), ColRef(s, other));
    }
    case 1: {
      std::vector<Value> vals;
      for (int i = g.I(1, 3); i >= 0; --i) {
        // Occasionally mix a float into an int list — the compiler must fall
        // back to the scalar node for that leaf, keeping equivalence.
        vals.push_back(g.B(0.2) ? Value::Float64(g.I(-8, 8) / 2.0)
                                : Value::Int64(g.I(-4, 4)));
      }
      return MakeInList(ColRef(s, c), std::move(vals), g.B(0.3));
    }
    case 2:
      return MakeCompare(RandomCmp(g), ColRef(s, c),
                         MakeLiteral(g.B(0.3) ? Value::Float64(g.I(-8, 8) / 2.0)
                                              : Value::Int64(g.I(-4, 4))));
    default:
      // Literal on the left: the compiler normalizes by flipping the compare.
      return MakeCompare(RandomCmp(g),
                         MakeLiteral(RandomValueFor(g, s.column(c))),
                         ColRef(s, c));
  }
}

ExprPtr RandomPredicate(Gen& g, const Schema& s, int depth, bool allow_opaque) {
  if (depth > 0 && g.B(0.6)) {
    if (g.B(0.25)) return MakeNot(RandomPredicate(g, s, depth - 1,
                                                  allow_opaque));
    return MakeLogic(g.B() ? LogicOp::kAnd : LogicOp::kOr,
                     RandomPredicate(g, s, depth - 1, allow_opaque),
                     RandomPredicate(g, s, depth - 1, allow_opaque));
  }
  return RandomLeaf(g, s, allow_opaque);
}

/// Reference implementation: row-at-a-time EvalBool over the selection.
std::vector<int32_t> ScalarSelect(const Expr& pred, const Schema& s,
                                  const Block& b, const int32_t* sel,
                                  int32_t n) {
  std::vector<int32_t> out;
  for (int32_t i = 0; i < n; ++i) {
    int32_t r = sel != nullptr ? sel[i] : i;
    if (pred.EvalBool(s, b.RowAt(r))) out.push_back(r);
  }
  return out;
}

void ExpectSameSelection(const std::vector<int32_t>& expect,
                         const int32_t* got, int32_t got_n,
                         const std::string& what) {
  ASSERT_EQ(static_cast<size_t>(got_n), expect.size()) << what;
  for (int32_t i = 0; i < got_n; ++i) {
    ASSERT_EQ(got[i], expect[i]) << what << " at survivor " << i;
  }
}

// --- BatchPredicate property tests ----------------------------------------------

TEST(BatchPredicateProperty, MatchesScalarOnRandomTrees) {
  for (uint32_t seed = 0; seed < 80; ++seed) {
    Gen g(seed);
    Schema s = RandomSchema(g);
    BlockPtr b = RandomBlock(g, s, g.I(0, 300));
    const bool allow_opaque = seed % 4 == 0;
    ExprPtr pred = RandomPredicate(g, s, 3, allow_opaque);
    auto bp = BatchPredicate::Compile(s, pred);
    ASSERT_NE(bp, nullptr);
    const int32_t n = b->num_rows();
    std::string what = "seed " + std::to_string(seed) + " pred " +
                       pred->ToString();

    // Dense (sel == nullptr): full block.
    std::vector<int32_t> out(static_cast<size_t>(n) + 1);
    int32_t k = bp->FilterBlock(*b, nullptr, n, out.data());
    ExpectSameSelection(ScalarSelect(*pred, s, *b, nullptr, n), out.data(), k,
                        what + " [dense]");

    // Sparse random subset, filtered *in place* (out aliases sel) — the
    // aliasing contract every AND chain relies on.
    std::vector<int32_t> sel;
    for (int32_t i = 0; i < n; ++i) {
      if (g.B(0.5)) sel.push_back(i);
    }
    auto expect = ScalarSelect(*pred, s, *b, sel.data(),
                               static_cast<int32_t>(sel.size()));
    sel.reserve(sel.size() + 1);  // keep data() valid for empty selections
    int32_t k2 = bp->FilterBlock(*b, sel.data(),
                                 static_cast<int32_t>(sel.size()), sel.data());
    ExpectSameSelection(expect, sel.data(), k2, what + " [sparse in-place]");
  }
}

TEST(BatchPredicateEdge, EmptyFullSingleRowAllFalse) {
  Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
  auto b = MakeBlock(s.row_size());
  for (int i = 0; i < 100; ++i) {
    char* row = b->AppendRow();
    s.SetInt32(row, 0, i % 10);
    s.SetInt64(row, 1, i);
  }
  ExprPtr all_true = MakeCompare(CompareOp::kGe, ColRef(s, 0),
                                 MakeLiteral(Value::Int32(0)));
  ExprPtr all_false = MakeCompare(CompareOp::kEq, ColRef(s, 0),
                                  MakeLiteral(Value::Int32(99)));
  auto bp_true = BatchPredicate::Compile(s, all_true);
  auto bp_false = BatchPredicate::Compile(s, all_false);
  std::vector<int32_t> out(101);

  // Empty input selection.
  EXPECT_EQ(bp_true->FilterBlock(*b, nullptr, 0, out.data()), 0);

  // Full block, everything passes: identity selection.
  int32_t k = bp_true->FilterBlock(*b, nullptr, 100, out.data());
  ASSERT_EQ(k, 100);
  for (int32_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], i);

  // All-false: zero survivors.
  EXPECT_EQ(bp_false->FilterBlock(*b, nullptr, 100, out.data()), 0);

  // Single-row selections, both outcomes.
  int32_t one = 42;
  EXPECT_EQ(bp_true->FilterBlock(*b, &one, 1, out.data()), 1);
  EXPECT_EQ(out[0], 42);
  EXPECT_EQ(bp_false->FilterBlock(*b, &one, 1, out.data()), 0);
}

TEST(BatchPredicateEdge, FullyCompiledFlagAndCaseFallback) {
  Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
  ExprPtr compiled = MakeLogic(
      LogicOp::kOr,
      MakeLogic(LogicOp::kAnd,
                MakeCompare(CompareOp::kLt, ColRef(s, 0),
                            MakeLiteral(Value::Int32(3))),
                MakeCompare(CompareOp::kGe, ColRef(s, 1),
                            MakeLiteral(Value::Int64(10)))),
      MakeInList(ColRef(s, 0), {Value::Int64(7), Value::Int64(8)}, false));
  EXPECT_TRUE(BatchPredicate::Compile(s, compiled)->fully_compiled());

  std::vector<std::pair<ExprPtr, ExprPtr>> branches;
  branches.emplace_back(MakeCompare(CompareOp::kLt, ColRef(s, 0),
                                    MakeLiteral(Value::Int32(5))),
                        MakeLiteral(Value::Int64(1)));
  ExprPtr opaque = MakeLogic(LogicOp::kAnd,
                             MakeCase(std::move(branches),
                                      MakeLiteral(Value::Int64(0))),
                             MakeCompare(CompareOp::kGe, ColRef(s, 1),
                                         MakeLiteral(Value::Int64(0))));
  auto bp = BatchPredicate::Compile(s, opaque);
  EXPECT_FALSE(bp->fully_compiled());

  // The fallback still produces the scalar selection exactly.
  auto b = MakeBlock(s.row_size());
  for (int i = 0; i < 50; ++i) {
    char* row = b->AppendRow();
    s.SetInt32(row, 0, i % 10);
    s.SetInt64(row, 1, i - 25);
  }
  std::vector<int32_t> out(51);
  int32_t k = bp->FilterBlock(*b, nullptr, 50, out.data());
  ExpectSameSelection(ScalarSelect(*opaque, s, *b, nullptr, 50), out.data(), k,
                      "case fallback");
}

// --- BatchCompute property tests ------------------------------------------------

ExprPtr RandomNumericExpr(Gen& g, const Schema& s, int depth) {
  if (depth > 0 && g.B(0.55)) {
    return MakeArith(static_cast<ArithOp>(g.I(0, 3)),
                     RandomNumericExpr(g, s, depth - 1),
                     RandomNumericExpr(g, s, depth - 1));
  }
  auto numeric = ColumnsWhere(s, IsNumericType);
  auto dates = ColumnsWhere(s, IsDateType);
  switch (g.I(0, 3)) {
    case 0:
      return MakeLiteral(Value::Int64(g.I(-4, 4)));
    case 1:
      return MakeLiteral(Value::Float64(g.I(-8, 8) / 2.0));
    case 2:
      if (!dates.empty()) {
        return MakeYear(ColRef(s, dates[g.I(0, dates.size() - 1)]));
      }
      [[fallthrough]];
    default:
      if (numeric.empty()) return MakeLiteral(Value::Int64(1));
      return ColRef(s, numeric[g.I(0, numeric.size() - 1)]);
  }
}

TEST(BatchComputeProperty, EvalDoubleMatchesScalarBitIdentical) {
  for (uint32_t seed = 100; seed < 160; ++seed) {
    Gen g(seed);
    Schema s = RandomSchema(g);
    BlockPtr b = RandomBlock(g, s, g.I(1, 200));
    ExprPtr expr = RandomNumericExpr(g, s, 3);
    auto bc = BatchCompute::Compile(s, expr);
    ASSERT_NE(bc, nullptr);
    const int32_t n = b->num_rows();
    std::string what = "seed " + std::to_string(seed) + " expr " +
                       expr->ToString();

    std::vector<double> got(n);
    bc->EvalDouble(*b, nullptr, n, got.data());
    for (int32_t i = 0; i < n; ++i) {
      double want = expr->Eval(s, b->RowAt(i)).ToDouble();
      ASSERT_EQ(got[i], want) << what << " row " << i;  // exact, not NEAR
    }

    // Sparse selection.
    std::vector<int32_t> sel;
    for (int32_t i = 0; i < n; ++i) {
      if (g.B(0.4)) sel.push_back(i);
    }
    std::vector<double> got2(sel.size() + 1);
    bc->EvalDouble(*b, sel.data(), static_cast<int32_t>(sel.size()),
                   got2.data());
    for (size_t i = 0; i < sel.size(); ++i) {
      double want = expr->Eval(s, b->RowAt(sel[i])).ToDouble();
      ASSERT_EQ(got2[i], want) << what << " sparse row " << sel[i];
    }
  }
}

TEST(BatchComputeProperty, MaterializeMatchesSetValueByteIdentical) {
  for (uint32_t seed = 200; seed < 260; ++seed) {
    Gen g(seed);
    Schema s = RandomSchema(g);
    BlockPtr b = RandomBlock(g, s, g.I(1, 200));
    const int32_t n = b->num_rows();

    // Expression pool: bare columns of every type (the strided-copy fast
    // path, including CHAR), YEAR(), and a computed arith tree.
    std::vector<ExprPtr> exprs;
    for (int c = 0; c < s.num_columns(); ++c) exprs.push_back(ColRef(s, c));
    auto dates = ColumnsWhere(s, IsDateType);
    if (!dates.empty()) exprs.push_back(MakeYear(ColRef(s, dates[0])));
    exprs.push_back(RandomNumericExpr(g, s, 2));

    for (const ExprPtr& expr : exprs) {
      int32_t width = 0;
      if (expr->type() == DataType::kChar) {
        width = s.column(AsColumnRef(*expr)).char_width;
      }
      // out_col = 1 so non-zero in-row offsets are exercised.
      Schema out({ColumnDef::Int32("pad"),
                  ColumnDef{"x", expr->type(), width}});
      auto bc = BatchCompute::Compile(s, expr);
      const size_t bytes = static_cast<size_t>(out.row_size()) * n;
      std::vector<char> got(bytes, 0);
      std::vector<char> want(bytes, 0);
      bc->Materialize(*b, nullptr, n, out, 1, got.data());
      for (int32_t i = 0; i < n; ++i) {
        out.SetValue(want.data() + static_cast<size_t>(i) * out.row_size(), 1,
                     expr->Eval(s, b->RowAt(i)));
      }
      ASSERT_EQ(std::memcmp(got.data(), want.data(), bytes), 0)
          << "seed " << seed << " expr " << expr->ToString();
    }
  }
}

// --- Whole-operator equivalence: scalar mode vs batch mode ----------------------

/// Replays a fixed list of blocks; thread-safe like a stage beginner.
class BlocksIterator : public Iterator {
 public:
  explicit BlocksIterator(std::vector<BlockPtr> blocks)
      : blocks_(std::move(blocks)) {}

  NextResult Open(WorkerContext*) override { return NextResult::kSuccess; }
  NextResult Next(WorkerContext*, BlockPtr* out) override {
    size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= blocks_.size()) return NextResult::kEndOfFile;
    *out = std::make_shared<Block>(*blocks_[i]);
    return NextResult::kSuccess;
  }
  void Close() override {}

 private:
  std::vector<BlockPtr> blocks_;
  std::atomic<size_t> cursor_{0};
};

std::vector<BlockPtr> RandomBlocks(Gen& g, const Schema& s, int nblocks) {
  std::vector<BlockPtr> blocks;
  for (int i = 0; i < nblocks; ++i) {
    BlockPtr b = RandomBlock(g, s, g.I(0, 200));
    b->set_sequence_number(static_cast<uint64_t>(i));
    b->set_visit_rate(1.0);
    blocks.push_back(std::move(b));
  }
  return blocks;
}

/// Drains `it` with one worker, returning every emitted block as
/// (sequence number, raw row bytes) — empty watermark blocks included.
std::vector<std::pair<uint64_t, std::string>> DrainBlocks(Iterator* it) {
  WorkerContext ctx;
  EXPECT_EQ(it->Open(&ctx), NextResult::kSuccess);
  std::vector<std::pair<uint64_t, std::string>> out;
  BlockPtr b;
  while (it->Next(&ctx, &b) == NextResult::kSuccess) {
    out.emplace_back(b->sequence_number(),
                     std::string(b->RowAt(0), b->payload_bytes()));
  }
  it->Close();
  return out;
}

TEST(OperatorEquivalence, FilterScalarVsBatchByteIdentical) {
  Gen g(7);
  Schema s = RandomSchema(g);
  auto blocks = RandomBlocks(g, s, 6);
  ExprPtr pred = RandomPredicate(g, s, 3, /*allow_opaque=*/true);

  auto run = [&](KernelMode m) {
    KernelModeGuard guard(m);
    FilterIterator f(std::make_unique<BlocksIterator>(blocks), &s, pred);
    return DrainBlocks(&f);
  };
  auto batch = run(KernelMode::kBatch);
  auto scalar = run(KernelMode::kScalar);
  EXPECT_EQ(batch, scalar) << "pred " << pred->ToString();
  EXPECT_EQ(batch.size(), blocks.size());  // every block emitted, even empty
}

TEST(OperatorEquivalence, HashJoinScalarVsBatchByteIdentical) {
  Gen g(11);
  Schema bs({ColumnDef::Int32("k"), ColumnDef::Char("tag", 8)});
  Schema ps({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
  std::vector<BlockPtr> build = RandomBlocks(g, bs, 3);
  std::vector<BlockPtr> probe = RandomBlocks(g, ps, 4);

  HashJoinIterator::Spec spec;
  spec.build_schema = &bs;
  spec.probe_schema = &ps;
  spec.build_keys = {0};
  spec.probe_keys = {0};

  auto run = [&](KernelMode m) {
    KernelModeGuard guard(m);
    HashJoinIterator join(std::make_unique<BlocksIterator>(build),
                          std::make_unique<BlocksIterator>(probe), spec);
    return DrainBlocks(&join);
  };
  // Single worker: identical insert order on both paths, so the chain order
  // — and therefore the emitted bytes — must match exactly.
  EXPECT_EQ(run(KernelMode::kBatch), run(KernelMode::kScalar));
}

TEST(OperatorEquivalence, HashAggScalarVsBatchSameGroups) {
  Gen g(13);
  Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v"),
            ColumnDef::Float64("f"), ColumnDef::Char("tag", 8),
            ColumnDef::Date("d")});
  auto blocks = RandomBlocks(g, s, 5);

  HashAggIterator::Spec spec;
  spec.input_schema = &s;
  spec.group_exprs = {ColRef(s, 0), ColRef(s, 3), MakeYear(ColRef(s, 4))};
  spec.group_names = {"k", "tag", "y"};
  spec.aggregates = {
      {AggFn::kSum, ColRef(s, 1), "sum_v"},
      {AggFn::kCount, nullptr, "cnt"},
      {AggFn::kAvg, ColRef(s, 2), "avg_f"},
      {AggFn::kMin, MakeArith(ArithOp::kAdd, ColRef(s, 1), ColRef(s, 2)), "min_vf"},
      {AggFn::kMax, ColRef(s, 1), "max_v"},
  };
  spec.mode = HashAggIterator::Mode::kShared;

  auto run = [&](KernelMode m) {
    KernelModeGuard guard(m);
    HashAggIterator agg(std::make_unique<BlocksIterator>(blocks), spec);
    const Schema out = agg.output_schema();
    WorkerContext ctx;
    EXPECT_EQ(agg.Open(&ctx), NextResult::kSuccess);
    std::vector<std::string> rows;
    BlockPtr b;
    while (agg.Next(&ctx, &b) == NextResult::kSuccess) {
      for (int r = 0; r < b->num_rows(); ++r) {
        rows.emplace_back(b->RowAt(r), out.row_size());
      }
    }
    agg.Close();
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  auto batch = run(KernelMode::kBatch);
  auto scalar = run(KernelMode::kScalar);
  EXPECT_FALSE(batch.empty());
  EXPECT_EQ(batch, scalar);
}

}  // namespace
}  // namespace claims
