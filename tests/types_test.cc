#include "storage/types.h"

#include <gtest/gtest.h>

namespace claims {
namespace {

TEST(TypesTest, Widths) {
  EXPECT_EQ(TypeWidth(DataType::kInt32, 0), 4);
  EXPECT_EQ(TypeWidth(DataType::kInt64, 0), 8);
  EXPECT_EQ(TypeWidth(DataType::kFloat64, 0), 8);
  EXPECT_EQ(TypeWidth(DataType::kDate, 0), 4);
  EXPECT_EQ(TypeWidth(DataType::kChar, 17), 17);
}

TEST(TypesTest, DateRoundTrip) {
  for (int y : {1970, 1992, 1998, 2010, 2026}) {
    for (int m : {1, 2, 6, 12}) {
      for (int d : {1, 15, 28}) {
        int32_t days = DaysFromCivil(y, m, d);
        int y2, m2, d2;
        CivilFromDays(days, &y2, &m2, &d2);
        EXPECT_EQ(y2, y);
        EXPECT_EQ(m2, m);
        EXPECT_EQ(d2, d);
      }
    }
  }
}

TEST(TypesTest, EpochIsZero) { EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0); }

TEST(TypesTest, KnownDates) {
  // 2010-10-30 is the paper's filter date.
  EXPECT_EQ(FormatDate(DaysFromCivil(2010, 10, 30)), "2010-10-30");
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
}

TEST(TypesTest, ParseDate) {
  auto r = ParseDate("2010-10-30");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, DaysFromCivil(2010, 10, 30));
  EXPECT_FALSE(ParseDate("2010/10/30").ok());
  EXPECT_FALSE(ParseDate("not-a-date").ok());
  EXPECT_FALSE(ParseDate("2010-13-01").ok());
  EXPECT_FALSE(ParseDate("").ok());
}

TEST(TypesTest, DateOrderingMatchesCalendar) {
  EXPECT_LT(DaysFromCivil(2010, 8, 2), DaysFromCivil(2010, 10, 30));
  EXPECT_LT(DaysFromCivil(1992, 1, 1), DaysFromCivil(1998, 8, 2));
}

}  // namespace
}  // namespace claims
