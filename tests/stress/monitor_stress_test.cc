// Introspection-plane stress: concurrent scrapers hammering /metrics,
// /queries, /scheduler, and flight-recorder dumps while queries are
// submitted, cancelled, and the service shuts down underneath them. The
// races this drives: ListQueries vs dispatch/completion (service mu_ →
// handle mu_ order), Executor::Progress vs segment teardown (live_mu_),
// Prometheus rendering vs concurrent histogram writers, ring-buffer
// overwrite vs ToChromeJson, and MonitorServer::Stop vs in-flight
// connections. Under TSan this is the test that validates the whole
// monitoring read path against the write paths it samples.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/socket_util.h"
#include "obs/metrics_registry.h"
#include "obs/timeseries/timeseries.h"
#include "obs/trace.h"
#include "wlm/introspection.h"
#include "wlm/query_service.h"

namespace claims {
namespace {

constexpr int kNodes = 2;
constexpr int kCoresPerNode = 4;

ExprPtr Col(const Schema& s, const char* name) {
  int i = s.FindColumn(name);
  EXPECT_GE(i, 0) << name;
  return MakeColumnRef(i, s.column(i).type, name);
}

class MonitorStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog;
    Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
    auto t = std::make_shared<Table>("kv", s, kNodes, std::vector<int>{});
    for (int i = 0; i < 16000; ++i) {
      t->AppendValues({Value::Int32(i % 200), Value::Int64(i)});
    }
    ASSERT_TRUE(catalog_->RegisterTable(std::move(t)).ok());
    ClusterOptions copts;
    copts.num_nodes = kNodes;
    copts.cores_per_node = kCoresPerNode;
    cluster_ = new Cluster(copts, catalog_);
  }
  static void TearDownTestSuite() {
    delete cluster_;
    delete catalog_;
    TraceCollector::Global()->ConfigureFlightRecorder(0);
    TraceCollector::Global()->Disable();
  }

  /// Scan kv → filter → gather; a few ms per run.
  static PhysicalPlan FastPlan() {
    TablePtr kv = *catalog_->GetTable("kv");
    PhysicalPlan plan;
    auto f = std::make_unique<Fragment>();
    f->id = 0;
    f->root = MakeFilterOp(
        MakeScanOp(*kv), MakeCompare(CompareOp::kLt, Col(kv->schema(), "k"),
                                     MakeLiteral(Value::Int32(100))));
    f->nodes = {0, 1};
    f->out_exchange_id = 0;
    f->partitioning = Partitioning::kToOne;
    f->consumer_nodes = {0};
    plan.result_schema = f->root->output_schema;
    plan.result_exchange_id = 0;
    plan.fragments.push_back(std::move(f));
    return plan;
  }

  static Catalog* catalog_;
  static Cluster* cluster_;
};

Catalog* MonitorStressTest::catalog_ = nullptr;
Cluster* MonitorStressTest::cluster_ = nullptr;

/// One GET against the monitor; transport failures are only acceptable once
/// `stopping` is set (the server may be mid-shutdown).
void ScrapeOnce(int port, const std::string& target,
                const std::atomic<bool>& stopping) {
  Result<std::string> raw = HttpRoundTrip("127.0.0.1", port, "GET", target);
  if (!raw.ok()) {
    EXPECT_TRUE(stopping.load()) << target << ": " << raw.status().ToString();
    return;
  }
  std::string body;
  int status = ParseHttpResponse(raw.value(), &body);
  EXPECT_EQ(status, 200) << target;
}

TEST_F(MonitorStressTest, ScrapersRaceQueriesCancellationAndShutdown) {
  QueryServiceOptions sopts;
  sopts.admission.max_concurrent = 4;
  auto service = std::make_unique<QueryService>(cluster_, sopts);

  IntrospectionOptions iopts;
  iopts.monitor.enabled = true;
  iopts.monitor.port = 0;
  iopts.flight_recorder_capacity = 4096;  // ring wraps under this workload
  iopts.enable_watchdog = true;
  iopts.watchdog.incident_dir = ::testing::TempDir();
  iopts.watchdog.stall_window_ns = 60'000'000'000;  // healthy run: no alarms
  // Time-series sampler at a stress cadence, aimed at a series that never
  // exists so the anomaly path cannot page (the incident_count()==0 check
  // below is the healthy-run invariant).
  iopts.enable_timeseries = true;
  iopts.timeseries.period_ns = 5'000'000;  // 5 ms
  iopts.timeseries.anomaly_watch = "no.such.metric";
  IntrospectionPlane plane(service.get(), iopts);
  ASSERT_TRUE(plane.Start().ok());
  const int port = plane.monitor()->port();
  ASSERT_GT(port, 0);

  constexpr int kSubmitters = 3;
  constexpr int kQueriesPerSubmitter = 24;
  constexpr int kScrapers = 4;
  std::atomic<bool> stopping{false};
  std::atomic<int> done_submitters{0};

  std::vector<std::thread> threads;
  // Submitters: a stream of fast queries, every third one cancelled from a
  // racing thread via the handle.
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kQueriesPerSubmitter; ++i) {
        SubmitOptions opts;
        opts.priority = i % 3;
        opts.label = "stress-" + std::to_string(t) + "-" + std::to_string(i);
        QueryHandlePtr h = service->Submit(FastPlan(), opts);
        if (i % 3 == 0) {
          std::thread canceller([h] { h->Cancel(); });
          canceller.join();
        }
        h->Wait();
        EXPECT_EQ(h->state(), QueryState::kDone);
      }
      done_submitters.fetch_add(1);
    });
  }
  // Scrapers: rotate over every endpoint — the timeseries JSON/text renders
  // and the dashboard race the 5 ms sampler thread appending to the rings.
  const std::string targets[] = {"/metrics",
                                 "/queries",
                                 "/scheduler",
                                 "/healthz",
                                 "/",
                                 "/timeseries",
                                 "/timeseries?format=text&window=60",
                                 "/dash"};
  constexpr int kTargets = 8;
  for (int t = 0; t < kScrapers; ++t) {
    threads.emplace_back([&, t] {
      int i = 0;
      while (done_submitters.load() < kSubmitters) {
        ScrapeOnce(port, targets[(t + i++) % kTargets], stopping);
      }
    });
  }
  // Dumper: flight-recorder snapshots racing the ring writers.
  threads.emplace_back([&] {
    while (done_submitters.load() < kSubmitters) {
      Result<std::string> raw =
          HttpRoundTrip("127.0.0.1", port, "POST", "/flight-recorder/dump");
      if (raw.ok()) {
        std::string body;
        EXPECT_EQ(ParseHttpResponse(raw.value(), &body), 200);
        EXPECT_EQ(body.find("{\"traceEvents\":["), 0u);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  // Watchdog sampling loop racing everything (its Start()ed thread also
  // polls; this adds direct PollOnce contention on the probe registry).
  threads.emplace_back([&] {
    while (done_submitters.load() < kSubmitters) {
      EXPECT_EQ(plane.watchdog()->PollOnce(), 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  for (auto& th : threads) th.join();

  // Drained: a final scrape of every endpoint still answers.
  for (const std::string& target : targets) {
    ScrapeOnce(port, target, stopping);
  }
  EXPECT_EQ(plane.watchdog()->incident_count(), 0);

  // Shutdown race: scrapers keep hitting the endpoints while the service
  // and then the plane go down. Transport errors become acceptable the
  // moment `stopping` flips; data races never are.
  std::vector<std::thread> late;
  for (int t = 0; t < 2; ++t) {
    late.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        ScrapeOnce(port, targets[(t + i) % kTargets], stopping);
      }
    });
  }
  service->Shutdown();
  stopping.store(true);
  plane.Stop();
  for (auto& th : late) th.join();
  service.reset();
}

TEST(MetricSamplerStressTest, ReadersRaceSamplerAndAnomalyIncidents) {
  // A writer thread drives SampleOnce through a deterministic collapse (20
  // warm-up samples at 100 qps, then 10 at 100000) while reader threads
  // hammer ToJson/ToText/Annotate — the ring-append vs render race plus the
  // incident callback firing mid-contention. Under TSan this is the sampler
  // counterpart of the scraper test above.
  MetricsRegistry registry;
  MetricCounter* c = registry.counter("wlm.driver.completed");
  TimeseriesOptions opts;
  opts.anomaly_watch = "wlm.driver.completed";
  MetricSampler sampler(opts, nullptr, &registry);
  std::atomic<int> incidents{0};
  sampler.SetIncidentCallback([&](const AnomalyIncident& inc) {
    incidents.fetch_add(1);
    EXPECT_FALSE(sampler.ToText(inc.series, 0).empty());
  });

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (t == 0) {
          EXPECT_EQ(sampler.ToJson("", 0).find("{\"enabled\":true"), 0u);
        } else {
          EXPECT_EQ(sampler.ToText("", 60'000'000'000).find("timeseries"), 0u);
          sampler.Annotate("stress.marker", true);
        }
      }
    });
  }

  sampler.SampleOnce();  // counter baseline
  for (int i = 0; i < 20; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    c->Add(100);
    sampler.SampleOnce();
  }
  for (int i = 0; i < 10; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    c->Add(100000);
    sampler.SampleOnce();
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  // Rates vary with real sleep jitter but the x1000 spike dwarfs it: the
  // detector must page exactly once for the sustained episode.
  EXPECT_EQ(incidents.load(), 1);
  EXPECT_EQ(registry.counter("timeseries.anomalies")->value(), 1);
}

TEST_F(MonitorStressTest, FlightRecorderReconfigureRacesWriters) {
  TraceCollector tc;
  tc.ConfigureFlightRecorder(1024);
  tc.Enable();
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tc, &stop, t] {
      int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        tc.Instant(++i, t, "stress", "w");
      }
    });
  }
  // Reader + reconfigurer racing the writers.
  for (int round = 0; round < 30; ++round) {
    std::string json = tc.ToChromeJson();
    EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
    tc.ConfigureFlightRecorder(round % 2 == 0 ? 256 : 1024);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_LE(tc.size(), 1024u);
}

}  // namespace
}  // namespace claims
