// DataBuffer stress: the order-preserving k-way merge with producers joining
// and leaving mid-stream (elastic expansion/shrink), backpressure at tiny
// capacities, and the terminated-departure pause/revive protocol. Fixed
// seeds and bounded rounds keep failures reproducible.

#include "core/data_buffer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace claims {
namespace {

BlockPtr SeqBlock(uint64_t seq) {
  auto b = MakeBlock(8, 64);
  b->AppendRow();
  b->set_sequence_number(seq);
  return b;
}

// A producer mirroring ElasticIterator::WorkerMain's contract: claim the
// next sequence number (the shared child), insert it, and depart either
// *finished* (input dry) or *terminated* (shrunk away after `quota` blocks).
void RunProducer(DataBuffer* buf, int id, std::atomic<int>* next_seq,
                 int total, int quota) {
  int produced = 0;
  while (true) {
    int seq = next_seq->fetch_add(1, std::memory_order_relaxed);
    if (seq >= total) {
      buf->RemoveProducer(id, /*finished=*/true);
      return;
    }
    ASSERT_TRUE(buf->Insert(id, SeqBlock(static_cast<uint64_t>(seq))));
    buf->AdvanceWatermark(id, static_cast<uint64_t>(seq));
    if (quota > 0 && ++produced >= quota) {
      buf->RemoveProducer(id, /*finished=*/false);
      return;
    }
  }
}

TEST(DataBufferStress, OrderedMergeSurvivesProducerChurn) {
  constexpr int kRounds = 4;
  constexpr int kTotal = 1500;
  for (int round = 0; round < kRounds; ++round) {
    DataBuffer buf({.capacity_blocks = 4, .order_preserving = true});
    std::atomic<int> next_seq{0};

    // Wave 1: four producers that all shrink away mid-stream. Registered
    // before any thread starts so the merge gate knows about each of them.
    for (int p = 0; p < 4; ++p) buf.AddProducer(p);
    std::vector<std::thread> wave1;
    for (int p = 0; p < 4; ++p) {
      wave1.emplace_back(RunProducer, &buf, p, &next_seq, kTotal,
                         /*quota=*/60 + 15 * p);
    }
    // Wave 2 (the replacement expansion) arrives only after wave 1 is fully
    // gone — the stream passes through the "0 producers, all terminated"
    // pause the consumer must NOT mistake for end-of-file.
    std::thread launcher([&] {
      for (auto& t : wave1) t.join();
      for (int p = 4; p < 7; ++p) buf.AddProducer(p);
      std::vector<std::thread> wave2;
      for (int p = 4; p < 7; ++p) {
        wave2.emplace_back(RunProducer, &buf, p, &next_seq, kTotal,
                           /*quota=*/0);
      }
      for (auto& t : wave2) t.join();
    });

    std::vector<uint64_t> seen;
    BlockPtr out;
    while (buf.Pop(&out) == NextResult::kSuccess) {
      seen.push_back(out->sequence_number());
    }
    launcher.join();
    ASSERT_EQ(seen.size(), static_cast<size_t>(kTotal)) << "round " << round;
    for (size_t i = 0; i < seen.size(); ++i) {
      ASSERT_EQ(seen[i], i) << "round " << round;  // strict global order
    }
  }
}

TEST(DataBufferStress, FifoChurnWithConcurrentJoiners) {
  // FIFO mode: producers join and leave while others insert and a consumer
  // drains — hammers the AddProducer/RemoveProducer/Pop predicate edges.
  constexpr int kRounds = 4;
  constexpr int kTotal = 2000;
  for (int round = 0; round < kRounds; ++round) {
    DataBuffer buf({.capacity_blocks = 3, .order_preserving = false});
    std::atomic<int> next_seq{0};
    for (int p = 0; p < 3; ++p) buf.AddProducer(p);
    std::vector<std::thread> wave1;
    for (int p = 0; p < 3; ++p) {
      wave1.emplace_back(RunProducer, &buf, p, &next_seq, kTotal,
                         /*quota=*/100 + 40 * p);
    }
    std::thread launcher([&] {
      for (auto& t : wave1) t.join();
      for (int p = 3; p < 5; ++p) buf.AddProducer(p);
      std::vector<std::thread> wave2;
      for (int p = 3; p < 5; ++p) {
        wave2.emplace_back(RunProducer, &buf, p, &next_seq, kTotal,
                           /*quota=*/0);
      }
      for (auto& t : wave2) t.join();
    });
    int popped = 0;
    BlockPtr out;
    while (buf.Pop(&out) == NextResult::kSuccess) ++popped;
    launcher.join();
    EXPECT_EQ(popped, kTotal) << "round " << round;
  }
}

TEST(DataBufferStress, CancelRacesEverything) {
  // Cancel fired from a fourth thread while producers block on capacity and
  // a consumer drains: everyone must unwind promptly, no lost wakeups.
  constexpr int kRounds = 12;
  for (int round = 0; round < kRounds; ++round) {
    DataBuffer buf({.capacity_blocks = 2, .order_preserving = round % 2 == 1});
    std::atomic<int> next_seq{0};
    for (int p = 0; p < 3; ++p) buf.AddProducer(p);
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&, p] {
        while (true) {
          int seq = next_seq.fetch_add(1, std::memory_order_relaxed);
          if (!buf.Insert(p, SeqBlock(static_cast<uint64_t>(seq)))) {
            // Cancelled: departure semantics are irrelevant past this point,
            // but keep the bookkeeping honest.
            buf.RemoveProducer(p, /*finished=*/false);
            return;
          }
          buf.AdvanceWatermark(p, static_cast<uint64_t>(seq));
        }
      });
    }
    std::thread consumer([&] {
      BlockPtr out;
      while (buf.Pop(&out) == NextResult::kSuccess) {
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    buf.Cancel();
    for (auto& t : producers) t.join();
    consumer.join();
    EXPECT_TRUE(buf.cancelled());
  }
}

}  // namespace
}  // namespace claims
