// BlockChannel / Network stress: MPMC send/receive under tiny capacities,
// cancellation racing blocked senders, and token-bucket NIC throttling in
// the full Send path. Fixed seeds, bounded rounds.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "net/network.h"

namespace claims {
namespace {

BlockPtr RowBlock(int rows = 1) {
  auto b = MakeBlock(8, 8 * rows);
  for (int i = 0; i < rows; ++i) b->AppendRow();
  return b;
}

TEST(ChannelStress, MpmcSendReceiveDrainsExactly) {
  constexpr int kRounds = 5;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kBlocksEach = 300;
  for (int round = 0; round < kRounds; ++round) {
    BlockChannel channel(kProducers, /*capacity_blocks=*/4);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kBlocksEach; ++i) {
          ASSERT_TRUE(channel.Send({RowBlock(), p}));
        }
        channel.CloseProducer();
      });
    }
    std::atomic<int> received{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
      consumers.emplace_back([&] {
        NetBlock nb;
        while (true) {
          ChannelStatus s = channel.Receive(&nb, 1'000'000);
          if (s == ChannelStatus::kClosed) return;
          if (s == ChannelStatus::kOk) {
            received.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : producers) t.join();
    for (auto& t : consumers) t.join();
    EXPECT_EQ(received.load(), kProducers * kBlocksEach) << "round " << round;
  }
}

TEST(ChannelStress, CancelUnblocksParkedSenders) {
  // Senders parked on a full channel, receivers parked on timeouts, then
  // Cancel from outside: every thread must return promptly.
  constexpr int kRounds = 10;
  for (int round = 0; round < kRounds; ++round) {
    BlockChannel channel(/*num_producers=*/4, /*capacity_blocks=*/2);
    std::atomic<bool> cancel{false};
    std::vector<std::thread> senders;
    for (int p = 0; p < 4; ++p) {
      senders.emplace_back([&, p] {
        while (channel.Send({RowBlock(), p}, &cancel)) {
        }
      });
    }
    std::thread receiver([&] {
      NetBlock nb;
      for (int i = 0; i < 3; ++i) channel.Receive(&nb, 500'000);
    });
    receiver.join();  // a few pops keep the senders racing full/not-full
    cancel.store(true, std::memory_order_release);
    channel.Cancel();
    for (auto& t : senders) t.join();
    NetBlock nb;
    EXPECT_EQ(channel.Receive(&nb, 1'000'000), ChannelStatus::kClosed);
  }
}

TEST(ChannelStress, ThrottledFabricSendsUnderCancellation) {
  // Full Network path: NIC token buckets + bounded channels, remote sends
  // from several nodes, cancellation halfway. No block may be lost *before*
  // the cancel point (received + still-queued == sent).
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    NetworkOptions opts;
    opts.bandwidth_bytes_per_sec = 2'000'000;  // tight enough to throttle
    opts.capacity_blocks = 4;
    Network net(/*num_nodes=*/3, opts);
    net.CreateExchange(/*exchange_id=*/7, /*num_producers=*/2, {0});
    std::atomic<bool> cancel{false};
    std::atomic<int> sent{0};
    std::vector<std::thread> senders;
    for (int from = 1; from <= 2; ++from) {
      senders.emplace_back([&, from] {
        while (net.Send(7, from, 0, RowBlock(64), &cancel)) {
          sent.fetch_add(1, std::memory_order_relaxed);
        }
        net.CloseProducer(7);
      });
    }
    std::atomic<int> received{0};
    std::thread consumer([&] {
      BlockChannel* ch = net.GetChannel(7, 0);
      NetBlock nb;
      while (true) {
        ChannelStatus s = ch->Receive(&nb, 1'000'000);
        if (s == ChannelStatus::kClosed) return;
        if (s == ChannelStatus::kOk) {
          received.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel.store(true, std::memory_order_release);
    for (auto& t : senders) t.join();
    consumer.join();
    EXPECT_GE(sent.load(), 0);
    EXPECT_EQ(received.load(), sent.load()) << "round " << round;
    EXPECT_GT(net.total_remote_bytes(), 0);
  }
}

}  // namespace
}  // namespace claims
