// Lifecycle stress for ElasticIterator: Expand / Shrink / ShrinkBlocking
// racing the consumer, Close, and child errors. Deterministic shape — fixed
// seeds, bounded rounds — so a sanitizer failure reproduces; the value of
// these tests is the interleavings they force, and TSan/ASan turn any latent
// race or lifetime bug they reach into a hard failure.

#include "core/elastic_iterator.h"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <thread>
#include <vector>

#include "test_iterators.h"

namespace claims {
namespace {

using testing_support::CountingSource;
using testing_support::FailingSource;
using testing_support::OneInt64Schema;
using testing_support::SlowPassThrough;

std::multiset<int64_t> ExpectedValues(int n) {
  std::multiset<int64_t> v;
  for (int i = 0; i < n; ++i) v.insert(i);
  return v;
}

TEST(ElasticLifecycleStress, ExpandShrinkChurnLosesNothing) {
  constexpr int kRounds = 6;
  constexpr int kBlocks = 150;
  constexpr int kRows = 4;
  for (int round = 0; round < kRounds; ++round) {
    ElasticIterator::Options opts;
    opts.initial_parallelism = 2;
    opts.max_parallelism = 8;
    opts.buffer_capacity_blocks = 4;  // keep backpressure in play
    ElasticIterator it(
        std::make_unique<SlowPassThrough>(
            std::make_unique<CountingSource>(kBlocks, kRows), /*cost_us=*/100),
        opts);
    WorkerContext ctx;
    ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);

    std::atomic<bool> done{false};
    std::vector<std::thread> mutators;
    for (int m = 0; m < 2; ++m) {
      mutators.emplace_back([&, m] {
        std::mt19937 rng(static_cast<unsigned>(round * 31 + m));
        while (!done.load(std::memory_order_acquire)) {
          switch (rng() % 3) {
            case 0: it.Expand(static_cast<int>(rng() % 8)); break;
            case 1: it.Shrink(); break;
            default: it.ShrinkBlocking(); break;
          }
          std::this_thread::yield();
        }
      });
    }

    Schema schema = OneInt64Schema();
    std::multiset<int64_t> values;
    BlockPtr block;
    while (it.Next(&ctx, &block) == NextResult::kSuccess) {
      for (int r = 0; r < block->num_rows(); ++r) {
        values.insert(schema.GetInt64(block->RowAt(r), 0));
      }
    }
    done.store(true, std::memory_order_release);
    for (auto& t : mutators) t.join();
    EXPECT_EQ(values, ExpectedValues(kBlocks * kRows)) << "round " << round;
    EXPECT_TRUE(it.finished());
    it.Close();
  }
}

TEST(ElasticLifecycleStress, CloseRacesMutatorsAndConsumer) {
  // Abandon the query mid-stream while Expand/Shrink churn is in flight:
  // Close must terminate and join every worker without hanging, and late
  // mutator calls against the closed iterator must be refused, not crash.
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    ElasticIterator::Options opts;
    opts.initial_parallelism = 3;
    opts.max_parallelism = 8;
    opts.buffer_capacity_blocks = 2;  // workers park on the full buffer
    ElasticIterator it(
        std::make_unique<CountingSource>(100000, 4, /*delay_us=*/20), opts);
    WorkerContext ctx;
    ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);

    std::atomic<bool> done{false};
    std::vector<std::thread> mutators;
    for (int m = 0; m < 2; ++m) {
      mutators.emplace_back([&, m] {
        std::mt19937 rng(static_cast<unsigned>(round * 17 + m));
        while (!done.load(std::memory_order_acquire)) {
          if (rng() % 2 == 0) {
            it.Expand(static_cast<int>(rng() % 8));
          } else {
            it.Shrink();
          }
          std::this_thread::yield();
        }
      });
    }
    // Consume a little so the pipeline is genuinely moving, then walk away.
    BlockPtr block;
    for (int i = 0; i < 5; ++i) it.Next(&ctx, &block);
    it.Close();
    done.store(true, std::memory_order_release);
    for (auto& t : mutators) t.join();
    EXPECT_FALSE(it.Expand(0));  // closed: must refuse
    EXPECT_FALSE(it.Shrink());
  }
}

TEST(ElasticLifecycleStress, ChildErrorUnderChurnStaysTerminal) {
  // A child stream breaking while workers expand and shrink: exactly one
  // error latch, consumer sees kError (never a clean EOF), and post-error
  // expansion is refused no matter which thread asks.
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    ElasticIterator::Options opts;
    opts.initial_parallelism = 2;
    opts.max_parallelism = 6;
    ElasticIterator it(std::make_unique<FailingSource>(/*good_blocks=*/20),
                       opts);
    WorkerContext ctx;
    ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);

    std::atomic<bool> done{false};
    std::thread mutator([&] {
      std::mt19937 rng(static_cast<unsigned>(round));
      while (!done.load(std::memory_order_acquire)) {
        if (rng() % 2 == 0) {
          it.Expand(static_cast<int>(rng() % 6));
        } else {
          it.Shrink();
        }
        std::this_thread::yield();
      }
    });

    NextResult last = NextResult::kSuccess;
    BlockPtr block;
    while ((last = it.Next(&ctx, &block)) == NextResult::kSuccess) {
    }
    done.store(true, std::memory_order_release);
    mutator.join();
    EXPECT_EQ(last, NextResult::kError) << "round " << round;
    EXPECT_TRUE(it.failed());
    EXPECT_FALSE(it.Expand(1));
    it.Close();
  }
}

TEST(ElasticLifecycleStress, ShrinkBlockingRacesDrainToCompletion) {
  // ShrinkBlocking spins on the victim's done flag outside the lock; race it
  // against natural completion (workers hitting EOF) and a live consumer.
  constexpr int kRounds = 6;
  for (int round = 0; round < kRounds; ++round) {
    ElasticIterator::Options opts;
    opts.initial_parallelism = 4;
    opts.min_parallelism = 1;
    ElasticIterator it(std::make_unique<CountingSource>(200, 3), opts);
    WorkerContext ctx;
    ASSERT_EQ(it.Open(&ctx), NextResult::kSuccess);
    std::thread shrinker([&] {
      // Keep shrinking until refused (min reached / all drained / closed).
      while (it.ShrinkBlocking() >= 0) {
      }
    });
    Schema schema = OneInt64Schema();
    std::multiset<int64_t> values;
    BlockPtr block;
    while (it.Next(&ctx, &block) == NextResult::kSuccess) {
      for (int r = 0; r < block->num_rows(); ++r) {
        values.insert(schema.GetInt64(block->RowAt(r), 0));
      }
    }
    shrinker.join();
    EXPECT_EQ(values, ExpectedValues(600)) << "round " << round;
    it.Close();
  }
}

}  // namespace
}  // namespace claims
