// Memory-pressure stress: a 24-query storm over one shared cluster, every
// query running under a binding per-query budget, while a mempressure fault
// squeezes the global block pool mid-storm. The contract under the squeeze
// (docs/MEMORY.md): every query ends correct — byte-equivalent to an
// unpressured reference run — or fails kResourceExhausted after the
// shrink -> spill ladder; nothing hangs, nothing OOMs, and the ledger
// invariant `charged <= budget` holds at every millisecond sample. Under
// TSan this is the test that races pool squeeze/restore against charge,
// spill, and refund on all workers at once.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/executor.h"
#include "fault/injector.h"
#include "mem/block_pool.h"
#include "wlm/query_service.h"

namespace claims {
namespace {

constexpr int kNodes = 2;
constexpr int kCoresPerNode = 4;

ExprPtr Col(const Schema& s, const char* name) {
  int i = s.FindColumn(name);
  EXPECT_GE(i, 0) << name;
  return MakeColumnRef(i, s.column(i).type, name);
}

class MemStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog;
    Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
    auto t = std::make_shared<Table>("kv", s, kNodes, std::vector<int>{});
    for (int i = 0; i < 30000; ++i) {
      t->AppendValues({Value::Int32(i % 500), Value::Int64(i)});
    }
    ASSERT_TRUE(catalog_->RegisterTable(std::move(t)).ok());
    ClusterOptions copts;
    copts.num_nodes = kNodes;
    copts.cores_per_node = kCoresPerNode;
    cluster_ = new Cluster(copts, catalog_);
  }
  static void TearDownTestSuite() {
    BlockPool::Global()->SetPressureCapBytes(0);  // never leak a cap
    delete cluster_;
    delete catalog_;
  }

  /// Memory-hungry: scan kv → hash-agg grouped on k (sum(v), count). The agg
  /// tables and buffers are the pool-backed state the squeeze lands on.
  static PhysicalPlan AggPlan(HashAggIterator::Mode mode) {
    TablePtr kv = *catalog_->GetTable("kv");
    PhysicalPlan plan;
    auto f = std::make_unique<Fragment>();
    f->id = 0;
    auto scan = MakeScanOp(*kv);
    const Schema scan_schema = scan->output_schema;
    f->root = MakeHashAggOp(std::move(scan), {Col(scan_schema, "k")}, {"k"},
                            {{AggFn::kSum, Col(scan_schema, "v"), "s"},
                             {AggFn::kCount, nullptr, "cnt"}},
                            mode);
    f->nodes = {0, 1};
    f->out_exchange_id = 0;
    f->partitioning = Partitioning::kToOne;
    f->consumer_nodes = {0};
    plan.result_schema = f->root->output_schema;
    plan.result_exchange_id = 0;
    plan.fragments.push_back(std::move(f));
    return plan;
  }

  static Catalog* catalog_;
  static Cluster* cluster_;
};

Catalog* MemStressTest::catalog_ = nullptr;
Cluster* MemStressTest::cluster_ = nullptr;

TEST_F(MemStressTest, PoolSqueezeMidStormDegradesWithoutHangs) {
  constexpr int kQueries = 24;

  // Reference results from an unpressured run, one per agg mode. Any storm
  // query that reports OK must reproduce these bytes exactly.
  std::vector<std::vector<std::vector<Value>>> reference;
  {
    QueryServiceOptions opts;
    opts.admission.max_concurrent = 2;
    QueryService service(cluster_, opts);
    for (auto mode :
         {HashAggIterator::Mode::kShared, HashAggIterator::Mode::kHybrid}) {
      SubmitOptions sub;
      sub.label = "reference";
      auto h = service.Submit(AggPlan(mode), sub);
      h->Wait();
      ASSERT_TRUE(h->status().ok()) << h->status().ToString();
      reference.push_back(h->result().Rows(/*sorted=*/true));
    }
    service.Shutdown();
  }

  // The squeeze: a mempressure window opens 30 ms into the storm and caps
  // the global pool for 250 ms through the injector's default actuator.
  auto plan = ParseFaultPlan(
      "at=30ms kind=mempressure dur=250ms bytes=8388608\n");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*plan);

  QueryServiceOptions opts;
  opts.admission.max_concurrent = 6;
  QueryService service(cluster_, opts);

  // 1 ms ledger sampler: at no sample may any query's charged bytes exceed
  // its budget — the invariant QueryBudget::TryCharge enforces by CAS.
  std::atomic<bool> stop_sampler{false};
  std::atomic<int64_t> violations{0};
  std::atomic<int64_t> samples{0};
  std::thread sampler([&] {
    while (!stop_sampler.load(std::memory_order_acquire)) {
      for (const QueryInfo& q : service.ListQueries()) {
        if (q.mem_budget_bytes > 0 &&
            q.mem_charged_bytes > q.mem_budget_bytes) {
          violations.fetch_add(1);
        }
      }
      samples.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  injector.Arm();
  std::vector<QueryHandlePtr> handles;
  handles.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    SubmitOptions sub;
    sub.label = "mem-" + std::to_string(i);
    sub.exec.parallelism = 1 + i % 2;
    sub.exec.buffer_capacity_blocks = 2;
    // Budgets straddle the workable range: the roomy ones should survive the
    // squeeze by shrinking/spilling, the starved ones may reject — both are
    // legal outcomes; hanging or wrong bytes are not.
    sub.exec.memory_budget_bytes = (i % 3 + 1) * int64_t{2} << 20;  // 2/4/6 MiB
    auto mode = i % 2 ? HashAggIterator::Mode::kHybrid
                      : HashAggIterator::Mode::kShared;
    handles.push_back(service.Submit(AggPlan(mode), sub));
  }

  // Zero hangs: every query must terminate well within the suite timeout
  // even with the pool capped. WaitFor bounds it explicitly.
  int ok = 0, exhausted = 0;
  for (int i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(handles[i]->WaitFor(120'000'000'000))  // 120 s
        << handles[i]->label() << " hung";
    const Status& s = handles[i]->status();
    if (s.ok()) {
      ++ok;
      EXPECT_EQ(handles[i]->result().Rows(/*sorted=*/true), reference[i % 2])
          << handles[i]->label() << " returned wrong bytes";
    } else {
      EXPECT_EQ(s.code(), StatusCode::kResourceExhausted)
          << handles[i]->label() << ": " << s.ToString();
      ++exhausted;
    }
  }
  service.Shutdown();
  injector.Disarm();
  BlockPool::Global()->SetPressureCapBytes(0);

  stop_sampler.store(true, std::memory_order_release);
  sampler.join();

  EXPECT_EQ(violations.load(), 0) << "ledger exceeded a budget";
  EXPECT_GT(samples.load(), 0);
  // The storm must make real progress: with 2..6 MiB budgets and spill as a
  // relief valve, at least some queries complete correctly.
  EXPECT_GT(ok, 0) << ok << " ok / " << exhausted << " exhausted";
  EXPECT_EQ(ok + exhausted, kQueries);
}

}  // namespace
}  // namespace claims
