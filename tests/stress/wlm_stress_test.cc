// Workload-manager stress: N queries racing M cancellation threads over one
// shared cluster, plus shutdown-with-inflight-work and deadline storms. The
// races this drives are the ones the wlm unit tests only brush: Cancel()
// landing between dispatch and Executor creation, cancel vs. natural
// completion, handle destruction after service shutdown, and deadline expiry
// on queued and running queries at once. Under TSan this is the test that
// exercises the service's two-lock (service mu_ → handle mu_) discipline.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/executor.h"
#include "wlm/query_service.h"

namespace claims {
namespace {

constexpr int kNodes = 2;
constexpr int kCoresPerNode = 4;

ExprPtr Col(const Schema& s, const char* name) {
  int i = s.FindColumn(name);
  EXPECT_GE(i, 0) << name;
  return MakeColumnRef(i, s.column(i).type, name);
}

class WlmStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog;
    Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
    auto t = std::make_shared<Table>("kv", s, kNodes, std::vector<int>{});
    for (int i = 0; i < 24000; ++i) {
      t->AppendValues({Value::Int32(i % 300), Value::Int64(i)});
    }
    ASSERT_TRUE(catalog_->RegisterTable(std::move(t)).ok());
    ClusterOptions copts;
    copts.num_nodes = kNodes;
    copts.cores_per_node = kCoresPerNode;
    cluster_ = new Cluster(copts, catalog_);
  }
  static void TearDownTestSuite() {
    delete cluster_;
    delete catalog_;
  }

  /// Milliseconds-fast: scan kv → filter(k < 100) → gather. 8000 rows.
  static PhysicalPlan FastPlan() {
    TablePtr kv = *catalog_->GetTable("kv");
    PhysicalPlan plan;
    auto f = std::make_unique<Fragment>();
    f->id = 0;
    f->root = MakeFilterOp(
        MakeScanOp(*kv), MakeCompare(CompareOp::kLt, Col(kv->schema(), "k"),
                                     MakeLiteral(Value::Int32(100))));
    f->nodes = {0, 1};
    f->out_exchange_id = 0;
    f->partitioning = Partitioning::kToOne;
    f->consumer_nodes = {0};
    plan.result_schema = f->root->output_schema;
    plan.result_exchange_id = 0;
    plan.fragments.push_back(std::move(f));
    return plan;
  }

  /// Hundreds-of-milliseconds slow: repartition kv on k, self-join (each
  /// probe row matches 80 build rows → 1.9M join rows), count per key.
  static PhysicalPlan SlowPlan() {
    TablePtr kv = *catalog_->GetTable("kv");
    PhysicalPlan plan;
    auto f0 = std::make_unique<Fragment>();
    f0->id = 0;
    f0->root = MakeScanOp(*kv);
    f0->nodes = {0, 1};
    f0->out_exchange_id = 0;
    f0->partitioning = Partitioning::kHash;
    f0->hash_cols = {0};
    f0->consumer_nodes = {0, 1};

    auto f1 = std::make_unique<Fragment>();
    f1->id = 1;
    auto merger = MakeMergerOp(0, f0->root->output_schema);
    auto join = MakeHashJoinOp(std::move(merger), MakeScanOp(*kv),
                               /*build_keys=*/{0}, /*probe_keys=*/{0});
    const Schema join_schema = join->output_schema;
    f1->root = MakeHashAggOp(std::move(join), {Col(join_schema, "k")}, {"k"},
                             {{AggFn::kCount, nullptr, "cnt"}},
                             HashAggIterator::Mode::kShared);
    f1->nodes = {0, 1};
    f1->out_exchange_id = 1;
    f1->partitioning = Partitioning::kToOne;
    f1->consumer_nodes = {0};

    plan.result_schema = f1->root->output_schema;
    plan.result_exchange_id = 1;
    plan.fragments.push_back(std::move(f0));
    plan.fragments.push_back(std::move(f1));
    return plan;
  }

  static SubmitOptions TightExec() {
    SubmitOptions opts;
    opts.exec.parallelism = 1;
    opts.exec.buffer_capacity_blocks = 2;
    return opts;
  }

  static Catalog* catalog_;
  static Cluster* cluster_;
};

Catalog* WlmStressTest::catalog_ = nullptr;
Cluster* WlmStressTest::cluster_ = nullptr;

/// Every submitted query must end in exactly one of the cooperative
/// terminal states, with a valid result iff it succeeded.
void ExpectTerminal(const QueryHandlePtr& h, bool deadlines_allowed) {
  ASSERT_EQ(h->state(), QueryState::kDone) << h->label();
  const Status& s = h->status();
  bool acceptable = s.ok() || s.code() == StatusCode::kCancelled ||
                    (deadlines_allowed &&
                     s.code() == StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(acceptable) << h->label() << ": " << s.ToString();
  if (s.ok()) {
    EXPECT_GT(h->result().num_rows(), 0) << h->label();
  }
  EXPECT_GE(h->latency_ns(), 0);
  EXPECT_GE(h->queue_wait_ns(), 0);
}

TEST_F(WlmStressTest, CancellersRaceCompletion) {
  constexpr int kQueries = 48;
  constexpr int kCancellers = 4;

  QueryServiceOptions opts;
  opts.admission.max_concurrent = 4;
  QueryService service(cluster_, opts);

  std::vector<QueryHandlePtr> handles;
  handles.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    SubmitOptions sub = TightExec();
    sub.label = (i % 2 ? "slow-" : "fast-") + std::to_string(i);
    sub.priority = i % 3;
    handles.push_back(
        service.Submit(i % 2 ? SlowPlan() : FastPlan(), sub));
  }

  // Each canceller sweeps its own stripe of handles — some still queued,
  // some mid-stream, some already done — with jitter so the stripes overlap
  // the dispatch loop differently every sweep. Two stripes overlap on the
  // %2 residues, so some handles see concurrent double-cancel.
  std::vector<std::thread> cancellers;
  for (int c = 0; c < kCancellers; ++c) {
    cancellers.emplace_back([&, c] {
      for (int sweep = 0; sweep < 3; ++sweep) {
        for (int i = c % 2; i < kQueries; i += 2) {
          if ((i + sweep) % kCancellers == c) handles[i]->Cancel();
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }
  for (auto& t : cancellers) t.join();
  for (auto& h : handles) h->Wait();
  for (auto& h : handles) ExpectTerminal(h, /*deadlines_allowed=*/false);
}

TEST_F(WlmStressTest, ShutdownWithInflightAndQueuedWork) {
  for (int round = 0; round < 4; ++round) {
    QueryServiceOptions opts;
    opts.admission.max_concurrent = 2;
    auto service = std::make_unique<QueryService>(cluster_, opts);

    std::vector<QueryHandlePtr> handles;
    for (int i = 0; i < 12; ++i) {
      SubmitOptions sub = TightExec();
      sub.label = "r" + std::to_string(round) + "-q" + std::to_string(i);
      handles.push_back(service->Submit(SlowPlan(), sub));
    }
    // Let a couple of queries get off the queue, then tear the service down
    // under them. cancel_pending=true must cancel queued AND running work.
    std::this_thread::sleep_for(std::chrono::milliseconds(20 * round));
    service->Shutdown(/*cancel_pending=*/true);
    for (auto& h : handles) {
      ASSERT_EQ(h->state(), QueryState::kDone) << h->label();
      EXPECT_TRUE(h->status().ok() ||
                  h->status().code() == StatusCode::kCancelled)
          << h->label() << ": " << h->status().ToString();
    }
    // Handles legitimately outlive the service.
    service.reset();
    EXPECT_FALSE(handles.front()->status().ok());
  }
}

TEST_F(WlmStressTest, DeadlineStormRacesDispatch) {
  QueryServiceOptions opts;
  opts.admission.max_concurrent = 4;
  QueryService service(cluster_, opts);

  std::vector<QueryHandlePtr> handles;
  for (int i = 0; i < 32; ++i) {
    SubmitOptions sub = TightExec();
    sub.label = "storm-" + std::to_string(i);
    // Timeouts straddle both sides of the queue wait and the run time, so
    // expiry fires on queued queries (reaped by workers) and running ones
    // (executor watchdog) in the same storm.
    sub.timeout_ns = (i % 8 + 1) * 5'000'000;  // 5..40 ms
    handles.push_back(service.Submit(i % 4 ? SlowPlan() : FastPlan(), sub));
  }
  for (auto& h : handles) h->Wait();
  int expired = 0;
  for (auto& h : handles) {
    ExpectTerminal(h, /*deadlines_allowed=*/true);
    if (h->status().code() == StatusCode::kDeadlineExceeded) ++expired;
  }
  // The slow queries run ~300 ms; a 40 ms ceiling guarantees expiries.
  EXPECT_GT(expired, 0);
}

}  // namespace
}  // namespace claims
