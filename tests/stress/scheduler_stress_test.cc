// DynamicScheduler stress: control-loop ticks racing segment workload
// updates, segment completion, and segment registration/removal — the
// engine-side shape where the scheduler thread runs concurrently with
// segment driver threads. Scripted segments use atomics throughout, so any
// unsynchronized access inside the scheduler itself is sanitizer-visible.

#include "core/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace claims {
namespace {

constexpr int64_t kTickNs = 100'000'000;  // 100 ms control period

class AtomicClock : public Clock {
 public:
  int64_t NowNanos() const override {
    return now_.load(std::memory_order_acquire);
  }
  void Advance(int64_t ns) { now_.fetch_add(ns, std::memory_order_acq_rel); }

 private:
  std::atomic<int64_t> now_{0};
};

/// Thread-safe scriptable segment: the scheduler calls Expand/Shrink from
/// its tick while a "driver" thread feeds counters and eventually completes.
class StressSegment : public SchedulableSegment {
 public:
  StressSegment(std::string name, int parallelism, int max_parallelism = 24)
      : name_(std::move(name)),
        parallelism_(parallelism),
        max_parallelism_(max_parallelism),
        scalability_(max_parallelism) {}

  const std::string& name() const override { return name_; }
  bool active() const override {
    return active_.load(std::memory_order_acquire);
  }
  int parallelism() const override {
    return parallelism_.load(std::memory_order_acquire);
  }
  SegmentStats* stats() override { return &stats_; }
  ScalabilityVector* scalability() override { return &scalability_; }

  bool Expand(int) override {
    if (!active()) return false;
    int p = parallelism_.load(std::memory_order_acquire);
    while (p < max_parallelism_) {
      if (parallelism_.compare_exchange_weak(p, p + 1,
                                             std::memory_order_acq_rel)) {
        return true;
      }
    }
    return false;
  }

  bool Shrink() override {
    int p = parallelism_.load(std::memory_order_acquire);
    while (p > 1) {
      if (parallelism_.compare_exchange_weak(p, p - 1,
                                             std::memory_order_acq_rel)) {
        return true;
      }
    }
    return false;
  }

  void Complete() { active_.store(false, std::memory_order_release); }

  /// Advances counters as if `dt_ns` passed at `tuples_per_sec`.
  void Work(int64_t dt_ns, double tuples_per_sec) {
    stats_.input_tuples.fetch_add(
        static_cast<int64_t>(tuples_per_sec * static_cast<double>(dt_ns) / 1e9),
        std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::atomic<int> parallelism_;
  std::atomic<bool> active_{true};
  int max_parallelism_;
  SegmentStats stats_;
  ScalabilityVector scalability_;
};

TEST(SchedulerStress, TicksRaceWorkloadAndCompletion) {
  constexpr int kRounds = 3;
  constexpr int kTicks = 120;
  for (int round = 0; round < kRounds; ++round) {
    AtomicClock clock;
    GlobalThroughputBoard board;
    SchedulerOptions opts;
    opts.num_cores = 8;
    DynamicScheduler sched(0, opts, &clock, &board);

    std::vector<std::unique_ptr<StressSegment>> segments;
    for (int s = 0; s < 4; ++s) {
      segments.push_back(std::make_unique<StressSegment>(
          "seg" + std::to_string(s), 2));
      sched.AddSegment(segments[s].get());
    }

    std::atomic<bool> done{false};
    std::vector<std::thread> drivers;
    for (int s = 0; s < 4; ++s) {
      drivers.emplace_back([&, s] {
        StressSegment* seg = segments[static_cast<size_t>(s)].get();
        // Segments complete at staggered times; rates differ so the U/O
        // classification and pair moves actually fire against live flips.
        for (int i = 0; i < 40 * (s + 1) && !done.load(); ++i) {
          seg->Work(kTickNs / 4, 100.0 * (s + 1));
          std::this_thread::yield();
        }
        seg->Complete();
      });
    }

    for (int t = 0; t < kTicks; ++t) {
      clock.Advance(kTickNs);
      sched.Tick();
      for (const auto& seg : segments) {
        int p = seg->parallelism();
        ASSERT_GE(p, 1);
        ASSERT_LE(p, 24);
      }
      ASSERT_GE(sched.cores_in_use(), 0);
    }
    done.store(true, std::memory_order_release);
    for (auto& t : drivers) t.join();
    for (auto& seg : segments) sched.RemoveSegment(seg.get());
    EXPECT_EQ(sched.cores_in_use(), 0);
  }
}

TEST(SchedulerStress, RegistrationChurnDuringTicks) {
  // Segments added and removed from a second thread while the scheduler
  // ticks — the executor does exactly this when queries start and finish.
  AtomicClock clock;
  GlobalThroughputBoard board;
  SchedulerOptions opts;
  opts.num_cores = 8;
  DynamicScheduler sched(0, opts, &clock, &board);

  StressSegment resident("resident", 2);
  sched.AddSegment(&resident);

  std::atomic<bool> done{false};
  std::thread churner([&] {
    int generation = 0;
    while (!done.load(std::memory_order_acquire)) {
      StressSegment transient("transient" + std::to_string(generation++), 1);
      sched.AddSegment(&transient);
      transient.Work(kTickNs, 50.0);
      std::this_thread::yield();
      transient.Complete();
      sched.RemoveSegment(&transient);  // must fully quiesce before dtor
    }
  });

  for (int t = 0; t < 300; ++t) {
    clock.Advance(kTickNs);
    resident.Work(kTickNs, 200.0);
    sched.Tick();
  }
  done.store(true, std::memory_order_release);
  churner.join();
  sched.RemoveSegment(&resident);
  EXPECT_EQ(sched.cores_in_use(), 0);
}

TEST(SchedulerStress, CompletionBetweenClassificationAndMove) {
  // A segment completing right as the scheduler hands it a core: Expand
  // refuses (inactive), and the pair-move compensation must return the
  // donor's core — repeated many rounds so the refusal window is actually
  // hit under TSan's scheduling perturbation.
  constexpr int kRounds = 40;
  for (int round = 0; round < kRounds; ++round) {
    AtomicClock clock;
    GlobalThroughputBoard board;
    SchedulerOptions opts;
    opts.num_cores = 8;
    DynamicScheduler sched(0, opts, &clock, &board);
    StressSegment slow("slow", 4);
    StressSegment fast("fast", 4);
    sched.AddSegment(&slow);
    sched.AddSegment(&fast);
    sched.Tick();
    std::atomic<bool> done{false};
    std::thread completer([&] {
      // Yield a few times, then kill the receiver candidate mid-round.
      for (int i = 0; i < round % 5; ++i) std::this_thread::yield();
      slow.Complete();
      done.store(true, std::memory_order_release);
    });
    for (int t = 0; t < 4; ++t) {
      clock.Advance(1'000'000'000);
      slow.Work(1'000'000'000, 100.0);
      fast.Work(1'000'000'000, 1000.0);
      sched.Tick();
    }
    completer.join();
    // Whatever interleaving happened, no core may have evaporated: every
    // shrink either belongs to a completed pair move (receiver grew) or was
    // compensated (donor restored).
    EXPECT_GE(fast.parallelism(), 1);
    EXPECT_LE(sched.cores_in_use(), opts.num_cores);
    sched.RemoveSegment(&slow);
    sched.RemoveSegment(&fast);
  }
}

}  // namespace
}  // namespace claims
