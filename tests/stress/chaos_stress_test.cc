// Chaos stress: a seeded random fault storm (drops, delays, duplicates, NIC
// degrades, stragglers) raging under a closed-loop query stream, plus a
// scripted mid-storm node crash. The resilience contract this hammers is the
// one docs/FAULTS.md states: every submitted query reaches a terminal state
// — correct results or a typed kUnavailable — and nothing ever hangs. Under
// TSan this drives the injector's OnSend path against the fabric's retry
// loop, the NIC rewriter against live token buckets, and the crash handler
// against mid-stream segment teardown all at once.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/executor.h"
#include "fault/injector.h"
#include "wlm/query_service.h"

namespace claims {
namespace {

constexpr int kNodes = 3;

ExprPtr Col(const Schema& s, const char* name) {
  int i = s.FindColumn(name);
  EXPECT_GE(i, 0) << name;
  return MakeColumnRef(i, s.column(i).type, name);
}

int64_t CounterValue(const char* name) {
  return MetricsRegistry::Global()->counter(name)->value();
}

/// Same two-table fixture as fault_test: kva round-robin (build side), kvb
/// hash-partitioned on k (probe side) so the repartitioned join is exactly
/// co-partitioned and its result deterministic — (rows/300)² per key.
/// Fresh per test: crashes are permanent for a cluster's lifetime.
struct ChaosCluster {
  explicit ChaosCluster(int rows = 24000) : rows_per_key(rows / 300) {
    {
      Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
      auto t = std::make_shared<Table>("kva", s, kNodes, std::vector<int>{});
      for (int i = 0; i < rows; ++i) {
        t->AppendValues({Value::Int32(i % 300), Value::Int64(i)});
      }
      EXPECT_TRUE(catalog.RegisterTable(std::move(t)).ok());
    }
    {
      Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("w")});
      auto t = std::make_shared<Table>("kvb", s, kNodes, std::vector<int>{0});
      for (int i = 0; i < rows; ++i) {
        t->AppendValues({Value::Int32(i % 300), Value::Int64(i)});
      }
      EXPECT_TRUE(catalog.RegisterTable(std::move(t)).ok());
    }
    ClusterOptions copts;
    copts.num_nodes = kNodes;
    copts.cores_per_node = 4;
    cluster = std::make_unique<Cluster>(copts, &catalog);
  }

  PhysicalPlan FastPlan() {
    TablePtr kva = *catalog.GetTable("kva");
    PhysicalPlan plan;
    auto f = std::make_unique<Fragment>();
    f->id = 0;
    f->root = MakeFilterOp(
        MakeScanOp(*kva), MakeCompare(CompareOp::kLt, Col(kva->schema(), "k"),
                                      MakeLiteral(Value::Int32(100))));
    f->nodes = {0, 1, 2};
    f->out_exchange_id = 0;
    f->partitioning = Partitioning::kToOne;
    f->consumer_nodes = {0};
    plan.result_schema = f->root->output_schema;
    plan.result_exchange_id = 0;
    plan.fragments.push_back(std::move(f));
    return plan;
  }

  PhysicalPlan SlowPlan() {
    TablePtr kva = *catalog.GetTable("kva");
    TablePtr kvb = *catalog.GetTable("kvb");
    PhysicalPlan plan;
    auto f0 = std::make_unique<Fragment>();
    f0->id = 0;
    f0->root = MakeScanOp(*kva);
    f0->nodes = {0, 1, 2};
    f0->out_exchange_id = 0;
    f0->partitioning = Partitioning::kHash;
    f0->hash_cols = {0};
    f0->consumer_nodes = {0, 1, 2};

    auto f1 = std::make_unique<Fragment>();
    f1->id = 1;
    auto merger = MakeMergerOp(0, f0->root->output_schema);
    auto join = MakeHashJoinOp(std::move(merger), MakeScanOp(*kvb),
                               /*build_keys=*/{0}, /*probe_keys=*/{0});
    const Schema join_schema = join->output_schema;
    f1->root = MakeHashAggOp(std::move(join), {Col(join_schema, "k")}, {"k"},
                             {{AggFn::kCount, nullptr, "cnt"}},
                             HashAggIterator::Mode::kShared);
    f1->nodes = {0, 1, 2};
    f1->out_exchange_id = 1;
    f1->partitioning = Partitioning::kToOne;
    f1->consumer_nodes = {0};

    plan.result_schema = f1->root->output_schema;
    plan.result_exchange_id = 1;
    plan.fragments.push_back(std::move(f0));
    plan.fragments.push_back(std::move(f1));
    return plan;
  }

  int64_t SlowPlanCountPerKey() const {
    return static_cast<int64_t>(rows_per_key) * rows_per_key;
  }

  int rows_per_key;
  Catalog catalog;
  std::unique_ptr<Cluster> cluster;
};

/// Submits `queries` alternating fast/slow queries at mpl 4 with a bounded
/// retry budget, waits every handle out, and asserts the resilience
/// contract. Returns the number that finished ok.
int RunClosedLoopUnderChaos(ChaosCluster* tc, int queries) {
  QueryServiceOptions sopts;
  sopts.admission.max_concurrent = 4;
  QueryService service(tc->cluster.get(), sopts);

  std::vector<QueryHandlePtr> handles;
  handles.reserve(queries);
  for (int i = 0; i < queries; ++i) {
    SubmitOptions sub;
    sub.label = (i % 2 ? "slow-" : "fast-") + std::to_string(i);
    sub.exec.parallelism = 1;
    sub.exec.buffer_capacity_blocks = 2;
    sub.retry.max_attempts = 3;
    sub.retry.initial_backoff_ns = 5'000'000;
    handles.push_back(
        service.Submit(i % 2 ? tc->SlowPlan() : tc->FastPlan(), sub));
  }

  int succeeded = 0;
  for (auto& h : handles) {
    // The contract under test: terminal, never hung.
    bool finished = h->WaitFor(120'000'000'000LL);
    EXPECT_TRUE(finished) << h->label() << " hung";
    if (!finished) continue;
    EXPECT_EQ(h->state(), QueryState::kDone) << h->label();
    const Status& s = h->status();
    if (s.ok()) {
      ++succeeded;
      // Degraded, not wrong: a query that completes must be exactly right.
      if (h->label().rfind("fast-", 0) == 0) {
        EXPECT_EQ(h->result().num_rows(), 8000) << h->label();
      } else {
        EXPECT_EQ(h->result().num_rows(), 300) << h->label();
        auto rows = h->result().Rows(/*sorted=*/true);
        for (int k = 0; k < 300; ++k) {
          EXPECT_EQ(rows[k][1].AsInt64(), tc->SlowPlanCountPerKey())
              << h->label() << " key " << k;
        }
      }
    } else {
      EXPECT_EQ(s.code(), StatusCode::kUnavailable)
          << h->label() << ": " << s.ToString();
    }
  }
  service.Shutdown();
  return succeeded;
}

TEST(ChaosStressTest, SeededStormNeverHangsOrCorruptsQueries) {
  ChaosCluster tc;
  FaultPlan storm = RandomFaultStorm(/*seed=*/1337, kNodes, 2'000'000'000);
  FaultInjector injector(storm);
  tc.cluster->AttachFaultInjector(&injector);
  int64_t activations_before = CounterValue("fault.activations");

  injector.Arm();
  int succeeded = RunClosedLoopUnderChaos(&tc, 24);
  injector.Disarm();
  tc.cluster->AttachFaultInjector(nullptr);

  // The storm has no crash faults, so every retry budget is enough: with
  // all nodes alive, kUnavailable can only come from exhausted send retries,
  // and the storm's windowed drops always end.
  EXPECT_EQ(succeeded, 24);
  EXPECT_GT(CounterValue("fault.activations"), activations_before)
      << "storm never actually fired";
}

TEST(ChaosStressTest, ScriptedCrashDuringStormDegradesGracefully) {
  ChaosCluster tc;
  // The same storm with a node death scripted into the middle of it: queries
  // in flight on node 2 must fail over (re-dispatch) or fail typed.
  FaultPlan storm = RandomFaultStorm(/*seed=*/4242, kNodes, 2'000'000'000);
  FaultSpec crash;
  crash.kind = FaultKind::kCrashNode;
  crash.at_ns = 200'000'000;
  crash.node = 2;
  storm.faults.push_back(crash);
  FaultInjector injector(std::move(storm));
  tc.cluster->AttachFaultInjector(&injector);

  injector.Arm();
  int succeeded = RunClosedLoopUnderChaos(&tc, 24);
  injector.Disarm();
  tc.cluster->AttachFaultInjector(nullptr);

  EXPECT_FALSE(tc.cluster->NodeAlive(2));
  // Graceful degradation: the survivors keep answering. Most queries retry
  // through the crash; all of them must have terminated (asserted above).
  EXPECT_GT(succeeded, 0);
  EXPECT_GT(CounterValue("fault.crashes"), 0);
}

}  // namespace
}  // namespace claims
