#include "storage/catalog.h"

#include <gtest/gtest.h>

namespace claims {
namespace {

TablePtr SmallTable(const std::string& name, int distinct_keys, int rows) {
  Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
  auto t = std::make_shared<Table>(name, s, 1, std::vector<int>{0});
  for (int i = 0; i < rows; ++i) {
    t->AppendValues({Value::Int32(i % distinct_keys), Value::Int64(i)});
  }
  return t;
}

TEST(CatalogTest, RegisterAndLookup) {
  Catalog c;
  ASSERT_TRUE(c.RegisterTable(SmallTable("Orders", 5, 10)).ok());
  EXPECT_TRUE(c.HasTable("orders"));
  EXPECT_TRUE(c.HasTable("ORDERS"));
  auto r = c.GetTable("oRdErS");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 10);
  EXPECT_FALSE(c.GetTable("nope").ok());
}

TEST(CatalogTest, DuplicateRejected) {
  Catalog c;
  ASSERT_TRUE(c.RegisterTable(SmallTable("t", 5, 1)).ok());
  EXPECT_EQ(c.RegisterTable(SmallTable("T", 5, 1)).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog c;
  ASSERT_TRUE(c.RegisterTable(SmallTable("bbb", 2, 1)).ok());
  ASSERT_TRUE(c.RegisterTable(SmallTable("aaa", 2, 1)).ok());
  auto names = c.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "aaa");
  EXPECT_EQ(names[1], "bbb");
}

TEST(CatalogTest, EstimateDistinctLowCardinality) {
  Catalog c;
  auto t = SmallTable("t", 4, 10000);
  int64_t d = c.EstimateDistinct(*t, 0);
  EXPECT_EQ(d, 4);
}

TEST(CatalogTest, EstimateDistinctHighCardinality) {
  Catalog c;
  auto t = SmallTable("t", 10000, 10000);
  int64_t d = c.EstimateDistinct(*t, 0);
  EXPECT_NEAR(d, 10000, 500);
}

TEST(CatalogTest, EstimateSelectivity) {
  Catalog c;
  auto t = SmallTable("t", 10, 10000);
  const Schema& s = t->schema();
  double sel = c.EstimateSelectivity(
      *t, [&](const char* row) { return s.GetInt32(row, 0) < 3; });
  EXPECT_NEAR(sel, 0.3, 0.02);
}

}  // namespace
}  // namespace claims
