#include "core/metrics.h"

#include <gtest/gtest.h>

namespace claims {
namespace {

TEST(SegmentStatsTest, Selectivity) {
  SegmentStats stats;
  EXPECT_EQ(stats.selectivity(), 1.0);
  stats.input_tuples.store(1000);
  stats.output_tuples.store(250);
  EXPECT_DOUBLE_EQ(stats.selectivity(), 0.25);
}

TEST(VisitRateAggregatorTest, SumsLatestPerProducer) {
  SegmentStats stats;
  VisitRateAggregator agg(&stats);
  agg.Observe(/*producer=*/0, 0.5);
  EXPECT_DOUBLE_EQ(stats.visit_rate.load(), 0.5);
  agg.Observe(/*producer=*/1, 0.25);
  EXPECT_DOUBLE_EQ(stats.visit_rate.load(), 0.75);
  // Producer 0 refreshes its contribution; the old 0.5 is replaced, not added.
  agg.Observe(/*producer=*/0, 0.3);
  EXPECT_DOUBLE_EQ(stats.visit_rate.load(), 0.55);
}

TEST(RateSamplerTest, FirstSamplePrimes) {
  RateSampler s;
  EXPECT_EQ(s.Sample(100, 1'000'000'000), 0.0);
  // 100 more units over 1 second → 100/s.
  EXPECT_DOUBLE_EQ(s.Sample(200, 2'000'000'000), 100.0);
}

TEST(RateSamplerTest, HandlesZeroDt) {
  RateSampler s;
  s.Sample(0, 5);
  EXPECT_EQ(s.Sample(10, 5), 0.0);
}

TEST(RateSamplerTest, ResetReprimes) {
  RateSampler s;
  s.Sample(100, 1'000'000'000);
  s.Reset();
  EXPECT_EQ(s.Sample(500, 2'000'000'000), 0.0);
  EXPECT_DOUBLE_EQ(s.Sample(600, 3'000'000'000), 100.0);
}

TEST(RateSamplerTest, SubSecondIntervals) {
  RateSampler s;
  s.Sample(0, 0);
  // 50 tuples in 50 ms → 1000 tuples/s.
  EXPECT_DOUBLE_EQ(s.Sample(50, 50'000'000), 1000.0);
}

}  // namespace
}  // namespace claims
