// End-to-end SQL execution: the full stack (parser → binder → planner →
// distributed elastic execution) against independently computed oracles and
// cross-mode consistency checks.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/string_util.h"
#include "engine/database.h"
#include "engine/workloads.h"

namespace claims {
namespace {

/// Row-wise scan helper over every partition of a table.
template <typename Fn>
void ForEachRow(const Table& table, Fn&& fn) {
  for (int p = 0; p < table.num_partitions(); ++p) {
    const TablePartition& part = table.partition(p);
    for (int b = 0; b < part.num_blocks(); ++b) {
      const Block& blk = *part.block(b);
      for (int r = 0; r < blk.num_rows(); ++r) fn(blk.RowAt(r));
    }
  }
}

class SqlExecTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatabaseOptions options;
    options.cluster.num_nodes = 3;
    options.cluster.cores_per_node = 4;
    db_ = new Database(options);
    TpchConfig tpch;
    tpch.scale_factor = 0.002;
    ASSERT_TRUE(db_->LoadTpch(tpch).ok());
    SseConfig sse;
    sse.securities_rows = 4000;
    sse.trades_rows = 6000;
    sse.num_accounts = 300;
    sse.num_securities = 50;
    ASSERT_TRUE(db_->LoadSse(sse).ok());
  }
  static void TearDownTestSuite() { delete db_; }

  static ResultSet Run(std::string_view sql, ExecMode mode = ExecMode::kStatic,
                       int parallelism = 2) {
    ExecOptions opts;
    opts.mode = mode;
    opts.parallelism = parallelism;
    auto r = db_->Query(sql, opts);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
    return r.ok() ? std::move(*r) : ResultSet();
  }

  static Database* db_;
};

Database* SqlExecTest::db_ = nullptr;

TEST_F(SqlExecTest, CountStar) {
  ResultSet r = Run("SELECT count(*) FROM orders");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.Get(0, 0).AsInt64(),
            (*db_->catalog()->GetTable("orders"))->num_rows());
}

TEST_F(SqlExecTest, FilterCountMatchesOracle) {
  TablePtr orders = *db_->catalog()->GetTable("orders");
  const Schema& s = orders->schema();
  int col = s.FindColumn("o_totalprice");
  int64_t expected = 0;
  ForEachRow(*orders, [&](const char* row) {
    if (s.GetFloat64(row, col) > 150000.0) ++expected;
  });
  ResultSet r =
      Run("SELECT count(*) FROM orders WHERE o_totalprice > 150000.0");
  EXPECT_EQ(r.Get(0, 0).AsInt64(), expected);
}

TEST_F(SqlExecTest, ScalarAggregatesMatchOracle) {
  TablePtr lineitem = *db_->catalog()->GetTable("lineitem");
  const Schema& s = lineitem->schema();
  int qty = s.FindColumn("l_quantity");
  double sum = 0, mn = 1e18, mx = -1e18;
  int64_t count = 0;
  ForEachRow(*lineitem, [&](const char* row) {
    double v = s.GetFloat64(row, qty);
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    ++count;
  });
  ResultSet r = Run(
      "SELECT sum(l_quantity), avg(l_quantity), min(l_quantity), "
      "max(l_quantity), count(*) FROM lineitem");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_NEAR(r.Get(0, 0).ToDouble(), sum, 1e-6 * sum);
  EXPECT_NEAR(r.Get(0, 1).AsFloat64(), sum / count, 1e-6);
  EXPECT_DOUBLE_EQ(r.Get(0, 2).ToDouble(), mn);
  EXPECT_DOUBLE_EQ(r.Get(0, 3).ToDouble(), mx);
  EXPECT_EQ(r.Get(0, 4).AsInt64(), count);
}

TEST_F(SqlExecTest, GroupByMatchesOracle) {
  TablePtr lineitem = *db_->catalog()->GetTable("lineitem");
  const Schema& s = lineitem->schema();
  int rf = s.FindColumn("l_returnflag");
  int qty = s.FindColumn("l_quantity");
  std::map<std::string, std::pair<double, int64_t>> oracle;
  ForEachRow(*lineitem, [&](const char* row) {
    auto& agg = oracle[std::string(s.GetString(row, rf))];
    agg.first += s.GetFloat64(row, qty);
    agg.second += 1;
  });
  ResultSet r = Run(
      "SELECT l_returnflag, sum(l_quantity), count(*) FROM lineitem "
      "GROUP BY l_returnflag ORDER BY l_returnflag");
  ASSERT_EQ(r.num_rows(), static_cast<int64_t>(oracle.size()));
  int64_t i = 0;
  for (const auto& [flag, agg] : oracle) {  // map iterates sorted
    EXPECT_EQ(r.Get(i, 0).AsString(), flag);
    EXPECT_NEAR(r.Get(i, 1).ToDouble(), agg.first, 1e-6 * agg.first);
    EXPECT_EQ(r.Get(i, 2).AsInt64(), agg.second);
    ++i;
  }
}

TEST_F(SqlExecTest, RepartitionJoinMatchesOracle) {
  // SSE-Q6: count matching (trades ⋈ securities on acct_id) pairs.
  TablePtr trades = *db_->catalog()->GetTable("trades");
  TablePtr securities = *db_->catalog()->GetTable("securities");
  const Schema& ts = trades->schema();
  const Schema& ss = securities->schema();
  int32_t date = DaysFromCivil(2010, 10, 30);
  std::map<int32_t, int64_t> trade_accts;  // acct → #trades on date
  ForEachRow(*trades, [&](const char* row) {
    if (ts.GetInt32(row, ts.FindColumn("trade_date")) == date) {
      trade_accts[ts.GetInt32(row, ts.FindColumn("acct_id"))]++;
    }
  });
  int64_t expected = 0;
  ForEachRow(*securities, [&](const char* row) {
    if (ss.GetInt32(row, ss.FindColumn("sec_code")) == 600036) {
      auto it = trade_accts.find(ss.GetInt32(row, ss.FindColumn("acct_id")));
      if (it != trade_accts.end()) expected += it->second;
    }
  });
  ResultSet r = Run(*SseQuery(6));
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.Get(0, 0).AsInt64(), expected);
}

TEST_F(SqlExecTest, SseQ9MatchesOracle) {
  TablePtr trades = *db_->catalog()->GetTable("trades");
  TablePtr securities = *db_->catalog()->GetTable("securities");
  const Schema& ts = trades->schema();
  const Schema& ss = securities->schema();
  int32_t date = DaysFromCivil(2010, 10, 30);
  struct Group {
    int64_t trade_volume = 0;
    int64_t entry_volume = 0;
  };
  // Join on acct_id, group by (sec_code of trade, acct_id).
  std::map<int32_t, std::vector<std::pair<int32_t, int64_t>>> secs_by_acct;
  ForEachRow(*securities, [&](const char* row) {
    if (ss.GetInt32(row, 3) == date) {  // entry_date
      secs_by_acct[ss.GetInt32(row, 1)].emplace_back(
          ss.GetInt32(row, 1), ss.GetInt64(row, 4));
    }
  });
  std::map<std::pair<int32_t, int32_t>, Group> oracle;
  ForEachRow(*trades, [&](const char* row) {
    if (ts.GetInt32(row, 2) != date) return;  // trade_date
    int32_t acct = ts.GetInt32(row, 0);
    auto it = secs_by_acct.find(acct);
    if (it == secs_by_acct.end()) return;
    int32_t sec = ts.GetInt32(row, 1);
    for (const auto& [s_acct, entry_vol] : it->second) {
      Group& g = oracle[{sec, s_acct}];
      g.trade_volume += ts.GetInt64(row, 5);
      g.entry_volume += entry_vol;
    }
  });
  ResultSet r = Run(*SseQuery(9));
  ASSERT_EQ(r.num_rows(), static_cast<int64_t>(oracle.size()));
  auto rows = r.Rows(/*sorted=*/true);
  int64_t i = 0;
  for (const auto& [key, g] : oracle) {
    EXPECT_EQ(rows[i][0].AsInt64(), key.first);
    EXPECT_EQ(rows[i][1].AsInt64(), key.second);
    EXPECT_EQ(rows[i][2].AsInt64(), g.trade_volume);
    EXPECT_EQ(rows[i][3].AsInt64(), g.entry_volume);
    ++i;
  }
}

TEST_F(SqlExecTest, OrderByAndLimit) {
  ResultSet r = Run(
      "SELECT o_orderkey, o_totalprice FROM orders "
      "ORDER BY o_totalprice DESC LIMIT 10");
  ASSERT_EQ(r.num_rows(), 10);
  double prev = 1e18;
  for (int i = 0; i < 10; ++i) {
    double v = r.Get(i, 1).AsFloat64();
    EXPECT_LE(v, prev);
    prev = v;
  }
  // Top value matches the oracle max.
  TablePtr orders = *db_->catalog()->GetTable("orders");
  const Schema& s = orders->schema();
  double mx = 0;
  ForEachRow(*orders, [&](const char* row) {
    mx = std::max(mx, s.GetFloat64(row, s.FindColumn("o_totalprice")));
  });
  EXPECT_DOUBLE_EQ(r.Get(0, 1).AsFloat64(), mx);
}

TEST_F(SqlExecTest, HavingFiltersGroups) {
  ResultSet all = Run(
      "SELECT l_suppkey, count(*) AS c FROM lineitem GROUP BY l_suppkey");
  // Split on the median group size so both sides are non-empty.
  std::vector<int64_t> counts;
  for (const auto& row : all.Rows()) counts.push_back(row[1].AsInt64());
  std::sort(counts.begin(), counts.end());
  int64_t threshold = counts[counts.size() / 2];
  ResultSet filtered = Run(StrFormat(
      "SELECT l_suppkey, count(*) AS c FROM lineitem GROUP BY l_suppkey "
      "HAVING count(*) > %lld",
      static_cast<long long>(threshold)));
  int64_t expected = 0;
  for (int64_t c : counts) {
    if (c > threshold) ++expected;
  }
  EXPECT_EQ(filtered.num_rows(), expected);
  EXPECT_LT(filtered.num_rows(), all.num_rows());
  EXPECT_GT(filtered.num_rows(), 0);
}

TEST_F(SqlExecTest, CaseExpressionInAggregate) {
  // Q12 shape: the two CASE sums must add up to the plain count.
  ResultSet r = Run(
      "SELECT sum(CASE WHEN o_orderpriority = '1-URGENT' THEN 1 ELSE 0 END), "
      "sum(CASE WHEN o_orderpriority <> '1-URGENT' THEN 1 ELSE 0 END), "
      "count(*) FROM orders");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.Get(0, 0).AsInt64() + r.Get(0, 1).AsInt64(),
            r.Get(0, 2).AsInt64());
  EXPECT_GT(r.Get(0, 0).AsInt64(), 0);
}

TEST_F(SqlExecTest, DerivedTableJoin) {
  // Q2's decorrelated shape on SSE data: per-account minimum price joined
  // back to find rows at that minimum.
  ResultSet r = Run(
      "SELECT count(*) FROM trades t, "
      "(SELECT acct_id AS m_acct, min(order_price) AS m_price FROM trades "
      " GROUP BY acct_id) m "
      "WHERE t.acct_id = m_acct AND t.order_price = m_price");
  ASSERT_EQ(r.num_rows(), 1);
  // At least one minimal-price trade per distinct account.
  TablePtr trades = *db_->catalog()->GetTable("trades");
  const Schema& ts = trades->schema();
  std::map<int32_t, double> min_price;
  std::map<std::pair<int32_t, double>, int64_t> count_at;
  ForEachRow(*trades, [&](const char* row) {
    int32_t acct = ts.GetInt32(row, 0);
    double price = ts.GetFloat64(row, 4);
    auto it = min_price.find(acct);
    if (it == min_price.end() || price < it->second) min_price[acct] = price;
    count_at[{acct, price}]++;
  });
  int64_t expected = 0;
  for (const auto& [acct, price] : min_price) {
    expected += count_at[{acct, price}];
  }
  EXPECT_EQ(r.Get(0, 0).AsInt64(), expected);
}

// --- Cross-mode / cross-parallelism consistency over the full workload ---------

struct ModeParam {
  ExecMode mode;
  int parallelism;
};

class WorkloadConsistencyTest
    : public SqlExecTest,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(WorkloadConsistencyTest, AllModesAgree) {
  std::string_view sql;
  std::string name = GetParam();
  if (name[0] == 'S' && name[1] == 'Q') {
    sql = *SyntheticQuery(name[2] - '0');
  } else if (name[0] == 'E') {
    sql = *SseQuery(name[1] - '0');
  } else {
    sql = *TpchQuery(std::atoi(name.c_str() + 1));
  }
  ResultSet baseline = Run(sql, ExecMode::kStatic, 1);
  auto expect = baseline.Rows(/*sorted=*/true);
  for (ModeParam mp : {ModeParam{ExecMode::kStatic, 4},
                       ModeParam{ExecMode::kMaterialized, 2},
                       ModeParam{ExecMode::kElastic, 1}}) {
    ResultSet r = Run(sql, mp.mode, mp.parallelism);
    auto rows = r.Rows(/*sorted=*/true);
    ASSERT_EQ(rows.size(), expect.size())
        << ExecModeName(mp.mode) << " p=" << mp.parallelism;
    for (size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(rows[i].size(), expect[i].size());
      for (size_t c = 0; c < rows[i].size(); ++c) {
        if (rows[i][c].type() == DataType::kFloat64) {
          double a = rows[i][c].AsFloat64();
          double b = expect[i][c].AsFloat64();
          ASSERT_NEAR(a, b, 1e-6 * std::max(1.0, std::fabs(b)))
              << "row " << i << " col " << c;
        } else {
          ASSERT_EQ(rows[i][c].ToString(), expect[i][c].ToString())
              << "row " << i << " col " << c;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workload, WorkloadConsistencyTest,
    ::testing::Values("SQ1", "SQ2", "SQ3", "SQ4", "SQ5",  // synthetic
                      "E6", "E7", "E8", "E9",             // SSE
                      "Q1", "Q2", "Q3", "Q5", "Q6", "Q7", "Q8", "Q9", "Q10",
                      "Q12", "Q14"));

}  // namespace
}  // namespace claims
