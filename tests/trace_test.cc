// TraceCollector / MetricsRegistry unit tests: concurrent emission keeps a
// stable total order, virtual-clock timestamps pass through untouched, the
// disabled path records nothing, and the Chrome JSON export is well-formed.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace claims {
namespace {

TEST(TraceCollectorTest, DisabledPathRecordsNothing) {
  TraceCollector tc;
  ASSERT_FALSE(tc.enabled());
  tc.Instant(100, 0, "test", "never", {{"k", 1}});
  tc.Counter(200, 0, "series", 3.0);
  tc.Complete(0, 50, 0, "test", "span");
  TraceEvent ev;
  ev.name = "direct";
  tc.Emit(std::move(ev));
  EXPECT_EQ(tc.size(), 0u);
  EXPECT_TRUE(tc.Snapshot().empty());
}

TEST(TraceCollectorTest, ConcurrentEmittersKeepUniqueIncreasingSeq) {
  TraceCollector tc;
  tc.Enable();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tc, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Deliberately colliding timestamps: seq must break the ties.
        tc.Instant(/*ts_ns=*/i, /*pid=*/t, "test", "e",
                   {{"thread", t}, {"i", i}});
      }
    });
  }
  for (auto& th : threads) th.join();

  std::vector<TraceEvent> events = tc.Snapshot();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kPerThread));
  std::vector<bool> seen(events.size(), false);
  for (size_t i = 0; i < events.size(); ++i) {
    ASSERT_GE(events[i].seq, 0);
    ASSERT_LT(events[i].seq, static_cast<int64_t>(events.size()));
    EXPECT_FALSE(seen[static_cast<size_t>(events[i].seq)]) << "duplicate seq";
    seen[static_cast<size_t>(events[i].seq)] = true;
    if (i > 0) {
      // Snapshot order: (ts, seq) non-decreasing lexicographically.
      ASSERT_LE(events[i - 1].ts_ns, events[i].ts_ns);
      if (events[i - 1].ts_ns == events[i].ts_ns) {
        ASSERT_LT(events[i - 1].seq, events[i].seq);
      }
    }
  }
  // Per-thread emission order is preserved in seq (each thread's events were
  // stamped in program order).
  std::vector<int64_t> last_seq(kThreads, -1);
  for (const TraceEvent& ev : tc.Snapshot()) {
    int t = ev.pid;
    EXPECT_GT(ev.seq, last_seq[static_cast<size_t>(t)]);
    last_seq[static_cast<size_t>(t)] = ev.seq;
  }
}

/// Fixed-time Clock standing in for the simulator's virtual clock.
class ManualClock : public Clock {
 public:
  int64_t NowNanos() const override { return now_; }
  void set(int64_t ns) { now_ = ns; }

 private:
  int64_t now_ = 0;
};

TEST(TraceCollectorTest, VirtualClockTimestampsPassThrough) {
  TraceCollector tc;
  tc.Enable();
  ManualClock clock;
  clock.set(42);
  tc.Instant(clock.NowNanos(), 1000, "sim", "first");
  clock.set(7);  // virtual time of another node, earlier than the first
  tc.Counter(clock.NowNanos(), 1001, "parallelism:S1", 3);
  clock.set(50'000'000'000);  // far future virtual time
  tc.Complete(clock.NowNanos(), 10, 1000, "sim", "span");

  std::vector<TraceEvent> events = tc.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by timestamp, not emission order.
  EXPECT_EQ(events[0].ts_ns, 7);
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kCounter);
  EXPECT_EQ(events[1].ts_ns, 42);
  EXPECT_EQ(events[2].ts_ns, 50'000'000'000);
  EXPECT_EQ(events[2].dur_ns, 10);
}

TEST(TraceCollectorTest, ChromeJsonIsWellFormed) {
  TraceCollector tc;
  tc.Enable();
  tc.Instant(1500, 3, "sched", "Expand",
             {{"segment", "S1@n0"}, {"lambda", 2.5}, {"R_i", 3}});
  tc.Counter(2000, 3, "parallelism:S1@n0", 4);
  tc.Complete(1000, 500, 3, "segment", "quote\"and\\slash\nnewline");

  std::string json = tc.ToChromeJson();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Microsecond timestamps (1500 ns = 1.5 us).
  EXPECT_NE(json.find("\"ts\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"lambda\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"segment\":\"S1@n0\""), std::string::npos);
  // Control characters and quotes must be escaped.
  EXPECT_NE(json.find("quote\\\"and\\\\slash\\nnewline"), std::string::npos);
  // The raw newline inside the event name must NOT survive into a JSON
  // string: every '\n' in the output is inter-record formatting, i.e.
  // directly adjacent to a record boundary.
  for (size_t pos = json.find('\n'); pos != std::string::npos;
       pos = json.find('\n', pos + 1)) {
    ASSERT_TRUE(pos + 1 == json.size() || json[pos - 1] == '[' ||
                json[pos - 1] == ',' || json[pos + 1] == ']')
        << "raw newline inside a record at offset " << pos;
  }
}

TEST(TraceCollectorTest, ClearEmptiesAndSeqRestarts) {
  TraceCollector tc;
  tc.Enable();
  tc.Instant(1, 0, "t", "a");
  ASSERT_EQ(tc.size(), 1u);
  tc.Clear();
  EXPECT_EQ(tc.size(), 0u);
  tc.Instant(2, 0, "t", "b");
  EXPECT_EQ(tc.Snapshot()[0].seq, 0);
}

TEST(TraceEnvScopeTest, WritesTraceWhereEnvPoints) {
  std::string path = ::testing::TempDir() + "/claims_trace_env_test.json";
  ::setenv("CLAIMS_TRACE", path.c_str(), 1);
  {
    TraceEnvScope scope;
    ASSERT_TRUE(scope.active());
    ASSERT_TRUE(TraceCollector::Global()->enabled());
    TraceCollector::Global()->Instant(1, 0, "test", "env-scoped");
  }
  ::unsetenv("CLAIMS_TRACE");
  EXPECT_FALSE(TraceCollector::Global()->enabled());
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  EXPECT_NE(std::string(buf).find("env-scoped"), std::string::npos);
  std::remove(path.c_str());
  TraceCollector::Global()->Clear();
}

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry reg;
  MetricCounter* c = reg.counter("test.count");
  EXPECT_EQ(c, reg.counter("test.count"));  // get-or-create is stable
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42);

  MetricGauge* g = reg.gauge("test.peak");
  g->UpdateMax(3.0);
  g->UpdateMax(1.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(g->value(), 3.0);

  MetricHistogram* h = reg.histogram("test.latency");
  for (int64_t v : {1, 2, 100, 1000, 1000000}) h->Record(v);
  EXPECT_EQ(h->count(), 5);
  EXPECT_EQ(h->min(), 1);
  EXPECT_EQ(h->max(), 1000000);
  EXPECT_DOUBLE_EQ(h->mean(), (1 + 2 + 100 + 1000 + 1000000) / 5.0);
  EXPECT_GE(h->Percentile(0.5), 100);
  EXPECT_LE(h->Percentile(0.5), 128);  // log2 bucket upper bound
  EXPECT_GE(h->Percentile(1.0), 1000000);

  std::string snap = reg.TextSnapshot();
  EXPECT_NE(snap.find("counter test.count 42"), std::string::npos);
  EXPECT_NE(snap.find("test.peak"), std::string::npos);
  EXPECT_NE(snap.find("test.latency"), std::string::npos);

  reg.ResetAll();
  EXPECT_EQ(c->value(), 0);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0);
}

TEST(TraceCollectorTest, FlightRecorderBoundsMemoryAndCountsDrops) {
  TraceCollector tc;
  tc.ConfigureFlightRecorder(64);  // 4 slots per shard across 16 shards
  tc.Enable();
  EXPECT_EQ(tc.flight_recorder_capacity(), 64u);
  // Overfill from one thread (one shard): the shard ring holds 4, the rest
  // of the emissions overwrite the oldest and count as dropped.
  for (int i = 0; i < 100; ++i) {
    tc.Instant(i, 0, "test", "ev" + std::to_string(i));
  }
  EXPECT_EQ(tc.size(), 4u);
  EXPECT_EQ(tc.dropped_events(), 96);
  // The surviving window is the most recent events, not the first ones.
  std::vector<TraceEvent> events = tc.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (const TraceEvent& ev : events) EXPECT_GE(ev.ts_ns, 96);
}

TEST(TraceCollectorTest, FlightRecorderReconfigureAndRestoreUnbounded) {
  TraceCollector tc;
  tc.ConfigureFlightRecorder(16);
  tc.Enable();
  for (int i = 0; i < 10; ++i) tc.Instant(i, 0, "test", "a");
  // Reconfiguring clears the buffer and resets the drop count.
  tc.ConfigureFlightRecorder(32);
  EXPECT_EQ(tc.size(), 0u);
  EXPECT_EQ(tc.dropped_events(), 0);
  // Capacity 0 restores unbounded capture.
  tc.ConfigureFlightRecorder(0);
  EXPECT_EQ(tc.flight_recorder_capacity(), 0u);
  for (int i = 0; i < 500; ++i) tc.Instant(i, 0, "test", "b");
  EXPECT_EQ(tc.size(), 500u);
  EXPECT_EQ(tc.dropped_events(), 0);
}

TEST(TraceCollectorTest, FlightRecorderTinyCapacityStillKeepsOnePerShard) {
  TraceCollector tc;
  tc.ConfigureFlightRecorder(1);  // less than one slot per shard
  tc.Enable();
  for (int i = 0; i < 10; ++i) tc.Instant(i, 0, "test", "x");
  EXPECT_EQ(tc.size(), 1u);  // single-threaded: one shard, one slot
  EXPECT_EQ(tc.dropped_events(), 9);
}

TEST(TraceCollectorTest, FlightRecorderConcurrentWritersStayBounded) {
  TraceCollector tc;
  constexpr size_t kCapacity = 256;
  tc.ConfigureFlightRecorder(kCapacity);
  tc.Enable();
  constexpr int kThreads = 8, kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tc, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tc.Instant(t * kPerThread + i, t, "stress", "e");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(tc.size(), kCapacity);
  EXPECT_EQ(static_cast<int64_t>(tc.size()) + tc.dropped_events(),
            int64_t{kThreads} * kPerThread);
  // The export still renders valid JSON from a wrapped ring.
  std::string json = tc.ToChromeJson();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
}

TEST(MetricsRegistryTest, ConcurrentCountersAreExact) {
  MetricsRegistry reg;
  MetricCounter* c = reg.counter("concurrent");
  constexpr int kThreads = 8, kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kAdds; ++i) c->Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->value(), kThreads * kAdds);
}

}  // namespace
}  // namespace claims
