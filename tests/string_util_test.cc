#include "common/string_util.h"

#include <gtest/gtest.h>

namespace claims {
namespace {

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
  EXPECT_EQ(ToUpper("AbC123"), "ABC123");
}

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KB");
  EXPECT_EQ(HumanBytes(3LL * 1024 * 1024 * 1024), "3.00 GB");
}

}  // namespace
}  // namespace claims
