#include "common/status.h"

#include <gtest/gtest.h>

#include "common/macros.h"

namespace claims {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kPlanError); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chain(int x) {
  CLAIMS_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(MacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kOutOfRange);
}

Result<int> Doubled(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return 2 * x;
}

Result<int> UseAssign(int x) {
  int v = 0;
  CLAIMS_ASSIGN_OR_RETURN(v, Doubled(x));
  return v + 1;
}

TEST(MacrosTest, AssignOrReturn) {
  Result<int> ok = UseAssign(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 11);
  EXPECT_FALSE(UseAssign(-5).ok());
}

}  // namespace
}  // namespace claims
