#include "obs/prometheus.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "obs/metrics_registry.h"

namespace claims {
namespace {

// ---- A miniature scrape parser -------------------------------------------
// Implements just enough of the Prometheus text exposition format 0.0.4 to
// round-trip what PrometheusSnapshot emits: "# TYPE" lines plus
// "series{label=\"v\",...} value" samples. Unescapes label values, rejects
// anything malformed — a golden-file check that the exposition stays
// machine-readable, not merely human-plausible.

struct ParsedSample {
  std::string series;
  std::map<std::string, std::string> labels;
  double value = 0;
};

struct Scrape {
  std::map<std::string, std::string> types;  // series -> counter/gauge/...
  std::vector<ParsedSample> samples;
};

bool ParseLabels(const std::string& text,
                 std::map<std::string, std::string>* labels) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eq = text.find('=', pos);
    if (eq == std::string::npos || text[eq + 1] != '"') return false;
    std::string key = text.substr(pos, eq - pos);
    std::string value;
    size_t i = eq + 2;
    for (; i < text.size() && text[i] != '"'; ++i) {
      if (text[i] == '\\') {
        ++i;
        if (i >= text.size()) return false;
        switch (text[i]) {
          case 'n': value += '\n'; break;
          case '\\': value += '\\'; break;
          case '"': value += '"'; break;
          default: return false;
        }
      } else {
        value += text[i];
      }
    }
    if (i >= text.size()) return false;  // unterminated value
    (*labels)[key] = value;
    pos = i + 1;
    if (pos < text.size()) {
      if (text[pos] != ',') return false;
      ++pos;
    }
  }
  return true;
}

bool ParseScrape(const std::string& exposition, Scrape* out) {
  for (const std::string& line : Split(exposition, '\n')) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::vector<std::string> parts = Split(line, ' ');
      if (parts.size() != 4 || parts[1] != "TYPE") return false;
      out->types[parts[2]] = parts[3];
      continue;
    }
    ParsedSample sample;
    size_t brace = line.find('{');
    size_t space;
    if (brace != std::string::npos) {
      size_t close = line.find('}', brace);
      if (close == std::string::npos) return false;
      sample.series = line.substr(0, brace);
      if (!ParseLabels(line.substr(brace + 1, close - brace - 1),
                       &sample.labels)) {
        return false;
      }
      space = close + 1;
    } else {
      space = line.find(' ');
      sample.series = line.substr(0, space);
    }
    if (space == std::string::npos || line[space] != ' ') return false;
    std::string value = line.substr(space + 1);
    if (value == "+Inf") return false;  // values are finite; le may be +Inf
    sample.value = std::stod(value);
    out->samples.push_back(std::move(sample));
  }
  return true;
}

const ParsedSample* FindSample(const Scrape& scrape, const std::string& series,
                               const std::map<std::string, std::string>& labels =
                                   {}) {
  for (const ParsedSample& s : scrape.samples) {
    if (s.series != series) continue;
    bool match = true;
    for (const auto& [k, v] : labels) {
      auto it = s.labels.find(k);
      if (it == s.labels.end() || it->second != v) {
        match = false;
        break;
      }
    }
    if (match) return &s;
  }
  return nullptr;
}

// ---- Name / label handling ------------------------------------------------

TEST(PrometheusNameTest, DotsBecomeUnderscores) {
  EXPECT_EQ(PrometheusSanitizeName("scheduler.pair_moves"),
            "scheduler_pair_moves");
  EXPECT_EQ(PrometheusSanitizeName("net.bytes_sent"), "net_bytes_sent");
}

TEST(PrometheusNameTest, InvalidCharactersAndLeadingDigit) {
  EXPECT_EQ(PrometheusSanitizeName("a-b c/d"), "a_b_c_d");
  EXPECT_EQ(PrometheusSanitizeName("9lives"), "_9lives");
  EXPECT_EQ(PrometheusSanitizeName(""), "_");
}

TEST(PrometheusLabelTest, EscapesQuotesBackslashesNewlines) {
  EXPECT_EQ(PrometheusEscapeLabel("S1@n0"), "S1@n0");
  EXPECT_EQ(PrometheusEscapeLabel("a\"b"), "a\\\"b");
  EXPECT_EQ(PrometheusEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeLabel("a\nb"), "a\\nb");
}

// ---- Exposition semantics --------------------------------------------------

TEST(PrometheusSnapshotTest, CounterAndGaugeWithInstanceLabels) {
  MetricsRegistry reg;
  reg.counter("scheduler.ticks")->Add(42);
  reg.gauge("buffer.peak:S1@n0")->Set(63);

  Scrape scrape;
  ASSERT_TRUE(ParseScrape(PrometheusSnapshot(reg), &scrape));
  EXPECT_EQ(scrape.types["scheduler_ticks"], "counter");
  EXPECT_EQ(scrape.types["buffer_peak"], "gauge");

  const ParsedSample* ticks = FindSample(scrape, "scheduler_ticks");
  ASSERT_NE(ticks, nullptr);
  EXPECT_EQ(ticks->value, 42);
  EXPECT_TRUE(ticks->labels.empty());

  const ParsedSample* peak =
      FindSample(scrape, "buffer_peak", {{"instance", "S1@n0"}});
  ASSERT_NE(peak, nullptr);
  EXPECT_EQ(peak->value, 63);
}

TEST(PrometheusSnapshotTest, HistogramBucketsAreCumulativeWithInf) {
  MetricsRegistry reg;
  MetricHistogram* h = reg.histogram("lat.ns");
  h->Record(1);   // bucket 1 (le 1)
  h->Record(3);   // bucket 2 (le 3)
  h->Record(3);
  h->Record(100);  // bucket 7 (le 127)

  Scrape scrape;
  ASSERT_TRUE(ParseScrape(PrometheusSnapshot(reg), &scrape));
  EXPECT_EQ(scrape.types["lat_ns"], "histogram");

  // Cumulative: le=1 -> 1, le=3 -> 3, le=127 -> 4, +Inf -> 4 == _count.
  const ParsedSample* le1 = FindSample(scrape, "lat_ns_bucket", {{"le", "1"}});
  const ParsedSample* le3 = FindSample(scrape, "lat_ns_bucket", {{"le", "3"}});
  const ParsedSample* le127 =
      FindSample(scrape, "lat_ns_bucket", {{"le", "127"}});
  const ParsedSample* inf =
      FindSample(scrape, "lat_ns_bucket", {{"le", "+Inf"}});
  const ParsedSample* count = FindSample(scrape, "lat_ns_count");
  const ParsedSample* sum = FindSample(scrape, "lat_ns_sum");
  ASSERT_NE(le1, nullptr);
  ASSERT_NE(le3, nullptr);
  ASSERT_NE(le127, nullptr);
  ASSERT_NE(inf, nullptr);
  ASSERT_NE(count, nullptr);
  ASSERT_NE(sum, nullptr);
  EXPECT_EQ(le1->value, 1);
  EXPECT_EQ(le3->value, 3);
  EXPECT_EQ(le127->value, 4);
  EXPECT_EQ(inf->value, 4);
  EXPECT_EQ(count->value, 4);
  EXPECT_EQ(sum->value, 1 + 3 + 3 + 100);

  // Monotone non-decreasing across every bucket line of the series, in
  // emission order — the property scrapers actually verify.
  double prev = 0;
  for (const ParsedSample& s : scrape.samples) {
    if (s.series != "lat_ns_bucket") continue;
    EXPECT_GE(s.value, prev);
    prev = s.value;
  }
}

TEST(PrometheusSnapshotTest, EmptyHistogramStillWellFormed) {
  MetricsRegistry reg;
  reg.histogram("empty.h");
  Scrape scrape;
  ASSERT_TRUE(ParseScrape(PrometheusSnapshot(reg), &scrape));
  const ParsedSample* inf =
      FindSample(scrape, "empty_h_bucket", {{"le", "+Inf"}});
  const ParsedSample* count = FindSample(scrape, "empty_h_count");
  ASSERT_NE(inf, nullptr);
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(inf->value, 0);
  EXPECT_EQ(count->value, 0);
}

TEST(PrometheusSnapshotTest, OneTypeLinePerSeriesAcrossInstances) {
  MetricsRegistry reg;
  reg.gauge("buffer.peak:S1@n0")->Set(1);
  reg.gauge("buffer.peak:S2@n1")->Set(2);
  std::string text = PrometheusSnapshot(reg);
  size_t first = text.find("# TYPE buffer_peak gauge");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE buffer_peak gauge", first + 1),
            std::string::npos);
}

// Golden-file round trip: the full exposition of a representative registry
// parses, and every metric value survives.
TEST(PrometheusSnapshotTest, GoldenRoundTrip) {
  MetricsRegistry reg;
  reg.counter("wlm.submitted")->Add(128);
  reg.counter("trace.dropped_events");
  reg.gauge("scheduler.node0.cores_in_use")->Set(17);
  reg.gauge("odd.gauge:with\"quote")->Set(2.5);
  MetricHistogram* h = reg.histogram("wlm.latency_ns:node0");
  for (int i = 0; i < 1000; ++i) h->Record(i * 1000);

  std::string text = PrometheusSnapshot(reg);
  Scrape scrape;
  ASSERT_TRUE(ParseScrape(text, &scrape)) << text;

  EXPECT_EQ(FindSample(scrape, "wlm_submitted")->value, 128);
  EXPECT_EQ(FindSample(scrape, "trace_dropped_events")->value, 0);
  EXPECT_EQ(FindSample(scrape, "scheduler_node0_cores_in_use")->value, 17);
  const ParsedSample* odd =
      FindSample(scrape, "odd_gauge", {{"instance", "with\"quote"}});
  ASSERT_NE(odd, nullptr);
  EXPECT_EQ(odd->value, 2.5);
  const ParsedSample* count =
      FindSample(scrape, "wlm_latency_ns_count", {{"instance", "node0"}});
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->value, 1000);
}

// ---- Satellite fix: MetricHistogram::max on empty --------------------------

TEST(MetricHistogramTest, EmptyMaxIsZeroNotSentinel) {
  MetricHistogram h;
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.min(), 0);
  h.Record(5);
  EXPECT_EQ(h.max(), 5);
}

TEST(MetricsRegistryTest, TextSnapshotIncludesP99) {
  MetricsRegistry reg;
  MetricHistogram* h = reg.histogram("x");
  for (int i = 0; i < 100; ++i) h->Record(10);
  std::string text = reg.TextSnapshot();
  EXPECT_NE(text.find("p99="), std::string::npos) << text;
}

TEST(MetricsRegistryTest, TextSnapshotEmptyHistogramMaxZero) {
  MetricsRegistry reg;
  reg.histogram("never.recorded");
  std::string text = reg.TextSnapshot();
  EXPECT_NE(text.find("max=0"), std::string::npos) << text;
  EXPECT_EQ(text.find("-9223372036854775808"), std::string::npos) << text;
}

}  // namespace
}  // namespace claims
