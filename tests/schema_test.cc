#include "storage/schema.h"

#include <gtest/gtest.h>

#include <vector>

namespace claims {
namespace {

Schema TestSchema() {
  return Schema({ColumnDef::Int32("a"), ColumnDef::Int64("b"),
                 ColumnDef::Float64("c"), ColumnDef::Date("d"),
                 ColumnDef::Char("e", 10)});
}

TEST(SchemaTest, LayoutOffsets) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_columns(), 5);
  EXPECT_EQ(s.offset(0), 0);
  EXPECT_EQ(s.offset(1), 4);
  EXPECT_EQ(s.offset(2), 12);
  EXPECT_EQ(s.offset(3), 20);
  EXPECT_EQ(s.offset(4), 24);
  EXPECT_EQ(s.row_size(), 34);
}

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema s = TestSchema();
  EXPECT_EQ(s.FindColumn("a"), 0);
  EXPECT_EQ(s.FindColumn("E"), 4);
  EXPECT_EQ(s.FindColumn("zzz"), -1);
}

TEST(SchemaTest, RawFieldRoundTrip) {
  Schema s = TestSchema();
  std::vector<char> row(s.row_size());
  s.SetInt32(row.data(), 0, -42);
  s.SetInt64(row.data(), 1, 1LL << 40);
  s.SetFloat64(row.data(), 2, 3.25);
  s.SetInt32(row.data(), 3, 14912);
  s.SetString(row.data(), 4, "hello");
  EXPECT_EQ(s.GetInt32(row.data(), 0), -42);
  EXPECT_EQ(s.GetInt64(row.data(), 1), 1LL << 40);
  EXPECT_EQ(s.GetFloat64(row.data(), 2), 3.25);
  EXPECT_EQ(s.GetInt32(row.data(), 3), 14912);
  EXPECT_EQ(s.GetString(row.data(), 4), "hello");
}

TEST(SchemaTest, StringTruncationAndPadding) {
  Schema s = TestSchema();
  std::vector<char> row(s.row_size());
  s.SetString(row.data(), 4, "0123456789ABCDEF");  // longer than width 10
  EXPECT_EQ(s.GetString(row.data(), 4), "0123456789");
  s.SetString(row.data(), 4, "ab");
  EXPECT_EQ(s.GetString(row.data(), 4), "ab");
}

TEST(SchemaTest, ValueRoundTrip) {
  Schema s = TestSchema();
  std::vector<char> row(s.row_size());
  s.SetValue(row.data(), 0, Value::Int32(5));
  s.SetValue(row.data(), 1, Value::Int64(6));
  s.SetValue(row.data(), 2, Value::Float64(7.5));
  s.SetValue(row.data(), 3, Value::Date(100));
  s.SetValue(row.data(), 4, Value::String("xy"));
  EXPECT_EQ(s.GetValue(row.data(), 0), Value::Int32(5));
  EXPECT_EQ(s.GetValue(row.data(), 1), Value::Int64(6));
  EXPECT_EQ(s.GetValue(row.data(), 2), Value::Float64(7.5));
  EXPECT_EQ(s.GetValue(row.data(), 3), Value::Date(100));
  EXPECT_EQ(s.GetValue(row.data(), 4).AsString(), "xy");
}

TEST(SchemaTest, NumericCoercionOnSetValue) {
  Schema s = TestSchema();
  std::vector<char> row(s.row_size());
  s.SetValue(row.data(), 0, Value::Float64(9.9));  // into INT32
  EXPECT_EQ(s.GetInt32(row.data(), 0), 9);
  s.SetValue(row.data(), 2, Value::Int64(4));  // into FLOAT64
  EXPECT_EQ(s.GetFloat64(row.data(), 2), 4.0);
}

TEST(ValueTest, CompareAndToString) {
  EXPECT_LT(Value::Int32(1).Compare(Value::Int32(2)), 0);
  EXPECT_EQ(Value::Int64(5).Compare(Value::Int32(5)), 0);
  EXPECT_GT(Value::Float64(2.5).Compare(Value::Int32(2)), 0);
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::Date(DaysFromCivil(2010, 10, 30)).ToString(), "2010-10-30");
  EXPECT_EQ(Value::Int64(12).ToString(), "12");
}

}  // namespace
}  // namespace claims
