#include "common/random.h"

#include <gtest/gtest.h>

#include <map>

namespace claims {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    int64_t w = rng.UniformRange(-5, 5);
    EXPECT_GE(w, -5);
    EXPECT_LE(w, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(3);
  std::map<uint64_t, int> counts;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) counts[rng.Uniform(10)]++;
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(c, kN / 10, kN / 50) << "value " << v;
  }
}

TEST(ZipfTest, SkewsTowardSmallValues) {
  ZipfGenerator zipf(1000, 0.9, 5);
  std::map<uint64_t, int> counts;
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    uint64_t v = zipf.Next();
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Rank-0 item must be far more popular than a mid-rank item.
  EXPECT_GT(counts[0], 20 * (counts[500] + 1));
}

TEST(ZipfTest, CoversDomain) {
  ZipfGenerator zipf(10, 0.5, 9);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) counts[zipf.Next()]++;
  EXPECT_EQ(counts.size(), 10u);
}

}  // namespace
}  // namespace claims
