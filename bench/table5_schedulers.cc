// Reproduces paper Table 5: comparison with the baseline scheduling methods
// IS [24], MDP [19], MDP+ (64 KB and 8 KB units) and EP, at concurrency
// levels c = 1, 2, 5 — averaged over the full SSE + TPC-H workload on the
// paper-scale simulated cluster. Reported: CPU utilization, context switches,
// scheduling overhead, cache-miss ratio (modelled proxy, DESIGN.md §1) and
// average response time.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/specs.h"

namespace claims {
namespace {

struct Config {
  std::string name;
  SimPolicy policy;
  double concurrency;
  int64_t unit_bytes;
};

struct Aggregate {
  double cpu_util = 0;
  double switches = 0;
  double sched_overhead = 0;
  double cache_miss = 0;
  double response_s = 0;
  int runs = 0;
};

std::vector<SimQuerySpec> Workload() {
  // 13 configurations × 15 queries: the workload runs at quarter scale so
  // the whole table regenerates in minutes; all reported metrics are
  // ratios/rates and scale-invariant.
  SseSimParams sse;
  sse.trades_rows /= 4;
  sse.securities_rows /= 4;
  sse.result_groups /= 4;
  SimCostParams costs;
  std::vector<SimQuerySpec> specs;
  specs.push_back(SseQ6Spec(sse, costs));
  specs.push_back(SseQ7Spec(sse, costs));
  specs.push_back(SseQ8Spec(sse, costs));
  specs.push_back(SseQ9Spec(sse, costs));
  for (int q : {1, 2, 3, 5, 6, 7, 8, 9, 10, 12, 14}) {
    auto profile = TpchProfileFor(q);
    profile->probe_rows_per_node /= 4;
    for (auto& bd : profile->builds) bd.rows_per_node /= 4;
    profile->groups = std::max<int64_t>(1, profile->groups / 4);
    specs.push_back(TpchSpec(*profile, 10, costs));
  }
  return specs;
}

}  // namespace
}  // namespace claims

int main(int argc, char** argv) {
  using namespace claims;
  bool csv = bench::CsvMode(argc, argv);

  std::vector<Config> configs;
  for (double c : {1.0, 2.0, 5.0}) {
    configs.push_back({StrFormat("IS c=%g", c), SimPolicy::kImplicit, c, 0});
  }
  for (double c : {1.0, 2.0, 5.0}) {
    configs.push_back({StrFormat("MDP c=%g", c), SimPolicy::kMorsel, c,
                       64 * 1024});
  }
  for (double c : {1.0, 2.0, 5.0}) {
    configs.push_back({StrFormat("MDP+64K c=%g", c), SimPolicy::kMorselPlus,
                       c, 64 * 1024});
  }
  for (double c : {1.0, 2.0, 5.0}) {
    configs.push_back({StrFormat("MDP+8K c=%g", c), SimPolicy::kMorselPlus, c,
                       8 * 1024});
  }
  configs.push_back({"EP c=1", SimPolicy::kElastic, 1.0, 64 * 1024});

  std::printf("Table 5: comparison with three baseline scheduling methods "
              "(avg over %zu queries)\n", Workload().size());
  bench::TablePrinter table(csv);
  table.Header({"method", "cpu util(%)", "ctx sw/s (x1000)",
                "sched overhead(%)", "cache miss", "response (s)"});
  for (const Config& config : configs) {
    Aggregate agg;
    for (SimQuerySpec& spec : Workload()) {
      SimOptions opt;
      opt.num_nodes = 10;
      opt.policy = config.policy;
      opt.parallelism = 1;
      opt.concurrency_level = config.concurrency;
      opt.unit_bytes = config.unit_bytes;
      SimRun run(std::move(spec), opt);
      auto m = run.Run();
      if (!m.ok()) {
        std::fprintf(stderr, "%s: %s\n", config.name.c_str(),
                     m.status().ToString().c_str());
        return 1;
      }
      agg.cpu_util += m->avg_cpu_utilization;
      agg.switches += m->context_switches_per_sec;
      agg.sched_overhead += m->scheduling_overhead;
      agg.cache_miss += m->cache_miss_ratio;
      agg.response_s += m->response_ns / 1e9;
      ++agg.runs;
    }
    double n = agg.runs;
    std::vector<std::string> row = {
        config.name,
        bench::Pct(agg.cpu_util / n),
        StrFormat("%.1f", agg.switches / n / 1000.0),
        config.policy == SimPolicy::kImplicit
            ? "n/a"
            : bench::Pct(agg.sched_overhead / n),
        StrFormat("%.2f", agg.cache_miss / n),
        StrFormat("%.1f", agg.response_s / n),
    };
    table.Row(std::move(row));
  }
  table.Print();
  return 0;
}
