// Reproduces paper Table 4: memory consumption (GB) of EP / SP / ME on the
// SSE queries at paper scale (simulated cluster), plus a small-scale
// cross-check on the REAL engine (generated SSE data, all three execution
// modes) to show the same ordering holds natively.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/workloads.h"
#include "sim/specs.h"

namespace claims {
namespace {

int64_t SimPeak(SimQuerySpec spec, SimPolicy policy) {
  SimOptions opt;
  opt.num_nodes = 10;
  opt.policy = policy;
  opt.parallelism = policy == SimPolicy::kElastic ? 1 : 8;
  SimRun run(std::move(spec), opt);
  auto m = run.Run();
  if (!m.ok()) {
    std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
    return -1;
  }
  return m->peak_memory_bytes;
}

}  // namespace
}  // namespace claims

int main(int argc, char** argv) {
  using namespace claims;
  bool csv = bench::CsvMode(argc, argv);
  SseSimParams params;
  SimCostParams costs;

  std::printf("Table 4: comparison on memory consumption (GB), paper-scale "
              "simulation\n");
  {
    bench::TablePrinter table(csv);
    table.Header({"", "SSE-Q6", "SSE-Q7", "SSE-Q8", "SSE-Q9"});
    auto make = [&](int q) {
      switch (q) {
        case 6: return SseQ6Spec(params, costs);
        case 7: return SseQ7Spec(params, costs);
        case 8: return SseQ8Spec(params, costs);
        default: return SseQ9Spec(params, costs);
      }
    };
    for (auto [name, policy] :
         {std::pair<const char*, SimPolicy>{"EP", SimPolicy::kElastic},
          {"SP", SimPolicy::kStatic},
          {"ME", SimPolicy::kMaterialized}}) {
      std::vector<std::string> row = {name};
      for (int q = 6; q <= 9; ++q) {
        row.push_back(bench::Gb(SimPeak(make(q), policy)));
      }
      table.Row(std::move(row));
    }
    table.Print();
  }

  std::printf("\nCross-check: real engine, generated SSE data "
              "(3 nodes, small scale; MB)\n");
  {
    DatabaseOptions options;
    options.cluster.num_nodes = 3;
    options.cluster.cores_per_node = 4;
    Database db(options);
    SseConfig sse;
    sse.securities_rows = 400'000;
    sse.trades_rows = 1'200'000;
    if (!db.LoadSse(sse).ok()) return 1;
    bench::TablePrinter table(csv);
    table.Header({"", "SSE-Q6", "SSE-Q7", "SSE-Q8", "SSE-Q9"});
    for (auto [name, mode] :
         {std::pair<const char*, ExecMode>{"EP", ExecMode::kElastic},
          {"SP", ExecMode::kStatic},
          {"ME", ExecMode::kMaterialized}}) {
      std::vector<std::string> row = {name};
      for (int q = 6; q <= 9; ++q) {
        ExecOptions exec;
        exec.mode = mode;
        exec.parallelism = 2;
        exec.buffer_capacity_blocks = 8;
        auto r = db.Query(*SseQuery(q), exec);
        if (!r.ok()) {
          std::fprintf(stderr, "SSE-Q%d: %s\n", q,
                       r.status().ToString().c_str());
          return 1;
        }
        row.push_back(StrFormat(
            "%.1f", db.last_stats().peak_memory_bytes / 1048576.0));
      }
      table.Row(std::move(row));
    }
    table.Print();
  }
  return 0;
}
