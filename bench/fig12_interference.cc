// Reproduces paper Figure 12: adaptivity to an interfering CPU-intensive
// program with a 2:1 duty cycle on every node (the paper uses 40 s on /
// 20 s asleep over a ~160 s run; the cycle here is scaled to 8 s / 4 s to
// match the simulated query length). While the interferer is active the
// scheduler shrinks segments (their measured throughput drops); when it
// pauses, the scheduler re-expands to reclaim the freed capacity.

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/specs.h"

int main(int argc, char** argv) {
  using namespace claims;
  bool csv = bench::CsvMode(argc, argv);

  SseSimParams params;
  SimCostParams costs;
  SimOptions opt;
  opt.num_nodes = params.num_nodes;
  opt.policy = SimPolicy::kElastic;
  opt.parallelism = 1;
  // The interferer occupies ~60% of each node's capacity while active.
  opt.node_capacity_at = [](int64_t t_ns) {
    int64_t cycle = (t_ns / 1'000'000'000) % 12;
    return cycle < 8 ? 0.4 : 1.0;
  };
  SimRun run(SseQ9Spec(params, costs), opt);
  auto m = run.Run();
  if (!m.ok()) {
    std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 12: adaptivity of the dynamic scheduler to an "
              "interfering program (8 s active / 4 s asleep; node 0)\n");
  std::printf("response time: %s s\n", bench::Sec(m->response_ns).c_str());
  bench::TablePrinter table(csv);
  table.Header({"time (s)", "interferer", "s1", "s2", "s3"});
  size_t step = std::max<size_t>(1, m->trace.size() / 70);
  for (size_t i = 0; i < m->trace.size(); i += step) {
    const SimTracePoint& t = m->trace[i];
    bool active = (t.t_ns / 1'000'000'000) % 12 < 8;
    table.Row({bench::Sec(t.t_ns), active ? "on" : "off",
               StrFormat("%d", t.parallelism[0]),
               StrFormat("%d", t.parallelism[1]),
               StrFormat("%d", t.parallelism[2])});
  }
  table.Print();
  return 0;
}
