// Reproduces paper Figure 8: scalability of intra-segment parallelism for
// the filter (S-Q1/S-Q2), hash-aggregation (S-Q3/S-Q4, shared vs independent)
// and hash-join (build/probe) operators, on the virtual-time node model
// (single node, 24 logical cores, paper Table 3; see DESIGN.md §1).

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/specs.h"

namespace claims {
namespace {

constexpr int64_t kRows = 20'000'000;
const int kParallelism[] = {1, 2, 4, 8, 12, 16, 20, 24};

int64_t Response(SimQuerySpec spec, int p) {
  SimOptions opt;
  opt.num_nodes = 1;
  opt.policy = SimPolicy::kStatic;
  opt.partition_skew_cv = 0;  // pure operator scalability
  opt.parallelism = p;
  SimRun run(std::move(spec), opt);
  auto m = run.Run();
  if (!m.ok()) {
    std::fprintf(stderr, "sim failed: %s\n", m.status().ToString().c_str());
    return -1;
  }
  return m->response_ns;
}

struct Curve {
  std::string name;
  std::function<SimQuerySpec()> make;
};

void PrintCurves(const char* title, const std::vector<Curve>& curves,
                 bool csv) {
  bench::Title(title);
  bench::TablePrinter table(csv);
  std::vector<std::string> header = {"parallelism"};
  for (const Curve& c : curves) header.push_back(c.name);
  table.Header(std::move(header));
  std::vector<int64_t> base;
  for (const Curve& c : curves) base.push_back(Response(c.make(), 1));
  for (int p : kParallelism) {
    std::vector<std::string> row = {StrFormat("%d", p)};
    for (size_t i = 0; i < curves.size(); ++i) {
      int64_t t = Response(curves[i].make(), p);
      row.push_back(StrFormat("%.2f", static_cast<double>(base[i]) / t));
    }
    table.Row(std::move(row));
  }
  table.Print();
}

}  // namespace
}  // namespace claims

int main(int argc, char** argv) {
  using namespace claims;
  bool csv = bench::CsvMode(argc, argv);
  SimCostParams costs;

  std::printf("Figure 8: scalability of intra-segment parallelism "
              "(speedup vs degree of parallelism)\n");

  PrintCurves("Fig 8(a) filter operator",
              {{"S-Q1(compute)",
                [&] { return MicroFilterSpec(true, kRows, costs); }},
               {"S-Q2(data)",
                [&] { return MicroFilterSpec(false, kRows, costs); }}},
              csv);

  PrintCurves(
      "Fig 8(b) hash aggregation operator",
      {{"S-Q3(shared)",
        [&] { return MicroAggSpec(true, 4, kRows, costs); }},
       {"S-Q4(shared)",
        [&] { return MicroAggSpec(true, 250'000'000, kRows, costs); }},
       {"S-Q3(independent)",
        [&] { return MicroAggSpec(false, 4, kRows, costs); }},
       {"S-Q4(independent)",
        [&] { return MicroAggSpec(false, 250'000'000, kRows, costs); }}},
      csv);

  PrintCurves("Fig 8(c) hash join operator (S-Q5)",
              {{"Build phase",
                [&] { return MicroJoinSpec(true, kRows, costs); }},
               {"Probe phase",
                [&] { return MicroJoinSpec(false, kRows, costs); }}},
              csv);
  return 0;
}
