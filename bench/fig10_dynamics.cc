// Reproduces paper Figure 10: the intra-segment parallelism of SSE-Q9's
// three segments over time on one (randomly chosen ≡ node 0) node, under
// elastic pipelining on the paper-scale simulated cluster (10 nodes,
// DESIGN.md §1). Expected shape: S1 ramps first (filter bottleneck), then S2
// (hash build) until the network caps both; after the build finishes the
// probe pipeline P2 shifts cores to S2/S3.

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/specs.h"

int main(int argc, char** argv) {
  using namespace claims;
  bool csv = bench::CsvMode(argc, argv);

  SseSimParams params;  // paper scale: 840M rows, 10 nodes
  SimCostParams costs;
  SimOptions opt;
  opt.num_nodes = params.num_nodes;
  opt.policy = SimPolicy::kElastic;
  opt.parallelism = 1;  // paper: initial intra-segment parallelism 1
  SimRun run(SseQ9Spec(params, costs), opt);
  auto m = run.Run();
  if (!m.ok()) {
    std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 10: parallelism dynamics of elastic pipelining on "
              "SSE-Q9 (node 0)\n");
  std::printf("response time: %s s\n", bench::Sec(m->response_ns).c_str());
  bench::TablePrinter table(csv);
  table.Header({"time (s)", "s1", "s2", "s3"});
  // Subsample the 50 ms trace to ~60 printed points.
  size_t step = std::max<size_t>(1, m->trace.size() / 60);
  for (size_t i = 0; i < m->trace.size(); i += step) {
    const SimTracePoint& t = m->trace[i];
    table.Row({bench::Sec(t.t_ns), StrFormat("%d", t.parallelism[0]),
               StrFormat("%d", t.parallelism[1]),
               StrFormat("%d", t.parallelism[2])});
  }
  table.Print();
  std::printf("\nP2 (probe) starts at %s s on node 0 (S2 build -> probe)\n",
              bench::Sec(m->stage_switch_ns[1]).c_str());
  return 0;
}
