// Reproduces paper Table 7: response times of TPC-H (supported subset) and
// SSE queries under this system's three execution frameworks — ME, SP (best
// constant parallelism out of a sweep, as the paper's strawman), EP — plus
// proxies for the open-source comparators (DESIGN.md §1 substitutions):
//   * Shark-proxy: producer-side full materialization with a JVM-style
//     interpretation overhead (×1.8 per-tuple CPU);
//   * Impala-proxy: pipelined, codegen-accelerated (×0.55 per-tuple CPU) but
//     with limited intra-node parallelism — single-threaded join/aggregation
//     algorithms cap its useful parallelism around 4 (the paper's §6
//     characterization) — and no partition skew (efficient runtime).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/specs.h"

namespace claims {
namespace {

void ScaleCpu(SimQuerySpec* spec, double factor) {
  for (SimSegmentSpec& seg : spec->segments) {
    for (SimStageSpec& stage : seg.stages) {
      stage.profile.cpu_ns_per_tuple *= factor;
    }
  }
}

int64_t Run(SimQuerySpec spec, SimPolicy policy, int parallelism,
            double skew = 0.35) {
  SimOptions opt;
  opt.num_nodes = 10;
  opt.policy = policy;
  opt.parallelism = parallelism;
  opt.partition_skew_cv = skew;
  SimRun run(std::move(spec), opt);
  auto m = run.Run();
  if (!m.ok()) {
    std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
    std::exit(1);
  }
  return m->response_ns;
}

struct Query {
  std::string name;
  std::function<SimQuerySpec()> make;
};

}  // namespace
}  // namespace claims

int main(int argc, char** argv) {
  using namespace claims;
  bool csv = bench::CsvMode(argc, argv);
  SseSimParams sse;
  SimCostParams costs;

  std::vector<Query> queries;
  for (int q : {1, 2, 3, 5, 6, 7, 8, 9, 10, 12, 14}) {
    queries.push_back({StrFormat("TPC-H-Q%d", q), [q, &costs] {
                         return TpchSpec(*TpchProfileFor(q), 10, costs);
                       }});
  }
  queries.push_back({"SSE-Q6", [&] { return SseQ6Spec(sse, costs); }});
  queries.push_back({"SSE-Q7", [&] { return SseQ7Spec(sse, costs); }});
  queries.push_back({"SSE-Q8", [&] { return SseQ8Spec(sse, costs); }});
  queries.push_back({"SSE-Q9", [&] { return SseQ9Spec(sse, costs); }});

  std::printf("Table 7: response time (s) of various queries under "
              "CLAIMS (ME/SP/EP), Shark-proxy, Impala-proxy\n");
  std::printf("(SP reports the best of constant parallelism in "
              "{2,4,6,8,12}, as in the paper)\n");
  bench::TablePrinter table(csv);
  table.Header({"query", "ME", "SP", "EP", "Shark*", "Impala*"});
  for (const Query& query : queries) {
    int64_t me = Run(query.make(), SimPolicy::kMaterialized, 8);
    int64_t sp = INT64_MAX;
    for (int p : {2, 4, 6, 8, 12}) {
      sp = std::min(sp, Run(query.make(), SimPolicy::kStatic, p));
    }
    int64_t ep = Run(query.make(), SimPolicy::kElastic, 1);
    SimQuerySpec shark_spec = query.make();
    ScaleCpu(&shark_spec, 1.8);
    int64_t shark =
        Run(std::move(shark_spec), SimPolicy::kMaterialized, 8);
    SimQuerySpec impala_spec = query.make();
    ScaleCpu(&impala_spec, 0.55);
    int64_t impala =
        Run(std::move(impala_spec), SimPolicy::kStatic, 4, /*skew=*/0);
    table.Row({query.name, bench::Sec(me), bench::Sec(sp), bench::Sec(ep),
               bench::Sec(shark), bench::Sec(impala)});
  }
  table.Print();
  std::printf("\n* comparator proxies per DESIGN.md substitutions\n");
  return 0;
}
