// Reproduces paper Figure 9: the latency of expansion and shrinkage — on the
// REAL multithreaded engine (this is the one paper experiment that needs no
// multicore speedup, only latency, so it runs natively; DESIGN.md §3).
//
//  (a) expansion delay vs the number of iterators in the segment;
//  (b) shrinkage delay vs segment composition (deeper/heavier active stages
//      take longer to finish the in-flight block).

// Also reports the cost of the live introspection plane itself: the same
// pipeline timed with monitoring off, with the causal query profiler armed
// but unscraped (spans recorded, never served — the acceptance bar is < 3%),
// with the monitor endpoint + flight recorder armed but idle, and with a
// scraper hammering /metrics and flight-recorder dumps mid-query. The
// paper's elasticity machinery only pays off if watching it is ~free.
//
// --json prints the introspection-overhead section alone as one JSON object
// (and skips the slow Fig. 9(a)/(b) sweeps) — the CI build artifact.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <thread>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/elastic_iterator.h"
#include "exec/ops/filter.h"
#include "exec/ops/hash_agg.h"
#include "exec/ops/hash_join.h"
#include "exec/ops/profiling_iterator.h"
#include "exec/ops/scan.h"
#include "net/socket_util.h"
#include "obs/monitor_server.h"
#include "obs/profile/profiler.h"
#include "obs/timeseries/timeseries.h"
#include "obs/trace.h"
#include "storage/table.h"

namespace claims {
namespace {

// Driving table: an int key plus a comment column so LIKE filters are
// realistically expensive.
std::unique_ptr<Table> MakeBig(int64_t rows) {
  Schema schema({ColumnDef::Int32("k"), ColumnDef::Char("c", 44)});
  auto t = std::make_unique<Table>("big", schema, 1, std::vector<int>{});
  const char* words[] = {"furiously", "special", "requests", "sleep",
                         "carefully", "ironic", "deposits"};
  Rng rng(7);
  for (int64_t i = 0; i < rows; ++i) {
    std::string c = StrFormat("%s %s %s", words[rng.Uniform(7)],
                              words[rng.Uniform(7)], words[rng.Uniform(7)]);
    t->AppendValues({Value::Int32(static_cast<int32_t>(i % 1000)),
                     Value::String(c)});
  }
  return t;
}

std::unique_ptr<Table> MakeSmall(int rows) {
  Schema schema({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
  auto t = std::make_unique<Table>("small", schema, 1, std::vector<int>{});
  for (int i = 0; i < rows; ++i) {
    t->AppendValues({Value::Int32(i % 1000), Value::Int64(i)});
  }
  return t;
}

ExprPtr Col(const Schema& s, int i) {
  return MakeColumnRef(i, s.column(i).type, s.column(i).name);
}

/// Builds scan → (num_filters × LIKE-filter) over `big`. A non-zero
/// `profile_qid` wraps every operator in a ProfilingIterator exactly the way
/// the executor does when the causal profiler is armed, so the armed config
/// below pays the real per-operator hook cost.
std::unique_ptr<Iterator> FilterChain(const Table& big, int num_filters,
                                      uint64_t profile_qid = 0) {
  const Schema* s = &big.schema();
  // Ids by depth from the chain root (the outermost filter), so parent links
  // point consumer-ward as the assembler expects; built deepest-first.
  int depth = num_filters;
  auto wrap = [&](std::unique_ptr<Iterator> it, const char* name) {
    if (profile_qid == 0) return it;
    ProfilingIterator::Identity id;
    id.query_id = profile_qid;
    id.op_name = name;
    id.segment = "bench";
    id.op_id = depth;
    id.parent_op = depth - 1;  // -1 at the root
    --depth;
    return std::unique_ptr<Iterator>(
        std::make_unique<ProfilingIterator>(std::move(it), std::move(id)));
  };
  std::unique_ptr<Iterator> it =
      wrap(std::make_unique<ScanIterator>(&big.partition(0), s), "scan(big)");
  for (int f = 0; f < num_filters; ++f) {
    it = wrap(std::make_unique<FilterIterator>(
                  std::move(it), s,
                  MakeLike(Col(*s, 1), "%furiously%sleep%", true)),
              "filter");
  }
  return it;
}

/// scan-filter [-join]*n [-agg] per the Fig. 9(b) compositions. `smalls`
/// holds one build table per join (kept alive by the caller).
std::unique_ptr<Iterator> Composition(
    const Table& big, int joins, bool agg,
    std::vector<std::unique_ptr<Table>>* smalls, const Schema** out_schema) {
  const Schema* s = &big.schema();
  std::unique_ptr<Iterator> it = FilterChain(big, 1);
  // Join output schemas must outlive the iterators; lease them statically.
  static std::vector<std::unique_ptr<Schema>> schemas;
  for (int j = 0; j < joins; ++j) {
    smalls->push_back(MakeSmall(2000));
    Table* small = smalls->back().get();
    HashJoinIterator::Spec spec;
    spec.build_schema = &small->schema();
    spec.probe_schema = s;
    spec.build_keys = {0};
    spec.probe_keys = {0};
    auto build =
        std::make_unique<ScanIterator>(&small->partition(0), &small->schema());
    auto join = std::make_unique<HashJoinIterator>(std::move(build),
                                                   std::move(it), spec);
    schemas.push_back(std::make_unique<Schema>(join->output_schema()));
    s = schemas.back().get();
    it = std::move(join);
  }
  if (agg) {
    HashAggIterator::Spec spec;
    spec.input_schema = s;
    spec.group_exprs = {Col(*s, 0)};
    spec.group_names = {"k"};
    spec.aggregates = {{AggFn::kCount, nullptr, "cnt"}};
    spec.mode = HashAggIterator::Mode::kIndependent;
    auto a = std::make_unique<HashAggIterator>(std::move(it), spec);
    schemas.push_back(std::make_unique<Schema>(a->output_schema()));
    s = schemas.back().get();
    it = std::move(a);
  }
  *out_schema = s;
  return it;
}

struct Delays {
  double expand_ms = 0;
  double shrink_ms = 0;
  int iterators = 0;
};

/// Runs the pipeline under an elastic iterator and measures expansion and
/// shrinkage latency while it is actively processing.
Delays Measure(std::unique_ptr<Iterator> ops, int trials) {
  Delays d;
  d.iterators = ops->SubtreeSize();
  ElasticIterator::Options opts;
  opts.initial_parallelism = 3;
  ElasticIterator it(std::move(ops), opts);
  WorkerContext ctx;
  it.Open(&ctx);
  std::thread consumer([&] {
    BlockPtr b;
    while (it.Next(&ctx, &b) == NextResult::kSuccess) {
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  std::vector<int64_t> expands;
  std::vector<int64_t> shrinks;
  for (int t = 0; t < trials && !it.finished(); ++t) {
    int64_t e = it.ExpandMeasured(4 + t);
    if (e >= 0) expands.push_back(e);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    int64_t s = it.ShrinkBlocking();
    if (s >= 0) shrinks.push_back(s);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  it.Close();
  consumer.join();
  auto mean = [](const std::vector<int64_t>& v) {
    return v.empty() ? 0.0
                     : std::accumulate(v.begin(), v.end(), 0.0) / v.size() /
                           1e6;
  };
  d.expand_ms = mean(expands);
  d.shrink_ms = mean(shrinks);
  return d;
}

/// Runs the pipeline to completion under an elastic iterator and returns
/// wall milliseconds. The work is identical across monitoring configs; only
/// the observers differ.
double RunToCompletion(std::unique_ptr<Iterator> ops,
                       uint64_t profile_qid = 0) {
  ElasticIterator::Options opts;
  opts.initial_parallelism = 3;
  opts.query_id = profile_qid;
  ElasticIterator it(std::move(ops), opts);
  WorkerContext ctx;
  auto start = std::chrono::steady_clock::now();
  it.Open(&ctx);
  BlockPtr b;
  while (it.Next(&ctx, &b) == NextResult::kSuccess) {
  }
  it.Close();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

struct MonitoringConfig {
  const char* name;
  bool serve;    // monitor endpoint up, flight recorder armed
  bool scrape;   // a client hammering /metrics + dumps during the run
  bool profile;  // causal profiler armed, spans recorded but never served
  bool sample;   // time-series sampler walking the registry at 1 s cadence
};

double MeasureMonitored(const Table& big, const MonitoringConfig& cfg,
                        int reps) {
  MonitorServer server{[&] {
    MonitorOptions mopts;
    mopts.enabled = cfg.serve;
    return mopts;
  }()};
  if (cfg.serve) {
    TraceCollector::Global()->ConfigureFlightRecorder(1 << 16);
    TraceCollector::Global()->Enable();
    if (!server.Start().ok()) return -1;
  }
  if (cfg.profile) QueryProfiler::Global()->Arm();
  std::unique_ptr<MetricSampler> sampler;
  if (cfg.sample) {
    // Production cadence (1 s), published as the process default exactly as
    // the introspection plane does — the query hot path must not notice it.
    sampler = std::make_unique<MetricSampler>(TimeseriesOptions{});
    MetricSampler::SetDefault(sampler.get());
    sampler->Start();
  }
  std::atomic<bool> stop{false};
  std::thread scraper;
  if (cfg.scrape) {
    scraper = std::thread([&] {
      int i = 0;
      while (!stop.load()) {
        HttpRoundTrip("127.0.0.1", server.port(), "GET", "/metrics");
        if (++i % 4 == 0) {
          HttpRoundTrip("127.0.0.1", server.port(), "POST",
                        "/flight-recorder/dump");
        }
      }
    });
  }
  // One untimed warmup so the first config doesn't absorb the cold page
  // cache / allocator and skew the baseline all others compare against.
  RunToCompletion(FilterChain(big, 1));
  double total = 0;
  for (int r = 0; r < reps; ++r) {
    const uint64_t qid = cfg.profile ? static_cast<uint64_t>(r + 1) : 0;
    total += RunToCompletion(FilterChain(big, 1, qid), qid);
    if (qid != 0) {
      // Drain between reps exactly as the executor does at query end, so
      // every rep pays the steady-state cost (record into empty shards), not
      // an overflowing-shard discount.
      QueryProfiler::Global()->TakeQuery(qid);
    }
  }
  stop.store(true);
  if (scraper.joinable()) scraper.join();
  if (sampler) {
    MetricSampler::SetDefault(nullptr);
    sampler->Stop();
  }
  if (cfg.profile) QueryProfiler::Global()->Disarm();
  if (cfg.serve) {
    server.Stop();
    TraceCollector::Global()->Disable();
    TraceCollector::Global()->ConfigureFlightRecorder(0);
  }
  return total / reps;
}

}  // namespace
}  // namespace claims

int main(int argc, char** argv) {
  using namespace claims;
  bool csv = bench::CsvMode(argc, argv);
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--json")) json = true;
  }
  const int kTrials = 12;
  auto big = MakeBig(json ? 500'000 : 2'000'000);

  const MonitoringConfig configs[] = {
      {"monitoring off", false, false, false, false},
      {"causal profiler armed (unscraped)", false, false, true, false},
      {"timeseries sampler armed (1s)", false, false, false, true},
      {"endpoint + flight recorder armed", true, false, false, false},
      {"scraper hammering /metrics + dumps", true, true, false, false},
  };

  if (json) {
    // CI artifact mode: only the overhead comparison, as one JSON object.
    // The acceptance bar is the profiler row staying under 3%.
    const int kReps = 5;
    std::string out = "{\"bench\":\"fig09_overhead\",\"configs\":[";
    double baseline = 0;
    bool first = true;
    for (const MonitoringConfig& cfg : configs) {
      double ms = MeasureMonitored(*big, cfg, kReps);
      if (baseline == 0) baseline = ms;
      if (!first) out.push_back(',');
      first = false;
      out += StrFormat(
          "{\"name\":\"%s\",\"pipeline_ms\":%.2f,\"overhead_pct\":%.2f}",
          cfg.name, ms, 100.0 * (ms - baseline) / baseline);
    }
    out += "]}";
    std::printf("%s\n", out.c_str());
    return 0;
  }

  std::printf("Figure 9: expansion / shrinkage overhead (real engine)\n");

  bench::Title("Fig 9(a) expansion delay vs #iterators in the segment");
  {
    bench::TablePrinter table(csv);
    table.Header({"iterators", "expansion delay (ms)"});
    for (int n = 1; n <= 5; ++n) {
      Delays d = Measure(FilterChain(*big, n - 1), kTrials);
      table.Row({StrFormat("%d", d.iterators),
                 StrFormat("%.3f", d.expand_ms)});
    }
    table.Print();
  }

  bench::Title("Fig 9(b) shrinkage delay by segment composition");
  {
    struct Comp {
      const char* name;
      int joins;
      bool agg;
    };
    const Comp comps[] = {
        {"Scan-Filter", 0, false},
        {"Scan-Filter-Join", 1, false},
        {"Scan-Filter-Agg", 0, true},
        {"Scan-Filter-Join-Agg", 1, true},
        {"Scan-Filter-Join-Join-Agg", 2, true},
        {"Scan-Filter-Join-Join-Join-Agg", 3, true},
    };
    bench::TablePrinter table(csv);
    table.Header({"composition", "shrinkage delay (ms)", "expansion (ms)"});
    for (const Comp& comp : comps) {
      std::vector<std::unique_ptr<Table>> smalls;
      const Schema* out = nullptr;
      auto ops = Composition(*big, comp.joins, comp.agg, &smalls, &out);
      Delays d = Measure(std::move(ops), kTrials);
      table.Row({comp.name, StrFormat("%.3f", d.shrink_ms),
                 StrFormat("%.3f", d.expand_ms)});
    }
    table.Print();
  }

  bench::Title("Introspection overhead: same pipeline, monitoring off/on");
  {
    const int kReps = 3;
    bench::TablePrinter table(csv);
    table.Header({"config", "pipeline time (ms)", "overhead (%)"});
    double baseline = 0;
    for (const MonitoringConfig& cfg : configs) {
      double ms = MeasureMonitored(*big, cfg, kReps);
      if (baseline == 0) baseline = ms;
      table.Row({cfg.name, StrFormat("%.1f", ms),
                 StrFormat("%+.2f", 100.0 * (ms - baseline) / baseline)});
    }
    table.Print();
  }
  return 0;
}
