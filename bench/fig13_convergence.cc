// Reproduces paper Figure 13: robustness to the initial parallelism
// assignment. SSE-Q9 runs with initial intra-segment parallelism 1..12; the
// dynamic scheduler re-converges to the appropriate assignment within a
// short delay, so the total response time is nearly flat. Reported per run:
// convergence delay, build time (pipeline P1), probe time (pipeline P2) —
// the paper's stacked bars.

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/specs.h"

int main(int argc, char** argv) {
  using namespace claims;
  bool csv = bench::CsvMode(argc, argv);

  SseSimParams params;
  SimCostParams costs;

  std::printf("Figure 13: robustness to the initial parallelism assignment "
              "(SSE-Q9)\n");
  bench::TablePrinter table(csv);
  table.Header({"initial parallelism", "convergence delay (s)",
                "build time (s)", "probe time (s)", "response (s)"});
  for (int p0 = 1; p0 <= 12; ++p0) {
    SimOptions opt;
    opt.num_nodes = params.num_nodes;
    opt.policy = SimPolicy::kElastic;
    opt.parallelism = p0;
    SimRun run(SseQ9Spec(params, costs), opt);
    auto m = run.Run();
    if (!m.ok()) {
      std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
      return 1;
    }
    int64_t build_end = m->stage_switch_ns[1];  // S2: build -> probe
    if (build_end < 0) build_end = m->response_ns;
    // Convergence delay: how long until node-0's assignment first stabilizes
    // (within the build phase).
    int64_t converge = 0;
    for (size_t i = 1; i < m->trace.size() && m->trace[i].t_ns < build_end;
         ++i) {
      int delta = 0;
      for (size_t s = 0; s < m->trace[i].parallelism.size(); ++s) {
        delta += std::abs(m->trace[i].parallelism[s] -
                          m->trace[i - 1].parallelism[s]);
      }
      if (delta > 1) converge = m->trace[i].t_ns;
    }
    table.Row({StrFormat("%d", p0), bench::Sec2(converge),
               bench::Sec(build_end), bench::Sec(m->response_ns - build_end),
               bench::Sec(m->response_ns)});
  }
  table.Print();
  std::printf("\n(The paper's claim: response time is insensitive to the "
              "initial assignment — the rightmost column should be nearly "
              "flat.)\n");
  return 0;
}
