// Allocator microbenchmark (Durner-style twins): the same workload run once
// against the recycling BlockPool and once against the global allocator, so
// the pool's recycling win — and any regression — shows up as a ratio. Two
// workloads:
//   churn  — multi-threaded allocate/stamp/free over the runtime's hot size
//            classes (the DataBuffer/Arena traffic pattern);
//   q1agg  — a TPC-H Q1-shaped aggregation (4 groups, 4 accumulators, wide
//            scans) rebuilt per rep, so the arena chunks churn through the
//            pool the way repeated queries churn them through a server.
// `--json` emits a machine-readable summary; CI's mem-smoke job asserts
// ratio >= threshold and uploads the JSON as an artifact.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "exec/hash_table.h"
#include "mem/block_pool.h"
#include "mem/size_class.h"

namespace claims {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Multi-threaded block churn: each thread cycles allocations through four
/// hot classes (16/32/64/128 KiB), touching the first cache lines the way
/// Block::Reset does. `pool` = nullptr is the global-allocator twin.
int64_t RunChurn(BlockPool* pool, int threads, int iters) {
  const int64_t start = NowNs();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < iters; ++i) {
        size_t bytes = (size_t{16} << 10) << ((t + i) % 4);
        if (pool != nullptr) {
          PoolAlloc a = pool->Allocate(bytes);
          std::memset(a.data, 0, 256);
          pool->Release(a);
        } else {
          char* p = new char[bytes];
          std::memset(p, 0, 256);
          delete[] p;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  return NowNs() - start;
}

/// Q1-shaped aggregation rep: fold `rows` into a fresh 4-group, 4-accumulator
/// table, then tear it down. With a pool the arena chunks recycle between
/// reps; without one every rep pays malloc for the same chunks again.
int64_t RunQ1Agg(BlockPool* pool, int reps, int rows) {
  Schema group({ColumnDef::Int32("flags")});
  std::vector<AggFn> fns = {AggFn::kSum, AggFn::kSum, AggFn::kAvg,
                            AggFn::kCount};
  const int64_t start = NowNs();
  for (int rep = 0; rep < reps; ++rep) {
    AggHashTable table(group, static_cast<int>(fns.size()), 64,
                       MemSource{pool, nullptr, nullptr});
    std::vector<char> grow(group.row_size());
    for (int i = 0; i < rows; ++i) {
      group.SetInt32(grow.data(), 0, i % 4);  // Q1: 4 (flag, status) groups
      double v = static_cast<double>(i % 1000);
      double values[4] = {v, v * 0.95, v * 1.06, 0};
      int64_t weights[4] = {1, 1, 1, 1};
      table.Update(grow.data(), fns, values, weights);
    }
  }
  return NowNs() - start;
}

struct Twin {
  const char* name;
  int64_t pool_ns = 0;
  int64_t global_ns = 0;
  /// > 1 means the pool twin was faster.
  double ratio() const {
    return pool_ns > 0 ? static_cast<double>(global_ns) / pool_ns : 0;
  }
};

}  // namespace
}  // namespace claims

int main(int argc, char** argv) {
  using namespace claims;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") json = true;
  }

  // A private pool so the figures are not polluted by whatever the global
  // pool's magazines already hold.
  BlockPool pool;

  constexpr int kThreads = 4;
  constexpr int kChurnIters = 50'000;
  constexpr int kAggReps = 40;
  constexpr int kAggRows = 200'000;

  // Warm-up primes both twins (thread caches, malloc arenas) off the clock.
  RunChurn(&pool, kThreads, 2'000);
  RunChurn(nullptr, kThreads, 2'000);
  RunQ1Agg(&pool, 2, kAggRows);
  RunQ1Agg(nullptr, 2, kAggRows);

  // Interleave the twins over several rounds and keep each side's best time:
  // min-of-N strips scheduler/frequency noise that a single back-to-back pair
  // is at the mercy of, and interleaving keeps a slow patch of wall time from
  // landing entirely on one twin.
  constexpr int kRounds = 3;
  Twin churn{"churn"};
  Twin q1{"q1agg"};
  churn.pool_ns = q1.pool_ns = churn.global_ns = q1.global_ns = INT64_MAX;
  for (int r = 0; r < kRounds; ++r) {
    churn.pool_ns =
        std::min(churn.pool_ns, RunChurn(&pool, kThreads, kChurnIters));
    churn.global_ns =
        std::min(churn.global_ns, RunChurn(nullptr, kThreads, kChurnIters));
    q1.pool_ns = std::min(q1.pool_ns, RunQ1Agg(&pool, kAggReps, kAggRows));
    q1.global_ns =
        std::min(q1.global_ns, RunQ1Agg(nullptr, kAggReps, kAggRows));
  }

  BlockPool::Stats stats = pool.GetStats();
  if (json) {
    std::printf(
        "{\"churn\":{\"pool_ns\":%lld,\"global_ns\":%lld,\"ratio\":%.4f},"
        "\"q1agg\":{\"pool_ns\":%lld,\"global_ns\":%lld,\"ratio\":%.4f},"
        "\"pool\":{\"hits\":%lld,\"misses\":%lld,\"recycled_bytes\":%lld}}\n",
        static_cast<long long>(churn.pool_ns),
        static_cast<long long>(churn.global_ns), churn.ratio(),
        static_cast<long long>(q1.pool_ns),
        static_cast<long long>(q1.global_ns), q1.ratio(),
        static_cast<long long>(stats.hits),
        static_cast<long long>(stats.misses),
        static_cast<long long>(stats.recycled_bytes));
    return 0;
  }

  bench::Title("micro_alloc: BlockPool vs global allocator");
  bench::TablePrinter table(bench::CsvMode(argc, argv));
  table.Header({"workload", "pool_ms", "global_ms", "speedup"});
  for (const Twin& t : {churn, q1}) {
    table.Row({t.name, StrFormat("%.1f", t.pool_ns / 1e6),
               StrFormat("%.1f", t.global_ns / 1e6),
               StrFormat("%.2fx", t.ratio())});
  }
  table.Print();
  std::printf("pool: %lld hits, %lld misses, %.1f MiB recycled\n",
              static_cast<long long>(stats.hits),
              static_cast<long long>(stats.misses),
              stats.recycled_bytes / (1024.0 * 1024.0));
  return 0;
}
