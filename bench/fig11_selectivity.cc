// Reproduces paper Figure 11: adaptivity to selectivity fluctuation. The
// Trades partitions are ordered by trade_date, so filter1's selectivity is 0
// for a long prefix and jumps to ~1 when the queried day streams in; the
// scheduler must expand S1 early (nothing downstream to do), shrink it when
// it turns over-producing, and wake the "hibernating" S2.

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/specs.h"

int main(int argc, char** argv) {
  using namespace claims;
  bool csv = bench::CsvMode(argc, argv);

  SseSimParams params;
  SimCostParams costs;
  SimQuerySpec spec = SseQ9Spec(params, costs);
  // Date-sorted Trades: all matching tuples sit in the last 5% of the scan,
  // where the filter's selectivity becomes 1.
  const double day_fraction = params.trades_day_selectivity;
  spec.segments[0].stages[0].profile.selectivity_at =
      [day_fraction](double progress) {
        return progress < 1.0 - day_fraction ? 0.0 : 1.0;
      };

  SimOptions opt;
  opt.num_nodes = params.num_nodes;
  opt.policy = SimPolicy::kElastic;
  opt.parallelism = 1;
  SimRun run(std::move(spec), opt);
  auto m = run.Run();
  if (!m.ok()) {
    std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 11: adaptivity of the dynamic scheduler to selectivity "
              "fluctuation (SSE-Q9, Trades sorted by trade_date; node 0)\n");
  std::printf("response time: %s s\n", bench::Sec(m->response_ns).c_str());
  bench::TablePrinter table(csv);
  table.Header({"time (s)", "s1", "s2", "s3"});
  size_t step = std::max<size_t>(1, m->trace.size() / 60);
  for (size_t i = 0; i < m->trace.size(); i += step) {
    const SimTracePoint& t = m->trace[i];
    table.Row({bench::Sec(t.t_ns), StrFormat("%d", t.parallelism[0]),
               StrFormat("%d", t.parallelism[1]),
               StrFormat("%d", t.parallelism[2])});
  }
  table.Print();
  return 0;
}
