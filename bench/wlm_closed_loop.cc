// Workload-manager traffic bench: drives a TPC-H-subset query stream at the
// QueryService over an in-process cluster and reports the latency
// distribution (p50/p95/p99), makespan, and throughput. This is the
// concurrency smoke the CI wlm job runs (16-query closed loop) and the
// source of the BENCH_wlm.json baseline record (--json).
//
//   wlm_closed_loop [--queries N] [--mpl M] [--open [--rate QPS]]
//                   [--scale SF] [--seed S] [--json] [--monitor-port P]
//                   [--linger SEC] [--profile] [--mem-budget-mb MB]
//                   [--timeline] [--chaos-seed S]
//
// --seed fixes the driver's deterministic randomness (open-mode Poisson
// inter-arrivals); two runs with the same seed submit the same schedule.
//
// --timeline records per-second completion buckets: the JSON record gains a
// "timeline" array (throughput + p99 per second) and the text report prints
// ASCII sparklines — the time axis BENCH_wlm.json otherwise lacks.
//
// --chaos-seed arms a seeded fault storm (RandomFaultStorm) PLUS a scripted
// crash of node 3 one second in, with query retries enabled, so a monitored
// run produces the dip-and-recover curve on /timeseries and /dash with the
// crash annotated on the timeline (the CI monitor-smoke configuration).
// Under chaos the exit code only requires that every query terminated and
// some succeeded — typed failures through a killed node are the scenario,
// not a bug.
//
// --profile arms the causal query profiler for the whole run and, after the
// workload drains, prints the slowest profiled query's critical path and
// timeline (docs/OBSERVABILITY.md). With --monitor-port, every profile is
// also live at GET /profile/<id> under the same ids /queries shows.
//
// --monitor-port starts the live introspection plane (HTTP monitoring
// endpoint + flight recorder + watchdog) on 127.0.0.1:P (0 = ephemeral; the
// bound port is printed). --linger keeps the process and the monitor alive
// for SEC seconds after the workload drains so an external scraper (the CI
// monitor-smoke job) can probe terminal state.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "engine/workloads.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "obs/profile/assembler.h"
#include "obs/profile/profiler.h"
#include "obs/trace.h"
#include "wlm/driver/workload_driver.h"
#include "wlm/introspection.h"
#include "wlm/query_service.h"

int main(int argc, char** argv) {
  using namespace claims;
  TraceEnvScope trace_scope;  // CLAIMS_TRACE=<path> captures the run

  int queries = 16;
  int mpl = 8;
  double scale = 0.02;
  double rate = 0;
  bool open = false;
  bool json = false;
  bool profile = false;
  int monitor_port = -1;  // -1 = monitoring off
  double linger_sec = 0;
  uint64_t seed = 42;
  int64_t mem_budget_mb = 0;  // 0 = memory admission gate off
  bool timeline = false;
  int64_t chaos_seed = -1;  // -1 = chaos off
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> double {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return std::atof(argv[++i]);
    };
    if (!std::strcmp(argv[i], "--queries")) {
      queries = static_cast<int>(next("--queries"));
    } else if (!std::strcmp(argv[i], "--mpl")) {
      mpl = static_cast<int>(next("--mpl"));
    } else if (!std::strcmp(argv[i], "--scale")) {
      scale = next("--scale");
    } else if (!std::strcmp(argv[i], "--rate")) {
      rate = next("--rate");
    } else if (!std::strcmp(argv[i], "--open")) {
      open = true;
    } else if (!std::strcmp(argv[i], "--json")) {
      json = true;
    } else if (!std::strcmp(argv[i], "--profile")) {
      profile = true;
    } else if (!std::strcmp(argv[i], "--monitor-port")) {
      monitor_port = static_cast<int>(next("--monitor-port"));
    } else if (!std::strcmp(argv[i], "--linger")) {
      linger_sec = next("--linger");
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = static_cast<uint64_t>(next("--seed"));
    } else if (!std::strcmp(argv[i], "--mem-budget-mb")) {
      mem_budget_mb = static_cast<int64_t>(next("--mem-budget-mb"));
    } else if (!std::strcmp(argv[i], "--timeline")) {
      timeline = true;
    } else if (!std::strcmp(argv[i], "--chaos-seed")) {
      chaos_seed = static_cast<int64_t>(next("--chaos-seed"));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  DatabaseOptions dopts;
  dopts.cluster.num_nodes = 4;
  dopts.cluster.cores_per_node = 8;
  Database db(dopts);
  if (Status s = db.LoadTpch({.scale_factor = scale}); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Drivers cycle through the supported TPC-H subset. Plans are move-only
  // and consumed by Submit, so each query is planned on demand; planning is
  // serialized because Database::Plan is not advertised thread-safe.
  const std::vector<int>& numbers = SupportedTpchQueries();
  {
    // Fail fast on any unplannable query before starting the clock.
    for (int q : numbers) {
      if (auto plan = db.Plan(*TpchQuery(q)); !plan.ok()) {
        std::fprintf(stderr, "Q%d: %s\n", q,
                     plan.status().ToString().c_str());
        return 1;
      }
    }
  }
  std::mutex plan_mu;

  QueryServiceOptions sopts;
  sopts.admission.max_concurrent = mpl;
  sopts.admission.core_budget =
      dopts.cluster.num_nodes * dopts.cluster.cores_per_node;
  // Constrained-memory scenario: an aggregate admission budget makes every
  // admitted query run under a binding per-query ledger (its clamped
  // reservation), so the storm degrades by shrink/spill instead of growing
  // unbounded — the BENCH_wlm memory-pressure configuration.
  if (mem_budget_mb > 0) {
    sopts.admission.memory_budget_bytes = mem_budget_mb << 20;
  }
  sopts.max_queue_depth = 2 * static_cast<size_t>(queries);
  QueryService service(db.cluster(), sopts);

  std::unique_ptr<IntrospectionPlane> plane;
  if (monitor_port >= 0) {
    IntrospectionOptions iopts;
    iopts.monitor.enabled = true;
    iopts.monitor.port = monitor_port;
    iopts.flight_recorder_capacity = 1 << 16;
    iopts.enable_watchdog = true;
    // A monitored run always gets the time axis: /timeseries + /dash data
    // and the anomaly watchdog, at the env-overridable 1 s default cadence.
    iopts.enable_timeseries = true;
    iopts.timeseries = TimeseriesOptions::FromEnv(iopts.timeseries);
    plane = std::make_unique<IntrospectionPlane>(&service, iopts);
    if (Status s = plane->Start(); !s.ok()) {
      std::fprintf(stderr, "monitor: %s\n", s.ToString().c_str());
      return 1;
    }
    // Printed (and flushed) before the clock starts so a supervising script
    // can discover an ephemeral port.
    std::printf("monitor listening on 127.0.0.1:%d\n",
                plane->monitor()->port());
    std::fflush(stdout);
  }

  // Seeded chaos: a windowed storm (drop/delay/dup/NIC) plus a scripted
  // crash of node 3 one second into the run. Queries get a retry budget so
  // most ride through the crash — the throughput curve dips and recovers
  // instead of flatlining.
  std::unique_ptr<FaultInjector> injector;
  if (chaos_seed >= 0) {
    FaultPlan storm = RandomFaultStorm(static_cast<uint64_t>(chaos_seed),
                                       dopts.cluster.num_nodes,
                                       3'000'000'000);
    FaultSpec crash;
    crash.kind = FaultKind::kCrashNode;
    crash.at_ns = 1'000'000'000;
    crash.node = dopts.cluster.num_nodes - 1;
    storm.faults.push_back(crash);
    injector = std::make_unique<FaultInjector>(std::move(storm));
    db.cluster()->AttachFaultInjector(injector.get());
    if (plane) plane->AttachFaultInjector(injector.get());
  }

  WorkloadOptions wopts;
  wopts.mode = open ? ArrivalMode::kOpen : ArrivalMode::kClosed;
  wopts.total_queries = queries;
  wopts.mpl = mpl;
  wopts.arrival_rate_qps = rate;
  wopts.seed = seed;
  wopts.submit.label = "tpch";
  wopts.timeline = timeline;
  if (injector) {
    wopts.submit.retry.max_attempts = 3;
    wopts.submit.retry.initial_backoff_ns = 5'000'000;
  }
  wopts.make_plan = [&](int seq) -> PhysicalPlan {
    std::lock_guard<std::mutex> lock(plan_mu);
    auto plan = db.Plan(*TpchQuery(numbers[seq % numbers.size()]));
    return std::move(*plan);
  };
  wopts.priority_of = [](int seq) { return seq % 3; };

  if (profile) QueryProfiler::Global()->Arm();
  if (injector) injector->Arm();

  WorkloadDriver driver(&service, wopts);
  WorkloadReport report = driver.Run();

  if (injector) {
    injector->Disarm();
    db.cluster()->AttachFaultInjector(nullptr);
  }

  if (json) {
    std::printf("%s\n", report.ToJson().c_str());
  } else {
    bench::Title("Workload manager: TPC-H subset traffic");
    std::printf("%s\n", report.ToString().c_str());
  }
  if (profile) {
    // Every finished query stored an assembled profile under its wlm handle
    // id; show the one that hurt most. (The ring keeps the last 64, which
    // covers any CI-sized run; size bigger workloads accordingly.)
    std::shared_ptr<const QueryProfile> slowest;
    for (const auto& p : QueryProfiler::Global()->ListProfiles()) {
      if (slowest == nullptr || p->wall_ns() > slowest->wall_ns()) slowest = p;
    }
    if (slowest != nullptr) {
      bench::Title("Slowest profiled query: critical path");
      std::printf("%s\n", slowest->ToText().c_str());
    } else {
      std::printf("no profiles recorded\n");
    }
  }
  std::fflush(stdout);
  if (plane && linger_sec > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int64_t>(linger_sec * 1000)));
  }
  if (profile) QueryProfiler::Global()->Disarm();
  if (plane) plane->Stop();
  const int terminated = report.succeeded + report.failed + report.cancelled +
                         report.deadline_exceeded;
  if (injector) {
    // Chaos run: typed failures through the killed node are expected; the
    // gate is "no hangs, survivors keep answering".
    return terminated == report.total && report.succeeded > 0 ? 0 : 1;
  }
  return report.succeeded == report.total ? 0 : 1;
}
