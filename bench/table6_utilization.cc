// Reproduces paper Table 6: comparison with the baselines on hardware
// utilization — high-utilization rate (fraction of 1 s time slices with CPU
// or network utilization ≥ θ_u = 0.95) and response time, for TPC-H Q1
// (compute-intensive), Q9 (network-intensive) and Q14 (mixed).

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/specs.h"

int main(int argc, char** argv) {
  using namespace claims;
  bool csv = bench::CsvMode(argc, argv);
  SimCostParams costs;

  const int kQueries[] = {1, 9, 14};
  const std::pair<const char*, SimPolicy> kMethods[] = {
      {"IS", SimPolicy::kImplicit},
      {"MDP", SimPolicy::kMorsel},
      {"EP", SimPolicy::kElastic},
  };

  std::printf("Table 6: comparison with baselines on hardware utilization\n");
  bench::TablePrinter table(csv);
  table.Header({"query", "IS hi-util(%)", "MDP hi-util(%)", "EP hi-util(%)",
                "IS resp(s)", "MDP resp(s)", "EP resp(s)"});
  for (int q : kQueries) {
    auto profile = TpchProfileFor(q);
    if (!profile.ok()) return 1;
    std::vector<std::string> hi;
    std::vector<std::string> resp;
    for (const auto& [name, policy] : kMethods) {
      SimOptions opt;
      opt.num_nodes = 10;
      opt.policy = policy;
      opt.parallelism = 1;
      opt.concurrency_level = 1.0;
      SimRun run(TpchSpec(*profile, 10, costs), opt);
      auto m = run.Run();
      if (!m.ok()) {
        std::fprintf(stderr, "Q%d %s: %s\n", q, name,
                     m.status().ToString().c_str());
        return 1;
      }
      hi.push_back(bench::Pct(m->high_utilization_rate));
      resp.push_back(bench::Sec(m->response_ns));
    }
    table.Row({StrFormat("TPC-H-Q%d", q), hi[0], hi[1], hi[2], resp[0],
               resp[1], resp[2]});
  }
  table.Print();
  return 0;
}
