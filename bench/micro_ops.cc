// google-benchmark micro benchmarks of the real engine's building blocks:
// expression evaluation, LIKE matching, hash tables, block buffers, and the
// elastic iterator's expansion/shrink machinery.

#include <benchmark/benchmark.h>

#include "core/data_buffer.h"
#include "core/elastic_iterator.h"
#include "exec/expr/batch_expr.h"
#include "exec/expr/like.h"
#include "exec/expr/expr.h"
#include "exec/hash_table.h"
#include "exec/ops/filter.h"
#include "exec/ops/hash_agg.h"
#include "exec/ops/hash_join.h"
#include "exec/ops/scan.h"
#include "storage/table.h"

namespace claims {
namespace {

void BM_LikeMatch(benchmark::State& state) {
  std::string text = "the quick brown fox jumps over the lazy dog";
  for (auto _ : state) {
    benchmark::DoNotOptimize(LikeMatch(text, "%quick%lazy%"));
  }
}
BENCHMARK(BM_LikeMatch);

void BM_ExprFilterEval(benchmark::State& state) {
  Schema s({ColumnDef::Int32("a"), ColumnDef::Float64("b")});
  std::vector<char> row(s.row_size());
  s.SetInt32(row.data(), 0, 42);
  s.SetFloat64(row.data(), 1, 3.14);
  ExprPtr pred = MakeLogic(
      LogicOp::kAnd,
      MakeCompare(CompareOp::kGt, MakeColumnRef(0, DataType::kInt32),
                  MakeLiteral(Value::Int32(10))),
      MakeCompare(CompareOp::kLt, MakeColumnRef(1, DataType::kFloat64),
                  MakeLiteral(Value::Float64(10.0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred->EvalBool(s, row.data()));
  }
}
BENCHMARK(BM_ExprFilterEval);

void BM_JoinHashTableInsert(benchmark::State& state) {
  Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
  std::vector<char> row(s.row_size());
  int32_t k = 0;
  JoinHashTable table(&s, {0}, 1 << 16);
  for (auto _ : state) {
    s.SetInt32(row.data(), 0, k++);
    table.Insert(row.data());
  }
}
BENCHMARK(BM_JoinHashTableInsert);

void BM_JoinHashTableProbe(benchmark::State& state) {
  Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
  JoinHashTable table(&s, {0}, 1 << 16);
  std::vector<char> row(s.row_size());
  for (int i = 0; i < 100000; ++i) {
    s.SetInt32(row.data(), 0, i);
    table.Insert(row.data());
  }
  int32_t k = 0;
  for (auto _ : state) {
    s.SetInt32(row.data(), 0, (k++) % 100000);
    int64_t matches = 0;
    table.ForEachMatch(s, row.data(), {0},
                       [&](const char*) { ++matches; });
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_JoinHashTableProbe);

void BM_AggHashTableUpdate(benchmark::State& state) {
  Schema group({ColumnDef::Int32("g")});
  AggHashTable table(group, 2, 1 << 12);
  std::vector<AggFn> fns = {AggFn::kSum, AggFn::kCount};
  std::vector<char> row(group.row_size());
  double values[2] = {1.0, 0};
  int64_t weights[2] = {1, 1};
  int32_t g = 0;
  const int32_t groups = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    group.SetInt32(row.data(), 0, (g++) % groups);
    table.Update(row.data(), fns, values, weights);
  }
}
BENCHMARK(BM_AggHashTableUpdate)->Arg(4)->Arg(1 << 16);

void BM_DataBufferInsertPop(benchmark::State& state) {
  DataBuffer buf({.capacity_blocks = 1024});
  buf.AddProducer(0);
  auto block = MakeBlock(8, 64);
  block->AppendRow();
  for (auto _ : state) {
    buf.Insert(0, block);
    BlockPtr out;
    buf.Pop(&out);
  }
}
BENCHMARK(BM_DataBufferInsertPop);

void BM_ScanThroughput(benchmark::State& state) {
  Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
  Table t("t", s, 1, {});
  for (int i = 0; i < 200000; ++i) {
    char* row = t.AppendRowSlotRoundRobin();
    s.SetInt32(row, 0, i);
    s.SetInt64(row, 1, i);
  }
  for (auto _ : state) {
    ScanIterator scan(&t.partition(0), &s);
    WorkerContext ctx;
    scan.Open(&ctx);
    BlockPtr b;
    int64_t rows = 0;
    while (scan.Next(&ctx, &b) == NextResult::kSuccess) rows += b->num_rows();
    benchmark::DoNotOptimize(rows);
    scan.Close();
  }
  state.SetItemsProcessed(state.iterations() * 200000);
}
BENCHMARK(BM_ScanThroughput);

void BM_ElasticExpandShrink(benchmark::State& state) {
  // Cost of one expand+shrink cycle on a live pipeline. A LIKE filter keeps
  // the pipeline busy long enough for a bounded number of cycles.
  Schema s({ColumnDef::Int32("k"), ColumnDef::Char("c", 32)});
  Table t("t", s, 1, {});
  for (int i = 0; i < 8000000; ++i) {
    char* row = t.AppendRowSlotRoundRobin();
    s.SetInt32(row, 0, i);
    s.SetString(row, 1, "the quick brown fox jumps");
  }
  ElasticIterator::Options opts;
  opts.initial_parallelism = 2;
  opts.buffer_capacity_blocks = 4096;
  auto scan = std::make_unique<ScanIterator>(&t.partition(0), &s);
  auto filter = std::make_unique<FilterIterator>(
      std::move(scan), &s,
      MakeLike(MakeColumnRef(1, DataType::kChar, "c"), "%quick%jumps%",
               /*negated=*/true));
  ElasticIterator it(std::move(filter), opts);
  WorkerContext ctx;
  it.Open(&ctx);
  std::thread consumer([&] {
    BlockPtr b;
    while (it.Next(&ctx, &b) == NextResult::kSuccess) {
    }
  });
  int core = 2;
  for (auto _ : state) {
    if (it.finished()) {
      state.SkipWithError("pipeline drained before the cycle budget");
      break;
    }
    benchmark::DoNotOptimize(it.ExpandMeasured(core++));
    benchmark::DoNotOptimize(it.ShrinkBlocking());
  }
  it.Close();
  consumer.join();
}
BENCHMARK(BM_ElasticExpandShrink)->Unit(benchmark::kMicrosecond)->Iterations(20);

// --- Batch vs scalar kernels ----------------------------------------------------
// Stable benchmark names: the CI perf-smoke job parses them by name and
// asserts the batch variants beat their scalar twins by >= 2x.

/// One 64 KB block of {k: i%100, v: i, f: (i%7)*1.5}.
BlockPtr FillKVFBlock(const Schema& s) {
  auto b = MakeBlock(s.row_size());
  const int32_t n = b->capacity_rows();
  for (int32_t i = 0; i < n; ++i) {
    char* row = b->AppendRow();
    s.SetInt32(row, 0, i % 100);
    s.SetInt64(row, 1, i);
    s.SetFloat64(row, 2, (i % 7) * 1.5);
  }
  return b;
}

ExprPtr KVFPredicate() {
  // (k < 50 AND f < 6.0): ~29% selectivity, two typed compares.
  return MakeLogic(
      LogicOp::kAnd,
      MakeCompare(CompareOp::kLt, MakeColumnRef(0, DataType::kInt32),
                  MakeLiteral(Value::Int32(50))),
      MakeCompare(CompareOp::kLt, MakeColumnRef(2, DataType::kFloat64),
                  MakeLiteral(Value::Float64(6.0))));
}

void BM_FilterBlockScalar(benchmark::State& state) {
  Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v"),
            ColumnDef::Float64("f")});
  BlockPtr in = FillKVFBlock(s);
  ExprPtr pred = KVFPredicate();
  auto out = MakeBlock(s.row_size());
  const int32_t n = in->num_rows();
  for (auto _ : state) {
    out->Clear();
    for (int32_t i = 0; i < n; ++i) {
      if (pred->EvalBool(s, in->RowAt(i))) out->AppendRowCopy(in->RowAt(i));
    }
    benchmark::DoNotOptimize(out->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FilterBlockScalar);

void BM_FilterBlockBatch(benchmark::State& state) {
  Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v"),
            ColumnDef::Float64("f")});
  BlockPtr in = FillKVFBlock(s);
  auto bp = BatchPredicate::Compile(s, KVFPredicate());
  if (!bp->fully_compiled()) {
    state.SkipWithError("predicate fell back to the scalar node");
    return;
  }
  auto out = MakeBlock(s.row_size());
  const int32_t n = in->num_rows();
  std::vector<int32_t> sel(static_cast<size_t>(n));
  for (auto _ : state) {
    out->Clear();
    int32_t k = bp->FilterBlock(*in, nullptr, n, sel.data());
    out->AppendGather(*in, sel.data(), k);
    benchmark::DoNotOptimize(out->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FilterBlockBatch);

/// Replays fixed blocks (copies, so the consumer may not mutate the shared
/// originals across iterations).
class BlocksIterator : public Iterator {
 public:
  explicit BlocksIterator(const std::vector<BlockPtr>* blocks)
      : blocks_(blocks) {}
  NextResult Open(WorkerContext*) override { return NextResult::kSuccess; }
  NextResult Next(WorkerContext*, BlockPtr* out) override {
    size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= blocks_->size()) return NextResult::kEndOfFile;
    *out = std::make_shared<Block>(*(*blocks_)[i]);
    return NextResult::kSuccess;
  }
  void Close() override {}

 private:
  const std::vector<BlockPtr>* blocks_;
  std::atomic<size_t> cursor_{0};
};

void RunHashAggFold(benchmark::State& state, KernelMode mode) {
  // A TPC-H Q1-shaped fold: CHAR group keys and a computed aggregate
  // argument — the workload where the scalar path boxes a Value (with a
  // string allocation per group column) per row.
  KernelMode saved = CurrentKernelMode();
  SetKernelMode(mode);
  Schema s({ColumnDef::Char("rf", 1), ColumnDef::Char("ls", 1),
            ColumnDef::Float64("qty"), ColumnDef::Float64("price"),
            ColumnDef::Float64("disc")});
  const char* flags[] = {"A", "N", "R"};
  const char* status[] = {"F", "O"};
  std::vector<BlockPtr> blocks;
  int64_t rows = 0;
  for (int i = 0; i < 16; ++i) {
    auto b = MakeBlock(s.row_size());
    const int32_t cap = b->capacity_rows();
    for (int32_t r = 0; r < cap; ++r) {
      char* row = b->AppendRow();
      s.SetString(row, 0, flags[r % 3]);
      s.SetString(row, 1, status[r % 2]);
      s.SetFloat64(row, 2, (r % 50) + 1.0);
      s.SetFloat64(row, 3, 900.0 + (r % 1000));
      s.SetFloat64(row, 4, (r % 11) / 100.0);
    }
    b->set_sequence_number(i);
    rows += cap;
    blocks.push_back(std::move(b));
  }
  HashAggIterator::Spec spec;
  spec.input_schema = &s;
  spec.group_exprs = {MakeColumnRef(0, DataType::kChar, "rf"),
                      MakeColumnRef(1, DataType::kChar, "ls")};
  spec.group_names = {"rf", "ls"};
  spec.aggregates = {
      {AggFn::kSum, MakeColumnRef(2, DataType::kFloat64, "qty"), "sum_qty"},
      {AggFn::kSum,
       MakeArith(ArithOp::kMul, MakeColumnRef(3, DataType::kFloat64, "price"),
                 MakeArith(ArithOp::kSub, MakeLiteral(Value::Float64(1.0)),
                           MakeColumnRef(4, DataType::kFloat64, "disc"))),
       "sum_disc_price"},
      {AggFn::kAvg, MakeColumnRef(4, DataType::kFloat64, "disc"), "avg_disc"},
      {AggFn::kCount, nullptr, "cnt"},
  };
  // kHybrid — the planner's default: workers fold into private tables, which
  // lets the batch path take the exclusive (lock-free) update fast path.
  spec.mode = HashAggIterator::Mode::kHybrid;
  for (auto _ : state) {
    HashAggIterator agg(std::make_unique<BlocksIterator>(&blocks), spec);
    WorkerContext ctx;
    agg.Open(&ctx);
    BlockPtr b;
    int64_t groups = 0;
    while (agg.Next(&ctx, &b) == NextResult::kSuccess) groups += b->num_rows();
    benchmark::DoNotOptimize(groups);
    agg.Close();
  }
  state.SetItemsProcessed(state.iterations() * rows);
  SetKernelMode(saved);
}

void BM_HashAggFoldScalar(benchmark::State& state) {
  RunHashAggFold(state, KernelMode::kScalar);
}
BENCHMARK(BM_HashAggFoldScalar);

void BM_HashAggFoldBatch(benchmark::State& state) {
  RunHashAggFold(state, KernelMode::kBatch);
}
BENCHMARK(BM_HashAggFoldBatch);

void RunHashJoinProbe(benchmark::State& state, KernelMode mode) {
  KernelMode saved = CurrentKernelMode();
  SetKernelMode(mode);
  Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v"),
            ColumnDef::Float64("f")});
  // Build: unique keys; probe: the kvf blocks (k in 0..99, all matching).
  std::vector<BlockPtr> build;
  {
    auto b = MakeBlock(s.row_size());
    for (int32_t i = 0; i < 100; ++i) {
      char* row = b->AppendRow();
      s.SetInt32(row, 0, i);
      s.SetInt64(row, 1, i);
      s.SetFloat64(row, 2, 0.0);
    }
    build.push_back(std::move(b));
  }
  std::vector<BlockPtr> probe;
  int64_t rows = 0;
  for (int i = 0; i < 8; ++i) {
    BlockPtr b = FillKVFBlock(s);
    b->set_sequence_number(i);
    rows += b->num_rows();
    probe.push_back(std::move(b));
  }
  HashJoinIterator::Spec spec;
  spec.build_schema = &s;
  spec.probe_schema = &s;
  spec.build_keys = {0};
  spec.probe_keys = {0};
  for (auto _ : state) {
    HashJoinIterator join(std::make_unique<BlocksIterator>(&build),
                          std::make_unique<BlocksIterator>(&probe), spec);
    WorkerContext ctx;
    join.Open(&ctx);
    BlockPtr b;
    int64_t matched = 0;
    while (join.Next(&ctx, &b) == NextResult::kSuccess) matched += b->num_rows();
    benchmark::DoNotOptimize(matched);
    join.Close();
  }
  state.SetItemsProcessed(state.iterations() * rows);
  SetKernelMode(saved);
}

void BM_HashJoinProbeScalar(benchmark::State& state) {
  RunHashJoinProbe(state, KernelMode::kScalar);
}
BENCHMARK(BM_HashJoinProbeScalar);

void BM_HashJoinProbeBatch(benchmark::State& state) {
  RunHashJoinProbe(state, KernelMode::kBatch);
}
BENCHMARK(BM_HashJoinProbeBatch);

}  // namespace
}  // namespace claims

BENCHMARK_MAIN();
