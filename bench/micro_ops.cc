// google-benchmark micro benchmarks of the real engine's building blocks:
// expression evaluation, LIKE matching, hash tables, block buffers, and the
// elastic iterator's expansion/shrink machinery.

#include <benchmark/benchmark.h>

#include "core/data_buffer.h"
#include "core/elastic_iterator.h"
#include "exec/expr/like.h"
#include "exec/expr/expr.h"
#include "exec/hash_table.h"
#include "exec/ops/filter.h"
#include "exec/ops/scan.h"
#include "storage/table.h"

namespace claims {
namespace {

void BM_LikeMatch(benchmark::State& state) {
  std::string text = "the quick brown fox jumps over the lazy dog";
  for (auto _ : state) {
    benchmark::DoNotOptimize(LikeMatch(text, "%quick%lazy%"));
  }
}
BENCHMARK(BM_LikeMatch);

void BM_ExprFilterEval(benchmark::State& state) {
  Schema s({ColumnDef::Int32("a"), ColumnDef::Float64("b")});
  std::vector<char> row(s.row_size());
  s.SetInt32(row.data(), 0, 42);
  s.SetFloat64(row.data(), 1, 3.14);
  ExprPtr pred = MakeLogic(
      LogicOp::kAnd,
      MakeCompare(CompareOp::kGt, MakeColumnRef(0, DataType::kInt32),
                  MakeLiteral(Value::Int32(10))),
      MakeCompare(CompareOp::kLt, MakeColumnRef(1, DataType::kFloat64),
                  MakeLiteral(Value::Float64(10.0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred->EvalBool(s, row.data()));
  }
}
BENCHMARK(BM_ExprFilterEval);

void BM_JoinHashTableInsert(benchmark::State& state) {
  Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
  std::vector<char> row(s.row_size());
  int32_t k = 0;
  JoinHashTable table(&s, {0}, 1 << 16);
  for (auto _ : state) {
    s.SetInt32(row.data(), 0, k++);
    table.Insert(row.data());
  }
}
BENCHMARK(BM_JoinHashTableInsert);

void BM_JoinHashTableProbe(benchmark::State& state) {
  Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
  JoinHashTable table(&s, {0}, 1 << 16);
  std::vector<char> row(s.row_size());
  for (int i = 0; i < 100000; ++i) {
    s.SetInt32(row.data(), 0, i);
    table.Insert(row.data());
  }
  int32_t k = 0;
  for (auto _ : state) {
    s.SetInt32(row.data(), 0, (k++) % 100000);
    int64_t matches = 0;
    table.ForEachMatch(s, row.data(), {0},
                       [&](const char*) { ++matches; });
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_JoinHashTableProbe);

void BM_AggHashTableUpdate(benchmark::State& state) {
  Schema group({ColumnDef::Int32("g")});
  AggHashTable table(group, 2, 1 << 12);
  std::vector<AggFn> fns = {AggFn::kSum, AggFn::kCount};
  std::vector<char> row(group.row_size());
  double values[2] = {1.0, 0};
  int64_t weights[2] = {1, 1};
  int32_t g = 0;
  const int32_t groups = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    group.SetInt32(row.data(), 0, (g++) % groups);
    table.Update(row.data(), fns, values, weights);
  }
}
BENCHMARK(BM_AggHashTableUpdate)->Arg(4)->Arg(1 << 16);

void BM_DataBufferInsertPop(benchmark::State& state) {
  DataBuffer buf({.capacity_blocks = 1024});
  buf.AddProducer(0);
  auto block = MakeBlock(8, 64);
  block->AppendRow();
  for (auto _ : state) {
    buf.Insert(0, block);
    BlockPtr out;
    buf.Pop(&out);
  }
}
BENCHMARK(BM_DataBufferInsertPop);

void BM_ScanThroughput(benchmark::State& state) {
  Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
  Table t("t", s, 1, {});
  for (int i = 0; i < 200000; ++i) {
    char* row = t.AppendRowSlotRoundRobin();
    s.SetInt32(row, 0, i);
    s.SetInt64(row, 1, i);
  }
  for (auto _ : state) {
    ScanIterator scan(&t.partition(0), &s);
    WorkerContext ctx;
    scan.Open(&ctx);
    BlockPtr b;
    int64_t rows = 0;
    while (scan.Next(&ctx, &b) == NextResult::kSuccess) rows += b->num_rows();
    benchmark::DoNotOptimize(rows);
    scan.Close();
  }
  state.SetItemsProcessed(state.iterations() * 200000);
}
BENCHMARK(BM_ScanThroughput);

void BM_ElasticExpandShrink(benchmark::State& state) {
  // Cost of one expand+shrink cycle on a live pipeline. A LIKE filter keeps
  // the pipeline busy long enough for a bounded number of cycles.
  Schema s({ColumnDef::Int32("k"), ColumnDef::Char("c", 32)});
  Table t("t", s, 1, {});
  for (int i = 0; i < 8000000; ++i) {
    char* row = t.AppendRowSlotRoundRobin();
    s.SetInt32(row, 0, i);
    s.SetString(row, 1, "the quick brown fox jumps");
  }
  ElasticIterator::Options opts;
  opts.initial_parallelism = 2;
  opts.buffer_capacity_blocks = 4096;
  auto scan = std::make_unique<ScanIterator>(&t.partition(0), &s);
  auto filter = std::make_unique<FilterIterator>(
      std::move(scan), &s,
      MakeLike(MakeColumnRef(1, DataType::kChar, "c"), "%quick%jumps%",
               /*negated=*/true));
  ElasticIterator it(std::move(filter), opts);
  WorkerContext ctx;
  it.Open(&ctx);
  std::thread consumer([&] {
    BlockPtr b;
    while (it.Next(&ctx, &b) == NextResult::kSuccess) {
    }
  });
  int core = 2;
  for (auto _ : state) {
    if (it.finished()) {
      state.SkipWithError("pipeline drained before the cycle budget");
      break;
    }
    benchmark::DoNotOptimize(it.ExpandMeasured(core++));
    benchmark::DoNotOptimize(it.ShrinkBlocking());
  }
  it.Close();
  consumer.join();
}
BENCHMARK(BM_ElasticExpandShrink)->Unit(benchmark::kMicrosecond)->Iterations(20);

}  // namespace
}  // namespace claims

BENCHMARK_MAIN();
