#ifndef CLAIMS_BENCH_BENCH_UTIL_H_
#define CLAIMS_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure/table reproduction binaries: aligned text
// tables (the paper's rows/series) with an optional --csv mode.

#include <cstdio>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace claims {
namespace bench {

inline bool CsvMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv") return true;
  }
  return false;
}

/// Column-aligned table printer.
class TablePrinter {
 public:
  explicit TablePrinter(bool csv) : csv_(csv) {}

  void Header(std::vector<std::string> cells) { Row(std::move(cells)); }

  void Row(std::vector<std::string> cells) {
    if (cells.size() > widths_.size()) widths_.resize(cells.size(), 0);
    for (size_t i = 0; i < cells.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    for (const auto& row : rows_) {
      std::string line;
      for (size_t i = 0; i < row.size(); ++i) {
        if (csv_) {
          if (i) line += ",";
          line += row[i];
        } else {
          if (i) line += "  ";
          line += row[i];
          line += std::string(widths_[i] - row[i].size(), ' ');
        }
      }
      std::printf("%s\n", line.c_str());
    }
  }

 private:
  bool csv_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<size_t> widths_;
};

inline std::string Sec(int64_t ns) { return StrFormat("%.1f", ns / 1e9); }
inline std::string Sec2(int64_t ns) { return StrFormat("%.2f", ns / 1e9); }
inline std::string Pct(double f) { return StrFormat("%.1f", f * 100); }
inline std::string Gb(int64_t bytes) {
  return StrFormat("%.2f", static_cast<double>(bytes) / (1 << 30));
}

inline void Title(const char* text) { std::printf("\n=== %s ===\n", text); }

}  // namespace bench
}  // namespace claims

#endif  // CLAIMS_BENCH_BENCH_UTIL_H_
