#ifndef CLAIMS_SQL_BINDER_H_
#define CLAIMS_SQL_BINDER_H_

#include <memory>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "sql/bound_expr.h"
#include "exec/hash_table.h"
#include "storage/catalog.h"

namespace claims {

struct BoundQuery;

/// One FROM relation after name resolution. Base tables carry their catalog
/// entry; derived tables carry a recursively bound subquery. Every relation
/// owns a contiguous range of the query's virtual joined schema starting at
/// `virtual_base`.
struct BoundRelation {
  std::string alias;  // lower-cased
  TablePtr table;     // null for derived tables
  std::unique_ptr<BoundQuery> subquery;
  Schema schema;
  int virtual_base = 0;
  /// Relation-local partition-key columns (base tables only).
  std::vector<int> partition_cols;
  int64_t estimated_rows = 0;
};

struct BoundAggregate {
  AggFn fn = AggFn::kCount;
  BExprPtr arg;  // null for COUNT(*)
  std::string name;
};

/// Post-projection ORDER BY: index into the select outputs.
struct BoundOrder {
  int output_index = 0;
  bool ascending = true;
};

/// A fully resolved SELECT, ready for the distributed planner.
struct BoundQuery {
  std::vector<BoundRelation> relations;
  /// WHERE conjuncts over the virtual joined schema.
  std::vector<BExprPtr> conjuncts;
  /// Aggregation (empty group_by + empty aggregates ⇒ plain projection).
  std::vector<BExprPtr> group_by;
  std::vector<BoundAggregate> aggregates;
  /// Final select expressions; kAggSlot nodes refer into `aggregates`.
  std::vector<BExprPtr> select_exprs;
  std::vector<std::string> select_names;
  BExprPtr having;  // over group columns + agg slots
  std::vector<BoundOrder> order_by;
  int64_t limit = -1;

  bool has_aggregation() const {
    return !group_by.empty() || !aggregates.empty();
  }
  int num_virtual_columns() const {
    if (relations.empty()) return 0;
    const BoundRelation& last = relations.back();
    return last.virtual_base + last.schema.num_columns();
  }
  /// Type/width of a virtual column.
  const ColumnDef& virtual_column(int v) const;
  /// Relation index owning virtual column `v`.
  int relation_of(int v) const;
};

/// Resolves a parsed SELECT against the catalog.
Result<std::unique_ptr<BoundQuery>> BindSelect(const SelectStmt& stmt,
                                               const Catalog& catalog);

}  // namespace claims

#endif  // CLAIMS_SQL_BINDER_H_
