#ifndef CLAIMS_SQL_AST_H_
#define CLAIMS_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace claims {

struct SelectStmt;

/// Unresolved parse-tree expression.
struct SqlExpr {
  enum class Kind {
    kColumn,      ///< [qualifier.]name
    kIntLiteral,
    kFloatLiteral,
    kStringLiteral,
    kStar,        ///< '*' (only below COUNT or as a select item)
    kBinary,      ///< op in {=, <>, <, <=, >, >=, +, -, *, /, AND, OR}
    kNot,
    kNegate,      ///< unary minus
    kLike,        ///< args[0] LIKE pattern (str_value), negated flag
    kInList,      ///< args[0] IN (args[1..]), negated flag
    kBetween,     ///< args[0] BETWEEN args[1] AND args[2]
    kCase,        ///< args = when1,then1,when2,then2,...; else_expr optional
    kCall,        ///< func_name(args) — aggregates and scalar functions
  };

  Kind kind;
  std::string qualifier;   // kColumn
  std::string name;        // kColumn / kCall function name
  int64_t int_value = 0;
  double float_value = 0;
  std::string str_value;   // string literal / LIKE pattern
  std::string op;          // kBinary operator text (upper-cased for AND/OR)
  bool negated = false;
  std::vector<std::unique_ptr<SqlExpr>> args;
  std::unique_ptr<SqlExpr> else_expr;
};

using SqlExprPtr = std::unique_ptr<SqlExpr>;

struct SelectItem {
  SqlExprPtr expr;     // null for '*'
  std::string alias;
  bool star = false;
};

/// FROM entry: base table or derived table (subquery).
struct TableRef {
  std::string table;                    // base table name (empty if subquery)
  std::string alias;                    // effective name for qualification
  std::unique_ptr<SelectStmt> subquery; // derived table
};

struct OrderItem {
  SqlExprPtr expr;
  bool ascending = true;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  SqlExprPtr where;  ///< explicit JOIN ... ON conditions are folded in here
  std::vector<SqlExprPtr> group_by;
  SqlExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;
};

}  // namespace claims

#endif  // CLAIMS_SQL_AST_H_
