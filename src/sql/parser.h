#ifndef CLAIMS_SQL_PARSER_H_
#define CLAIMS_SQL_PARSER_H_

#include <memory>

#include "common/status.h"
#include "sql/ast.h"

namespace claims {

/// Parses one SELECT statement (optionally ';'-terminated). Supported
/// grammar — the dialect the paper's workload needs:
///
///   SELECT item [, item]...
///   FROM table_ref [, table_ref]... | t1 [INNER] JOIN t2 ON cond ...
///   [WHERE cond] [GROUP BY expr,...] [HAVING cond]
///   [ORDER BY expr [ASC|DESC],...] [LIMIT n]
///
/// with expressions over + - * /, comparisons, AND/OR/NOT, LIKE/NOT LIKE,
/// IN (...), BETWEEN..AND, CASE WHEN, COUNT/SUM/AVG/MIN/MAX, YEAR(), string
/// and date literals, and derived tables `(SELECT ...) [AS] name`.
Result<std::unique_ptr<SelectStmt>> ParseSelect(std::string_view sql);

}  // namespace claims

#endif  // CLAIMS_SQL_PARSER_H_
