#include "sql/binder.h"

#include <algorithm>

#include "common/string_util.h"

namespace claims {

const ColumnDef& BoundQuery::virtual_column(int v) const {
  int r = relation_of(v);
  return relations[r].schema.column(v - relations[r].virtual_base);
}

int BoundQuery::relation_of(int v) const {
  for (size_t i = 0; i < relations.size(); ++i) {
    int base = relations[i].virtual_base;
    if (v >= base && v < base + relations[i].schema.num_columns()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

namespace {

class Binder {
 public:
  explicit Binder(const Catalog& catalog) : catalog_(catalog) {}

  Result<std::unique_ptr<BoundQuery>> Bind(const SelectStmt& stmt) {
    auto q = std::make_unique<BoundQuery>();
    query_ = q.get();

    // --- FROM -------------------------------------------------------------
    if (stmt.from.empty()) {
      return Status::BindError("FROM clause is required");
    }
    int base = 0;
    for (const TableRef& ref : stmt.from) {
      BoundRelation rel;
      rel.alias = ToLower(ref.alias);
      rel.virtual_base = base;
      if (ref.subquery != nullptr) {
        Binder sub_binder(catalog_);
        CLAIMS_ASSIGN_OR_RETURN(rel.subquery, sub_binder.Bind(*ref.subquery));
        // Derived schema from the subquery's output.
        std::vector<ColumnDef> cols;
        for (size_t i = 0; i < rel.subquery->select_exprs.size(); ++i) {
          const BExpr& e = *rel.subquery->select_exprs[i];
          cols.push_back(
              ColumnDef{rel.subquery->select_names[i], e.type,
                        e.type == DataType::kChar
                            ? (e.char_width > 0 ? e.char_width : 64)
                            : 0});
        }
        rel.schema = Schema(std::move(cols));
        rel.estimated_rows = EstimateSubqueryRows(*rel.subquery);
        // The planner hash-partitions derived output on its first column.
        rel.partition_cols = {0};
      } else {
        CLAIMS_ASSIGN_OR_RETURN(rel.table, catalog_.GetTable(ref.table));
        rel.schema = rel.table->schema();
        rel.partition_cols = rel.table->partition_key_cols();
        rel.estimated_rows = rel.table->num_rows();
      }
      for (const BoundRelation& existing : query_->relations) {
        if (existing.alias == rel.alias) {
          return Status::BindError(
              StrFormat("duplicate relation alias '%s'", rel.alias.c_str()));
        }
      }
      base += rel.schema.num_columns();
      query_->relations.push_back(std::move(rel));
    }

    // --- WHERE ------------------------------------------------------------
    if (stmt.where != nullptr) {
      CLAIMS_ASSIGN_OR_RETURN(BExprPtr where,
                              BindExpr(*stmt.where, /*allow_agg=*/false));
      SplitConjuncts(where, &query_->conjuncts);
    }

    // --- GROUP BY ----------------------------------------------------------
    for (const SqlExprPtr& g : stmt.group_by) {
      CLAIMS_ASSIGN_OR_RETURN(BExprPtr bound, BindExpr(*g, false));
      query_->group_by.push_back(std::move(bound));
    }

    // --- SELECT list --------------------------------------------------------
    for (const SelectItem& item : stmt.items) {
      if (item.star) {
        for (const BoundRelation& rel : query_->relations) {
          for (int c = 0; c < rel.schema.num_columns(); ++c) {
            const ColumnDef& col = rel.schema.column(c);
            query_->select_exprs.push_back(
                BColumn(rel.virtual_base + c, col.type, col.char_width));
            query_->select_names.push_back(col.name);
          }
        }
        continue;
      }
      CLAIMS_ASSIGN_OR_RETURN(BExprPtr bound,
                              BindExpr(*item.expr, /*allow_agg=*/true));
      query_->select_exprs.push_back(bound);
      query_->select_names.push_back(
          !item.alias.empty() ? item.alias : DefaultName(*item.expr));
    }

    // --- HAVING -------------------------------------------------------------
    if (stmt.having != nullptr) {
      CLAIMS_ASSIGN_OR_RETURN(query_->having, BindExpr(*stmt.having, true));
    }

    // Aggregation semantics check: outside aggregates, only group columns.
    if (query_->has_aggregation()) {
      for (size_t i = 0; i < query_->select_exprs.size(); ++i) {
        if (!OnlyGroupInputs(*query_->select_exprs[i])) {
          return Status::BindError(StrFormat(
              "select item %d must be an aggregate or a GROUP BY expression",
              static_cast<int>(i + 1)));
        }
      }
      if (query_->having != nullptr && !OnlyGroupInputs(*query_->having)) {
        return Status::BindError("HAVING must use aggregates or group keys");
      }
    }

    // --- ORDER BY / LIMIT ----------------------------------------------------
    for (const OrderItem& item : stmt.order_by) {
      CLAIMS_ASSIGN_OR_RETURN(int index, BindOrderItem(*item.expr));
      query_->order_by.push_back(BoundOrder{index, item.ascending});
    }
    query_->limit = stmt.limit;
    return q;
  }

 private:
  static std::string DefaultName(const SqlExpr& e) {
    if (e.kind == SqlExpr::Kind::kColumn) return ToLower(e.name);
    if (e.kind == SqlExpr::Kind::kCall) {
      std::string arg =
          e.args.empty() ? ""
          : (e.args[0]->kind == SqlExpr::Kind::kColumn ? ToLower(e.args[0]->name)
             : e.args[0]->kind == SqlExpr::Kind::kStar ? "*"
                                                       : "expr");
      return e.name + "_" + arg;
    }
    return "expr";
  }

  Result<BExprPtr> ResolveColumn(const std::string& qualifier,
                                 const std::string& name) {
    std::string q = ToLower(qualifier);
    std::string n = ToLower(name);
    BExprPtr found;
    for (const BoundRelation& rel : query_->relations) {
      if (!q.empty() && rel.alias != q) continue;
      int c = rel.schema.FindColumn(n);
      if (c < 0) continue;
      if (found != nullptr) {
        return Status::BindError(
            StrFormat("ambiguous column '%s'", name.c_str()));
      }
      const ColumnDef& col = rel.schema.column(c);
      found = BColumn(rel.virtual_base + c, col.type, col.char_width);
    }
    if (found == nullptr) {
      return Status::BindError(StrFormat(
          "unknown column '%s%s%s'", qualifier.c_str(),
          qualifier.empty() ? "" : ".", name.c_str()));
    }
    return found;
  }

  /// Converts a string literal to a DATE when compared against a date-typed
  /// expression ('2010-10-30' style literals).
  static void CoerceDateLiteral(BExprPtr* literal, const BExpr& other) {
    if (other.type != DataType::kDate) return;
    BExpr& lit = **literal;
    if (lit.kind != BExpr::Kind::kLiteral ||
        lit.literal.type() != DataType::kChar) {
      return;
    }
    auto parsed = ParseDate(lit.literal.AsString());
    if (parsed.ok()) *literal = BLiteral(Value::Date(*parsed));
  }

  Result<BExprPtr> BindExpr(const SqlExpr& e, bool allow_agg) {
    switch (e.kind) {
      case SqlExpr::Kind::kColumn:
        return ResolveColumn(e.qualifier, e.name);
      case SqlExpr::Kind::kIntLiteral:
        return BLiteral(Value::Int64(e.int_value));
      case SqlExpr::Kind::kFloatLiteral:
        return BLiteral(Value::Float64(e.float_value));
      case SqlExpr::Kind::kStringLiteral:
        return BLiteral(Value::String(e.str_value));
      case SqlExpr::Kind::kStar:
        return Status::BindError("'*' is only valid in COUNT(*)");
      case SqlExpr::Kind::kNegate: {
        CLAIMS_ASSIGN_OR_RETURN(BExprPtr c, BindExpr(*e.args[0], allow_agg));
        if (c->kind == BExpr::Kind::kLiteral) {
          const Value& v = c->literal;
          return BLiteral(v.type() == DataType::kFloat64
                              ? Value::Float64(-v.AsFloat64())
                              : Value::Int64(-v.AsInt64()));
        }
        return BArith(ArithOp::kSub, BLiteral(Value::Int64(0)), std::move(c));
      }
      case SqlExpr::Kind::kNot: {
        CLAIMS_ASSIGN_OR_RETURN(BExprPtr c, BindExpr(*e.args[0], allow_agg));
        return BNot(std::move(c));
      }
      case SqlExpr::Kind::kBinary: {
        CLAIMS_ASSIGN_OR_RETURN(BExprPtr l, BindExpr(*e.args[0], allow_agg));
        CLAIMS_ASSIGN_OR_RETURN(BExprPtr r, BindExpr(*e.args[1], allow_agg));
        if (e.op == "AND" || e.op == "OR") {
          return BLogic(e.op == "AND" ? LogicOp::kAnd : LogicOp::kOr,
                        std::move(l), std::move(r));
        }
        if (e.op == "+" || e.op == "-" || e.op == "*" || e.op == "/") {
          ArithOp op = e.op == "+"   ? ArithOp::kAdd
                       : e.op == "-" ? ArithOp::kSub
                       : e.op == "*" ? ArithOp::kMul
                                     : ArithOp::kDiv;
          return BArith(op, std::move(l), std::move(r));
        }
        CompareOp op;
        if (e.op == "=") {
          op = CompareOp::kEq;
        } else if (e.op == "<>" || e.op == "!=") {
          op = CompareOp::kNe;
        } else if (e.op == "<") {
          op = CompareOp::kLt;
        } else if (e.op == "<=") {
          op = CompareOp::kLe;
        } else if (e.op == ">") {
          op = CompareOp::kGt;
        } else if (e.op == ">=") {
          op = CompareOp::kGe;
        } else {
          return Status::BindError("unknown operator " + e.op);
        }
        CoerceDateLiteral(&r, *l);
        CoerceDateLiteral(&l, *r);
        return BCompare(op, std::move(l), std::move(r));
      }
      case SqlExpr::Kind::kLike: {
        CLAIMS_ASSIGN_OR_RETURN(BExprPtr c, BindExpr(*e.args[0], allow_agg));
        return BLike(std::move(c), e.str_value, e.negated);
      }
      case SqlExpr::Kind::kInList: {
        CLAIMS_ASSIGN_OR_RETURN(BExprPtr c, BindExpr(*e.args[0], allow_agg));
        std::vector<Value> values;
        for (size_t i = 1; i < e.args.size(); ++i) {
          CLAIMS_ASSIGN_OR_RETURN(BExprPtr v, BindExpr(*e.args[i], false));
          if (v->kind != BExpr::Kind::kLiteral) {
            return Status::BindError("IN list must contain literals");
          }
          CoerceDateLiteral(&v, *c);
          values.push_back(v->literal);
        }
        return BInList(std::move(c), std::move(values), e.negated);
      }
      case SqlExpr::Kind::kBetween: {
        CLAIMS_ASSIGN_OR_RETURN(BExprPtr c, BindExpr(*e.args[0], allow_agg));
        CLAIMS_ASSIGN_OR_RETURN(BExprPtr lo, BindExpr(*e.args[1], allow_agg));
        CLAIMS_ASSIGN_OR_RETURN(BExprPtr hi, BindExpr(*e.args[2], allow_agg));
        CoerceDateLiteral(&lo, *c);
        CoerceDateLiteral(&hi, *c);
        BExprPtr both =
            BLogic(LogicOp::kAnd, BCompare(CompareOp::kGe, c, std::move(lo)),
                   BCompare(CompareOp::kLe, c, std::move(hi)));
        if (e.negated) return BNot(std::move(both));
        return both;
      }
      case SqlExpr::Kind::kCase: {
        std::vector<BExprPtr> children;
        for (size_t i = 0; i < e.args.size(); ++i) {
          CLAIMS_ASSIGN_OR_RETURN(BExprPtr c, BindExpr(*e.args[i], allow_agg));
          children.push_back(std::move(c));
        }
        if (e.else_expr != nullptr) {
          CLAIMS_ASSIGN_OR_RETURN(BExprPtr c,
                                  BindExpr(*e.else_expr, allow_agg));
          children.push_back(std::move(c));
        }
        return BCase(std::move(children));
      }
      case SqlExpr::Kind::kCall: {
        AggFn fn;
        bool is_agg = true;
        if (e.name == "count") {
          fn = AggFn::kCount;
        } else if (e.name == "sum") {
          fn = AggFn::kSum;
        } else if (e.name == "avg") {
          fn = AggFn::kAvg;
        } else if (e.name == "min") {
          fn = AggFn::kMin;
        } else if (e.name == "max") {
          fn = AggFn::kMax;
        } else {
          is_agg = false;
        }
        if (is_agg) {
          if (!allow_agg) {
            return Status::BindError(
                "aggregate not allowed in WHERE/GROUP BY");
          }
          BoundAggregate agg;
          agg.fn = fn;
          if (!e.args.empty() && e.args[0]->kind != SqlExpr::Kind::kStar) {
            CLAIMS_ASSIGN_OR_RETURN(agg.arg,
                                    BindExpr(*e.args[0], /*allow_agg=*/false));
          } else if (fn != AggFn::kCount) {
            return Status::BindError("'*' argument only valid for COUNT");
          }
          agg.name = DefaultName(e);
          DataType out_type =
              fn == AggFn::kCount ? DataType::kInt64
              : fn == AggFn::kAvg ? DataType::kFloat64
              : (agg.arg != nullptr && agg.arg->type == DataType::kFloat64)
                  ? DataType::kFloat64
              : (agg.arg != nullptr && agg.arg->type == DataType::kDate &&
                 (fn == AggFn::kMin || fn == AggFn::kMax))
                  ? DataType::kDate
                  : DataType::kInt64;
          int slot = static_cast<int>(query_->aggregates.size());
          query_->aggregates.push_back(std::move(agg));
          return BAggSlot(slot, out_type);
        }
        if (e.name == "year") {
          if (e.args.size() != 1) {
            return Status::BindError("YEAR takes one argument");
          }
          CLAIMS_ASSIGN_OR_RETURN(BExprPtr c, BindExpr(*e.args[0], allow_agg));
          return BYear(std::move(c));
        }
        return Status::BindError("unknown function " + e.name);
      }
    }
    return Status::Internal("unhandled expression kind");
  }

  /// True when every column in `e` outside aggregate slots matches some
  /// GROUP BY expression (compared structurally via ToString).
  bool OnlyGroupInputs(const BExpr& e) const {
    if (e.kind == BExpr::Kind::kAggSlot) return true;
    for (const BExprPtr& g : query_->group_by) {
      if (g->ToString() == e.ToString()) return true;
    }
    if (e.kind == BExpr::Kind::kColumn) return false;
    if (e.children.empty()) return true;  // literal
    for (const BExprPtr& c : e.children) {
      if (!OnlyGroupInputs(*c)) return false;
    }
    return true;
  }

  Result<int> BindOrderItem(const SqlExpr& e) {
    // 1. Ordinal.
    if (e.kind == SqlExpr::Kind::kIntLiteral) {
      int i = static_cast<int>(e.int_value);
      if (i < 1 || i > static_cast<int>(query_->select_exprs.size())) {
        return Status::BindError("ORDER BY ordinal out of range");
      }
      return i - 1;
    }
    // 2. Alias / output-name match.
    if (e.kind == SqlExpr::Kind::kColumn && e.qualifier.empty()) {
      for (size_t i = 0; i < query_->select_names.size(); ++i) {
        if (EqualsIgnoreCase(query_->select_names[i], e.name)) {
          return static_cast<int>(i);
        }
      }
    }
    // 3. Structural match against a select expression. Binding may append
    // tentative aggregates; roll them back (a fresh slot can never match an
    // existing select output anyway).
    size_t agg_snapshot = query_->aggregates.size();
    auto bound = BindExpr(e, /*allow_agg=*/true);
    int match = -1;
    if (bound.ok()) {
      std::string text = (*bound)->ToString();
      for (size_t i = 0; i < query_->select_exprs.size(); ++i) {
        if (query_->select_exprs[i]->ToString() == text) {
          match = static_cast<int>(i);
          break;
        }
      }
    }
    query_->aggregates.resize(agg_snapshot);
    if (match >= 0) return match;
    return Status::BindError(
        "ORDER BY expression must match a select output");
  }

  static int64_t EstimateSubqueryRows(const BoundQuery& sub) {
    if (!sub.has_aggregation()) {
      int64_t rows = 1;
      for (const BoundRelation& r : sub.relations) {
        rows = std::max(rows, r.estimated_rows);
      }
      return rows;
    }
    if (sub.group_by.empty()) return 1;
    // Group-by output: crude 1/20th of the driving relation, bounded.
    int64_t rows = 1;
    for (const BoundRelation& r : sub.relations) {
      rows = std::max(rows, r.estimated_rows);
    }
    return std::max<int64_t>(1, rows / 20);
  }

  const Catalog& catalog_;
  BoundQuery* query_ = nullptr;
};

}  // namespace

Result<std::unique_ptr<BoundQuery>> BindSelect(const SelectStmt& stmt,
                                               const Catalog& catalog) {
  Binder binder(catalog);
  return binder.Bind(stmt);
}

}  // namespace claims
