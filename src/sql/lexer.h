#ifndef CLAIMS_SQL_LEXER_H_
#define CLAIMS_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace claims {

enum class TokenType {
  kIdentifier,   ///< unquoted name (keywords are identifiers; the parser
                 ///< matches them case-insensitively)
  kInteger,
  kFloat,
  kString,       ///< '...' literal, quotes stripped, '' unescaped
  kSymbol,       ///< operator / punctuation: ( ) , . ; = <> != <= >= < > + - * /
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   ///< raw text (identifiers keep original case)
  int64_t int_value = 0;
  double float_value = 0;
  int position = 0;   ///< byte offset in the input, for error messages
};

/// Splits a SQL string into tokens. Comments (`-- ...`) are skipped.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace claims

#endif  // CLAIMS_SQL_LEXER_H_
