#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace claims {
namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStmt>> ParseStatement() {
    CLAIMS_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelectBody());
    MatchSymbol(";");
    if (!AtEnd()) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

 private:
  // --- token helpers ---------------------------------------------------------

  const Token& Peek(int k = 0) const {
    size_t i = pos_ + static_cast<size_t>(k);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(const char* kw, int k = 0) const {
    const Token& t = Peek(k);
    return t.type == TokenType::kIdentifier && EqualsIgnoreCase(t.text, kw);
  }
  bool MatchKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  bool PeekSymbol(const char* s, int k = 0) const {
    const Token& t = Peek(k);
    return t.type == TokenType::kSymbol && t.text == s;
  }
  bool MatchSymbol(const char* s) {
    if (!PeekSymbol(s)) return false;
    ++pos_;
    return true;
  }
  Status Error(const std::string& message) const {
    return Status::ParseError(StrFormat(
        "%s near '%s' (offset %d)", message.c_str(),
        Peek().type == TokenType::kEnd ? "<end>" : Peek().text.c_str(),
        Peek().position));
  }
  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) return Error(StrFormat("expected %s", kw));
    return Status::OK();
  }
  Status ExpectSymbol(const char* s) {
    if (!MatchSymbol(s)) return Error(StrFormat("expected '%s'", s));
    return Status::OK();
  }

  static bool IsReserved(const std::string& word) {
    static const char* kReserved[] = {
        "select", "from",  "where",  "group", "by",    "having", "order",
        "limit",  "and",   "or",     "not",   "like",  "in",     "between",
        "case",   "when",  "then",   "else",  "end",   "as",     "join",
        "inner",  "on",    "asc",    "desc",  "union"};
    for (const char* r : kReserved) {
      if (EqualsIgnoreCase(word, r)) return true;
    }
    return false;
  }

  // --- grammar ----------------------------------------------------------------

  Result<std::unique_ptr<SelectStmt>> ParseSelectBody() {
    CLAIMS_RETURN_IF_ERROR(ExpectKeyword("select"));
    auto stmt = std::make_unique<SelectStmt>();
    // select list
    do {
      SelectItem item;
      if (PeekSymbol("*")) {
        ++pos_;
        item.star = true;
      } else {
        CLAIMS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("as")) {
          if (Peek().type != TokenType::kIdentifier) {
            return Error("expected alias after AS");
          }
          item.alias = Advance().text;
        } else if (Peek().type == TokenType::kIdentifier &&
                   !IsReserved(Peek().text)) {
          item.alias = Advance().text;
        }
      }
      stmt->items.push_back(std::move(item));
    } while (MatchSymbol(","));

    CLAIMS_RETURN_IF_ERROR(ExpectKeyword("from"));
    CLAIMS_RETURN_IF_ERROR(ParseFromList(stmt.get()));

    if (MatchKeyword("where")) {
      CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr where, ParseExpr());
      stmt->where = Conjoin(std::move(stmt->where), std::move(where));
    }
    if (MatchKeyword("group")) {
      CLAIMS_RETURN_IF_ERROR(ExpectKeyword("by"));
      do {
        CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr g, ParseExpr());
        stmt->group_by.push_back(std::move(g));
      } while (MatchSymbol(","));
    }
    if (MatchKeyword("having")) {
      CLAIMS_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (MatchKeyword("order")) {
      CLAIMS_RETURN_IF_ERROR(ExpectKeyword("by"));
      do {
        OrderItem item;
        CLAIMS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("desc")) {
          item.ascending = false;
        } else {
          MatchKeyword("asc");
        }
        stmt->order_by.push_back(std::move(item));
      } while (MatchSymbol(","));
    }
    if (MatchKeyword("limit")) {
      if (Peek().type != TokenType::kInteger) return Error("expected LIMIT count");
      stmt->limit = Advance().int_value;
    }
    return stmt;
  }

  Status ParseFromList(SelectStmt* stmt) {
    CLAIMS_RETURN_IF_ERROR(ParseTableRef(stmt));
    while (true) {
      if (MatchSymbol(",")) {
        CLAIMS_RETURN_IF_ERROR(ParseTableRef(stmt));
      } else if (PeekKeyword("join") || PeekKeyword("inner")) {
        MatchKeyword("inner");
        CLAIMS_RETURN_IF_ERROR(ExpectKeyword("join"));
        CLAIMS_RETURN_IF_ERROR(ParseTableRef(stmt));
        CLAIMS_RETURN_IF_ERROR(ExpectKeyword("on"));
        CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr cond, ParseExpr());
        stmt->where = Conjoin(std::move(stmt->where), std::move(cond));
      } else {
        return Status::OK();
      }
    }
  }

  Status ParseTableRef(SelectStmt* stmt) {
    TableRef ref;
    if (MatchSymbol("(")) {
      CLAIMS_ASSIGN_OR_RETURN(ref.subquery, ParseSelectBody());
      CLAIMS_RETURN_IF_ERROR(ExpectSymbol(")"));
      MatchKeyword("as");
      if (Peek().type != TokenType::kIdentifier) {
        return Error("derived table requires an alias");
      }
      ref.alias = Advance().text;
    } else {
      if (Peek().type != TokenType::kIdentifier) return Error("expected table");
      ref.table = Advance().text;
      ref.alias = ref.table;
      if (MatchKeyword("as")) {
        if (Peek().type != TokenType::kIdentifier) return Error("expected alias");
        ref.alias = Advance().text;
      } else if (Peek().type == TokenType::kIdentifier &&
                 !IsReserved(Peek().text)) {
        ref.alias = Advance().text;
      }
    }
    stmt->from.push_back(std::move(ref));
    return Status::OK();
  }

  static SqlExprPtr Conjoin(SqlExprPtr a, SqlExprPtr b) {
    if (a == nullptr) return b;
    auto both = std::make_unique<SqlExpr>();
    both->kind = SqlExpr::Kind::kBinary;
    both->op = "AND";
    both->args.push_back(std::move(a));
    both->args.push_back(std::move(b));
    return both;
  }

  // Precedence: OR < AND < NOT < predicate < additive < multiplicative < unary.
  Result<SqlExprPtr> ParseExpr() { return ParseOr(); }

  Result<SqlExprPtr> ParseOr() {
    CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr left, ParseAnd());
    while (MatchKeyword("or")) {
      CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr right, ParseAnd());
      left = MakeBinary("OR", std::move(left), std::move(right));
    }
    return left;
  }

  Result<SqlExprPtr> ParseAnd() {
    CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr left, ParseNot());
    while (MatchKeyword("and")) {
      CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr right, ParseNot());
      left = MakeBinary("AND", std::move(left), std::move(right));
    }
    return left;
  }

  Result<SqlExprPtr> ParseNot() {
    if (MatchKeyword("not")) {
      CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr child, ParseNot());
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExpr::Kind::kNot;
      e->args.push_back(std::move(child));
      return e;
    }
    return ParsePredicate();
  }

  Result<SqlExprPtr> ParsePredicate() {
    CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr left, ParseAdditive());
    bool negated = false;
    if (PeekKeyword("not") &&
        (PeekKeyword("like", 1) || PeekKeyword("in", 1) ||
         PeekKeyword("between", 1))) {
      ++pos_;
      negated = true;
    }
    if (MatchKeyword("like")) {
      if (Peek().type != TokenType::kString) return Error("expected pattern");
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExpr::Kind::kLike;
      e->str_value = Advance().text;
      e->negated = negated;
      e->args.push_back(std::move(left));
      return e;
    }
    if (MatchKeyword("in")) {
      CLAIMS_RETURN_IF_ERROR(ExpectSymbol("("));
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExpr::Kind::kInList;
      e->negated = negated;
      e->args.push_back(std::move(left));
      do {
        CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr v, ParseAdditive());
        e->args.push_back(std::move(v));
      } while (MatchSymbol(","));
      CLAIMS_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }
    if (MatchKeyword("between")) {
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExpr::Kind::kBetween;
      e->negated = negated;
      e->args.push_back(std::move(left));
      CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr lo, ParseAdditive());
      CLAIMS_RETURN_IF_ERROR(ExpectKeyword("and"));
      CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr hi, ParseAdditive());
      e->args.push_back(std::move(lo));
      e->args.push_back(std::move(hi));
      return e;
    }
    if (negated) return Error("expected LIKE/IN/BETWEEN after NOT");
    for (const char* op : {"<=", ">=", "<>", "!=", "=", "<", ">"}) {
      if (MatchSymbol(op)) {
        CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr right, ParseAdditive());
        return MakeBinary(op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<SqlExprPtr> ParseAdditive() {
    CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr left, ParseMultiplicative());
    while (PeekSymbol("+") || PeekSymbol("-")) {
      std::string op = Advance().text;
      CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr right, ParseMultiplicative());
      left = MakeBinary(op.c_str(), std::move(left), std::move(right));
    }
    return left;
  }

  Result<SqlExprPtr> ParseMultiplicative() {
    CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr left, ParseUnary());
    while (PeekSymbol("*") || PeekSymbol("/")) {
      std::string op = Advance().text;
      CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr right, ParseUnary());
      left = MakeBinary(op.c_str(), std::move(left), std::move(right));
    }
    return left;
  }

  Result<SqlExprPtr> ParseUnary() {
    if (MatchSymbol("-")) {
      CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr child, ParseUnary());
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExpr::Kind::kNegate;
      e->args.push_back(std::move(child));
      return e;
    }
    MatchSymbol("+");
    return ParsePrimary();
  }

  Result<SqlExprPtr> ParsePrimary() {
    const Token& t = Peek();
    auto e = std::make_unique<SqlExpr>();
    switch (t.type) {
      case TokenType::kInteger:
        e->kind = SqlExpr::Kind::kIntLiteral;
        e->int_value = Advance().int_value;
        return e;
      case TokenType::kFloat:
        e->kind = SqlExpr::Kind::kFloatLiteral;
        e->float_value = Advance().float_value;
        return e;
      case TokenType::kString:
        e->kind = SqlExpr::Kind::kStringLiteral;
        e->str_value = Advance().text;
        return e;
      case TokenType::kSymbol:
        if (MatchSymbol("(")) {
          CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseExpr());
          CLAIMS_RETURN_IF_ERROR(ExpectSymbol(")"));
          return inner;
        }
        if (PeekSymbol("*")) {
          ++pos_;
          e->kind = SqlExpr::Kind::kStar;
          return e;
        }
        return Error("unexpected symbol");
      case TokenType::kIdentifier: {
        if (EqualsIgnoreCase(t.text, "case")) return ParseCase();
        std::string first = Advance().text;
        if (MatchSymbol("(")) {  // function call
          e->kind = SqlExpr::Kind::kCall;
          e->name = ToLower(first);
          if (PeekSymbol("*")) {
            ++pos_;
            auto star = std::make_unique<SqlExpr>();
            star->kind = SqlExpr::Kind::kStar;
            e->args.push_back(std::move(star));
          } else if (!PeekSymbol(")")) {
            do {
              CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr arg, ParseExpr());
              e->args.push_back(std::move(arg));
            } while (MatchSymbol(","));
          }
          CLAIMS_RETURN_IF_ERROR(ExpectSymbol(")"));
          return e;
        }
        e->kind = SqlExpr::Kind::kColumn;
        if (MatchSymbol(".")) {
          if (Peek().type != TokenType::kIdentifier) {
            return Error("expected column after '.'");
          }
          e->qualifier = first;
          e->name = Advance().text;
        } else {
          e->name = first;
        }
        return e;
      }
      case TokenType::kEnd:
        return Error("unexpected end of input");
    }
    return Error("unexpected token");
  }

  Result<SqlExprPtr> ParseCase() {
    CLAIMS_RETURN_IF_ERROR(ExpectKeyword("case"));
    auto e = std::make_unique<SqlExpr>();
    e->kind = SqlExpr::Kind::kCase;
    while (MatchKeyword("when")) {
      CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr cond, ParseExpr());
      CLAIMS_RETURN_IF_ERROR(ExpectKeyword("then"));
      CLAIMS_ASSIGN_OR_RETURN(SqlExprPtr then, ParseExpr());
      e->args.push_back(std::move(cond));
      e->args.push_back(std::move(then));
    }
    if (e->args.empty()) return Error("CASE requires at least one WHEN");
    if (MatchKeyword("else")) {
      CLAIMS_ASSIGN_OR_RETURN(e->else_expr, ParseExpr());
    }
    CLAIMS_RETURN_IF_ERROR(ExpectKeyword("end"));
    return e;
  }

  static SqlExprPtr MakeBinary(const char* op, SqlExprPtr l, SqlExprPtr r) {
    auto e = std::make_unique<SqlExpr>();
    e->kind = SqlExpr::Kind::kBinary;
    e->op = ToUpper(op);
    e->args.push_back(std::move(l));
    e->args.push_back(std::move(r));
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<SelectStmt>> ParseSelect(std::string_view sql) {
  CLAIMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace claims
