#ifndef CLAIMS_SQL_BOUND_EXPR_H_
#define CLAIMS_SQL_BOUND_EXPR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/expr/expr.h"

namespace claims {

struct BExpr;
using BExprPtr = std::shared_ptr<BExpr>;

/// Bound (name-resolved, typed) expression over the query's *virtual joined
/// schema*: the concatenation of all FROM relations' columns, plus — after
/// aggregation — slots for aggregate results. The distributed planner lowers
/// a BExpr into an executable ExprPtr against whatever physical stream schema
/// exists at each pipeline position, remapping virtual columns.
struct BExpr {
  enum class Kind {
    kColumn,   ///< virtual column index
    kAggSlot,  ///< aggregate result slot (post-aggregation expressions)
    kLiteral,
    kCompare,
    kArith,
    kLogic,
    kNot,
    kLike,
    kInList,
    kCase,     ///< children = cond1,then1,...; odd count ⇒ last is ELSE
    kYear,
  };

  Kind kind;
  DataType type = DataType::kInt64;
  int column = -1;      ///< kColumn: virtual index; kAggSlot: slot index
  int char_width = 0;   ///< for kColumn of CHAR type
  Value literal;
  CompareOp compare_op = CompareOp::kEq;
  ArithOp arith_op = ArithOp::kAdd;
  LogicOp logic_op = LogicOp::kAnd;
  std::string pattern;  ///< kLike
  bool negated = false;
  std::vector<Value> in_values;
  std::vector<BExprPtr> children;

  std::string ToString() const;
};

BExprPtr BColumn(int virtual_index, DataType type, int char_width = 0);
BExprPtr BAggSlot(int slot, DataType type);
BExprPtr BLiteral(Value v);
BExprPtr BCompare(CompareOp op, BExprPtr l, BExprPtr r);
BExprPtr BArith(ArithOp op, BExprPtr l, BExprPtr r);
BExprPtr BLogic(LogicOp op, BExprPtr l, BExprPtr r);
BExprPtr BNot(BExprPtr c);
BExprPtr BLike(BExprPtr c, std::string pattern, bool negated);
BExprPtr BInList(BExprPtr c, std::vector<Value> values, bool negated);
BExprPtr BCase(std::vector<BExprPtr> children);
BExprPtr BYear(BExprPtr c);

/// Splits an AND tree into conjuncts.
void SplitConjuncts(const BExprPtr& expr, std::vector<BExprPtr>* out);

/// Collects the distinct virtual columns (kColumn) referenced by `expr`.
void CollectColumns(const BExpr& expr, std::vector<int>* out);

/// True if `expr` references only virtual columns present in `mapping`
/// (and no aggregate slots).
bool ColumnsCovered(const BExpr& expr, const std::map<int, int>& virt_to_stream);

/// Lowers a bound expression to an executable one against a physical stream:
/// `virt_to_stream` maps virtual column → stream column; `agg_to_stream` (may
/// be null) maps aggregate slot → stream column. Fails if a referenced column
/// is missing from the mapping (planner bug).
Result<ExprPtr> LowerBExpr(const BExpr& expr,
                           const std::map<int, int>& virt_to_stream,
                           const std::map<int, int>* agg_to_stream,
                           const Schema& stream_schema);

}  // namespace claims

#endif  // CLAIMS_SQL_BOUND_EXPR_H_
