#ifndef CLAIMS_SQL_PLANNER_H_
#define CLAIMS_SQL_PLANNER_H_

#include <memory>

#include "cluster/plan.h"
#include "sql/binder.h"

namespace claims {

struct PlannerOptions {
  /// Cluster size; exchanges address nodes 0..num_nodes-1, master is node 0.
  int num_nodes = 4;
  /// Build sides at or below this many (estimated, post-filter) rows are
  /// broadcast instead of repartitioned.
  int64_t broadcast_threshold_rows = 20000;
  HashAggIterator::Mode agg_mode = HashAggIterator::Mode::kHybrid;
  /// Simulated NUMA sockets for scan striping.
  int numa_sockets = 1;
  /// Rows sampled per relation for predicate selectivity estimation.
  int64_t sample_limit = 20000;
};

/// The master node's query optimizer / distributed planner: turns a bound
/// query into a pipelined, fragment-decomposed physical plan (paper §2's
/// master responsibilities). Techniques:
///  * predicate pushdown onto base relations, with sampled selectivities;
///  * greedy left-deep join ordering (largest filtered relation streams as
///    the probe; remaining relations join smallest-first along equi edges);
///  * locality-aware exchange placement: co-located joins when both sides
///    are partitioned on the join key, broadcast of small build sides,
///    repartition (shuffle) joins otherwise — the paper's Fig. 1/3 shapes;
///  * single-phase repartitioned aggregation (Fig. 1: repartition on the
///    group key, aggregate), local aggregation when the stream is already
///    partitioned by a subset of the group keys, and two-phase partial/final
///    aggregation for scalar (group-less) aggregates;
///  * projection pushdown in front of shuffles (only needed columns cross
///    the network);
///  * global sort at the master for ORDER BY.
class Planner {
 public:
  Planner(Catalog* catalog, PlannerOptions options);

  /// Full pipeline: parse → bind → plan.
  Result<PhysicalPlan> PlanSql(std::string_view sql);

  Result<PhysicalPlan> Plan(const BoundQuery& query);

 private:
  class Impl;
  Catalog* catalog_;
  PlannerOptions options_;
};

}  // namespace claims

#endif  // CLAIMS_SQL_PLANNER_H_
