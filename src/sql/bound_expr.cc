#include "sql/bound_expr.h"

#include <algorithm>

#include "common/string_util.h"

namespace claims {

namespace {

BExprPtr New(BExpr::Kind kind, DataType type) {
  auto e = std::make_shared<BExpr>();
  e->kind = kind;
  e->type = type;
  return e;
}

}  // namespace

BExprPtr BColumn(int virtual_index, DataType type, int char_width) {
  auto e = New(BExpr::Kind::kColumn, type);
  e->column = virtual_index;
  e->char_width = char_width;
  return e;
}

BExprPtr BAggSlot(int slot, DataType type) {
  auto e = New(BExpr::Kind::kAggSlot, type);
  e->column = slot;
  return e;
}

BExprPtr BLiteral(Value v) {
  auto e = New(BExpr::Kind::kLiteral, v.type());
  e->literal = std::move(v);
  return e;
}

BExprPtr BCompare(CompareOp op, BExprPtr l, BExprPtr r) {
  auto e = New(BExpr::Kind::kCompare, DataType::kInt32);
  e->compare_op = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

BExprPtr BArith(ArithOp op, BExprPtr l, BExprPtr r) {
  DataType t = (l->type == DataType::kFloat64 || r->type == DataType::kFloat64 ||
                op == ArithOp::kDiv)
                   ? DataType::kFloat64
                   : DataType::kInt64;
  auto e = New(BExpr::Kind::kArith, t);
  e->arith_op = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

BExprPtr BLogic(LogicOp op, BExprPtr l, BExprPtr r) {
  auto e = New(BExpr::Kind::kLogic, DataType::kInt32);
  e->logic_op = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

BExprPtr BNot(BExprPtr c) {
  auto e = New(BExpr::Kind::kNot, DataType::kInt32);
  e->children = {std::move(c)};
  return e;
}

BExprPtr BLike(BExprPtr c, std::string pattern, bool negated) {
  auto e = New(BExpr::Kind::kLike, DataType::kInt32);
  e->pattern = std::move(pattern);
  e->negated = negated;
  e->children = {std::move(c)};
  return e;
}

BExprPtr BInList(BExprPtr c, std::vector<Value> values, bool negated) {
  auto e = New(BExpr::Kind::kInList, DataType::kInt32);
  e->in_values = std::move(values);
  e->negated = negated;
  e->children = {std::move(c)};
  return e;
}

BExprPtr BCase(std::vector<BExprPtr> children) {
  DataType t = children.size() >= 2 ? children[1]->type : DataType::kInt64;
  auto e = New(BExpr::Kind::kCase, t);
  e->children = std::move(children);
  return e;
}

BExprPtr BYear(BExprPtr c) {
  auto e = New(BExpr::Kind::kYear, DataType::kInt32);
  e->children = {std::move(c)};
  return e;
}

void SplitConjuncts(const BExprPtr& expr, std::vector<BExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind == BExpr::Kind::kLogic && expr->logic_op == LogicOp::kAnd) {
    SplitConjuncts(expr->children[0], out);
    SplitConjuncts(expr->children[1], out);
    return;
  }
  out->push_back(expr);
}

void CollectColumns(const BExpr& expr, std::vector<int>* out) {
  if (expr.kind == BExpr::Kind::kColumn) {
    if (std::find(out->begin(), out->end(), expr.column) == out->end()) {
      out->push_back(expr.column);
    }
  }
  for (const BExprPtr& c : expr.children) CollectColumns(*c, out);
}

bool ColumnsCovered(const BExpr& expr,
                    const std::map<int, int>& virt_to_stream) {
  if (expr.kind == BExpr::Kind::kAggSlot) return false;
  if (expr.kind == BExpr::Kind::kColumn &&
      virt_to_stream.count(expr.column) == 0) {
    return false;
  }
  for (const BExprPtr& c : expr.children) {
    if (!ColumnsCovered(*c, virt_to_stream)) return false;
  }
  return true;
}

Result<ExprPtr> LowerBExpr(const BExpr& expr,
                           const std::map<int, int>& virt_to_stream,
                           const std::map<int, int>* agg_to_stream,
                           const Schema& stream_schema) {
  switch (expr.kind) {
    case BExpr::Kind::kColumn: {
      auto it = virt_to_stream.find(expr.column);
      if (it == virt_to_stream.end()) {
        return Status::PlanError(
            StrFormat("virtual column %d not present in stream", expr.column));
      }
      return MakeColumnRef(it->second, expr.type,
                           stream_schema.column(it->second).name);
    }
    case BExpr::Kind::kAggSlot: {
      if (agg_to_stream == nullptr) {
        return Status::PlanError("aggregate used outside aggregation context");
      }
      auto it = agg_to_stream->find(expr.column);
      if (it == agg_to_stream->end()) {
        return Status::PlanError(
            StrFormat("aggregate slot %d not present in stream", expr.column));
      }
      return MakeColumnRef(it->second, expr.type,
                           stream_schema.column(it->second).name);
    }
    case BExpr::Kind::kLiteral:
      return MakeLiteral(expr.literal);
    case BExpr::Kind::kCompare: {
      CLAIMS_ASSIGN_OR_RETURN(ExprPtr l, LowerBExpr(*expr.children[0],
                                                    virt_to_stream,
                                                    agg_to_stream,
                                                    stream_schema));
      CLAIMS_ASSIGN_OR_RETURN(ExprPtr r, LowerBExpr(*expr.children[1],
                                                    virt_to_stream,
                                                    agg_to_stream,
                                                    stream_schema));
      return MakeCompare(expr.compare_op, std::move(l), std::move(r));
    }
    case BExpr::Kind::kArith: {
      CLAIMS_ASSIGN_OR_RETURN(ExprPtr l, LowerBExpr(*expr.children[0],
                                                    virt_to_stream,
                                                    agg_to_stream,
                                                    stream_schema));
      CLAIMS_ASSIGN_OR_RETURN(ExprPtr r, LowerBExpr(*expr.children[1],
                                                    virt_to_stream,
                                                    agg_to_stream,
                                                    stream_schema));
      return MakeArith(expr.arith_op, std::move(l), std::move(r));
    }
    case BExpr::Kind::kLogic: {
      CLAIMS_ASSIGN_OR_RETURN(ExprPtr l, LowerBExpr(*expr.children[0],
                                                    virt_to_stream,
                                                    agg_to_stream,
                                                    stream_schema));
      CLAIMS_ASSIGN_OR_RETURN(ExprPtr r, LowerBExpr(*expr.children[1],
                                                    virt_to_stream,
                                                    agg_to_stream,
                                                    stream_schema));
      return MakeLogic(expr.logic_op, std::move(l), std::move(r));
    }
    case BExpr::Kind::kNot: {
      CLAIMS_ASSIGN_OR_RETURN(ExprPtr c, LowerBExpr(*expr.children[0],
                                                    virt_to_stream,
                                                    agg_to_stream,
                                                    stream_schema));
      return MakeNot(std::move(c));
    }
    case BExpr::Kind::kLike: {
      CLAIMS_ASSIGN_OR_RETURN(ExprPtr c, LowerBExpr(*expr.children[0],
                                                    virt_to_stream,
                                                    agg_to_stream,
                                                    stream_schema));
      return MakeLike(std::move(c), expr.pattern, expr.negated);
    }
    case BExpr::Kind::kInList: {
      CLAIMS_ASSIGN_OR_RETURN(ExprPtr c, LowerBExpr(*expr.children[0],
                                                    virt_to_stream,
                                                    agg_to_stream,
                                                    stream_schema));
      return MakeInList(std::move(c), expr.in_values, expr.negated);
    }
    case BExpr::Kind::kCase: {
      std::vector<std::pair<ExprPtr, ExprPtr>> branches;
      size_t pairs = expr.children.size() / 2;
      for (size_t i = 0; i < pairs; ++i) {
        CLAIMS_ASSIGN_OR_RETURN(ExprPtr cond, LowerBExpr(*expr.children[2 * i],
                                                         virt_to_stream,
                                                         agg_to_stream,
                                                         stream_schema));
        CLAIMS_ASSIGN_OR_RETURN(
            ExprPtr then, LowerBExpr(*expr.children[2 * i + 1], virt_to_stream,
                                     agg_to_stream, stream_schema));
        branches.emplace_back(std::move(cond), std::move(then));
      }
      ExprPtr otherwise;
      if (expr.children.size() % 2 == 1) {
        CLAIMS_ASSIGN_OR_RETURN(otherwise, LowerBExpr(*expr.children.back(),
                                                      virt_to_stream,
                                                      agg_to_stream,
                                                      stream_schema));
      }
      return MakeCase(std::move(branches), std::move(otherwise));
    }
    case BExpr::Kind::kYear: {
      CLAIMS_ASSIGN_OR_RETURN(ExprPtr c, LowerBExpr(*expr.children[0],
                                                    virt_to_stream,
                                                    agg_to_stream,
                                                    stream_schema));
      return MakeYear(std::move(c));
    }
  }
  return Status::Internal("unknown bound expression kind");
}

std::string BExpr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return StrFormat("$%d", column);
    case Kind::kAggSlot:
      return StrFormat("agg%d", column);
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kCompare:
      return StrFormat("(%s %s %s)", children[0]->ToString().c_str(),
                       CompareOpName(compare_op),
                       children[1]->ToString().c_str());
    case Kind::kArith:
      return StrFormat("(%s %s %s)", children[0]->ToString().c_str(),
                       ArithOpName(arith_op), children[1]->ToString().c_str());
    case Kind::kLogic:
      return StrFormat("(%s %s %s)", children[0]->ToString().c_str(),
                       logic_op == LogicOp::kAnd ? "AND" : "OR",
                       children[1]->ToString().c_str());
    case Kind::kNot:
      return "(NOT " + children[0]->ToString() + ")";
    case Kind::kLike:
      return StrFormat("(%s %sLIKE '%s')", children[0]->ToString().c_str(),
                       negated ? "NOT " : "", pattern.c_str());
    case Kind::kInList:
      return children[0]->ToString() + (negated ? " NOT IN (...)" : " IN (...)");
    case Kind::kCase:
      return "CASE...";
    case Kind::kYear:
      return "YEAR(" + children[0]->ToString() + ")";
  }
  return "?";
}

}  // namespace claims
