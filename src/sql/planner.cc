#include "sql/planner.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "sql/parser.h"

namespace claims {

namespace {

/// Clones a bound expression, substituting (a) subtrees structurally equal to
/// a GROUP BY expression with a synthetic column reference, and (b) aggregate
/// slots with caller-provided replacement expressions. Used to rebase
/// post-aggregation expressions (SELECT / HAVING) onto the aggregate output
/// stream.
BExprPtr RewriteAggRefs(
    const BExprPtr& e,
    const std::vector<std::pair<std::string, BExprPtr>>& group_subs,
    const std::vector<BExprPtr>& slot_exprs) {
  if (e->kind == BExpr::Kind::kAggSlot) {
    return slot_exprs[static_cast<size_t>(e->column)];
  }
  std::string text = e->ToString();
  for (const auto& [group_text, replacement] : group_subs) {
    if (group_text == text) return replacement;
  }
  auto copy = std::make_shared<BExpr>(*e);
  for (BExprPtr& c : copy->children) {
    c = RewriteAggRefs(c, group_subs, slot_exprs);
  }
  return copy;
}

/// AND-folds lowered conjuncts.
ExprPtr AndFold(std::vector<ExprPtr> exprs) {
  ExprPtr out;
  for (ExprPtr& e : exprs) {
    out = out == nullptr ? std::move(e)
                         : MakeLogic(LogicOp::kAnd, std::move(out), std::move(e));
  }
  return out;
}

}  // namespace

class Planner::Impl {
 public:
  Impl(Catalog* catalog, const PlannerOptions& options, const BoundQuery& query)
      : catalog_(catalog),
        options_(options),
        query_(query),
        group_by_(query.group_by),
        aggregates_(query.aggregates),
        select_exprs_(query.select_exprs),
        having_(query.having) {}

  Result<PhysicalPlan> Run() {
    CLAIMS_RETURN_IF_ERROR(Prepare());
    CLAIMS_ASSIGN_OR_RETURN(Pipeline pipeline, BuildJoinPipeline());

    if (query_.has_aggregation()) {
      CLAIMS_ASSIGN_OR_RETURN(pipeline, PlanAggregation(std::move(pipeline)));
    }
    CLAIMS_RETURN_IF_ERROR(AddFinalProjection(&pipeline));
    CLAIMS_RETURN_IF_ERROR(Finish(std::move(pipeline)));
    plan_.limit = query_.limit;
    return std::move(plan_);
  }

  /// Plans this query as a derived table: final output hash-partitioned on
  /// output column 0 across all nodes. Returns the exchange id.
  Result<int> RunAsSubquery(PhysicalPlan* parent_plan, int* exchange_counter) {
    plan_ = std::move(*parent_plan);
    next_exchange_ = *exchange_counter;
    CLAIMS_RETURN_IF_ERROR(Prepare());
    CLAIMS_ASSIGN_OR_RETURN(Pipeline pipeline, BuildJoinPipeline());
    if (query_.has_aggregation()) {
      CLAIMS_ASSIGN_OR_RETURN(pipeline, PlanAggregation(std::move(pipeline)));
    }
    CLAIMS_RETURN_IF_ERROR(AddFinalProjection(&pipeline));
    int exchange = ClosePipeline(std::move(pipeline), Partitioning::kHash,
                                 /*hash_stream_cols=*/{0}, AllNodes());
    *parent_plan = std::move(plan_);
    *exchange_counter = next_exchange_;
    return exchange;
  }

 private:
  struct Pipeline {
    std::unique_ptr<POp> root;
    std::vector<int> nodes;
    /// virtual (or synthetic) column id → stream column index.
    std::map<int, int> virt2stream;
    /// Virtual columns the stream is hash-partitioned on (empty: unknown).
    std::set<int> partition_virt;
  };

  struct JoinEdge {
    int left_virt;
    int right_virt;
    bool used = false;
  };

  std::vector<int> AllNodes() const {
    std::vector<int> nodes;
    for (int i = 0; i < options_.num_nodes; ++i) nodes.push_back(i);
    return nodes;
  }

  // --- preparation -----------------------------------------------------------

  Status Prepare() {
    const int nrel = static_cast<int>(query_.relations.size());
    rel_filters_.resize(static_cast<size_t>(nrel));
    for (const BExprPtr& conjunct : query_.conjuncts) {
      std::vector<int> cols;
      CollectColumns(*conjunct, &cols);
      std::set<int> rels;
      for (int c : cols) rels.insert(query_.relation_of(c));
      if (rels.size() <= 1) {
        int rel = rels.empty() ? 0 : *rels.begin();
        rel_filters_[static_cast<size_t>(rel)].push_back(conjunct);
        continue;
      }
      if (rels.size() == 2 && conjunct->kind == BExpr::Kind::kCompare &&
          conjunct->compare_op == CompareOp::kEq &&
          conjunct->children[0]->kind == BExpr::Kind::kColumn &&
          conjunct->children[1]->kind == BExpr::Kind::kColumn) {
        edges_.push_back(JoinEdge{conjunct->children[0]->column,
                                  conjunct->children[1]->column});
        continue;
      }
      residuals_.push_back(conjunct);
    }
    // Columns referenced anywhere (projection pushdown).
    auto collect = [&](const BExprPtr& e) {
      if (e != nullptr) CollectColumns(*e, &needed_cols_);
    };
    for (const BExprPtr& e : query_.conjuncts) collect(e);
    for (const BExprPtr& e : group_by_) collect(e);
    for (const BoundAggregate& a : aggregates_) collect(a.arg);
    for (const BExprPtr& e : select_exprs_) collect(e);
    collect(having_);

    // Effective sizes (post-filter) per relation.
    eff_rows_.resize(static_cast<size_t>(nrel));
    for (int r = 0; r < nrel; ++r) {
      const BoundRelation& rel = query_.relations[static_cast<size_t>(r)];
      double selectivity = 1.0;
      if (rel.table != nullptr &&
          !rel_filters_[static_cast<size_t>(r)].empty()) {
        // Lower the relation's filters onto its base schema and sample.
        std::map<int, int> identity;
        for (int c = 0; c < rel.schema.num_columns(); ++c) {
          identity[rel.virtual_base + c] = c;
        }
        std::vector<ExprPtr> lowered;
        for (const BExprPtr& f : rel_filters_[static_cast<size_t>(r)]) {
          auto e = LowerBExpr(*f, identity, nullptr, rel.schema);
          if (e.ok()) lowered.push_back(std::move(*e));
        }
        ExprPtr pred = AndFold(std::move(lowered));
        if (pred != nullptr) {
          selectivity = catalog_->EstimateSelectivity(
              *rel.table,
              [&](const char* row) { return pred->EvalBool(rel.schema, row); },
              options_.sample_limit);
        }
      }
      eff_rows_[static_cast<size_t>(r)] = std::max<int64_t>(
          1, static_cast<int64_t>(
                 static_cast<double>(rel.estimated_rows) * selectivity));
    }
    return Status::OK();
  }

  // --- expression lowering -----------------------------------------------------

  Result<ExprPtr> Lower(const BExpr& e, const Pipeline& p) {
    return LowerBExpr(e, p.virt2stream, nullptr, p.root->output_schema);
  }

  Status ApplyFilters(Pipeline* p, const std::vector<BExprPtr>& filters) {
    if (filters.empty()) return Status::OK();
    std::vector<ExprPtr> lowered;
    for (const BExprPtr& f : filters) {
      CLAIMS_ASSIGN_OR_RETURN(ExprPtr e, Lower(*f, *p));
      lowered.push_back(std::move(e));
    }
    p->root = MakeFilterOp(std::move(p->root), AndFold(std::move(lowered)));
    return Status::OK();
  }

  Status ApplyCoveredResiduals(Pipeline* p) {
    std::vector<BExprPtr> ready;
    for (auto it = residuals_.begin(); it != residuals_.end();) {
      if (ColumnsCovered(**it, p->virt2stream)) {
        ready.push_back(*it);
        it = residuals_.erase(it);
      } else {
        ++it;
      }
    }
    return ApplyFilters(p, ready);
  }

  /// Projects the stream down to the virtual columns in `keep` (order:
  /// current stream order). No-op when nothing would be dropped.
  Status ProjectToNeeded(Pipeline* p, const std::set<int>& keep) {
    std::vector<std::pair<int, int>> kept;  // (stream idx, virt id)
    for (const auto& [virt, stream] : p->virt2stream) {
      if (keep.count(virt)) kept.emplace_back(stream, virt);
    }
    std::sort(kept.begin(), kept.end());
    if (static_cast<int>(kept.size()) == p->root->output_schema.num_columns()) {
      return Status::OK();
    }
    const Schema& schema = p->root->output_schema;
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    std::map<int, int> new_map;
    for (size_t i = 0; i < kept.size(); ++i) {
      const auto& [stream, virt] = kept[i];
      exprs.push_back(MakeColumnRef(stream, schema.column(stream).type,
                                    schema.column(stream).name));
      names.push_back(schema.column(stream).name);
      new_map[virt] = static_cast<int>(i);
    }
    p->root = MakeProjectOp(std::move(p->root), std::move(exprs),
                            std::move(names));
    p->virt2stream = std::move(new_map);
    return Status::OK();
  }

  // --- fragments ----------------------------------------------------------------

  int ClosePipeline(Pipeline p, Partitioning partitioning,
                    std::vector<int> hash_stream_cols,
                    std::vector<int> consumers, bool order_preserving = false) {
    auto fragment = std::make_unique<Fragment>();
    fragment->id = static_cast<int>(plan_.fragments.size());
    fragment->root = std::move(p.root);
    fragment->nodes = std::move(p.nodes);
    fragment->out_exchange_id = next_exchange_++;
    fragment->partitioning = partitioning;
    fragment->hash_cols = std::move(hash_stream_cols);
    fragment->consumer_nodes = std::move(consumers);
    fragment->order_preserving = order_preserving;
    int id = fragment->out_exchange_id;
    plan_.fragments.push_back(std::move(fragment));
    return id;
  }

  // --- relation access -----------------------------------------------------------

  Result<Pipeline> StartRelation(int rel_index) {
    const BoundRelation& rel =
        query_.relations[static_cast<size_t>(rel_index)];
    Pipeline p;
    if (rel.table != nullptr) {
      p.root = MakeScanOp(*rel.table, options_.numa_sockets);
      for (int n = 0; n < rel.table->num_partitions(); ++n) {
        p.nodes.push_back(n);
      }
      for (int c = 0; c < rel.schema.num_columns(); ++c) {
        p.virt2stream[rel.virtual_base + c] = c;
      }
      for (int c : rel.partition_cols) {
        p.partition_virt.insert(rel.virtual_base + c);
      }
    } else {
      // Derived table: plan the subquery; its sender hash-partitions on
      // output column 0 across all nodes.
      Impl sub(catalog_, options_, *rel.subquery);
      CLAIMS_ASSIGN_OR_RETURN(int exchange,
                              sub.RunAsSubquery(&plan_, &next_exchange_));
      p.root = MakeMergerOp(exchange, rel.schema);
      p.nodes = AllNodes();
      for (int c = 0; c < rel.schema.num_columns(); ++c) {
        p.virt2stream[rel.virtual_base + c] = c;
      }
      p.partition_virt.insert(rel.virtual_base + 0);
    }
    CLAIMS_RETURN_IF_ERROR(
        ApplyFilters(&p, rel_filters_[static_cast<size_t>(rel_index)]));
    CLAIMS_RETURN_IF_ERROR(ApplyCoveredResiduals(&p));
    return p;
  }

  // --- join pipeline ---------------------------------------------------------------

  Result<Pipeline> BuildJoinPipeline() {
    const int nrel = static_cast<int>(query_.relations.size());
    // Greedy left-deep order: stream the largest relation, then join the
    // smallest connected relation first.
    std::vector<bool> joined(static_cast<size_t>(nrel), false);
    int start = 0;
    for (int r = 1; r < nrel; ++r) {
      if (eff_rows_[static_cast<size_t>(r)] >
          eff_rows_[static_cast<size_t>(start)]) {
        start = r;
      }
    }
    CLAIMS_ASSIGN_OR_RETURN(Pipeline pipeline, StartRelation(start));
    joined[static_cast<size_t>(start)] = true;
    int remaining = nrel - 1;

    while (remaining > 0) {
      // Next: smallest relation connected by an unused edge to the set.
      int next = -1;
      for (int r = 0; r < nrel; ++r) {
        if (joined[static_cast<size_t>(r)]) continue;
        bool connected = false;
        for (const JoinEdge& e : edges_) {
          int rl = query_.relation_of(e.left_virt);
          int rr = query_.relation_of(e.right_virt);
          if ((rl == r && joined[static_cast<size_t>(rr)]) ||
              (rr == r && joined[static_cast<size_t>(rl)])) {
            connected = true;
            break;
          }
        }
        if (connected &&
            (next < 0 || eff_rows_[static_cast<size_t>(r)] <
                             eff_rows_[static_cast<size_t>(next)])) {
          next = r;
        }
      }
      if (next < 0) {
        return Status::PlanError(
            "query requires a cross join (no join predicate connects all "
            "relations)");
      }
      CLAIMS_RETURN_IF_ERROR(JoinRelation(&pipeline, next, joined));
      joined[static_cast<size_t>(next)] = true;
      --remaining;
    }
    CLAIMS_RETURN_IF_ERROR(ApplyCoveredResiduals(&pipeline));
    if (!residuals_.empty()) {
      return Status::PlanError("unresolvable residual predicate");
    }
    return pipeline;
  }

  Status JoinRelation(Pipeline* pipeline, int rel_index,
                      const std::vector<bool>& joined) {
    const BoundRelation& rel =
        query_.relations[static_cast<size_t>(rel_index)];
    // Join keys: all unused edges between `rel` and the joined set.
    std::vector<int> stream_key_virt;  // probe-side (current pipeline)
    std::vector<int> build_key_virt;   // build-side (new relation)
    for (JoinEdge& e : edges_) {
      if (e.used) continue;
      int rl = query_.relation_of(e.left_virt);
      int rr = query_.relation_of(e.right_virt);
      if (rl == rel_index && joined[static_cast<size_t>(rr)]) {
        build_key_virt.push_back(e.left_virt);
        stream_key_virt.push_back(e.right_virt);
        e.used = true;
      } else if (rr == rel_index && joined[static_cast<size_t>(rl)]) {
        build_key_virt.push_back(e.right_virt);
        stream_key_virt.push_back(e.left_virt);
        e.used = true;
      }
    }
    if (build_key_virt.empty()) {
      return Status::PlanError("join step without keys");
    }

    CLAIMS_ASSIGN_OR_RETURN(Pipeline build, StartRelation(rel_index));
    // Ship only the columns the rest of the query needs (plus join keys).
    std::set<int> build_keep(needed_cols_.begin(), needed_cols_.end());
    for (int v : build_key_virt) build_keep.insert(v);
    CLAIMS_RETURN_IF_ERROR(ProjectToNeeded(&build, build_keep));

    auto stream_cols_of = [](const Pipeline& p, const std::vector<int>& virt) {
      std::vector<int> cols;
      for (int v : virt) cols.push_back(p.virt2stream.at(v));
      return cols;
    };

    const bool small_build = eff_rows_[static_cast<size_t>(rel_index)] <=
                             options_.broadcast_threshold_rows;
    const bool stream_partitioned_on_keys = [&] {
      if (pipeline->partition_virt.empty()) return false;
      // Every partition column must be among the probe keys (a superset of
      // partition columns keeps co-location: equal keys share all columns).
      for (int v : pipeline->partition_virt) {
        if (std::find(stream_key_virt.begin(), stream_key_virt.end(), v) ==
            stream_key_virt.end()) {
          return false;
        }
      }
      return true;
    }();
    const bool build_colocated =
        stream_partitioned_on_keys && rel.table != nullptr &&
        !rel.partition_cols.empty() &&
        build.nodes == pipeline->nodes && [&] {
          // Build partition columns must match the build keys positionally
          // aligned with the stream partition columns — conservative check:
          // set equality of build partition cols and build keys.
          std::set<int> pc;
          for (int c : rel.partition_cols) pc.insert(rel.virtual_base + c);
          std::set<int> bk(build_key_virt.begin(), build_key_virt.end());
          return pc == bk;
        }();

    std::unique_ptr<POp> build_source;
    std::map<int, int> build_map;  // virt → build-stream col
    if (build_colocated) {
      // Fully local join: both sides already live partitioned on the key.
      build_map = build.virt2stream;
      build_source = std::move(build.root);
    } else if (small_build) {
      // Broadcast the build side to wherever the stream runs.
      Schema build_schema = build.root->output_schema;
      build_map = build.virt2stream;
      int exchange = ClosePipeline(std::move(build), Partitioning::kBroadcast,
                                   {}, pipeline->nodes);
      build_source = MakeMergerOp(exchange, std::move(build_schema));
    } else if (stream_partitioned_on_keys) {
      // Repartition only the build side to match the stream's partitioning.
      Schema build_schema = build.root->output_schema;
      build_map = build.virt2stream;
      std::vector<int> hash_cols = stream_cols_of(build, build_key_virt);
      int exchange = ClosePipeline(std::move(build), Partitioning::kHash,
                                   std::move(hash_cols), pipeline->nodes);
      build_source = MakeMergerOp(exchange, std::move(build_schema));
    } else {
      // Repartition both sides onto all nodes (full shuffle join).
      std::set<int> stream_keep(needed_cols_.begin(), needed_cols_.end());
      for (int v : stream_key_virt) stream_keep.insert(v);
      CLAIMS_RETURN_IF_ERROR(ProjectToNeeded(pipeline, stream_keep));
      Schema stream_schema = pipeline->root->output_schema;
      std::map<int, int> stream_map = pipeline->virt2stream;
      std::vector<int> stream_hash = stream_cols_of(*pipeline, stream_key_virt);
      Pipeline closed = std::move(*pipeline);
      int stream_exchange =
          ClosePipeline(std::move(closed), Partitioning::kHash,
                        std::move(stream_hash), AllNodes());
      pipeline->root = MakeMergerOp(stream_exchange, std::move(stream_schema));
      pipeline->nodes = AllNodes();
      pipeline->virt2stream = std::move(stream_map);
      pipeline->partition_virt.clear();
      for (int v : stream_key_virt) pipeline->partition_virt.insert(v);

      Schema build_schema = build.root->output_schema;
      build_map = build.virt2stream;
      std::vector<int> build_hash = stream_cols_of(build, build_key_virt);
      int exchange = ClosePipeline(std::move(build), Partitioning::kHash,
                                   std::move(build_hash), AllNodes());
      build_source = MakeMergerOp(exchange, std::move(build_schema));
    }

    // Assemble the join; output = [build | probe].
    std::vector<int> probe_keys = stream_cols_of(*pipeline, stream_key_virt);
    std::vector<int> build_keys;
    for (int v : build_key_virt) build_keys.push_back(build_map.at(v));
    int build_width = build_source->output_schema.num_columns();
    pipeline->root =
        MakeHashJoinOp(std::move(build_source), std::move(pipeline->root),
                       std::move(build_keys), std::move(probe_keys));
    std::map<int, int> new_map;
    for (const auto& [v, c] : build_map) new_map[v] = c;
    for (const auto& [v, c] : pipeline->virt2stream) {
      new_map[v] = build_width + c;
    }
    pipeline->virt2stream = std::move(new_map);
    // Equal join keys propagate the partitioning property to the build side.
    for (size_t i = 0; i < stream_key_virt.size(); ++i) {
      if (pipeline->partition_virt.count(stream_key_virt[i])) {
        pipeline->partition_virt.insert(build_key_virt[i]);
      }
    }
    return ApplyCoveredResiduals(pipeline);
  }

  // --- aggregation -------------------------------------------------------------

  /// Synthetic id of agg-output stream position j.
  int SynthId(int j) const { return query_.num_virtual_columns() + j; }

  Result<Pipeline> PlanAggregation(Pipeline pipeline) {
    const int ngroup = static_cast<int>(group_by_.size());
    const int naggs = static_cast<int>(aggregates_.size());
    // Capture the original group expression texts before PreAggShuffle
    // rewrites them — post-aggregation SELECT/HAVING expressions refer to
    // the *original* shapes.
    std::vector<std::string> orig_group_texts;
    for (const BExprPtr& g : group_by_) {
      orig_group_texts.push_back(g->ToString());
    }

    const bool local_correct = [&] {
      if (ngroup == 0) return false;  // scalar: needs a final combine anyway
      if (pipeline.partition_virt.empty()) return false;
      for (int v : pipeline.partition_virt) {
        bool in_group = false;
        for (const BExprPtr& g : group_by_) {
          if (g->kind == BExpr::Kind::kColumn && g->column == v) {
            in_group = true;
            break;
          }
        }
        if (!in_group) return false;
      }
      return true;
    }();

    if (ngroup > 0 && !local_correct) {
      // Paper Fig. 1: materialize the group keys, repartition on them, then
      // aggregate in a single phase on the receiving segments.
      CLAIMS_RETURN_IF_ERROR(PreAggShuffle(&pipeline));
    }

    if (ngroup == 0) {
      return PlanScalarAggregation(std::move(pipeline));
    }

    // Single-phase grouped aggregation on the (now co-grouped) stream.
    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> group_names;
    for (int g = 0; g < ngroup; ++g) {
      CLAIMS_ASSIGN_OR_RETURN(ExprPtr e, Lower(*group_by_[g], pipeline));
      group_exprs.push_back(std::move(e));
      group_names.push_back(StrFormat("g%d", g));
    }
    std::vector<HashAggIterator::Aggregate> aggs;
    for (int a = 0; a < naggs; ++a) {
      const BoundAggregate& agg = aggregates_[static_cast<size_t>(a)];
      ExprPtr arg;
      if (agg.arg != nullptr) {
        CLAIMS_ASSIGN_OR_RETURN(arg, Lower(*agg.arg, pipeline));
      }
      aggs.push_back(
          HashAggIterator::Aggregate{agg.fn, std::move(arg), agg.name});
    }
    pipeline.root =
        MakeHashAggOp(std::move(pipeline.root), std::move(group_exprs),
                      std::move(group_names), std::move(aggs),
                      options_.agg_mode);

    // Rebase post-aggregation expressions: group expr g ↦ output col g,
    // slot a ↦ output col ngroup + a.
    std::vector<std::pair<std::string, BExprPtr>> group_subs;
    std::map<int, int> new_map;
    for (int g = 0; g < ngroup; ++g) {
      const BExpr& ge = *group_by_[g];
      BExprPtr sub = BColumn(SynthId(g), ge.type, ge.char_width);
      group_subs.emplace_back(orig_group_texts[static_cast<size_t>(g)], sub);
      new_map[SynthId(g)] = g;
      if (ge.kind == BExpr::Kind::kColumn) new_map[ge.column] = g;
    }
    std::vector<BExprPtr> slot_exprs;
    for (int a = 0; a < naggs; ++a) {
      DataType t = pipeline.root->output_schema.column(ngroup + a).type;
      slot_exprs.push_back(BColumn(SynthId(ngroup + a), t));
      new_map[SynthId(ngroup + a)] = ngroup + a;
    }
    pipeline.virt2stream = std::move(new_map);
    RewritePostAgg(group_subs, slot_exprs);
    pipeline.partition_virt.clear();
    return std::move(pipeline);
  }

  /// Projects group keys + aggregate inputs, then shuffles on the group keys.
  Status PreAggShuffle(Pipeline* pipeline) {
    const int ngroup = static_cast<int>(group_by_.size());
    const Schema& schema = pipeline->root->output_schema;
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    std::map<int, int> new_map;
    // Group expressions become materialized columns 0..ngroup-1.
    for (int g = 0; g < ngroup; ++g) {
      CLAIMS_ASSIGN_OR_RETURN(ExprPtr e, Lower(*group_by_[g], *pipeline));
      exprs.push_back(std::move(e));
      names.push_back(StrFormat("g%d", g));
    }
    // Aggregate inputs keep their source columns.
    std::vector<int> arg_virt;
    for (const BoundAggregate& a : aggregates_) {
      if (a.arg != nullptr) CollectColumns(*a.arg, &arg_virt);
    }
    int pos = ngroup;
    for (int v : arg_virt) {
      if (new_map.count(v)) continue;
      int stream = pipeline->virt2stream.at(v);
      exprs.push_back(MakeColumnRef(stream, schema.column(stream).type,
                                    schema.column(stream).name));
      names.push_back(schema.column(stream).name);
      new_map[v] = pos++;
    }
    pipeline->root = MakeProjectOp(std::move(pipeline->root), std::move(exprs),
                                   std::move(names));
    // Rewrite the group expressions to the materialized columns so the
    // post-shuffle aggregation groups by plain column references.
    for (int g = 0; g < ngroup; ++g) {
      const BExpr& ge = *group_by_[g];
      int gv = SynthGroupInputId(g);
      if (ge.kind == BExpr::Kind::kColumn) {
        // Plain column: just remap it.
        new_map[ge.column] = g;
      } else {
        group_by_[static_cast<size_t>(g)] =
            BColumn(gv, ge.type, ge.char_width);
        new_map[gv] = g;
        // Aggregate args never reference the rewritten group expr (they were
        // collected above), so no further rewriting is needed.
      }
    }
    pipeline->virt2stream = std::move(new_map);

    Schema shuffled = pipeline->root->output_schema;
    std::map<int, int> map_copy = pipeline->virt2stream;
    std::vector<int> hash_cols;
    for (int g = 0; g < ngroup; ++g) hash_cols.push_back(g);
    std::vector<int> nodes = AllNodes();
    Pipeline closed = std::move(*pipeline);
    int exchange = ClosePipeline(std::move(closed), Partitioning::kHash,
                                 std::move(hash_cols), nodes);
    pipeline->root = MakeMergerOp(exchange, std::move(shuffled));
    pipeline->nodes = std::move(nodes);
    pipeline->virt2stream = std::move(map_copy);
    pipeline->partition_virt.clear();
    for (int g = 0; g < ngroup; ++g) {
      const BExpr& ge = *group_by_[g];
      pipeline->partition_virt.insert(
          ge.kind == BExpr::Kind::kColumn ? ge.column : SynthGroupInputId(g));
    }
    return Status::OK();
  }

  /// Synthetic id for a materialized (non-column) group input expression.
  int SynthGroupInputId(int g) const {
    return query_.num_virtual_columns() + 1000 + g;
  }

  /// Scalar aggregates: local partials on the stream, gather, final combine
  /// on the master.
  Result<Pipeline> PlanScalarAggregation(Pipeline pipeline) {
    const int naggs = static_cast<int>(aggregates_.size());
    // Partial slots: AVG expands into (sum, count).
    std::vector<HashAggIterator::Aggregate> partials;
    struct SlotMap {
      int first;        // partial/final column of the primary state
      int second = -1;  // count column for AVG
      AggFn fn;
    };
    std::vector<SlotMap> slots;
    for (int a = 0; a < naggs; ++a) {
      const BoundAggregate& agg = aggregates_[static_cast<size_t>(a)];
      ExprPtr arg;
      if (agg.arg != nullptr) {
        CLAIMS_ASSIGN_OR_RETURN(arg, Lower(*agg.arg, pipeline));
      }
      SlotMap sm;
      sm.fn = agg.fn;
      sm.first = static_cast<int>(partials.size());
      if (agg.fn == AggFn::kAvg) {
        partials.push_back(HashAggIterator::Aggregate{
            AggFn::kSum, arg, agg.name + "_sum"});
        sm.second = static_cast<int>(partials.size());
        partials.push_back(
            HashAggIterator::Aggregate{AggFn::kCount, nullptr,
                                       agg.name + "_cnt"});
      } else {
        partials.push_back(
            HashAggIterator::Aggregate{agg.fn, std::move(arg), agg.name});
      }
      slots.push_back(sm);
    }
    pipeline.root = MakeHashAggOp(std::move(pipeline.root), {}, {},
                                  std::move(partials), options_.agg_mode);

    // Gather partial rows to the master.
    Schema partial_schema = pipeline.root->output_schema;
    Pipeline closed = std::move(pipeline);
    int exchange = ClosePipeline(std::move(closed), Partitioning::kToOne, {},
                                 {0});
    Pipeline master;
    master.root = MakeMergerOp(exchange, partial_schema);
    master.nodes = {0};

    // Final combine: COUNT partials merge by SUM; SUM by SUM; MIN/MAX keep.
    std::vector<HashAggIterator::Aggregate> finals;
    for (int c = 0; c < partial_schema.num_columns(); ++c) {
      const ColumnDef& col = partial_schema.column(c);
      AggFn fn = AggFn::kSum;
      // Identify MIN/MAX partials by their original function.
      for (const SlotMap& sm : slots) {
        if (sm.first == c && (sm.fn == AggFn::kMin || sm.fn == AggFn::kMax)) {
          fn = sm.fn;
        }
      }
      finals.push_back(HashAggIterator::Aggregate{
          fn, MakeColumnRef(c, col.type, col.name), col.name});
    }
    master.root = MakeHashAggOp(std::move(master.root), {}, {},
                                std::move(finals), HashAggIterator::Mode::kShared);

    // Slot substitutions for the final SELECT expressions.
    std::vector<BExprPtr> slot_exprs;
    std::map<int, int> new_map;
    const Schema& final_schema = master.root->output_schema;
    for (int c = 0; c < final_schema.num_columns(); ++c) {
      new_map[SynthId(c)] = c;
    }
    for (const SlotMap& sm : slots) {
      if (sm.fn == AggFn::kAvg) {
        slot_exprs.push_back(BArith(
            ArithOp::kDiv,
            BColumn(SynthId(sm.first), final_schema.column(sm.first).type),
            BColumn(SynthId(sm.second), DataType::kInt64)));
      } else {
        slot_exprs.push_back(
            BColumn(SynthId(sm.first), final_schema.column(sm.first).type));
      }
    }
    master.virt2stream = std::move(new_map);
    RewritePostAgg({}, slot_exprs);
    return std::move(master);
  }

  void RewritePostAgg(
      const std::vector<std::pair<std::string, BExprPtr>>& group_subs,
      const std::vector<BExprPtr>& slot_exprs) {
    for (BExprPtr& e : select_exprs_) {
      e = RewriteAggRefs(e, group_subs, slot_exprs);
    }
    if (having_ != nullptr) {
      having_ = RewriteAggRefs(having_, group_subs, slot_exprs);
    }
  }

  // --- finalization -----------------------------------------------------------

  Status AddFinalProjection(Pipeline* pipeline) {
    if (having_ != nullptr) {
      CLAIMS_ASSIGN_OR_RETURN(ExprPtr h, Lower(*having_, *pipeline));
      pipeline->root = MakeFilterOp(std::move(pipeline->root), std::move(h));
    }
    // Identity projection (SELECT * over the exact stream) is skipped.
    bool identity =
        static_cast<int>(select_exprs_.size()) ==
        pipeline->root->output_schema.num_columns();
    if (identity) {
      for (size_t i = 0; i < select_exprs_.size(); ++i) {
        const BExpr& e = *select_exprs_[i];
        if (e.kind != BExpr::Kind::kColumn ||
            pipeline->virt2stream.count(e.column) == 0 ||
            pipeline->virt2stream.at(e.column) != static_cast<int>(i) ||
            !EqualsIgnoreCase(
                pipeline->root->output_schema.column(static_cast<int>(i)).name,
                query_.select_names[i])) {
          identity = false;
          break;
        }
      }
    }
    if (identity) return Status::OK();
    std::vector<ExprPtr> exprs;
    for (const BExprPtr& e : select_exprs_) {
      CLAIMS_ASSIGN_OR_RETURN(ExprPtr lowered, Lower(*e, *pipeline));
      exprs.push_back(std::move(lowered));
    }
    pipeline->root = MakeProjectOp(std::move(pipeline->root), std::move(exprs),
                                   query_.select_names);
    // The projected stream no longer exposes virtual columns.
    pipeline->virt2stream.clear();
    return Status::OK();
  }

  Status Finish(Pipeline pipeline) {
    Schema output = pipeline.root->output_schema;
    if (!query_.order_by.empty()) {
      // Gather to the master, sort there (order-preserving fragment).
      Pipeline closed = std::move(pipeline);
      int exchange =
          ClosePipeline(std::move(closed), Partitioning::kToOne, {}, {0});
      Pipeline master;
      master.root = MakeMergerOp(exchange, output);
      master.nodes = {0};
      std::vector<SortKey> keys;
      for (const BoundOrder& o : query_.order_by) {
        keys.push_back(SortKey{o.output_index, o.ascending});
      }
      master.root = MakeSortOp(std::move(master.root), std::move(keys));
      plan_.result_exchange_id = ClosePipeline(
          std::move(master), Partitioning::kToOne, {}, {0},
          /*order_preserving=*/true);
    } else {
      plan_.result_exchange_id =
          ClosePipeline(std::move(pipeline), Partitioning::kToOne, {}, {0});
    }
    plan_.result_schema = std::move(output);
    return Status::OK();
  }

  Catalog* catalog_;
  const PlannerOptions& options_;
  const BoundQuery& query_;
  // Mutable working copies (rewritten during aggregation planning).
  std::vector<BExprPtr> group_by_;
  std::vector<BoundAggregate> aggregates_;
  std::vector<BExprPtr> select_exprs_;
  BExprPtr having_;

  PhysicalPlan plan_;
  int next_exchange_ = 0;
  std::vector<std::vector<BExprPtr>> rel_filters_;
  std::vector<JoinEdge> edges_;
  std::vector<BExprPtr> residuals_;
  std::vector<int> needed_cols_;
  std::vector<int64_t> eff_rows_;
};

Planner::Planner(Catalog* catalog, PlannerOptions options)
    : catalog_(catalog), options_(options) {}

Result<PhysicalPlan> Planner::PlanSql(std::string_view sql) {
  CLAIMS_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelect(sql));
  CLAIMS_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> bound,
                          BindSelect(*stmt, *catalog_));
  return Plan(*bound);
}

Result<PhysicalPlan> Planner::Plan(const BoundQuery& query) {
  Impl impl(catalog_, options_, query);
  return impl.Run();
}

}  // namespace claims
