#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace claims {

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  auto peek = [&](size_t k) { return i + k < n ? sql[i + k] : '\0'; };
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && peek(1) == '-') {  // line comment
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token t;
    t.position = static_cast<int>(i);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      t.type = TokenType::kIdentifier;
      t.text = std::string(sql.substr(start, i - start));
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string text(sql.substr(start, i - start));
      if (is_float) {
        t.type = TokenType::kFloat;
        t.float_value = std::stod(text);
      } else {
        t.type = TokenType::kInteger;
        t.int_value = std::stoll(text);
      }
      t.text = std::move(text);
    } else if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == quote) {
          if (peek(1) == quote) {  // escaped quote
            text += quote;
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text += sql[i++];
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %d", t.position));
      }
      t.type = TokenType::kString;
      t.text = std::move(text);
    } else {
      t.type = TokenType::kSymbol;
      // Two-character operators first.
      if ((c == '<' && (peek(1) == '=' || peek(1) == '>')) ||
          (c == '>' && peek(1) == '=') || (c == '!' && peek(1) == '=')) {
        t.text = std::string(sql.substr(i, 2));
        i += 2;
      } else if (std::string_view("()+-*/,.;=<>").find(c) !=
                 std::string_view::npos) {
        t.text = std::string(1, c);
        ++i;
      } else {
        return Status::ParseError(
            StrFormat("unexpected character '%c' at offset %d", c,
                      t.position));
      }
    }
    tokens.push_back(std::move(t));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = static_cast<int>(n);
  tokens.push_back(end);
  return tokens;
}

}  // namespace claims
