#include "obs/watchdog.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace claims {

StallWatchdog::StallWatchdog(WatchdogOptions options, Clock* clock)
    : options_(std::move(options)),
      clock_(clock != nullptr ? clock : SteadyClock::Default()),
      incidents_metric_(
          MetricsRegistry::Global()->counter("watchdog.incidents")) {}

StallWatchdog::~StallWatchdog() { Stop(); }

void StallWatchdog::AddProgressProbe(std::string name,
                                     std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  ProgressProbe probe;
  probe.name = std::move(name);
  probe.fn = std::move(fn);
  probe.last_change_ns = clock_->NowNanos();
  progress_probes_.push_back(std::move(probe));
}

void StallWatchdog::AddConditionProbe(std::string name,
                                      std::function<std::string()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  ConditionProbe probe;
  probe.name = std::move(name);
  probe.fn = std::move(fn);
  condition_probes_.push_back(std::move(probe));
}

void StallWatchdog::AddContextProvider(std::string name,
                                       std::function<std::string()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  context_providers_.push_back({std::move(name), std::move(fn)});
}

void StallWatchdog::Start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { ThreadMain(); });
}

void StallWatchdog::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void StallWatchdog::ThreadMain() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (!stop_requested_) {
    // Real time, not claims::Clock: the watchdog must keep polling even when
    // an injected virtual clock is frozen (that frozen clock may be the very
    // anomaly under investigation).
    wake_cv_.wait_for(lock,
                      std::chrono::nanoseconds(options_.poll_period_ns));
    if (stop_requested_) break;
    lock.unlock();
    PollOnce();
    lock.lock();
  }
}

int StallWatchdog::PollOnce() {
  const int64_t now = clock_->NowNanos();
  int raised = 0;
  // Raise outside mu_? RaiseIncident only touches state guarded by mu_ and
  // does file IO; probes may not call back into the watchdog, so holding
  // mu_ across the pass is safe and keeps probe bookkeeping atomic.
  std::lock_guard<std::mutex> lock(mu_);
  for (ProgressProbe& probe : progress_probes_) {
    int64_t value = probe.fn();
    if (value == kInactive) {
      // Idle subsystem: reset the window so reactivation starts fresh.
      probe.last_value = kInactive;
      probe.last_change_ns = now;
      continue;
    }
    if (probe.last_value == kInactive || value != probe.last_value) {
      probe.last_value = value;
      probe.last_change_ns = now;
      continue;
    }
    const int64_t stalled_ns = now - probe.last_change_ns;
    if (stalled_ns >= options_.stall_window_ns &&
        now >= probe.suppressed_until_ns) {
      probe.suppressed_until_ns = now + options_.incident_cooldown_ns;
      RaiseIncident(
          probe.name,
          StrFormat("no progress for %.2f s (counter pinned at %lld, "
                    "stall window %.2f s)",
                    stalled_ns / 1e9, static_cast<long long>(value),
                    options_.stall_window_ns / 1e9),
          now);
      ++raised;
    }
  }
  for (ConditionProbe& probe : condition_probes_) {
    std::string detail = probe.fn();
    if (detail.empty() || now < probe.suppressed_until_ns) continue;
    probe.suppressed_until_ns = now + options_.incident_cooldown_ns;
    RaiseIncident(probe.name, detail, now);
    ++raised;
  }
  return raised;
}

bool StallWatchdog::ReportIncident(const std::string& source,
                                   const std::string& detail) {
  const int64_t now = clock_->NowNanos();
  std::lock_guard<std::mutex> lock(mu_);
  int64_t& until = external_suppressed_until_[source];
  if (now < until) return false;
  until = now + options_.incident_cooldown_ns;
  RaiseIncident(source, detail, now);
  return true;
}

void StallWatchdog::RaiseIncident(const std::string& probe,
                                  const std::string& detail, int64_t now_ns) {
  const int64_t id = next_incident_id_++;
  incidents_.fetch_add(1, std::memory_order_relaxed);
  incidents_metric_->Add();
  CLAIMS_LOG(Warning) << "watchdog incident #" << id << " [" << probe
                      << "]: " << detail;

  const std::string base =
      StrFormat("%s/incident-%lld", options_.incident_dir.c_str(),
                static_cast<long long>(id));
  TraceCollector* tc = TraceCollector::Global();
  std::string trace_path;
  if (options_.dump_flight_recorder && tc->enabled()) {
    trace_path = base + ".trace.json";
    if (Status s = tc->WriteChromeJson(trace_path); !s.ok()) {
      CLAIMS_LOG(Warning) << "watchdog: " << s.ToString();
      trace_path.clear();
    }
  }

  std::string report;
  report += StrFormat("watchdog incident #%lld\n",
                      static_cast<long long>(id));
  report += StrFormat("time_ns: %lld\n", static_cast<long long>(now_ns));
  report += "probe: " + probe + "\n";
  report += "detail: " + detail + "\n";
  report += StrFormat("flight_recorder: %s (events=%zu dropped=%lld)\n",
                      trace_path.empty() ? "<not captured>"
                                         : trace_path.c_str(),
                      tc->size(),
                      static_cast<long long>(tc->dropped_events()));
  for (const ContextProvider& provider : context_providers_) {
    std::string context = provider.fn();
    if (context.empty()) continue;
    report += "\n--- context: " + provider.name + " ---\n";
    report += context;
    if (report.back() != '\n') report.push_back('\n');
  }
  report += "\n--- metrics snapshot ---\n";
  report += MetricsRegistry::Global()->TextSnapshot();

  const std::string report_path = base + ".txt";
  std::FILE* f = std::fopen(report_path.c_str(), "w");
  if (f != nullptr) {
    std::fwrite(report.data(), 1, report.size(), f);
    std::fclose(f);
    incident_files_.push_back(report_path);
    if (!trace_path.empty()) incident_files_.push_back(trace_path);
  } else {
    CLAIMS_LOG(Warning) << "watchdog: cannot write " << report_path;
  }
}

std::vector<std::string> StallWatchdog::incident_files() const {
  std::lock_guard<std::mutex> lock(mu_);
  return incident_files_;
}

}  // namespace claims
