#ifndef CLAIMS_OBS_PROMETHEUS_H_
#define CLAIMS_OBS_PROMETHEUS_H_

#include <string>

#include "obs/metrics_registry.h"

namespace claims {

/// Maps a registry metric name to Prometheus conventions: the part before
/// the first ':' is the series name — dots become underscores and any other
/// character outside [a-zA-Z0-9_] is replaced by '_' (a leading digit gains
/// a '_' prefix); the part after the colon, when present, becomes an
/// `instance` label ("buffer.peak:S1@n0" → `buffer_peak{instance="S1@n0"}`).
std::string PrometheusSanitizeName(const std::string& name);

/// Escapes a label value per the exposition format: backslash, double quote,
/// and newline.
std::string PrometheusEscapeLabel(const std::string& value);

/// Renders the whole registry in the Prometheus text exposition format
/// (version 0.0.4): counters and gauges as single samples, histograms as
/// cumulative `_bucket{le="..."}` series over the log2 bucket boundaries
/// (trailing empty buckets elided) plus `_sum`, `_count`, and a `+Inf`
/// bucket. `# TYPE` lines are emitted once per series name.
std::string PrometheusSnapshot(const MetricsRegistry& registry);

/// Same exposition rendered into `*out` (cleared first, capacity kept).
/// Callers that scrape repeatedly — the monitor's /metrics route — hand in a
/// long-lived scratch buffer so steady-state scrapes stop reallocating.
void PrometheusSnapshotTo(const MetricsRegistry& registry, std::string* out);

/// Content-Type the exposition format is served under.
extern const char kPrometheusContentType[];

}  // namespace claims

#endif  // CLAIMS_OBS_PROMETHEUS_H_
