#ifndef CLAIMS_OBS_TIMESERIES_ANOMALY_H_
#define CLAIMS_OBS_TIMESERIES_ANOMALY_H_

#include <cstdint>
#include <map>
#include <string>

namespace claims {

struct AnomalyOptions {
  /// EWMA smoothing factor for the per-series baseline (mean + mean absolute
  /// deviation). Deviant samples leak in at alpha/10 so a spike cannot drag
  /// its own baseline up fast enough to mask itself (that leak is also what
  /// eventually ends an episode when the shift is permanent).
  double alpha = 0.25;
  /// A sample is deviant when |value − baseline| > threshold_sigma × MAD.
  double threshold_sigma = 4.0;
  /// Absolute floor on the deviation band — keeps a dead-flat series (MAD 0)
  /// from flagging the first wiggle.
  double min_deviation = 1e-9;
  /// Relative floor on the band: max(min_deviation, min_relative × |mean|).
  double min_relative = 0.05;
  /// Samples observed before a series may flag at all (baseline warm-up).
  int warmup_samples = 8;
  /// Hysteresis: consecutive deviant samples required to open an incident …
  int sustain_samples = 3;
  /// … and consecutive normal samples required to close it (re-arming the
  /// one-shot), so one episode fires exactly once.
  int recover_samples = 3;
};

/// One sustained deviation on one series.
struct AnomalyIncident {
  std::string series;
  int64_t t_ns = 0;
  double value = 0;     ///< the sample that crossed sustain_samples
  double baseline = 0;  ///< EWMA mean at that point
  double deviation = 0; ///< EWMA mean absolute deviation at that point
  std::string description;
};

/// Streaming per-series anomaly detection: EWMA baseline + EWMA absolute
/// deviation (a robust MAD stand-in that needs O(1) state), a deviation band
/// of threshold_sigma × MAD with absolute/relative floors, and two-sided
/// hysteresis — an incident opens only after sustain_samples consecutive
/// deviant samples and cannot re-fire until recover_samples normal ones close
/// it. Not thread-safe; the MetricSampler calls it under its own mutex.
class AnomalyDetector {
 public:
  explicit AnomalyDetector(AnomalyOptions options = AnomalyOptions())
      : options_(options) {}

  /// Feeds one sample. Returns true exactly when a new incident opens (once
  /// per sustained deviation) and fills `out`.
  bool Observe(const std::string& series, int64_t t_ns, double value,
               AnomalyIncident* out);

  /// Drops all per-series state (tests).
  void Reset() { state_.clear(); }
  size_t series_count() const { return state_.size(); }
  const AnomalyOptions& options() const { return options_; }

 private:
  struct State {
    double mean = 0;
    double dev = 0;  ///< EWMA of |value − mean|
    int64_t seen = 0;
    int deviant_run = 0;
    int normal_run = 0;
    bool in_incident = false;
  };

  AnomalyOptions options_;
  std::map<std::string, State> state_;
};

}  // namespace claims

#endif  // CLAIMS_OBS_TIMESERIES_ANOMALY_H_
