#ifndef CLAIMS_OBS_TIMESERIES_DASHBOARD_HTML_H_
#define CLAIMS_OBS_TIMESERIES_DASHBOARD_HTML_H_

namespace claims {

/// The /dash page: a single self-contained HTML document (no external
/// assets, works from a curl'd file) that polls /timeseries and renders the
/// four headline panels — throughput, tail latency, memory, scheduler — as
/// small-multiple line charts on one shared time axis, with fault/anomaly
/// annotations drawn as vertical markers. Colors follow the repo's chart
/// palette (light + dark via prefers-color-scheme with a data-theme
/// override); each panel carries exactly one series, so the panel title, not
/// hue, carries identity.
inline constexpr const char kDashboardHtml[] = R"claimsdash(<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>claims · live telemetry</title>
<style>
  .viz-root {
    color-scheme: light;
    --page:           #f9f9f7;
    --surface-1:      #fcfcfb;
    --text-primary:   #0b0b0b;
    --text-secondary: #52514e;
    --text-muted:     #898781;
    --grid:           #e1e0d9;
    --baseline:       #c3c2b7;
    --border:         rgba(11,11,11,0.10);
    --series-1:       #2a78d6;
    --series-2:       #eb6834;
    --series-3:       #1baf7a;
    --status-critical:#d03b3b;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --page:           #0d0d0d;
      --surface-1:      #1a1a19;
      --text-primary:   #ffffff;
      --text-secondary: #c3c2b7;
      --text-muted:     #898781;
      --grid:           #2c2c2a;
      --baseline:       #383835;
      --border:         rgba(255,255,255,0.10);
      --series-1:       #3987e5;
      --series-2:       #d95926;
      --series-3:       #199e70;
      --status-critical:#d03b3b;
    }
  }
  :root[data-theme="dark"] .viz-root {
    color-scheme: dark;
    --page:           #0d0d0d;
    --surface-1:      #1a1a19;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted:     #898781;
    --grid:           #2c2c2a;
    --baseline:       #383835;
    --border:         rgba(255,255,255,0.10);
    --series-1:       #3987e5;
    --series-2:       #d95926;
    --series-3:       #199e70;
    --status-critical:#d03b3b;
  }
  * { box-sizing: border-box; }
  body.viz-root {
    margin: 0; padding: 20px;
    background: var(--page); color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  header { display: flex; align-items: baseline; gap: 14px; margin-bottom: 16px; }
  header h1 { font-size: 17px; font-weight: 650; margin: 0; }
  header .sub { color: var(--text-secondary); font-size: 13px; }
  header nav { margin-left: auto; display: flex; gap: 12px; font-size: 13px; }
  header nav a { color: var(--text-secondary); text-decoration: none; }
  header nav a:hover { color: var(--text-primary); text-decoration: underline; }
  .grid { display: grid; grid-template-columns: repeat(auto-fit, minmax(340px, 1fr)); gap: 14px; }
  .card {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 14px 14px 8px;
  }
  .card h2 { font-size: 13px; font-weight: 600; margin: 0; color: var(--text-secondary); }
  .card .hero { font-size: 26px; font-weight: 650; margin: 2px 0 6px; color: var(--text-primary); }
  .card .hero small { font-size: 13px; font-weight: 500; color: var(--text-muted); margin-left: 4px; }
  .card canvas { width: 100%; height: 150px; display: block; cursor: crosshair; }
  #tooltip {
    position: fixed; pointer-events: none; display: none; z-index: 10;
    background: var(--surface-1); color: var(--text-primary);
    border: 1px solid var(--border); border-radius: 6px;
    padding: 6px 9px; font-size: 12px; box-shadow: 0 2px 10px rgba(0,0,0,0.18);
    max-width: 320px;
  }
  #tooltip .t { color: var(--text-muted); font-variant-numeric: tabular-nums; }
  #tooltip .fault { color: var(--status-critical); }
  footer { margin-top: 14px; color: var(--text-muted); font-size: 12px; }
  footer a { color: var(--text-secondary); }
  #status { font-variant-numeric: tabular-nums; }
</style>
</head>
<body class="viz-root">
<header>
  <h1>claims · live telemetry</h1>
  <span class="sub" id="status">connecting…</span>
  <nav>
    <a href="/timeseries">json</a>
    <a href="/timeseries?format=text">text</a>
    <a href="/metrics">metrics</a>
    <a href="/queries">queries</a>
  </nav>
</header>
<div class="grid" id="grid"></div>
<div id="tooltip"></div>
<footer>
  Polling <code>/timeseries?window=300</code> every 2 s. Vertical markers are
  <span style="color:var(--status-critical)">▮</span> fault / anomaly annotations
  (hover for labels). Raw series: <a href="/timeseries?format=text">table view</a>.
</footer>
<script>
"use strict";
// Each panel plots exactly ONE series (small multiples, shared time axis);
// the panel title carries identity, so no legend is needed. `pick` chooses
// the first series whose name matches, so the page degrades gracefully when
// a subsystem (e.g. the workload driver) is not running.
const PANELS = [
  { id: "throughput", title: "Throughput", unit: "qps", color: "--series-1",
    pick: ["wlm.driver.completed"], scale: 1 },
  { id: "latency", title: "Query latency p99", unit: "ms", color: "--series-2",
    pick: ["wlm.driver.latency_ns.p99"], scale: 1e-6 },
  { id: "memory", title: "Memory charged", unit: "MB", color: "--series-3",
    pick: ["mem.pool.charged_bytes", "mem.charged_bytes", "process.rss_bytes"],
    scale: 1 / (1024 * 1024) },
  { id: "scheduler", title: "Scheduler activity", unit: "/s", color: "--series-1",
    pick: ["scheduler.ticks", "scheduler.expansions", "elastic.expansions"],
    scale: 1 },
];
const grid = document.getElementById("grid");
const tooltip = document.getElementById("tooltip");
const charts = new Map();
for (const p of PANELS) {
  const card = document.createElement("div");
  card.className = "card";
  card.innerHTML =
    `<h2>${p.title}</h2><div class="hero" id="hero-${p.id}">–</div>` +
    `<canvas id="cv-${p.id}"></canvas>`;
  grid.appendChild(card);
  charts.set(p.id, { panel: p, canvas: card.querySelector("canvas"),
                     hero: card.querySelector(".hero"), data: [], anns: [] });
}
function cssVar(name) {
  return getComputedStyle(document.body).getPropertyValue(name).trim();
}
function fmt(v) {
  if (!isFinite(v)) return "–";
  if (Math.abs(v) >= 1000) return v.toFixed(0);
  if (Math.abs(v) >= 10) return v.toFixed(1);
  return v.toFixed(2);
}
function draw(ch) {
  const cv = ch.canvas, dpr = window.devicePixelRatio || 1;
  const w = cv.clientWidth, h = cv.clientHeight;
  if (cv.width !== w * dpr || cv.height !== h * dpr) {
    cv.width = w * dpr; cv.height = h * dpr;
  }
  const ctx = cv.getContext("2d");
  ctx.setTransform(dpr, 0, 0, dpr, 0, 0);
  ctx.clearRect(0, 0, w, h);
  const padL = 42, padR = 6, padT = 6, padB = 16;
  const pw = w - padL - padR, ph = h - padT - padB;
  const data = ch.data;
  ctx.strokeStyle = cssVar("--baseline");
  ctx.lineWidth = 1;
  ctx.beginPath();
  ctx.moveTo(padL, padT + ph + 0.5); ctx.lineTo(padL + pw, padT + ph + 0.5);
  ctx.stroke();
  if (data.length === 0) {
    ctx.fillStyle = cssVar("--text-muted");
    ctx.font = "12px system-ui, sans-serif";
    ctx.fillText("no samples yet", padL + 8, padT + ph / 2);
    return;
  }
  const t0 = ch.t0, t1 = ch.t1;
  let vmax = 0;
  for (const [, v] of data) vmax = Math.max(vmax, v);
  if (vmax <= 0) vmax = 1;
  vmax *= 1.1;  // headroom so the peak is not glued to the top
  const X = t => padL + (t1 > t0 ? (t - t0) / (t1 - t0) : 0) * pw;
  const Y = v => padT + ph - (v / vmax) * ph;
  // recessive horizontal gridlines + tick labels in muted ink
  ctx.strokeStyle = cssVar("--grid");
  ctx.fillStyle = cssVar("--text-muted");
  ctx.font = "10px system-ui, sans-serif";
  ctx.textAlign = "right";
  for (const frac of [0.5, 1.0]) {
    const v = vmax * frac / 1.1, y = Y(v) + 0.5;
    ctx.beginPath(); ctx.moveTo(padL, y); ctx.lineTo(padL + pw, y); ctx.stroke();
    ctx.fillText(fmt(v), padL - 5, y + 3);
  }
  ctx.textAlign = "left";
  // fault / anomaly annotation markers: status-critical, dashed, behind data
  ctx.save();
  ctx.strokeStyle = cssVar("--status-critical");
  ctx.setLineDash([3, 3]);
  for (const a of ch.anns) {
    const x = X(a.t) + 0.5;
    if (x < padL || x > padL + pw) continue;
    ctx.globalAlpha = a.begin ? 0.85 : 0.4;
    ctx.beginPath(); ctx.moveTo(x, padT); ctx.lineTo(x, padT + ph); ctx.stroke();
  }
  ctx.restore();
  // the series itself: 2px line in its assigned slot color
  ctx.strokeStyle = cssVar(ch.panel.color);
  ctx.lineWidth = 2;
  ctx.lineJoin = "round";
  ctx.beginPath();
  data.forEach(([t, v], i) => {
    const x = X(t), y = Y(v);
    if (i === 0) ctx.moveTo(x, y); else ctx.lineTo(x, y);
  });
  ctx.stroke();
  // hover crosshair + nearest-sample marker
  if (ch.hoverX != null) {
    let best = 0, bestD = Infinity;
    data.forEach(([t], i) => {
      const d = Math.abs(X(t) - ch.hoverX);
      if (d < bestD) { bestD = d; best = i; }
    });
    const [t, v] = data[best];
    ctx.strokeStyle = cssVar("--text-muted");
    ctx.lineWidth = 1;
    ctx.beginPath();
    ctx.moveTo(X(t) + 0.5, padT); ctx.lineTo(X(t) + 0.5, padT + ph);
    ctx.stroke();
    ctx.fillStyle = cssVar(ch.panel.color);
    ctx.beginPath(); ctx.arc(X(t), Y(v), 4, 0, Math.PI * 2); ctx.fill();
    ctx.strokeStyle = cssVar("--surface-1");
    ctx.lineWidth = 2;
    ctx.beginPath(); ctx.arc(X(t), Y(v), 4, 0, Math.PI * 2); ctx.stroke();
    ch.hoverSample = { t, v };
  }
}
function attachHover(ch) {
  const cv = ch.canvas;
  cv.addEventListener("mousemove", e => {
    const r = cv.getBoundingClientRect();
    ch.hoverX = e.clientX - r.left;
    draw(ch);
    if (!ch.hoverSample) return;
    const { t, v } = ch.hoverSample;
    const near = ch.anns.filter(a => Math.abs(a.t - t) <= ch.span * 0.03);
    let html = `<div class="t">t+${fmt((t - ch.t0) / 1e9)} s</div>` +
               `<div>${ch.panel.title}: <b>${fmt(v)}</b> ${ch.panel.unit}</div>`;
    for (const a of near.slice(0, 4)) {
      html += `<div class="fault">⚠ ${a.begin ? "" : "cleared: "}${a.label}</div>`;
    }
    tooltip.innerHTML = html;
    tooltip.style.display = "block";
    tooltip.style.left = Math.min(e.clientX + 14, window.innerWidth - 330) + "px";
    tooltip.style.top = (e.clientY + 14) + "px";
  });
  cv.addEventListener("mouseleave", () => {
    ch.hoverX = null; ch.hoverSample = null;
    tooltip.style.display = "none";
    draw(ch);
  });
}
charts.forEach(attachHover);
async function poll() {
  try {
    const resp = await fetch("/timeseries?window=300");
    const body = await resp.json();
    const byName = new Map((body.series || []).map(s => [s.name, s]));
    const anns = (body.annotations || [])
        .map(a => ({ t: a.t_ns, label: a.label, begin: a.begin }));
    let t0 = Infinity, t1 = -Infinity;
    for (const s of byName.values()) {
      for (const [t] of s.samples) { t0 = Math.min(t0, t); t1 = Math.max(t1, t); }
    }
    if (!isFinite(t0)) { t0 = body.now_ns - 1; t1 = body.now_ns; }
    charts.forEach(ch => {
      const p = ch.panel;
      let s = null;
      for (const name of p.pick) { if (byName.has(name)) { s = byName.get(name); break; } }
      ch.data = s ? s.samples.map(([t, v]) => [t, v * p.scale]) : [];
      ch.anns = anns;
      ch.t0 = t0; ch.t1 = t1; ch.span = Math.max(1, t1 - t0);
      const last = ch.data.length ? ch.data[ch.data.length - 1][1] : NaN;
      ch.hero.innerHTML = isFinite(last)
          ? `${fmt(last)}<small>${p.unit}</small>` : "–";
      draw(ch);
    });
    const n = byName.size, na = anns.length;
    document.getElementById("status").textContent =
        `${n} series · ${na} annotation${na === 1 ? "" : "s"} · live`;
  } catch (err) {
    document.getElementById("status").textContent = "poll failed: " + err.message;
  }
}
poll();
setInterval(poll, 2000);
window.addEventListener("resize", () => charts.forEach(draw));
</script>
</body>
</html>
)claimsdash";

}  // namespace claims

#endif  // CLAIMS_OBS_TIMESERIES_DASHBOARD_HTML_H_
