#ifndef CLAIMS_OBS_TIMESERIES_TIMESERIES_H_
#define CLAIMS_OBS_TIMESERIES_TIMESERIES_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/macros.h"
#include "obs/metrics_registry.h"
#include "obs/timeseries/anomaly.h"

namespace claims {

/// One sample of one time series.
struct TsSample {
  int64_t t_ns = 0;
  double value = 0;
};

/// One timeline annotation (a fault window opening/closing, an operator
/// marker). Annotations share the time axis with every series, which is what
/// lets a chaos run show cause (fault) and effect (throughput dip) together.
struct TsAnnotation {
  int64_t t_ns = 0;
  std::string label;
  bool begin = true;  ///< false = the annotated window closed
};

struct TimeseriesOptions {
  /// Sampling cadence. The sampler thread paces itself on *real* time (a
  /// frozen injected clock must never hang it — the TokenBucket precedent);
  /// sample timestamps come from the injected clock.
  int64_t period_ns = 1'000'000'000;  // 1 s
  /// Bounded ring capacity per series (600 ≈ 10 min at the 1 s default).
  size_t ring_capacity = 600;
  /// Hard cap on distinct series; beyond it new series are dropped and
  /// counted in "timeseries.dropped_series" (instance-labeled metrics can
  /// multiply without bound under adversarial naming).
  size_t max_series = 4096;
  /// Bounded annotation ring capacity.
  size_t annotation_capacity = 256;
  /// Run the anomaly watchdog over appended samples.
  bool detect_anomalies = true;
  AnomalyOptions anomaly;
  /// Substring filter naming which series the anomaly detector watches
  /// (empty = all of them).
  std::string anomaly_watch;

  /// Environment overlay: CLAIMS_TS_PERIOD_MS=<ms> sets the cadence (and is
  /// how deployments opt into a faster/slower axis without a rebuild).
  static TimeseriesOptions FromEnv(TimeseriesOptions base);
  static TimeseriesOptions FromEnv() { return FromEnv(TimeseriesOptions()); }
};

/// The time axis the point-in-time surfaces lack: a sampler driven by the
/// injected clock that walks a MetricsRegistry on a fixed cadence and appends
/// into per-metric bounded rings —
///
///   * counters   → stored as per-second *rates* (delta / dt), so a
///                  throughput dip is a dip, not a slope change;
///   * gauges     → stored as-is;
///   * histograms → *windowed* p50/p95/p99 ("<name>.p50" …) read off the
///                  delta of the cumulative log2 buckets between samples,
///                  plus "<name>.rate" (records/s). An empty window reports
///                  0, never the stale cumulative quantile.
///
/// Sampling is O(#metrics) on the sampler thread and touches no query hot
/// path; readers (the /timeseries and /dash routes, incident reports) render
/// under the same mutex. An AnomalyDetector (EWMA + MAD hysteresis,
/// obs/timeseries/anomaly.h) watches appended samples and fires the incident
/// callback once per sustained deviation — the introspection plane routes
/// that into a watchdog-style incident bundling the flight recorder with the
/// surrounding window (wlm/introspection.cc).
class MetricSampler {
 public:
  using IncidentCallback = std::function<void(const AnomalyIncident&)>;

  /// `clock` defaults to SteadyClock; `registry` to MetricsRegistry::Global.
  explicit MetricSampler(TimeseriesOptions options = TimeseriesOptions(),
                         Clock* clock = nullptr,
                         MetricsRegistry* registry = nullptr);
  ~MetricSampler();
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(MetricSampler);

  /// The process-wide sampler the built-in /timeseries and /dash routes and
  /// the fault plane's annotation hook talk to. Null until a plane (or test)
  /// publishes one with SetDefault; publishers clear it before destruction.
  static MetricSampler* Default();
  static void SetDefault(MetricSampler* sampler);

  /// Launches the sampling thread (real-time cadence). No-op when running.
  void Start();
  /// Stops and joins. Never blocks on the injected clock. Idempotent.
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// One sampling pass (the thread calls this every period; tests drive it
  /// directly under a manual clock). Returns the number of samples appended.
  /// The first pass establishes counter/histogram baselines and appends only
  /// gauges — deltas need two observations.
  int SampleOnce();

  /// Appends a timeline annotation stamped with this sampler's clock.
  /// Thread-safe; callable from any subsystem (the fault injector annotates
  /// every window transition through Default()).
  void Annotate(std::string label, bool begin);

  /// Incident sink for the anomaly detector; invoked on the sampler thread
  /// with no sampler lock held (the callback may read this sampler back).
  /// Set before Start.
  void SetIncidentCallback(IncidentCallback cb);

  /// JSON render: {"enabled":true,"now_ns":…,"period_ns":…,"series":[
  /// {"name":…,"kind":"rate|gauge|quantile","samples":[[t_ns,v],…]},…],
  /// "annotations":[{"t_ns":…,"label":…,"begin":…},…]}. `metric_filter` is a
  /// substring match on series names (empty = all); `window_ns` keeps only
  /// samples newer than now − window (<= 0 = everything). Annotations are
  /// filtered by window only.
  std::string ToJson(const std::string& metric_filter, int64_t window_ns) const;

  /// Text render: one line per series with min/max/last and an ASCII
  /// sparkline, then the annotation list. Same filters as ToJson.
  std::string ToText(const std::string& metric_filter, int64_t window_ns) const;

  // --- introspection (tests) -------------------------------------------------
  int64_t sample_count() const {
    return sample_count_.load(std::memory_order_relaxed);
  }
  std::vector<std::string> SeriesNames() const;
  /// Chronological samples of one series (empty when unknown).
  std::vector<TsSample> SeriesSamples(const std::string& name) const;
  std::vector<TsAnnotation> Annotations() const;
  const TimeseriesOptions& options() const { return options_; }

 private:
  struct SeriesRing {
    const char* kind = "gauge";  ///< static string: "rate"|"gauge"|"quantile"
    std::vector<TsSample> samples;  ///< ring once size reaches capacity
    size_t next = 0;                ///< overwrite cursor when full
  };
  struct HistBaseline {
    int64_t buckets[MetricHistogram::kBuckets] = {};
    bool valid = false;
  };

  void ThreadMain();
  /// Appends under mu_; drops (and counts) series beyond max_series.
  void AppendLocked(const std::string& name, const char* kind, int64_t t_ns,
                    double value);
  std::vector<TsSample> OrderedSamplesLocked(const SeriesRing& ring) const;

  TimeseriesOptions options_;
  Clock* clock_;
  MetricsRegistry* registry_;
  MetricCounter* samples_metric_;
  MetricCounter* anomalies_metric_;
  MetricCounter* dropped_series_metric_;

  mutable std::mutex mu_;
  std::map<std::string, SeriesRing> series_;
  std::map<std::string, int64_t> counter_base_;
  std::map<std::string, HistBaseline> hist_base_;
  std::vector<TsAnnotation> annotations_;  ///< ring via annotation_next_
  size_t annotation_next_ = 0;
  int64_t last_sample_ns_ = -1;
  AnomalyDetector detector_;
  IncidentCallback on_incident_;

  std::atomic<int64_t> sample_count_{0};
  std::atomic<bool> running_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

/// 10-level ASCII sparkline of `values`, scaled 0..max (empty input → "").
/// Shared by the text renderer and the workload driver's --timeline summary.
std::string AsciiSparkline(const std::vector<double>& values);

}  // namespace claims

#endif  // CLAIMS_OBS_TIMESERIES_TIMESERIES_H_
