#include "obs/timeseries/timeseries.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "common/string_util.h"
#include "obs/process_stats.h"

namespace claims {

namespace {

std::atomic<MetricSampler*> g_default_sampler{nullptr};

}  // namespace

TimeseriesOptions TimeseriesOptions::FromEnv(TimeseriesOptions base) {
  if (const char* v = std::getenv("CLAIMS_TS_PERIOD_MS")) {
    long ms = std::strtol(v, nullptr, 10);
    if (ms > 0) base.period_ns = static_cast<int64_t>(ms) * 1'000'000;
  }
  return base;
}

MetricSampler* MetricSampler::Default() {
  return g_default_sampler.load(std::memory_order_acquire);
}

void MetricSampler::SetDefault(MetricSampler* sampler) {
  g_default_sampler.store(sampler, std::memory_order_release);
}

MetricSampler::MetricSampler(TimeseriesOptions options, Clock* clock,
                             MetricsRegistry* registry)
    : options_(options),
      clock_(clock != nullptr ? clock : SteadyClock::Default()),
      registry_(registry != nullptr ? registry : MetricsRegistry::Global()),
      samples_metric_(registry_->counter("timeseries.samples")),
      anomalies_metric_(registry_->counter("timeseries.anomalies")),
      dropped_series_metric_(registry_->counter("timeseries.dropped_series")),
      detector_(options.anomaly) {}

MetricSampler::~MetricSampler() {
  Stop();
  if (Default() == this) SetDefault(nullptr);
}

void MetricSampler::Start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { ThreadMain(); });
}

void MetricSampler::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void MetricSampler::ThreadMain() {
  // The wait is real-time (std::condition_variable::wait_for), NOT
  // clock_->SleepNanos: a frozen injected clock must never hang the sampler
  // thread (only timestamps come from the injected clock). Same contract as
  // the stall watchdog's poll loop.
  const auto period = std::chrono::nanoseconds(
      std::max<int64_t>(options_.period_ns, 1'000'000));
  while (true) {
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait_for(lock, period, [this] { return stop_requested_; });
      if (stop_requested_) return;
    }
    SampleOnce();
  }
}

int MetricSampler::SampleOnce() {
  const int64_t now = clock_->NowNanos();

  // Process gauges (rss, threads, fds) are otherwise only refreshed by a
  // /metrics scrape; the dashboard reads them from rings, so refresh here.
  // Only for the global registry — test-local registries stay deterministic.
  if (registry_ == MetricsRegistry::Global()) {
    UpdateProcessGauges();
  }

  // Collect outside our own mutex: Visit holds the registry mutex during
  // callbacks, and we never want registry_mu + sampler_mu held together.
  struct RawCounter {
    std::string name;
    int64_t value;
  };
  struct RawGauge {
    std::string name;
    double value;
  };
  struct RawHist {
    std::string name;
    int64_t buckets[MetricHistogram::kBuckets];
  };
  std::vector<RawCounter> counters;
  std::vector<RawGauge> gauges;
  std::vector<RawHist> hists;
  registry_->Visit(
      [&](const std::string& name, const MetricCounter& c) {
        counters.push_back({name, c.value()});
      },
      [&](const std::string& name, const MetricGauge& g) {
        gauges.push_back({name, g.value()});
      },
      [&](const std::string& name, const MetricHistogram& h) {
        RawHist raw;
        raw.name = name;
        h.SnapshotBuckets(raw.buckets);
        hists.push_back(std::move(raw));
      });

  int appended = 0;
  std::vector<AnomalyIncident> fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t last = last_sample_ns_;
    const double dt_s =
        last >= 0 && now > last ? static_cast<double>(now - last) / 1e9 : 0.0;

    auto append = [&](const std::string& name, const char* kind,
                      double value) {
      AppendLocked(name, kind, now, value);
      ++appended;
      if (options_.detect_anomalies &&
          (options_.anomaly_watch.empty() ||
           name.find(options_.anomaly_watch) != std::string::npos)) {
        AnomalyIncident inc;
        if (detector_.Observe(name, now, value, &inc)) {
          fired.push_back(std::move(inc));
        }
      }
    };

    for (const RawCounter& c : counters) {
      auto [it, inserted] = counter_base_.try_emplace(c.name, c.value);
      if (inserted) continue;  // first observation: baseline only
      int64_t delta = c.value - it->second;
      // A negative delta means the counter was Reset between samples: treat
      // the current value as the new window's worth and rebase.
      if (delta < 0) delta = c.value;
      it->second = c.value;
      append(c.name, "rate",
             dt_s > 0 ? static_cast<double>(delta) / dt_s : 0.0);
    }
    for (const RawGauge& g : gauges) {
      append(g.name, "gauge", g.value);
    }
    for (const RawHist& h : hists) {
      HistBaseline& base = hist_base_[h.name];
      if (!base.valid) {
        std::copy(h.buckets, h.buckets + MetricHistogram::kBuckets,
                  base.buckets);
        base.valid = true;
        continue;
      }
      int64_t delta[MetricHistogram::kBuckets];
      int64_t window_count = 0;
      for (int b = 0; b < MetricHistogram::kBuckets; ++b) {
        delta[b] = h.buckets[b] - base.buckets[b];
        base.buckets[b] = h.buckets[b];
        if (delta[b] > 0) window_count += delta[b];
      }
      append(h.name + ".rate", "rate",
             dt_s > 0 ? static_cast<double>(window_count) / dt_s : 0.0);
      append(h.name + ".p50", "quantile",
             static_cast<double>(MetricHistogram::DeltaPercentile(delta, 0.50)));
      append(h.name + ".p95", "quantile",
             static_cast<double>(MetricHistogram::DeltaPercentile(delta, 0.95)));
      append(h.name + ".p99", "quantile",
             static_cast<double>(MetricHistogram::DeltaPercentile(delta, 0.99)));
    }

    last_sample_ns_ = now;
  }
  sample_count_.fetch_add(1, std::memory_order_relaxed);
  samples_metric_->Add(appended);

  // Incidents fire outside mu_: the callback typically raises a watchdog
  // incident whose context providers read this sampler back (ToText).
  for (const AnomalyIncident& inc : fired) {
    anomalies_metric_->Add();
    {
      std::lock_guard<std::mutex> lock(mu_);
      TsAnnotation a;
      a.t_ns = inc.t_ns;
      a.label = "anomaly." + inc.series;
      a.begin = true;
      if (annotations_.size() < options_.annotation_capacity) {
        annotations_.push_back(std::move(a));
      } else if (!annotations_.empty()) {
        annotations_[annotation_next_ % annotations_.size()] = std::move(a);
        annotation_next_ = (annotation_next_ + 1) % annotations_.size();
      }
    }
    if (on_incident_) on_incident_(inc);
  }
  return appended;
}

void MetricSampler::AppendLocked(const std::string& name, const char* kind,
                                 int64_t t_ns, double value) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    if (series_.size() >= options_.max_series) {
      dropped_series_metric_->Add();
      return;
    }
    it = series_.emplace(name, SeriesRing{}).first;
    it->second.kind = kind;
    it->second.samples.reserve(
        std::min<size_t>(options_.ring_capacity, 64));
  }
  SeriesRing& ring = it->second;
  TsSample s{t_ns, value};
  if (ring.samples.size() < options_.ring_capacity) {
    ring.samples.push_back(s);
  } else if (!ring.samples.empty()) {
    ring.samples[ring.next] = s;
    ring.next = (ring.next + 1) % ring.samples.size();
  }
}

std::vector<TsSample> MetricSampler::OrderedSamplesLocked(
    const SeriesRing& ring) const {
  std::vector<TsSample> out;
  out.reserve(ring.samples.size());
  if (ring.samples.size() < options_.ring_capacity) {
    out = ring.samples;  // not yet wrapped: already chronological
  } else {
    for (size_t i = 0; i < ring.samples.size(); ++i) {
      out.push_back(ring.samples[(ring.next + i) % ring.samples.size()]);
    }
  }
  return out;
}

void MetricSampler::Annotate(std::string label, bool begin) {
  TsAnnotation a;
  a.t_ns = clock_->NowNanos();
  a.label = std::move(label);
  a.begin = begin;
  std::lock_guard<std::mutex> lock(mu_);
  if (annotations_.size() < options_.annotation_capacity) {
    annotations_.push_back(std::move(a));
  } else if (!annotations_.empty()) {
    annotations_[annotation_next_ % annotations_.size()] = std::move(a);
    annotation_next_ = (annotation_next_ + 1) % annotations_.size();
  }
}

void MetricSampler::SetIncidentCallback(IncidentCallback cb) {
  on_incident_ = std::move(cb);
}

std::string MetricSampler::ToJson(const std::string& metric_filter,
                                  int64_t window_ns) const {
  const int64_t now = clock_->NowNanos();
  const int64_t cutoff = window_ns > 0 ? now - window_ns : INT64_MIN;
  std::string out;
  out.reserve(4096);
  std::lock_guard<std::mutex> lock(mu_);
  out += StrFormat(
      "{\"enabled\":true,\"now_ns\":%lld,\"period_ns\":%lld,\"series\":[",
      static_cast<long long>(now),
      static_cast<long long>(options_.period_ns));
  bool first_series = true;
  for (const auto& [name, ring] : series_) {
    if (!metric_filter.empty() &&
        name.find(metric_filter) == std::string::npos) {
      continue;
    }
    if (!first_series) out += ',';
    first_series = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, name);
    out += StrFormat("\",\"kind\":\"%s\",\"samples\":[", ring.kind);
    bool first_sample = true;
    for (const TsSample& s : OrderedSamplesLocked(ring)) {
      if (s.t_ns < cutoff) continue;
      if (!first_sample) out += ',';
      first_sample = false;
      out += StrFormat("[%lld,%.10g]", static_cast<long long>(s.t_ns),
                       s.value);
    }
    out += "]}";
  }
  out += "],\"annotations\":[";
  bool first_ann = true;
  std::vector<TsAnnotation> anns = annotations_;
  std::sort(anns.begin(), anns.end(),
            [](const TsAnnotation& a, const TsAnnotation& b) {
              return a.t_ns < b.t_ns;
            });
  for (const TsAnnotation& a : anns) {
    if (a.t_ns < cutoff) continue;
    if (!first_ann) out += ',';
    first_ann = false;
    out += StrFormat("{\"t_ns\":%lld,\"label\":\"",
                     static_cast<long long>(a.t_ns));
    AppendJsonEscaped(&out, a.label);
    out += StrFormat("\",\"begin\":%s}", a.begin ? "true" : "false");
  }
  out += "]}";
  return out;
}

std::string MetricSampler::ToText(const std::string& metric_filter,
                                  int64_t window_ns) const {
  const int64_t now = clock_->NowNanos();
  const int64_t cutoff = window_ns > 0 ? now - window_ns : INT64_MIN;
  std::string out;
  out += StrFormat("timeseries period=%lldms window=%s\n",
                   static_cast<long long>(options_.period_ns / 1'000'000),
                   window_ns > 0
                       ? StrFormat("%llds",
                                   static_cast<long long>(window_ns /
                                                          1'000'000'000))
                             .c_str()
                       : "all");
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, ring] : series_) {
    if (!metric_filter.empty() &&
        name.find(metric_filter) == std::string::npos) {
      continue;
    }
    std::vector<double> values;
    double vmin = 0, vmax = 0, vlast = 0;
    bool any = false;
    for (const TsSample& s : OrderedSamplesLocked(ring)) {
      if (s.t_ns < cutoff) continue;
      values.push_back(s.value);
      if (!any) {
        vmin = vmax = s.value;
        any = true;
      } else {
        vmin = std::min(vmin, s.value);
        vmax = std::max(vmax, s.value);
      }
      vlast = s.value;
    }
    if (!any) continue;
    out += StrFormat("  %-44s %-8s min=%-10.4g max=%-10.4g last=%-10.4g [%s]\n",
                     name.c_str(), ring.kind, vmin, vmax, vlast,
                     AsciiSparkline(values).c_str());
  }
  std::vector<TsAnnotation> anns = annotations_;
  std::sort(anns.begin(), anns.end(),
            [](const TsAnnotation& a, const TsAnnotation& b) {
              return a.t_ns < b.t_ns;
            });
  bool header = false;
  for (const TsAnnotation& a : anns) {
    if (a.t_ns < cutoff) continue;
    if (!header) {
      out += "annotations:\n";
      header = true;
    }
    out += StrFormat("  t=%lldns %s %s\n", static_cast<long long>(a.t_ns),
                     a.begin ? "begin" : "end", a.label.c_str());
  }
  return out;
}

std::vector<std::string> MetricSampler::SeriesNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, ring] : series_) names.push_back(name);
  return names;
}

std::vector<TsSample> MetricSampler::SeriesSamples(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) return {};
  return OrderedSamplesLocked(it->second);
}

std::vector<TsAnnotation> MetricSampler::Annotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TsAnnotation> anns = annotations_;
  std::sort(anns.begin(), anns.end(),
            [](const TsAnnotation& a, const TsAnnotation& b) {
              return a.t_ns < b.t_ns;
            });
  return anns;
}

std::string AsciiSparkline(const std::vector<double>& values) {
  static const char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = 10;
  if (values.empty()) return "";
  double vmax = 0;
  for (double v : values) vmax = std::max(vmax, v);
  std::string out;
  out.reserve(values.size());
  for (double v : values) {
    if (vmax <= 0 || v <= 0) {
      out += kRamp[0];
      continue;
    }
    int level = static_cast<int>(std::floor(v / vmax * (kLevels - 1) + 0.5));
    out += kRamp[std::clamp(level, 0, kLevels - 1)];
  }
  return out;
}

}  // namespace claims
