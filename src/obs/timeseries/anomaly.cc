#include "obs/timeseries/anomaly.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace claims {

bool AnomalyDetector::Observe(const std::string& series, int64_t t_ns,
                              double value, AnomalyIncident* out) {
  State& s = state_[series];
  if (s.seen == 0) {
    s.mean = value;
    s.dev = 0;
    s.seen = 1;
    return false;
  }

  const double floor_band =
      std::max(options_.min_deviation, options_.min_relative * std::fabs(s.mean));
  const double band = options_.threshold_sigma * std::max(s.dev, floor_band);
  const double err = value - s.mean;
  const bool warmed = s.seen >= options_.warmup_samples;
  const bool deviant = warmed && std::fabs(err) > band;

  bool fired = false;
  if (deviant) {
    s.normal_run = 0;
    ++s.deviant_run;
    if (!s.in_incident && s.deviant_run >= options_.sustain_samples) {
      s.in_incident = true;
      fired = true;
      if (out != nullptr) {
        out->series = series;
        out->t_ns = t_ns;
        out->value = value;
        out->baseline = s.mean;
        out->deviation = s.dev;
        out->description = StrFormat(
            "timeseries anomaly: %s %s: value %.6g vs baseline %.6g "
            "(dev %.6g, >%.1f sigma for %d samples)",
            series.c_str(), err < 0 ? "collapsed" : "spiked", value, s.mean,
            s.dev, options_.threshold_sigma, s.deviant_run);
      }
    }
  } else {
    s.deviant_run = 0;
    if (s.in_incident) {
      ++s.normal_run;
      if (s.normal_run >= options_.recover_samples) {
        s.in_incident = false;
        s.normal_run = 0;
      }
    }
  }

  // Deviant samples leak into the baseline at a tenth of alpha: fast enough
  // that a *permanent* level shift is eventually adopted (ending the episode),
  // slow enough that a spike cannot inflate its own band before the sustain
  // count is reached.
  const double a = deviant ? options_.alpha * 0.1 : options_.alpha;
  s.mean += a * err;
  s.dev = (1.0 - a) * s.dev + a * std::fabs(err);
  ++s.seen;
  return fired;
}

}  // namespace claims
