#include "obs/process_stats.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <dirent.h>
#endif

#include "common/clock.h"
#include "obs/metrics_registry.h"

namespace claims {
namespace {

/// Captured during static initialization: a lazily-initialized local static
/// would anchor "uptime" to the first /metrics scrape instead of process
/// start (and could even read slightly negative within that first call).
const int64_t kProcessStartNanos = SteadyClock::Default()->NowNanos();

}  // namespace

ProcessStats SampleProcessStats() {
  ProcessStats stats;
  stats.uptime_seconds = std::max(
      0.0, (SteadyClock::Default()->NowNanos() - kProcessStartNanos) / 1e9);
#if defined(__linux__)
  if (FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      long long value = 0;
      if (std::sscanf(line, "VmRSS: %lld kB", &value) == 1) {
        stats.rss_bytes = value * 1024;
      } else if (std::sscanf(line, "Threads: %lld", &value) == 1) {
        stats.threads = value;
      }
    }
    std::fclose(f);
  }
  if (DIR* dir = opendir("/proc/self/fd")) {
    int64_t count = 0;
    while (readdir(dir) != nullptr) ++count;
    closedir(dir);
    // "." and ".." plus the dirfd itself.
    stats.open_fds = count > 3 ? count - 3 : 0;
  }
#endif
  return stats;
}

void UpdateProcessGauges() {
  ProcessStats stats = SampleProcessStats();
  MetricsRegistry* reg = MetricsRegistry::Global();
  if (stats.rss_bytes >= 0) {
    reg->gauge("process.rss_bytes")->Set(static_cast<double>(stats.rss_bytes));
  }
  if (stats.threads >= 0) {
    reg->gauge("process.threads")->Set(static_cast<double>(stats.threads));
  }
  if (stats.open_fds >= 0) {
    reg->gauge("process.open_fds")->Set(static_cast<double>(stats.open_fds));
  }
  reg->gauge("process.uptime_seconds")->Set(stats.uptime_seconds);
}

}  // namespace claims
