#ifndef CLAIMS_OBS_MONITOR_SERVER_H_
#define CLAIMS_OBS_MONITOR_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "common/status.h"
#include "net/socket_util.h"

namespace claims {

class MetricCounter;
class MetricHistogram;

/// One parsed HTTP request as a handler sees it. `path` excludes the query
/// string; `query` is the raw text after '?' (empty when absent).
struct HttpRequest {
  std::string method;  ///< upper-case: GET, POST, ...
  std::string path;    ///< e.g. "/queries"
  std::string query;   ///< e.g. "limit=10"
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse Json(std::string body) {
    return HttpResponse{200, "application/json", std::move(body)};
  }
  static HttpResponse NotFound(std::string what) {
    return HttpResponse{404, "text/plain; charset=utf-8", std::move(what)};
  }
};

/// Configuration of the live introspection endpoint. Everything is OFF by
/// default: a default-constructed server starts no thread, opens no socket,
/// and costs nothing — production paths construct it unconditionally and
/// only pay when explicitly enabled (options or CLAIMS_MONITOR_PORT).
struct MonitorOptions {
  bool enabled = false;
  /// Loopback by default: the monitor exposes internals and has no auth.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (tests) — read MonitorServer::port.
  int port = 0;
  /// Requests larger than this are rejected with 413.
  size_t max_request_bytes = 1u << 20;

  /// Overlays environment configuration: CLAIMS_MONITOR_PORT=<port> enables
  /// the monitor on that port (0 = ephemeral, logged at startup).
  static MonitorOptions FromEnv(MonitorOptions base);
  static MonitorOptions FromEnv() { return FromEnv(MonitorOptions()); }
};

/// A dependency-free embedded HTTP/1.1 monitoring server: one acceptor
/// thread, handlers run blocking on that thread (scrapes are rare and cheap
/// relative to query work; no thread pool to manage or leak). Ships with
///
///   GET  /                      route index
///   GET  /healthz               liveness probe ("ok")
///   GET  /metrics               MetricsRegistry in Prometheus exposition
///   GET  /timeseries            metric history rings (MetricSampler::Default)
///   GET  /dash                  self-contained live dashboard polling the above
///   POST /flight-recorder/dump  TraceCollector snapshot as Chrome JSON
///
/// and subsystems register their own routes (AddHandler) — the workload
/// manager's /queries and /scheduler live in wlm/introspection.h, keeping
/// this layer free of upward dependencies.
class MonitorServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit MonitorServer(MonitorOptions options = MonitorOptions());
  ~MonitorServer();

  CLAIMS_DISALLOW_COPY_AND_ASSIGN(MonitorServer);

  /// Binds and launches the acceptor thread. A disabled server returns OK
  /// and does nothing (zero threads). Not restartable after Stop.
  Status Start();

  /// Stops accepting, closes the socket, joins the acceptor. Idempotent.
  void Stop();

  bool running() const;
  /// Bound port after a successful Start (resolves port 0); -1 otherwise.
  int port() const;
  const MonitorOptions& options() const { return options_; }

  /// Registers/overwrites a route. Handlers must be thread-safe with respect
  /// to the state they read; they are invoked from the acceptor thread.
  /// Callable before or after Start.
  void AddHandler(const std::string& method, const std::string& path,
                  Handler handler);
  void RemoveHandler(const std::string& method, const std::string& path);

  /// Registers a handler for every path starting with `prefix` (e.g.
  /// "/profile/" serves /profile/<query_id>). Exact routes win over
  /// prefixes; among prefixes the longest match wins.
  void AddPrefixHandler(const std::string& method, const std::string& prefix,
                        Handler handler);

  /// Dispatches one request exactly as the acceptor would (tests exercise
  /// handlers without sockets).
  HttpResponse Dispatch(const HttpRequest& request) const;

 private:
  void AcceptorMain();
  void ServeConnection(int fd);
  void RegisterBuiltinRoutes();

  MonitorOptions options_;
  MetricCounter* requests_metric_;
  MetricCounter* errors_metric_;
  MetricHistogram* scrape_ns_metric_;

  /// Long-lived scratch for the /metrics render: the exposition is rebuilt
  /// per scrape but into this buffer (clear keeps capacity), so steady-state
  /// scrapes stop reallocating. Requests are served on the single acceptor
  /// thread; the mutex only guards against concurrent Dispatch from tests.
  std::mutex scrape_mu_;
  std::string scrape_scratch_;

  mutable std::mutex handlers_mu_;
  /// (method, path) → handler.
  std::map<std::pair<std::string, std::string>, Handler> handlers_;
  /// (method, path-prefix) → handler; consulted after the exact map.
  std::map<std::pair<std::string, std::string>, Handler> prefix_handlers_;

  std::mutex lifecycle_mu_;  ///< serializes Start/Stop (destructor included)
  ListenSocket listener_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
};

}  // namespace claims

#endif  // CLAIMS_OBS_MONITOR_SERVER_H_
