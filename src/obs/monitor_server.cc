#include "obs/monitor_server.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics_registry.h"
#include "obs/process_stats.h"
#include "obs/profile/assembler.h"
#include "obs/profile/profiler.h"
#include "obs/prometheus.h"
#include "obs/timeseries/dashboard_html.h"
#include "obs/timeseries/timeseries.h"
#include "obs/trace.h"

namespace claims {
namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = StrFormat(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      response.status, ReasonPhrase(response.status),
      response.content_type.c_str(), response.body.size());
  out += response.body;
  return out;
}

/// Parses the request head plus whatever body prefix was already read past
/// the header terminator. False on malformed input.
bool ParseRequest(const std::string& raw, HttpRequest* request,
                  size_t* content_length) {
  size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) return false;
  std::vector<std::string> parts = Split(raw.substr(0, line_end), ' ');
  if (parts.size() != 3 || parts[2].rfind("HTTP/1.", 0) != 0) return false;
  request->method = ToUpper(parts[0]);
  std::string target = parts[1];
  size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    request->path = target;
  } else {
    request->path = target.substr(0, qmark);
    request->query = target.substr(qmark + 1);
  }
  if (request->path.empty() || request->path[0] != '/') return false;

  *content_length = 0;
  size_t header_end = raw.find("\r\n\r\n");
  size_t pos = line_end + 2;
  while (pos < header_end) {
    size_t eol = raw.find("\r\n", pos);
    std::string_view line(raw.data() + pos, eol - pos);
    size_t colon = line.find(':');
    if (colon != std::string_view::npos &&
        EqualsIgnoreCase(Trim(line.substr(0, colon)), "content-length")) {
      *content_length = static_cast<size_t>(
          std::atoll(std::string(Trim(line.substr(colon + 1))).c_str()));
    }
    pos = eol + 2;
  }
  request->body = raw.substr(header_end + 4);
  return true;
}

/// Value of `key` in a raw "a=1&b=2" query string ("" when absent). No
/// percent-decoding: monitor query values are metric-name substrings and
/// numbers.
std::string QueryParam(const std::string& query, const std::string& key) {
  for (const std::string& piece : Split(query, '&')) {
    size_t eq = piece.find('=');
    if (eq == std::string::npos) continue;
    if (piece.compare(0, eq, key) == 0) return piece.substr(eq + 1);
  }
  return "";
}

}  // namespace

MonitorOptions MonitorOptions::FromEnv(MonitorOptions base) {
  const char* port = std::getenv("CLAIMS_MONITOR_PORT");
  if (port != nullptr && port[0] != '\0') {
    base.enabled = true;
    base.port = std::atoi(port);
  }
  return base;
}

MonitorServer::MonitorServer(MonitorOptions options)
    : options_(std::move(options)),
      requests_metric_(MetricsRegistry::Global()->counter("monitor.requests")),
      errors_metric_(
          MetricsRegistry::Global()->counter("monitor.http_errors")),
      scrape_ns_metric_(
          MetricsRegistry::Global()->histogram("obs.scrape_ns")) {
  RegisterBuiltinRoutes();
}

MonitorServer::~MonitorServer() { Stop(); }

void MonitorServer::RegisterBuiltinRoutes() {
  AddHandler("GET", "/healthz", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
  });
  AddHandler("GET", "/metrics", [this](const HttpRequest&) {
    // Refresh process.* gauges per scrape: always current, no sampler thread.
    UpdateProcessGauges();
    const int64_t t0 = SteadyClock::Default()->NowNanos();
    HttpResponse response;
    response.content_type = kPrometheusContentType;
    {
      std::lock_guard<std::mutex> lock(scrape_mu_);
      PrometheusSnapshotTo(*MetricsRegistry::Global(), &scrape_scratch_);
      response.body = scrape_scratch_;
    }
    scrape_ns_metric_->Record(SteadyClock::Default()->NowNanos() - t0);
    return response;
  });
  AddHandler("GET", "/timeseries", [](const HttpRequest& request) {
    MetricSampler* sampler = MetricSampler::Default();
    if (sampler == nullptr) {
      return HttpResponse::Json(
          "{\"enabled\":false,\"series\":[],\"annotations\":[]}");
    }
    const std::string metric = QueryParam(request.query, "metric");
    int64_t window_ns = 0;
    const std::string window_s = QueryParam(request.query, "window");
    if (!window_s.empty()) {
      window_ns = static_cast<int64_t>(std::atof(window_s.c_str()) * 1e9);
    }
    if (QueryParam(request.query, "format") == "text") {
      return HttpResponse{200, "text/plain; charset=utf-8",
                          sampler->ToText(metric, window_ns)};
    }
    return HttpResponse::Json(sampler->ToJson(metric, window_ns));
  });
  AddHandler("GET", "/dash", [](const HttpRequest&) {
    return HttpResponse{200, "text/html; charset=utf-8", kDashboardHtml};
  });
  AddHandler("GET", "/profile", [](const HttpRequest&) {
    std::string body = "{\"profiles\":[";
    bool first = true;
    for (const auto& p : QueryProfiler::Global()->ListProfiles()) {
      if (!first) body.push_back(',');
      first = false;
      body += StrFormat(
          "{\"query_id\":%llu,\"label\":\"%s\",\"wall_ns\":%lld,"
          "\"critical_path_coverage\":%.6g}",
          static_cast<unsigned long long>(p->query_id),
          JsonEscape(p->label).c_str(), static_cast<long long>(p->wall_ns()),
          p->critical_path_coverage);
    }
    body += "]}";
    return HttpResponse::Json(std::move(body));
  });
  AddPrefixHandler("GET", "/profile/", [](const HttpRequest& request) {
    const std::string id_text = request.path.substr(strlen("/profile/"));
    char* end = nullptr;
    uint64_t id = std::strtoull(id_text.c_str(), &end, 10);
    if (end == id_text.c_str() || *end != '\0') {
      return HttpResponse{400, "text/plain; charset=utf-8",
                          "bad query id: " + id_text + "\n"};
    }
    auto profile = QueryProfiler::Global()->GetProfile(id);
    if (profile == nullptr) {
      return HttpResponse::NotFound("no profile for query " + id_text + "\n");
    }
    if (request.query == "format=text") {
      return HttpResponse{200, "text/plain; charset=utf-8",
                          profile->ToText()};
    }
    if (request.query == "format=perfetto") {
      return HttpResponse::Json(profile->ToPerfettoJson());
    }
    return HttpResponse::Json(profile->ToJson());
  });
  AddHandler("POST", "/flight-recorder/dump", [](const HttpRequest&) {
    TraceCollector* tc = TraceCollector::Global();
    return HttpResponse::Json(tc->ToChromeJson());
  });
  AddHandler("GET", "/", [this](const HttpRequest&) {
    std::string body = "claims monitor\n\nroutes:\n";
    std::lock_guard<std::mutex> lock(handlers_mu_);
    for (const auto& [key, handler] : handlers_) {
      body += StrFormat("  %-4s %s\n", key.first.c_str(), key.second.c_str());
    }
    for (const auto& [key, handler] : prefix_handlers_) {
      body += StrFormat("  %-4s %s*\n", key.first.c_str(), key.second.c_str());
    }
    return HttpResponse{200, "text/plain; charset=utf-8", std::move(body)};
  });
}

Status MonitorServer::Start() {
  if (!options_.enabled) return Status::OK();
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::Internal("monitor server already running");
  }
  CLAIMS_RETURN_IF_ERROR(
      listener_.Listen(options_.bind_address, options_.port));
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptorMain(); });
  CLAIMS_LOG(Info) << "monitor listening on http://" << options_.bind_address
                   << ":" << listener_.port();
  return Status::OK();
}

void MonitorServer::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  running_.store(false, std::memory_order_release);
  listener_.Close();  // wakes the blocked accept()
  if (acceptor_.joinable()) acceptor_.join();
}

bool MonitorServer::running() const {
  return running_.load(std::memory_order_acquire);
}

int MonitorServer::port() const {
  return running() ? listener_.port() : -1;
}

void MonitorServer::AddHandler(const std::string& method,
                               const std::string& path, Handler handler) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  handlers_[{ToUpper(method), path}] = std::move(handler);
}

void MonitorServer::RemoveHandler(const std::string& method,
                                  const std::string& path) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  handlers_.erase({ToUpper(method), path});
}

void MonitorServer::AddPrefixHandler(const std::string& method,
                                     const std::string& prefix,
                                     Handler handler) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  prefix_handlers_[{ToUpper(method), prefix}] = std::move(handler);
}

HttpResponse MonitorServer::Dispatch(const HttpRequest& request) const {
  Handler handler;
  bool path_known = false;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    auto it = handlers_.find({request.method, request.path});
    if (it != handlers_.end()) {
      handler = it->second;
    } else {
      // Longest matching prefix route for this method.
      size_t best_len = 0;
      for (const auto& [key, h] : prefix_handlers_) {
        if (request.path.rfind(key.second, 0) != 0) continue;
        if (key.first == request.method) {
          if (key.second.size() >= best_len) {
            best_len = key.second.size();
            handler = h;
          }
        } else {
          path_known = true;
        }
      }
    }
    if (handler == nullptr && !path_known) {
      for (const auto& [key, h] : handlers_) {
        if (key.second == request.path) {
          path_known = true;
          break;
        }
      }
    }
  }
  if (handler == nullptr) {
    return path_known
               ? HttpResponse{405, "text/plain; charset=utf-8",
                              "method not allowed\n"}
               : HttpResponse::NotFound("no route " + request.path + "\n");
  }
  return handler(request);
}

void MonitorServer::AcceptorMain() {
  for (;;) {
    Result<int> client = listener_.Accept();
    if (!client.ok()) {
      if (!running_.load(std::memory_order_acquire)) return;
      // Transient accept error (e.g. aborted connection): keep serving.
      continue;
    }
    ServeConnection(client.value());
    CloseSocket(client.value());
    if (!running_.load(std::memory_order_acquire)) return;
  }
}

void MonitorServer::ServeConnection(int fd) {
  requests_metric_->Add();
  std::string raw;
  int64_t past_header = ReadUntilHeaderEnd(fd, &raw, options_.max_request_bytes);
  HttpRequest request;
  size_t content_length = 0;
  if (past_header < 0 || !ParseRequest(raw, &request, &content_length)) {
    errors_metric_->Add();
    HttpResponse bad{400, "text/plain; charset=utf-8", "bad request\n"};
    std::string wire = SerializeResponse(bad);
    WriteFully(fd, wire.data(), wire.size());
    return;
  }
  if (content_length > options_.max_request_bytes) {
    errors_metric_->Add();
    HttpResponse big{413, "text/plain; charset=utf-8", "body too large\n"};
    std::string wire = SerializeResponse(big);
    WriteFully(fd, wire.data(), wire.size());
    return;
  }
  if (request.body.size() < content_length &&
      !ReadExact(fd, &request.body, content_length - request.body.size())) {
    errors_metric_->Add();
    return;  // peer hung up mid-body; nothing to answer
  }
  HttpResponse response = Dispatch(request);
  if (response.status >= 400) errors_metric_->Add();
  std::string wire = SerializeResponse(response);
  WriteFully(fd, wire.data(), wire.size());
}

}  // namespace claims
