#ifndef CLAIMS_OBS_TRACE_H_
#define CLAIMS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace claims {

/// One key/value annotation on a trace event. Keys must be string literals
/// (the collector stores the pointer, not a copy); values are numeric or
/// string. Construction only happens on the traced path — call sites guard
/// with `collector->enabled()` so the disabled path allocates nothing.
struct TraceArg {
  const char* key = nullptr;
  double num = 0;
  std::string str;
  bool is_str = false;

  TraceArg() = default;
  TraceArg(const char* k, double v) : key(k), num(v) {}
  TraceArg(const char* k, int64_t v) : key(k), num(static_cast<double>(v)) {}
  TraceArg(const char* k, int v) : key(k), num(v) {}
  TraceArg(const char* k, std::string v)
      : key(k), str(std::move(v)), is_str(true) {}
  TraceArg(const char* k, const char* v) : key(k), str(v), is_str(true) {}
};

/// A typed span/instant/counter event in the Chrome trace_event model
/// (https://ui.perfetto.dev renders the exported JSON directly).
///
/// Conventions in this codebase:
///  * `pid` identifies the substrate "process": real-engine node ids are
///    0..k-1; virtual-time simulator nodes are 1000+node, so one capture can
///    hold both worlds without track collisions.
///  * `ts_ns` comes from the emitter's own claims::Clock — wall-clock
///    nanoseconds in the real engine, virtual nanoseconds in the simulator —
///    so the same scheduler code traces identically on either substrate.
struct TraceEvent {
  enum class Phase : char {
    kBegin = 'B',     ///< span open (paired with kEnd on the same pid/tid)
    kEnd = 'E',       ///< span close
    kComplete = 'X',  ///< self-contained span with duration
    kInstant = 'i',   ///< point event
    kCounter = 'C',   ///< time series sample (args carry the values)
  };
  static constexpr int kMaxArgs = 4;

  std::string name;
  const char* category = "";  ///< static string (e.g. "sched", "net")
  Phase phase = Phase::kInstant;
  int64_t ts_ns = 0;
  int64_t dur_ns = 0;  ///< kComplete only
  int pid = 0;
  int64_t tid = 0;
  /// Global emission order, assigned by the collector: strictly increasing
  /// across threads, so concurrent emitters retain a stable total order even
  /// when timestamps collide (virtual time makes collisions routine).
  int64_t seq = 0;
  TraceArg args[kMaxArgs];
  int num_args = 0;

  void AddArg(TraceArg arg) {
    if (num_args < kMaxArgs) args[num_args++] = std::move(arg);
  }
};

/// Lock-cheap collector of trace events (DESIGN.md "Observability").
///
/// Writers append under one of `kShards` striped mutexes picked by thread id,
/// so concurrent workers rarely contend and the simulator's single thread
/// pays one uncontended lock per event. The enabled check is an inlined
/// relaxed atomic load; when disabled every emit helper is a branch and
/// nothing — no lock, no allocation — which keeps the hooks compiled into
/// hot paths (scheduler tick, block send) effectively free.
class MetricCounter;

class TraceCollector {
 public:
  TraceCollector();
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(TraceCollector);

  /// Process-wide collector every subsystem emits into by default.
  static TraceCollector* Global();

  /// Small dense id of the calling thread (stable for the thread's lifetime);
  /// used as the default `tid` of emitted events.
  static int64_t CurrentThreadId();

  void Enable() { enabled_.store(true, std::memory_order_release); }
  void Disable() { enabled_.store(false, std::memory_order_release); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Flight-recorder mode (the monitoring plane's always-on capture): bounds
  /// the collector to roughly `event_capacity` events split across the
  /// shards; once a shard's ring is full each new event overwrites the
  /// oldest and the dropped-event counter ("trace.dropped_events" in the
  /// MetricsRegistry) increments — memory stays bounded under sustained
  /// load and a Snapshot()/dump always holds the most recent window.
  /// Clears any buffered events; capacity 0 restores unbounded capture.
  /// Does not toggle enabled().
  void ConfigureFlightRecorder(size_t event_capacity);
  /// Total configured ring capacity (0 = unbounded capture mode).
  size_t flight_recorder_capacity() const {
    return ring_capacity_per_shard_.load(std::memory_order_relaxed) * kShards;
  }
  /// Events overwritten since the ring was configured (0 when unbounded).
  int64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Records `ev`, stamping its global sequence number. If `ev.tid` is the
  /// default 0 the calling thread's id is filled in. No-op when disabled.
  void Emit(TraceEvent ev);

  // --- convenience emitters (guard with enabled() before building args) ----

  void Instant(int64_t ts_ns, int pid, const char* category, std::string name,
               std::initializer_list<TraceArg> args = {});

  /// Counter sample: one numeric series named `name` on process `pid`.
  void Counter(int64_t ts_ns, int pid, std::string name, double value);

  /// Self-contained span [ts_ns, ts_ns + dur_ns).
  void Complete(int64_t ts_ns, int64_t dur_ns, int pid, const char* category,
                std::string name, std::initializer_list<TraceArg> args = {});

  /// All recorded events, sorted by (ts_ns, seq).
  std::vector<TraceEvent> Snapshot() const;

  size_t size() const;
  void Clear();

  /// Chrome trace_event JSON ({"traceEvents":[...]}) — loadable in
  /// ui.perfetto.dev or chrome://tracing.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

 private:
  static constexpr int kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
    /// Next overwrite position once the ring is full (flight recorder only).
    size_t ring_pos = 0;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> next_seq_{0};
  /// Per-shard ring bound; 0 = unbounded. Written under all shard locks,
  /// read under the target shard's lock on the emit path.
  std::atomic<size_t> ring_capacity_per_shard_{0};
  std::atomic<int64_t> dropped_{0};
  MetricCounter* dropped_metric_;  ///< resolved once in the constructor
  Shard shards_[kShards];
};

/// Enables the global collector when the CLAIMS_TRACE environment variable
/// names an output path, and writes the Perfetto JSON there on destruction.
/// Examples and benches wrap main() bodies in one of these so
/// `CLAIMS_TRACE=trace.json ./adaptive_pipeline` captures a trace with zero
/// code changes elsewhere.
class TraceEnvScope {
 public:
  TraceEnvScope();
  ~TraceEnvScope();
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(TraceEnvScope);

  bool active() const { return !path_.empty(); }

 private:
  std::string path_;
};

}  // namespace claims

#endif  // CLAIMS_OBS_TRACE_H_
