#ifndef CLAIMS_OBS_PROFILE_SPAN_H_
#define CLAIMS_OBS_PROFILE_SPAN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace claims {

/// Typed span kinds of the causal query profiler. The kinds mirror the
/// paper's time-accounting vocabulary: a segment's wall time decomposes into
/// operator work, starvation (blocked-on-input), backpressure
/// (blocked-on-output), and exchange transfer — the same attribution both
/// "To pipeline or not to pipeline" and the ROADMAP's overhead figures need.
enum class SpanKind : uint8_t {
  kQuery = 0,       ///< whole distributed execution (one per query)
  kSegment,         ///< one segment instance's driver lifetime ("S1@n0")
  kWorker,          ///< one elastic worker's attach→detach inside a segment
  kOperator,        ///< one operator's aggregate time inside a segment
  kBlockedInput,    ///< a consumer starved waiting on an exchange
  kBlockedOutput,   ///< a producer stalled on joint-buffer backpressure
  kNetSend,         ///< one wire batch leaving a sender pump
  kNetRecv,         ///< the matching batch surfacing at a merger
  kSchedulerWait,   ///< admission / dispatch queue wait
};

const char* SpanKindName(SpanKind kind);

/// One completed (or, in the open-span registry, still-open) profiler span.
///
/// `segment` is the grouping key ("S2@n1"): parent/child structure inside a
/// segment instance is by containment + op ids, never by fragile pointer
/// identity, so spans from different nodes stitch without coordination.
///
/// The causal link key is {exchange_id, from_node, to_node, wire_seq}:
/// exchange ids are globally namespaced per in-flight query
/// (ExecOptions::exchange_id_base) and wire sequence numbers are assigned
/// per (producer, channel) on successful enqueue — retries keep their seq and
/// duplicates are suppressed at the receiver, so each key matches at most one
/// kNetSend span to at most one kNetRecv span on either the real network or
/// the virtual-time simulator.
struct ProfSpan {
  uint64_t query_id = 0;
  SpanKind kind = SpanKind::kOperator;
  std::string name;     ///< operator label, exchange name, worker id, ...
  std::string segment;  ///< owning segment instance; empty for kQuery
  int node = 0;
  int64_t tid = 0;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  int64_t tuples = 0;
  /// Payload bytes (kNetSend/kNetRecv); kOperator spans carry their Next()
  /// call count here instead.
  int64_t bytes = 0;
  /// Accumulated active time across the elastic workers that drove this span
  /// (kOperator / kWorker): with N workers inside one wall interval, busy_ns
  /// can exceed end_ns − start_ns. 0 means "use the wall extent".
  int64_t busy_ns = 0;

  /// Operator-tree attribution (kOperator): ids assigned pre-order at plan
  /// build, so exclusive = inclusive − Σ inclusive(children).
  int op_id = -1;
  int parent_op = -1;

  /// Causal link key (kNetSend / kNetRecv; blocked-input spans record the
  /// key of the batch whose arrival unblocked them). Span-level wire_seq is
  /// 1-based — the channel's sequence + 1 — so 0 stays "no link recorded"
  /// (the channel's own numbering starts at 0).
  int64_t exchange_id = -1;
  int from_node = -1;
  int to_node = -1;
  uint64_t wire_seq = 0;

  int64_t dur_ns() const { return end_ns - start_ns; }
};

/// One scheduler tick's decision audit (paper Algorithm 1, made reviewable):
/// for every segment the tick saw, the realized rate it measured, the
/// normalized R_i it derived, the λ it published, the action it took — and
/// the rate it *predicted* the segment would realize by the next tick, so
/// over/under-provisioning is visible per decision rather than only in
/// aggregate. Defined here (obs) so core/DynamicScheduler can record it and
/// the assembler can render it without obs depending upward.
struct SchedTickAudit {
  int64_t tick = 0;
  int64_t ts_ns = 0;
  int node = 0;
  double lambda_local = -1;   ///< min R_i this node computed this tick
  double lambda_global = -1;  ///< board value the decisions compared against

  struct Segment {
    std::string name;
    uint64_t query_id = 0;
    int parallelism = 0;         ///< after this tick's action
    double rate = -1;            ///< realized tuples/s over the tick window
    double normalized_rate = -1; ///< R_i = rate / V_i
    /// Rate the previous tick predicted this segment would realize at its
    /// post-action parallelism (scalability-vector estimate); -1 when the
    /// previous tick made no prediction (first sample, segment just placed).
    double predicted_rate = -1;
    double blocked_in = 0;   ///< fraction of worker time starved
    double blocked_out = 0;  ///< fraction of worker time backpressured
    std::string action;      ///< "expand+1", "shrink-1", "move", "hold", ...
  };
  std::vector<Segment> segments;
};

}  // namespace claims

#endif  // CLAIMS_OBS_PROFILE_SPAN_H_
