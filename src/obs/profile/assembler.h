#ifndef CLAIMS_OBS_PROFILE_ASSEMBLER_H_
#define CLAIMS_OBS_PROFILE_ASSEMBLER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/profile/span.h"

namespace claims {

/// Per-operator time attribution inside one segment instance. Inclusive time
/// is the operator's accumulated active time across all elastic workers;
/// exclusive subtracts the children's inclusive time, so per segment the
/// exclusive times telescope back to the root operator's inclusive time.
struct ProfOperatorStat {
  std::string name;
  std::string segment;
  int node = 0;
  int op_id = -1;
  int parent_op = -1;
  int64_t inclusive_ns = 0;
  int64_t exclusive_ns = 0;
  int64_t calls = 0;
  int64_t rows = 0;
};

/// One step of the critical path: a half-open wall-clock interval attributed
/// to a segment's compute, an exchange transfer, an unresolved input wait,
/// startup, or the final result gather. Steps partition the query's wall
/// time walking backward from completion, so their durations sum to
/// (coverage × wall).
struct ProfPathStep {
  std::string what;     ///< "compute", "exchange", "blocked-input",
                        ///< "startup", "result-gather"
  std::string segment;  ///< attributed segment ("S1@n0"); producer→consumer
                        ///< for exchange steps
  std::string detail;   ///< e.g. "backpressured 43% of interval"
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  double pct = 0;       ///< share of query wall time

  int64_t dur_ns() const { return end_ns - start_ns; }
};

/// The stitched per-query DAG: every span the distributed execution emitted,
/// reduced to per-operator attribution, a critical path, and the scheduler's
/// decision audit for the segments involved. Immutable once assembled;
/// shared between the /profile endpoint, ExecutionReport, and exports.
struct QueryProfile {
  uint64_t query_id = 0;
  std::string label;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  int64_t wall_ns() const { return end_ns - start_ns; }

  std::vector<ProfSpan> spans;  ///< sorted by (start, end)
  std::vector<ProfOperatorStat> operators;
  std::vector<ProfPathStep> critical_path;
  /// Fraction of wall time the critical path accounts for.
  double critical_path_coverage = 0;
  /// Σ root-operator inclusive time across segment instances.
  int64_t operator_total_ns = 0;
  int64_t operator_exclusive_sum_ns = 0;
  /// Matched kNetSend→kNetRecv pairs / total kNetRecv spans.
  int64_t linked_recv_spans = 0;
  int64_t total_recv_spans = 0;
  std::vector<SchedTickAudit> audit;
  int64_t dropped_spans = 0;

  /// Machine view for GET /profile/<id>.
  std::string ToJson() const;
  /// Human view: critical path, ASCII timeline, operator table, audit tail.
  std::string ToText() const;
  /// Chrome trace_event JSON with flow arrows ("s"/"f" phases) across
  /// exchanges — drop into ui.perfetto.dev.
  std::string ToPerfettoJson() const;
  /// Short block appended to ExecutionReport::ToString.
  std::string Summary() const;
};

struct AssembleInput {
  uint64_t query_id = 0;
  std::string label;
  int64_t start_ns = 0;  ///< execution start (profiler clock domain)
  int64_t end_ns = 0;    ///< result drained
  std::vector<ProfSpan> spans;
  std::vector<SchedTickAudit> audit;
  int64_t dropped_spans = 0;
};

/// Stitches the per-node span logs of one query into a QueryProfile:
/// computes operator inclusive/exclusive attribution, walks the critical
/// path backward from completion (jumping producer-ward across exchanges via
/// the {exchange, from, to, wire_seq} link keys), and retains the decision
/// audit. Pure function of its input — callers typically feed it
/// QueryProfiler::TakeQuery(id) plus the schedulers' audit logs.
std::shared_ptr<const QueryProfile> AssembleQueryProfile(AssembleInput input);

}  // namespace claims

#endif  // CLAIMS_OBS_PROFILE_ASSEMBLER_H_
