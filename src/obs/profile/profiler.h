#ifndef CLAIMS_OBS_PROFILE_PROFILER_H_
#define CLAIMS_OBS_PROFILE_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "obs/profile/span.h"

namespace claims {

struct QueryProfile;

/// Process-wide collector of profiler spans, layered beside TraceCollector
/// with the same cost model: the armed check is an inlined relaxed atomic
/// load, so every hook compiled into a hot path (worker loop, sender pump,
/// buffer insert) is a predictable branch and nothing else while disarmed —
/// no lock, no allocation (verified by bench/fig09_overhead).
///
/// Two stores:
///  * a sharded completed-span log (striped mutexes picked by thread id,
///    bounded per shard; overflow increments profiler.dropped_spans), drained
///    per query by the post-execution assembler via TakeQuery();
///  * a small open-span registry for spans whose end is not yet known —
///    blocked-on-input/-output waits register here once they exceed the
///    reporting threshold, so a StallWatchdog incident can say what every
///    wedged segment was blocked on *at that moment* (OpenSpansText).
///
/// Assembled profiles live in a bounded ring keyed by query id, serving
/// `GET /profile/<id>` directly from the obs layer.
class QueryProfiler {
 public:
  QueryProfiler();
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(QueryProfiler);

  static QueryProfiler* Global();

  void Arm() { armed_.store(true, std::memory_order_release); }
  void Disarm() { armed_.store(false, std::memory_order_release); }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Blocked waits shorter than this are folded into their segment's
  /// aggregate counters instead of materializing a span — bounds span volume
  /// on chatty exchanges without losing anything the critical path needs.
  static constexpr int64_t kMinBlockedSpanNs = 100'000;  // 100 µs

  /// Records a finished span. No-op while disarmed (call sites still guard
  /// with armed() so argument construction is skipped too).
  void EmitComplete(ProfSpan span);

  // --- open-span registry ---------------------------------------------------

  /// Registers a span whose end is unknown (start_ns filled, end_ns ignored).
  /// Returns a token for EndOpen/AbortOpen; 0 when disarmed or the registry
  /// is full (callers treat 0 as "not registered" and skip the close).
  uint64_t BeginOpen(ProfSpan span);

  /// Closes an open span and moves it to the completed log. The resolving
  /// link key (the wire batch whose arrival ended a blocked-input wait) can
  /// be stamped here, after the fact. Unknown tokens are ignored.
  void EndOpen(uint64_t token, int64_t end_ns, uint64_t resolved_wire_seq = 0,
               int resolved_from_node = -1);

  /// Drops an open span without recording it (cancelled query teardown).
  void AbortOpen(uint64_t token);

  std::vector<ProfSpan> OpenSpans() const;
  /// Human-readable open-span inventory for watchdog incident reports;
  /// empty string when nothing is open (the provider contributes nothing).
  std::string OpenSpansText() const;
  size_t open_span_count() const;

  // --- completed-span log ---------------------------------------------------

  /// Extracts and removes every completed span of `query_id`.
  std::vector<ProfSpan> TakeQuery(uint64_t query_id);

  size_t size() const;
  int64_t dropped_spans() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Clears spans and open registry (tests; profile ring survives).
  void Clear();

  // --- assembled-profile ring ----------------------------------------------

  void StoreProfile(std::shared_ptr<const QueryProfile> profile);
  std::shared_ptr<const QueryProfile> GetProfile(uint64_t query_id) const;
  /// Most recent profiles, oldest first.
  std::vector<std::shared_ptr<const QueryProfile>> ListProfiles() const;

 private:
  static constexpr int kShards = 16;
  static constexpr size_t kMaxSpansPerShard = 8192;
  static constexpr size_t kMaxOpenSpans = 4096;
  static constexpr size_t kProfileRingCap = 64;

  struct Shard {
    mutable std::mutex mu;
    std::vector<ProfSpan> spans;
  };

  std::atomic<bool> armed_{false};
  std::atomic<int64_t> dropped_{0};
  Shard shards_[kShards];

  mutable std::mutex open_mu_;
  std::unordered_map<uint64_t, ProfSpan> open_;
  uint64_t next_token_ = 1;

  mutable std::mutex profiles_mu_;
  std::deque<std::shared_ptr<const QueryProfile>> profiles_;
};

/// Arms the global profiler for a scope (tests, benches).
class ProfilerArmScope {
 public:
  ProfilerArmScope() { QueryProfiler::Global()->Arm(); }
  ~ProfilerArmScope() { QueryProfiler::Global()->Disarm(); }
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(ProfilerArmScope);
};

}  // namespace claims

#endif  // CLAIMS_OBS_PROFILE_PROFILER_H_
