#include "obs/profile/profiler.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/metrics_registry.h"
#include "obs/profile/assembler.h"
#include "obs/trace.h"

namespace claims {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kQuery: return "query";
    case SpanKind::kSegment: return "segment";
    case SpanKind::kWorker: return "worker";
    case SpanKind::kOperator: return "operator";
    case SpanKind::kBlockedInput: return "blocked-input";
    case SpanKind::kBlockedOutput: return "blocked-output";
    case SpanKind::kNetSend: return "net-send";
    case SpanKind::kNetRecv: return "net-recv";
    case SpanKind::kSchedulerWait: return "scheduler-wait";
  }
  return "?";
}

QueryProfiler::QueryProfiler() = default;

QueryProfiler* QueryProfiler::Global() {
  static QueryProfiler* instance = new QueryProfiler();
  return instance;
}

void QueryProfiler::EmitComplete(ProfSpan span) {
  if (!armed()) return;
  if (span.tid == 0) span.tid = TraceCollector::CurrentThreadId();
  Shard& shard = shards_[static_cast<size_t>(TraceCollector::CurrentThreadId())
                         % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.spans.size() >= kMaxSpansPerShard) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::Global()->counter("profiler.dropped_spans")->Add();
    return;
  }
  shard.spans.push_back(std::move(span));
}

uint64_t QueryProfiler::BeginOpen(ProfSpan span) {
  if (!armed()) return 0;
  if (span.tid == 0) span.tid = TraceCollector::CurrentThreadId();
  std::lock_guard<std::mutex> lock(open_mu_);
  if (open_.size() >= kMaxOpenSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  uint64_t token = next_token_++;
  open_.emplace(token, std::move(span));
  return token;
}

void QueryProfiler::EndOpen(uint64_t token, int64_t end_ns,
                            uint64_t resolved_wire_seq,
                            int resolved_from_node) {
  if (token == 0) return;
  ProfSpan span;
  {
    std::lock_guard<std::mutex> lock(open_mu_);
    auto it = open_.find(token);
    if (it == open_.end()) return;
    span = std::move(it->second);
    open_.erase(it);
  }
  span.end_ns = end_ns;
  if (resolved_wire_seq != 0) span.wire_seq = resolved_wire_seq;
  if (resolved_from_node >= 0) span.from_node = resolved_from_node;
  // Profiler may have been disarmed between Begin and End: still record, so
  // the span does not vanish mid-flight — TakeQuery bounds lifetime anyway.
  Shard& shard = shards_[static_cast<size_t>(TraceCollector::CurrentThreadId())
                         % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.spans.size() >= kMaxSpansPerShard) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  shard.spans.push_back(std::move(span));
}

void QueryProfiler::AbortOpen(uint64_t token) {
  if (token == 0) return;
  std::lock_guard<std::mutex> lock(open_mu_);
  open_.erase(token);
}

std::vector<ProfSpan> QueryProfiler::OpenSpans() const {
  std::vector<ProfSpan> out;
  std::lock_guard<std::mutex> lock(open_mu_);
  out.reserve(open_.size());
  for (const auto& [token, span] : open_) out.push_back(span);
  std::sort(out.begin(), out.end(),
            [](const ProfSpan& a, const ProfSpan& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

std::string QueryProfiler::OpenSpansText() const {
  std::vector<ProfSpan> spans = OpenSpans();
  if (spans.empty()) return std::string();
  std::string out =
      StrFormat("%zu open span(s) at incident time:\n", spans.size());
  for (const ProfSpan& s : spans) {
    out += StrFormat("  q%llu %-14s %-10s %s since t=%.3f ms",
                     static_cast<unsigned long long>(s.query_id),
                     SpanKindName(s.kind), s.segment.c_str(), s.name.c_str(),
                     s.start_ns / 1e6);
    if (s.exchange_id >= 0) {
      out += StrFormat(" (exchange %lld)", static_cast<long long>(s.exchange_id));
    }
    out.push_back('\n');
  }
  return out;
}

size_t QueryProfiler::open_span_count() const {
  std::lock_guard<std::mutex> lock(open_mu_);
  return open_.size();
}

std::vector<ProfSpan> QueryProfiler::TakeQuery(uint64_t query_id) {
  std::vector<ProfSpan> out;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto keep = shard.spans.begin();
    for (auto it = shard.spans.begin(); it != shard.spans.end(); ++it) {
      if (it->query_id == query_id) {
        out.push_back(std::move(*it));
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    shard.spans.erase(keep, shard.spans.end());
  }
  std::sort(out.begin(), out.end(),
            [](const ProfSpan& a, const ProfSpan& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.end_ns < b.end_ns;
            });
  return out;
}

size_t QueryProfiler::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.spans.size();
  }
  return total;
}

void QueryProfiler::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.spans.clear();
  }
  std::lock_guard<std::mutex> lock(open_mu_);
  open_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void QueryProfiler::StoreProfile(std::shared_ptr<const QueryProfile> profile) {
  if (profile == nullptr) return;
  std::lock_guard<std::mutex> lock(profiles_mu_);
  // Re-runs of the same query id (wlm retry) replace the stale profile.
  for (auto it = profiles_.begin(); it != profiles_.end(); ++it) {
    if ((*it)->query_id == profile->query_id) {
      profiles_.erase(it);
      break;
    }
  }
  profiles_.push_back(std::move(profile));
  while (profiles_.size() > kProfileRingCap) profiles_.pop_front();
}

std::shared_ptr<const QueryProfile> QueryProfiler::GetProfile(
    uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(profiles_mu_);
  for (const auto& p : profiles_) {
    if (p->query_id == query_id) return p;
  }
  return nullptr;
}

std::vector<std::shared_ptr<const QueryProfile>> QueryProfiler::ListProfiles()
    const {
  std::lock_guard<std::mutex> lock(profiles_mu_);
  return {profiles_.begin(), profiles_.end()};
}

}  // namespace claims
