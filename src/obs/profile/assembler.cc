#include "obs/profile/assembler.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>

#include "common/string_util.h"
#include "obs/profile/profiler.h"

namespace claims {
namespace {

using SendKey = std::tuple<int64_t, int, int, uint64_t>;  // exch, from, to, seq

void AppendJsonStr(std::string* out, const std::string& s) {
  out->push_back('"');
  AppendJsonEscaped(out, s);
  out->push_back('"');
}

std::string JsonNum(double v) {
  if (v != v || v > 1e300 || v < -1e300) return "-1";
  return StrFormat("%.6g", v);
}

double Ms(int64_t ns) { return static_cast<double>(ns) / 1e6; }

/// Total overlap of [s, e) with the union of the given intervals (sorted by
/// start, possibly overlapping each other).
int64_t UnionOverlap(const std::vector<std::pair<int64_t, int64_t>>& ivals,
                     int64_t s, int64_t e) {
  int64_t covered = 0;
  int64_t cursor = s;
  for (const auto& [a, b] : ivals) {
    if (b <= cursor) continue;
    if (a >= e) break;
    int64_t lo = std::max(a, cursor);
    int64_t hi = std::min(b, e);
    if (hi > lo) covered += hi - lo;
    cursor = std::max(cursor, hi);
    if (cursor >= e) break;
  }
  return covered;
}

}  // namespace

std::shared_ptr<const QueryProfile> AssembleQueryProfile(AssembleInput input) {
  auto profile = std::make_shared<QueryProfile>();
  QueryProfile* p = profile.get();
  p->query_id = input.query_id;
  p->label = std::move(input.label);
  p->start_ns = input.start_ns;
  p->end_ns = std::max(input.end_ns, input.start_ns + 1);
  p->spans = std::move(input.spans);
  p->audit = std::move(input.audit);
  p->dropped_spans = input.dropped_spans;
  std::sort(p->spans.begin(), p->spans.end(),
            [](const ProfSpan& a, const ProfSpan& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.end_ns < b.end_ns;
            });

  // --- indexes --------------------------------------------------------------
  std::map<std::string, const ProfSpan*> seg_spans;
  std::map<std::string, std::vector<const ProfSpan*>> blocked_in;
  std::map<std::string, std::vector<std::pair<int64_t, int64_t>>> blocked_out;
  std::map<SendKey, const ProfSpan*> sends;
  for (const ProfSpan& s : p->spans) {
    switch (s.kind) {
      case SpanKind::kSegment: {
        const ProfSpan*& slot = seg_spans[s.segment];
        if (slot == nullptr || s.dur_ns() > slot->dur_ns()) slot = &s;
        break;
      }
      case SpanKind::kBlockedInput:
        blocked_in[s.segment].push_back(&s);
        break;
      case SpanKind::kBlockedOutput:
        blocked_out[s.segment].emplace_back(s.start_ns, s.end_ns);
        break;
      case SpanKind::kNetSend:
        sends[{s.exchange_id, s.from_node, s.to_node, s.wire_seq}] = &s;
        break;
      case SpanKind::kNetRecv:
        ++p->total_recv_spans;
        break;
      default:
        break;
    }
  }
  for (auto& [seg, spans] : blocked_in) {
    std::sort(spans.begin(), spans.end(),
              [](const ProfSpan* a, const ProfSpan* b) {
                return a->end_ns < b->end_ns;
              });
  }
  for (const ProfSpan& s : p->spans) {
    if (s.kind == SpanKind::kNetRecv &&
        sends.count({s.exchange_id, s.from_node, s.to_node, s.wire_seq})) {
      ++p->linked_recv_spans;
    }
  }

  // --- per-operator inclusive/exclusive attribution -------------------------
  std::map<std::pair<std::string, int>, ProfOperatorStat> ops;
  for (const ProfSpan& s : p->spans) {
    if (s.kind != SpanKind::kOperator || s.op_id < 0) continue;
    ProfOperatorStat& st = ops[{s.segment, s.op_id}];
    st.name = s.name;
    st.segment = s.segment;
    st.node = s.node;
    st.op_id = s.op_id;
    st.parent_op = s.parent_op;
    st.inclusive_ns += s.busy_ns > 0 ? s.busy_ns : s.dur_ns();
    st.calls += s.bytes;  // kOperator spans carry the Next() call count here
    st.rows += s.tuples;
  }
  std::map<std::pair<std::string, int>, int64_t> child_sum;
  for (const auto& [key, st] : ops) {
    if (st.parent_op >= 0) {
      child_sum[{st.segment, st.parent_op}] += st.inclusive_ns;
    }
  }
  for (auto& [key, st] : ops) {
    auto it = child_sum.find(key);
    int64_t children = it == child_sum.end() ? 0 : it->second;
    st.exclusive_ns = std::max<int64_t>(0, st.inclusive_ns - children);
    p->operator_exclusive_sum_ns += st.exclusive_ns;
    if (st.parent_op < 0) p->operator_total_ns += st.inclusive_ns;
    p->operators.push_back(st);
  }

  // --- critical path: backward time-partition walk --------------------------
  const int64_t q0 = p->start_ns;
  const int64_t q1 = p->end_ns;
  std::vector<ProfPathStep> path;  // built backward, reversed at the end
  auto add_step = [&](const char* what, std::string segment,
                      std::string detail, int64_t s, int64_t e) {
    s = std::max(s, q0);
    e = std::min(e, q1);
    if (e <= s) return;
    ProfPathStep step;
    step.what = what;
    step.segment = std::move(segment);
    step.detail = std::move(detail);
    step.start_ns = s;
    step.end_ns = e;
    step.pct = static_cast<double>(e - s) / static_cast<double>(q1 - q0);
    path.push_back(std::move(step));
  };
  auto compute_detail = [&](const std::string& seg, int64_t s,
                            int64_t e) -> std::string {
    auto it = blocked_out.find(seg);
    if (it == blocked_out.end() || e <= s) return std::string();
    auto ivals = it->second;
    std::sort(ivals.begin(), ivals.end());
    int64_t bp = UnionOverlap(ivals, s, e);
    double frac = static_cast<double>(bp) / static_cast<double>(e - s);
    if (frac < 0.05) return std::string();
    return StrFormat("backpressured %.0f%% of interval", frac * 100);
  };

  const ProfSpan* cur = nullptr;
  for (const auto& [seg, span] : seg_spans) {
    if (cur == nullptr || span->end_ns > cur->end_ns) cur = span;
  }
  if (cur != nullptr) {
    int64_t t = std::min(cur->end_ns, q1);
    add_step("result-gather", cur->segment, "", t, q1);
    for (int guard = 0; guard < 512 && cur != nullptr; ++guard) {
      // Latest starvation wait of this segment ending at or before t.
      const ProfSpan* b = nullptr;
      auto bit = blocked_in.find(cur->segment);
      if (bit != blocked_in.end()) {
        for (auto rit = bit->second.rbegin(); rit != bit->second.rend();
             ++rit) {
          if ((*rit)->end_ns <= t && (*rit)->end_ns > cur->start_ns) {
            b = *rit;
            break;
          }
        }
      }
      if (b == nullptr) {
        add_step("compute", cur->segment,
                 compute_detail(cur->segment, cur->start_ns, t),
                 cur->start_ns, t);
        add_step("startup", cur->segment, "", q0, cur->start_ns);
        break;
      }
      add_step("compute", cur->segment,
               compute_detail(cur->segment, b->end_ns, t), b->end_ns, t);
      const ProfSpan* send = nullptr;
      if (b->wire_seq != 0) {
        auto sit = sends.find(
            {b->exchange_id, b->from_node, b->node, b->wire_seq});
        if (sit != sends.end()) send = sit->second;
      }
      if (send != nullptr && send->start_ns < b->end_ns) {
        add_step("exchange", send->segment + "->" + cur->segment,
                 StrFormat("exchange %lld, seq %llu",
                           static_cast<long long>(b->exchange_id),
                           static_cast<unsigned long long>(b->wire_seq)),
                 send->start_ns, b->end_ns);
        auto pit = seg_spans.find(send->segment);
        if (pit == seg_spans.end()) {
          add_step("startup", send->segment, "", q0, send->start_ns);
          break;
        }
        cur = pit->second;
        t = send->start_ns;
      } else {
        add_step("blocked-input", cur->segment,
                 StrFormat("exchange %lld, unresolved",
                           static_cast<long long>(b->exchange_id)),
                 b->start_ns, b->end_ns);
        t = b->start_ns;
      }
    }
  }
  std::reverse(path.begin(), path.end());
  int64_t attributed = 0;
  for (const ProfPathStep& step : path) attributed += step.dur_ns();
  p->critical_path = std::move(path);
  p->critical_path_coverage =
      std::min(1.0, static_cast<double>(attributed) /
                        static_cast<double>(q1 - q0));
  return profile;
}

// --- rendering --------------------------------------------------------------

namespace {

/// One timeline row per segment instance: '#' running, '.' starved,
/// 'o' backpressured, ' ' outside the segment's lifetime.
std::string AsciiTimeline(const QueryProfile& p, int width) {
  std::map<std::string, const ProfSpan*> segs;
  std::map<std::string, std::vector<const ProfSpan*>> waits;
  for (const ProfSpan& s : p.spans) {
    if (s.kind == SpanKind::kSegment) {
      const ProfSpan*& slot = segs[s.segment];
      if (slot == nullptr || s.dur_ns() > slot->dur_ns()) slot = &s;
    } else if (s.kind == SpanKind::kBlockedInput ||
               s.kind == SpanKind::kBlockedOutput) {
      waits[s.segment].push_back(&s);
    }
  }
  if (segs.empty()) return std::string();
  const double span_ns = static_cast<double>(p.wall_ns());
  std::string out = StrFormat(
      "timeline [0, %.3f ms], %d cols ('#'=run '.'=blocked-in "
      "'o'=blocked-out):\n",
      Ms(p.wall_ns()), width);
  for (const auto& [name, seg] : segs) {
    std::string row(static_cast<size_t>(width), ' ');
    auto col = [&](int64_t ns) {
      double f = static_cast<double>(ns - p.start_ns) / span_ns;
      int c = static_cast<int>(f * width);
      return std::min(std::max(c, 0), width - 1);
    };
    for (int c = col(seg->start_ns); c <= col(seg->end_ns - 1); ++c) {
      row[static_cast<size_t>(c)] = '#';
    }
    auto wit = waits.find(name);
    if (wit != waits.end()) {
      for (const ProfSpan* w : wit->second) {
        char mark = w->kind == SpanKind::kBlockedInput ? '.' : 'o';
        for (int c = col(w->start_ns); c <= col(w->end_ns - 1); ++c) {
          row[static_cast<size_t>(c)] = mark;
        }
      }
    }
    out += StrFormat("  %-10s |%s|\n", name.c_str(), row.c_str());
  }
  return out;
}

}  // namespace

std::string QueryProfile::ToText() const {
  std::string out = StrFormat(
      "profile q%llu (%s): wall %.3f ms, %zu spans (%lld dropped), "
      "critical path %.1f%% of wall\n",
      static_cast<unsigned long long>(query_id), label.c_str(), Ms(wall_ns()),
      spans.size(), static_cast<long long>(dropped_spans),
      critical_path_coverage * 100);
  out += "critical path (backward from completion):\n";
  for (const ProfPathStep& s : critical_path) {
    out += StrFormat("  %5.1f%%  %-13s %-18s [%9.3f, %9.3f) ms  %s\n",
                     s.pct * 100, s.what.c_str(), s.segment.c_str(),
                     Ms(s.start_ns - start_ns), Ms(s.end_ns - start_ns),
                     s.detail.c_str());
  }
  out += AsciiTimeline(*this, 64);
  if (!operators.empty()) {
    out += StrFormat(
        "operators (Σ exclusive %.3f ms of %.3f ms total operator time):\n",
        Ms(operator_exclusive_sum_ns), Ms(operator_total_ns));
    out += "  segment    op  parent  name                incl-ms   excl-ms"
           "      calls       rows\n";
    for (const ProfOperatorStat& op : operators) {
      out += StrFormat("  %-9s %3d  %6d  %-18s %9.3f %9.3f %10lld %10lld\n",
                       op.segment.c_str(), op.op_id, op.parent_op,
                       op.name.c_str(), Ms(op.inclusive_ns),
                       Ms(op.exclusive_ns), static_cast<long long>(op.calls),
                       static_cast<long long>(op.rows));
    }
  }
  if (!audit.empty()) {
    size_t show = std::min<size_t>(audit.size(), 8);
    out += StrFormat("scheduler decision audit (last %zu of %zu ticks):\n",
                     show, audit.size());
    for (size_t i = audit.size() - show; i < audit.size(); ++i) {
      const SchedTickAudit& a = audit[i];
      out += StrFormat("  tick %lld node %d t=%.3f ms λ_local=%s λ_global=%s\n",
                       static_cast<long long>(a.tick), a.node,
                       Ms(a.ts_ns - start_ns), JsonNum(a.lambda_local).c_str(),
                       JsonNum(a.lambda_global).c_str());
      for (const SchedTickAudit::Segment& s : a.segments) {
        out += StrFormat(
            "    %-10s par=%d rate=%s R=%s predicted=%s "
            "blocked(in=%.0f%%, out=%.0f%%) action=%s\n",
            s.name.c_str(), s.parallelism, JsonNum(s.rate).c_str(),
            JsonNum(s.normalized_rate).c_str(),
            JsonNum(s.predicted_rate).c_str(), s.blocked_in * 100,
            s.blocked_out * 100, s.action.c_str());
      }
    }
  }
  return out;
}

std::string QueryProfile::Summary() const {
  std::string out = StrFormat(
      "profile: critical path %.1f%% of %.3f ms wall; "
      "operator time %.3f ms (exclusive Σ %.3f ms); "
      "%lld/%lld recv batches causally linked\n",
      critical_path_coverage * 100, Ms(wall_ns()), Ms(operator_total_ns),
      Ms(operator_exclusive_sum_ns),
      static_cast<long long>(linked_recv_spans),
      static_cast<long long>(total_recv_spans));
  // Top-3 steps by duration tell where the time went at a glance.
  std::vector<const ProfPathStep*> top;
  for (const ProfPathStep& s : critical_path) top.push_back(&s);
  std::sort(top.begin(), top.end(),
            [](const ProfPathStep* a, const ProfPathStep* b) {
              return a->dur_ns() > b->dur_ns();
            });
  for (size_t i = 0; i < top.size() && i < 3; ++i) {
    out += StrFormat("  %5.1f%%  %s %s %s\n", top[i]->pct * 100,
                     top[i]->what.c_str(), top[i]->segment.c_str(),
                     top[i]->detail.c_str());
  }
  return out;
}

std::string QueryProfile::ToJson() const {
  std::string out = StrFormat(
      "{\"query_id\":%llu,\"label\":",
      static_cast<unsigned long long>(query_id));
  AppendJsonStr(&out, label);
  out += StrFormat(
      ",\"start_ns\":%lld,\"end_ns\":%lld,\"wall_ns\":%lld,"
      "\"span_count\":%zu,\"dropped_spans\":%lld,"
      "\"linked_recv_spans\":%lld,\"total_recv_spans\":%lld,"
      "\"operator_total_ns\":%lld,\"operator_exclusive_sum_ns\":%lld,"
      "\"critical_path\":{\"coverage\":%s,\"steps\":[",
      static_cast<long long>(start_ns), static_cast<long long>(end_ns),
      static_cast<long long>(wall_ns()), spans.size(),
      static_cast<long long>(dropped_spans),
      static_cast<long long>(linked_recv_spans),
      static_cast<long long>(total_recv_spans),
      static_cast<long long>(operator_total_ns),
      static_cast<long long>(operator_exclusive_sum_ns),
      JsonNum(critical_path_coverage).c_str());
  bool first = true;
  for (const ProfPathStep& s : critical_path) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"what\":";
    AppendJsonStr(&out, s.what);
    out += ",\"segment\":";
    AppendJsonStr(&out, s.segment);
    out += ",\"detail\":";
    AppendJsonStr(&out, s.detail);
    out += StrFormat(",\"start_ns\":%lld,\"end_ns\":%lld,\"pct\":%s}",
                     static_cast<long long>(s.start_ns),
                     static_cast<long long>(s.end_ns), JsonNum(s.pct).c_str());
  }
  out += "]},\"operators\":[";
  first = true;
  for (const ProfOperatorStat& op : operators) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"segment\":";
    AppendJsonStr(&out, op.segment);
    out += ",\"name\":";
    AppendJsonStr(&out, op.name);
    out += StrFormat(
        ",\"node\":%d,\"op_id\":%d,\"parent_op\":%d,\"inclusive_ns\":%lld,"
        "\"exclusive_ns\":%lld,\"calls\":%lld,\"rows\":%lld}",
        op.node, op.op_id, op.parent_op,
        static_cast<long long>(op.inclusive_ns),
        static_cast<long long>(op.exclusive_ns),
        static_cast<long long>(op.calls), static_cast<long long>(op.rows));
  }
  out += "],\"audit\":[";
  first = true;
  for (const SchedTickAudit& a : audit) {
    if (!first) out.push_back(',');
    first = false;
    out += StrFormat(
        "{\"tick\":%lld,\"node\":%d,\"ts_ns\":%lld,\"lambda_local\":%s,"
        "\"lambda_global\":%s,\"segments\":[",
        static_cast<long long>(a.tick), a.node,
        static_cast<long long>(a.ts_ns), JsonNum(a.lambda_local).c_str(),
        JsonNum(a.lambda_global).c_str());
    bool sfirst = true;
    for (const SchedTickAudit::Segment& s : a.segments) {
      if (!sfirst) out.push_back(',');
      sfirst = false;
      out += "{\"name\":";
      AppendJsonStr(&out, s.name);
      out += StrFormat(
          ",\"query_id\":%llu,\"parallelism\":%d,\"rate\":%s,"
          "\"normalized_rate\":%s,\"predicted_rate\":%s,\"blocked_in\":%s,"
          "\"blocked_out\":%s,\"action\":",
          static_cast<unsigned long long>(s.query_id), s.parallelism,
          JsonNum(s.rate).c_str(), JsonNum(s.normalized_rate).c_str(),
          JsonNum(s.predicted_rate).c_str(), JsonNum(s.blocked_in).c_str(),
          JsonNum(s.blocked_out).c_str());
      AppendJsonStr(&out, s.action);
      out.push_back('}');
    }
    out += "]}";
  }
  out += "],\"timeline\":";
  AppendJsonStr(&out, AsciiTimeline(*this, 64));
  out.push_back('}');
  return out;
}

std::string QueryProfile::ToPerfettoJson() const {
  // Track layout: pid = node; tid 0 holds the query/segment spans, each
  // operator gets its own sub-track (operators overlap each other across
  // workers, so same-track nesting would lie), waits go on a per-segment
  // "waits" track, wire batches on a per-node "net" track.
  std::map<std::string, int> seg_track;
  for (const ProfSpan& s : spans) {
    if (!s.segment.empty() && !seg_track.count(s.segment)) {
      int next = static_cast<int>(seg_track.size()) + 1;
      seg_track[s.segment] = next * 1000;
    }
  }
  auto track_of = [&](const ProfSpan& s) -> int64_t {
    if (s.kind == SpanKind::kQuery) return 0;
    auto it = seg_track.find(s.segment);
    int base = it == seg_track.end() ? 900000 : it->second;
    switch (s.kind) {
      case SpanKind::kSegment: return base;
      case SpanKind::kWorker: return base + 500 + (s.tid % 100);
      case SpanKind::kOperator: return base + 1 + std::max(s.op_id, 0);
      case SpanKind::kBlockedInput:
      case SpanKind::kBlockedOutput: return base + 200;
      case SpanKind::kNetSend:
      case SpanKind::kNetRecv: return 999;
      default: return base + 300;
    }
  };
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& body) {
    if (!first) out.push_back(',');
    first = false;
    out += body;
  };
  std::map<SendKey, std::pair<const ProfSpan*, const ProfSpan*>> flows;
  for (const ProfSpan& s : spans) {
    std::string ev = "{\"name\":";
    AppendJsonStr(&ev, s.name.empty() ? SpanKindName(s.kind) : s.name);
    ev += StrFormat(
        ",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":%d,\"tid\":%lld,\"args\":{\"segment\":",
        SpanKindName(s.kind), static_cast<double>(s.start_ns) / 1000.0,
        static_cast<double>(std::max<int64_t>(s.dur_ns(), 1)) / 1000.0,
        s.node, static_cast<long long>(track_of(s)));
    AppendJsonStr(&ev, s.segment);
    ev += StrFormat(",\"tuples\":%lld,\"wire_seq\":%llu}}",
                    static_cast<long long>(s.tuples),
                    static_cast<unsigned long long>(s.wire_seq));
    emit(ev);
    if (s.kind == SpanKind::kNetSend || s.kind == SpanKind::kNetRecv) {
      SendKey key{s.exchange_id, s.from_node, s.to_node, s.wire_seq};
      auto& pair = flows[key];
      (s.kind == SpanKind::kNetSend ? pair.first : pair.second) = &s;
    }
  }
  // Flow arrows for matched send/recv pairs, bounded so a huge scan fan-out
  // does not drown the renderer; dropped flows are counted in metadata.
  constexpr size_t kMaxFlows = 512;
  size_t flow_id = 0, dropped_flows = 0;
  for (const auto& [key, pair] : flows) {
    const ProfSpan* send = pair.first;
    const ProfSpan* recv = pair.second;
    if (send == nullptr || recv == nullptr) continue;
    if (flow_id >= kMaxFlows) {
      ++dropped_flows;
      continue;
    }
    ++flow_id;
    emit(StrFormat(
        "{\"name\":\"xfer\",\"cat\":\"net\",\"ph\":\"s\",\"id\":%zu,"
        "\"ts\":%.3f,\"pid\":%d,\"tid\":%lld}",
        flow_id, static_cast<double>(send->end_ns - 1) / 1000.0, send->node,
        static_cast<long long>(track_of(*send))));
    emit(StrFormat(
        "{\"name\":\"xfer\",\"cat\":\"net\",\"ph\":\"f\",\"bp\":\"e\","
        "\"id\":%zu,\"ts\":%.3f,\"pid\":%d,\"tid\":%lld}",
        flow_id, static_cast<double>(recv->start_ns) / 1000.0, recv->node,
        static_cast<long long>(track_of(*recv))));
  }
  out += StrFormat("],\"metadata\":{\"query_id\":%llu,\"flows\":%zu,"
                   "\"dropped_flows\":%zu}}",
                   static_cast<unsigned long long>(query_id), flow_id,
                   dropped_flows);
  return out;
}

}  // namespace claims
