#ifndef CLAIMS_OBS_PROCESS_STATS_H_
#define CLAIMS_OBS_PROCESS_STATS_H_

#include <cstdint>

namespace claims {

/// Point-in-time process resource usage, read from /proc/self on Linux.
/// Fields are -1 when the platform or file is unavailable, so scrapes can
/// tell "zero" from "unknown".
struct ProcessStats {
  int64_t rss_bytes = -1;
  int64_t threads = -1;
  int64_t open_fds = -1;
  /// Seconds since the first SampleProcessStats call in this process —
  /// monotonic, so rate queries over scrapes are well-defined.
  double uptime_seconds = 0;
};

ProcessStats SampleProcessStats();

/// Refreshes the process.* gauges in the global MetricsRegistry
/// (process.rss_bytes, process.threads, process.open_fds,
/// process.uptime_seconds). The /metrics handler calls this per scrape, so
/// the gauges are always current without a background sampler thread.
void UpdateProcessGauges();

}  // namespace claims

#endif  // CLAIMS_OBS_PROCESS_STATS_H_
