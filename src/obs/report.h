#ifndef CLAIMS_OBS_REPORT_H_
#define CLAIMS_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace claims {

/// Per-segment execution summary inside an ExecutionReport. Tuple/time
/// numbers are copied from the segment's SegmentStats after the query
/// completes, so report totals reconcile exactly with the counters the
/// dynamic scheduler sampled during the run.
struct SegmentReport {
  std::string name;        ///< e.g. "S1@n0"
  int node_id = 0;
  int64_t input_tuples = 0;
  int64_t output_tuples = 0;
  double selectivity = 1.0;       ///< δ_i = out / in
  double visit_rate = 1.0;        ///< final V_i
  int64_t blocked_input_ns = 0;   ///< summed worker starvation time
  int64_t blocked_output_ns = 0;  ///< summed backpressure time
  int64_t lifetime_ns = 0;        ///< driver start → drained
  int final_parallelism = 0;
  int peak_parallelism = 0;
  /// (ts_ns, workers) samples from the scheduler's per-tick counter events;
  /// empty when tracing was off during the run.
  std::vector<std::pair<int64_t, int>> parallelism_timeline;
};

/// EXPLAIN-ANALYZE-style summary of one distributed query execution,
/// assembled by cluster/Executor. Rendering is substrate-agnostic: anything
/// that fills the struct (real engine, simulator adapters, tests) gets the
/// same report.
struct ExecutionReport {
  std::string mode;  ///< EP / SP / ME
  /// Admission-queue wait before execution began (workload manager path;
  /// 0 when the query never queued). Total query latency as the client saw
  /// it is queue_wait_ns + elapsed_ns.
  int64_t queue_wait_ns = 0;
  /// Run time: Execute start → result drained.
  int64_t elapsed_ns = 0;
  int64_t peak_memory_bytes = 0;
  int64_t remote_bytes = 0;
  int64_t result_tuples = 0;
  std::vector<SegmentReport> segments;

  /// Causal-profiler digest (critical-path coverage + top contributors) when
  /// the QueryProfiler was armed during the run; empty otherwise. The full
  /// profile lives in the profiler's ring (GET /profile/<query_id>).
  std::string profile_summary;
  /// Query id the profile was stored under (0 = unprofiled run).
  uint64_t profile_query_id = 0;

  /// Pretty table, one row per segment plus query totals:
  ///
  ///   Query (EP): 12.34 ms, 1 result tuples, peak mem 2.1 MB, net 0.5 MB
  ///    segment    node  tuples-in  tuples-out  δ      blocked-in  ...
  std::string ToString() const;
};

/// Extracts one counter series ("parallelism:S1@n0") from a trace snapshot,
/// restricted to [t0_ns, t1_ns]; consecutive duplicate values are collapsed.
std::vector<std::pair<int64_t, int>> ExtractCounterTimeline(
    const std::vector<TraceEvent>& events, const std::string& counter_name,
    int64_t t0_ns, int64_t t1_ns);

}  // namespace claims

#endif  // CLAIMS_OBS_REPORT_H_
