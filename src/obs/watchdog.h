#ifndef CLAIMS_OBS_WATCHDOG_H_
#define CLAIMS_OBS_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/macros.h"

namespace claims {

class MetricCounter;

struct WatchdogOptions {
  /// Probe sampling period.
  int64_t poll_period_ns = 100'000'000;  // 100 ms
  /// A progress probe whose counter has not advanced for this long (while
  /// the probe reports itself active) is a stall.
  int64_t stall_window_ns = 2'000'000'000;  // 2 s
  /// After an incident fires for a probe, further incidents from the same
  /// probe are suppressed for this long (a stalled system stays stalled;
  /// one report per episode is the useful granularity).
  int64_t incident_cooldown_ns = 10'000'000'000;  // 10 s
  /// Where incident reports (and flight-recorder dumps) are written.
  std::string incident_dir = ".";
  /// Also dump the TraceCollector (Chrome JSON) with each incident when
  /// tracing / flight recording is enabled.
  bool dump_flight_recorder = true;
};

/// A stalled elastic pipeline is invisible to throughput metrics — rates
/// just read zero — so the watchdog samples *progress* instead: monotone
/// counters (scheduler ticks, per-query tuples emitted) that must keep
/// moving while their subsystem claims to be active. On anomaly it writes a
/// text incident report plus a flight-recorder dump into `incident_dir`,
/// increments "watchdog.incidents", and logs — the live-introspection
/// equivalent of a post-mortem, taken while the process is still wedged.
///
/// Two probe flavors:
///  * progress probe — returns a monotone counter, or kInactive while the
///    subsystem is legitimately idle (idle is not a stall);
///  * condition probe — returns a non-empty description when an anomaly
///    holds right now (deadline breach, invariant violation).
///
/// Probes run on the watchdog thread and must be thread-safe and non-
/// blocking. Register everything before Start(); the paired subsystems in
/// wlm/introspection.h show the intended wiring.
class StallWatchdog {
 public:
  static constexpr int64_t kInactive = -1;

  /// `clock` defaults to SteadyClock; tests inject a manual clock and drive
  /// PollOnce directly.
  explicit StallWatchdog(WatchdogOptions options, Clock* clock = nullptr);
  ~StallWatchdog();

  CLAIMS_DISALLOW_COPY_AND_ASSIGN(StallWatchdog);

  void AddProgressProbe(std::string name, std::function<int64_t()> fn);
  void AddConditionProbe(std::string name, std::function<std::string()> fn);
  /// Context providers run when an incident is raised (not every poll) and
  /// their output is appended to the report — e.g. the fault plane's
  /// active-fault list, so a stall report says whether chaos was armed.
  /// Same contract as probes: thread-safe, non-blocking, registered before
  /// Start(). An empty return is omitted from the report.
  void AddContextProvider(std::string name, std::function<std::string()> fn);

  /// Launches the sampling thread. No-op when already running.
  void Start();
  /// Stops and joins. Idempotent.
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// One sampling pass (called by the thread every poll_period_ns; tests
  /// call it directly). Returns the number of incidents raised this pass.
  int PollOnce();

  /// Raises an incident on behalf of an external detector (the time-series
  /// anomaly watchdog) with the full report treatment — flight-recorder
  /// dump, context providers, metrics snapshot — under the same per-source
  /// cooldown as probes. Returns false when suppressed by cooldown.
  /// Thread-safe; callable whether or not the poll thread runs.
  bool ReportIncident(const std::string& source, const std::string& detail);

  int64_t incident_count() const {
    return incidents_.load(std::memory_order_relaxed);
  }
  /// Paths of every report written so far (tests; the /queries sibling
  /// endpoints surface the same list).
  std::vector<std::string> incident_files() const;

 private:
  struct ProgressProbe {
    std::string name;
    std::function<int64_t()> fn;
    int64_t last_value = kInactive;
    int64_t last_change_ns = 0;
    int64_t suppressed_until_ns = 0;
  };
  struct ConditionProbe {
    std::string name;
    std::function<std::string()> fn;
    int64_t suppressed_until_ns = 0;
  };
  struct ContextProvider {
    std::string name;
    std::function<std::string()> fn;
  };

  void ThreadMain();
  /// Writes report + dump, bumps counters. `detail` is the probe-specific
  /// description.
  void RaiseIncident(const std::string& probe, const std::string& detail,
                     int64_t now_ns);

  WatchdogOptions options_;
  Clock* clock_;
  MetricCounter* incidents_metric_;

  mutable std::mutex mu_;  ///< guards probe state and incident bookkeeping
  std::vector<ProgressProbe> progress_probes_;
  std::vector<ConditionProbe> condition_probes_;
  std::vector<ContextProvider> context_providers_;
  std::vector<std::string> incident_files_;
  /// Cooldown bookkeeping for ReportIncident sources (probe cooldowns live
  /// on the probes themselves).
  std::map<std::string, int64_t> external_suppressed_until_;
  int64_t next_incident_id_ = 0;

  std::atomic<int64_t> incidents_{0};
  std::atomic<bool> running_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace claims

#endif  // CLAIMS_OBS_WATCHDOG_H_
