#include "obs/prometheus.h"

#include <set>
#include <utility>

#include "common/string_util.h"

namespace claims {
namespace {

/// Splits "name:instance" at the first colon; the instance part is empty
/// when there is no label.
std::pair<std::string, std::string> SplitInstance(const std::string& name) {
  size_t colon = name.find(':');
  if (colon == std::string::npos) return {name, ""};
  return {name.substr(0, colon), name.substr(colon + 1)};
}

/// One sample line: name{instance="..."} value.
void AppendSample(std::string* out, const std::string& series,
                  const std::string& instance, const std::string& value) {
  *out += series;
  if (!instance.empty()) {
    *out += "{instance=\"";
    *out += PrometheusEscapeLabel(instance);
    *out += "\"}";
  }
  *out += ' ';
  *out += value;
  *out += '\n';
}

void AppendType(std::string* out, std::set<std::string>* typed,
                const std::string& series, const char* type) {
  if (typed->insert(series).second) {
    *out += "# TYPE ";
    *out += series;
    *out += ' ';
    *out += type;
    *out += '\n';
  }
}

std::string FormatDouble(double v) {
  // Integral gauges print without a fraction (cleaner diffs, same parse).
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      v < 9.0e15 && v > -9.0e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.9g", v);
}

}  // namespace

const char kPrometheusContentType[] =
    "text/plain; version=0.0.4; charset=utf-8";

std::string PrometheusSanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string PrometheusEscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string PrometheusSnapshot(const MetricsRegistry& registry) {
  std::string out;
  PrometheusSnapshotTo(registry, &out);
  return out;
}

void PrometheusSnapshotTo(const MetricsRegistry& registry, std::string* buf) {
  buf->clear();  // keeps capacity: repeat scrapes reuse the allocation
  std::string& out = *buf;
  std::set<std::string> typed;  // series that already have a # TYPE line
  registry.Visit(
      [&](const std::string& name, const MetricCounter& c) {
        auto [base, instance] = SplitInstance(name);
        std::string series = PrometheusSanitizeName(base);
        AppendType(&out, &typed, series, "counter");
        AppendSample(&out, series, instance,
                     StrFormat("%lld", static_cast<long long>(c.value())));
      },
      [&](const std::string& name, const MetricGauge& g) {
        auto [base, instance] = SplitInstance(name);
        std::string series = PrometheusSanitizeName(base);
        AppendType(&out, &typed, series, "gauge");
        AppendSample(&out, series, instance, FormatDouble(g.value()));
      },
      [&](const std::string& name, const MetricHistogram& h) {
        auto [base, instance] = SplitInstance(name);
        std::string series = PrometheusSanitizeName(base);
        AppendType(&out, &typed, series, "histogram");
        std::string label_prefix =
            instance.empty()
                ? std::string("{le=\"")
                : "{instance=\"" + PrometheusEscapeLabel(instance) +
                      "\",le=\"";
        // Snapshot the buckets once so the cumulative series and the +Inf /
        // _count samples stay internally consistent even while writers are
        // recording concurrently (scrapers reject a +Inf != _count).
        int64_t counts[MetricHistogram::kBuckets];
        int64_t total = 0;
        for (int b = 0; b < MetricHistogram::kBuckets; ++b) {
          counts[b] = h.bucket_count(b);
          total += counts[b];
        }
        // Emit up to the highest occupied boundary; everything above is
        // represented by the +Inf bucket.
        int top = MetricHistogram::kBuckets - 1;
        while (top > 0 && counts[top] == 0) --top;
        int64_t cumulative = 0;
        for (int b = 0; b <= top; ++b) {
          cumulative += counts[b];
          out += series;
          out += "_bucket";
          out += label_prefix;
          out += StrFormat(
              "%lld", static_cast<long long>(
                          MetricHistogram::BucketUpperBound(b)));
          out += StrFormat("\"} %lld\n", static_cast<long long>(cumulative));
        }
        out += series;
        out += "_bucket";
        out += label_prefix;
        out += StrFormat("+Inf\"} %lld\n", static_cast<long long>(total));
        AppendSample(&out, series + "_sum", instance,
                     StrFormat("%lld", static_cast<long long>(h.sum())));
        AppendSample(&out, series + "_count", instance,
                     StrFormat("%lld", static_cast<long long>(total)));
      });
}

}  // namespace claims
