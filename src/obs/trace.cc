#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "obs/metrics_registry.h"

namespace claims {
namespace {

/// JSON string escaping for event names and string args (shared helper).
void AppendEscaped(std::string* out, const std::string& s) {
  AppendJsonEscaped(out, s);
}

void AppendNumber(std::string* out, double v) {
  // Integral values print without a fraction so counters stay readable.
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
    *out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    *out += buf;
  }
}

}  // namespace

TraceCollector::TraceCollector()
    : dropped_metric_(
          MetricsRegistry::Global()->counter("trace.dropped_events")) {}

TraceCollector* TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector;
  return collector;
}

void TraceCollector::ConfigureFlightRecorder(size_t event_capacity) {
  // Take every shard lock so in-flight emitters finish against the old
  // geometry before the rings are rebuilt.
  std::array<std::unique_lock<std::mutex>, kShards> locks;
  for (int i = 0; i < kShards; ++i) {
    locks[i] = std::unique_lock<std::mutex>(shards_[i].mu);
  }
  const size_t per_shard =
      event_capacity == 0
          ? 0
          : std::max<size_t>(1, event_capacity / kShards);
  ring_capacity_per_shard_.store(per_shard, std::memory_order_relaxed);
  for (Shard& shard : shards_) {
    shard.events.clear();
    shard.events.shrink_to_fit();
    if (per_shard > 0) shard.events.reserve(per_shard);
    shard.ring_pos = 0;
  }
  dropped_.store(0, std::memory_order_relaxed);
  next_seq_.store(0, std::memory_order_relaxed);
}

int64_t TraceCollector::CurrentThreadId() {
  static std::atomic<int64_t> next_tid{1};
  thread_local int64_t tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void TraceCollector::Emit(TraceEvent ev) {
  if (!enabled()) return;
  if (ev.tid == 0) ev.tid = CurrentThreadId();
  ev.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shards_[ev.tid % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  // Capacity is re-read under the shard lock: ConfigureFlightRecorder holds
  // every shard lock while changing it, so the value cannot move under us.
  const size_t cap = ring_capacity_per_shard_.load(std::memory_order_relaxed);
  if (cap > 0 && shard.events.size() >= cap) {
    shard.events[shard.ring_pos] = std::move(ev);
    shard.ring_pos = (shard.ring_pos + 1) % cap;
    dropped_.fetch_add(1, std::memory_order_relaxed);
    dropped_metric_->Add();
  } else {
    shard.events.push_back(std::move(ev));
  }
}

void TraceCollector::Instant(int64_t ts_ns, int pid, const char* category,
                             std::string name,
                             std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = category;
  ev.phase = TraceEvent::Phase::kInstant;
  ev.ts_ns = ts_ns;
  ev.pid = pid;
  for (const TraceArg& a : args) ev.AddArg(a);
  Emit(std::move(ev));
}

void TraceCollector::Counter(int64_t ts_ns, int pid, std::string name,
                             double value) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = "counter";
  ev.phase = TraceEvent::Phase::kCounter;
  ev.ts_ns = ts_ns;
  ev.pid = pid;
  ev.AddArg(TraceArg("value", value));
  Emit(std::move(ev));
}

void TraceCollector::Complete(int64_t ts_ns, int64_t dur_ns, int pid,
                              const char* category, std::string name,
                              std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = category;
  ev.phase = TraceEvent::Phase::kComplete;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.pid = pid;
  for (const TraceArg& a : args) ev.AddArg(a);
  Emit(std::move(ev));
}

std::vector<TraceEvent> TraceCollector::Snapshot() const {
  std::vector<TraceEvent> all;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    all.insert(all.end(), shard.events.begin(), shard.events.end());
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.seq < b.seq;
            });
  return all;
}

size_t TraceCollector::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.events.size();
  }
  return n;
}

void TraceCollector::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.events.clear();
    shard.ring_pos = 0;
  }
  // Fresh capture, fresh order: nothing references the dropped events, so
  // sequence numbers may restart at zero.
  next_seq_.store(0, std::memory_order_relaxed);
}

std::string TraceCollector::ToChromeJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::string out;
  out.reserve(events.size() * 128 + 64);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(&out, ev.name);
    out += "\",\"cat\":\"";
    AppendEscaped(&out, ev.category);
    out += "\",\"ph\":\"";
    out += static_cast<char>(ev.phase);
    out += "\",\"ts\":";
    // trace_event timestamps are microseconds; fractional digits keep the
    // nanosecond resolution both clocks provide.
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(ev.ts_ns) / 1000.0);
    out += buf;
    if (ev.phase == TraceEvent::Phase::kComplete) {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                    static_cast<double>(ev.dur_ns) / 1000.0);
      out += buf;
    }
    if (ev.phase == TraceEvent::Phase::kInstant) out += ",\"s\":\"t\"";
    std::snprintf(buf, sizeof(buf), ",\"pid\":%d,\"tid\":%lld", ev.pid,
                  static_cast<long long>(ev.tid));
    out += buf;
    if (ev.num_args > 0) {
      out += ",\"args\":{";
      for (int i = 0; i < ev.num_args; ++i) {
        if (i > 0) out += ",";
        out += "\"";
        AppendEscaped(&out, ev.args[i].key != nullptr ? ev.args[i].key : "?");
        out += "\":";
        if (ev.args[i].is_str) {
          out += "\"";
          AppendEscaped(&out, ev.args[i].str);
          out += "\"";
        } else {
          AppendNumber(&out, ev.args[i].num);
        }
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

Status TraceCollector::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace output file: " + path);
  }
  std::string json = ToChromeJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to trace output file: " + path);
  }
  return Status::OK();
}

TraceEnvScope::TraceEnvScope() {
  // CLAIMS_TRACE_RING=<events> bounds the capture to a flight-recorder ring
  // (continuous tracing under load); composes with CLAIMS_TRACE and with the
  // monitor's POST /flight-recorder/dump endpoint.
  const char* ring = std::getenv("CLAIMS_TRACE_RING");
  if (ring != nullptr && ring[0] != '\0') {
    TraceCollector::Global()->ConfigureFlightRecorder(
        static_cast<size_t>(std::atoll(ring)));
    TraceCollector::Global()->Enable();
  }
  const char* path = std::getenv("CLAIMS_TRACE");
  if (path == nullptr || path[0] == '\0') return;
  path_ = path;
  TraceCollector::Global()->Enable();
}

TraceEnvScope::~TraceEnvScope() {
  if (path_.empty()) return;
  TraceCollector* tc = TraceCollector::Global();
  tc->Disable();
  Status s = tc->WriteChromeJson(path_);
  if (s.ok()) {
    std::fprintf(stderr,
                 "[trace] wrote %zu events to %s (open in ui.perfetto.dev)\n",
                 tc->size(), path_.c_str());
  } else {
    std::fprintf(stderr, "[trace] %s\n", s.ToString().c_str());
  }
}

}  // namespace claims
