#ifndef CLAIMS_OBS_METRICS_REGISTRY_H_
#define CLAIMS_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/macros.h"

namespace claims {

/// Monotone counter (events, tuples, bytes). Relaxed atomics: totals are
/// exact, cross-counter ordering is not promised.
class MetricCounter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-value / high-watermark gauge (buffer occupancy, queue depth).
class MetricGauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Monotone max update (high-watermarks from concurrent writers).
  void UpdateMax(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Lock-free log2-bucketed histogram for latency/size distributions
/// (expansion delay, shrinkage delay, block bytes). Bucket i holds values in
/// [2^(i-1), 2^i); percentiles are read off the bucket boundaries, accurate
/// to a factor of 2 — plenty for the order-of-magnitude questions the paper's
/// Fig. 9 asks.
class MetricHistogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(int64_t v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t min() const;
  /// 0 on an empty histogram (not the INT64_MIN sentinel).
  int64_t max() const;
  double mean() const;
  /// Upper bound of the bucket containing the p-quantile, p in [0,1].
  int64_t Percentile(double p) const;
  void Reset();

  /// Occupancy of bucket `i` (non-cumulative), i in [0, kBuckets).
  int64_t bucket_count(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Copies every bucket occupancy into `out[kBuckets]` and returns their
  /// sum. The snapshot is the subtrahend for *windowed* quantiles: the time-
  /// series sampler diffs two snapshots and reads percentiles off the delta.
  int64_t SnapshotBuckets(int64_t out[kBuckets]) const;

  /// Percentile over a bucket *delta* (current snapshot minus a previous
  /// one), same boundary semantics as Percentile. An empty window (all
  /// deltas zero) reports 0 — never a stale cumulative quantile. Negative
  /// entries (a Reset between snapshots) are treated as empty buckets.
  static int64_t DeltaPercentile(const int64_t delta[kBuckets], double p);
  /// Largest value bucket `i` can hold: 0 for bucket 0 (v <= 0), else
  /// 2^i - 1 (bucket i holds [2^(i-1), 2^i)). Prometheus `le` boundaries.
  static int64_t BucketUpperBound(int i) {
    return i == 0 ? 0 : (int64_t{1} << i) - 1;
  }

 private:
  static int BucketOf(int64_t v);

  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
};

/// Process-wide registry of named metrics. Lookup takes a mutex — components
/// resolve their metrics once at construction and hold the stable pointers;
/// the update paths are pure atomics. Names use dotted lower-case
/// ("scheduler.expansions", "net.bytes_sent"); instance-scoped metrics append
/// a label after a colon ("buffer.peak:S1@n0").
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(MetricsRegistry);

  static MetricsRegistry* Global();

  /// Get-or-create; returned pointers stay valid for the registry's lifetime.
  MetricCounter* counter(const std::string& name);
  MetricGauge* gauge(const std::string& name);
  MetricHistogram* histogram(const std::string& name);

  /// Human-readable dump of every registered metric, sorted by name:
  ///   counter scheduler.expansions 42
  ///   gauge   buffer.peak:S1@n0 63
  ///   hist    elastic.expand_latency_ns count=12 mean=1834 p50=2048 ...
  std::string TextSnapshot() const;

  /// Zeroes every metric (tests; between bench repetitions). Pointers stay
  /// valid.
  void ResetAll();

  /// Visits every registered metric, sorted by name within each kind, while
  /// holding the registry mutex (callbacks must not call back into the
  /// registry). The Prometheus exposition in obs/prometheus.h is built on
  /// this; tests use it to enumerate without parsing TextSnapshot.
  void Visit(
      const std::function<void(const std::string&, const MetricCounter&)>&
          on_counter,
      const std::function<void(const std::string&, const MetricGauge&)>&
          on_gauge,
      const std::function<void(const std::string&, const MetricHistogram&)>&
          on_histogram) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_;
  std::map<std::string, std::unique_ptr<MetricGauge>> gauges_;
  std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_;
};

}  // namespace claims

#endif  // CLAIMS_OBS_METRICS_REGISTRY_H_
