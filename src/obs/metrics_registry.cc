#include "obs/metrics_registry.h"

#include <algorithm>

#include "common/string_util.h"

namespace claims {

int MetricHistogram::BucketOf(int64_t v) {
  if (v <= 0) return 0;
  int bit = 63 - __builtin_clzll(static_cast<unsigned long long>(v));
  return std::min(kBuckets - 1, bit + 1);
}

void MetricHistogram::Record(int64_t v) {
  buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  int64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

int64_t MetricHistogram::min() const {
  int64_t v = min_.load(std::memory_order_relaxed);
  return v == INT64_MAX ? 0 : v;
}

int64_t MetricHistogram::max() const {
  // Empty-histogram guard lives here (not in each renderer) so no caller can
  // ever observe the INT64_MIN sentinel.
  int64_t v = max_.load(std::memory_order_relaxed);
  return v == INT64_MIN ? 0 : v;
}

double MetricHistogram::mean() const {
  int64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

int64_t MetricHistogram::Percentile(double p) const {
  int64_t n = count();
  if (n == 0) return 0;
  int64_t target = static_cast<int64_t>(p * static_cast<double>(n - 1)) + 1;
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= target) {
      // Upper bucket boundary: bucket b holds [2^(b-1), 2^b).
      return b == 0 ? 0 : int64_t{1} << b;
    }
  }
  return max();
}

int64_t MetricHistogram::SnapshotBuckets(int64_t out[kBuckets]) const {
  int64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    out[b] = buckets_[b].load(std::memory_order_relaxed);
    total += out[b];
  }
  return total;
}

int64_t MetricHistogram::DeltaPercentile(const int64_t delta[kBuckets],
                                         double p) {
  int64_t n = 0;
  for (int b = 0; b < kBuckets; ++b) n += std::max<int64_t>(0, delta[b]);
  if (n == 0) return 0;
  int64_t target = static_cast<int64_t>(p * static_cast<double>(n - 1)) + 1;
  int64_t seen = 0;
  int last_occupied = 0;
  for (int b = 0; b < kBuckets; ++b) {
    int64_t occ = std::max<int64_t>(0, delta[b]);
    if (occ > 0) last_occupied = b;
    seen += occ;
    if (seen >= target) return b == 0 ? 0 : int64_t{1} << b;
  }
  return last_occupied == 0 ? 0 : int64_t{1} << last_occupied;
}

void MetricHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return registry;
}

MetricCounter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<MetricCounter>();
  return slot.get();
}

MetricGauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<MetricGauge>();
  return slot.get();
}

MetricHistogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<MetricHistogram>();
  return slot.get();
}

std::string MetricsRegistry::TextSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += StrFormat("counter %s %lld\n", name.c_str(),
                     static_cast<long long>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    out += StrFormat("gauge   %s %.6g\n", name.c_str(), g->value());
  }
  for (const auto& [name, h] : histograms_) {
    out += StrFormat(
        "hist    %s count=%lld mean=%.0f min=%lld p50=%lld p95=%lld "
        "p99=%lld max=%lld\n",
        name.c_str(), static_cast<long long>(h->count()), h->mean(),
        static_cast<long long>(h->min()),
        static_cast<long long>(h->Percentile(0.50)),
        static_cast<long long>(h->Percentile(0.95)),
        static_cast<long long>(h->Percentile(0.99)),
        static_cast<long long>(h->max()));
  }
  return out;
}

void MetricsRegistry::Visit(
    const std::function<void(const std::string&, const MetricCounter&)>&
        on_counter,
    const std::function<void(const std::string&, const MetricGauge&)>&
        on_gauge,
    const std::function<void(const std::string&, const MetricHistogram&)>&
        on_histogram) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (on_counter) {
    for (const auto& [name, c] : counters_) on_counter(name, *c);
  }
  if (on_gauge) {
    for (const auto& [name, g] : gauges_) on_gauge(name, *g);
  }
  if (on_histogram) {
    for (const auto& [name, h] : histograms_) on_histogram(name, *h);
  }
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace claims
