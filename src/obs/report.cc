#include "obs/report.h"

#include <algorithm>

#include "common/string_util.h"

namespace claims {
namespace {

std::string HumanMs(int64_t ns) {
  return StrFormat("%.2f ms", static_cast<double>(ns) / 1e6);
}

/// "1 ->(2.1ms) 3 ->(4.0ms) 2": parallelism steps with transition offsets.
std::string TimelineString(
    const std::vector<std::pair<int64_t, int>>& timeline) {
  if (timeline.empty()) return "(no samples)";
  std::string out = StrFormat("%d", timeline.front().second);
  int64_t t0 = timeline.front().first;
  for (size_t i = 1; i < timeline.size(); ++i) {
    out += StrFormat(" ->(%.1fms) %d",
                     static_cast<double>(timeline[i].first - t0) / 1e6,
                     timeline[i].second);
  }
  return out;
}

}  // namespace

std::string ExecutionReport::ToString() const {
  // With a recorded admission wait the header splits client-visible latency
  // into its queue and run components (EXPLAIN ANALYZE under the workload
  // manager); unqueued queries keep the familiar single number.
  std::string latency =
      queue_wait_ns > 0
          ? StrFormat("%s (queued %s + ran %s)",
                      HumanMs(queue_wait_ns + elapsed_ns).c_str(),
                      HumanMs(queue_wait_ns).c_str(),
                      HumanMs(elapsed_ns).c_str())
          : HumanMs(elapsed_ns);
  std::string out = StrFormat(
      "Query (%s): %s, %lld result tuples, peak mem %s, network %s\n",
      mode.c_str(), latency.c_str(), static_cast<long long>(result_tuples),
      HumanBytes(peak_memory_bytes).c_str(), HumanBytes(remote_bytes).c_str());
  out += StrFormat(
      "  %-12s %4s %12s %12s %6s %6s %11s %11s %10s %5s  %s\n", "segment",
      "node", "tuples-in", "tuples-out", "delta", "V_i", "blocked-in",
      "blocked-out", "lifetime", "p/max", "parallelism timeline");
  for (const SegmentReport& s : segments) {
    out += StrFormat(
        "  %-12s %4d %12lld %12lld %6.3f %6.2f %11s %11s %10s %2d/%-2d  %s\n",
        s.name.c_str(), s.node_id, static_cast<long long>(s.input_tuples),
        static_cast<long long>(s.output_tuples), s.selectivity, s.visit_rate,
        HumanMs(s.blocked_input_ns).c_str(),
        HumanMs(s.blocked_output_ns).c_str(), HumanMs(s.lifetime_ns).c_str(),
        s.final_parallelism, s.peak_parallelism,
        TimelineString(s.parallelism_timeline).c_str());
  }
  if (!profile_summary.empty()) {
    out += StrFormat("  profile (query %llu): %s\n",
                     static_cast<unsigned long long>(profile_query_id),
                     profile_summary.c_str());
  }
  return out;
}

std::vector<std::pair<int64_t, int>> ExtractCounterTimeline(
    const std::vector<TraceEvent>& events, const std::string& counter_name,
    int64_t t0_ns, int64_t t1_ns) {
  std::vector<std::pair<int64_t, int>> timeline;
  for (const TraceEvent& ev : events) {
    if (ev.phase != TraceEvent::Phase::kCounter || ev.name != counter_name) {
      continue;
    }
    if (ev.ts_ns < t0_ns || ev.ts_ns > t1_ns) continue;
    int value = ev.num_args > 0 ? static_cast<int>(ev.args[0].num) : 0;
    if (!timeline.empty() && timeline.back().second == value) continue;
    timeline.emplace_back(ev.ts_ns, value);
  }
  return timeline;
}

}  // namespace claims
