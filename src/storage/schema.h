#ifndef CLAIMS_STORAGE_SCHEMA_H_
#define CLAIMS_STORAGE_SCHEMA_H_

#include <cstring>
#include <string>
#include <vector>

#include "storage/types.h"
#include "storage/value.h"

namespace claims {

/// One column definition of a fixed-width row schema.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt64;
  int32_t char_width = 0;  ///< Declared width; only meaningful for kChar.

  static ColumnDef Int32(std::string n) {
    return {std::move(n), DataType::kInt32, 0};
  }
  static ColumnDef Int64(std::string n) {
    return {std::move(n), DataType::kInt64, 0};
  }
  static ColumnDef Float64(std::string n) {
    return {std::move(n), DataType::kFloat64, 0};
  }
  static ColumnDef Date(std::string n) {
    return {std::move(n), DataType::kDate, 0};
  }
  static ColumnDef Char(std::string n, int32_t width) {
    return {std::move(n), DataType::kChar, width};
  }
};

/// Fixed-width row layout: byte offsets precomputed per column. Rows are the
/// unit inside 64 KB blocks (block-at-a-time processing, paper §2.1).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  int32_t row_size() const { return row_size_; }
  int32_t offset(int i) const { return offsets_[i]; }

  /// Index of a column by (case-insensitive) name, or -1.
  int FindColumn(std::string_view name) const;

  // --- Raw row field access -------------------------------------------------

  int32_t GetInt32(const char* row, int col) const {
    int32_t v;
    std::memcpy(&v, row + offsets_[col], sizeof(v));
    return v;
  }
  int64_t GetInt64(const char* row, int col) const {
    int64_t v;
    std::memcpy(&v, row + offsets_[col], sizeof(v));
    return v;
  }
  double GetFloat64(const char* row, int col) const {
    double v;
    std::memcpy(&v, row + offsets_[col], sizeof(v));
    return v;
  }
  /// Returns the CHAR payload with trailing NUL padding ignored.
  std::string_view GetString(const char* row, int col) const {
    const char* p = row + offsets_[col];
    size_t n = strnlen(p, columns_[col].char_width);
    return std::string_view(p, n);
  }

  void SetInt32(char* row, int col, int32_t v) const {
    std::memcpy(row + offsets_[col], &v, sizeof(v));
  }
  void SetInt64(char* row, int col, int64_t v) const {
    std::memcpy(row + offsets_[col], &v, sizeof(v));
  }
  void SetFloat64(char* row, int col, double v) const {
    std::memcpy(row + offsets_[col], &v, sizeof(v));
  }
  void SetString(char* row, int col, std::string_view s) const;

  /// Reads column `col` of `row` as a Value (for result sets / evaluation).
  Value GetValue(const char* row, int col) const;
  /// Writes `v` into column `col`; numeric values are converted to the
  /// column's declared type.
  void SetValue(char* row, int col, const Value& v) const;

  /// "name TYPE, name TYPE, ..." rendering for diagnostics.
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
  std::vector<int32_t> offsets_;
  int32_t row_size_ = 0;
};

}  // namespace claims

#endif  // CLAIMS_STORAGE_SCHEMA_H_
