#ifndef CLAIMS_STORAGE_VALUE_H_
#define CLAIMS_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "storage/types.h"

namespace claims {

/// A single scalar value: literal in an expression tree, partial aggregate,
/// or cell of a materialized result set. Strings own their storage (trailing
/// CHAR padding already stripped).
class Value {
 public:
  Value() : type_(DataType::kInt64), v_(int64_t{0}) {}

  static Value Int32(int32_t v) { return Value(DataType::kInt32, int64_t{v}); }
  static Value Int64(int64_t v) { return Value(DataType::kInt64, v); }
  static Value Float64(double v) { return Value(DataType::kFloat64, v); }
  static Value Date(int32_t days) {
    return Value(DataType::kDate, int64_t{days});
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = DataType::kChar;
    v.v_ = std::move(s);
    return v;
  }

  DataType type() const { return type_; }

  /// Integer payload; valid for kInt32 / kInt64 / kDate.
  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsFloat64() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric value widened to double (valid for any numeric or date type).
  double ToDouble() const {
    return std::holds_alternative<double>(v_)
               ? std::get<double>(v_)
               : static_cast<double>(std::get<int64_t>(v_));
  }

  bool is_string() const { return type_ == DataType::kChar; }

  /// Renders the value for result display ("1996-03-13" for dates, "%.4f"
  /// trimmed for floats).
  std::string ToString() const;

  /// Three-way comparison; strings compare lexicographically, numerics by
  /// widened double when mixed. Comparing string vs numeric is a caller bug.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }

 private:
  Value(DataType t, int64_t v) : type_(t), v_(v) {}
  Value(DataType t, double v) : type_(t), v_(v) {}

  DataType type_;
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace claims

#endif  // CLAIMS_STORAGE_VALUE_H_
