#include "storage/catalog.h"

#include <set>

#include "common/string_util.h"

namespace claims {

Status Catalog::RegisterTable(TablePtr table) {
  std::string key = ToLower(table->name());
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists(
        StrFormat("table '%s' already registered", table->name().c_str()));
  }
  tables_.emplace(std::move(key), std::move(table));
  return Status::OK();
}

Result<TablePtr> Catalog::GetTable(std::string_view name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound(
        StrFormat("table '%s' not found", std::string(name).c_str()));
  }
  return it->second;
}

bool Catalog::HasTable(std::string_view name) const {
  return tables_.count(ToLower(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

int64_t Catalog::EstimateDistinct(const Table& table, int col,
                                  int64_t sample_limit) const {
  const Schema& schema = table.schema();
  std::set<std::string> seen_str;
  std::set<int64_t> seen_int;
  std::set<double> seen_dbl;
  bool is_str = schema.column(col).type == DataType::kChar;
  bool is_dbl = schema.column(col).type == DataType::kFloat64;
  int64_t seen = 0;
  for (int p = 0; p < table.num_partitions() && seen < sample_limit; ++p) {
    const TablePartition& part = table.partition(p);
    for (int b = 0; b < part.num_blocks() && seen < sample_limit; ++b) {
      const Block& blk = *part.block(b);
      for (int32_t r = 0; r < blk.num_rows() && seen < sample_limit; ++r) {
        const char* row = blk.RowAt(r);
        if (is_str) {
          seen_str.emplace(schema.GetString(row, col));
        } else if (is_dbl) {
          seen_dbl.insert(schema.GetFloat64(row, col));
        } else if (schema.column(col).type == DataType::kInt64) {
          seen_int.insert(schema.GetInt64(row, col));
        } else {
          seen_int.insert(schema.GetInt32(row, col));
        }
        ++seen;
      }
    }
  }
  int64_t distinct = static_cast<int64_t>(seen_str.size() + seen_int.size() +
                                          seen_dbl.size());
  if (seen == 0) return 0;
  // If the sample saturated, extrapolate linearly unless the column looks
  // low-cardinality (distinct plateaued well under the sample size).
  int64_t total = table.num_rows();
  if (seen < total && distinct > seen / 2) {
    distinct = distinct * total / seen;
  }
  return distinct;
}

}  // namespace claims
