#include "storage/value.h"

#include "common/string_util.h"

namespace claims {

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kInt32:
    case DataType::kInt64:
      return StrFormat("%lld", static_cast<long long>(AsInt64()));
    case DataType::kFloat64:
      return StrFormat("%.4f", AsFloat64());
    case DataType::kDate:
      return FormatDate(static_cast<int32_t>(AsInt64()));
    case DataType::kChar:
      return AsString();
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  if (is_string() || other.is_string()) {
    const std::string& a = AsString();
    const std::string& b = other.AsString();
    return a < b ? -1 : (a == b ? 0 : 1);
  }
  // Pure integer comparison stays exact; mixed goes through double.
  if (std::holds_alternative<int64_t>(v_) &&
      other.type() != DataType::kFloat64) {
    int64_t a = AsInt64();
    int64_t b = other.AsInt64();
    return a < b ? -1 : (a == b ? 0 : 1);
  }
  double a = ToDouble();
  double b = other.ToDouble();
  return a < b ? -1 : (a == b ? 0 : 1);
}

}  // namespace claims
