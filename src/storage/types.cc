#include "storage/types.h"

#include <cstdio>

#include "common/string_util.h"

namespace claims {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt32:
      return "INT32";
    case DataType::kInt64:
      return "INT64";
    case DataType::kFloat64:
      return "FLOAT64";
    case DataType::kDate:
      return "DATE";
    case DataType::kChar:
      return "CHAR";
  }
  return "?";
}

// Howard Hinnant's civil-date algorithms (public domain).
int32_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int>(doe) - 719468;
}

void CivilFromDays(int32_t z, int* year, int* month, int* day) {
  z += 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *year = y + (m <= 2);
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

Result<int32_t> ParseDate(std::string_view text) {
  int y = 0, m = 0, d = 0;
  if (text.size() != 10 || text[4] != '-' || text[7] != '-' ||
      std::sscanf(std::string(text).c_str(), "%d-%d-%d", &y, &m, &d) != 3 ||
      m < 1 || m > 12 || d < 1 || d > 31) {
    return Status::InvalidArgument(
        StrFormat("malformed date '%s' (want YYYY-MM-DD)",
                  std::string(text).c_str()));
  }
  return DaysFromCivil(y, m, d);
}

std::string FormatDate(int32_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  return StrFormat("%04d-%02d-%02d", y, m, d);
}

}  // namespace claims
