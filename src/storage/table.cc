#include "storage/table.h"

#include <algorithm>

namespace claims {

char* TablePartition::AppendRowSlot() {
  if (blocks_.empty() || blocks_.back()->full()) {
    blocks_.push_back(MakeBlock(schema_->row_size()));
  }
  ++num_rows_;
  return blocks_.back()->AppendRow();
}

int64_t TablePartition::bytes() const {
  int64_t total = 0;
  for (const BlockPtr& b : blocks_) total += b->payload_bytes();
  return total;
}

Table::Table(std::string name, Schema schema, int num_partitions,
             std::vector<int> partition_key_cols)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      partition_key_cols_(std::move(partition_key_cols)) {
  partitions_.reserve(num_partitions);
  for (int i = 0; i < num_partitions; ++i) partitions_.emplace_back(&schema_);
}

int64_t Table::num_rows() const {
  int64_t total = 0;
  for (const TablePartition& p : partitions_) total += p.num_rows();
  return total;
}

int64_t Table::bytes() const {
  int64_t total = 0;
  for (const TablePartition& p : partitions_) total += p.bytes();
  return total;
}

bool Table::IsPartitionedOn(const std::vector<int>& cols) const {
  if (partition_key_cols_.empty() || cols.size() != partition_key_cols_.size())
    return false;
  std::vector<int> a = partition_key_cols_;
  std::vector<int> b = cols;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

char* Table::AppendRowSlotRoundRobin() {
  int p = round_robin_next_;
  round_robin_next_ = (round_robin_next_ + 1) % num_partitions();
  return partitions_[p].AppendRowSlot();
}

void Table::AppendValues(const std::vector<Value>& values) {
  // Materialize into a scratch row, then route by key hash.
  std::vector<char> scratch(schema_.row_size());
  for (int i = 0; i < schema_.num_columns(); ++i) {
    schema_.SetValue(scratch.data(), i, values[i]);
  }
  AppendRawRow(scratch.data());
}

void Table::AppendRawRow(const char* row) {
  int p;
  if (partition_key_cols_.empty()) {
    p = round_robin_next_;
    round_robin_next_ = (round_robin_next_ + 1) % num_partitions();
  } else {
    p = PartitionOf(HashRowKeys(schema_, row, partition_key_cols_),
                    num_partitions());
  }
  char* slot = partitions_[p].AppendRowSlot();
  std::memcpy(slot, row, schema_.row_size());
}

}  // namespace claims
