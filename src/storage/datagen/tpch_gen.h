#ifndef CLAIMS_STORAGE_DATAGEN_TPCH_GEN_H_
#define CLAIMS_STORAGE_DATAGEN_TPCH_GEN_H_

#include <cstdint>

#include "common/status.h"
#include "storage/catalog.h"

namespace claims {

/// Configuration for the built-in TPC-H data generator (a dbgen work-alike:
/// schema-complete, correct key relationships and value distributions; text
/// fields use a compact vocabulary rather than dbgen's grammar).
struct TpchConfig {
  /// TPC-H scale factor; SF=1 is 6M lineitem rows. Benches default to small
  /// fractions; the simulator extrapolates to the paper's SF=100.
  double scale_factor = 0.01;
  /// Tables are hash-partitioned on their primary key across this many
  /// cluster nodes (paper §5.1: 10 nodes).
  int num_partitions = 1;
  uint64_t seed = 20160626;
};

/// Generates all eight TPC-H tables into `catalog`:
/// region, nation, supplier, customer, part, partsupp, orders, lineitem.
/// lineitem is partitioned on l_orderkey and orders on o_orderkey so the
/// lineitem-orders join is co-located, matching the paper's setup.
Status GenerateTpch(const TpchConfig& config, Catalog* catalog);

/// Row counts at a given scale factor (exposed for tests and the simulator's
/// SF-100 extrapolation).
int64_t TpchRows(const char* table, double scale_factor);

}  // namespace claims

#endif  // CLAIMS_STORAGE_DATAGEN_TPCH_GEN_H_
