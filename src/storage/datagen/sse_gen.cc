#include "storage/datagen/sse_gen.h"

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace claims {

Status GenerateSse(const SseConfig& config, Catalog* catalog) {
  Rng rng(config.seed);
  ZipfGenerator acct_zipf(static_cast<uint64_t>(config.num_accounts),
                          config.zipf_theta, config.seed ^ 0xACC7);
  ZipfGenerator sec_zipf(static_cast<uint64_t>(config.num_securities),
                         config.zipf_theta, config.seed ^ 0x5EC0);

  const int32_t start = DaysFromCivil(2010, 8, 2);
  const int32_t end = DaysFromCivil(2010, 10, 30);  // paper filter date
  const int32_t ndays = end - start + 1;

  auto random_date = [&]() {
    // Uniform across the quarter; the filter date 2010-10-30 is just the
    // last day, carrying ~1/ndays of rows like any other day.
    return start + static_cast<int32_t>(rng.Uniform(ndays));
  };

  // securities ----------------------------------------------------------
  {
    Schema schema({ColumnDef::Int64("order_no"), ColumnDef::Int32("acct_id"),
                   ColumnDef::Int32("sec_code"), ColumnDef::Date("entry_date"),
                   ColumnDef::Int64("entry_volume")});
    // Partitioned on acct_id (paper §5.3).
    auto t = std::make_shared<Table>("securities", schema,
                                     config.num_partitions,
                                     std::vector<int>{1});
    for (int64_t i = 0; i < config.securities_rows; ++i) {
      t->AppendValues(
          {Value::Int64(1000000 + i),
           Value::Int32(static_cast<int32_t>(1 + acct_zipf.Next())),
           Value::Int32(static_cast<int32_t>(600000 + sec_zipf.Next())),
           Value::Date(random_date()),
           Value::Int64(rng.UniformRange(100, 100000))});
    }
    CLAIMS_RETURN_IF_ERROR(catalog->RegisterTable(std::move(t)));
  }

  // trades ----------------------------------------------------------------
  {
    Schema schema({ColumnDef::Int32("acct_id"), ColumnDef::Int32("sec_code"),
                   ColumnDef::Date("trade_date"),
                   ColumnDef::Int32("trade_time"),
                   ColumnDef::Float64("order_price"),
                   ColumnDef::Int64("trade_volume")});
    std::vector<int> part_key;
    part_key.push_back(config.partition_trades_on_sec_code ? 1 : 0);
    auto t = std::make_shared<Table>("trades", schema, config.num_partitions,
                                     part_key);
    struct Row {
      int32_t acct, sec, date, time;
      double price;
      int64_t volume;
    };
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(config.trades_rows));
    for (int64_t i = 0; i < config.trades_rows; ++i) {
      Row r;
      r.acct = static_cast<int32_t>(1 + acct_zipf.Next());
      r.sec = static_cast<int32_t>(600000 + sec_zipf.Next());
      r.date = random_date();
      r.time = static_cast<int32_t>(rng.UniformRange(9 * 3600, 15 * 3600));
      r.price = 1.0 + 99.0 * rng.NextDouble();
      r.volume = rng.UniformRange(100, 50000);
      rows.push_back(r);
    }
    if (config.sort_trades_by_date) {
      // Fig. 11 setup: tuples in ascending trade_date order, so the filter's
      // selectivity is 0 for a long prefix then jumps to 1.
      std::stable_sort(rows.begin(), rows.end(),
                       [](const Row& a, const Row& b) { return a.date < b.date; });
    }
    for (const Row& r : rows) {
      t->AppendValues({Value::Int32(r.acct), Value::Int32(r.sec),
                       Value::Date(r.date), Value::Int32(r.time),
                       Value::Float64(r.price), Value::Int64(r.volume)});
    }
    CLAIMS_RETURN_IF_ERROR(catalog->RegisterTable(std::move(t)));
  }

  return Status::OK();
}

}  // namespace claims
