#ifndef CLAIMS_STORAGE_DATAGEN_SSE_GEN_H_
#define CLAIMS_STORAGE_DATAGEN_SSE_GEN_H_

#include <cstdint>

#include "common/status.h"
#include "storage/catalog.h"

namespace claims {

/// Synthetic stand-in for the paper's proprietary Shanghai Stock Exchange
/// dataset (three months of 2010; >840M rows per table at full scale).
/// Schemas follow §5.1 exactly:
///   Securities(order_no, acct_id, sec_code, entry_date, entry_volume)
///   Trades(acct_id, sec_code, trade_date, trade_time, order_price,
///          trade_volume)
struct SseConfig {
  int64_t securities_rows = 100000;
  int64_t trades_rows = 100000;
  /// Distinct trading accounts / listed securities. Securities codes are
  /// 600000..600000+num_securities-1 (SSE A-share convention, cf. SSE-Q6's
  /// sec_code = 600036).
  int64_t num_accounts = 20000;
  int64_t num_securities = 1000;
  /// Zipf skew of account and security popularity (hot stocks dominate).
  double zipf_theta = 0.7;
  int num_partitions = 1;
  /// Paper §5.3 (SSE-Q9 case study): Trades partitioned on sec_code,
  /// Securities on acct_id — the join on acct_id then forces a repartition
  /// of Trades, which is the interesting pipeline.
  bool partition_trades_on_sec_code = true;
  /// Orders Trades by trade_date within each partition, reproducing the
  /// Fig. 11 fluctuating-selectivity experiment (selectivity 0 → 1 step when
  /// the filter date streams in).
  bool sort_trades_by_date = false;
  uint64_t seed = 20101030;
};

/// Generates the `securities` and `trades` tables into `catalog`.
/// Dates span 2010-08-02 .. 2010-10-30; the last trading day (the one all
/// paper queries filter on) holds ~1/64 of the rows.
Status GenerateSse(const SseConfig& config, Catalog* catalog);

}  // namespace claims

#endif  // CLAIMS_STORAGE_DATAGEN_SSE_GEN_H_
