#include "storage/datagen/tpch_gen.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"

namespace claims {
namespace {

// --- Vocabulary ---------------------------------------------------------------

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};

// The 25 standard TPC-H nations and their region keys.
struct NationDef {
  const char* name;
  int region;
};
const NationDef kNations[] = {
    {"ALGERIA", 0},    {"ARGENTINA", 1}, {"BRAZIL", 1},     {"CANADA", 1},
    {"EGYPT", 4},      {"ETHIOPIA", 0},  {"FRANCE", 3},     {"GERMANY", 3},
    {"INDIA", 2},      {"INDONESIA", 2}, {"IRAN", 4},       {"IRAQ", 4},
    {"JAPAN", 2},      {"JORDAN", 4},    {"KENYA", 0},      {"MOROCCO", 0},
    {"MOZAMBIQUE", 0}, {"PERU", 1},      {"CHINA", 2},      {"ROMANIA", 3},
    {"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},     {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP",
                            "TRUCK",   "MAIL", "FOB"};
const char* kInstructs[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                            "TAKE BACK RETURN"};
const char* kContainers[] = {"SM CASE", "SM BOX", "MED BAG", "MED BOX",
                             "LG CASE", "LG BOX", "WRAP PKG", "JUMBO JAR"};
const char* kTypeSyl1[] = {"STANDARD", "SMALL", "MEDIUM",
                           "LARGE",    "ECONOMY", "PROMO"};
const char* kTypeSyl2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                           "BRUSHED"};
const char* kTypeSyl3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
// Colors for p_name — TPC-H Q9 selects parts by '%green%'.
const char* kColors[] = {"almond", "antique", "aquamarine", "azure",  "beige",
                         "bisque", "black",   "blue",       "blush",  "brown",
                         "ceruleam", "chartreuse", "chocolate", "coral",
                         "cornflower", "cream", "cyan",     "forest", "frosted",
                         "gainsboro", "ghost", "goldenrod", "green",  "honeydew",
                         "hot",    "indian",  "ivory",      "khaki",  "lace",
                         "lavender", "lemon", "light",      "lime",   "linen"};
const char* kWords[] = {"furiously", "quickly", "slyly",     "carefully",
                        "express",   "regular", "ironic",    "final",
                        "bold",      "pending", "special",   "unusual",
                        "requests",  "deposits", "accounts", "packages",
                        "theodolites", "foxes", "dolphins",  "pinto",
                        "beans",     "instructions", "platelets", "asymptotes",
                        "dependencies", "excuses", "ideas",  "sleep",
                        "nag",       "haggle"};

template <size_t N>
const char* Pick(const char* (&arr)[N], Rng& rng) {
  return arr[rng.Uniform(N)];
}

std::string Words(Rng& rng, int count) {
  std::string out;
  for (int i = 0; i < count; ++i) {
    if (i) out += ' ';
    out += Pick(kWords, rng);
  }
  return out;
}

std::string Phone(Rng& rng, int nation) {
  return StrFormat("%02d-%03d-%03d-%04d", 10 + nation,
                   static_cast<int>(rng.UniformRange(100, 999)),
                   static_cast<int>(rng.UniformRange(100, 999)),
                   static_cast<int>(rng.UniformRange(1000, 9999)));
}

double Money(Rng& rng, double lo, double hi) {
  return std::round((lo + (hi - lo) * rng.NextDouble()) * 100.0) / 100.0;
}

}  // namespace

int64_t TpchRows(const char* table, double sf) {
  std::string t = ToLower(table);
  auto scaled = [sf](int64_t base) {
    return std::max<int64_t>(1, static_cast<int64_t>(std::llround(base * sf)));
  };
  if (t == "region") return 5;
  if (t == "nation") return 25;
  if (t == "supplier") return scaled(10000);
  if (t == "customer") return scaled(150000);
  if (t == "part") return scaled(200000);
  if (t == "partsupp") return scaled(200000) * 4;
  if (t == "orders") return scaled(1500000);
  if (t == "lineitem") return scaled(1500000) * 4;  // avg ~4 lines per order
  return 0;
}

Status GenerateTpch(const TpchConfig& config, Catalog* catalog) {
  const int np = config.num_partitions;
  Rng rng(config.seed);

  const int32_t kStartDate = DaysFromCivil(1992, 1, 1);
  const int32_t kEndDate = DaysFromCivil(1998, 8, 2);
  const int32_t kCutoff = DaysFromCivil(1995, 6, 17);

  // region ---------------------------------------------------------------
  {
    Schema schema({ColumnDef::Int32("r_regionkey"), ColumnDef::Char("r_name", 25),
                   ColumnDef::Char("r_comment", 80)});
    auto t = std::make_shared<Table>("region", schema, 1, std::vector<int>{0});
    for (int i = 0; i < 5; ++i) {
      t->AppendValues({Value::Int32(i), Value::String(kRegions[i]),
                       Value::String(Words(rng, 6))});
    }
    CLAIMS_RETURN_IF_ERROR(catalog->RegisterTable(std::move(t)));
  }

  // nation ---------------------------------------------------------------
  {
    Schema schema({ColumnDef::Int32("n_nationkey"), ColumnDef::Char("n_name", 25),
                   ColumnDef::Int32("n_regionkey"),
                   ColumnDef::Char("n_comment", 80)});
    auto t = std::make_shared<Table>("nation", schema, 1, std::vector<int>{0});
    for (int i = 0; i < 25; ++i) {
      t->AppendValues({Value::Int32(i), Value::String(kNations[i].name),
                       Value::Int32(kNations[i].region),
                       Value::String(Words(rng, 6))});
    }
    CLAIMS_RETURN_IF_ERROR(catalog->RegisterTable(std::move(t)));
  }

  const int64_t n_supp = TpchRows("supplier", config.scale_factor);
  const int64_t n_cust = TpchRows("customer", config.scale_factor);
  const int64_t n_part = TpchRows("part", config.scale_factor);
  const int64_t n_orders = TpchRows("orders", config.scale_factor);

  // supplier ---------------------------------------------------------------
  {
    Schema schema({ColumnDef::Int32("s_suppkey"), ColumnDef::Char("s_name", 25),
                   ColumnDef::Char("s_address", 25),
                   ColumnDef::Int32("s_nationkey"),
                   ColumnDef::Char("s_phone", 15),
                   ColumnDef::Float64("s_acctbal"),
                   ColumnDef::Char("s_comment", 60)});
    auto t = std::make_shared<Table>("supplier", schema, np,
                                     std::vector<int>{0});
    for (int64_t i = 1; i <= n_supp; ++i) {
      int nation = static_cast<int>(rng.Uniform(25));
      t->AppendValues({Value::Int32(static_cast<int32_t>(i)),
                       Value::String(StrFormat("Supplier#%09lld",
                                               static_cast<long long>(i))),
                       Value::String(Words(rng, 3)), Value::Int32(nation),
                       Value::String(Phone(rng, nation)),
                       Value::Float64(Money(rng, -999.99, 9999.99)),
                       Value::String(Words(rng, 5))});
    }
    CLAIMS_RETURN_IF_ERROR(catalog->RegisterTable(std::move(t)));
  }

  // customer ---------------------------------------------------------------
  {
    Schema schema({ColumnDef::Int32("c_custkey"), ColumnDef::Char("c_name", 25),
                   ColumnDef::Char("c_address", 25),
                   ColumnDef::Int32("c_nationkey"),
                   ColumnDef::Char("c_phone", 15),
                   ColumnDef::Float64("c_acctbal"),
                   ColumnDef::Char("c_mktsegment", 10),
                   ColumnDef::Char("c_comment", 60)});
    auto t = std::make_shared<Table>("customer", schema, np,
                                     std::vector<int>{0});
    for (int64_t i = 1; i <= n_cust; ++i) {
      int nation = static_cast<int>(rng.Uniform(25));
      t->AppendValues({Value::Int32(static_cast<int32_t>(i)),
                       Value::String(StrFormat("Customer#%09lld",
                                               static_cast<long long>(i))),
                       Value::String(Words(rng, 3)), Value::Int32(nation),
                       Value::String(Phone(rng, nation)),
                       Value::Float64(Money(rng, -999.99, 9999.99)),
                       Value::String(Pick(kSegments, rng)),
                       Value::String(Words(rng, 5))});
    }
    CLAIMS_RETURN_IF_ERROR(catalog->RegisterTable(std::move(t)));
  }

  // part ---------------------------------------------------------------
  {
    Schema schema({ColumnDef::Int32("p_partkey"), ColumnDef::Char("p_name", 55),
                   ColumnDef::Char("p_mfgr", 25), ColumnDef::Char("p_brand", 10),
                   ColumnDef::Char("p_type", 25), ColumnDef::Int32("p_size"),
                   ColumnDef::Char("p_container", 10),
                   ColumnDef::Float64("p_retailprice"),
                   ColumnDef::Char("p_comment", 23)});
    auto t = std::make_shared<Table>("part", schema, np, std::vector<int>{0});
    for (int64_t i = 1; i <= n_part; ++i) {
      std::string name;
      for (int w = 0; w < 5; ++w) {
        if (w) name += ' ';
        name += Pick(kColors, rng);
      }
      int mfgr = static_cast<int>(rng.UniformRange(1, 5));
      std::string type = StrFormat("%s %s %s", Pick(kTypeSyl1, rng),
                                   Pick(kTypeSyl2, rng), Pick(kTypeSyl3, rng));
      double price =
          90000 + (i * 10) % 20001 + 100 * (i % 1000);  // dbgen-style formula
      t->AppendValues(
          {Value::Int32(static_cast<int32_t>(i)), Value::String(name),
           Value::String(StrFormat("Manufacturer#%d", mfgr)),
           Value::String(StrFormat("Brand#%d%d", mfgr,
                                   static_cast<int>(rng.UniformRange(1, 5)))),
           Value::String(type),
           Value::Int32(static_cast<int32_t>(rng.UniformRange(1, 50))),
           Value::String(Pick(kContainers, rng)),
           Value::Float64(price / 100.0), Value::String(Words(rng, 2))});
    }
    CLAIMS_RETURN_IF_ERROR(catalog->RegisterTable(std::move(t)));
  }

  // partsupp ---------------------------------------------------------------
  {
    Schema schema({ColumnDef::Int32("ps_partkey"),
                   ColumnDef::Int32("ps_suppkey"),
                   ColumnDef::Int32("ps_availqty"),
                   ColumnDef::Float64("ps_supplycost"),
                   ColumnDef::Char("ps_comment", 40)});
    auto t = std::make_shared<Table>("partsupp", schema, np,
                                     std::vector<int>{0});
    for (int64_t p = 1; p <= n_part; ++p) {
      for (int s = 0; s < 4; ++s) {
        // dbgen's supplier spread formula keeps (partkey, suppkey) unique.
        int64_t supp =
            (p + s * (n_supp / 4 + (p - 1) / n_supp)) % n_supp + 1;
        t->AppendValues(
            {Value::Int32(static_cast<int32_t>(p)),
             Value::Int32(static_cast<int32_t>(supp)),
             Value::Int32(static_cast<int32_t>(rng.UniformRange(1, 9999))),
             Value::Float64(Money(rng, 1.0, 1000.0)),
             Value::String(Words(rng, 4))});
      }
    }
    CLAIMS_RETURN_IF_ERROR(catalog->RegisterTable(std::move(t)));
  }

  // orders + lineitem --------------------------------------------------------
  {
    Schema oschema({ColumnDef::Int32("o_orderkey"),
                    ColumnDef::Int32("o_custkey"),
                    ColumnDef::Char("o_orderstatus", 1),
                    ColumnDef::Float64("o_totalprice"),
                    ColumnDef::Date("o_orderdate"),
                    ColumnDef::Char("o_orderpriority", 15),
                    ColumnDef::Char("o_clerk", 15),
                    ColumnDef::Int32("o_shippriority"),
                    ColumnDef::Char("o_comment", 79)});
    Schema lschema({ColumnDef::Int32("l_orderkey"),
                    ColumnDef::Int32("l_partkey"),
                    ColumnDef::Int32("l_suppkey"),
                    ColumnDef::Int32("l_linenumber"),
                    ColumnDef::Float64("l_quantity"),
                    ColumnDef::Float64("l_extendedprice"),
                    ColumnDef::Float64("l_discount"),
                    ColumnDef::Float64("l_tax"),
                    ColumnDef::Char("l_returnflag", 1),
                    ColumnDef::Char("l_linestatus", 1),
                    ColumnDef::Date("l_shipdate"), ColumnDef::Date("l_commitdate"),
                    ColumnDef::Date("l_receiptdate"),
                    ColumnDef::Char("l_shipinstruct", 25),
                    ColumnDef::Char("l_shipmode", 10),
                    ColumnDef::Char("l_comment", 44)});
    auto orders = std::make_shared<Table>("orders", oschema, np,
                                          std::vector<int>{0});
    auto lineitem = std::make_shared<Table>("lineitem", lschema, np,
                                            std::vector<int>{0});
    for (int64_t o = 1; o <= n_orders; ++o) {
      // dbgen leaves key gaps; o*4 keeps keys sparse like the real generator.
      int32_t okey = static_cast<int32_t>(o * 4);
      int32_t cust =
          static_cast<int32_t>(rng.UniformRange(1, n_cust));
      int32_t odate = static_cast<int32_t>(
          rng.UniformRange(kStartDate, kEndDate - 151));
      int nlines = static_cast<int>(rng.UniformRange(1, 7));
      double total = 0;
      int f_count = 0;
      for (int l = 1; l <= nlines; ++l) {
        int32_t part = static_cast<int32_t>(rng.UniformRange(1, n_part));
        int64_t supp = (part + (l - 1) * (n_supp / 4 + (part - 1) / n_supp)) %
                           n_supp + 1;
        double qty = static_cast<double>(rng.UniformRange(1, 50));
        double price =
            qty * (90000 + (part * 10) % 20001 + 100 * (part % 1000)) / 100.0;
        double disc = rng.UniformRange(0, 10) / 100.0;
        double tax = rng.UniformRange(0, 8) / 100.0;
        int32_t ship = odate + static_cast<int32_t>(rng.UniformRange(1, 121));
        int32_t commit = odate + static_cast<int32_t>(rng.UniformRange(30, 90));
        int32_t receipt = ship + static_cast<int32_t>(rng.UniformRange(1, 30));
        const char* rf = receipt <= kCutoff ? (rng.Bernoulli(0.5) ? "R" : "A")
                                            : "N";
        const char* ls = ship > kCutoff ? "O" : "F";
        if (*ls == 'F') ++f_count;
        total += price * (1 + tax) * (1 - disc);
        lineitem->AppendValues(
            {Value::Int32(okey), Value::Int32(part),
             Value::Int32(static_cast<int32_t>(supp)), Value::Int32(l),
             Value::Float64(qty), Value::Float64(price), Value::Float64(disc),
             Value::Float64(tax), Value::String(rf), Value::String(ls),
             Value::Date(ship), Value::Date(commit), Value::Date(receipt),
             Value::String(Pick(kInstructs, rng)),
             Value::String(Pick(kShipModes, rng)),
             Value::String(Words(rng, 4))});
      }
      const char* status = f_count == nlines ? "F"
                           : (f_count == 0 ? "O" : "P");
      orders->AppendValues(
          {Value::Int32(okey), Value::Int32(cust), Value::String(status),
           Value::Float64(std::round(total * 100) / 100), Value::Date(odate),
           Value::String(Pick(kPriorities, rng)),
           Value::String(StrFormat("Clerk#%09d",
                                   static_cast<int>(rng.UniformRange(1, 1000)))),
           Value::Int32(0), Value::String(Words(rng, 8))});
    }
    CLAIMS_RETURN_IF_ERROR(catalog->RegisterTable(std::move(orders)));
    CLAIMS_RETURN_IF_ERROR(catalog->RegisterTable(std::move(lineitem)));
  }

  return Status::OK();
}

}  // namespace claims
