#ifndef CLAIMS_STORAGE_SELECTION_VECTOR_H_
#define CLAIMS_STORAGE_SELECTION_VECTOR_H_

#include <cstdint>
#include <numeric>
#include <vector>

#include "storage/block.h"
#include "storage/schema.h"

namespace claims {

/// The survivors of a batch predicate over one Block: row indices, always
/// sorted ascending and unique. Kernels communicate through raw
/// `(const int32_t* sel, int32_t n)` pairs where `sel == nullptr` denotes the
/// dense identity selection 0..n-1 (so an unfiltered block never pays for
/// materializing indices); SelectionVector owns the storage behind the
/// non-dense case and is reused across blocks by the operator that owns it.
///
/// Ownership rule (docs/VECTORIZATION.md): a selection vector indexes exactly
/// one block and never outlives it; operators that emit blocks downstream
/// gather the selected rows out (Block::AppendGather) instead of shipping the
/// vector — blocks on the wire and in DataBuffers are always dense.
class SelectionVector {
 public:
  SelectionVector() = default;

  /// Ensures capacity for selections over an `n`-row block.
  void Reserve(int32_t n) {
    if (static_cast<int32_t>(idx_.size()) < n) idx_.resize(n);
  }

  /// Materializes the identity selection 0..n-1.
  void ResetFull(int32_t n) {
    Reserve(n);
    std::iota(idx_.begin(), idx_.begin() + n, 0);
    count_ = n;
  }

  void set_count(int32_t n) { count_ = n; }
  int32_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  const int32_t* data() const { return idx_.data(); }
  int32_t* mutable_data() { return idx_.data(); }
  int32_t operator[](int32_t i) const { return idx_[i]; }

 private:
  std::vector<int32_t> idx_;
  int32_t count_ = 0;
};

/// Strided view of one column of a row-major block: `base` points at the
/// column's bytes in row 0 and successive rows are `stride` bytes apart.
/// Blocks store fixed-width rows, so a "column batch" is a constant-stride
/// walk — no virtual call, no Value materialization, one cache line feeds
/// several rows of a narrow column.
struct ColumnView {
  const char* base = nullptr;
  int32_t stride = 0;
  DataType type = DataType::kInt64;
  int32_t width = 0;  ///< CHAR payload width; 0 otherwise

  const char* at(int32_t row) const {
    return base + static_cast<size_t>(row) * stride;
  }
};

/// Views column `col` of `block` (whose rows follow `schema`).
inline ColumnView ViewColumn(const Block& block, const Schema& schema,
                             int col) {
  ColumnView v;
  v.base = block.num_rows() > 0 ? block.RowAt(0) + schema.offset(col) : nullptr;
  v.stride = schema.row_size();
  v.type = schema.column(col).type;
  v.width = schema.column(col).char_width;
  return v;
}

}  // namespace claims

#endif  // CLAIMS_STORAGE_SELECTION_VECTOR_H_
