#ifndef CLAIMS_STORAGE_CATALOG_H_
#define CLAIMS_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace claims {

/// Master-node table registry. Also the statistics source for the optimizer
/// and for translating physical plans into the virtual-time simulator.
class Catalog {
 public:
  Catalog() = default;

  Status RegisterTable(TablePtr table);
  Result<TablePtr> GetTable(std::string_view name) const;
  bool HasTable(std::string_view name) const;
  std::vector<std::string> TableNames() const;

  /// Estimated distinct-value count of one column (exact count over a sample
  /// capped at `sample_limit` rows, scaled). Used by the optimizer for
  /// group-by cardinality and join selectivity estimates.
  int64_t EstimateDistinct(const Table& table, int col,
                           int64_t sample_limit = 200000) const;

  /// Fraction of sampled rows satisfying `pred(row)`; drives simulator
  /// selectivities so experiments reflect actual data.
  template <typename Pred>
  double EstimateSelectivity(const Table& table, Pred pred,
                             int64_t sample_limit = 200000) const {
    int64_t seen = 0;
    int64_t hit = 0;
    for (int p = 0; p < table.num_partitions() && seen < sample_limit; ++p) {
      const TablePartition& part = table.partition(p);
      for (int b = 0; b < part.num_blocks() && seen < sample_limit; ++b) {
        const Block& blk = *part.block(b);
        for (int32_t r = 0; r < blk.num_rows() && seen < sample_limit; ++r) {
          ++seen;
          if (pred(blk.RowAt(r))) ++hit;
        }
      }
    }
    return seen == 0 ? 0.0 : static_cast<double>(hit) / seen;
  }

 private:
  std::map<std::string, TablePtr, std::less<>> tables_;
};

}  // namespace claims

#endif  // CLAIMS_STORAGE_CATALOG_H_
