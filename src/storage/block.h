#ifndef CLAIMS_STORAGE_BLOCK_H_
#define CLAIMS_STORAGE_BLOCK_H_

#include <cstdint>
#include <cstring>
#include <memory>

#include "mem/block_pool.h"
#include "storage/schema.h"

namespace claims {

/// Default block payload: 64 KB, chosen in the paper (§5.1) to fit the L2
/// cache and used as the unit of pipelined data flow.
inline constexpr int32_t kDefaultBlockBytes = 64 * 1024;

/// A fixed-capacity batch of fixed-width rows — the basic processing unit of
/// the engine (block-at-a-time, paper §2.1). Besides the row payload a block
/// carries the metadata "tail" of paper §4.3: a sequence number assigned at
/// the stage beginner (order preservation, §3.2) and the instantaneous
/// average visit rate of its tuples, updated as the block crosses segments so
/// the scheduler needs no extra messaging.
class Block {
 public:
  /// Creates an empty block for rows of `row_size` bytes. The payload comes
  /// from the shared BlockPool (non-strict: transit blocks must never fail
  /// mid-pipeline; pool pressure surfaces as fallback counters instead).
  /// Recycled pool memory is not zeroed, so the payload is memset here —
  /// schema padding bytes must compare equal under memcmp-based row checks.
  explicit Block(int32_t row_size, int32_t capacity_bytes = kDefaultBlockBytes)
      : row_size_(row_size),
        capacity_rows_(capacity_bytes / (row_size > 0 ? row_size : 1)),
        payload_(BlockPool::Global()->Allocate(
            static_cast<size_t>(capacity_rows_) * row_size)) {
    std::memset(payload_.data, 0, data_size());
  }

  /// Deep copy: several call sites clone blocks via
  /// `std::make_shared<Block>(*block)` (exchange re-send, tests), so copying
  /// must duplicate the pooled payload, not share or steal it.
  Block(const Block& other)
      : row_size_(other.row_size_),
        capacity_rows_(other.capacity_rows_),
        num_rows_(other.num_rows_),
        sequence_number_(other.sequence_number_),
        visit_rate_(other.visit_rate_),
        payload_(BlockPool::Global()->Allocate(other.data_size())) {
    std::memset(payload_.data, 0, data_size());
    std::memcpy(payload_.data, other.payload_.data, other.data_size());
  }
  Block& operator=(const Block&) = delete;

  ~Block() { BlockPool::Global()->Release(payload_); }

  int32_t row_size() const { return row_size_; }
  int32_t capacity_rows() const { return capacity_rows_; }
  int32_t num_rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }
  bool full() const { return num_rows_ >= capacity_rows_; }
  int64_t payload_bytes() const {
    return static_cast<int64_t>(num_rows_) * row_size_;
  }
  int64_t capacity_bytes() const { return static_cast<int64_t>(data_size()); }

  const char* RowAt(int32_t i) const {
    return payload_.data + static_cast<size_t>(i) * row_size_;
  }
  char* MutableRowAt(int32_t i) {
    return payload_.data + static_cast<size_t>(i) * row_size_;
  }

  /// Reserves the next row slot; returns nullptr when full.
  char* AppendRow() {
    if (full()) return nullptr;
    return MutableRowAt(num_rows_++);
  }

  /// Appends a copy of `row` (must be row_size() bytes); false when full.
  bool AppendRowCopy(const char* row) {
    char* slot = AppendRow();
    if (slot == nullptr) return false;
    std::memcpy(slot, row, row_size_);
    return true;
  }

  /// Appends rows `sel[0..n)` of `src` (same row size). The caller guarantees
  /// capacity — this is the batch-kernel gather inner loop, so it does not
  /// re-check fullness per row.
  void AppendGather(const Block& src, const int32_t* sel, int32_t n) {
    char* dst = MutableRowAt(num_rows_);
    for (int32_t i = 0; i < n; ++i) {
      std::memcpy(dst, src.RowAt(sel[i]), row_size_);
      dst += row_size_;
    }
    num_rows_ += n;
  }

  void Clear() { num_rows_ = 0; }

  // --- Metadata tail (paper §3.2 order preservation, §4.3 visit rates) ------

  uint64_t sequence_number() const { return sequence_number_; }
  void set_sequence_number(uint64_t s) { sequence_number_ = s; }

  double visit_rate() const { return visit_rate_; }
  void set_visit_rate(double v) { visit_rate_ = v; }

 private:
  /// Logical payload size (what capacity_bytes reports and what is zeroed /
  /// copied); payload_.bytes may be larger after size-class rounding.
  size_t data_size() const {
    return static_cast<size_t>(capacity_rows_) * row_size_;
  }

  int32_t row_size_;
  int32_t capacity_rows_;
  int32_t num_rows_ = 0;
  uint64_t sequence_number_ = 0;
  double visit_rate_ = 1.0;
  PoolAlloc payload_;
};

using BlockPtr = std::shared_ptr<Block>;

/// Convenience factory.
inline BlockPtr MakeBlock(int32_t row_size,
                          int32_t capacity_bytes = kDefaultBlockBytes) {
  return std::make_shared<Block>(row_size, capacity_bytes);
}

}  // namespace claims

#endif  // CLAIMS_STORAGE_BLOCK_H_
