#ifndef CLAIMS_STORAGE_PARTITION_H_
#define CLAIMS_STORAGE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "storage/schema.h"

namespace claims {

/// Mixes raw bytes into a 64-bit hash (xxhash-style avalanche). Stable across
/// runs — partition placement is deterministic.
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0);

/// Hashes the key columns of a fixed-width row. Used for table partitioning,
/// repartition-join shuffles, and hash join/aggregation tables, so the same
/// key always lands on the same partition/bucket.
uint64_t HashRowKeys(const Schema& schema, const char* row,
                     const std::vector<int>& key_cols);

/// Batch form of HashRowKeys: hashes rows `sel[0..n)` (or rows 0..n-1 when
/// `sel` is null) column-at-a-time into `out[0..n)`. Produces bit-identical
/// hashes to the row-at-a-time version — hash join and aggregation tables mix
/// batch-hashed probes with scalar-hashed builds freely.
void HashRowKeysBatch(const Schema& schema, const char* rows, int32_t stride,
                      const std::vector<int>& key_cols, const int32_t* sel,
                      int32_t n, uint64_t* out);

/// Maps a key hash onto one of `n` partitions.
inline int PartitionOf(uint64_t hash, int n) {
  return static_cast<int>(hash % static_cast<uint64_t>(n));
}

}  // namespace claims

#endif  // CLAIMS_STORAGE_PARTITION_H_
