#ifndef CLAIMS_STORAGE_TYPES_H_
#define CLAIMS_STORAGE_TYPES_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace claims {

/// Column data types. Rows are fixed-width: CHAR(n) strings are inline,
/// blank-padded; DATE is days since 1970-01-01 stored as int32.
enum class DataType : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kFloat64 = 2,
  kDate = 3,
  kChar = 4,
};

const char* DataTypeName(DataType t);

/// Width in bytes of a value of type `t`; CHAR uses the declared width.
inline int32_t TypeWidth(DataType t, int32_t char_width) {
  switch (t) {
    case DataType::kInt32:
    case DataType::kDate:
      return 4;
    case DataType::kInt64:
      return 8;
    case DataType::kFloat64:
      return 8;
    case DataType::kChar:
      return char_width;
  }
  return 0;
}

/// True for the numeric types (arithmetic and SUM/AVG legal).
inline bool IsNumeric(DataType t) {
  return t == DataType::kInt32 || t == DataType::kInt64 ||
         t == DataType::kFloat64;
}

/// Converts a civil date to days since 1970-01-01 (proleptic Gregorian).
int32_t DaysFromCivil(int year, int month, int day);

/// Inverse of DaysFromCivil.
void CivilFromDays(int32_t days, int* year, int* month, int* day);

/// Parses "YYYY-MM-DD"; returns InvalidArgument on malformed input.
Result<int32_t> ParseDate(std::string_view text);

/// Formats days-since-epoch as "YYYY-MM-DD".
std::string FormatDate(int32_t days);

}  // namespace claims

#endif  // CLAIMS_STORAGE_TYPES_H_
