#ifndef CLAIMS_STORAGE_TABLE_H_
#define CLAIMS_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "storage/block.h"
#include "storage/partition.h"
#include "storage/schema.h"

namespace claims {

/// One horizontal partition of a table: a sequence of immutable 64 KB blocks
/// resident on one cluster node.
class TablePartition {
 public:
  explicit TablePartition(const Schema* schema) : schema_(schema) {}

  int64_t num_rows() const { return num_rows_; }
  int num_blocks() const { return static_cast<int>(blocks_.size()); }
  const BlockPtr& block(int i) const { return blocks_[i]; }
  const std::vector<BlockPtr>& blocks() const { return blocks_; }

  /// Reserves a row slot, opening a new block when the current one is full.
  char* AppendRowSlot();

  /// Total payload bytes across blocks.
  int64_t bytes() const;

 private:
  const Schema* schema_;
  std::vector<BlockPtr> blocks_;
  int64_t num_rows_ = 0;
};

/// An in-memory table hash-partitioned across cluster nodes on its partition
/// key (paper §5.1: tables are hash-partitioned and kept on the 10 nodes).
/// Partition i lives on node i.
class Table {
 public:
  /// `partition_key_cols` may be empty, in which case appended rows are
  /// spread round-robin.
  Table(std::string name, Schema schema, int num_partitions,
        std::vector<int> partition_key_cols);

  CLAIMS_DISALLOW_COPY_AND_ASSIGN(Table);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  int num_partitions() const { return static_cast<int>(partitions_.size()); }
  const TablePartition& partition(int i) const { return partitions_[i]; }
  const std::vector<int>& partition_key_cols() const {
    return partition_key_cols_;
  }

  int64_t num_rows() const;
  int64_t bytes() const;

  /// True when the table is hash-partitioned exactly on `cols` (order
  /// insensitive); lets the planner elide a repartition (co-located join).
  bool IsPartitionedOn(const std::vector<int>& cols) const;

  /// Reserves a slot in the partition chosen by the row's key hash. Caller
  /// fills the returned row, then the key columns must not change. For keyed
  /// tables the caller instead uses AppendValues (the key must be known to
  /// route); raw slots are only valid for round-robin tables.
  char* AppendRowSlotRoundRobin();

  /// Appends a full row of values, routing by partition key hash.
  void AppendValues(const std::vector<Value>& values);

  /// Appends a prepared raw row (row_size bytes), routing by key hash.
  void AppendRawRow(const char* row);

 private:
  std::string name_;
  Schema schema_;
  std::vector<int> partition_key_cols_;
  std::vector<TablePartition> partitions_;
  int round_robin_next_ = 0;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace claims

#endif  // CLAIMS_STORAGE_TABLE_H_
