#include "storage/schema.h"

#include <algorithm>

#include "common/string_util.h"

namespace claims {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  offsets_.reserve(columns_.size());
  int32_t off = 0;
  for (const ColumnDef& c : columns_) {
    offsets_.push_back(off);
    off += TypeWidth(c.type, c.char_width);
  }
  row_size_ = off;
}

int Schema::FindColumn(std::string_view name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return -1;
}

void Schema::SetString(char* row, int col, std::string_view s) const {
  char* p = row + offsets_[col];
  int32_t w = columns_[col].char_width;
  size_t n = std::min<size_t>(s.size(), static_cast<size_t>(w));
  std::memcpy(p, s.data(), n);
  if (n < static_cast<size_t>(w)) std::memset(p + n, 0, w - n);
}

Value Schema::GetValue(const char* row, int col) const {
  switch (columns_[col].type) {
    case DataType::kInt32:
      return Value::Int32(GetInt32(row, col));
    case DataType::kInt64:
      return Value::Int64(GetInt64(row, col));
    case DataType::kFloat64:
      return Value::Float64(GetFloat64(row, col));
    case DataType::kDate:
      return Value::Date(GetInt32(row, col));
    case DataType::kChar:
      return Value::String(std::string(GetString(row, col)));
  }
  return Value();
}

void Schema::SetValue(char* row, int col, const Value& v) const {
  switch (columns_[col].type) {
    case DataType::kInt32:
    case DataType::kDate:
      SetInt32(row, col, v.type() == DataType::kFloat64
                             ? static_cast<int32_t>(v.AsFloat64())
                             : static_cast<int32_t>(v.AsInt64()));
      break;
    case DataType::kInt64:
      SetInt64(row, col, v.type() == DataType::kFloat64
                             ? static_cast<int64_t>(v.AsFloat64())
                             : v.AsInt64());
      break;
    case DataType::kFloat64:
      SetFloat64(row, col, v.ToDouble());
      break;
    case DataType::kChar:
      SetString(row, col, v.AsString());
      break;
  }
}

std::string Schema::ToString() const {
  std::string out;
  for (int i = 0; i < num_columns(); ++i) {
    if (i) out += ", ";
    out += columns_[i].name;
    out += ' ';
    out += DataTypeName(columns_[i].type);
    if (columns_[i].type == DataType::kChar) {
      out += StrFormat("(%d)", columns_[i].char_width);
    }
  }
  return out;
}

}  // namespace claims
