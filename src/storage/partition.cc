#include "storage/partition.h"

namespace claims {

namespace {

inline uint64_t Mix(uint64_t h) {
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed ^ (len * 0x9E3779B97F4A7C15ULL);
  while (len >= 8) {
    uint64_t k;
    std::memcpy(&k, p, 8);
    h = Mix(h ^ k);
    p += 8;
    len -= 8;
  }
  uint64_t k = 0;
  for (size_t i = 0; i < len; ++i) k |= static_cast<uint64_t>(p[i]) << (8 * i);
  return Mix(h ^ k);
}

void HashRowKeysBatch(const Schema& schema, const char* rows, int32_t stride,
                      const std::vector<int>& key_cols, const int32_t* sel,
                      int32_t n, uint64_t* out) {
  for (int32_t i = 0; i < n; ++i) out[i] = 0x2545F4914F6CDD1DULL;
  for (int col : key_cols) {
    const ColumnDef& c = schema.column(col);
    const char* base = rows + schema.offset(col);
    switch (c.type) {
      case DataType::kInt32:
      case DataType::kDate:
        for (int32_t i = 0; i < n; ++i) {
          uint32_t v;
          std::memcpy(&v, base + static_cast<size_t>(sel ? sel[i] : i) * stride,
                      sizeof(v));
          out[i] = Mix(out[i] ^ static_cast<uint64_t>(v));
        }
        break;
      case DataType::kInt64:
        for (int32_t i = 0; i < n; ++i) {
          uint64_t v;
          std::memcpy(&v, base + static_cast<size_t>(sel ? sel[i] : i) * stride,
                      sizeof(v));
          out[i] = Mix(out[i] ^ v);
        }
        break;
      case DataType::kFloat64:
        for (int32_t i = 0; i < n; ++i) {
          uint64_t bits;
          std::memcpy(&bits,
                      base + static_cast<size_t>(sel ? sel[i] : i) * stride, 8);
          out[i] = Mix(out[i] ^ bits);
        }
        break;
      case DataType::kChar:
        for (int32_t i = 0; i < n; ++i) {
          const char* p = base + static_cast<size_t>(sel ? sel[i] : i) * stride;
          size_t len = strnlen(p, c.char_width);
          out[i] = HashBytes(p, len, out[i]);
        }
        break;
    }
  }
}

uint64_t HashRowKeys(const Schema& schema, const char* row,
                     const std::vector<int>& key_cols) {
  uint64_t h = 0x2545F4914F6CDD1DULL;
  for (int col : key_cols) {
    const ColumnDef& c = schema.column(col);
    switch (c.type) {
      case DataType::kInt32:
      case DataType::kDate:
        h = Mix(h ^ static_cast<uint64_t>(
                        static_cast<uint32_t>(schema.GetInt32(row, col))));
        break;
      case DataType::kInt64:
        h = Mix(h ^ static_cast<uint64_t>(schema.GetInt64(row, col)));
        break;
      case DataType::kFloat64: {
        double d = schema.GetFloat64(row, col);
        uint64_t bits;
        std::memcpy(&bits, &d, 8);
        h = Mix(h ^ bits);
        break;
      }
      case DataType::kChar: {
        std::string_view s = schema.GetString(row, col);
        h = HashBytes(s.data(), s.size(), h);
        break;
      }
    }
  }
  return h;
}

}  // namespace claims
