#ifndef CLAIMS_CORE_SCALABILITY_VECTOR_H_
#define CLAIMS_CORE_SCALABILITY_VECTOR_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

namespace claims {

/// Per-segment scalability vector (paper §4.4): entry j holds (t_ij, l_ij) —
/// the last *trustworthy* measured processing rate of the segment running
/// with j worker threads, and the timestamp of that measurement. The
/// scheduler updates the entry for the current parallelism whenever the
/// measured rate was not under-estimated (the segment was neither starved
/// nor output-blocked), and estimates rates at p±1 for Algorithm 1's what-if
/// evaluation:
///  * fresh entry at the target parallelism → use it directly;
///  * otherwise scale the nearest valid entry proportionally to the core
///    count ("estimation is simply proportional to the number of cores").
/// Entries are invalidated when a segment enters a new stage, since the
/// scalability profile differs per stage.
class ScalabilityVector {
 public:
  explicit ScalabilityVector(int max_parallelism);

  /// Marks every entry invalid (stage change).
  void Invalidate();

  /// Records a trustworthy instantaneous rate at parallelism `p`.
  void Update(int p, double rate, int64_t now_ns);

  /// Estimated processing rate at parallelism `p`. `freshness_ns` is the
  /// paper's θ threshold: entries older than that are not used directly but
  /// still serve as scaling anchors. Returns nullopt when the vector holds
  /// no data at all.
  std::optional<double> Estimate(int p, int64_t now_ns,
                                 int64_t freshness_ns) const;

  /// Latest raw entry (rate, timestamp) at `p`, if valid; for tests.
  std::optional<double> Raw(int p) const;

  int max_parallelism() const {
    return static_cast<int>(entries_.size()) - 1;
  }

 private:
  struct Entry {
    double rate = 0.0;
    int64_t timestamp_ns = -1;
    bool valid = false;
  };

  mutable std::mutex mu_;
  std::vector<Entry> entries_;  // index = parallelism, [0..max]
};

}  // namespace claims

#endif  // CLAIMS_CORE_SCALABILITY_VECTOR_H_
