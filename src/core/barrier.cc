#include "core/barrier.h"

namespace claims {

bool DynamicBarrier::Register() {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_) return true;
  ++registered_;
  return false;
}

void DynamicBarrier::Deregister() {
  std::unique_lock<std::mutex> lock(mu_);
  if (open_) return;
  --registered_;
  // The departing worker may have been the only one everyone was waiting for.
  if (registered_ > 0 && arrived_ >= registered_) {
    open_ = true;
    cv_.notify_all();
  } else if (registered_ == 0) {
    // All workers terminated before completing the phase; open so that any
    // future late joiner does not deadlock (the segment is being torn down).
    open_ = true;
    cv_.notify_all();
  }
}

void DynamicBarrier::Arrive() {
  std::unique_lock<std::mutex> lock(mu_);
  if (open_) return;
  ++arrived_;
  if (arrived_ >= registered_) {
    open_ = true;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [this] { return open_; });
}

bool DynamicBarrier::IsOpen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_;
}

int DynamicBarrier::registered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return registered_;
}

}  // namespace claims
