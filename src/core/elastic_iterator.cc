#include "core/elastic_iterator.h"

#include <chrono>

#include "common/logging.h"
#include "obs/profile/profiler.h"
#include "obs/trace.h"

namespace claims {
namespace {

DataBuffer::Options BufferOptions(const ElasticIterator::Options& options) {
  DataBuffer::Options buf;
  buf.capacity_blocks = options.buffer_capacity_blocks;
  buf.order_preserving = options.order_preserving;
  buf.memory = options.memory;
  buf.budget = options.budget;
  buf.profile.query_id = options.query_id;
  buf.profile.label = options.trace_label;
  buf.profile.node = options.trace_pid;
  return buf;
}

}  // namespace

ElasticIterator::ElasticIterator(std::unique_ptr<Iterator> child,
                                 Options options)
    : child_(std::move(child)),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SteadyClock::Default()),
      buffer_(BufferOptions(options)) {
  MetricsRegistry* reg = MetricsRegistry::Global();
  expand_metric_ = reg->counter("elastic.expansions");
  shrink_metric_ = reg->counter("elastic.shrinks");
  expand_latency_metric_ = reg->histogram("elastic.expand_latency_ns");
  shrink_latency_metric_ = reg->histogram("elastic.shrink_latency_ns");
  buffer_peak_metric_ = reg->gauge(
      "buffer.peak:" +
      (options_.trace_label.empty() ? std::string("?") : options_.trace_label));
}

ElasticIterator::~ElasticIterator() { Close(); }

NextResult ElasticIterator::Open(WorkerContext* /*ctx*/) {
  std::lock_guard<std::mutex> lock(mu_);
  if (opened_) return NextResult::kSuccess;
  opened_ = true;
  for (int i = 0; i < options_.initial_parallelism; ++i) {
    StartWorkerLocked(/*core_id=*/i);
  }
  return NextResult::kSuccess;
}

NextResult ElasticIterator::Next(WorkerContext* /*ctx*/, BlockPtr* out) {
  NextResult r = buffer_.Pop(out);
  // A latched worker error cancels the buffer, which Pop reports as
  // end-of-file; surface the failure instead of a wrong empty result.
  if (r == NextResult::kEndOfFile && error_.load(std::memory_order_acquire)) {
    return NextResult::kError;
  }
  return r;
}

void ElasticIterator::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
    for (auto& w : workers_) {
      w->terminate.store(true, std::memory_order_release);
    }
  }
  // Wake any worker blocked on a full buffer and the consumer.
  buffer_.Cancel();
  // Join without holding mu_: exiting workers take mu_ for their final
  // bookkeeping, so joining under the lock would deadlock. No new workers can
  // appear — Expand refuses once closed_ is set.
  JoinAllWorkers();
  child_->Close();
}

ElasticIterator::Worker* ElasticIterator::StartWorkerLocked(int core_id) {
  auto worker = std::make_unique<Worker>();
  worker->worker_id = next_worker_id_++;
  worker->core_id = core_id;
  Worker* w = worker.get();
  buffer_.AddProducer(w->worker_id);
  ++live_workers_;
  if (live_workers_ > peak_parallelism_) peak_parallelism_ = live_workers_;
  workers_.push_back(std::move(worker));
  w->thread = std::thread([this, w] { WorkerMain(w); });
  return w;
}

void ElasticIterator::JoinAllWorkers() {
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void ElasticIterator::WorkerMain(Worker* worker) {
  WorkerContext ctx;
  ctx.worker_id = worker->worker_id;
  ctx.core_id = worker->core_id;
  ctx.socket_id = options_.cores_per_socket > 0
                      ? worker->core_id / options_.cores_per_socket
                      : 0;
  ctx.terminate_requested = &worker->terminate;
  ctx.processing_started = &worker->ready;
  ctx.stats = options_.stats;

  TraceCollector* tc = TraceCollector::Global();
  const bool traced = tc->enabled() && !options_.trace_label.empty();
  QueryProfiler* profiler = QueryProfiler::Global();
  const bool profiled = profiler->armed() && options_.query_id != 0;
  const int64_t span_start = (traced || profiled) ? clock_->NowNanos() : 0;

  bool via_eof = false;
  NextResult open_status = child_->Open(&ctx);
  if (open_status == NextResult::kError) LatchError();
  if (open_status == NextResult::kSuccess) {
    worker->ready.store(true, std::memory_order_release);
    if (traced) {
      // S1/S2 → S3 marker: state construction done, data production begins.
      tc->Instant(clock_->NowNanos(), options_.trace_pid, "elastic",
                  "worker-ready",
                  {{"segment", options_.trace_label},
                   {"worker", static_cast<int64_t>(worker->worker_id)}});
    }
    // Algorithm 2: pull blocks from the child and feed the joint buffer.
    while (true) {
      BlockPtr block;
      NextResult r = child_->Next(&ctx, &block);
      if (r == NextResult::kSuccess) {
        if (block->empty()) {
          // Empty watermark block (e.g. a fully filtered input block): the
          // sequence number must still reach the order-preserving merge or
          // low-selectivity streams stall behind it, but the block itself
          // carries no data — advance the producer watermark instead of
          // enqueuing it.
          buffer_.AdvanceWatermark(worker->worker_id,
                                   block->sequence_number());
          continue;
        }
        int32_t rows = block->num_rows();
        int64_t t0 = clock_->NowNanos();
        bool inserted = buffer_.Insert(worker->worker_id, std::move(block));
        if (options_.stats != nullptr) {
          options_.stats->blocked_output_ns.fetch_add(
              clock_->NowNanos() - t0, std::memory_order_relaxed);
          if (inserted) {
            options_.stats->output_tuples.fetch_add(rows,
                                                    std::memory_order_relaxed);
          }
        }
        if (inserted) {
          double depth = static_cast<double>(buffer_.size());
          buffer_peak_metric_->UpdateMax(depth);
          if (traced) {
            tc->Counter(clock_->NowNanos(), options_.trace_pid,
                        "buffer:" + options_.trace_label, depth);
          }
        } else if (buffer_.resource_exhausted()) {
          // The query's memory ledger refused the block even after the
          // shrink hook ran: a real budget breach, not a routine cancel.
          LatchError();
          break;
        } else {
          break;  // buffer cancelled — segment closing
        }
      } else if (r == NextResult::kEndOfFile) {
        via_eof = true;
        break;
      } else if (r == NextResult::kError) {
        LatchError();
        break;
      } else {  // kTerminated — shrink completed
        break;
      }
    }
  }
  worker->ready.store(true, std::memory_order_release);
  if (traced) {
    int64_t end = clock_->NowNanos();
    tc->Complete(span_start, end - span_start, options_.trace_pid, "elastic",
                 "worker " + options_.trace_label,
                 {{"worker", static_cast<int64_t>(worker->worker_id)},
                  {"exhausted_input", via_eof ? 1.0 : 0.0}});
  }
  if (profiled) {
    ProfSpan span;
    span.query_id = options_.query_id;
    span.kind = SpanKind::kWorker;
    span.name = "worker-" + std::to_string(worker->worker_id);
    span.segment = options_.trace_label;
    span.node = options_.trace_pid;
    span.start_ns = span_start;
    span.end_ns = clock_->NowNanos();
    profiler->EmitComplete(std::move(span));
  }

  // Update liveness counters before leaving the buffer, so that a consumer
  // observing end-of-file (possible only after the last RemoveProducer) also
  // observes finished() == true.
  {
    std::lock_guard<std::mutex> lock(mu_);
    --live_workers_;
    if (via_eof) ++finished_workers_;
  }
  // `finished = via_eof`: only a worker that ran its input dry may contribute
  // to the buffer's end-of-file decision; a terminated (shrunk) departure
  // leaves the stream revivable by a later Expand (see DataBuffer::Pop).
  buffer_.RemoveProducer(worker->worker_id, /*finished=*/via_eof);
  worker->done.store(true, std::memory_order_release);
}

void ElasticIterator::LatchError() {
  bool expected = false;
  if (error_.compare_exchange_strong(expected, true,
                                     std::memory_order_acq_rel)) {
    // First error wins: wake the consumer and unwind the remaining workers.
    // Queued blocks are dropped with the buffer — the result would be wrong
    // anyway.
    buffer_.Cancel();
  }
}

bool ElasticIterator::Expand(int core_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!opened_ || closed_) return false;
  if (error_.load(std::memory_order_acquire)) return false;  // failed
  if (finished_workers_ > 0 && live_workers_ == 0) return false;  // finished
  if (live_workers_ >= options_.max_parallelism) return false;
  StartWorkerLocked(core_id);
  expand_metric_->Add();
  return true;
}

bool ElasticIterator::Shrink() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!opened_ || closed_) return false;
  int shrinkable = 0;
  Worker* victim = nullptr;
  for (auto it = workers_.rbegin(); it != workers_.rend(); ++it) {
    Worker* w = it->get();
    if (!w->done.load(std::memory_order_acquire) &&
        !w->terminate.load(std::memory_order_acquire)) {
      ++shrinkable;
      if (victim == nullptr) victim = w;
    }
  }
  if (victim == nullptr || shrinkable <= options_.min_parallelism) return false;
  victim->terminate.store(true, std::memory_order_release);
  shrink_metric_->Add();
  return true;
}

int64_t ElasticIterator::ShrinkBlocking() {
  Worker* victim = nullptr;
  int64_t t0 = clock_->NowNanos();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!opened_ || closed_) return -1;
    int shrinkable = 0;
    for (auto it = workers_.rbegin(); it != workers_.rend(); ++it) {
      Worker* w = it->get();
      if (!w->done.load(std::memory_order_acquire) &&
          !w->terminate.load(std::memory_order_acquire)) {
        ++shrinkable;
        if (victim == nullptr) victim = w;
      }
    }
    if (victim == nullptr || shrinkable <= options_.min_parallelism) return -1;
    victim->terminate.store(true, std::memory_order_release);
  }
  shrink_metric_->Add();
  while (!victim->done.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  int64_t delay = clock_->NowNanos() - t0;
  shrink_latency_metric_->Record(delay);
  return delay;
}

int64_t ElasticIterator::ExpandMeasured(int core_id) {
  Worker* w = nullptr;
  int64_t t0 = clock_->NowNanos();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!opened_ || closed_) return -1;
    if (error_.load(std::memory_order_acquire)) return -1;
    if (live_workers_ >= options_.max_parallelism) return -1;
    w = StartWorkerLocked(core_id);
  }
  expand_metric_->Add();
  while (!w->ready.load(std::memory_order_acquire) &&
         !w->done.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  int64_t delay = clock_->NowNanos() - t0;
  expand_latency_metric_->Record(delay);
  return delay;
}

int ElasticIterator::peak_parallelism() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_parallelism_;
}

int ElasticIterator::parallelism() const {
  std::lock_guard<std::mutex> lock(mu_);
  int live = 0;
  for (const auto& w : workers_) {
    if (!w->done.load(std::memory_order_acquire) &&
        !w->terminate.load(std::memory_order_acquire)) {
      ++live;
    }
  }
  return live;
}

bool ElasticIterator::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!opened_) return false;
  if (error_.load(std::memory_order_acquire)) return true;  // terminal
  return live_workers_ == 0 && finished_workers_ > 0;
}

}  // namespace claims
