#ifndef CLAIMS_CORE_ELASTIC_ITERATOR_H_
#define CLAIMS_CORE_ELASTIC_ITERATOR_H_

#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/macros.h"
#include "core/data_buffer.h"
#include "core/iterator.h"
#include "core/metrics.h"
#include "obs/metrics_registry.h"

namespace claims {

/// The elastic iterator (paper §3, Fig. 4–5; appendix Alg. 2) — the operator
/// that upgrades a Volcano-style pipeline with runtime parallelism control.
///
/// It owns a pool of worker threads that collaboratively drive the child
/// iterator subtree: each worker recursively calls child->Open() (parallel
/// state construction — building the shared hash table, sorting chunks, ...)
/// and then repeatedly calls child->Next(), inserting result blocks into the
/// joint DataBuffer. The parent iterator (typically the segment's sender)
/// consumes blocks from the buffer via this iterator's Next().
///
/// Elasticity:
///  * Expand() starts one more worker. Because every iterator state is shared
///    (§3: state sharing), the newcomer participates immediately — joining
///    state construction if the segment is in S1/S2, or data production if in
///    S3 — with *no* state migration. Expansion costs well under a
///    millisecond (Fig. 9a).
///  * Shrink() flags one worker for termination. The worker observes the flag
///    at the next block boundary (the termination checks injected into every
///    iterator's Open/Next), finishes its in-flight block so no tuple is lost,
///    deregisters from all barriers, and exits — a few milliseconds at most,
///    growing with the depth of the active stage (Fig. 9b).
class ElasticIterator : public Iterator {
 public:
  struct Options {
    int initial_parallelism = 1;
    int min_parallelism = 1;
    int max_parallelism = 256;
    size_t buffer_capacity_blocks = 64;
    bool order_preserving = false;
    /// Shared segment counters; optional (unit tests may omit).
    SegmentStats* stats = nullptr;
    /// Memory accounting for the buffer (Table 4).
    MemoryTracker* memory = nullptr;
    /// Owning query's binding memory ledger (passed through to the joint
    /// buffer); a refused block charge latches a segment error that the
    /// executor maps to kResourceExhausted.
    QueryBudget* budget = nullptr;
    Clock* clock = nullptr;  ///< defaults to SteadyClock
    /// Simulated cores-per-socket used to derive socket ids from core ids for
    /// the context-reuse pool (paper hardware: 12 cores / socket).
    int cores_per_socket = 12;
    /// Trace identity: segment label ("S1@n0") and trace pid (node id). An
    /// empty label disables per-iterator trace events; metrics still count.
    std::string trace_label;
    int trace_pid = 0;
    /// Owning query for the causal profiler; 0 disables worker/blocked span
    /// emission even when the global QueryProfiler is armed.
    uint64_t query_id = 0;
  };

  ElasticIterator(std::unique_ptr<Iterator> child, Options options);
  ~ElasticIterator() override;

  CLAIMS_DISALLOW_COPY_AND_ASSIGN(ElasticIterator);

  // --- Iterator interface (called by the single parent/consumer thread) ----

  /// Spawns the initial worker pool; returns immediately (state construction
  /// proceeds asynchronously — that *is* the pipeline).
  NextResult Open(WorkerContext* ctx) override;

  /// Pops one result block from the joint buffer; blocks until data arrives
  /// or every worker finished (kEndOfFile). If any worker's child subtree
  /// failed (Open or Next returned kError), returns kError instead of a
  /// wrong empty/partial end-of-file.
  NextResult Next(WorkerContext* ctx, BlockPtr* out) override;

  /// Terminates all workers, drains them, closes the child subtree.
  void Close() override;

  int SubtreeSize() const override { return 1 + child_->SubtreeSize(); }

  // --- Elasticity (called by the dynamic scheduler) -------------------------

  /// Adds one worker on (bookkeeping) core `core_id`. False if the segment is
  /// finished or at max parallelism.
  bool Expand(int core_id);

  /// Asynchronously removes one worker. False if at min parallelism or
  /// nothing to shrink.
  bool Shrink();

  /// Shrink and wait for the worker to fully terminate; returns the shrinkage
  /// delay in nanoseconds, or -1 on failure (Fig. 9b measurement).
  int64_t ShrinkBlocking();

  /// Expand and wait until the new worker is ready to process data; returns
  /// the expansion delay in nanoseconds, or -1 on failure (Fig. 9a).
  int64_t ExpandMeasured(int core_id);

  /// Number of live (non-terminated, non-finished) workers.
  int parallelism() const;

  /// Most workers that were ever live at once.
  int peak_parallelism() const;

  /// True once every worker exhausted the input — or a worker failed (an
  /// errored segment is terminal; the scheduler must stop feeding it cores).
  bool finished() const;

  /// True once any worker's child subtree reported kError. Latched: the
  /// first error wins, cancels the buffer, and is re-raised by Next().
  bool failed() const { return error_.load(std::memory_order_acquire); }

  DataBuffer* buffer() { return &buffer_; }
  Iterator* child() { return child_.get(); }

 private:
  struct Worker {
    std::thread thread;
    std::atomic<bool> terminate{false};
    std::atomic<bool> done{false};
    std::atomic<bool> ready{false};  ///< passed Open; processing data
    int worker_id = 0;
    int core_id = 0;
  };

  void WorkerMain(Worker* worker);
  /// Latches the first child error and cancels the buffer so the consumer
  /// and the remaining workers unwind promptly.
  void LatchError();
  /// Starts a worker; caller holds mu_.
  Worker* StartWorkerLocked(int core_id);
  /// Joins all worker threads; must NOT hold mu_ (workers take it on exit).
  void JoinAllWorkers();

  std::unique_ptr<Iterator> child_;
  Options options_;
  Clock* clock_;
  DataBuffer buffer_;

  // Process-wide elasticity metrics (pointers resolved once; updates are
  // relaxed atomics, so Expand/Shrink latency is unaffected).
  MetricCounter* expand_metric_;
  MetricCounter* shrink_metric_;
  MetricHistogram* expand_latency_metric_;
  MetricHistogram* shrink_latency_metric_;
  MetricGauge* buffer_peak_metric_;  ///< high-watermark, labelled per segment

  /// First child error, if any (see failed()). Atomic so Next()/Expand can
  /// read it without taking mu_.
  std::atomic<bool> error_{false};

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Worker>> workers_;
  int next_worker_id_ = 0;
  int live_workers_ = 0;       ///< started and neither finished nor terminated
  int peak_parallelism_ = 0;   ///< high-watermark of live_workers_
  int finished_workers_ = 0;   ///< exited via end-of-file
  bool opened_ = false;
  bool closed_ = false;
};

}  // namespace claims

#endif  // CLAIMS_CORE_ELASTIC_ITERATOR_H_
