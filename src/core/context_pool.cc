#include "core/context_pool.h"

namespace claims {

void ContextPool::Release(std::unique_ptr<IteratorContext> context,
                          int core_id, int socket_id) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(Entry{std::move(context), core_id, socket_id});
}

std::unique_ptr<IteratorContext> ContextPool::Acquire(int core_id,
                                                      int socket_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    bool match = false;
    switch (mode_) {
      case ContextMode::kVoid:
        match = true;
        break;
      case ContextMode::kProcessor:
        match = e.socket_id == socket_id;
        break;
      case ContextMode::kCore:
        match = e.core_id == core_id;
        break;
    }
    if (match) {
      std::unique_ptr<IteratorContext> out = std::move(entries_[i].context);
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      ++reuse_count_;
      return out;
    }
  }
  return nullptr;
}

std::vector<std::unique_ptr<IteratorContext>> ContextPool::TakeAll() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::unique_ptr<IteratorContext>> out;
  out.reserve(entries_.size());
  for (Entry& e : entries_) out.push_back(std::move(e.context));
  entries_.clear();
  return out;
}

size_t ContextPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

int64_t ContextPool::reuse_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reuse_count_;
}

}  // namespace claims
