#include "core/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "obs/profile/profiler.h"

namespace claims {

void GlobalThroughputBoard::PublishLocal(int node_id, double lambda_local) {
  std::lock_guard<std::mutex> lock(mu_);
  local_lambda_[node_id] = lambda_local;
}

void GlobalThroughputBoard::ClearNode(int node_id) {
  std::lock_guard<std::mutex> lock(mu_);
  local_lambda_.erase(node_id);
}

double GlobalThroughputBoard::GlobalLambda() const {
  std::lock_guard<std::mutex> lock(mu_);
  double lambda = std::numeric_limits<double>::infinity();
  for (const auto& [node, v] : local_lambda_) lambda = std::min(lambda, v);
  return lambda;
}

void GlobalThroughputBoard::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  local_lambda_.clear();
}

DynamicScheduler::DynamicScheduler(int node_id, SchedulerOptions options,
                                   Clock* clock, GlobalThroughputBoard* board)
    : node_id_(node_id),
      options_(options),
      clock_(clock),
      board_(board),
      trace_pid_(options.trace_pid >= 0 ? options.trace_pid : node_id),
      ticks_metric_(MetricsRegistry::Global()->counter("scheduler.ticks")),
      expand_metric_(
          MetricsRegistry::Global()->counter("scheduler.expansions")),
      shrink_metric_(MetricsRegistry::Global()->counter("scheduler.shrinks")),
      move_metric_(
          MetricsRegistry::Global()->counter("scheduler.pair_moves")),
      cores_gauge_(MetricsRegistry::Global()->gauge(
          "scheduler.node" + std::to_string(node_id) + ".cores_in_use")) {}

void DynamicScheduler::AddSegment(SchedulableSegment* segment) {
  std::lock_guard<std::mutex> lock(mu_);
  auto rec = std::make_unique<SegmentRecord>();
  rec->segment = segment;
  records_.push_back(std::move(rec));
}

void DynamicScheduler::RemoveSegment(SchedulableSegment* segment) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.erase(std::remove_if(records_.begin(), records_.end(),
                                [segment](const auto& r) {
                                  return r->segment == segment;
                                }),
                 records_.end());
}

int DynamicScheduler::cores_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  int used = 0;
  for (const auto& r : records_) {
    if (r->segment->active()) used += r->segment->parallelism();
  }
  return used;
}

double DynamicScheduler::NormalizedRate(
    const SchedulableSegment* segment) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& r : records_) {
    if (r->segment == segment && r->has_sample) return r->last_normalized;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

SchedulerSnapshot DynamicScheduler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerSnapshot snap;
  snap.node_id = node_id_;
  snap.num_cores = options_.num_cores;
  snap.ticks = tick_count_.load(std::memory_order_relaxed);
  snap.last_tick_ns = last_tick_ns_;
  snap.last_lambda_local = last_lambda_local_;
  snap.last_global_lambda = last_global_lambda_;
  snap.segments.reserve(records_.size());
  for (const auto& r : records_) {
    SegmentSnapshot s;
    s.name = r->segment->name();
    s.active = r->segment->active();
    s.parallelism = r->segment->parallelism();
    s.normalized_rate = r->last_normalized;
    s.rate = r->last_rate;
    s.blocked_in_fraction = r->blocked_in_fraction;
    s.blocked_out_fraction = r->blocked_out_fraction;
    s.has_sample = r->has_sample;
    if (s.active) snap.cores_in_use += s.parallelism;
    snap.segments.push_back(std::move(s));
  }
  return snap;
}

std::vector<SchedTickAudit> DynamicScheduler::AuditLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {audit_.begin(), audit_.end()};
}

std::vector<SchedTickAudit> DynamicScheduler::AuditLogForQuery(
    uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SchedTickAudit> out;
  for (const SchedTickAudit& tick : audit_) {
    SchedTickAudit filtered;
    for (const SchedTickAudit::Segment& s : tick.segments) {
      if (s.query_id == query_id) filtered.segments.push_back(s);
    }
    if (filtered.segments.empty()) continue;
    filtered.tick = tick.tick;
    filtered.ts_ns = tick.ts_ns;
    filtered.node = tick.node;
    filtered.lambda_local = tick.lambda_local;
    filtered.lambda_global = tick.lambda_global;
    out.push_back(std::move(filtered));
  }
  return out;
}

void DynamicScheduler::SetEnabled(bool enabled) {
  bool was = enabled_.exchange(enabled, std::memory_order_acq_rel);
  if (was && !enabled) {
    // Withdraw this node's λ so the surviving nodes' global minimum no
    // longer includes a dead node's last (stale, possibly bottleneck) rate.
    board_->ClearNode(node_id_);
  }
}

std::vector<SchedulerAction> DynamicScheduler::Tick() {
  if (!enabled_.load(std::memory_order_acquire)) return {};
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SchedulerAction> actions;
  const int64_t now = clock_->NowNanos();
  const double thr = options_.blocked_fraction_threshold;
  ticks_metric_->Add();
  tick_count_.fetch_add(1, std::memory_order_relaxed);
  last_tick_ns_ = now;
  TraceCollector* tc = TraceCollector::Global();
  const bool traced = tc->enabled();

  // ---- 1. Sample metrics -----------------------------------------------------
  struct Classified {
    SegmentRecord* rec;
    double visit_rate;
    bool starved;
    bool out_blocked;
  };
  std::vector<Classified> live;
  int cores_used = 0;
  for (auto& r : records_) {
    if (!r->segment->active()) continue;
    const int p = std::max(1, r->segment->parallelism());
    cores_used += r->segment->parallelism();
    SegmentStats* stats = r->segment->stats();
    double rate = r->rate_sampler.Sample(
        stats->input_tuples.load(std::memory_order_relaxed), now);
    double blocked_in_rate = r->blocked_in_sampler.Sample(
        stats->blocked_input_ns.load(std::memory_order_relaxed), now);
    double blocked_out_rate = r->blocked_out_sampler.Sample(
        stats->blocked_output_ns.load(std::memory_order_relaxed), now);
    if (!r->has_sample) {
      // First tick only primes the samplers.
      r->has_sample = true;
      continue;
    }
    double v = std::max(1e-9, stats->visit_rate.load(std::memory_order_relaxed));
    r->last_rate = rate;
    r->last_normalized = rate / v;
    // blocked counters accumulate over p workers; normalize to per-worker
    // fraction of the tick.
    r->blocked_in_fraction = blocked_in_rate / 1e9 / p;
    r->blocked_out_fraction = blocked_out_rate / 1e9 / p;
    bool starved = r->blocked_in_fraction > thr;
    bool out_blocked = r->blocked_out_fraction > thr;
    // §4.4: only record the rate when it is not under-estimated.
    if (!starved && !out_blocked && rate > 0) {
      r->segment->scalability()->Update(r->segment->parallelism(), rate, now);
    }
    live.push_back(Classified{r.get(), v, starved, out_blocked});
  }

  // With several queries sharing the node (src/wlm), this gauge is the
  // observable cross-query occupancy the admission budgets are sized
  // against.
  cores_gauge_->Set(cores_used);

  // ---- 2. Publish local λ, read global λ -------------------------------------
  // Segments whose measured rate is under-estimated (§4.4) — starved of
  // input or throttled by a full output/network — must not define the
  // pipeline throughput, or λ collapses to their bogus rates.
  double lambda_local = std::numeric_limits<double>::infinity();
  for (const Classified& c : live) {
    if (!c.starved && !c.out_blocked) {
      lambda_local = std::min(lambda_local, c.rec->last_normalized);
    }
  }
  board_->PublishLocal(node_id_, lambda_local);
  const double lambda = board_->GlobalLambda();
  last_lambda_local_ = std::isinf(lambda_local) ? -1.0 : lambda_local;
  last_global_lambda_ = std::isinf(lambda) ? -1.0 : lambda;
  if (traced) {
    // One tick instant carrying λ plus a counter series per live segment —
    // Perfetto renders the parallelism/R_i time lines Figs. 10-12 plot.
    const double lambda_arg = std::isinf(lambda) ? -1.0 : lambda;
    tc->Instant(now, trace_pid_, "sched", "tick",
                {{"lambda", lambda_arg},
                 {"cores_used", cores_used},
                 {"free_cores", options_.num_cores - cores_used},
                 {"segments", static_cast<int>(live.size())}});
    for (const Classified& c : live) {
      // Series names are cached on the record: building them fresh each
      // traced tick put two string concatenations on the control loop.
      if (c.rec->trace_parallelism_name.empty()) {
        const std::string& seg = c.rec->segment->name();
        c.rec->trace_parallelism_name = "parallelism:" + seg;
        c.rec->trace_rate_name = "R:" + seg;
      }
      tc->Counter(now, trace_pid_, c.rec->trace_parallelism_name,
                  c.rec->segment->parallelism());
      tc->Counter(now, trace_pid_, c.rec->trace_rate_name,
                  c.rec->last_normalized);
    }
  }
  if (std::getenv("CLAIMS_SCHED_DEBUG") != nullptr && node_id_ == 0) {
    std::fprintf(stderr, "[tick t=%.2f lambda=%.0f]", now / 1e9, lambda);
    for (const Classified& c : live) {
      std::fprintf(stderr, " %s(p=%d R=%.0f bi=%.2f bo=%.2f%s%s)",
                   c.rec->segment->name().c_str(),
                   c.rec->segment->parallelism(), c.rec->last_normalized,
                   c.rec->blocked_in_fraction, c.rec->blocked_out_fraction,
                   c.starved ? " ST" : "", c.out_blocked ? " OB" : "");
    }
    std::fprintf(stderr, "\n");
  }
  auto estimate_rate = [&](SegmentRecord* rec, int p) -> double {
    auto est = rec->segment->scalability()->Estimate(p, now,
                                                     options_.freshness_ns);
    if (est.has_value()) return *est;
    // No data yet: assume linear scaling from the live sample.
    int cur = std::max(1, rec->segment->parallelism());
    return rec->last_rate * static_cast<double>(p) / cur;
  };

  // Decision audit: recorded only while the profiler is armed (one relaxed
  // load otherwise), pairing this tick's measurements and actions with the
  // prediction the previous tick left behind — so the assembled profile can
  // show estimated vs. realized rates per decision.
  std::map<SegmentRecord*, std::string> action_of;
  auto record_audit = [&]() {
    if (!QueryProfiler::Global()->armed()) return;
    SchedTickAudit audit;
    audit.tick = tick_count_.load(std::memory_order_relaxed);
    audit.ts_ns = now;
    audit.node = node_id_;
    audit.lambda_local = last_lambda_local_;
    audit.lambda_global = last_global_lambda_;
    for (const Classified& c : live) {
      SchedTickAudit::Segment s;
      s.name = c.rec->segment->name();
      s.query_id = c.rec->segment->query_id();
      s.parallelism = c.rec->segment->parallelism();
      s.rate = c.rec->last_rate;
      s.normalized_rate = c.rec->last_normalized;
      s.predicted_rate = c.rec->pending_prediction;
      s.blocked_in = c.rec->blocked_in_fraction;
      s.blocked_out = c.rec->blocked_out_fraction;
      auto it = action_of.find(c.rec);
      if (it != action_of.end()) {
        s.action = it->second;
      } else {
        s.action = c.starved ? "hold(starved)"
                             : c.out_blocked ? "hold(out-blocked)" : "hold";
      }
      audit.segments.push_back(std::move(s));
      // Predict next tick's realized rate at the post-action parallelism.
      c.rec->pending_prediction = estimate_rate(
          c.rec, std::max(1, c.rec->segment->parallelism()));
    }
    audit_.push_back(std::move(audit));
    while (audit_.size() > kAuditCap) audit_.pop_front();
  };

  if (live.empty() || std::isinf(lambda)) {
    record_audit();
    return actions;
  }
  const double delta = std::max(lambda * options_.delta_fraction, 1e-9);

  // ---- 3. U / O classification (Algorithm 1 lines 1-2) -----------------------
  std::vector<Classified*> under;
  std::vector<Classified*> over;
  for (Classified& c : live) {
    if (c.starved || c.out_blocked) continue;
    if (c.rec->last_normalized <= lambda * (1.0 + options_.under_epsilon)) {
      under.push_back(&c);
    } else if (c.rec->last_normalized >= lambda * options_.over_factor &&
               c.rec->segment->parallelism() > 1) {
      over.push_back(&c);
    }
  }

  // ---- 4. Hand out free cores first ------------------------------------------
  int free_cores = options_.num_cores - cores_used;
  if (free_cores > 0 && !under.empty()) {
    for (int round = 0;
         round < std::min(free_cores, options_.max_free_expansions); ++round) {
      Classified* best = nullptr;
      double best_gain = -1;
      for (Classified* c : under) {
        int p = c->rec->segment->parallelism();
        double gain = estimate_rate(c->rec, p + 1) - c->rec->last_rate;
        if (gain > best_gain) {
          best_gain = gain;
          best = c;
        }
      }
      if (best == nullptr || !best->rec->segment->Expand(cores_used)) break;
      ++cores_used;
      expand_metric_->Add();
      if (traced) {
        // Decision context of Algorithm 1 at the moment the core moved: the
        // segment was in the U set (R_i ≤ λ(1+ε)) and a free core existed.
        tc->Instant(now, trace_pid_, "sched", "Expand",
                    {{"segment", best->rec->segment->name()},
                     {"reason", "free-core:U-set"},
                     {"lambda", lambda},
                     {"R_i", best->rec->last_normalized}});
      }
      action_of[best->rec] = "expand+1(free)";
      actions.push_back(SchedulerAction{SchedulerAction::Kind::kExpandFree,
                                        best->rec->segment->name(), ""});
    }
  } else if (!under.empty() && !over.empty()) {
    // ---- 5. Algorithm 1 pair evaluation (lines 5-11) -------------------------
    Classified* best_u = nullptr;
    Classified* best_o = nullptr;
    double best_score = -1;
    for (Classified* u : under) {
      for (Classified* o : over) {
        if (u == o) continue;
        int pu = u->rec->segment->parallelism();
        int po = o->rec->segment->parallelism();
        if (po <= 1) continue;
        double ru = estimate_rate(u->rec, pu + 1) / u->visit_rate;
        double ro = estimate_rate(o->rec, po - 1) / o->visit_rate;
        if (ru >= lambda + delta && ro >= lambda + delta) {
          double score = std::min(ru, ro);
          if (score > best_score) {
            best_score = score;
            best_u = u;
            best_o = o;
          }
        }
      }
    }
    if (best_u != nullptr && best_o->rec->segment->Shrink()) {
      if (!best_u->rec->segment->Expand(cores_used)) {
        // The receiver refused the core (finished or hit its own max since
        // classification). The donor already gave one worker up — without
        // compensation the core vanishes from every segment until some later
        // tick notices the free-pool surplus. Give it straight back, and
        // record nothing: no shrink, no expansion, no pair move happened.
        if (!best_o->rec->segment->Expand(cores_used)) {
          // Donor finished too; the core genuinely returns to the free pool.
          CLAIMS_LOG(Warning)
              << "pair move aborted: receiver "
              << best_u->rec->segment->name() << " and donor "
              << best_o->rec->segment->name()
              << " both refused the core; returning it to the free pool";
        } else if (traced) {
          tc->Instant(now, trace_pid_, "sched", "PairMoveAborted",
                      {{"receiver", best_u->rec->segment->name()},
                       {"donor", best_o->rec->segment->name()},
                       {"reason", "receiver-refused:compensated"}});
        }
      } else {
        move_metric_->Add();
        expand_metric_->Add();
        shrink_metric_->Add();
        if (traced) {
          // Algorithm-1 pair move: donor from the O set (R_i ≥ λ·over), the
          // receiver from the U set (R_i ≤ λ(1+ε)); both what-if rates
          // cleared λ+Δ.
          tc->Instant(now, trace_pid_, "sched", "Expand",
                      {{"segment", best_u->rec->segment->name()},
                       {"reason", "pair-move:U-set"},
                       {"lambda", lambda},
                       {"R_i", best_u->rec->last_normalized}});
          tc->Instant(now, trace_pid_, "sched", "Shrink",
                      {{"segment", best_o->rec->segment->name()},
                       {"reason", "pair-move:O-set"},
                       {"lambda", lambda},
                       {"R_i", best_o->rec->last_normalized}});
        }
        action_of[best_u->rec] = "expand+1(pair)";
        action_of[best_o->rec] = "shrink-1(pair)";
        actions.push_back(SchedulerAction{SchedulerAction::Kind::kMovePair,
                                          best_u->rec->segment->name(),
                                          best_o->rec->segment->name()});
      }
    }
  }

  // ---- 6. Reclaim cores from starved / over-producing segments ---------------
  for (Classified& c : live) {
    int p = c.rec->segment->parallelism();
    if (c.starved && p > options_.starved_parallelism) {
      if (c.rec->segment->Shrink()) {
        shrink_metric_->Add();
        if (traced) {
          tc->Instant(now, trace_pid_, "sched", "Shrink",
                      {{"segment", c.rec->segment->name()},
                       {"reason", "starved"},
                       {"blocked_in_fraction", c.rec->blocked_in_fraction},
                       {"R_i", c.rec->last_normalized}});
        }
        action_of[c.rec] = "shrink-1(starved)";
        actions.push_back(SchedulerAction{
            SchedulerAction::Kind::kShrinkStarved, "", c.rec->segment->name()});
      }
    } else if (c.out_blocked && p > 1 &&
               c.rec->blocked_out_fraction > 1.4 * thr) {
      // Over-producing: the consumer/network cannot absorb the output; keep
      // the producing rate matched by dropping one core (hysteresis margin
      // avoids oscillation around the matched parallelism).
      if (c.rec->segment->Shrink()) {
        shrink_metric_->Add();
        if (traced) {
          tc->Instant(now, trace_pid_, "sched", "Shrink",
                      {{"segment", c.rec->segment->name()},
                       {"reason", "over-producing"},
                       {"blocked_out_fraction", c.rec->blocked_out_fraction},
                       {"R_i", c.rec->last_normalized}});
        }
        action_of[c.rec] = "shrink-1(over-producing)";
        actions.push_back(SchedulerAction{
            SchedulerAction::Kind::kShrinkOverproducing, "",
            c.rec->segment->name()});
      }
    }
  }
  record_audit();
  return actions;
}

}  // namespace claims
