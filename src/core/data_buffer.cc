#include "core/data_buffer.h"

#include <algorithm>

#include "common/clock.h"
#include "obs/profile/profiler.h"

namespace claims {
namespace {

/// Opens a blocked-output span when an Insert is about to block (the caller
/// checked the full condition under the buffer lock; the profiler mutex is a
/// leaf lock, safe to take here). Returns 0 when disarmed.
uint64_t BeginBlockedOutputSpan(const DataBuffer::Options& options,
                                int64_t start_ns) {
  QueryProfiler* profiler = QueryProfiler::Global();
  if (!profiler->armed()) return 0;
  ProfSpan span;
  span.query_id = options.profile.query_id;
  span.kind = SpanKind::kBlockedOutput;
  span.name = "buffer-insert";
  span.segment = options.profile.label;
  span.node = options.profile.node;
  span.start_ns = start_ns;
  return profiler->BeginOpen(span);
}

void EndBlockedOutputSpan(uint64_t token, int64_t start_ns) {
  if (token == 0) return;
  QueryProfiler* profiler = QueryProfiler::Global();
  const int64_t end_ns = SteadyClock::Default()->NowNanos();
  if (end_ns - start_ns < QueryProfiler::kMinBlockedSpanNs) {
    profiler->AbortOpen(token);  // too short to matter; fold into counters
  } else {
    profiler->EndOpen(token, end_ns);
  }
}

}  // namespace

void DataBuffer::AddProducer(int producer_id) {
  std::lock_guard<std::mutex> lock(mu_);
  ++active_producers_;
  ever_had_producer_ = true;
  if (options_.order_preserving) {
    producers_.emplace(producer_id, ProducerQueue{});
  }
}

void DataBuffer::RemoveProducer(int producer_id, bool finished) {
  std::lock_guard<std::mutex> lock(mu_);
  --active_producers_;
  if (finished) any_finished_ = true;
  if (options_.order_preserving) {
    auto it = producers_.find(producer_id);
    if (it != producers_.end()) it->second.finished = true;
  }
  // A departing producer can complete the merge precondition or signal EOF.
  not_empty_.notify_all();
}

DataBuffer::~DataBuffer() {
  // Cancelled streams can leave queued blocks behind; refund their budget
  // charges so the ledger balances for rejected/cancelled queries too.
  if (options_.budget == nullptr) return;
  for (const BlockPtr& b : fifo_) options_.budget->Release(b->payload_bytes());
  for (const auto& [id, q] : producers_) {
    for (const BlockPtr& b : q.blocks) {
      options_.budget->Release(b->payload_bytes());
    }
  }
}

bool DataBuffer::Insert(int producer_id, BlockPtr block) {
  // Charge the binding ledger before taking mu_: the refused-charge path runs
  // the executor's shrink hook, which takes live-segment and scheduler locks;
  // under mu_ that would deadlock against TriggerCancel's lock order
  // (live_mu_ -> elastic mu_ -> buffer mu_). See docs/CONCURRENCY.md.
  const int64_t charge =
      options_.budget != nullptr ? block->payload_bytes() : 0;
  if (charge > 0 && !options_.budget->Charge(charge)) {
    options_.budget->MarkRejected();
    resource_exhausted_.store(true, std::memory_order_release);
    return false;
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.order_preserving) {
    ProducerQueue& q = producers_.at(producer_id);
    // A producer whose queue is empty may be the one gating the k-way merge;
    // refusing its insert at capacity would deadlock the pipeline, so the
    // bound only applies once it has data queued (worst case: capacity + P).
    if (!cancelled_ && total_blocks_ >= options_.capacity_blocks &&
        !q.blocks.empty()) {
      const int64_t start_ns = SteadyClock::Default()->NowNanos();
      uint64_t token = BeginBlockedOutputSpan(options_, start_ns);
      not_full_.wait(lock, [&] {
        return cancelled_ || total_blocks_ < options_.capacity_blocks ||
               q.blocks.empty();
      });
      EndBlockedOutputSpan(token, start_ns);
    }
    if (cancelled_) {
      if (charge > 0) options_.budget->Release(charge);
      return false;
    }
    q.watermark = std::max(q.watermark, block->sequence_number());
    if (options_.memory != nullptr) options_.memory->Allocate(block->payload_bytes());
    q.blocks.push_back(std::move(block));
  } else {
    if (!cancelled_ && total_blocks_ >= options_.capacity_blocks) {
      const int64_t start_ns = SteadyClock::Default()->NowNanos();
      uint64_t token = BeginBlockedOutputSpan(options_, start_ns);
      not_full_.wait(lock, [&] {
        return cancelled_ || total_blocks_ < options_.capacity_blocks;
      });
      EndBlockedOutputSpan(token, start_ns);
    }
    if (cancelled_) {
      if (charge > 0) options_.budget->Release(charge);
      return false;
    }
    if (options_.memory != nullptr) options_.memory->Allocate(block->payload_bytes());
    fifo_.push_back(std::move(block));
  }
  ++total_blocks_;
  not_empty_.notify_one();
  return true;
}

void DataBuffer::AdvanceWatermark(int producer_id, uint64_t seq) {
  if (!options_.order_preserving) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = producers_.find(producer_id);
  if (it == producers_.end()) return;
  if (seq > it->second.watermark) {
    it->second.watermark = seq;
    not_empty_.notify_all();
  }
}

bool DataBuffer::PopReadyLocked() const {
  if (total_blocks_ == 0) return false;
  if (!options_.order_preserving) return true;
  // Find the globally smallest queued sequence number.
  uint64_t min_seq = UINT64_MAX;
  for (const auto& [id, q] : producers_) {
    if (!q.blocks.empty()) {
      min_seq = std::min(min_seq, q.blocks.front()->sequence_number());
    }
  }
  if (min_seq == UINT64_MAX) return false;
  // Releasable only if no lagging producer can still insert a smaller one.
  for (const auto& [id, q] : producers_) {
    if (q.blocks.empty() && !q.finished && q.watermark < min_seq) return false;
  }
  return true;
}

bool DataBuffer::ExhaustedLocked() const {
  // End-of-file is only genuine when no producer is left AND at least one of
  // them ran its input dry (or none ever registered). If every current
  // producer departed *terminated* — all shrunk away, none finished — the
  // input is not exhausted; the stream is paused until an Expand registers a
  // replacement producer (or Cancel ends it). This closes the premature-EOF
  // window where a consumer woke between a departing worker's RemoveProducer
  // and a concurrent AddProducer and saw 0 producers / 0 blocks.
  return active_producers_ == 0 && total_blocks_ == 0 &&
         (any_finished_ || !ever_had_producer_);
}

NextResult DataBuffer::Pop(BlockPtr* out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] {
    return cancelled_ || PopReadyLocked() || ExhaustedLocked();
  });
  if (cancelled_) return NextResult::kEndOfFile;
  if (ExhaustedLocked()) return NextResult::kEndOfFile;
  if (options_.order_preserving) {
    ProducerQueue* best = nullptr;
    uint64_t min_seq = UINT64_MAX;
    for (auto& [id, q] : producers_) {
      if (!q.blocks.empty() && q.blocks.front()->sequence_number() < min_seq) {
        min_seq = q.blocks.front()->sequence_number();
        best = &q;
      }
    }
    *out = std::move(best->blocks.front());
    best->blocks.pop_front();
  } else {
    *out = std::move(fifo_.front());
    fifo_.pop_front();
  }
  --total_blocks_;
  if (options_.memory != nullptr) options_.memory->Release((*out)->payload_bytes());
  if (options_.budget != nullptr) options_.budget->Release((*out)->payload_bytes());
  // notify_all, not notify_one: a pop can simultaneously free a capacity slot
  // for one producer and enable the empty-queue bypass of another; waking the
  // wrong single producer loses the wakeup and deadlocks the merge.
  not_full_.notify_all();
  return NextResult::kSuccess;
}

void DataBuffer::Cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  cancelled_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

size_t DataBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_blocks_;
}

bool DataBuffer::cancelled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancelled_;
}

int DataBuffer::num_producers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_producers_;
}

}  // namespace claims
