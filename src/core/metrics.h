#ifndef CLAIMS_CORE_METRICS_H_
#define CLAIMS_CORE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>

#include "common/clock.h"

namespace claims {

/// Shared runtime counters of one segment, updated by its worker threads and
/// sampled by the dynamic scheduler each tick (paper §4.3–4.4). The real
/// engine updates them with wall-clock nanoseconds; the virtual-time
/// simulator updates the identical structure with virtual nanoseconds, so
/// the scheduler code is substrate-agnostic.
struct SegmentStats {
  /// Tuples consumed at the stage beginner (scan/merger) — the basis of the
  /// processing rate T_i.
  std::atomic<int64_t> input_tuples{0};
  /// Tuples emitted into the elastic iterator's buffer; input vs output gives
  /// the segment selectivity δ_i.
  std::atomic<int64_t> output_tuples{0};
  /// Time workers spent blocked waiting for input (starved) or for space in
  /// the output buffer / network (over-producing). Used to decide whether a
  /// measured rate is "under-estimated" (§4.4) and to classify segments for
  /// Algorithm 1.
  std::atomic<int64_t> blocked_input_ns{0};
  std::atomic<int64_t> blocked_output_ns{0};
  /// Average visit rate V_i aggregated from input block tails (§4.3).
  std::atomic<double> visit_rate{1.0};

  double selectivity() const {
    int64_t in = input_tuples.load(std::memory_order_relaxed);
    int64_t out = output_tuples.load(std::memory_order_relaxed);
    return in == 0 ? 1.0 : static_cast<double>(out) / static_cast<double>(in);
  }
};

/// Aggregates the visit-rate contributions carried in input block tails: a
/// segment's V_i is the sum of the latest contribution from each producer
/// (paper Fig. 7: V_j = Σ_i p_ij · δ_i · V_i). Stage beginners call Observe
/// per input block; the running sum lands in SegmentStats::visit_rate.
class VisitRateAggregator {
 public:
  explicit VisitRateAggregator(SegmentStats* stats) : stats_(stats) {}

  /// Records the latest tail value from `producer_id` and refreshes V_i.
  ///
  /// Thread safety: the whole update — map slot, running sum, and the store
  /// into SegmentStats::visit_rate — happens under mu_, so the atomic only
  /// ever receives complete sums (no read-modify-write races between
  /// concurrent observers). visit_rate readers take relaxed loads.
  void Observe(int producer_id, double tail_visit_rate);

 private:
  SegmentStats* stats_;
  std::mutex mu_;
  std::map<int, double> latest_;
  double sum_ = 0.0;  ///< Σ latest_ values, maintained incrementally
};

/// Differentiates a monotone counter into an instantaneous rate between
/// scheduler ticks.
class RateSampler {
 public:
  /// Returns the rate (units/sec) since the previous Sample call; the first
  /// call primes the baseline and returns 0.
  double Sample(int64_t counter, int64_t now_ns);

  void Reset();

 private:
  bool primed_ = false;
  int64_t last_counter_ = 0;
  int64_t last_ns_ = 0;
};

}  // namespace claims

#endif  // CLAIMS_CORE_METRICS_H_
