#ifndef CLAIMS_CORE_CONTEXT_POOL_H_
#define CLAIMS_CORE_CONTEXT_POOL_H_

#include <memory>
#include <mutex>
#include <vector>

#include "common/macros.h"

namespace claims {

/// Base class for per-worker auxiliary iterator state ("context", §3.2(1)) —
/// e.g. the private partial-aggregation hash table of hybrid aggregation.
class IteratorContext {
 public:
  virtual ~IteratorContext() = default;
};

/// Context-reuse locality policy (paper §3.2(1)):
///  * kVoid      — any worker may reuse any parked context;
///  * kProcessor — only workers on the same NUMA socket may reuse it (the
///                 context may still sit in that socket's LLC / local memory);
///  * kCore      — only workers on the same core may reuse it (private-cache
///                 residency).
/// Iterators pick a mode by the storage footprint of their context.
enum class ContextMode { kVoid = 0, kProcessor = 1, kCore = 2 };

/// Parking lot for worker contexts across shrink/expand cycles. When a worker
/// terminates it parks its context here instead of destroying it; a later
/// expansion reuses a compatible context and skips the (potentially
/// expensive) initialization — the key to the paper's millisecond-level
/// parallelism adjustments under frequent expand/shrink.
class ContextPool {
 public:
  explicit ContextPool(ContextMode mode) : mode_(mode) {}
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(ContextPool);

  ContextMode mode() const { return mode_; }

  /// Parks a context created on (core_id, socket_id).
  void Release(std::unique_ptr<IteratorContext> context, int core_id,
               int socket_id);

  /// Takes a context compatible with the caller's placement under the pool's
  /// mode, or nullptr when none is parked (the caller then builds a fresh
  /// one). kVoid matches anything; kProcessor matches socket; kCore matches
  /// core.
  std::unique_ptr<IteratorContext> Acquire(int core_id, int socket_id);

  /// Drains every parked context (used by blocking iterators that must fold
  /// all partial states into the global one at the end of construction).
  std::vector<std::unique_ptr<IteratorContext>> TakeAll();

  size_t size() const;

  /// Total contexts ever constructed fresh vs reused; exposed so tests and
  /// the Fig. 9 bench can verify reuse actually happens.
  int64_t reuse_count() const;

 private:
  struct Entry {
    std::unique_ptr<IteratorContext> context;
    int core_id;
    int socket_id;
  };

  ContextMode mode_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  int64_t reuse_count_ = 0;
};

}  // namespace claims

#endif  // CLAIMS_CORE_CONTEXT_POOL_H_
