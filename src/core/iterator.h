#ifndef CLAIMS_CORE_ITERATOR_H_
#define CLAIMS_CORE_ITERATOR_H_

#include <atomic>
#include <cstdint>

#include "storage/block.h"

namespace claims {

struct SegmentStats;

/// Result of Iterator::Open / Iterator::Next, following the paper's appendix:
/// SUCCESS carries a block (Next) or a constructed state (Open); TERMINATED
/// means the calling worker thread observed a terminate request (shrinkage)
/// and must unwind; end-of-file means the input dataflow is exhausted. ERROR
/// means the operator failed (bad input, resource exhaustion, ...): the
/// stream is broken, not merely empty — consumers must not report the blocks
/// seen so far as a complete result. ElasticIterator latches the first error
/// any of its workers observes and re-raises it from its own Next().
enum class NextResult {
  kSuccess = 0,
  kEndOfFile = 1,
  kTerminated = 2,
  kError = 3,
};

/// Per-worker-thread execution context threaded through every Open/Next call.
/// It carries the terminate flag polled by `DetectedTerminateRequest()` (the
/// appendix's termination checks), the worker's simulated core placement used
/// by the context-reuse pool (§3.2), and the segment's shared statistics
/// counters read by the dynamic scheduler.
struct WorkerContext {
  int worker_id = 0;
  /// Simulated core / NUMA-socket placement (threads are not pinned; ids feed
  /// the context pool's core/processor reuse modes).
  int core_id = 0;
  int socket_id = 0;

  /// Set by ElasticIterator::Shrink; checked at block boundaries.
  std::atomic<bool>* terminate_requested = nullptr;

  /// Set by the stage beginner when this worker takes its first data block —
  /// the paper's "beginning of data processing" moment that bounds the
  /// expansion delay (Fig. 9a). A worker expanded into a blocking state
  /// construction starts processing long before Open returns.
  std::atomic<bool>* processing_started = nullptr;

  /// Metrics sink for the dynamic scheduler; may be null in unit tests.
  SegmentStats* stats = nullptr;

  bool DetectedTerminateRequest() const {
    return terminate_requested != nullptr &&
           terminate_requested->load(std::memory_order_acquire);
  }
};

/// The elastic iterator model's operator interface (paper §3.1). Unlike the
/// classic Volcano protocol, Open and Next are **thread-safe and called
/// concurrently by all worker threads of a segment**:
///
///  * `Open` recursively constructs iterator state. Non-blocking iterators
///    initialize once (first caller) behind a dynamic barrier; blocking
///    iterators (hash join build, aggregation, sort) let every worker consume
///    child blocks in parallel into a shared state. Returns kTerminated if
///    the calling worker received a terminate request mid-construction.
///  * `Next` produces one output block per call. Read-only iterators need no
///    synchronization; state-updating iterators use atomics/CAS.
///  * `Close` tears down the subtree; called once after all workers exited.
class Iterator {
 public:
  virtual ~Iterator() = default;

  virtual NextResult Open(WorkerContext* ctx) = 0;
  virtual NextResult Next(WorkerContext* ctx, BlockPtr* out) = 0;
  virtual void Close() = 0;

  /// Number of iterators in this subtree (used by Fig. 9 overhead benches).
  virtual int SubtreeSize() const { return 1; }
};

}  // namespace claims

#endif  // CLAIMS_CORE_ITERATOR_H_
