#include "core/metrics.h"

namespace claims {

void VisitRateAggregator::Observe(int producer_id, double tail_visit_rate) {
  std::lock_guard<std::mutex> lock(mu_);
  latest_[producer_id] = tail_visit_rate;
  double sum = 0;
  for (const auto& [id, v] : latest_) sum += v;
  stats_->visit_rate.store(sum, std::memory_order_relaxed);
}

double RateSampler::Sample(int64_t counter, int64_t now_ns) {
  if (!primed_) {
    primed_ = true;
    last_counter_ = counter;
    last_ns_ = now_ns;
    return 0.0;
  }
  int64_t dt = now_ns - last_ns_;
  int64_t dc = counter - last_counter_;
  last_counter_ = counter;
  last_ns_ = now_ns;
  if (dt <= 0) return 0.0;
  return static_cast<double>(dc) * 1e9 / static_cast<double>(dt);
}

void RateSampler::Reset() { primed_ = false; }

}  // namespace claims
