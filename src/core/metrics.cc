#include "core/metrics.h"

namespace claims {

void VisitRateAggregator::Observe(int producer_id, double tail_visit_rate) {
  // Invariant: stats_->visit_rate is written ONLY here, under mu_, as one
  // store of a value derived entirely from mu_-guarded state (the incremental
  // sum over `latest_`). There is never a load-modify-store on the atomic
  // itself, so concurrent Observe calls cannot interleave halfway and lose an
  // update. Readers (the scheduler's sampling path, reports) use relaxed
  // loads: they may see a value that lags by a block tail, but always one
  // that equals Σ latest contributions at some point in time.
  std::lock_guard<std::mutex> lock(mu_);
  double& slot = latest_[producer_id];  // value-initialized to 0.0 when new
  sum_ += tail_visit_rate - slot;
  slot = tail_visit_rate;
  stats_->visit_rate.store(sum_, std::memory_order_relaxed);
}

double RateSampler::Sample(int64_t counter, int64_t now_ns) {
  if (!primed_) {
    primed_ = true;
    last_counter_ = counter;
    last_ns_ = now_ns;
    return 0.0;
  }
  int64_t dt = now_ns - last_ns_;
  int64_t dc = counter - last_counter_;
  last_counter_ = counter;
  last_ns_ = now_ns;
  if (dt <= 0) return 0.0;
  return static_cast<double>(dc) * 1e9 / static_cast<double>(dt);
}

void RateSampler::Reset() { primed_ = false; }

}  // namespace claims
