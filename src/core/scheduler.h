#ifndef CLAIMS_CORE_SCHEDULER_H_
#define CLAIMS_CORE_SCHEDULER_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/macros.h"
#include "core/metrics.h"
#include "core/scalability_vector.h"
#include "obs/metrics_registry.h"
#include "obs/profile/span.h"
#include "obs/trace.h"

namespace claims {

/// Scheduler-facing view of a running segment. Both the real engine's
/// Segment (cluster/segment.h) and the virtual-time simulator's SimSegment
/// implement this, so the Algorithm-1 logic below is substrate-agnostic.
class SchedulableSegment {
 public:
  virtual ~SchedulableSegment() = default;

  virtual const std::string& name() const = 0;
  /// Owning query (0 when the segment is not query-scoped, e.g. benches);
  /// the decision audit uses it to slice per-query profiles out of a shared
  /// scheduler.
  virtual uint64_t query_id() const { return 0; }
  /// False once the segment's input is exhausted (drop from scheduling).
  virtual bool active() const = 0;
  virtual int parallelism() const = 0;
  virtual SegmentStats* stats() = 0;
  virtual ScalabilityVector* scalability() = 0;
  /// Adds / removes one worker (ElasticIterator::Expand / Shrink).
  virtual bool Expand(int core_id) = 0;
  virtual bool Shrink() = 0;
};

/// Cluster-wide blackboard for the pipeline throughput λ (paper §4.2): every
/// node publishes the minimum normalized processing rate of its local
/// segments; the global λ is the minimum over nodes. With λ known, each node
/// optimizes locally — no cross-node parallelism assignment is needed.
class GlobalThroughputBoard {
 public:
  GlobalThroughputBoard() = default;
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(GlobalThroughputBoard);

  void PublishLocal(int node_id, double lambda_local);
  void ClearNode(int node_id);

  /// min over published nodes; +inf when nothing is published.
  double GlobalLambda() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<int, double> local_lambda_;
};

struct SchedulerOptions {
  /// Cores available to query processing on this node (paper's m).
  int num_cores = 24;
  /// U-set width: segments with R_i ≤ λ·(1+epsilon) count as close to the
  /// bottleneck (under-performing).
  double under_epsilon = 0.25;
  /// O-set threshold: segments with R_i ≥ λ·over_factor are over-performing
  /// donors.
  double over_factor = 1.6;
  /// Algorithm 1's penalty factor Δ, as a fraction of λ: a core move must
  /// leave both sides' normalized rates ≥ λ·(1+delta_fraction).
  double delta_fraction = 0.05;
  /// θ: scalability-vector entries older than this are stale (§4.4).
  int64_t freshness_ns = 2'000'000'000;
  /// A segment whose workers spent more than this fraction of the tick
  /// blocked on input is starved; blocked on output, over-producing. Either
  /// way its measured rate is "under-estimated" and not recorded (§4.4).
  double blocked_fraction_threshold = 0.25;
  /// Most cores a starved segment keeps while it has nothing to process.
  int starved_parallelism = 1;
  /// Free-pool cores handed out per tick (pair moves stay one per tick, as
  /// in Algorithm 1).
  int max_free_expansions = 2;
  /// Trace "process" id for this scheduler's events; -1 uses the node id.
  /// The virtual-time simulator sets 1000+node so one capture can hold both
  /// substrates without track collisions (see obs/trace.h).
  int trace_pid = -1;
};

/// Per-tick decision record, for tests / Fig. 10-13 traces.
struct SchedulerAction {
  enum class Kind { kExpandFree, kMovePair, kShrinkStarved, kShrinkOverproducing };
  Kind kind;
  std::string expanded;  // segment names (empty when n/a)
  std::string shrunk;
};

/// Point-in-time view of one scheduled segment (monitoring /scheduler).
struct SegmentSnapshot {
  std::string name;
  bool active = false;
  int parallelism = 0;
  double normalized_rate = 0.0;  ///< last sampled R_i (0 before first sample)
  double rate = 0.0;             ///< last sampled T_i, tuples/sec
  double blocked_in_fraction = 0.0;
  double blocked_out_fraction = 0.0;
  bool has_sample = false;
};

/// Point-in-time view of one node's DynamicScheduler, cheap enough to take
/// on every monitoring scrape (one mutex, no segment callbacks beyond
/// active()/parallelism()).
struct SchedulerSnapshot {
  int node_id = 0;
  int num_cores = 0;
  int cores_in_use = 0;
  int64_t ticks = 0;          ///< Tick() invocations since construction
  int64_t last_tick_ns = 0;   ///< clock time of the most recent tick (0: none)
  /// λ values published/read on the most recent tick; negative when the node
  /// had no trustworthy sample (infinity does not survive JSON).
  double last_lambda_local = -1.0;
  double last_global_lambda = -1.0;
  std::vector<SegmentSnapshot> segments;
};

/// The per-node dynamic scheduler (paper §4, Fig. 6; Algorithm 1). Runs as an
/// independent control loop; each Tick() it
///  1. samples every local segment's processing rate T_i and visit rate V_i,
///     refreshing scalability vectors when the measurement is trustworthy;
///  2. publishes the local λ = min R_i (R_i = T_i / V_i) and reads global λ;
///  3. hands free cores to the most promising under-performing segment;
///  4. evaluates Algorithm 1 pair moves (U × O) using scalability-vector
///     what-ifs, executing the best pair;
///  5. shrinks starved / over-producing segments so their cores return to
///     the free pool.
class DynamicScheduler {
 public:
  DynamicScheduler(int node_id, SchedulerOptions options, Clock* clock,
                   GlobalThroughputBoard* board);
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(DynamicScheduler);

  void AddSegment(SchedulableSegment* segment);
  void RemoveSegment(SchedulableSegment* segment);

  /// Graceful degradation on node loss: a disabled scheduler's Tick() is a
  /// no-op and its node's λ entry is withdrawn from the board, so the
  /// surviving nodes' global λ no longer waits on a dead node (the board
  /// minimum would otherwise pin every survivor to a stale bottleneck).
  /// Idempotent; a scheduler is never re-enabled (node rejoin is out of
  /// scope for the in-process cluster).
  void SetEnabled(bool enabled);
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// One scheduling round; returns the actions taken.
  std::vector<SchedulerAction> Tick();

  /// Cores currently assigned to local segments.
  int cores_in_use() const;
  int node_id() const { return node_id_; }
  const SchedulerOptions& options() const { return options_; }

  /// Latest sampled normalized rate of a segment (for traces/tests); NaN if
  /// unknown.
  double NormalizedRate(const SchedulableSegment* segment) const;

  /// Live view for the monitoring endpoint (/scheduler) and the watchdog's
  /// tick-progress probe.
  SchedulerSnapshot Snapshot() const;
  /// Ticks executed so far (lock-free; watchdog progress probe).
  int64_t tick_count() const {
    return tick_count_.load(std::memory_order_relaxed);
  }

  /// Decision audit (oldest first): recorded per tick while the global
  /// QueryProfiler is armed, bounded to the most recent kAuditCap ticks.
  /// Each entry pairs what the tick measured (rate, R_i, blocked fractions)
  /// with what it decided (action) and what the *previous* tick predicted
  /// this one would measure — estimated vs. realized λ per decision.
  std::vector<SchedTickAudit> AuditLog() const;
  /// Entries restricted to `query_id`'s segments; ticks that saw none of the
  /// query's segments are omitted.
  std::vector<SchedTickAudit> AuditLogForQuery(uint64_t query_id) const;

 private:
  struct SegmentRecord {
    SchedulableSegment* segment;
    RateSampler rate_sampler;
    RateSampler blocked_in_sampler;   // ns/ns fractions via rate of ns counter
    RateSampler blocked_out_sampler;
    double last_rate = 0.0;        // T_i tuples/sec
    double last_normalized = 0.0;  // R_i = T_i / V_i
    double blocked_in_fraction = 0.0;
    double blocked_out_fraction = 0.0;
    bool has_sample = false;
    /// Scalability-vector estimate, made at the end of a tick, of the rate
    /// this segment should realize by the next tick at its post-action
    /// parallelism; -1 before the first estimate. Consumed by the next
    /// tick's audit entry as predicted_rate.
    double pending_prediction = -1.0;
    /// Trace counter-series names, built once instead of per traced tick.
    std::string trace_parallelism_name;
    std::string trace_rate_name;
  };

  static constexpr size_t kAuditCap = 512;

  int node_id_;
  SchedulerOptions options_;
  Clock* clock_;
  GlobalThroughputBoard* board_;

  // Observability (near-zero cost when tracing is off; metric updates are
  // single relaxed atomics). Pointers resolved once at construction.
  int trace_pid_;
  MetricCounter* ticks_metric_;
  MetricCounter* expand_metric_;
  MetricCounter* shrink_metric_;
  MetricCounter* move_metric_;
  /// Per-node occupancy (Σ parallelism of active segments, all queries),
  /// refreshed each tick: "scheduler.node<N>.cores_in_use".
  MetricGauge* cores_gauge_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SegmentRecord>> records_;
  std::deque<SchedTickAudit> audit_;   ///< guarded by mu_
  int64_t last_tick_ns_ = 0;           ///< guarded by mu_
  double last_lambda_local_ = -1.0;    ///< guarded by mu_
  double last_global_lambda_ = -1.0;   ///< guarded by mu_
  std::atomic<int64_t> tick_count_{0};
  std::atomic<bool> enabled_{true};
};

}  // namespace claims

#endif  // CLAIMS_CORE_SCHEDULER_H_
