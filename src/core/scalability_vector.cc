#include "core/scalability_vector.h"

#include <algorithm>
#include <cmath>

namespace claims {

ScalabilityVector::ScalabilityVector(int max_parallelism)
    : entries_(static_cast<size_t>(std::max(1, max_parallelism)) + 1) {}

void ScalabilityVector::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) e = Entry{};
}

void ScalabilityVector::Update(int p, double rate, int64_t now_ns) {
  if (p < 0 || p >= static_cast<int>(entries_.size())) return;
  std::lock_guard<std::mutex> lock(mu_);
  entries_[p] = Entry{rate, now_ns, true};
}

std::optional<double> ScalabilityVector::Estimate(int p, int64_t now_ns,
                                                  int64_t freshness_ns) const {
  if (p <= 0) return 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  int n = static_cast<int>(entries_.size());
  int pc = std::min(p, n - 1);
  if (entries_[pc].valid && now_ns - entries_[pc].timestamp_ns <= freshness_ns) {
    return entries_[pc].rate;
  }
  // Neighbour record: the scheduler only ever moves one core at a time, so a
  // valid record at p±1 is the expected fallback; failing that, take the
  // nearest valid entry and scale proportionally to the core count.
  int best = -1;
  int best_dist = INT32_MAX;
  for (int j = 1; j < n; ++j) {
    if (!entries_[j].valid) continue;
    int dist = std::abs(j - p);
    if (dist < best_dist ||
        (dist == best_dist &&
         entries_[j].timestamp_ns > entries_[best].timestamp_ns)) {
      best = j;
      best_dist = dist;
    }
  }
  if (best < 0) return std::nullopt;
  return entries_[best].rate * static_cast<double>(p) /
         static_cast<double>(best);
}

std::optional<double> ScalabilityVector::Raw(int p) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (p < 0 || p >= static_cast<int>(entries_.size()) || !entries_[p].valid) {
    return std::nullopt;
  }
  return entries_[p].rate;
}

}  // namespace claims
