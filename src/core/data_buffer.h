#ifndef CLAIMS_CORE_DATA_BUFFER_H_
#define CLAIMS_CORE_DATA_BUFFER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>

#include "common/macros.h"
#include "common/memory_tracker.h"
#include "core/iterator.h"
#include "mem/query_budget.h"
#include "storage/block.h"

namespace claims {

/// The elastic iterator's joint output buffer (paper §3.1, Fig. 5): worker
/// threads insert result blocks concurrently; the single consumer (typically
/// the segment's sender) pops them via Pop(). The buffer is bounded, giving
/// natural backpressure — producer threads block when the consumer (or the
/// network behind it) cannot keep up, which is exactly the signal the dynamic
/// scheduler uses to detect over-producing segments.
///
/// In order-preserving mode (§3.2(2)) each producer's inserts must carry
/// non-decreasing block sequence numbers (guaranteed by the stage-beginner
/// numbering); Pop() then performs a streaming k-way merge, releasing the
/// globally smallest sequence number only once no lagging producer can still
/// insert a smaller one.
class DataBuffer {
 public:
  struct Options {
    size_t capacity_blocks = 64;
    bool order_preserving = false;
    /// Optional accounting sink for Table 4 memory measurements.
    MemoryTracker* memory = nullptr;
    /// Owning query's binding memory ledger. When set, Insert charges the
    /// block's payload bytes *before* taking the buffer lock (the budget's
    /// shrink hook reaches into scheduler locks; calling it under mu_ would
    /// cycle with the cancel path — see docs/CONCURRENCY.md) and a refused
    /// charge fails the Insert with resource_exhausted() latched.
    QueryBudget* budget = nullptr;
    /// Profiler identity of the segment this buffer belongs to. When the
    /// global QueryProfiler is armed, an Insert that actually blocks on
    /// capacity registers an open blocked-output span under this identity —
    /// so a stalled pipeline's watchdog incident names the segment wedged on
    /// backpressure, and sufficiently long waits become spans in the query
    /// profile. All-defaults (query_id 0) still records under an anonymous
    /// identity; the assembler simply has no query to attach it to.
    struct ProfileContext {
      uint64_t query_id = 0;
      std::string label;  ///< segment instance, e.g. "S1@n0"
      int node = 0;
    };
    ProfileContext profile;
  };

  explicit DataBuffer(Options options) : options_(options) {}
  ~DataBuffer();
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(DataBuffer);

  /// Registers a producer before its worker thread starts (or on expansion).
  void AddProducer(int producer_id);

  /// A producer will never insert again. `finished` distinguishes *why* it
  /// left: true means it exhausted its input (end-of-file), false means it was
  /// terminated early (shrink). The distinction matters for Pop's end-of-file
  /// decision: a buffer whose producers all left *terminated* is paused, not
  /// exhausted — an Expand may register a new producer and resume the stream.
  /// Without it, a consumer racing a departing worker against a concurrent
  /// AddProducer could observe zero producers and zero blocks and report a
  /// wrong (empty) end-of-file for a still-live segment.
  void RemoveProducer(int producer_id, bool finished = true);

  /// Inserts a block, blocking while the buffer is at capacity. Returns false
  /// if the buffer was cancelled while waiting, or — with a budget attached —
  /// when the query's memory ledger refused the block even after the shrink
  /// hook ran (resource_exhausted() distinguishes the two).
  bool Insert(int producer_id, BlockPtr block);

  /// True once an Insert failed on a refused budget charge. The elastic
  /// iterator's worker turns this into a latched segment error instead of
  /// treating the false return as a routine cancellation.
  bool resource_exhausted() const {
    return resource_exhausted_.load(std::memory_order_acquire);
  }

  /// Order-preserving mode only: promises that `producer_id` will never
  /// insert a block with sequence number < `seq` again, unblocking the merge
  /// across low-selectivity stretches.
  void AdvanceWatermark(int producer_id, uint64_t seq);

  /// Consumer side: pops one block, blocking until data is available or the
  /// stream is exhausted (kEndOfFile): every producer left and at least one
  /// of them finished (or none was ever registered). If all producers were
  /// terminated early, Pop keeps waiting for a replacement producer or
  /// Cancel. Cancellation also yields kEndOfFile.
  NextResult Pop(BlockPtr* out);

  /// Wakes all waiters; subsequent Inserts fail and Pops drain then EOF.
  void Cancel();

  size_t size() const;
  bool cancelled() const;
  int num_producers() const;

 private:
  struct ProducerQueue {
    std::deque<BlockPtr> blocks;
    uint64_t watermark = 0;  ///< producer never inserts a seq below this again
    bool finished = false;
  };

  // All guarded by mu_.
  bool PopReadyLocked() const;
  bool ExhaustedLocked() const;
  size_t TotalLocked() const { return total_blocks_; }

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<BlockPtr> fifo_;                 // unordered mode
  std::map<int, ProducerQueue> producers_;    // ordered mode uses queues
  size_t total_blocks_ = 0;
  int active_producers_ = 0;
  bool ever_had_producer_ = false;  ///< any AddProducer happened
  bool any_finished_ = false;       ///< a producer left via end-of-file
  bool cancelled_ = false;
  std::atomic<bool> resource_exhausted_{false};
};

}  // namespace claims

#endif  // CLAIMS_CORE_DATA_BUFFER_H_
