#ifndef CLAIMS_CORE_BARRIER_H_
#define CLAIMS_CORE_BARRIER_H_

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "common/macros.h"

namespace claims {

/// Synchronization barrier with *dynamic membership* (paper appendix A.2.2).
///
/// Classic barriers assume a fixed thread count; under the elastic iterator
/// model the number of worker threads changes mid-execution, so the barrier
/// maintains a mutable `thread_count`:
///  * a newly expanded worker calls Register() on every barrier of the
///    iterator it enters (registerToAllBarriers), raising the count so
///    existing workers wait for it;
///  * a terminating worker calls Deregister() (broadcastExitToAllBarriers),
///    lowering the count so waiters stop expecting it.
///
/// Additionally the barrier is *one-shot open*: once a generation completes
/// (state construction finished), the barrier stays open and late-joining
/// workers pass through Arrive() immediately — a worker expanded after hash
/// table construction must not wait for a construction phase that already
/// happened (§3.1, Expand in S3).
class DynamicBarrier {
 public:
  DynamicBarrier() = default;
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(DynamicBarrier);

  /// Adds the calling worker to the expected set. No-op once the barrier has
  /// opened. Returns true if the barrier is already open (caller may skip the
  /// guarded phase entirely).
  bool Register();

  /// Removes a worker that will never arrive (termination). If the removed
  /// worker was the last one outstanding, the barrier opens and waiters are
  /// released.
  void Deregister();

  /// Blocks until every registered worker has arrived (or the barrier is
  /// already open). The completing arrival opens the barrier.
  void Arrive();

  bool IsOpen() const;

  /// Expected-thread count; exposed for tests.
  int registered() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int registered_ = 0;
  int arrived_ = 0;
  bool open_ = false;
};

/// First-caller election helper: exactly one worker performs a light-weight
/// initialization (scan cursor, filter predicate, merger thread) while the
/// rest wait at the accompanying barrier (appendix: isFirstWorkerThread()).
class FirstCallerGate {
 public:
  FirstCallerGate() = default;
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(FirstCallerGate);

  /// True for exactly the first invocation.
  bool TryClaim() {
    bool expected = false;
    return claimed_.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel);
  }

 private:
  std::atomic<bool> claimed_{false};
};

}  // namespace claims

#endif  // CLAIMS_CORE_BARRIER_H_
