#include "fault/injector.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "mem/block_pool.h"
#include "obs/timeseries/timeseries.h"
#include "obs/trace.h"

namespace claims {
namespace {

/// Marks a fault transition on the metric time axis, so a chaos run's
/// /timeseries (and /dash) shows cause next to effect. No-op when no sampler
/// is published. Called under the injector mutex; the sampler never calls
/// back into the injector, so injector_mu → sampler_mu is a safe order.
void AnnotateTimeline(const FaultSpec& spec, bool begin) {
  MetricSampler* sampler = MetricSampler::Default();
  if (sampler == nullptr) return;
  std::string label = StrFormat("fault.%s", FaultKindName(spec.kind));
  if (spec.node >= 0) label += StrFormat(" node=%d", spec.node);
  sampler->Annotate(std::move(label), begin);
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, Clock* clock)
    : plan_(std::move(plan)),
      clock_(clock != nullptr ? clock : SteadyClock::Default()),
      rng_(plan_.seed) {
  MetricsRegistry* reg = MetricsRegistry::Global();
  drops_metric_ = reg->counter("fault.drops");
  delays_metric_ = reg->counter("fault.delays");
  duplicates_metric_ = reg->counter("fault.duplicates");
  crashes_metric_ = reg->counter("fault.crashes");
  nic_rewrites_metric_ = reg->counter("fault.nic_rewrites");
  mem_pressure_metric_ = reg->counter("fault.mem_pressure");
  activations_metric_ = reg->counter("fault.activations");
  // Out-of-the-box actuator: squeeze the process-wide pool. cap < 0 is the
  // restore signal (window closed) and maps to "uncapped".
  mem_pressure_handler_ = [](int64_t cap) {
    BlockPool::Global()->SetPressureCapBytes(cap < 0 ? 0 : cap);
  };
  windows_.reserve(plan_.faults.size());
  for (const FaultSpec& spec : plan_.faults) windows_.push_back(Window{spec});
  // Transition times sorted so PollOnce applies them in plan order and the
  // event log ordering never depends on poll timing.
  std::stable_sort(windows_.begin(), windows_.end(),
                   [](const Window& a, const Window& b) {
                     return a.spec.at_ns < b.spec.at_ns;
                   });
}

FaultInjector::~FaultInjector() { Disarm(); }

void FaultInjector::SetNicRewriter(
    std::function<void(int, int64_t)> rewriter) {
  std::lock_guard<std::mutex> lock(mu_);
  nic_rewriter_ = std::move(rewriter);
}

void FaultInjector::SetCrashHandler(std::function<void(int)> handler) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_handler_ = std::move(handler);
}

void FaultInjector::SetMemPressureHandler(
    std::function<void(int64_t)> handler) {
  std::lock_guard<std::mutex> lock(mu_);
  mem_pressure_handler_ = std::move(handler);
}

void FaultInjector::ArmManual() {
  bool expected = false;
  if (!armed_.compare_exchange_strong(expected, true)) return;
  std::lock_guard<std::mutex> lock(mu_);
  arm_time_ns_ = clock_->NowNanos();
}

void FaultInjector::Arm() {
  bool was_armed = armed_.load(std::memory_order_acquire);
  ArmManual();
  if (was_armed || poll_thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  poll_thread_ = std::thread([this] { PollLoop(); });
}

void FaultInjector::Disarm() {
  stop_.store(true, std::memory_order_release);
  if (poll_thread_.joinable()) poll_thread_.join();
}

void FaultInjector::PollLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    PollOnce();
    clock_->SleepNanos(1'000'000);
  }
}

int FaultInjector::PollOnce() {
  if (!armed_.load(std::memory_order_acquire)) return 0;
  std::vector<std::function<void()>> actuations;
  int applied = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    applied = ApplyTransitionsLocked(clock_->NowNanos() - arm_time_ns_,
                                     &actuations);
  }
  // Actuators (NIC rewrite, node kill) reach back into cluster locks; never
  // call them while holding mu_ — the hot path takes mu_ under fabric locks.
  for (auto& fn : actuations) fn();
  return applied;
}

int FaultInjector::ApplyTransitionsLocked(
    int64_t t, std::vector<std::function<void()>>* actuations) {
  TraceCollector* tc = TraceCollector::Global();
  int applied = 0;
  for (Window& w : windows_) {
    const FaultSpec& spec = w.spec;
    if (!w.activated && t >= spec.at_ns) {
      w.activated = true;
      ++applied;
      activations_metric_->Add();
      // Event time is the *planned* activation, not `t`: wall-clock poll
      // jitter must not leak into the byte-compared log.
      events_.push_back(FaultEvent{spec.at_ns, true, spec.ToString()});
      switch (spec.kind) {
        case FaultKind::kDegradeNic:
          nic_rewrites_metric_->Add();
          if (nic_rewriter_) {
            actuations->push_back([fn = nic_rewriter_, node = spec.node,
                                   bps = spec.bandwidth_bytes_per_sec] {
              fn(node, bps);
            });
          }
          w.deactivated = spec.duration_ns <= 0;  // no window to close
          break;
        case FaultKind::kMemPressure:
          mem_pressure_metric_->Add();
          if (mem_pressure_handler_) {
            actuations->push_back([fn = mem_pressure_handler_,
                                   cap = spec.mem_cap_bytes] { fn(cap); });
          }
          w.deactivated = spec.duration_ns <= 0;  // no window to close
          break;
        case FaultKind::kCrashNode:
          crashes_metric_->Add();
          if (spec.node >= 0 && spec.node < 64) {
            dead_nodes_mask_.fetch_or(uint64_t{1} << spec.node,
                                      std::memory_order_release);
          }
          if (crash_handler_) {
            actuations->push_back(
                [fn = crash_handler_, node = spec.node] { fn(node); });
          }
          w.deactivated = true;  // one-shot, permanent
          break;
        default:
          // Send-path windows (drop/delay/dup/disconnect/straggle) act
          // through OnSend while active; nothing to actuate here.
          active_windows_.fetch_add(1, std::memory_order_release);
          break;
      }
      if (tc->enabled()) {
        tc->Instant(clock_->NowNanos(), std::max(0, spec.node), "fault",
                    "activate",
                    {{"kind", std::string(FaultKindName(spec.kind))},
                     {"at_ns", spec.at_ns}});
      }
      AnnotateTimeline(spec, /*begin=*/true);
      if ((spec.kind == FaultKind::kDegradeNic ||
           spec.kind == FaultKind::kMemPressure) &&
          w.deactivated) {
        continue;
      }
    }
    if (w.activated && !w.deactivated && spec.duration_ns > 0 &&
        t >= spec.at_ns + spec.duration_ns) {
      w.deactivated = true;
      ++applied;
      events_.push_back(FaultEvent{spec.at_ns + spec.duration_ns, false,
                                   spec.ToString()});
      if (spec.kind == FaultKind::kDegradeNic) {
        if (nic_rewriter_) {
          actuations->push_back(
              [fn = nic_rewriter_, node = spec.node] { fn(node, -1); });
        }
      } else if (spec.kind == FaultKind::kMemPressure) {
        if (mem_pressure_handler_) {
          actuations->push_back(
              [fn = mem_pressure_handler_] { fn(-1); });  // restore: uncap
        }
      } else {
        active_windows_.fetch_sub(1, std::memory_order_release);
      }
      if (tc->enabled()) {
        tc->Instant(clock_->NowNanos(), std::max(0, spec.node), "fault",
                    "restore",
                    {{"kind", std::string(FaultKindName(spec.kind))},
                     {"at_ns", spec.at_ns + spec.duration_ns}});
      }
      AnnotateTimeline(spec, /*begin=*/false);
    }
  }
  return applied;
}

bool FaultInjector::MatchesLocked(const Window& w, int exchange_id, int from,
                                  int to) const {
  if (!w.activated || w.deactivated) return false;
  const FaultSpec& spec = w.spec;
  if (spec.exchange_id >= 0 && spec.exchange_id != exchange_id) return false;
  if (spec.kind == FaultKind::kStraggleNode) {
    // A straggler slows what *it* sends; its inbound links are healthy.
    return spec.node < 0 || spec.node == from;
  }
  if (spec.node >= 0 && spec.node != from && spec.node != to) return false;
  return true;
}

SendDecision FaultInjector::OnSend(int exchange_id, int from, int to) {
  SendDecision decision;
  if (active_windows_.load(std::memory_order_acquire) == 0) return decision;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Window& w : windows_) {
    if (!MatchesLocked(w, exchange_id, from, to)) continue;
    const FaultSpec& spec = w.spec;
    switch (spec.kind) {
      case FaultKind::kDisconnect:
        // Severed link: every send fails until the window closes.
        drops_metric_->Add();
        decision.fate = SendDecision::Fate::kDrop;
        return decision;
      case FaultKind::kDropBlock:
        if (rng_.Bernoulli(spec.probability)) {
          drops_metric_->Add();
          decision.fate = SendDecision::Fate::kDrop;
          return decision;
        }
        break;
      case FaultKind::kDelayBlock:
        if (rng_.Bernoulli(spec.probability)) {
          delays_metric_->Add();
          decision.delay_ns += spec.delay_ns;
        }
        break;
      case FaultKind::kDuplicateBlock:
        if (decision.fate == SendDecision::Fate::kDeliver &&
            rng_.Bernoulli(spec.probability)) {
          duplicates_metric_->Add();
          decision.fate = SendDecision::Fate::kDuplicate;
        }
        break;
      case FaultKind::kStraggleNode:
        // The real engine renders a compute straggler as stalled egress:
        // 1 ms of extra send latency per slowdown unit. (The simulator
        // models it properly by scaling worker speed; see sim_engine.cc.)
        delays_metric_->Add();
        decision.delay_ns += static_cast<int64_t>(
            (spec.slowdown_factor - 1.0) * 1'000'000.0);
        break;
      default:
        break;
    }
  }
  return decision;
}

bool FaultInjector::NodeDead(int node) const {
  if (node < 0 || node >= 64) return false;
  return (dead_nodes_mask_.load(std::memory_order_acquire) >>
          node) & 1;
}

double FaultInjector::NextDouble() {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.NextDouble();
}

int64_t FaultInjector::ElapsedNanos() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (arm_time_ns_ < 0) return 0;
  return clock_->NowNanos() - arm_time_ns_;
}

std::vector<FaultEvent> FaultInjector::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string FaultInjector::EventLogText() const {
  // Canonical order: a slow poller applies several due transitions in one
  // pass (window order), a fast one applies them as they come due (time
  // order). Sorting by planned time — activations before restores on a tie,
  // then by description — makes the rendered log a pure function of the
  // plan, whatever the poll cadence was.
  std::vector<FaultEvent> events = Events();
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
                     if (a.activated != b.activated) return a.activated;
                     return a.description < b.description;
                   });
  return FormatFaultEventLog(events);
}

std::string FaultInjector::DescribeActiveFaults() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const Window& w : windows_) {
    if (w.activated && !w.deactivated) {
      out += w.spec.ToString();
      out += "\n";
    }
  }
  return out;
}

}  // namespace claims
