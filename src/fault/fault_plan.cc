#include "fault/fault_plan.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/random.h"

namespace claims {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropBlock:
      return "drop";
    case FaultKind::kDelayBlock:
      return "delay";
    case FaultKind::kDuplicateBlock:
      return "dup";
    case FaultKind::kDisconnect:
      return "disconnect";
    case FaultKind::kDegradeNic:
      return "nic";
    case FaultKind::kCrashNode:
      return "crash";
    case FaultKind::kStraggleNode:
      return "straggle";
    case FaultKind::kMemPressure:
      return "mempressure";
  }
  return "unknown";
}

namespace {

/// Renders durations in the largest unit that divides them exactly, so
/// ToString output is stable and round-trips through the parser.
std::string DurationToString(int64_t ns) {
  char buf[32];
  if (ns != 0 && ns % 1'000'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "s", ns / 1'000'000'000);
  } else if (ns != 0 && ns % 1'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ms", ns / 1'000'000);
  } else if (ns != 0 && ns % 1'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "us", ns / 1'000);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", ns);
  }
  return buf;
}

/// Trims a trailing duration suffix (ns/us/ms/s) and returns the multiplier.
bool ParseDuration(const std::string& v, int64_t* out) {
  size_t n = v.size();
  int64_t mult = 1;
  size_t digits = n;
  if (n >= 2 && v.compare(n - 2, 2, "ns") == 0) {
    digits = n - 2;
  } else if (n >= 2 && v.compare(n - 2, 2, "us") == 0) {
    mult = 1'000;
    digits = n - 2;
  } else if (n >= 2 && v.compare(n - 2, 2, "ms") == 0) {
    mult = 1'000'000;
    digits = n - 2;
  } else if (n >= 1 && v[n - 1] == 's') {
    mult = 1'000'000'000;
    digits = n - 1;
  }
  if (digits == 0) return false;
  int64_t value = 0;
  for (size_t i = 0; i < digits; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(v[i]))) return false;
    value = value * 10 + (v[i] - '0');
  }
  *out = value * mult;
  return true;
}

bool ParseKind(const std::string& v, FaultKind* out) {
  for (FaultKind k :
       {FaultKind::kDropBlock, FaultKind::kDelayBlock,
        FaultKind::kDuplicateBlock, FaultKind::kDisconnect,
        FaultKind::kDegradeNic, FaultKind::kCrashNode,
        FaultKind::kStraggleNode, FaultKind::kMemPressure}) {
    if (v == FaultKindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string FaultSpec::ToString() const {
  std::ostringstream os;
  os << "at=" << DurationToString(at_ns) << " kind=" << FaultKindName(kind);
  if (duration_ns > 0) os << " dur=" << DurationToString(duration_ns);
  if (node >= 0) os << " node=" << node;
  if (exchange_id >= 0) os << " exchange=" << exchange_id;
  if (probability != 1.0) os << " p=" << probability;
  if (kind == FaultKind::kDelayBlock) {
    os << " delay=" << DurationToString(delay_ns);
  }
  if (kind == FaultKind::kDegradeNic) {
    os << " bps=" << bandwidth_bytes_per_sec;
  }
  if (kind == FaultKind::kStraggleNode) os << " factor=" << slowdown_factor;
  if (kind == FaultKind::kMemPressure) os << " bytes=" << mem_cap_bytes;
  return os.str();
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  os << "seed=" << seed << "\n";
  for (const FaultSpec& f : faults) os << f.ToString() << "\n";
  return os.str();
}

Result<FaultSpec> ParseFaultSpec(const std::string& line) {
  FaultSpec spec;
  bool have_kind = false;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("fault spec token missing '=': " + token);
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (value.empty()) {
      return Status::ParseError("fault spec key has empty value: " + key);
    }
    if (key == "kind") {
      if (!ParseKind(value, &spec.kind)) {
        return Status::ParseError("unknown fault kind: " + value);
      }
      have_kind = true;
    } else if (key == "at") {
      if (!ParseDuration(value, &spec.at_ns)) {
        return Status::ParseError("bad duration for at=: " + value);
      }
    } else if (key == "dur") {
      if (!ParseDuration(value, &spec.duration_ns)) {
        return Status::ParseError("bad duration for dur=: " + value);
      }
    } else if (key == "delay") {
      if (!ParseDuration(value, &spec.delay_ns)) {
        return Status::ParseError("bad duration for delay=: " + value);
      }
    } else if (key == "node") {
      spec.node = std::atoi(value.c_str());
    } else if (key == "exchange") {
      spec.exchange_id = std::atoi(value.c_str());
    } else if (key == "p") {
      spec.probability = std::atof(value.c_str());
      if (spec.probability < 0.0 || spec.probability > 1.0) {
        return Status::ParseError("p= must be in [0,1]: " + value);
      }
    } else if (key == "bps") {
      spec.bandwidth_bytes_per_sec = std::atoll(value.c_str());
    } else if (key == "bytes") {
      spec.mem_cap_bytes = std::atoll(value.c_str());
      if (spec.mem_cap_bytes <= 0) {
        return Status::ParseError("bytes= must be > 0: " + value);
      }
    } else if (key == "factor") {
      spec.slowdown_factor = std::atof(value.c_str());
      if (spec.slowdown_factor < 1.0) {
        return Status::ParseError("factor= must be >= 1: " + value);
      }
    } else {
      return Status::ParseError("unknown fault spec key: " + key);
    }
  }
  if (!have_kind) return Status::ParseError("fault spec missing kind=: " + line);
  return spec;
}

Result<FaultPlan> ParseFaultPlan(const std::string& text) {
  FaultPlan plan;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    size_t end = line.find_last_not_of(" \t\r");
    line = line.substr(start, end - start + 1);
    if (line.empty() || line[0] == '#') continue;
    if (line.compare(0, 5, "seed=") == 0) {
      plan.seed = std::strtoull(line.c_str() + 5, nullptr, 10);
      continue;
    }
    Result<FaultSpec> spec = ParseFaultSpec(line);
    if (!spec.ok()) return spec.status();
    plan.faults.push_back(std::move(spec).value());
  }
  return plan;
}

std::string FaultEvent::ToString() const {
  std::ostringstream os;
  os << "[+" << DurationToString(at_ns) << "] "
     << (activated ? "ACTIVATE " : "RESTORE ") << description;
  return os.str();
}

std::string FormatFaultEventLog(const std::vector<FaultEvent>& events) {
  std::string out;
  for (const FaultEvent& e : events) {
    out += e.ToString();
    out += "\n";
  }
  return out;
}

FaultPlan RandomFaultStorm(uint64_t seed, int num_nodes, int64_t duration_ns) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed);
  // Enough overlapping windows that the fabric is rarely fault-free, but no
  // crashes: a storm tests resilience under sustained degradation, while a
  // crash is a scripted event the caller stages deliberately.
  int windows = 4 + static_cast<int>(rng.Uniform(5));
  for (int i = 0; i < windows; ++i) {
    FaultSpec spec;
    switch (rng.Uniform(5)) {
      case 0:
        spec.kind = FaultKind::kDropBlock;
        spec.probability = 0.05 + 0.25 * rng.NextDouble();
        break;
      case 1:
        spec.kind = FaultKind::kDelayBlock;
        spec.probability = 0.1 + 0.4 * rng.NextDouble();
        spec.delay_ns = rng.UniformRange(100'000, 2'000'000);
        break;
      case 2:
        spec.kind = FaultKind::kDuplicateBlock;
        spec.probability = 0.05 + 0.25 * rng.NextDouble();
        break;
      case 3:
        spec.kind = FaultKind::kDegradeNic;
        spec.node = static_cast<int>(rng.Uniform(num_nodes));
        spec.bandwidth_bytes_per_sec = rng.UniformRange(1, 16) * 1'000'000;
        break;
      default:
        spec.kind = FaultKind::kStraggleNode;
        spec.node = static_cast<int>(rng.Uniform(num_nodes));
        spec.slowdown_factor = 2.0 + 6.0 * rng.NextDouble();
        break;
    }
    // Drop/delay/dup windows sometimes target one node's links only.
    if (spec.node < 0 && rng.Bernoulli(0.5)) {
      spec.node = static_cast<int>(rng.Uniform(num_nodes));
    }
    spec.at_ns = rng.UniformRange(0, duration_ns * 3 / 4);
    spec.duration_ns = rng.UniformRange(duration_ns / 8, duration_ns / 2);
    plan.faults.push_back(spec);
  }
  return plan;
}

}  // namespace claims
