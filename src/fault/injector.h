#ifndef CLAIMS_FAULT_INJECTOR_H_
#define CLAIMS_FAULT_INJECTOR_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/macros.h"
#include "common/random.h"
#include "fault/fault_plan.h"
#include "obs/metrics_registry.h"

namespace claims {

/// What the fabric must do with one send while faults are active.
struct SendDecision {
  enum class Fate {
    kDeliver,    ///< pass through (possibly after `delay_ns`)
    kDrop,       ///< transport loss: the sender sees a NACK and may retry
    kDuplicate,  ///< deliver, then deliver a second copy with the same seq
  };
  Fate fate = Fate::kDeliver;
  int64_t delay_ns = 0;
};

/// Drives a FaultPlan against a live cluster. The injector owns *time*
/// (when each fault window opens and closes, measured on the injected clock
/// relative to Arm) and *chance* (per-send draws from the plan's seeded Rng);
/// the actuators that turn a decision into an effect live in the substrate:
/// Network consults OnSend/OnSendToNode, Cluster registers the NIC rewriter
/// and crash handler. Every window transition is appended to the event log
/// with its *planned* time, so the log is byte-identical across runs — the
/// determinism artifact the chaos tests compare (docs/FAULTS.md).
///
/// Thread-safety: all public methods are safe to call concurrently once
/// armed; actuator callbacks are invoked without the injector mutex held.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, Clock* clock = nullptr);
  ~FaultInjector();
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(FaultInjector);

  /// Rewrites node NIC budgets: `bandwidth_bytes_per_sec` > 0 degrades,
  /// < 0 restores the substrate's configured rate (the injector does not
  /// know it). Registered by Cluster::AttachFaultInjector.
  void SetNicRewriter(std::function<void(int node, int64_t bps)> rewriter);

  /// Kills a node (idempotent). Registered by Cluster::AttachFaultInjector.
  void SetCrashHandler(std::function<void(int node)> handler);

  /// Applies/restores a memory-pressure cap: `cap_bytes` > 0 squeezes the
  /// pool, < 0 restores the uncapped state. Defaults to
  /// BlockPool::Global()->SetPressureCapBytes, so a mempressure fault works
  /// with no substrate wiring; tests override it to observe actuations.
  void SetMemPressureHandler(std::function<void(int64_t cap_bytes)> handler);

  /// Starts the clock (t=0 of the plan) and a poll thread that applies
  /// window transitions. Idempotent.
  void Arm();

  /// Arm without the poll thread: tests and the simulator drive transitions
  /// by calling PollOnce() after advancing a manual clock.
  void ArmManual();

  /// Applies every transition due at the current clock time. Returns the
  /// number of transitions applied.
  int PollOnce();

  /// Stops the poll thread; active windows stay in force (chaos runs end by
  /// plan, not by disarm). Idempotent; the destructor calls it.
  void Disarm();

  /// The fabric's per-send fault point: fate of a block on
  /// (exchange_id, from → to) right now. Cheap when nothing is active.
  SendDecision OnSend(int exchange_id, int from, int to);

  /// True once a kCrashNode fault killed `node`.
  bool NodeDead(int node) const;

  /// Uniform draw in [0,1) from the plan's seeded stream (retry jitter uses
  /// this so a chaos run has a single source of randomness).
  double NextDouble();

  /// Nanoseconds of plan time elapsed (0 before Arm).
  int64_t ElapsedNanos() const;

  /// Applied transitions in application order (poll-cadence dependent).
  std::vector<FaultEvent> Events() const;
  /// The byte-comparable event log: Events() re-sorted into canonical
  /// (planned-time) order, so two runs of one plan that both passed the same
  /// plan horizon render identical text however often each was polled.
  std::string EventLogText() const;

  /// One line per window currently in force — wired into watchdog incident
  /// reports so a stall under chaos says *which* faults were active.
  std::string DescribeActiveFaults() const;

  const FaultPlan& plan() const { return plan_; }

 private:
  struct Window {
    FaultSpec spec;
    bool activated = false;
    bool deactivated = false;
  };

  /// Transitions due at plan-relative time `t`; actuator calls collected
  /// under the mutex, invoked after it is released.
  int ApplyTransitionsLocked(int64_t t,
                             std::vector<std::function<void()>>* actuations);
  bool MatchesLocked(const Window& w, int exchange_id, int from, int to) const;
  void PollLoop();

  FaultPlan plan_;
  Clock* clock_;
  MetricCounter* drops_metric_;
  MetricCounter* delays_metric_;
  MetricCounter* duplicates_metric_;
  MetricCounter* crashes_metric_;
  MetricCounter* nic_rewrites_metric_;
  MetricCounter* mem_pressure_metric_;
  MetricCounter* activations_metric_;

  mutable std::mutex mu_;
  std::vector<Window> windows_;
  std::vector<FaultEvent> events_;
  Rng rng_;
  std::function<void(int, int64_t)> nic_rewriter_;
  std::function<void(int)> crash_handler_;
  std::function<void(int64_t)> mem_pressure_handler_;
  int64_t arm_time_ns_ = -1;
  /// Count of windows currently in force; OnSend returns immediately when 0.
  std::atomic<int> active_windows_{0};
  std::atomic<bool> armed_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> dead_nodes_mask_{0};
  std::thread poll_thread_;
};

}  // namespace claims

#endif  // CLAIMS_FAULT_INJECTOR_H_
