#ifndef CLAIMS_FAULT_FAULT_PLAN_H_
#define CLAIMS_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace claims {

/// The faults the chaos plane can inject. Windowed kinds (drop, delay,
/// duplicate, disconnect, straggle, NIC degrade) hold for `duration_ns` from
/// `at_ns`; node crash is one-shot and permanent for the cluster's lifetime
/// (a process that rejoins is a new cluster in this in-process model).
enum class FaultKind {
  kDropBlock,       ///< exchange sends fail (transport NACK) with `probability`
  kDelayBlock,      ///< exchange sends stall `delay_ns` before delivery
  kDuplicateBlock,  ///< delivered blocks arrive twice with one wire sequence
  kDisconnect,      ///< every send on the targeted exchange/node link fails
  kDegradeNic,      ///< rewrite the node's NIC budget to `bandwidth_bytes_per_sec`
  kCrashNode,       ///< the node dies: segments abort, cores leave the board
  kStraggleNode,    ///< the node turns straggler: `slowdown_factor` slower
  kMemPressure,     ///< cap the block pool at `mem_cap_bytes`: strict
                    ///< (budget-backed) allocations refuse, forcing the
                    ///< shrink → spill → reject degradation ladder
};

const char* FaultKindName(FaultKind kind);

/// One scheduled fault. Times are relative to FaultInjector::Arm() (or to
/// virtual time zero in the simulator), so a plan is a pure value: running
/// the same plan twice produces the same schedule by construction.
struct FaultSpec {
  FaultKind kind = FaultKind::kDropBlock;
  int64_t at_ns = 0;        ///< activation, relative to arm / sim start
  int64_t duration_ns = 0;  ///< window length; <= 0 means "until disarm"
  int node = -1;            ///< target node; -1 matches any node
  int exchange_id = -1;     ///< target exchange (post-namespacing); -1 any
  double probability = 1.0; ///< per-send chance while active (drop/dup/delay)
  int64_t delay_ns = 0;                  ///< kDelayBlock hold time
  int64_t bandwidth_bytes_per_sec = 0;   ///< kDegradeNic new budget
  double slowdown_factor = 1.0;          ///< kStraggleNode (>= 1)
  int64_t mem_cap_bytes = 0;             ///< kMemPressure pool cap (0 = off)

  /// Canonical one-line rendering, also the serialized form ParseFaultSpec
  /// accepts: "at=50ms kind=crash node=2".
  std::string ToString() const;
};

/// A declarative, seeded chaos schedule. The seed drives every probabilistic
/// per-send decision, so a (plan, substrate) pair replays deterministically
/// wherever the substrate itself is deterministic (the virtual-time
/// simulator; single-threaded fabrics). See docs/FAULTS.md for the grammar.
struct FaultPlan {
  uint64_t seed = 42;
  std::vector<FaultSpec> faults;

  bool empty() const { return faults.empty(); }
  /// One spec per line, "seed=<n>" first. Round-trips through ParseFaultPlan.
  std::string ToString() const;
};

/// Parses one "key=value ..." spec line. Keys: kind (drop|delay|dup|
/// disconnect|nic|crash|straggle|mempressure), at, dur, delay (durations:
/// ns/us/ms/s suffix), node, exchange, p, bps, factor, bytes.
Result<FaultSpec> ParseFaultSpec(const std::string& line);

/// Parses a whole plan: blank lines and '#' comments ignored; an optional
/// "seed=<n>" line sets the seed.
Result<FaultPlan> ParseFaultPlan(const std::string& text);

/// A fault transition that was applied (or scheduled, in the simulator).
/// `at_ns` is the *planned* plan-relative time, never a wall-clock stamp, so
/// two runs of the same plan produce byte-identical logs (the determinism
/// contract the chaos tests assert).
struct FaultEvent {
  int64_t at_ns = 0;
  bool activated = true;  ///< false = window closed / NIC restored
  std::string description;

  std::string ToString() const;
};

/// Renders an event log one event per line (the byte-compared artifact).
std::string FormatFaultEventLog(const std::vector<FaultEvent>& events);

/// A seeded random fault storm for chaos stress runs: windowed drop / delay /
/// duplicate / NIC-degrade / straggle faults spread over `duration_ns`
/// across `num_nodes`. Never emits kCrashNode — crash scenarios are scripted
/// explicitly so the test controls which node dies and when.
FaultPlan RandomFaultStorm(uint64_t seed, int num_nodes, int64_t duration_ns);

}  // namespace claims

#endif  // CLAIMS_FAULT_FAULT_PLAN_H_
