#include "cluster/segment.h"

#include "obs/profile/profiler.h"
#include "obs/trace.h"

namespace claims {

Segment::Segment(std::unique_ptr<Iterator> ops_root, Config config)
    : config_(std::move(config)),
      scalability_(config_.max_parallelism),
      sender_([this] {
        SenderPump::Spec spec = config_.sender;
        spec.stats = config_.stats;
        // Profiler identity defaults from the segment's own: the executor
        // only has to set elastic.query_id once per segment.
        if (spec.clock == nullptr) spec.clock = config_.clock;
        if (spec.segment_label.empty()) spec.segment_label = config_.name;
        if (spec.query_id == 0) spec.query_id = config_.elastic.query_id;
        return spec;
      }()) {
  ElasticIterator::Options opts = config_.elastic;
  opts.stats = config_.stats;
  opts.clock = config_.clock;
  opts.max_parallelism = config_.max_parallelism;
  opts.trace_label = config_.name;
  opts.trace_pid = config_.node_id;
  elastic_ = std::make_unique<ElasticIterator>(std::move(ops_root), opts);
}

Segment::~Segment() {
  Cancel();
  Join();
}

void Segment::Start() {
  started_.store(true, std::memory_order_release);
  driver_ = std::thread([this] { DriverMain(); });
}

void Segment::Join() {
  if (driver_.joinable()) driver_.join();
}

void Segment::Cancel() {
  cancel_.store(true, std::memory_order_release);
  if (started_.load(std::memory_order_acquire) &&
      !done_.load(std::memory_order_acquire)) {
    elastic_->buffer()->Cancel();
  }
}

bool Segment::active() const {
  return started_.load(std::memory_order_acquire) &&
         !done_.load(std::memory_order_acquire);
}

void Segment::DriverMain() {
  TraceCollector* tc = TraceCollector::Global();
  Clock* clock =
      config_.clock != nullptr ? config_.clock : SteadyClock::Default();
  const int64_t t0 = clock->NowNanos();

  WorkerContext ctx;  // the driver is not a worker; no terminate flag
  elastic_->Open(&ctx);
  bool pump_ok = sender_.Pump(elastic_.get(), &ctx, &cancel_);
  // A failed pump without a requested Cancel() means the stream broke (a
  // child operator errored, or a send aborted underneath us): record it so
  // the executor can distinguish "drained" from "gave up mid-stream".
  if (!pump_ok && !cancel_.load(std::memory_order_acquire)) {
    failed_.store(true, std::memory_order_release);
  }
  final_parallelism_.store(elastic_->parallelism(), std::memory_order_release);
  done_.store(true, std::memory_order_release);
  elastic_->Close();

  int64_t t1 = clock->NowNanos();
  lifetime_ns_.store(t1 - t0, std::memory_order_release);
  if (tc->enabled()) {
    tc->Complete(t0, t1 - t0, config_.node_id, "segment", config_.name,
                 {{"cancelled", cancel_.load(std::memory_order_acquire)
                                    ? 1.0
                                    : 0.0}});
  }
  QueryProfiler* profiler = QueryProfiler::Global();
  if (config_.elastic.query_id != 0 && profiler->armed()) {
    ProfSpan span;
    span.query_id = config_.elastic.query_id;
    span.kind = SpanKind::kSegment;
    span.name = config_.name;
    span.segment = config_.name;
    span.node = config_.node_id;
    span.start_ns = t0;
    span.end_ns = t1;
    span.tuples =
        config_.stats != nullptr
            ? config_.stats->output_tuples.load(std::memory_order_relaxed)
            : 0;
    profiler->EmitComplete(std::move(span));
  }
}

}  // namespace claims
