#include "cluster/cluster.h"

#include <chrono>

namespace claims {

Cluster::Cluster(ClusterOptions options, Catalog* catalog)
    : options_(options), catalog_(catalog) {
  NetworkOptions net;
  net.bandwidth_bytes_per_sec = options_.bandwidth_bytes_per_sec;
  net.capacity_blocks = options_.channel_capacity_blocks;
  network_ = std::make_unique<Network>(options_.num_nodes, net, &memory_);
  SchedulerOptions sched = options_.scheduler;
  sched.num_cores = options_.cores_per_node;
  for (int n = 0; n < options_.num_nodes; ++n) {
    schedulers_.push_back(std::make_unique<DynamicScheduler>(
        n, sched, SteadyClock::Default(), &board_));
  }
}

Cluster::~Cluster() {
  // Safety net for leaked Start refs: force the threads down.
  {
    std::lock_guard<std::mutex> lock(scheduler_lifecycle_mu_);
    scheduler_refcount_ = 1;
  }
  StopSchedulers();
}

void Cluster::StartSchedulers() {
  std::lock_guard<std::mutex> lock(scheduler_lifecycle_mu_);
  if (++scheduler_refcount_ > 1) return;  // already running
  schedulers_running_.store(true, std::memory_order_release);
  for (int n = 0; n < options_.num_nodes; ++n) {
    scheduler_threads_.emplace_back([this, n] {
      while (schedulers_running_.load(std::memory_order_acquire)) {
        schedulers_[n]->Tick();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.scheduler_period_ms));
      }
    });
  }
}

void Cluster::StopSchedulers() {
  std::lock_guard<std::mutex> lock(scheduler_lifecycle_mu_);
  if (scheduler_refcount_ == 0) return;
  if (--scheduler_refcount_ > 0) return;  // other queries still hold it
  schedulers_running_.store(false, std::memory_order_release);
  for (std::thread& t : scheduler_threads_) {
    if (t.joinable()) t.join();
  }
  scheduler_threads_.clear();
  board_.Reset();
}

}  // namespace claims
