#include "cluster/cluster.h"

#include <chrono>

#include "common/logging.h"

namespace claims {

Cluster::Cluster(ClusterOptions options, Catalog* catalog)
    : options_(options), catalog_(catalog) {
  NetworkOptions net;
  net.bandwidth_bytes_per_sec = options_.bandwidth_bytes_per_sec;
  net.capacity_blocks = options_.channel_capacity_blocks;
  network_ = std::make_unique<Network>(options_.num_nodes, net, &memory_);
  SchedulerOptions sched = options_.scheduler;
  sched.num_cores = options_.cores_per_node;
  for (int n = 0; n < options_.num_nodes; ++n) {
    schedulers_.push_back(std::make_unique<DynamicScheduler>(
        n, sched, SteadyClock::Default(), &board_));
  }
  node_alive_.assign(options_.num_nodes, true);
}

Cluster::~Cluster() {
  // Safety net for leaked Start refs: force the threads down.
  {
    std::lock_guard<std::mutex> lock(scheduler_lifecycle_mu_);
    scheduler_refcount_ = 1;
  }
  StopSchedulers();
}

void Cluster::StartSchedulers() {
  std::lock_guard<std::mutex> lock(scheduler_lifecycle_mu_);
  if (++scheduler_refcount_ > 1) return;  // already running
  schedulers_running_.store(true, std::memory_order_release);
  for (int n = 0; n < options_.num_nodes; ++n) {
    scheduler_threads_.emplace_back([this, n] {
      while (schedulers_running_.load(std::memory_order_acquire)) {
        schedulers_[n]->Tick();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.scheduler_period_ms));
      }
    });
  }
}

void Cluster::StopSchedulers() {
  std::lock_guard<std::mutex> lock(scheduler_lifecycle_mu_);
  if (scheduler_refcount_ == 0) return;
  if (--scheduler_refcount_ > 0) return;  // other queries still hold it
  schedulers_running_.store(false, std::memory_order_release);
  for (std::thread& t : scheduler_threads_) {
    if (t.joinable()) t.join();
  }
  scheduler_threads_.clear();
  board_.Reset();
}

bool Cluster::NodeAlive(int node) const {
  if (node < 0 || node >= options_.num_nodes) return false;
  std::lock_guard<std::mutex> lock(health_mu_);
  return node_alive_[node];
}

std::vector<int> Cluster::AliveNodes() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  std::vector<int> alive;
  for (int n = 0; n < options_.num_nodes; ++n) {
    if (node_alive_[n]) alive.push_back(n);
  }
  return alive;
}

void Cluster::KillNode(int node) {
  if (node <= 0 || node >= options_.num_nodes) {
    // Node 0 is the master/result collector; there is no failover for it in
    // the in-process model, so a plan that crashes it is a plan error.
    CLAIMS_LOG(Warning) << "KillNode(" << node << ") ignored"
                     << (node == 0 ? " (node 0 is the master)" : "");
    return;
  }
  std::vector<std::function<void(int)>> listeners;
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    if (!node_alive_[node]) return;  // already dead; listeners already ran
    node_alive_[node] = false;
    for (auto& [token, listener] : death_listeners_) {
      listeners.push_back(listener);
    }
  }
  // Order matters: fail the fabric first so segments touching the node stop
  // making progress, withdraw the node from the control plane, then tell the
  // executors — which cancel and surface kUnavailable for re-dispatch.
  network_->SetNodeDead(node);
  schedulers_[node]->SetEnabled(false);
  MetricsRegistry::Global()->counter("cluster.nodes_killed")->Add();
  for (auto& listener : listeners) listener(node);
}

int Cluster::AddNodeDeathListener(std::function<void(int)> listener) {
  std::lock_guard<std::mutex> lock(health_mu_);
  int token = next_listener_token_++;
  death_listeners_[token] = std::move(listener);
  return token;
}

void Cluster::RemoveNodeDeathListener(int token) {
  std::lock_guard<std::mutex> lock(health_mu_);
  death_listeners_.erase(token);
}

void Cluster::AttachFaultInjector(FaultInjector* injector) {
  network_->SetFaultInjector(injector);
  if (injector == nullptr) return;
  injector->SetNicRewriter([this](int node, int64_t bps) {
    if (node < 0 || node >= options_.num_nodes) return;
    // bps < 0 restores the configured healthy bandwidth.
    int64_t rate = bps < 0 ? options_.bandwidth_bytes_per_sec : bps;
    network_->egress(node)->SetBytesPerSec(rate);
    network_->ingress(node)->SetBytesPerSec(rate);
  });
  injector->SetCrashHandler([this](int node) { KillNode(node); });
}

}  // namespace claims
