#include "cluster/cluster.h"

#include <chrono>

namespace claims {

Cluster::Cluster(ClusterOptions options, Catalog* catalog)
    : options_(options), catalog_(catalog) {
  NetworkOptions net;
  net.bandwidth_bytes_per_sec = options_.bandwidth_bytes_per_sec;
  net.capacity_blocks = options_.channel_capacity_blocks;
  network_ = std::make_unique<Network>(options_.num_nodes, net, &memory_);
  SchedulerOptions sched = options_.scheduler;
  sched.num_cores = options_.cores_per_node;
  for (int n = 0; n < options_.num_nodes; ++n) {
    schedulers_.push_back(std::make_unique<DynamicScheduler>(
        n, sched, SteadyClock::Default(), &board_));
  }
}

Cluster::~Cluster() { StopSchedulers(); }

void Cluster::StartSchedulers() {
  bool expected = false;
  if (!schedulers_running_.compare_exchange_strong(expected, true)) return;
  for (int n = 0; n < options_.num_nodes; ++n) {
    scheduler_threads_.emplace_back([this, n] {
      while (schedulers_running_.load(std::memory_order_acquire)) {
        schedulers_[n]->Tick();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.scheduler_period_ms));
      }
    });
  }
}

void Cluster::StopSchedulers() {
  if (!schedulers_running_.exchange(false)) return;
  for (std::thread& t : scheduler_threads_) {
    if (t.joinable()) t.join();
  }
  scheduler_threads_.clear();
  board_.Reset();
}

}  // namespace claims
