#ifndef CLAIMS_CLUSTER_SEGMENT_H_
#define CLAIMS_CLUSTER_SEGMENT_H_

#include <memory>
#include <string>
#include <thread>

#include "cluster/exchange.h"
#include "core/elastic_iterator.h"
#include "core/scheduler.h"

namespace claims {

/// One segment instance: the unit of deployment and of dynamic scheduling
/// (paper §2.1). Physically it is
///     [scan | merger] → ops… → ElasticIterator → SenderPump
/// driven by a dedicated driver thread (the paper's sender thread, not
/// counted against the node's worker cores). Implements SchedulableSegment
/// so the node's DynamicScheduler can expand/shrink it.
class Segment : public SchedulableSegment {
 public:
  struct Config {
    std::string name;
    int node_id = 0;
    SenderPump::Spec sender;        ///< stats wired in by the constructor
    ElasticIterator::Options elastic;  ///< stats/clock wired in
    /// Shared segment counters, owned by the executor (the iterator tree
    /// below captures the same pointer).
    SegmentStats* stats = nullptr;
    Clock* clock = nullptr;
    int max_parallelism = 24;
  };

  /// `ops_root` is the operator tree below the elastic iterator.
  Segment(std::unique_ptr<Iterator> ops_root, Config config);
  ~Segment() override;

  CLAIMS_DISALLOW_COPY_AND_ASSIGN(Segment);

  /// Launches the driver thread.
  void Start();

  /// Blocks until the segment finished pumping (or was cancelled).
  void Join();

  /// Cooperative cancellation (query abort / engine shutdown).
  void Cancel();

  // --- SchedulableSegment ----------------------------------------------------

  const std::string& name() const override { return config_.name; }
  bool active() const override;
  uint64_t query_id() const override { return config_.elastic.query_id; }
  int parallelism() const override { return elastic_->parallelism(); }
  SegmentStats* stats() override { return config_.stats; }
  ScalabilityVector* scalability() override { return &scalability_; }
  bool Expand(int core_id) override { return elastic_->Expand(core_id); }
  bool Shrink() override { return elastic_->Shrink(); }

  int node_id() const { return config_.node_id; }
  ElasticIterator* elastic() { return elastic_.get(); }

  /// Driver start → drained, for ExecutionReport; 0 until the driver exits.
  int64_t lifetime_ns() const {
    return lifetime_ns_.load(std::memory_order_acquire);
  }
  /// Worker count at the moment the segment drained.
  int final_parallelism() const {
    return final_parallelism_.load(std::memory_order_acquire);
  }

  /// True once the driver exited with a broken stream: the pump reported
  /// failure (child error or send cancellation) without Cancel() being the
  /// cause. Valid after Join().
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// A failure whose cause was infrastructure loss (kUnavailable on a send:
  /// dead node, or a fault storm outlasting every retry) rather than a logic
  /// error — the executor surfaces it as Status::Unavailable so the workload
  /// manager's retry policy can re-dispatch. Valid after Join().
  bool failed_unavailable() const {
    return failed() && sender_.send_unavailable();
  }

 private:
  void DriverMain();

  Config config_;
  ScalabilityVector scalability_;
  std::unique_ptr<ElasticIterator> elastic_;
  SenderPump sender_;
  std::thread driver_;
  std::atomic<bool> cancel_{false};
  std::atomic<bool> done_{false};
  std::atomic<bool> failed_{false};
  std::atomic<int64_t> lifetime_ns_{0};
  std::atomic<int> final_parallelism_{0};
  /// Atomic: Start() runs on the executor thread while active() and Cancel()
  /// are called concurrently from the scheduler tick.
  std::atomic<bool> started_{false};
};

}  // namespace claims

#endif  // CLAIMS_CLUSTER_SEGMENT_H_
