#ifndef CLAIMS_CLUSTER_RESULT_SET_H_
#define CLAIMS_CLUSTER_RESULT_SET_H_

#include <string>
#include <vector>

#include "storage/block.h"
#include "storage/value.h"

namespace claims {

/// Materialized query result gathered at the master node.
class ResultSet {
 public:
  ResultSet() = default;
  explicit ResultSet(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  void AppendBlock(BlockPtr block);

  int64_t num_rows() const { return num_rows_; }
  int num_blocks() const { return static_cast<int>(blocks_.size()); }
  const std::vector<BlockPtr>& blocks() const { return blocks_; }

  /// Cell accessor by global row index (O(#blocks) scan; results are small).
  Value Get(int64_t row, int col) const;

  /// All rows as Value vectors; `sorted` lexicographically for
  /// order-insensitive comparison in tests.
  std::vector<std::vector<Value>> Rows(bool sorted = false) const;

  /// Drops all rows beyond the first `n` (LIMIT support at the collector).
  void TruncateRows(int64_t n);

  /// Pretty table rendering of the first `limit` rows.
  std::string ToString(int64_t limit = 20) const;

 private:
  Schema schema_;
  std::vector<BlockPtr> blocks_;
  int64_t num_rows_ = 0;
};

}  // namespace claims

#endif  // CLAIMS_CLUSTER_RESULT_SET_H_
