#ifndef CLAIMS_CLUSTER_EXCHANGE_H_
#define CLAIMS_CLUSTER_EXCHANGE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "core/iterator.h"
#include "core/metrics.h"
#include "net/network.h"

namespace claims {

/// Merger — the data-exchange receiver and stage beginner of a consumer
/// segment (appendix Alg. 5). The paper's dedicated merging thread and
/// NUMA-partitioned merger buffer are realized by the network fabric's
/// BlockChannel: it keeps receiving (buffering) sender traffic even while
/// the segment's worker threads are all busy or shrunk away.
///
/// Every received block's tail carries the producer's visit-rate
/// contribution p_ij·δ_i·V_i; the merger folds the latest value per producer
/// into the segment's V_i (paper §4.3, Fig. 7) — no extra control messages.
class MergerIterator : public Iterator {
 public:
  /// Identity for the causal profiler's receive-side spans. query_id == 0
  /// (the default) keeps the merger span-silent even when the global
  /// QueryProfiler is armed.
  struct ProfileInfo {
    uint64_t query_id = 0;
    int exchange_id = 0;   ///< namespaced id (plan id + exchange_id_base)
    int node = 0;          ///< consumer's logical node
    std::string segment;   ///< owning segment label, e.g. "S2@n1"
  };

  /// `poll_ns`: receive timeout between terminate-flag checks.
  MergerIterator(BlockChannel* channel, SegmentStats* stats, Clock* clock,
                 int64_t poll_ns = 1'000'000);
  MergerIterator(BlockChannel* channel, SegmentStats* stats, Clock* clock,
                 int64_t poll_ns, ProfileInfo profile);
  ~MergerIterator() override;

  NextResult Open(WorkerContext* ctx) override;
  NextResult Next(WorkerContext* ctx, BlockPtr* out) override;
  void Close() override;

 private:
  /// Opens a blocked-input span on the first starved poll (CAS keeps a single
  /// open span even when several elastic workers drive this merger); arriving
  /// data resolves it with the block's (wire_seq, from_node) so the assembler
  /// can causally link the wait to the producing segment's send.
  void NoteStarved(int64_t t0);
  void ResolveStarved(int64_t end_ns, uint64_t wire_seq, int from_node);

  BlockChannel* channel_;
  SegmentStats* stats_;
  VisitRateAggregator visit_rates_;
  Clock* clock_;
  int64_t poll_ns_;
  ProfileInfo profile_;
  std::atomic<uint64_t> next_sequence_{0};
  /// Open blocked-input span token (0 = none); see NoteStarved.
  std::atomic<uint64_t> blocked_token_{0};
};

/// How a sender routes its segment's output across the consumer segment
/// group (paper Fig. 3's data exchange).
enum class Partitioning {
  kHash,       ///< repartition on hash columns (shuffle)
  kBroadcast,  ///< replicate to every consumer (small build sides)
  kToOne,      ///< everything to one consumer (master collector / gather)
};

/// Sender — the data-exchange transmitter at the top of a segment (appendix
/// Alg. 4). Pump() drains the segment's elastic iterator and routes blocks
/// into the network fabric, stamping outgoing visit-rate tails with
/// V_i·δ_i·p_ij from live counters. Runs on the segment's driver thread;
/// blocking inside Send (NIC throttle or full consumer channel) propagates
/// as backpressure into the elastic buffer, which is how the dynamic
/// scheduler sees "over-producing for the network".
class SenderPump {
 public:
  struct Spec {
    int exchange_id = 0;
    int from_node = 0;
    Partitioning partitioning = Partitioning::kToOne;
    std::vector<int> hash_cols;
    std::vector<int> consumer_nodes;
    const Schema* schema = nullptr;
    Network* network = nullptr;
    SegmentStats* stats = nullptr;
    /// Physical placement after node-loss re-dispatch: whose NIC this pump
    /// spends (-1 = from_node) and which box hosts each consumer (empty =
    /// consumer_nodes). Channel addressing stays logical (see net::Route).
    int from_node_physical = -1;
    std::vector<int> consumer_placement;
    /// Causal-profiler identity: owning query (0 = span-silent) and segment
    /// label for kNetSend span attribution. Timestamps come from `clock`
    /// (nullptr = SteadyClock).
    uint64_t query_id = 0;
    std::string segment_label;
    Clock* clock = nullptr;
  };

  explicit SenderPump(Spec spec);

  /// True once a send failed kUnavailable (dead endpoint or retries
  /// exhausted): the resulting pump failure is *transient* — a re-dispatch
  /// of the whole query may succeed — rather than a logic error.
  bool send_unavailable() const {
    return send_unavailable_.load(std::memory_order_acquire);
  }

  /// Drains `source` until end-of-file, then flushes partial blocks and
  /// closes this producer on the exchange. Returns false if cancelled or if
  /// `source` reported kError (the stream is broken; the blocks sent so far
  /// must not be taken for a complete result).
  ///
  /// Pump itself runs on the segment's single driver thread, but the
  /// distribution counters below are atomics so that SendBlock stays correct
  /// if a future layout fans the pump out across workers (the elastic
  /// iterator's parallelism must never silently corrupt p_ij accounting).
  bool Pump(Iterator* source, WorkerContext* ctx,
            const std::atomic<bool>* cancel);

 private:
  bool SendBlock(int dest_index, BlockPtr block,
                 const std::atomic<bool>* cancel);

  Spec spec_;
  /// Tuples routed per destination / in total, for the p_ij fraction stamped
  /// into outgoing visit-rate tails. Thread-safe: updated with relaxed
  /// fetch_adds; SendBlock computes the fraction from its own post-add
  /// snapshots, so concurrent senders only ever see complete sums.
  std::vector<std::atomic<int64_t>> sent_tuples_;
  std::atomic<int64_t> total_sent_{0};
  std::atomic<bool> send_unavailable_{false};
};

}  // namespace claims

#endif  // CLAIMS_CLUSTER_EXCHANGE_H_
