#ifndef CLAIMS_CLUSTER_CLUSTER_H_
#define CLAIMS_CLUSTER_CLUSTER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/memory_tracker.h"
#include "core/scheduler.h"
#include "fault/injector.h"
#include "net/network.h"
#include "storage/catalog.h"

namespace claims {

struct ClusterOptions {
  /// Shared-nothing nodes; table partition i lives on node i (paper §2).
  int num_nodes = 4;
  /// Worker cores per node available to query segments (paper: 24 logical).
  int cores_per_node = 24;
  /// NIC bandwidth per node; 0 disables throttling (unit tests). The paper's
  /// gigabit switch is 125 MB/s.
  int64_t bandwidth_bytes_per_sec = 0;
  /// Exchange channel depth (blocks).
  int channel_capacity_blocks = 64;
  /// Dynamic scheduler tick period (EP mode).
  int64_t scheduler_period_ms = 50;
  SchedulerOptions scheduler;
};

/// The in-process shared-nothing cluster: k nodes, each with a core budget
/// and a DynamicScheduler, joined by the bandwidth-modelled Network. One
/// node (0) doubles as the master that gathers results.
class Cluster {
 public:
  Cluster(ClusterOptions options, Catalog* catalog);
  ~Cluster();

  CLAIMS_DISALLOW_COPY_AND_ASSIGN(Cluster);

  const ClusterOptions& options() const { return options_; }
  int num_nodes() const { return options_.num_nodes; }
  Catalog* catalog() { return catalog_; }
  Network* network() { return network_.get(); }
  GlobalThroughputBoard* board() { return &board_; }
  DynamicScheduler* scheduler(int node) { return schedulers_[node].get(); }
  MemoryTracker* memory() { return &memory_; }

  /// Starts the per-node scheduler threads (EP mode). Reference-counted:
  /// each Start must be paired with a Stop; the threads launch on the first
  /// Start and keep ticking while any holder remains, so overlapping queries
  /// (workload manager) share one set of control loops.
  void StartSchedulers();
  /// Releases one Start; the last holder stops the threads and clears the
  /// throughput board.
  void StopSchedulers();

  // --- Node health (chaos plane) --------------------------------------------

  /// False once KillNode(node) ran. Node 0 is the master (gathers results);
  /// killing it is rejected — the in-process cluster has no master failover.
  bool NodeAlive(int node) const;
  /// Logical ids of the nodes still alive, ascending.
  std::vector<int> AliveNodes() const;

  /// Kills a node: the fabric fails its sends kUnavailable, its scheduler
  /// stops ticking and withdraws from the throughput board, and every death
  /// listener fires (executors cancel in-flight work touching the node so the
  /// workload manager can re-dispatch). Idempotent; listeners run once, on
  /// the caller's thread, without cluster locks held.
  void KillNode(int node);

  /// Registers a callback invoked on every subsequent KillNode. Returns a
  /// token for RemoveNodeDeathListener. Executors register for their run.
  int AddNodeDeathListener(std::function<void(int node)> listener);
  void RemoveNodeDeathListener(int token);

  /// Wires a chaos injector into this cluster: the fabric consults it per
  /// send, its NIC-degradation faults rewrite token-bucket rates (restoring
  /// the configured bandwidth when the window closes), and its crash faults
  /// call KillNode. The injector must outlive the attachment; nullptr
  /// detaches the fabric hook.
  void AttachFaultInjector(FaultInjector* injector);

 private:
  ClusterOptions options_;
  Catalog* catalog_;
  MemoryTracker memory_{"cluster"};
  std::unique_ptr<Network> network_;
  GlobalThroughputBoard board_;
  std::vector<std::unique_ptr<DynamicScheduler>> schedulers_;
  std::mutex scheduler_lifecycle_mu_;  ///< guards refcount + thread vector
  int scheduler_refcount_ = 0;
  std::vector<std::thread> scheduler_threads_;
  std::atomic<bool> schedulers_running_{false};

  mutable std::mutex health_mu_;  ///< guards node_alive_ + listeners
  std::vector<bool> node_alive_;
  std::map<int, std::function<void(int)>> death_listeners_;
  int next_listener_token_ = 0;
};

}  // namespace claims

#endif  // CLAIMS_CLUSTER_CLUSTER_H_
