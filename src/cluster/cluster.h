#ifndef CLAIMS_CLUSTER_CLUSTER_H_
#define CLAIMS_CLUSTER_CLUSTER_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/memory_tracker.h"
#include "core/scheduler.h"
#include "net/network.h"
#include "storage/catalog.h"

namespace claims {

struct ClusterOptions {
  /// Shared-nothing nodes; table partition i lives on node i (paper §2).
  int num_nodes = 4;
  /// Worker cores per node available to query segments (paper: 24 logical).
  int cores_per_node = 24;
  /// NIC bandwidth per node; 0 disables throttling (unit tests). The paper's
  /// gigabit switch is 125 MB/s.
  int64_t bandwidth_bytes_per_sec = 0;
  /// Exchange channel depth (blocks).
  int channel_capacity_blocks = 64;
  /// Dynamic scheduler tick period (EP mode).
  int64_t scheduler_period_ms = 50;
  SchedulerOptions scheduler;
};

/// The in-process shared-nothing cluster: k nodes, each with a core budget
/// and a DynamicScheduler, joined by the bandwidth-modelled Network. One
/// node (0) doubles as the master that gathers results.
class Cluster {
 public:
  Cluster(ClusterOptions options, Catalog* catalog);
  ~Cluster();

  CLAIMS_DISALLOW_COPY_AND_ASSIGN(Cluster);

  const ClusterOptions& options() const { return options_; }
  int num_nodes() const { return options_.num_nodes; }
  Catalog* catalog() { return catalog_; }
  Network* network() { return network_.get(); }
  GlobalThroughputBoard* board() { return &board_; }
  DynamicScheduler* scheduler(int node) { return schedulers_[node].get(); }
  MemoryTracker* memory() { return &memory_; }

  /// Starts the per-node scheduler threads (EP mode). Reference-counted:
  /// each Start must be paired with a Stop; the threads launch on the first
  /// Start and keep ticking while any holder remains, so overlapping queries
  /// (workload manager) share one set of control loops.
  void StartSchedulers();
  /// Releases one Start; the last holder stops the threads and clears the
  /// throughput board.
  void StopSchedulers();

 private:
  ClusterOptions options_;
  Catalog* catalog_;
  MemoryTracker memory_{"cluster"};
  std::unique_ptr<Network> network_;
  GlobalThroughputBoard board_;
  std::vector<std::unique_ptr<DynamicScheduler>> schedulers_;
  std::mutex scheduler_lifecycle_mu_;  ///< guards refcount + thread vector
  int scheduler_refcount_ = 0;
  std::vector<std::thread> scheduler_threads_;
  std::atomic<bool> schedulers_running_{false};
};

}  // namespace claims

#endif  // CLAIMS_CLUSTER_CLUSTER_H_
