#include "cluster/executor.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <thread>

#include "common/string_util.h"
#include "exec/ops/filter.h"
#include "exec/ops/hash_join.h"
#include "exec/ops/profiling_iterator.h"
#include "exec/ops/scan.h"
#include "mem/block_pool.h"
#include "obs/profile/assembler.h"
#include "obs/profile/profiler.h"

namespace claims {

namespace {

/// Short operator label for profile attribution.
std::string POpName(const POp& op) {
  switch (op.kind) {
    case POp::Kind::kScan: return "scan(" + op.table_name + ")";
    case POp::Kind::kMerger: return "merger";
    case POp::Kind::kFilter: return "filter";
    case POp::Kind::kProject: return "project";
    case POp::Kind::kHashJoin: return "hash-join";
    case POp::Kind::kHashAgg: return "hash-agg";
    case POp::Kind::kSort: return "sort";
  }
  return "op";
}

/// Process-unique profiler query ids for callers that did not bring one
/// (benches, single-query tools). Starts high so workload-manager handle ids
/// (small integers) never collide.
uint64_t NextAutoQueryId() {
  static std::atomic<uint64_t> next{1u << 30};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kElastic: return "EP";
    case ExecMode::kStatic: return "SP";
    case ExecMode::kMaterialized: return "ME";
  }
  return "?";
}

Executor::Executor(Cluster* cluster) : cluster_(cluster) {}

Result<std::unique_ptr<Iterator>> Executor::BuildIterator(
    const POp& op, int node, SegmentStats* stats, const ExecOptions& opts,
    ProfileBuild* prof, int parent_op) {
  // Pre-order id: assigned before the children recurse, so parents number
  // lower than their whole subtree.
  const int my_op = prof != nullptr ? prof->next_op_id++ : -1;
  CLAIMS_ASSIGN_OR_RETURN(
      std::unique_ptr<Iterator> it,
      BuildIteratorInner(op, node, stats, opts, prof, my_op));
  if (prof == nullptr) return std::move(it);
  ProfilingIterator::Identity ident;
  ident.query_id = prof->query_id;
  ident.op_name = POpName(op);
  ident.segment = prof->segment;
  ident.node = prof->node;
  ident.op_id = my_op;
  ident.parent_op = parent_op;
  return std::unique_ptr<Iterator>(
      std::make_unique<ProfilingIterator>(std::move(it), std::move(ident)));
}

Result<std::unique_ptr<Iterator>> Executor::BuildIteratorInner(
    const POp& op, int node, SegmentStats* stats, const ExecOptions& opts,
    ProfileBuild* prof, int my_op) {
  switch (op.kind) {
    case POp::Kind::kScan: {
      CLAIMS_ASSIGN_OR_RETURN(TablePtr table,
                              cluster_->catalog()->GetTable(op.table_name));
      if (node >= table->num_partitions()) {
        return Status::PlanError(
            StrFormat("scan of '%s' placed on node %d but table has %d "
                      "partitions",
                      op.table_name.c_str(), node, table->num_partitions()));
      }
      ScanIterator::Options so;
      so.num_sockets = op.numa_sockets;
      so.predicate = op.predicate;  // fused filter (predicate pushdown)
      // The iterator must reference storage that outlives it: the table's
      // own schema (the plan and catalog outlive the execution).
      return std::unique_ptr<Iterator>(std::make_unique<ScanIterator>(
          &table->partition(node), &table->schema(), so));
    }
    case POp::Kind::kMerger: {
      BlockChannel* channel = cluster_->network()->GetChannel(
          op.exchange_id + opts.exchange_id_base, node);
      if (channel == nullptr) {
        return Status::Internal(
            StrFormat("no channel for exchange %d at node %d", op.exchange_id,
                      node));
      }
      MergerIterator::ProfileInfo pinfo;
      if (prof != nullptr) {
        pinfo.query_id = prof->query_id;
        pinfo.exchange_id = op.exchange_id + opts.exchange_id_base;
        pinfo.node = node;
        pinfo.segment = prof->segment;
      }
      return std::unique_ptr<Iterator>(std::make_unique<MergerIterator>(
          channel, stats, SteadyClock::Default(), /*poll_ns=*/1'000'000,
          std::move(pinfo)));
    }
    case POp::Kind::kFilter: {
      CLAIMS_ASSIGN_OR_RETURN(
          std::unique_ptr<Iterator> child,
          BuildIterator(*op.children[0], node, stats, opts, prof, my_op));
      return std::unique_ptr<Iterator>(std::make_unique<FilterIterator>(
          std::move(child), &op.children[0]->output_schema, op.predicate));
    }
    case POp::Kind::kProject: {
      CLAIMS_ASSIGN_OR_RETURN(
          std::unique_ptr<Iterator> child,
          BuildIterator(*op.children[0], node, stats, opts, prof, my_op));
      return std::unique_ptr<Iterator>(std::make_unique<ProjectIterator>(
          std::move(child), &op.children[0]->output_schema, op.output_schema,
          op.project_exprs));
    }
    case POp::Kind::kHashJoin: {
      CLAIMS_ASSIGN_OR_RETURN(
          std::unique_ptr<Iterator> build,
          BuildIterator(*op.children[0], node, stats, opts, prof, my_op));
      CLAIMS_ASSIGN_OR_RETURN(
          std::unique_ptr<Iterator> probe,
          BuildIterator(*op.children[1], node, stats, opts, prof, my_op));
      HashJoinIterator::Spec spec;
      spec.build_schema = &op.children[0]->output_schema;
      spec.probe_schema = &op.children[1]->output_schema;
      spec.build_keys = op.build_keys;
      spec.probe_keys = op.probe_keys;
      spec.memory = cluster_->memory();
      spec.pool = BlockPool::Global();
      spec.budget = budget_.get();
      return std::unique_ptr<Iterator>(std::make_unique<HashJoinIterator>(
          std::move(build), std::move(probe), spec));
    }
    case POp::Kind::kHashAgg: {
      CLAIMS_ASSIGN_OR_RETURN(
          std::unique_ptr<Iterator> child,
          BuildIterator(*op.children[0], node, stats, opts, prof, my_op));
      HashAggIterator::Spec spec;
      spec.input_schema = &op.children[0]->output_schema;
      spec.group_exprs = op.group_exprs;
      spec.group_names = op.group_names;
      spec.aggregates = op.aggregates;
      spec.mode = op.agg_mode;
      spec.memory = cluster_->memory();
      spec.pool = BlockPool::Global();
      spec.budget = budget_.get();
      return std::unique_ptr<Iterator>(
          std::make_unique<HashAggIterator>(std::move(child), spec));
    }
    case POp::Kind::kSort: {
      CLAIMS_ASSIGN_OR_RETURN(
          std::unique_ptr<Iterator> child,
          BuildIterator(*op.children[0], node, stats, opts, prof, my_op));
      return std::unique_ptr<Iterator>(std::make_unique<SortIterator>(
          std::move(child), &op.output_schema, op.sort_keys));
    }
  }
  return Status::Internal("unknown operator kind");
}

void Executor::Cancel() { TriggerCancel(/*deadline=*/false); }

ExecProgress Executor::Progress() const {
  std::lock_guard<std::mutex> lock(live_mu_);
  if (live_segments_.empty()) return latched_progress_;
  ExecProgress p;
  p.executing = true;
  p.live_segments = static_cast<int>(live_segments_.size());
  for (Segment* s : live_segments_) {
    const SegmentStats* st = s->stats();
    p.tuples_consumed += st->input_tuples.load(std::memory_order_relaxed);
    p.tuples_emitted += st->output_tuples.load(std::memory_order_relaxed);
  }
  // budget_ only changes between runs, and live_segments_ is non-empty here,
  // so the ledger is stable for the duration of this sample.
  if (budget_ != nullptr) {
    p.mem_charged_bytes = budget_->charged_bytes();
    p.mem_budget_bytes = budget_->budget_bytes();
    p.mem_spilled_bytes = budget_->spilled_bytes();
  }
  return p;
}

bool Executor::ShrinkForMemory() {
  std::lock_guard<std::mutex> lock(live_mu_);
  // Widest-first: shrinking where parallelism is highest frees the most
  // per-worker state (private agg tables, in-flight blocks) for the least
  // throughput loss, and segments at min parallelism refuse anyway.
  std::vector<std::pair<int, Segment*>> by_width;
  for (Segment* s : live_segments_) {
    int par = s->elastic()->parallelism();
    if (par > 1) by_width.emplace_back(par, s);
  }
  std::sort(by_width.begin(), by_width.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [par, seg] : by_width) {
    (void)par;
    if (seg->elastic()->Shrink()) return true;
  }
  return false;
}

void Executor::TriggerCancel(bool deadline) {
  // Order matters: latch the reason before the request flag so any thread
  // that observes cancel_requested_ also sees why.
  if (deadline) deadline_hit_.store(true, std::memory_order_release);
  cancel_requested_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(live_mu_);
  for (Segment* s : live_segments_) s->Cancel();
}

namespace {
/// Runs a cleanup functor on scope exit (early error returns included).
template <typename F>
class ScopeGuard {
 public:
  explicit ScopeGuard(F f) : f_(std::move(f)) {}
  ~ScopeGuard() { f_(); }
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(ScopeGuard);

 private:
  F f_;
};
}  // namespace

Result<ResultSet> Executor::Execute(const PhysicalPlan& plan,
                                    const ExecOptions& opts) {
  Clock* clock = SteadyClock::Default();
  int64_t t0 = clock->NowNanos();
  if (cancel_requested_.load(std::memory_order_acquire)) {
    return Status::Cancelled("query cancelled before execution started");
  }
  // Free the previous query's segments (and their tracked arenas) *before*
  // resetting the tracker, or their releases would underflow the counter —
  // and before replacing the ledger they refund into.
  segments_.clear();
  stats_own_.clear();
  budget_.reset();
  if (opts.memory_budget_bytes > 0) {
    budget_ = std::make_unique<QueryBudget>(
        StrFormat("q%llu",
                  static_cast<unsigned long long>(
                      opts.query_id != 0 ? opts.query_id : 0)),
        opts.memory_budget_bytes);
    // First rung of the degradation ladder: a refused charge asks the
    // dynamic scheduler's domain to give memory back before operators spill.
    budget_->SetShrinkHook([this] { return ShrinkForMemory(); });
  }
  // Concurrent queries share the tracker; only an exclusive owner may zero
  // it (peak memory is then per-query instead of cluster-wide).
  if (opts.exclusive_cluster) cluster_->memory()->Reset();
  int64_t remote0 = cluster_->network()->total_remote_bytes();

  // Placement: plans address *logical* nodes (which partition to scan, which
  // channel to consume); this execution maps each logical node onto a live
  // *physical* host. With every node healthy the map is the identity; after
  // a crash, dead nodes' segments re-dispatch deterministically onto
  // survivors (alive[logical % alive.size()]), reading the dead node's
  // partition from shared memory — the in-process analogue of a replica.
  const std::vector<int> alive = cluster_->AliveNodes();
  if (alive.empty()) {
    return Status::Unavailable("no cluster nodes alive");
  }
  auto place = [&alive, this](int logical) {
    return cluster_->NodeAlive(logical)
               ? logical
               : alive[logical % static_cast<int>(alive.size())];
  };

  // Causal-profiler identity: resolved once per execution. Disarmed runs get
  // id 0, which turns every span hook below into a dead relaxed-load branch.
  QueryProfiler* profiler = QueryProfiler::Global();
  const uint64_t profile_qid =
      profiler->armed()
          ? (opts.query_id != 0 ? opts.query_id : NextAutoQueryId())
          : 0;
  ScopeGuard drain_spans([&] {
    // Paths that bail without assembling (cancel, node loss, broken stream)
    // must not leave this query's spans pinned in the shards.
    if (profile_qid != 0) QueryProfiler::Global()->TakeQuery(profile_qid);
  });

  // 1. Declare exchanges (ME materializes: unbounded channels). Ids are
  // namespaced per execution so overlapping queries never share a channel.
  const int xbase = opts.exchange_id_base;
  for (const auto& f : plan.fragments) {
    cluster_->network()->CreateExchange(
        f->out_exchange_id + xbase, static_cast<int>(f->nodes.size()),
        f->consumer_nodes,
        opts.mode == ExecMode::kMaterialized ? -1 : 0);
  }
  ScopeGuard destroy_exchanges([&] {
    // All producers/consumers are joined (or were never started) on every
    // path that reaches here, so tearing the channels down is safe.
    for (const auto& f : plan.fragments) {
      cluster_->network()->DestroyExchange(f->out_exchange_id + xbase);
    }
  });

  // 2. Build segment instances.
  // fragment index -> its segments (for ME's group-at-a-time execution).
  std::vector<std::vector<Segment*>> by_fragment(plan.fragments.size());
  for (size_t fi = 0; fi < plan.fragments.size(); ++fi) {
    const Fragment& f = *plan.fragments[fi];
    for (int node : f.nodes) {
      const int host = place(node);
      auto stats = std::make_unique<SegmentStats>();
      const std::string seg_name =
          host == node ? StrFormat("S%d@n%d", f.id, node)
                       : StrFormat("S%d@n%d->n%d", f.id, node, host);
      // Operator wrapping only exists on profiled runs; a disarmed run
      // builds the exact tree it always did.
      ProfileBuild prof;
      prof.query_id = profile_qid;
      prof.segment = seg_name;
      prof.node = host;
      // The iterator tree is built for the *logical* node: scans read the
      // logical partition, mergers consume the logical channel. Only the
      // hosting (scheduler, NIC) side moves on re-dispatch.
      CLAIMS_ASSIGN_OR_RETURN(
          std::unique_ptr<Iterator> ops,
          BuildIterator(*f.root, node, stats.get(), opts,
                        profile_qid != 0 ? &prof : nullptr,
                        /*parent_op=*/-1));
      Segment::Config config;
      config.name = seg_name;
      config.node_id = host;
      config.stats = stats.get();
      config.clock = clock;
      config.max_parallelism =
          f.max_parallelism > 0
              ? std::min(f.max_parallelism, cluster_->options().cores_per_node)
              : cluster_->options().cores_per_node;
      config.sender.exchange_id = f.out_exchange_id + xbase;
      config.sender.from_node = node;
      config.sender.from_node_physical = host;
      config.sender.partitioning = f.partitioning;
      config.sender.hash_cols = f.hash_cols;
      config.sender.consumer_nodes = f.consumer_nodes;
      config.sender.consumer_placement.reserve(f.consumer_nodes.size());
      for (int consumer : f.consumer_nodes) {
        config.sender.consumer_placement.push_back(place(consumer));
      }
      config.sender.schema = &f.root->output_schema;
      config.sender.network = cluster_->network();
      config.elastic.initial_parallelism =
          std::max(1, opts.parallelism > 0 ? opts.parallelism
                                           : f.initial_parallelism);
      config.elastic.order_preserving = f.order_preserving;
      config.elastic.buffer_capacity_blocks = opts.buffer_capacity_blocks;
      config.elastic.memory = cluster_->memory();
      config.elastic.budget = budget_.get();
      config.elastic.query_id = profile_qid;
      if (opts.mode != ExecMode::kElastic) {
        // SP/ME: parallelism fixed at compile time.
        config.elastic.min_parallelism = config.elastic.initial_parallelism;
        config.max_parallelism = config.elastic.initial_parallelism;
      }
      auto segment = std::make_unique<Segment>(std::move(ops),
                                               std::move(config));
      by_fragment[fi].push_back(segment.get());
      stats_own_.push_back(std::move(stats));
      segments_.push_back(std::move(segment));
    }
  }

  // Register the built segments for cross-thread cancellation, then re-check
  // the flag: a Cancel() that fired before registration saw an empty list,
  // so it is honored here before anything starts.
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    live_segments_.clear();
    for (auto& s : segments_) live_segments_.push_back(s.get());
  }
  ScopeGuard clear_live([&] {
    std::lock_guard<std::mutex> lock(live_mu_);
    // Latch the final totals so post-run Progress() still reports them.
    ExecProgress final_p;
    for (Segment* s : live_segments_) {
      const SegmentStats* st = s->stats();
      final_p.tuples_consumed +=
          st->input_tuples.load(std::memory_order_relaxed);
      final_p.tuples_emitted +=
          st->output_tuples.load(std::memory_order_relaxed);
    }
    if (budget_ != nullptr) {
      final_p.mem_charged_bytes = budget_->peak_charged_bytes();
      final_p.mem_budget_bytes = budget_->budget_bytes();
      final_p.mem_spilled_bytes = budget_->spilled_bytes();
    }
    latched_progress_ = final_p;
    live_segments_.clear();
  });
  if (cancel_requested_.load(std::memory_order_acquire)) {
    return deadline_hit_.load(std::memory_order_acquire)
               ? Status::DeadlineExceeded("deadline expired before start")
               : Status::Cancelled("query cancelled before execution started");
  }

  // Watch for node loss on any host this execution landed on: cancel the
  // run and surface kUnavailable so the workload manager re-dispatches (a
  // fresh attempt re-snapshots AliveNodes and places around the dead node).
  std::vector<bool> used_hosts(cluster_->num_nodes(), false);
  for (auto& s : segments_) used_hosts[s->node_id()] = true;
  const int death_token =
      cluster_->AddNodeDeathListener([this, used_hosts](int node) {
        if (node >= 0 && node < static_cast<int>(used_hosts.size()) &&
            used_hosts[node]) {
          node_loss_.store(true, std::memory_order_release);
          TriggerCancel(/*deadline=*/false);
        }
      });
  ScopeGuard remove_death_listener(
      [&] { cluster_->RemoveNodeDeathListener(death_token); });
  // Close the race with a crash that landed between the placement snapshot
  // and the listener registration.
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    if (used_hosts[n] && !cluster_->NodeAlive(n)) {
      node_loss_.store(true, std::memory_order_release);
      return Status::Unavailable(
          StrFormat("node %d died before execution started", n));
    }
  }

  // Deadline watchdog: one short-lived thread per deadline-bearing query.
  // Uniform across EP/SP/ME — it cancels the registered segments directly,
  // so even a blocking ME stage obeys the deadline at its next block.
  std::thread watchdog;
  std::mutex wd_mu;
  std::condition_variable wd_cv;
  bool wd_done = false;
  ScopeGuard stop_watchdog([&] {
    {
      std::lock_guard<std::mutex> lock(wd_mu);
      wd_done = true;
    }
    wd_cv.notify_all();
    if (watchdog.joinable()) watchdog.join();
  });
  if (opts.deadline_ns > 0) {
    watchdog = std::thread([&] {
      std::unique_lock<std::mutex> lock(wd_mu);
      while (!wd_done && clock->NowNanos() < opts.deadline_ns) {
        int64_t remaining = opts.deadline_ns - clock->NowNanos();
        wd_cv.wait_for(lock, std::chrono::nanoseconds(
                                 std::min<int64_t>(remaining, 10'000'000)));
      }
      if (!wd_done) TriggerCancel(/*deadline=*/true);
    });
  }

  // 3. Run.
  ResultSet result(plan.result_schema);
  BlockChannel* result_channel =
      cluster_->network()->GetChannel(plan.result_exchange_id + xbase,
                                      /*master node*/ 0);
  if (result_channel == nullptr) {
    return Status::Internal("result exchange missing");
  }

  auto drain_result = [&]() {
    NetBlock nb;
    while (true) {
      ChannelStatus s = result_channel->Receive(&nb, 5'000'000);
      if (s == ChannelStatus::kOk) {
        if (opts.collect_result) result.AppendBlock(std::move(nb.block));
      } else if (s == ChannelStatus::kClosed) {
        break;
      }
    }
  };

  if (opts.mode == ExecMode::kMaterialized) {
    // Fragment-group-at-a-time: every exchange is fully materialized before
    // its consumer group starts (classic distributed staging).
    for (size_t fi = 0; fi < plan.fragments.size(); ++fi) {
      for (Segment* s : by_fragment[fi]) s->Start();
      for (Segment* s : by_fragment[fi]) s->Join();
    }
    drain_result();
  } else {
    if (opts.mode == ExecMode::kElastic) {
      for (auto& segment : segments_) {
        cluster_->scheduler(segment->node_id())->AddSegment(segment.get());
      }
      cluster_->StartSchedulers();
    }
    for (auto& segment : segments_) segment->Start();
    drain_result();
    for (auto& segment : segments_) segment->Join();
    if (opts.mode == ExecMode::kElastic) {
      cluster_->StopSchedulers();
      for (auto& segment : segments_) {
        cluster_->scheduler(segment->node_id())->RemoveSegment(segment.get());
      }
    }
  }

  // A cancelled or deadline-expired run drained and joined cleanly above
  // (producers close their exchanges even when aborting), but its blocks are
  // partial: surface the reason instead of the data.
  if (cancel_requested_.load(std::memory_order_acquire)) {
    if (deadline_hit_.load(std::memory_order_acquire)) {
      return Status::DeadlineExceeded("query deadline exceeded mid-stream");
    }
    if (node_loss_.load(std::memory_order_acquire)) {
      return Status::Unavailable(
          "cluster node died mid-stream; re-dispatch onto survivors");
    }
    return Status::Cancelled("query cancelled mid-stream");
  }

  // Fail the query if any segment's stream broke mid-pump (child operator
  // error / aborted send): the blocks drained above are incomplete and must
  // not be returned as a clean result. Producers close their exchanges even
  // on failure, so downstream segments drained and joined normally above.
  // Infrastructure failures (dead endpoint, fault storm outlasting retries)
  // surface as kUnavailable — retryable; logic errors stay kInternal.
  for (auto& segment : segments_) {
    if (segment->failed()) {
      if (segment->failed_unavailable()) {
        return Status::Unavailable(
            StrFormat("segment %s lost its stream to infrastructure failure",
                      segment->name().c_str()));
      }
      // Budget rejection outranks kInternal: the ledger latches rejected()
      // only when the whole degradation ladder (shrink, then spill) failed
      // to fit the query, and the segment error is that refusal surfacing.
      if (budget_ != nullptr && budget_->rejected()) {
        return Status::ResourceExhausted(StrFormat(
            "query exceeded its memory budget (%lld bytes charged peak of "
            "%lld budget, %lld spilled) after shrink and spill degradation",
            static_cast<long long>(budget_->peak_charged_bytes()),
            static_cast<long long>(budget_->budget_bytes()),
            static_cast<long long>(budget_->spilled_bytes())));
      }
      return Status::Internal(
          StrFormat("segment %s failed mid-stream; result discarded",
                    segment->name().c_str()));
    }
  }

  int64_t t1 = clock->NowNanos();
  stats_.elapsed_ns = t1 - t0;
  stats_.peak_memory_bytes = cluster_->memory()->peak_bytes();
  stats_.remote_bytes = cluster_->network()->total_remote_bytes() - remote0;

  // EXPLAIN-ANALYZE report: segment rows copied from the very SegmentStats
  // the scheduler sampled, so report totals reconcile with the counters.
  TraceCollector* tc = TraceCollector::Global();
  report_ = ExecutionReport{};
  report_.mode = ExecModeName(opts.mode);
  report_.elapsed_ns = stats_.elapsed_ns;
  report_.queue_wait_ns = opts.queue_wait_ns;
  report_.peak_memory_bytes = stats_.peak_memory_bytes;
  report_.remote_bytes = stats_.remote_bytes;
  report_.result_tuples = result.num_rows();
  std::vector<TraceEvent> trace;
  if (tc->enabled()) {
    trace = tc->Snapshot();
    tc->Complete(t0, t1 - t0, /*pid=*/0, "query",
                 StrFormat("query (%s)", ExecModeName(opts.mode)),
                 {{"result_tuples", result.num_rows()},
                  {"remote_bytes", stats_.remote_bytes}});
  }
  for (size_t i = 0; i < segments_.size(); ++i) {
    const Segment& seg = *segments_[i];
    const SegmentStats& st = *stats_own_[i];
    SegmentReport sr;
    sr.name = seg.name();
    sr.node_id = seg.node_id();
    sr.input_tuples = st.input_tuples.load(std::memory_order_relaxed);
    sr.output_tuples = st.output_tuples.load(std::memory_order_relaxed);
    sr.selectivity = st.selectivity();
    sr.visit_rate = st.visit_rate.load(std::memory_order_relaxed);
    sr.blocked_input_ns = st.blocked_input_ns.load(std::memory_order_relaxed);
    sr.blocked_output_ns =
        st.blocked_output_ns.load(std::memory_order_relaxed);
    sr.lifetime_ns = seg.lifetime_ns();
    sr.final_parallelism = seg.final_parallelism();
    sr.peak_parallelism = segments_[i]->elastic()->peak_parallelism();
    sr.parallelism_timeline =
        ExtractCounterTimeline(trace, "parallelism:" + seg.name(), t0, t1);
    report_.segments.push_back(std::move(sr));
  }

  // Causal profile: stitch this run's spans + the schedulers' decision audit
  // into one DAG, store it in the profiler's ring (GET /profile/<id>), and
  // surface the digest through EXPLAIN ANALYZE.
  if (profile_qid != 0) {
    ProfSpan qspan;
    qspan.query_id = profile_qid;
    qspan.kind = SpanKind::kQuery;
    qspan.name = StrFormat("query (%s)", ExecModeName(opts.mode));
    qspan.node = 0;
    qspan.start_ns = t0;
    qspan.end_ns = t1;
    qspan.tuples = result.num_rows();
    qspan.bytes = stats_.remote_bytes;
    profiler->EmitComplete(std::move(qspan));
    if (opts.queue_wait_ns > 0) {
      ProfSpan wait;
      wait.query_id = profile_qid;
      wait.kind = SpanKind::kSchedulerWait;
      wait.name = "admission-queue";
      wait.node = 0;
      wait.start_ns = t0 - opts.queue_wait_ns;
      wait.end_ns = t0;
      profiler->EmitComplete(std::move(wait));
    }
    AssembleInput in;
    in.query_id = profile_qid;
    in.label = StrFormat("query (%s)", ExecModeName(opts.mode));
    in.start_ns = t0;
    in.end_ns = t1;
    in.spans = profiler->TakeQuery(profile_qid);
    in.dropped_spans = profiler->dropped_spans();
    for (int n = 0; n < cluster_->num_nodes(); ++n) {
      std::vector<SchedTickAudit> ticks =
          cluster_->scheduler(n)->AuditLogForQuery(profile_qid);
      in.audit.insert(in.audit.end(),
                      std::make_move_iterator(ticks.begin()),
                      std::make_move_iterator(ticks.end()));
    }
    std::shared_ptr<const QueryProfile> profile =
        AssembleQueryProfile(std::move(in));
    profiler->StoreProfile(profile);
    report_.profile_summary = profile->Summary();
    report_.profile_query_id = profile_qid;
  }
  return result;
}

}  // namespace claims
