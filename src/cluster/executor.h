#ifndef CLAIMS_CLUSTER_EXECUTOR_H_
#define CLAIMS_CLUSTER_EXECUTOR_H_

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/plan.h"
#include "cluster/result_set.h"
#include "cluster/segment.h"
#include "obs/report.h"

namespace claims {

/// Execution frameworks compared in the paper (§5.4):
///  * kElastic (EP)      — pipelined, parallelism adjusted at runtime by the
///                          dynamic schedulers;
///  * kStatic (SP)       — pipelined, parallelism fixed at "compile time";
///  * kMaterialized (ME) — fragments run one group at a time, intermediates
///                          fully materialized in (unbounded) exchanges.
enum class ExecMode { kElastic, kStatic, kMaterialized };

const char* ExecModeName(ExecMode mode);

struct ExecOptions {
  ExecMode mode = ExecMode::kElastic;
  /// Worker threads per segment: EP's starting point (paper experiments
  /// default to 1), SP/ME's fixed assignment.
  int parallelism = 1;
  /// Overrides Fragment::initial_parallelism when > 0.
  bool collect_result = true;
  /// Elastic-iterator buffer depth per segment (blocks).
  size_t buffer_capacity_blocks = 64;
};

struct ExecStats {
  int64_t elapsed_ns = 0;
  int64_t peak_memory_bytes = 0;
  int64_t remote_bytes = 0;
};

/// Deploys a PhysicalPlan on the cluster and gathers the result at the
/// master. One Executor per query execution.
class Executor {
 public:
  explicit Executor(Cluster* cluster);

  /// Runs the plan; blocks until completion.
  Result<ResultSet> Execute(const PhysicalPlan& plan, const ExecOptions& opts);

  const ExecStats& stats() const { return stats_; }

  /// EXPLAIN-ANALYZE summary of the most recent Execute. Per-segment numbers
  /// are copied from the segments' SegmentStats, so they reconcile exactly
  /// with what the scheduler sampled; parallelism timelines are filled from
  /// the trace when tracing was on during the run.
  const ExecutionReport& report() const { return report_; }

  /// Live segments of the most recent Execute (valid during execution; used
  /// by benches to trace parallelism dynamics).
  const std::vector<std::unique_ptr<Segment>>& segments() const {
    return segments_;
  }

 private:
  /// Builds the iterator tree of `op` for the instance on `node`.
  Result<std::unique_ptr<Iterator>> BuildIterator(const POp& op, int node,
                                                  SegmentStats* stats,
                                                  const ExecOptions& opts);

  Cluster* cluster_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::vector<std::unique_ptr<SegmentStats>> stats_own_;
  ExecStats stats_;
  ExecutionReport report_;
};

}  // namespace claims

#endif  // CLAIMS_CLUSTER_EXECUTOR_H_
