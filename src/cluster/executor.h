#ifndef CLAIMS_CLUSTER_EXECUTOR_H_
#define CLAIMS_CLUSTER_EXECUTOR_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/plan.h"
#include "cluster/result_set.h"
#include "cluster/segment.h"
#include "mem/query_budget.h"
#include "obs/report.h"

namespace claims {

/// Execution frameworks compared in the paper (§5.4):
///  * kElastic (EP)      — pipelined, parallelism adjusted at runtime by the
///                          dynamic schedulers;
///  * kStatic (SP)       — pipelined, parallelism fixed at "compile time";
///  * kMaterialized (ME) — fragments run one group at a time, intermediates
///                          fully materialized in (unbounded) exchanges.
enum class ExecMode { kElastic, kStatic, kMaterialized };

const char* ExecModeName(ExecMode mode);

struct ExecOptions {
  /// Execution framework every segment of this query runs under.
  ExecMode mode = ExecMode::kElastic;
  /// Worker threads per segment: EP's starting point (paper experiments
  /// default to 1), SP/ME's fixed assignment. Overrides
  /// Fragment::initial_parallelism when > 0.
  int parallelism = 1;
  /// Master gathers result blocks into the returned ResultSet. Benches that
  /// only measure execution switch this off; arriving blocks are dropped.
  bool collect_result = true;
  /// Elastic-iterator buffer depth per segment (blocks).
  size_t buffer_capacity_blocks = 64;
  /// Absolute SteadyClock deadline in nanoseconds; 0 disables. A query still
  /// running at the deadline is cancelled cooperatively and Execute returns
  /// kDeadlineExceeded. The workload manager derives this from the
  /// submission time plus the query's timeout, so admission queueing counts
  /// against the deadline.
  int64_t deadline_ns = 0;
  /// Offset added to every exchange id of the plan for this execution.
  /// Plans number exchanges from 0, so two queries in flight at once would
  /// collide in the shared network fabric; the workload manager allocates a
  /// distinct base per running query. Single-query callers keep 0.
  int exchange_id_base = 0;
  /// True when this query owns the cluster for its whole run (the classic
  /// serial path): the cluster memory tracker is reset at query start so
  /// peak_memory_bytes is per-query. The workload manager clears this for
  /// concurrent queries; peak memory then reports the cluster-wide
  /// high-watermark across everything in flight.
  bool exclusive_cluster = true;
  /// Time this query waited in the admission queue before Execute began;
  /// copied into the ExecutionReport so EXPLAIN ANALYZE splits queue-wait
  /// from run-time. Filled by the workload manager; 0 when unqueued.
  int64_t queue_wait_ns = 0;
  /// Causal-profiler identity for this execution. With the global
  /// QueryProfiler armed, 0 auto-assigns a process-unique id (single-query
  /// callers, benches); the workload manager passes its own handle id so
  /// /profile/<id> matches /queries. With the profiler disarmed the value is
  /// carried but every span hook stays a dead branch.
  uint64_t query_id = 0;
  /// Binding per-query memory budget in bytes; 0 disables (no ledger is
  /// created and allocation behaves as before). When set, every arena chunk
  /// and buffered block of this query charges a QueryBudget; on pressure the
  /// ladder runs shrink → spill → kResourceExhausted (docs/MEMORY.md). The
  /// workload manager passes the admitted reservation here, making the WLM
  /// estimate binding rather than advisory.
  int64_t memory_budget_bytes = 0;
};

struct ExecStats {
  int64_t elapsed_ns = 0;
  int64_t peak_memory_bytes = 0;
  int64_t remote_bytes = 0;
};

/// Coarse liveness of one execution, cheap enough to sample from another
/// thread on every monitoring scrape (one mutex + relaxed atomic reads).
struct ExecProgress {
  bool executing = false;  ///< segments are live right now
  int live_segments = 0;   ///< 0 once the run finished (totals stay latched)
  int64_t tuples_consumed = 0;  ///< Σ input_tuples over the query's segments
  int64_t tuples_emitted = 0;   ///< Σ output_tuples — the progress counter
  // Memory ledger, all 0 when the query runs without a budget.
  int64_t mem_charged_bytes = 0;  ///< live ledger charge
  int64_t mem_budget_bytes = 0;   ///< admitted budget
  int64_t mem_spilled_bytes = 0;  ///< bytes evicted to the cold tier
};

/// Deploys a PhysicalPlan on the cluster and gathers the result at the
/// master. One Executor per query execution. Many executors may run
/// concurrently over one Cluster when each execution namespaces its
/// exchange ids (ExecOptions::exchange_id_base) and leaves the shared
/// trackers alone (ExecOptions::exclusive_cluster = false) — the workload
/// manager (src/wlm) is the layer that arranges this.
class Executor {
 public:
  explicit Executor(Cluster* cluster);

  /// Runs the plan; blocks until completion, cancellation, or deadline.
  Result<ResultSet> Execute(const PhysicalPlan& plan, const ExecOptions& opts);

  /// Cooperative cancellation, callable from any thread while (or before)
  /// Execute runs: every live segment aborts at its next block boundary and
  /// Execute returns kCancelled. Sticky — a cancelled executor stays
  /// cancelled (one executor per query execution).
  void Cancel();

  const ExecStats& stats() const { return stats_; }

  /// Live progress while Execute runs; after completion the final totals
  /// stay latched (with executing=false). Callable from any thread — the
  /// workload manager's /queries endpoint and the stall watchdog's
  /// per-query progress probes sample this.
  ExecProgress Progress() const;

  /// EXPLAIN-ANALYZE summary of the most recent Execute. Per-segment numbers
  /// are copied from the segments' SegmentStats, so they reconcile exactly
  /// with what the scheduler sampled; parallelism timelines are filled from
  /// the trace when tracing was on during the run.
  const ExecutionReport& report() const { return report_; }

  /// Live segments of the most recent Execute (valid during execution; used
  /// by benches to trace parallelism dynamics).
  const std::vector<std::unique_ptr<Segment>>& segments() const {
    return segments_;
  }

  /// The query's memory ledger; nullptr when running without a budget
  /// (ExecOptions::memory_budget_bytes == 0). Valid until the next Execute;
  /// the workload manager reads peak/spilled bytes for release accounting.
  QueryBudget* budget() const { return budget_.get(); }

 private:
  /// Per-segment profiling context threaded through BuildIterator when the
  /// causal profiler is armed; nullptr builds the bare tree (disarmed hot
  /// path — no wrapper, no virtual hop).
  struct ProfileBuild {
    uint64_t query_id = 0;
    std::string segment;  ///< owning segment label ("S1@n0")
    int node = 0;
    int next_op_id = 0;  ///< pre-order operator numbering within the segment
  };

  /// Builds the iterator tree of `op` for the instance on `node`. With
  /// `prof` set, every operator is wrapped in a ProfilingIterator carrying
  /// its pre-order (op_id, parent_op) so the assembler can telescope
  /// exclusive times.
  Result<std::unique_ptr<Iterator>> BuildIterator(const POp& op, int node,
                                                  SegmentStats* stats,
                                                  const ExecOptions& opts,
                                                  ProfileBuild* prof,
                                                  int parent_op);
  /// The unwrapped per-kind construction; recurses via BuildIterator.
  Result<std::unique_ptr<Iterator>> BuildIteratorInner(
      const POp& op, int node, SegmentStats* stats, const ExecOptions& opts,
      ProfileBuild* prof, int my_op);

  /// Latches the cancel reason and aborts every registered live segment.
  /// Called from Cancel() (user thread) and the deadline watchdog.
  void TriggerCancel(bool deadline);

  /// First rung of the degradation ladder, installed as the ledger's shrink
  /// hook: release memory headroom by shrinking the widest live segment's
  /// elastic parallelism (one fewer worker = one fewer private table /
  /// in-flight block). Never called with a buffer or arena lock held — the
  /// chargers charge before locking (core/data_buffer.cc).
  bool ShrinkForMemory();

  Cluster* cluster_;
  /// Declared before segments_: segment teardown refunds arena charges into
  /// the ledger, so the ledger must be destroyed after the segments.
  std::unique_ptr<QueryBudget> budget_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::vector<std::unique_ptr<SegmentStats>> stats_own_;
  ExecStats stats_;
  ExecutionReport report_;

  /// Cancel reasons are atomics so Execute's hot paths read them lock-free;
  /// live_mu_ guards only the registered-segment list.
  std::atomic<bool> cancel_requested_{false};
  std::atomic<bool> deadline_hit_{false};
  /// Set when a cluster node hosting part of this execution died mid-run:
  /// Execute returns kUnavailable (retryable) instead of kCancelled, and the
  /// workload manager re-dispatches onto the survivors.
  std::atomic<bool> node_loss_{false};
  mutable std::mutex live_mu_;
  std::vector<Segment*> live_segments_;
  ExecProgress latched_progress_;  ///< guarded by live_mu_; set on teardown
};

}  // namespace claims

#endif  // CLAIMS_CLUSTER_EXECUTOR_H_
