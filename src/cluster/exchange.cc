#include "cluster/exchange.h"

#include "obs/profile/profiler.h"
#include "storage/partition.h"

namespace claims {

MergerIterator::MergerIterator(BlockChannel* channel, SegmentStats* stats,
                               Clock* clock, int64_t poll_ns)
    : MergerIterator(channel, stats, clock, poll_ns, ProfileInfo()) {}

MergerIterator::MergerIterator(BlockChannel* channel, SegmentStats* stats,
                               Clock* clock, int64_t poll_ns,
                               ProfileInfo profile)
    : channel_(channel),
      stats_(stats),
      visit_rates_(stats),
      clock_(clock != nullptr ? clock : SteadyClock::Default()),
      poll_ns_(poll_ns),
      profile_(std::move(profile)) {}

MergerIterator::~MergerIterator() {
  // A merger torn down while starved (cancellation, shrink-to-zero) must not
  // leak its open blocked-input span.
  uint64_t token = blocked_token_.exchange(0, std::memory_order_acq_rel);
  if (token != 0) QueryProfiler::Global()->AbortOpen(token);
}

void MergerIterator::NoteStarved(int64_t t0) {
  if (profile_.query_id == 0) return;
  QueryProfiler* profiler = QueryProfiler::Global();
  if (!profiler->armed()) return;
  if (blocked_token_.load(std::memory_order_acquire) != 0) return;
  ProfSpan span;
  span.query_id = profile_.query_id;
  span.kind = SpanKind::kBlockedInput;
  span.name = "starved";
  span.segment = profile_.segment;
  span.node = profile_.node;
  span.start_ns = t0;
  span.exchange_id = profile_.exchange_id;
  span.to_node = profile_.node;
  uint64_t token = profiler->BeginOpen(span);
  if (token == 0) return;
  uint64_t expected = 0;
  if (!blocked_token_.compare_exchange_strong(expected, token,
                                              std::memory_order_acq_rel)) {
    profiler->AbortOpen(token);  // another worker opened one first
  }
}

void MergerIterator::ResolveStarved(int64_t end_ns, uint64_t wire_seq,
                                    int from_node) {
  uint64_t token = blocked_token_.exchange(0, std::memory_order_acq_rel);
  if (token == 0) return;
  // Kept even when short: the resolved (wire_seq, from_node) is the causal
  // link the assembler follows from this wait to the producing segment.
  QueryProfiler::Global()->EndOpen(token, end_ns, wire_seq, from_node);
}

NextResult MergerIterator::Open(WorkerContext* ctx) {
  if (ctx->DetectedTerminateRequest()) return NextResult::kTerminated;
  // The receive buffer (the channel) lives in the fabric and was created
  // before any producer started; nothing to construct here.
  return NextResult::kSuccess;
}

NextResult MergerIterator::Next(WorkerContext* ctx, BlockPtr* out) {
  while (true) {
    if (ctx->DetectedTerminateRequest()) return NextResult::kTerminated;
    NetBlock nb;
    int64_t t0 = clock_->NowNanos();
    ChannelStatus status = channel_->Receive(&nb, poll_ns_);
    if (status == ChannelStatus::kOk) {
      if (stats_ != nullptr) {
        stats_->input_tuples.fetch_add(nb.block->num_rows(),
                                       std::memory_order_relaxed);
        visit_rates_.Observe(nb.from_node, nb.block->visit_rate());
      }
      if (profile_.query_id != 0) {
        QueryProfiler* profiler = QueryProfiler::Global();
        if (profiler->armed()) {
          const int64_t t1 = clock_->NowNanos();
          ResolveStarved(t1, nb.wire_seq + 1, nb.from_node);
          ProfSpan span;
          span.query_id = profile_.query_id;
          span.kind = SpanKind::kNetRecv;
          span.name = "recv";
          span.segment = profile_.segment;
          span.node = profile_.node;
          span.start_ns = t0;
          span.end_ns = t1;
          span.tuples = nb.block->num_rows();
          span.bytes = nb.block->payload_bytes();
          span.exchange_id = profile_.exchange_id;
          span.from_node = nb.from_node;
          span.to_node = profile_.node;
          span.wire_seq = nb.wire_seq + 1;  // 1-based, matching the send span
          profiler->EmitComplete(std::move(span));
        }
      }
      // Re-number: the merger is this segment's stage beginner.
      nb.block->set_sequence_number(
          next_sequence_.fetch_add(1, std::memory_order_relaxed));
      if (ctx->processing_started != nullptr) {
        ctx->processing_started->store(true, std::memory_order_release);
      }
      *out = std::move(nb.block);
      return NextResult::kSuccess;
    }
    if (status == ChannelStatus::kClosed) {
      // End-of-stream: any open wait was for data that will never come —
      // attribute nothing (drop it) rather than fabricate a causal edge.
      uint64_t token = blocked_token_.exchange(0, std::memory_order_acq_rel);
      if (token != 0) QueryProfiler::Global()->AbortOpen(token);
      return NextResult::kEndOfFile;
    }
    // Timeout: starved — record the wait so the scheduler can tell.
    if (stats_ != nullptr) {
      stats_->blocked_input_ns.fetch_add(clock_->NowNanos() - t0,
                                         std::memory_order_relaxed);
    }
    NoteStarved(t0);
  }
}

void MergerIterator::Close() {
  uint64_t token = blocked_token_.exchange(0, std::memory_order_acq_rel);
  if (token != 0) QueryProfiler::Global()->AbortOpen(token);
}

SenderPump::SenderPump(Spec spec)
    : spec_(std::move(spec)), sent_tuples_(spec_.consumer_nodes.size()) {}

bool SenderPump::SendBlock(int dest_index, BlockPtr block,
                           const std::atomic<bool>* cancel) {
  if (block == nullptr || block->empty()) return true;
  const int64_t rows = block->num_rows();
  // Post-add snapshots: with concurrent senders each caller still computes a
  // fraction from complete sums (total ≥ dest ≥ rows ≥ 1, so no zero guard).
  const int64_t dest_total =
      sent_tuples_[dest_index].fetch_add(rows, std::memory_order_relaxed) +
      rows;
  const int64_t total =
      total_sent_.fetch_add(rows, std::memory_order_relaxed) + rows;
  // Outgoing tail = V_i · δ_i · p_ij (paper §4.3).
  double v = 1.0;
  double selectivity = 1.0;
  if (spec_.stats != nullptr) {
    v = spec_.stats->visit_rate.load(std::memory_order_relaxed);
    selectivity = spec_.stats->selectivity();
  }
  double fraction = static_cast<double>(dest_total) / static_cast<double>(total);
  if (spec_.partitioning == Partitioning::kBroadcast) fraction = 1.0;
  block->set_visit_rate(v * selectivity * fraction);
  Route route;
  route.exchange_id = spec_.exchange_id;
  route.from_logical = spec_.from_node;
  route.from_physical =
      spec_.from_node_physical >= 0 ? spec_.from_node_physical : spec_.from_node;
  route.to_logical = spec_.consumer_nodes[dest_index];
  route.to_physical =
      static_cast<size_t>(dest_index) < spec_.consumer_placement.size()
          ? spec_.consumer_placement[dest_index]
          : route.to_logical;
  QueryProfiler* profiler = QueryProfiler::Global();
  const bool profiled = spec_.query_id != 0 && profiler->armed();
  Clock* clock = nullptr;
  int64_t t0 = 0;
  int64_t bytes = 0;
  if (profiled) {
    clock = spec_.clock != nullptr ? spec_.clock : SteadyClock::Default();
    t0 = clock->NowNanos();
    bytes = block->payload_bytes();
  }
  uint64_t wire_seq = 0;
  SendOutcome outcome =
      spec_.network->SendRoute(route, std::move(block), cancel, &wire_seq);
  if (profiled && outcome == SendOutcome::kOk) {
    // The span covers retries and NIC throttle waits too: that *is* the time
    // this block spent getting onto the wire, and the critical path should
    // charge it to the exchange when the consumer was waiting on it.
    ProfSpan span;
    span.query_id = spec_.query_id;
    span.kind = SpanKind::kNetSend;
    span.name = "send";
    span.segment = spec_.segment_label;
    span.node = spec_.from_node;
    span.start_ns = t0;
    span.end_ns = clock->NowNanos();
    span.tuples = rows;
    span.bytes = bytes;
    span.exchange_id = spec_.exchange_id;
    span.from_node = route.from_logical;
    span.to_node = route.to_logical;
    span.wire_seq = wire_seq + 1;  // span seqs are 1-based; 0 = unlinked
    profiler->EmitComplete(std::move(span));
  }
  if (outcome == SendOutcome::kUnavailable) {
    send_unavailable_.store(true, std::memory_order_release);
  }
  return outcome == SendOutcome::kOk;
}

bool SenderPump::Pump(Iterator* source, WorkerContext* ctx,
                      const std::atomic<bool>* cancel) {
  const int ncons = static_cast<int>(spec_.consumer_nodes.size());
  std::vector<BlockPtr> pending(static_cast<size_t>(ncons));
  bool ok = true;
  while (ok) {
    BlockPtr block;
    NextResult r = source->Next(ctx, &block);
    if (r == NextResult::kError) {
      // The stream is broken, not exhausted: close out as a failure so the
      // consumer side never mistakes the partial data for a clean result.
      ok = false;
      break;
    }
    if (r != NextResult::kSuccess) break;
    switch (spec_.partitioning) {
      case Partitioning::kToOne:
        ok = SendBlock(0, std::move(block), cancel);
        break;
      case Partitioning::kBroadcast:
        for (int d = 0; d < ncons && ok; ++d) {
          // Copy per destination (the last one moves).
          BlockPtr copy =
              d + 1 == ncons ? std::move(block)
                             : std::make_shared<Block>(*block);
          ok = SendBlock(d, std::move(copy), cancel);
        }
        break;
      case Partitioning::kHash: {
        const Schema& schema = *spec_.schema;
        for (int i = 0; i < block->num_rows() && ok; ++i) {
          const char* row = block->RowAt(i);
          int d = PartitionOf(HashRowKeys(schema, row, spec_.hash_cols),
                              ncons);
          BlockPtr& dst = pending[d];
          if (dst == nullptr) dst = MakeBlock(schema.row_size());
          dst->AppendRowCopy(row);
          if (dst->full()) {
            ok = SendBlock(d, std::move(dst), cancel);
            dst = nullptr;
          }
        }
        break;
      }
    }
  }
  for (int d = 0; d < ncons && ok; ++d) {
    if (pending[d] != nullptr) ok = SendBlock(d, std::move(pending[d]), cancel);
  }
  spec_.network->CloseProducer(spec_.exchange_id);
  return ok;
}

}  // namespace claims
