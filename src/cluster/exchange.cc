#include "cluster/exchange.h"

#include "storage/partition.h"

namespace claims {

MergerIterator::MergerIterator(BlockChannel* channel, SegmentStats* stats,
                               Clock* clock, int64_t poll_ns)
    : channel_(channel),
      stats_(stats),
      visit_rates_(stats),
      clock_(clock != nullptr ? clock : SteadyClock::Default()),
      poll_ns_(poll_ns) {}

NextResult MergerIterator::Open(WorkerContext* ctx) {
  if (ctx->DetectedTerminateRequest()) return NextResult::kTerminated;
  // The receive buffer (the channel) lives in the fabric and was created
  // before any producer started; nothing to construct here.
  return NextResult::kSuccess;
}

NextResult MergerIterator::Next(WorkerContext* ctx, BlockPtr* out) {
  while (true) {
    if (ctx->DetectedTerminateRequest()) return NextResult::kTerminated;
    NetBlock nb;
    int64_t t0 = clock_->NowNanos();
    ChannelStatus status = channel_->Receive(&nb, poll_ns_);
    if (status == ChannelStatus::kOk) {
      if (stats_ != nullptr) {
        stats_->input_tuples.fetch_add(nb.block->num_rows(),
                                       std::memory_order_relaxed);
        visit_rates_.Observe(nb.from_node, nb.block->visit_rate());
      }
      // Re-number: the merger is this segment's stage beginner.
      nb.block->set_sequence_number(
          next_sequence_.fetch_add(1, std::memory_order_relaxed));
      if (ctx->processing_started != nullptr) {
        ctx->processing_started->store(true, std::memory_order_release);
      }
      *out = std::move(nb.block);
      return NextResult::kSuccess;
    }
    if (status == ChannelStatus::kClosed) return NextResult::kEndOfFile;
    // Timeout: starved — record the wait so the scheduler can tell.
    if (stats_ != nullptr) {
      stats_->blocked_input_ns.fetch_add(clock_->NowNanos() - t0,
                                         std::memory_order_relaxed);
    }
  }
}

void MergerIterator::Close() {}

SenderPump::SenderPump(Spec spec)
    : spec_(std::move(spec)), sent_tuples_(spec_.consumer_nodes.size()) {}

bool SenderPump::SendBlock(int dest_index, BlockPtr block,
                           const std::atomic<bool>* cancel) {
  if (block == nullptr || block->empty()) return true;
  const int64_t rows = block->num_rows();
  // Post-add snapshots: with concurrent senders each caller still computes a
  // fraction from complete sums (total ≥ dest ≥ rows ≥ 1, so no zero guard).
  const int64_t dest_total =
      sent_tuples_[dest_index].fetch_add(rows, std::memory_order_relaxed) +
      rows;
  const int64_t total =
      total_sent_.fetch_add(rows, std::memory_order_relaxed) + rows;
  // Outgoing tail = V_i · δ_i · p_ij (paper §4.3).
  double v = 1.0;
  double selectivity = 1.0;
  if (spec_.stats != nullptr) {
    v = spec_.stats->visit_rate.load(std::memory_order_relaxed);
    selectivity = spec_.stats->selectivity();
  }
  double fraction = static_cast<double>(dest_total) / static_cast<double>(total);
  if (spec_.partitioning == Partitioning::kBroadcast) fraction = 1.0;
  block->set_visit_rate(v * selectivity * fraction);
  Route route;
  route.exchange_id = spec_.exchange_id;
  route.from_logical = spec_.from_node;
  route.from_physical =
      spec_.from_node_physical >= 0 ? spec_.from_node_physical : spec_.from_node;
  route.to_logical = spec_.consumer_nodes[dest_index];
  route.to_physical =
      static_cast<size_t>(dest_index) < spec_.consumer_placement.size()
          ? spec_.consumer_placement[dest_index]
          : route.to_logical;
  SendOutcome outcome =
      spec_.network->SendRoute(route, std::move(block), cancel);
  if (outcome == SendOutcome::kUnavailable) {
    send_unavailable_.store(true, std::memory_order_release);
  }
  return outcome == SendOutcome::kOk;
}

bool SenderPump::Pump(Iterator* source, WorkerContext* ctx,
                      const std::atomic<bool>* cancel) {
  const int ncons = static_cast<int>(spec_.consumer_nodes.size());
  std::vector<BlockPtr> pending(static_cast<size_t>(ncons));
  bool ok = true;
  while (ok) {
    BlockPtr block;
    NextResult r = source->Next(ctx, &block);
    if (r == NextResult::kError) {
      // The stream is broken, not exhausted: close out as a failure so the
      // consumer side never mistakes the partial data for a clean result.
      ok = false;
      break;
    }
    if (r != NextResult::kSuccess) break;
    switch (spec_.partitioning) {
      case Partitioning::kToOne:
        ok = SendBlock(0, std::move(block), cancel);
        break;
      case Partitioning::kBroadcast:
        for (int d = 0; d < ncons && ok; ++d) {
          // Copy per destination (the last one moves).
          BlockPtr copy =
              d + 1 == ncons ? std::move(block)
                             : std::make_shared<Block>(*block);
          ok = SendBlock(d, std::move(copy), cancel);
        }
        break;
      case Partitioning::kHash: {
        const Schema& schema = *spec_.schema;
        for (int i = 0; i < block->num_rows() && ok; ++i) {
          const char* row = block->RowAt(i);
          int d = PartitionOf(HashRowKeys(schema, row, spec_.hash_cols),
                              ncons);
          BlockPtr& dst = pending[d];
          if (dst == nullptr) dst = MakeBlock(schema.row_size());
          dst->AppendRowCopy(row);
          if (dst->full()) {
            ok = SendBlock(d, std::move(dst), cancel);
            dst = nullptr;
          }
        }
        break;
      }
    }
  }
  for (int d = 0; d < ncons && ok; ++d) {
    if (pending[d] != nullptr) ok = SendBlock(d, std::move(pending[d]), cancel);
  }
  spec_.network->CloseProducer(spec_.exchange_id);
  return ok;
}

}  // namespace claims
