#include "cluster/result_set.h"

#include <algorithm>

#include "common/string_util.h"

namespace claims {

void ResultSet::AppendBlock(BlockPtr block) {
  if (block == nullptr || block->empty()) return;
  num_rows_ += block->num_rows();
  blocks_.push_back(std::move(block));
}

void ResultSet::TruncateRows(int64_t n) {
  if (n < 0 || num_rows_ <= n) return;
  int64_t kept = 0;
  std::vector<BlockPtr> blocks;
  for (BlockPtr& b : blocks_) {
    if (kept >= n) break;
    if (kept + b->num_rows() <= n) {
      kept += b->num_rows();
      blocks.push_back(std::move(b));
      continue;
    }
    // Partial block: copy the prefix.
    auto partial = MakeBlock(b->row_size(), b->capacity_bytes() > 0 ? static_cast<int32_t>(b->capacity_bytes()) : kDefaultBlockBytes);
    for (int r = 0; r < b->num_rows() && kept < n; ++r, ++kept) {
      partial->AppendRowCopy(b->RowAt(r));
    }
    blocks.push_back(std::move(partial));
  }
  blocks_ = std::move(blocks);
  num_rows_ = kept;
}

Value ResultSet::Get(int64_t row, int col) const {
  for (const BlockPtr& b : blocks_) {
    if (row < b->num_rows()) {
      return schema_.GetValue(b->RowAt(static_cast<int32_t>(row)), col);
    }
    row -= b->num_rows();
  }
  return Value();
}

std::vector<std::vector<Value>> ResultSet::Rows(bool sorted) const {
  std::vector<std::vector<Value>> rows;
  rows.reserve(static_cast<size_t>(num_rows_));
  for (const BlockPtr& b : blocks_) {
    for (int r = 0; r < b->num_rows(); ++r) {
      std::vector<Value> row;
      row.reserve(static_cast<size_t>(schema_.num_columns()));
      for (int c = 0; c < schema_.num_columns(); ++c) {
        row.push_back(schema_.GetValue(b->RowAt(r), c));
      }
      rows.push_back(std::move(row));
    }
  }
  if (sorted) {
    std::sort(rows.begin(), rows.end(),
              [](const std::vector<Value>& a, const std::vector<Value>& b) {
                for (size_t i = 0; i < a.size(); ++i) {
                  int c = a[i].Compare(b[i]);
                  if (c != 0) return c < 0;
                }
                return false;
              });
  }
  return rows;
}

std::string ResultSet::ToString(int64_t limit) const {
  std::string out;
  for (int c = 0; c < schema_.num_columns(); ++c) {
    if (c) out += " | ";
    out += schema_.column(c).name;
  }
  out += "\n";
  int64_t shown = 0;
  for (const BlockPtr& b : blocks_) {
    for (int r = 0; r < b->num_rows() && shown < limit; ++r, ++shown) {
      for (int c = 0; c < schema_.num_columns(); ++c) {
        if (c) out += " | ";
        out += schema_.GetValue(b->RowAt(r), c).ToString();
      }
      out += "\n";
    }
    if (shown >= limit) break;
  }
  if (num_rows_ > limit) {
    out += StrFormat("... (%lld rows total)\n",
                     static_cast<long long>(num_rows_));
  }
  return out;
}

}  // namespace claims
