#ifndef CLAIMS_CLUSTER_PLAN_H_
#define CLAIMS_CLUSTER_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/exchange.h"
#include "exec/expr/expr.h"
#include "exec/ops/hash_agg.h"
#include "exec/ops/sort.h"
#include "storage/catalog.h"

namespace claims {

/// A node of a fragment's physical operator tree. Leaves are stage beginners
/// (table scans or exchange mergers); a fragment instance on each node turns
/// this tree into an iterator tree topped by an elastic iterator and a
/// sender (paper Fig. 3).
struct POp {
  enum class Kind {
    kScan,
    kMerger,
    kFilter,
    kProject,
    kHashJoin,
    kHashAgg,
    kSort,
  };

  Kind kind;
  std::vector<std::unique_ptr<POp>> children;  ///< join: [build, probe]
  Schema output_schema;

  // kScan
  std::string table_name;
  int numa_sockets = 1;
  // kMerger: input exchange fed by a child fragment.
  int exchange_id = -1;
  // kFilter — also set on a kScan when a filter over it was fused in
  // (predicate pushdown, see MakeFilterOp)
  ExprPtr predicate;
  // kProject
  std::vector<ExprPtr> project_exprs;
  // kHashJoin
  std::vector<int> build_keys;
  std::vector<int> probe_keys;
  // kHashAgg
  std::vector<ExprPtr> group_exprs;
  std::vector<std::string> group_names;
  std::vector<HashAggIterator::Aggregate> aggregates;
  HashAggIterator::Mode agg_mode = HashAggIterator::Mode::kHybrid;
  // kSort
  std::vector<SortKey> sort_keys;

  /// Indented EXPLAIN rendering.
  std::string ToString(int indent = 0) const;
};

// --- POp factories (output schemas computed here) ---------------------------------

std::unique_ptr<POp> MakeScanOp(const Table& table, int numa_sockets = 1);
std::unique_ptr<POp> MakeMergerOp(int exchange_id, Schema schema);
std::unique_ptr<POp> MakeFilterOp(std::unique_ptr<POp> child, ExprPtr pred);
std::unique_ptr<POp> MakeProjectOp(std::unique_ptr<POp> child,
                                   std::vector<ExprPtr> exprs,
                                   std::vector<std::string> names);
std::unique_ptr<POp> MakeHashJoinOp(std::unique_ptr<POp> build,
                                    std::unique_ptr<POp> probe,
                                    std::vector<int> build_keys,
                                    std::vector<int> probe_keys);
std::unique_ptr<POp> MakeHashAggOp(std::unique_ptr<POp> child,
                                   std::vector<ExprPtr> group_exprs,
                                   std::vector<std::string> group_names,
                                   std::vector<HashAggIterator::Aggregate> aggs,
                                   HashAggIterator::Mode mode);
std::unique_ptr<POp> MakeSortOp(std::unique_ptr<POp> child,
                                std::vector<SortKey> keys);

/// One segment group of the distributed plan: identical segments on each of
/// `nodes`, producing into exchange `out_exchange_id` (the root fragment
/// produces into the master collector's exchange).
struct Fragment {
  int id = 0;
  std::unique_ptr<POp> root;
  std::vector<int> nodes;

  int out_exchange_id = -1;
  Partitioning partitioning = Partitioning::kToOne;
  std::vector<int> hash_cols;        ///< indexes in root->output_schema
  std::vector<int> consumer_nodes;

  bool order_preserving = false;
  /// ORDER BY / LIMIT style fragments keep output order; repartitioned ones
  /// do not need it.
  int initial_parallelism = 1;
  int max_parallelism = 0;  ///< 0 → node core count

  std::string ToString() const;
};

/// A complete distributed physical plan: fragments in topological order
/// (producers before consumers); the last fragment gathers to the master.
struct PhysicalPlan {
  std::vector<std::unique_ptr<Fragment>> fragments;
  Schema result_schema;
  /// Exchange the master collector drains (the root fragment's output).
  int result_exchange_id = -1;
  /// LIMIT clause (applied by the engine at the collector); -1 = none.
  int64_t limit = -1;

  std::string ToString() const;
};

}  // namespace claims

#endif  // CLAIMS_CLUSTER_PLAN_H_
