#include "cluster/plan.h"

#include "common/string_util.h"
#include "exec/ops/hash_join.h"

namespace claims {

namespace {

const char* KindName(POp::Kind kind) {
  switch (kind) {
    case POp::Kind::kScan: return "Scan";
    case POp::Kind::kMerger: return "Merger";
    case POp::Kind::kFilter: return "Filter";
    case POp::Kind::kProject: return "Project";
    case POp::Kind::kHashJoin: return "HashJoin";
    case POp::Kind::kHashAgg: return "HashAgg";
    case POp::Kind::kSort: return "Sort";
  }
  return "?";
}

}  // namespace

std::string POp::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + KindName(kind);
  switch (kind) {
    case Kind::kScan:
      out += "(" + table_name + ")";
      // Fused pushdown filter keeps the Filter(...) rendering so EXPLAIN
      // output still names the predicate.
      if (predicate != nullptr) out += " Filter(" + predicate->ToString() + ")";
      break;
    case Kind::kMerger:
      out += StrFormat("(exchange=%d)", exchange_id);
      break;
    case Kind::kFilter:
      out += "(" + predicate->ToString() + ")";
      break;
    case Kind::kProject: {
      out += "(";
      for (size_t i = 0; i < project_exprs.size(); ++i) {
        if (i) out += ", ";
        out += project_exprs[i]->ToString();
      }
      out += ")";
      break;
    }
    case Kind::kHashJoin: {
      out += "(build keys:";
      for (int k : build_keys) out += StrFormat(" %d", k);
      out += ", probe keys:";
      for (int k : probe_keys) out += StrFormat(" %d", k);
      out += ")";
      break;
    }
    case Kind::kHashAgg: {
      out += "(group:";
      for (const auto& g : group_exprs) out += " " + g->ToString();
      out += "; aggs:";
      for (const auto& a : aggregates) {
        out += StrFormat(" %s(%s)", AggFnName(a.fn),
                         a.arg != nullptr ? a.arg->ToString().c_str() : "*");
      }
      out += ")";
      break;
    }
    case Kind::kSort: {
      out += "(keys:";
      for (const SortKey& k : sort_keys) {
        out += StrFormat(" %d%s", k.column, k.ascending ? "" : " desc");
      }
      out += ")";
      break;
    }
  }
  out += "\n";
  for (const auto& c : children) out += c->ToString(indent + 1);
  return out;
}

std::unique_ptr<POp> MakeScanOp(const Table& table, int numa_sockets) {
  auto op = std::make_unique<POp>();
  op->kind = POp::Kind::kScan;
  op->table_name = table.name();
  op->numa_sockets = numa_sockets;
  op->output_schema = table.schema();
  return op;
}

std::unique_ptr<POp> MakeMergerOp(int exchange_id, Schema schema) {
  auto op = std::make_unique<POp>();
  op->kind = POp::Kind::kMerger;
  op->exchange_id = exchange_id;
  op->output_schema = std::move(schema);
  return op;
}

std::unique_ptr<POp> MakeFilterOp(std::unique_ptr<POp> child, ExprPtr pred) {
  // Filter directly over a scan fuses into it (predicate pushdown): the scan
  // then filters during its copy-out of storage, skipping one whole block
  // materialization per input block.
  if (child->kind == POp::Kind::kScan && child->predicate == nullptr) {
    child->predicate = std::move(pred);
    return child;
  }
  auto op = std::make_unique<POp>();
  op->kind = POp::Kind::kFilter;
  op->output_schema = child->output_schema;
  op->predicate = std::move(pred);
  op->children.push_back(std::move(child));
  return op;
}

std::unique_ptr<POp> MakeProjectOp(std::unique_ptr<POp> child,
                                   std::vector<ExprPtr> exprs,
                                   std::vector<std::string> names) {
  auto op = std::make_unique<POp>();
  op->kind = POp::Kind::kProject;
  std::vector<ColumnDef> cols;
  for (size_t i = 0; i < exprs.size(); ++i) {
    DataType t = exprs[i]->type();
    int32_t width = 0;
    if (t == DataType::kChar) {
      int col = AsColumnRef(*exprs[i]);
      width = col >= 0 ? child->output_schema.column(col).char_width : 64;
    }
    std::string name =
        i < names.size() && !names[i].empty() ? names[i] : exprs[i]->ToString();
    cols.push_back(ColumnDef{std::move(name), t, width});
  }
  op->output_schema = Schema(std::move(cols));
  op->project_exprs = std::move(exprs);
  op->children.push_back(std::move(child));
  return op;
}

std::unique_ptr<POp> MakeHashJoinOp(std::unique_ptr<POp> build,
                                    std::unique_ptr<POp> probe,
                                    std::vector<int> build_keys,
                                    std::vector<int> probe_keys) {
  auto op = std::make_unique<POp>();
  op->kind = POp::Kind::kHashJoin;
  op->output_schema =
      JoinOutputSchema(build->output_schema, probe->output_schema);
  op->build_keys = std::move(build_keys);
  op->probe_keys = std::move(probe_keys);
  op->children.push_back(std::move(build));
  op->children.push_back(std::move(probe));
  return op;
}

std::unique_ptr<POp> MakeHashAggOp(std::unique_ptr<POp> child,
                                   std::vector<ExprPtr> group_exprs,
                                   std::vector<std::string> group_names,
                                   std::vector<HashAggIterator::Aggregate> aggs,
                                   HashAggIterator::Mode mode) {
  auto op = std::make_unique<POp>();
  op->kind = POp::Kind::kHashAgg;
  // Reconstruct the iterator's output schema: group columns then aggregates.
  std::vector<ColumnDef> cols;
  for (size_t i = 0; i < group_exprs.size(); ++i) {
    DataType t = group_exprs[i]->type();
    int32_t width = 0;
    if (t == DataType::kChar) {
      int col = AsColumnRef(*group_exprs[i]);
      width = col >= 0 ? child->output_schema.column(col).char_width : 64;
    }
    std::string name = i < group_names.size() ? group_names[i]
                                              : group_exprs[i]->ToString();
    cols.push_back(ColumnDef{std::move(name), t, width});
  }
  for (const auto& a : aggs) {
    DataType arg_type = a.arg != nullptr ? a.arg->type() : DataType::kInt64;
    cols.push_back(ColumnDef{a.name, AggOutputType(a.fn, arg_type), 0});
  }
  op->output_schema = Schema(std::move(cols));
  op->group_exprs = std::move(group_exprs);
  op->group_names = std::move(group_names);
  op->aggregates = std::move(aggs);
  op->agg_mode = mode;
  op->children.push_back(std::move(child));
  return op;
}

std::unique_ptr<POp> MakeSortOp(std::unique_ptr<POp> child,
                                std::vector<SortKey> keys) {
  auto op = std::make_unique<POp>();
  op->kind = POp::Kind::kSort;
  op->output_schema = child->output_schema;
  op->sort_keys = std::move(keys);
  op->children.push_back(std::move(child));
  return op;
}

std::string Fragment::ToString() const {
  std::string out = StrFormat("Fragment %d on %zu node(s)", id, nodes.size());
  const char* part = partitioning == Partitioning::kHash ? "hash"
                     : partitioning == Partitioning::kBroadcast ? "broadcast"
                                                                : "gather";
  out += StrFormat(" -> exchange %d (%s", out_exchange_id, part);
  if (partitioning == Partitioning::kHash) {
    out += " on";
    for (int c : hash_cols) out += StrFormat(" %d", c);
  }
  out += ")\n";
  out += root->ToString(1);
  return out;
}

std::string PhysicalPlan::ToString() const {
  std::string out;
  for (const auto& f : fragments) out += f->ToString();
  return out;
}

}  // namespace claims
