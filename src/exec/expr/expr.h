#ifndef CLAIMS_EXEC_EXPR_EXPR_H_
#define CLAIMS_EXEC_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace claims {

class Expr;
/// Expressions are immutable and stateless after construction; plan fragments
/// instantiated on every node share them by const pointer.
using ExprPtr = std::shared_ptr<const Expr>;

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv };
enum class LogicOp { kAnd, kOr };

const char* CompareOpName(CompareOp op);
const char* ArithOpName(ArithOp op);

/// Structural reflection over one expression node, used by the batch-kernel
/// compiler (exec/expr/batch_expr.*) to translate supported tree shapes into
/// tight non-virtual column loops. A node that does not describe itself stays
/// `kOpaque` and is executed through the scalar Eval fallback — reflection is
/// an optimization hook, never a semantic requirement. Pointers borrow from
/// the inspected expression and share its lifetime.
struct ExprShape {
  enum class Kind {
    kOpaque,
    kColumnRef,
    kLiteral,
    kCompare,
    kArith,
    kLogic,
    kNot,
    kLike,
    kInList,
    kYear,
  };

  Kind kind = Kind::kOpaque;
  int column = -1;                  ///< kColumnRef
  const Value* literal = nullptr;   ///< kLiteral
  CompareOp compare_op = CompareOp::kEq;
  ArithOp arith_op = ArithOp::kAdd;
  LogicOp logic_op = LogicOp::kAnd;
  const Expr* left = nullptr;       ///< kCompare / kArith / kLogic
  const Expr* right = nullptr;
  const Expr* child = nullptr;      ///< kNot / kLike / kInList / kYear
  const std::string* pattern = nullptr;          ///< kLike
  const std::vector<Value>* in_values = nullptr; ///< kInList
  bool negated = false;             ///< kLike / kInList
};

/// Scalar expression evaluated row-at-a-time against a fixed-width row of a
/// known schema. Booleans are represented as INT32 0/1.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Static result type (resolved at construction / bind time).
  virtual DataType type() const = 0;

  virtual Value Eval(const Schema& schema, const char* row) const = 0;

  /// Predicate evaluation fast path.
  virtual bool EvalBool(const Schema& schema, const char* row) const {
    Value v = Eval(schema, row);
    return v.type() == DataType::kFloat64 ? v.AsFloat64() != 0
                                          : v.AsInt64() != 0;
  }

  virtual std::string ToString() const = 0;

  /// Describes this node's shape for the batch-kernel compiler; the default
  /// (opaque) keeps the node on the scalar Eval path.
  virtual ExprShape Shape() const { return ExprShape(); }
};

// --- Factories ------------------------------------------------------------------

/// References input column `index` (type taken from the schema at build time;
/// callers pass the resolved type).
ExprPtr MakeColumnRef(int index, DataType type, std::string name = "");
ExprPtr MakeLiteral(Value v);
ExprPtr MakeCompare(CompareOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeArith(ArithOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeLogic(LogicOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeNot(ExprPtr child);
ExprPtr MakeLike(ExprPtr child, std::string pattern, bool negated);
ExprPtr MakeInList(ExprPtr child, std::vector<Value> values, bool negated);
ExprPtr MakeCase(std::vector<std::pair<ExprPtr, ExprPtr>> branches,
                 ExprPtr otherwise);
/// YEAR(date) → INT32 calendar year (TPC-H Q8/Q9's extract(year ...)).
ExprPtr MakeYear(ExprPtr child);

/// Column index if the expression is a bare column reference, else -1.
int AsColumnRef(const Expr& expr);

}  // namespace claims

#endif  // CLAIMS_EXEC_EXPR_EXPR_H_
